package datanode

import (
	"testing"

	"globaldb/gsql/fragment"
	"globaldb/internal/keys"
	"globaldb/internal/repl"
	"globaldb/internal/table"
	"globaldb/internal/ts"
)

// fragSchema is the two-column (id BIGINT, qty BIGINT) layout the fragment
// tests load: key (1, id), value the encoded row.
var fragKinds = []table.Kind{table.Int64, table.Int64}

func loadFragRows(t *testing.T, p *Primary, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		key := keys.NewEncoder(24).Uint64(1).Int64(int64(i)).Bytes()
		val := keys.NewEncoder(24).Int64(int64(i)).Int64(int64(i % 10)).Bytes()
		p.Store().ApplyCommitted(key, val, false, ts.Timestamp(5))
	}
}

func fragRange() (start, end []byte) {
	start = keys.NewEncoder(16).Uint64(1).Bytes()
	return start, keys.PrefixEnd(start)
}

// TestFragFilterPagedScan drives a filter fragment through the paged RPC:
// only matching rows come back, pages respect MaxPage on qualifying rows,
// resume keys continue the walk, and Examined accounts the storage rows
// evaluated node-side.
func TestFragFilterPagedScan(t *testing.T) {
	r := newRig(t, repl.Async)
	loadFragRows(t, r.primary, 100)
	frag := &fragment.Fragment{
		Kinds: fragKinds,
		// qty = 0, i.e. id % 10 == 0: 10 of 100 rows match.
		Filter: &fragment.Expr{Op: fragment.OpEq, Args: []fragment.Expr{
			{Op: fragment.OpCol, Col: 1}, {Op: fragment.OpConst, Val: int64(0)},
		}},
	}
	fb, err := frag.Encode()
	if err != nil {
		t.Fatal(err)
	}
	start, end := fragRange()
	var got []int64
	examined := 0
	pages := 0
	for {
		resp, err := r.client.ScanPageFrag(bg, "dn0", start, end, ts.Timestamp(10), 0, 4, fb, 0)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		if len(resp.KVs) > 4 {
			t.Fatalf("page of %d rows exceeds MaxPage 4", len(resp.KVs))
		}
		examined += resp.Examined
		for _, kv := range resp.KVs {
			row, err := frag.DecodeStoredRow(kv.Value)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, row[0].(int64))
		}
		if !resp.More {
			break
		}
		start = resp.Next
	}
	if len(got) != 10 {
		t.Fatalf("matched %d rows, want 10: %v", len(got), got)
	}
	for i, id := range got {
		if id != int64((i+1)*10) {
			t.Fatalf("row %d = %d, want %d", i, id, (i+1)*10)
		}
	}
	if examined != 100 {
		t.Fatalf("examined %d storage rows, want 100", examined)
	}
	if pages < 3 {
		t.Fatalf("expected multiple pages, got %d", pages)
	}
}

// TestFragProjectionShrinksRows checks DN-side projection re-encodes only
// the requested columns.
func TestFragProjectionShrinksRows(t *testing.T) {
	r := newRig(t, repl.Async)
	loadFragRows(t, r.primary, 5)
	frag := &fragment.Fragment{Kinds: fragKinds, Project: []int{1}}
	fb, err := frag.Encode()
	if err != nil {
		t.Fatal(err)
	}
	start, end := fragRange()
	resp, err := r.client.ScanPageFrag(bg, "dn0", start, end, ts.Timestamp(10), 0, 0, fb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.KVs) != 5 {
		t.Fatalf("got %d rows, want 5", len(resp.KVs))
	}
	for i, kv := range resp.KVs {
		row, err := frag.DecodeProjected(kv.Value)
		if err != nil {
			t.Fatal(err)
		}
		if row[0] != nil {
			t.Fatalf("unprojected column shipped: %v", row)
		}
		want := int64((i + 1) % 10)
		if row[1] != want {
			t.Fatalf("row %d qty = %v, want %d", i, row[1], want)
		}
	}
}

// TestFragAggregatePartials checks a grouped aggregate fragment returns
// one partial row per group, in group-key order, with states that
// finalize to the right values — and that the same request on a replica
// (the RCP read path) agrees.
func TestFragAggregatePartials(t *testing.T) {
	r := newRig(t, repl.Async)
	loadFragRows(t, r.primary, 100)
	frag := &fragment.Fragment{
		Kinds:   fragKinds,
		GroupBy: []int{1},
		Aggs: []fragment.AggSpec{
			{Kind: fragment.AggCount, Star: true},
			{Kind: fragment.AggSum, Arg: &fragment.Expr{Op: fragment.OpCol, Col: 0}},
		},
	}
	fb, err := frag.Encode()
	if err != nil {
		t.Fatal(err)
	}
	start, end := fragRange()
	check := func(node string) {
		t.Helper()
		resp, err := r.client.ScanPageFrag(bg, node, start, end, ts.Timestamp(10), 0, 0, fb, 0)
		if err != nil {
			t.Fatal(err)
		}
		if resp.More {
			t.Fatal("aggregate response must be complete in one page")
		}
		if len(resp.KVs) != 10 {
			t.Fatalf("%s: got %d groups, want 10", node, len(resp.KVs))
		}
		if resp.Examined != 100 {
			t.Fatalf("%s: examined %d, want 100", node, resp.Examined)
		}
		for g, kv := range resp.KVs {
			gvals, err := frag.DecodeGroupKey(kv.Key)
			if err != nil {
				t.Fatal(err)
			}
			if gvals[0] != int64(g) {
				t.Fatalf("group %d key = %v (groups must arrive in key order)", g, gvals)
			}
			states, err := fragment.DecodeStates(kv.Value)
			if err != nil {
				t.Fatal(err)
			}
			if c := states[0].Final(fragment.AggCount); c != int64(10) {
				t.Fatalf("group %d count = %v", g, c)
			}
			// Group g holds ids g, g+10, ..., g+90 (with 100 for g=0):
			// sum = 10g + 450, plus 100 extra for group 0 (id 100).
			want := int64(10*g + 450)
			if g == 0 {
				want += 100
			}
			if s := states[1].Final(fragment.AggSum); s != want {
				t.Fatalf("group %d sum = %v, want %d", g, s, want)
			}
		}
	}
	check("dn0")
	// The replica serves the identical fragment at the same snapshot.
	// Seed its store directly (ApplyCommitted bypasses the redo stream).
	for i := 1; i <= 100; i++ {
		key := keys.NewEncoder(24).Uint64(1).Int64(int64(i)).Bytes()
		val := keys.NewEncoder(24).Int64(int64(i)).Int64(int64(i % 10)).Bytes()
		r.replica.Applier().Store().ApplyCommitted(key, val, false, ts.Timestamp(5))
	}
	check("dn0r0")
}

// TestFragBadRequests: corrupt fragments and unbound parameters error
// cleanly over the RPC instead of panicking the node.
func TestFragBadRequests(t *testing.T) {
	r := newRig(t, repl.Async)
	loadFragRows(t, r.primary, 3)
	start, end := fragRange()
	if _, err := r.client.ScanPageFrag(bg, "dn0", start, end, ts.Timestamp(10), 0, 0, []byte{0xFF, 0x01}, 0); err == nil {
		t.Fatal("corrupt fragment must error")
	}
	frag := &fragment.Fragment{
		Kinds:  fragKinds,
		Filter: &fragment.Expr{Op: fragment.OpParam, Col: 1},
	}
	fb, err := frag.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.client.ScanPageFrag(bg, "dn0", start, end, ts.Timestamp(10), 0, 0, fb, 0); err == nil {
		t.Fatal("unbound parameter must error")
	}
}
