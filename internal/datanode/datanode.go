// Package datanode implements GlobalDB's data node (DN) roles.
//
// A primary DN owns one shard: it stages write intents, appends redo
// records, participates in two-phase commit, and ships its log to replicas.
// A replica DN replays redo and serves read-only queries at RCP-consistent
// snapshots (Sec. IV). Both roles are reachable only through simulated
// network endpoints, so every CN↔DN interaction pays WAN cost.
//
// Per-operation atomicity between the MVCC store and the redo log is
// guaranteed by a node-level mutex: the log order of heap and control
// records always matches the store's intent order, which is what makes
// replica replay conflict-free.
package datanode

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"globaldb/internal/netsim"
	"globaldb/internal/redo"
	"globaldb/internal/repl"
	"globaldb/internal/storage/mvcc"
	"globaldb/internal/ts"
	"globaldb/internal/wal"
)

// WriteOp is one staged mutation.
type WriteOp struct {
	// Delete marks a deletion; Value is ignored.
	Delete bool
	// Key is the full encoded key.
	Key []byte
	// Value is the encoded row or index entry.
	Value []byte
}

// Wire size approximation for a write op.
func (op WriteOp) size() int { return len(op.Key) + len(op.Value) + 8 }

// Request/response payloads. All travel as netsim message payloads.
type (
	// WriteReq stages intents for a transaction.
	WriteReq struct {
		Txn    uint64
		SnapTS ts.Timestamp
		Ops    []WriteOp
	}
	// WriteResp acknowledges staged intents.
	WriteResp struct{}

	// ReadReq is a point read at a snapshot.
	ReadReq struct {
		Key    []byte
		SnapTS ts.Timestamp
		Txn    uint64 // non-zero: read own writes
	}
	// ReadResp returns the value if found.
	ReadResp struct {
		Value []byte
		Found bool
	}

	// ScanReq is a range scan at a snapshot.
	ScanReq struct {
		Start, End []byte
		SnapTS     ts.Timestamp
		Limit      int
		Txn        uint64
	}
	// ScanResp returns the visible pairs.
	ScanResp struct {
		KVs []mvcc.KV
	}

	// ScanPageReq is one page of a resumable range scan. MaxPage caps the
	// page size (rows per response); the node clamps it to its own limit so
	// a single RPC never ships an unbounded result over the WAN. Frag, when
	// non-nil, is an encoded execution fragment (globaldb/gsql/fragment)
	// the node evaluates locally: rows are filtered, projected, or folded
	// into partial aggregates before anything is shipped back, and Limit /
	// MaxPage then budget the *qualifying* rows.
	//
	// The coordinator's prefetching cursors issue page requests ahead of
	// consumption, so a node may be serving page N+1 while the CN is still
	// decoding page N. That stays correct for free on this side: each
	// request is self-contained (resume key plus budgets — the node keeps
	// no cursor state), adaptive page sizing lives in the coordinator's
	// serial fetch loop (MaxPage simply arrives already grown, and Limit
	// reflects the rows still wanted after every earlier page, which the
	// cursor decrements before issuing the next request), and a response
	// never aliases memory the node will reuse for a later request (see
	// the fragment executor's page-buffer notes).
	ScanPageReq struct {
		Start, End []byte
		SnapTS     ts.Timestamp
		Limit      int // total rows the cursor still wants; <= 0 unlimited
		MaxPage    int // rows per page; <= 0 uses DefaultScanPageSize
		Txn        uint64
		Frag       []byte // encoded execution fragment; nil = raw scan
	}
	// ScanPageResp returns one page plus the resume position.
	ScanPageResp struct {
		KVs  []mvcc.KV
		Next []byte // resume key for the following page (when More)
		More bool   // whether the range may hold further rows
		// Examined counts the storage rows this request evaluated, so the
		// coordinator can account rows filtered out at the data node
		// (Examined - len(KVs)) without a second RPC.
		Examined int
		// Looked counts the inner-table rows a pushed lookup join read
		// node-side to build joined rows; zero for plain scans.
		Looked int
		// ExecNanos is the node-side execution time for this page (MVCC
		// scan plus fragment evaluation), carried back so the coordinator's
		// tracer can split an RPC span into network vs remote-execute time.
		ExecNanos int64
	}

	// PendingReq writes the PENDING COMMIT record before the commit
	// timestamp fetch (Sec. IV-A).
	PendingReq struct{ Txn uint64 }
	// CommitReq commits a single-shard transaction at TS. Sync forces a
	// replica-quorum wait even under asynchronous replication (per-table
	// synchronous replication).
	CommitReq struct {
		Txn  uint64
		TS   ts.Timestamp
		Sync bool
	}
	// AbortReq aborts a transaction.
	AbortReq struct{ Txn uint64 }
	// PrepareReq is 2PC phase one. Anchor names the participant that holds
	// the authoritative commit/abort decision (the coordinator commits it
	// synchronously before acking the client); it is logged with the
	// prepare record so recovery can ask the right node for the outcome.
	PrepareReq struct {
		Txn    uint64
		Anchor string
	}
	// CommitPreparedReq is 2PC phase two (commit). Sync as in CommitReq.
	CommitPreparedReq struct {
		Txn  uint64
		TS   ts.Timestamp
		Sync bool
	}
	// AbortPreparedReq is 2PC phase two (abort).
	AbortPreparedReq struct{ Txn uint64 }

	// HeartbeatReq advances replicas' max commit timestamp on idle shards.
	HeartbeatReq struct{ TS ts.Timestamp }
	// DDLReq records a catalog change in the redo stream. Table carries
	// the table ID; Schema the serialized schema (may be nil for drops).
	DDLReq struct {
		Table  uint64
		TS     ts.Timestamp
		Schema []byte
	}

	// TxnStatusReq asks a primary whether it resolved a 2PC transaction —
	// the recovery protocol's question to a transaction's anchor shard.
	TxnStatusReq struct{ Txn uint64 }
	// TxnStatusResp reports the resolution, if known.
	TxnStatusResp struct {
		// Known reports whether this node resolved the transaction.
		Known bool
		// Committed (with TS) distinguishes commit from abort when Known.
		Committed bool
		TS        ts.Timestamp
		// Prepared reports the transaction is still in doubt here.
		Prepared bool
	}

	// InDoubtReq lists a primary's prepared-but-unresolved transactions.
	InDoubtReq struct{}
	// InDoubtTxn is one in-doubt transaction and its anchor node.
	InDoubtTxn struct {
		Txn    uint64
		Anchor string
	}
	// InDoubtResp carries the in-doubt set.
	InDoubtResp struct{ Txns []InDoubtTxn }

	// StatusReq asks a node for its health/freshness metrics.
	StatusReq struct{}
	// StatusResp reports them.
	StatusResp struct {
		// LastCommitTS is the node's visibility watermark.
		LastCommitTS ts.Timestamp
		// AppliedLSN is the replica's replay position (0 on primaries).
		AppliedLSN uint64
		// Load is the number of in-flight requests.
		Load int64
		// Primary reports the node role.
		Primary bool
	}

	// GenericResp acknowledges control operations.
	GenericResp struct{}
)

// ErrBadRequest is returned for unknown payload types.
var ErrBadRequest = errors.New("datanode: bad request payload")

// DefaultScanPageSize is the page size used when a paged scan does not
// request one. It models the RPC framing real systems use: a scan response
// never exceeds this many rows, so large scans stream as multiple messages
// instead of one unbounded transfer.
const DefaultScanPageSize = 256

// pageLimit clamps one page's row budget: the requested page size (or the
// default), further capped by the cursor's remaining total limit.
func pageLimit(limit, maxPage int) int {
	page := maxPage
	if page <= 0 {
		page = DefaultScanPageSize
	}
	if limit > 0 && limit < page {
		page = limit
	}
	return page
}

// Primary is a shard's read-write node.
type Primary struct {
	id     string
	region string
	shard  int

	mu    sync.Mutex // serializes store mutation + log append pairs
	store *mvcc.Store
	log   *redo.Log
	mgr   *repl.Manager

	// walW, when set by AttachWAL, makes commit and prepare acks durable:
	// the handler parks on the writer's group-commit watermark before
	// responding. Atomic because AttachWAL may race in-flight requests.
	walW atomic.Pointer[wal.Writer]

	// 2PC bookkeeping for recovery. inDoubt holds prepared-but-unresolved
	// transactions with their anchor; outcomes caches resolved 2PC
	// decisions so an in-doubt participant (or a recovering coordinator)
	// can query this node for them. outcomes is bounded by an eviction
	// ring — the durable WAL, not this cache, is the source of truth.
	tmu      sync.Mutex
	inDoubt  map[uint64]string
	outcomes map[uint64]txnOutcome
	outRing  []uint64
	outPos   int

	ep       *netsim.Endpoint
	inflight atomic.Int64
}

// txnOutcome is a resolved 2PC decision.
type txnOutcome struct {
	committed bool
	ts        ts.Timestamp
}

// outcomesCap bounds the resolved-outcome cache per primary.
const outcomesCap = 4096

// trackPrepared records txn as in doubt with its anchor.
func (p *Primary) trackPrepared(txn uint64, anchor string) {
	p.tmu.Lock()
	p.inDoubt[txn] = anchor
	p.tmu.Unlock()
}

// resolveTxn records a 2PC decision and clears the in-doubt entry.
func (p *Primary) resolveTxn(txn uint64, committed bool, commitTS ts.Timestamp) {
	p.tmu.Lock()
	delete(p.inDoubt, txn)
	if _, ok := p.outcomes[txn]; !ok {
		if len(p.outRing) < outcomesCap {
			p.outRing = append(p.outRing, txn)
		} else {
			delete(p.outcomes, p.outRing[p.outPos])
			p.outRing[p.outPos] = txn
			p.outPos = (p.outPos + 1) % outcomesCap
		}
	}
	p.outcomes[txn] = txnOutcome{committed: committed, ts: commitTS}
	p.tmu.Unlock()
}

// waitWAL parks until lsn is durable, when a WAL is attached.
func (p *Primary) waitWAL(ctx context.Context, lsn uint64) error {
	if w := p.walW.Load(); w != nil && lsn > 0 {
		return w.WaitDurable(ctx, lsn)
	}
	return nil
}

// NewPrimary creates a primary DN and registers its endpoint under id.
func NewPrimary(n *netsim.Network, id, region string, shard int, mode repl.Mode, quorum int) *Primary {
	p := &Primary{
		id:     id,
		region: region,
		shard:  shard,
		store:  mvcc.NewStore(),
		log:    redo.NewLog(),
	}
	p.initTxnState()
	p.mgr = repl.NewManager(p.log, mode, quorum)
	p.ep = n.Register(id, region, p.handle)
	return p
}

func (p *Primary) initTxnState() {
	p.inDoubt = make(map[uint64]string)
	p.outcomes = make(map[uint64]txnOutcome)
}

// NewPrimaryFromStore builds a primary over an existing store (replica
// promotion during failover). The log starts fresh; surviving replicas must
// be re-seeded from the store.
func NewPrimaryFromStore(n *netsim.Network, id, region string, shard int, store *mvcc.Store, mode repl.Mode, quorum int) *Primary {
	p := &Primary{id: id, region: region, shard: shard, store: store, log: redo.NewLog()}
	p.initTxnState()
	p.mgr = repl.NewManager(p.log, mode, quorum)
	p.ep = n.Register(id, region, p.handle)
	return p
}

// AttachWAL starts archiving this primary's redo log to an on-disk WAL in
// dir, giving the node crash durability (GaussDB's XLOG). Returns a closer
// that drains and closes the WAL.
func (p *Primary) AttachWAL(dir string) (io.Closer, error) {
	return p.AttachWALOptions(wal.Options{Dir: dir}, 0)
}

// AttachWALOptions attaches a WAL with explicit writer options and archive
// batch size (0 = default). Once attached, commit and prepare acks wait for
// WAL durability — under wal.SyncGroup that wait is what group commit
// coalesces. The returned archiver's Close drains and closes the WAL.
func (p *Primary) AttachWALOptions(opts wal.Options, archiveBatch int) (*wal.Archiver, error) {
	w, err := wal.Open(opts)
	if err != nil {
		return nil, err
	}
	p.walW.Store(w)
	return wal.NewArchiverBatched(p.log, w, archiveBatch), nil
}

// WAL exposes the attached WAL writer (nil when none), for commit-path
// stats and durability waits.
func (p *Primary) WAL() *wal.Writer { return p.walW.Load() }

// RecoverPrimary rebuilds a crashed primary from its WAL directory: the
// surviving redo stream is replayed into a fresh store (the same replay
// path replicas use), the in-memory log is re-seeded with identical LSNs so
// replica shippers resume where they left off, and archiving continues into
// the same directory. The returned closer stops the WAL.
func RecoverPrimary(n *netsim.Network, id, region string, shard int, dir string, mode repl.Mode, quorum int) (*Primary, io.Closer, error) {
	return RecoverPrimaryOptions(n, id, region, shard, wal.Options{Dir: dir}, mode, quorum, 0)
}

// RecoverPrimaryOptions is RecoverPrimary with explicit WAL writer options
// and archive batch size. Besides replaying the store, it rebuilds the 2PC
// bookkeeping: prepare records whose resolution never made it to the WAL
// re-enter the in-doubt set (with the anchor logged at prepare time), and
// resolved decisions re-enter the outcome cache so other recovering
// participants can query them.
func RecoverPrimaryOptions(n *netsim.Network, id, region string, shard int, opts wal.Options, mode repl.Mode, quorum int, archiveBatch int) (*Primary, *wal.Archiver, error) {
	recs, err := wal.Recover(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	applier := repl.NewApplier(mvcc.NewStore())
	if _, err := applier.Apply(recs); err != nil {
		return nil, nil, fmt.Errorf("datanode: recovery replay: %w", err)
	}
	p := &Primary{id: id, region: region, shard: shard, store: applier.Store(), log: redo.NewLog()}
	p.initTxnState()
	for _, r := range recs {
		switch r.Type {
		case redo.TypePrepare:
			p.inDoubt[r.Txn] = string(r.Value)
		case redo.TypeCommitPrepared:
			p.resolveTxn(r.Txn, true, r.TS)
		case redo.TypeAbortPrepared:
			p.resolveTxn(r.Txn, false, 0)
		}
	}
	// A fresh log assigns LSNs from 1; re-appending the recovered records
	// reproduces their original contiguous LSNs.
	p.log.AppendBatch(recs)
	p.mgr = repl.NewManager(p.log, mode, quorum)
	p.ep = n.Register(id, region, p.handle)
	w, err := wal.Open(opts)
	if err != nil {
		return nil, nil, err
	}
	p.walW.Store(w)
	return p, wal.NewArchiverBatched(p.log, w, archiveBatch), nil
}

// ID returns the node's endpoint name.
func (p *Primary) ID() string { return p.id }

// Region returns the node's region.
func (p *Primary) Region() string { return p.region }

// Shard returns the shard this node owns.
func (p *Primary) Shard() int { return p.shard }

// Store exposes the MVCC store (loader, tests, promotion).
func (p *Primary) Store() *mvcc.Store { return p.store }

// Log exposes the redo log (shippers).
func (p *Primary) Log() *redo.Log { return p.log }

// Repl exposes the replication manager.
func (p *Primary) Repl() *repl.Manager { return p.mgr }

// Endpoint exposes the network endpoint (failure injection).
func (p *Primary) Endpoint() *netsim.Endpoint { return p.ep }

func (p *Primary) handle(ctx context.Context, m netsim.Message) (netsim.Message, error) {
	p.inflight.Add(1)
	defer p.inflight.Add(-1)
	switch req := m.Payload.(type) {
	case WriteReq:
		if err := p.execWrite(req); err != nil {
			return netsim.Message{}, err
		}
		return netsim.Message{Payload: WriteResp{}, Size: 8}, nil
	case ReadReq:
		v, found, err := p.store.Get(ctx, req.Key, req.SnapTS, mvcc.TxnID(req.Txn))
		if err != nil {
			return netsim.Message{}, err
		}
		return netsim.Message{Payload: ReadResp{Value: v, Found: found}, Size: len(v) + 8}, nil
	case ScanReq:
		kvs, err := p.store.Scan(ctx, req.Start, req.End, req.SnapTS, req.Limit, mvcc.TxnID(req.Txn))
		if err != nil {
			return netsim.Message{}, err
		}
		return netsim.Message{Payload: ScanResp{KVs: kvs}, Size: scanSize(kvs)}, nil
	case ScanPageReq:
		resp, err := servePage(ctx, p.store, req, mvcc.TxnID(req.Txn))
		if err != nil {
			return netsim.Message{}, err
		}
		return netsim.Message{Payload: resp, Size: scanSize(resp.KVs) + len(resp.Next)}, nil
	case PendingReq:
		p.mu.Lock()
		err := p.store.MarkPending(mvcc.TxnID(req.Txn))
		if err == nil {
			p.log.Append(redo.Record{Type: redo.TypePendingCommit, Txn: req.Txn})
		}
		p.mu.Unlock()
		if err != nil {
			return netsim.Message{}, err
		}
		return netsim.Message{Payload: GenericResp{}, Size: 8}, nil
	case CommitReq:
		if err := p.commit(ctx, req.Txn, req.TS, redo.TypeCommit, req.Sync); err != nil {
			return netsim.Message{}, err
		}
		return netsim.Message{Payload: GenericResp{}, Size: 8}, nil
	case AbortReq:
		p.mu.Lock()
		err := p.store.Abort(mvcc.TxnID(req.Txn))
		if err == nil {
			p.log.Append(redo.Record{Type: redo.TypeAbort, Txn: req.Txn})
		}
		p.mu.Unlock()
		if err != nil && !errors.Is(err, mvcc.ErrTxnNotFound) {
			return netsim.Message{}, err
		}
		return netsim.Message{Payload: GenericResp{}, Size: 8}, nil
	case PrepareReq:
		p.mu.Lock()
		err := p.store.MarkPrepared(mvcc.TxnID(req.Txn))
		var lsn uint64
		if err == nil {
			// The anchor rides in the record so recovery knows whom to ask.
			lsn = p.log.Append(redo.Record{Type: redo.TypePrepare, Txn: req.Txn, Value: []byte(req.Anchor)})
		}
		p.mu.Unlock()
		if err != nil {
			return netsim.Message{}, err
		}
		p.trackPrepared(req.Txn, req.Anchor)
		// A prepare ack is a durability promise: after it, only the anchor's
		// decision may abort the txn — a crash must not.
		if err := p.waitWAL(ctx, lsn); err != nil {
			return netsim.Message{}, err
		}
		return netsim.Message{Payload: GenericResp{}, Size: 8}, nil
	case CommitPreparedReq:
		if err := p.commit(ctx, req.Txn, req.TS, redo.TypeCommitPrepared, req.Sync); err != nil {
			return netsim.Message{}, err
		}
		return netsim.Message{Payload: GenericResp{}, Size: 8}, nil
	case AbortPreparedReq:
		p.mu.Lock()
		err := p.store.Abort(mvcc.TxnID(req.Txn))
		if err == nil {
			p.log.Append(redo.Record{Type: redo.TypeAbortPrepared, Txn: req.Txn})
		}
		p.mu.Unlock()
		if err != nil && !errors.Is(err, mvcc.ErrTxnNotFound) {
			return netsim.Message{}, err
		}
		p.resolveTxn(req.Txn, false, 0)
		return netsim.Message{Payload: GenericResp{}, Size: 8}, nil
	case TxnStatusReq:
		p.tmu.Lock()
		out, known := p.outcomes[req.Txn]
		_, prepared := p.inDoubt[req.Txn]
		p.tmu.Unlock()
		return netsim.Message{Payload: TxnStatusResp{
			Known: known, Committed: out.committed, TS: out.ts, Prepared: prepared,
		}, Size: 24}, nil
	case InDoubtReq:
		p.tmu.Lock()
		txns := make([]InDoubtTxn, 0, len(p.inDoubt))
		for txn, anchor := range p.inDoubt {
			txns = append(txns, InDoubtTxn{Txn: txn, Anchor: anchor})
		}
		p.tmu.Unlock()
		return netsim.Message{Payload: InDoubtResp{Txns: txns}, Size: 16 + 24*len(txns)}, nil
	case HeartbeatReq:
		p.mu.Lock()
		p.log.Append(redo.Record{Type: redo.TypeHeartbeat, TS: req.TS})
		p.store.AdvanceCommitWatermark(req.TS)
		p.mu.Unlock()
		return netsim.Message{Payload: GenericResp{}, Size: 8}, nil
	case DDLReq:
		p.mu.Lock()
		p.log.Append(redo.Record{Type: redo.TypeDDL, Txn: req.Table, TS: req.TS, Value: req.Schema})
		p.store.AdvanceCommitWatermark(req.TS)
		p.mu.Unlock()
		return netsim.Message{Payload: GenericResp{}, Size: 8}, nil
	case StatusReq:
		return netsim.Message{Payload: StatusResp{
			LastCommitTS: p.store.LastCommitTS(),
			Load:         p.inflight.Load(),
			Primary:      true,
		}, Size: 32}, nil
	default:
		return netsim.Message{}, fmt.Errorf("%w: %T", ErrBadRequest, m.Payload)
	}
}

func (p *Primary) execWrite(req WriteReq) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	txn := mvcc.TxnID(req.Txn)
	recs := make([]redo.Record, 0, len(req.Ops))
	for _, op := range req.Ops {
		if op.Delete {
			if err := p.store.Delete(txn, op.Key, req.SnapTS); err != nil {
				p.appendLocked(recs)
				return err
			}
			recs = append(recs, redo.Record{Type: redo.TypeHeapDelete, Txn: req.Txn, Key: op.Key})
		} else {
			if err := p.store.Put(txn, op.Key, op.Value, req.SnapTS); err != nil {
				p.appendLocked(recs)
				return err
			}
			recs = append(recs, redo.Record{Type: redo.TypeHeapUpdate, Txn: req.Txn, Key: op.Key, Value: op.Value})
		}
	}
	p.appendLocked(recs)
	return nil
}

func (p *Primary) appendLocked(recs []redo.Record) {
	if len(recs) > 0 {
		p.log.AppendBatch(recs)
	}
}

// commit applies the commit and, under synchronous replication (cluster
// mode or per-table sync), waits for the quorum before returning
// (Sec. II-A).
func (p *Primary) commit(ctx context.Context, txn uint64, commitTS ts.Timestamp, typ redo.Type, sync bool) error {
	p.mu.Lock()
	err := p.store.Commit(mvcc.TxnID(txn), commitTS)
	var lsn uint64
	if err == nil {
		lsn = p.log.Append(redo.Record{Type: typ, Txn: txn, TS: commitTS})
	}
	p.mu.Unlock()
	if err != nil {
		return err
	}
	if typ == redo.TypeCommitPrepared {
		p.resolveTxn(txn, true, commitTS)
	}
	// Local WAL durability first (the group-commit wait), then replication.
	// The wait runs outside p.mu so other commits append into the same
	// fsync group while this one parks.
	if err := p.waitWAL(ctx, lsn); err != nil {
		return err
	}
	if sync {
		return p.mgr.WaitReplicated(ctx, lsn)
	}
	return p.mgr.WaitDurable(ctx, lsn)
}

// servePage dispatches one paged-scan request: a raw MVCC page when no
// fragment is attached, or DN-side fragment execution otherwise. Raw scans
// report Examined = rows shipped (nothing is dropped node-side).
func servePage(ctx context.Context, store *mvcc.Store, req ScanPageReq, reader mvcc.TxnID) (ScanPageResp, error) {
	t0 := time.Now()
	if req.Frag != nil {
		resp, err := execFragScanPage(ctx, store, req, reader)
		resp.ExecNanos = int64(time.Since(t0))
		return resp, err
	}
	kvs, next, more, err := store.ScanPage(ctx, req.Start, req.End, req.SnapTS,
		pageLimit(req.Limit, req.MaxPage), reader)
	if err != nil {
		return ScanPageResp{}, err
	}
	return ScanPageResp{KVs: kvs, Next: next, More: more, Examined: len(kvs),
		ExecNanos: int64(time.Since(t0))}, nil
}

func scanSize(kvs []mvcc.KV) int {
	n := 16
	for _, kv := range kvs {
		n += len(kv.Key) + len(kv.Value)
	}
	return n
}

// Replica is a shard's read-only node.
type Replica struct {
	id     string
	region string
	shard  int

	applier *repl.Applier
	ep      *netsim.Endpoint
	replEp  *netsim.Endpoint

	inflight atomic.Int64
}

// ReplEndpointName returns the replication endpoint name for a replica id.
func ReplEndpointName(id string) string { return "repl:" + id }

// NewReplica creates a replica DN, registering both its read endpoint (id)
// and its replication endpoint (ReplEndpointName(id)).
func NewReplica(n *netsim.Network, id, region string, shard int) *Replica {
	return NewReplicaFromStore(n, id, region, shard, mvcc.NewStore())
}

// NewReplicaFromStore creates a replica over a pre-seeded store (failover
// re-seeding after a promotion); the applier expects the new primary's
// fresh log from LSN 1.
func NewReplicaFromStore(n *netsim.Network, id, region string, shard int, store *mvcc.Store) *Replica {
	r := &Replica{id: id, region: region, shard: shard, applier: repl.NewApplier(store)}
	r.ep = n.Register(id, region, r.handle)
	r.replEp = repl.ServeApplier(n, ReplEndpointName(id), region, r.applier, repl.Flate{})
	return r
}

// ID returns the replica's read endpoint name.
func (r *Replica) ID() string { return r.id }

// Region returns the node's region.
func (r *Replica) Region() string { return r.region }

// Shard returns the shard this node replicates.
func (r *Replica) Shard() int { return r.shard }

// Applier exposes the replay state.
func (r *Replica) Applier() *repl.Applier { return r.applier }

// Endpoint exposes the read endpoint (failure injection).
func (r *Replica) Endpoint() *netsim.Endpoint { return r.ep }

// ReplEndpoint exposes the replication endpoint (failure injection).
func (r *Replica) ReplEndpoint() *netsim.Endpoint { return r.replEp }

// SetDown marks both endpoints up or down.
func (r *Replica) SetDown(down bool) {
	r.ep.SetDown(down)
	r.replEp.SetDown(down)
}

func (r *Replica) handle(ctx context.Context, m netsim.Message) (netsim.Message, error) {
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	store := r.applier.Store()
	switch req := m.Payload.(type) {
	case ReadReq:
		v, found, err := store.Get(ctx, req.Key, req.SnapTS, 0)
		if err != nil {
			return netsim.Message{}, err
		}
		return netsim.Message{Payload: ReadResp{Value: v, Found: found}, Size: len(v) + 8}, nil
	case ScanReq:
		kvs, err := store.Scan(ctx, req.Start, req.End, req.SnapTS, req.Limit, 0)
		if err != nil {
			return netsim.Message{}, err
		}
		return netsim.Message{Payload: ScanResp{KVs: kvs}, Size: scanSize(kvs)}, nil
	case ScanPageReq:
		resp, err := servePage(ctx, store, req, 0)
		if err != nil {
			return netsim.Message{}, err
		}
		return netsim.Message{Payload: resp, Size: scanSize(resp.KVs) + len(resp.Next)}, nil
	case StatusReq:
		return netsim.Message{Payload: StatusResp{
			LastCommitTS: r.applier.MaxCommitTS(),
			AppliedLSN:   r.applier.AppliedLSN(),
			Load:         r.inflight.Load(),
		}, Size: 32}, nil
	default:
		return netsim.Message{}, fmt.Errorf("%w: %T", ErrBadRequest, m.Payload)
	}
}

// Client is a typed RPC client for data nodes, homed in a region.
type Client struct {
	net      *netsim.Network
	region   string
	scanRows atomic.Int64 // rows received in scan responses (WAN-crossing rows)
}

// NewClient returns a client that calls from region.
func NewClient(n *netsim.Network, region string) *Client {
	return &Client{net: n, region: region}
}

// Region returns the client's home region.
func (c *Client) Region() string { return c.region }

func (c *Client) call(ctx context.Context, node string, payload any, size int) (any, error) {
	resp, err := c.net.Call(ctx, c.region, node, netsim.Message{Payload: payload, Size: size})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// Write stages ops on node for txn.
func (c *Client) Write(ctx context.Context, node string, txn uint64, snap ts.Timestamp, ops []WriteOp) error {
	size := 24
	for _, op := range ops {
		size += op.size()
	}
	_, err := c.call(ctx, node, WriteReq{Txn: txn, SnapTS: snap, Ops: ops}, size)
	return err
}

// Read performs a point read.
func (c *Client) Read(ctx context.Context, node string, key []byte, snap ts.Timestamp, txn uint64) ([]byte, bool, error) {
	p, err := c.call(ctx, node, ReadReq{Key: key, SnapTS: snap, Txn: txn}, len(key)+24)
	if err != nil {
		return nil, false, err
	}
	r := p.(ReadResp)
	return r.Value, r.Found, nil
}

// Scan performs a range scan.
func (c *Client) Scan(ctx context.Context, node string, start, end []byte, snap ts.Timestamp, limit int, txn uint64) ([]mvcc.KV, error) {
	p, err := c.call(ctx, node, ScanReq{Start: start, End: end, SnapTS: snap, Limit: limit, Txn: txn}, len(start)+len(end)+32)
	if err != nil {
		return nil, err
	}
	kvs := p.(ScanResp).KVs
	c.scanRows.Add(int64(len(kvs)))
	return kvs, nil
}

// ScanPage fetches one page of a resumable range scan.
func (c *Client) ScanPage(ctx context.Context, node string, start, end []byte, snap ts.Timestamp,
	limit, maxPage int, txn uint64) (kvs []mvcc.KV, next []byte, more bool, err error) {
	resp, err := c.ScanPageFrag(ctx, node, start, end, snap, limit, maxPage, nil, txn)
	if err != nil {
		return nil, nil, false, err
	}
	return resp.KVs, resp.Next, resp.More, nil
}

// ScanPageFrag fetches one page of a resumable range scan, optionally
// shipping an encoded execution fragment for the data node to evaluate.
// The returned response includes how many storage rows the node examined,
// so callers can account DN-side filtering.
func (c *Client) ScanPageFrag(ctx context.Context, node string, start, end []byte, snap ts.Timestamp,
	limit, maxPage int, frag []byte, txn uint64) (ScanPageResp, error) {
	p, err := c.call(ctx, node, ScanPageReq{Start: start, End: end, SnapTS: snap,
		Limit: limit, MaxPage: maxPage, Txn: txn, Frag: frag}, len(start)+len(end)+len(frag)+40)
	if err != nil {
		return ScanPageResp{}, err
	}
	resp := p.(ScanPageResp)
	c.scanRows.Add(int64(len(resp.KVs)))
	return resp, nil
}

// ScanRowsFetched reports the total rows this client has received in scan
// responses — the rows that actually crossed the (simulated) network.
func (c *Client) ScanRowsFetched() int64 { return c.scanRows.Load() }

// Pending writes the PENDING COMMIT record for txn.
func (c *Client) Pending(ctx context.Context, node string, txn uint64) error {
	_, err := c.call(ctx, node, PendingReq{Txn: txn}, 16)
	return err
}

// Commit commits a single-shard transaction. sync forces a replica wait
// (per-table synchronous replication).
func (c *Client) Commit(ctx context.Context, node string, txn uint64, commitTS ts.Timestamp, sync bool) error {
	_, err := c.call(ctx, node, CommitReq{Txn: txn, TS: commitTS, Sync: sync}, 24)
	return err
}

// Abort aborts a transaction.
func (c *Client) Abort(ctx context.Context, node string, txn uint64) error {
	_, err := c.call(ctx, node, AbortReq{Txn: txn}, 16)
	return err
}

// Prepare runs 2PC phase one on node, recording anchor as the participant
// holding the authoritative decision.
func (c *Client) Prepare(ctx context.Context, node string, txn uint64, anchor string) error {
	_, err := c.call(ctx, node, PrepareReq{Txn: txn, Anchor: anchor}, 16+len(anchor))
	return err
}

// TxnStatus asks node for a 2PC transaction's resolution.
func (c *Client) TxnStatus(ctx context.Context, node string, txn uint64) (TxnStatusResp, error) {
	p, err := c.call(ctx, node, TxnStatusReq{Txn: txn}, 16)
	if err != nil {
		return TxnStatusResp{}, err
	}
	return p.(TxnStatusResp), nil
}

// InDoubt lists node's prepared-but-unresolved transactions.
func (c *Client) InDoubt(ctx context.Context, node string) ([]InDoubtTxn, error) {
	p, err := c.call(ctx, node, InDoubtReq{}, 8)
	if err != nil {
		return nil, err
	}
	return p.(InDoubtResp).Txns, nil
}

// CommitPrepared commits a prepared transaction. sync as in Commit.
func (c *Client) CommitPrepared(ctx context.Context, node string, txn uint64, commitTS ts.Timestamp, sync bool) error {
	_, err := c.call(ctx, node, CommitPreparedReq{Txn: txn, TS: commitTS, Sync: sync}, 24)
	return err
}

// AbortPrepared aborts a prepared transaction.
func (c *Client) AbortPrepared(ctx context.Context, node string, txn uint64) error {
	_, err := c.call(ctx, node, AbortPreparedReq{Txn: txn}, 16)
	return err
}

// Heartbeat advances the shard's commit watermark.
func (c *Client) Heartbeat(ctx context.Context, node string, t ts.Timestamp) error {
	_, err := c.call(ctx, node, HeartbeatReq{TS: t}, 16)
	return err
}

// DDL records a catalog change on node.
func (c *Client) DDL(ctx context.Context, node string, tableID uint64, t ts.Timestamp, schema []byte) error {
	_, err := c.call(ctx, node, DDLReq{Table: tableID, TS: t, Schema: schema}, 24+len(schema))
	return err
}

// Status fetches a node's metrics.
func (c *Client) Status(ctx context.Context, node string) (StatusResp, error) {
	p, err := c.call(ctx, node, StatusReq{}, 8)
	if err != nil {
		return StatusResp{}, err
	}
	return p.(StatusResp), nil
}
