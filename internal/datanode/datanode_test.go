package datanode

import (
	"context"
	"errors"
	"testing"
	"time"

	"globaldb/internal/netsim"
	"globaldb/internal/redo"
	"globaldb/internal/repl"
	"globaldb/internal/ts"
)

var bg = context.Background()

type rig struct {
	net     *netsim.Network
	primary *Primary
	replica *Replica
	client  *Client
}

// newRig builds one primary in "east" with one replica in "west" and a
// client in "east".
func newRig(t *testing.T, mode repl.Mode) *rig {
	t.Helper()
	n := netsim.New(netsim.Config{TimeScale: 0.2})
	n.SetLink("east", "west", 20*time.Millisecond, 0)
	r := &rig{net: n}
	r.primary = NewPrimary(n, "dn0", "east", 0, mode, 1)
	r.replica = NewReplica(n, "dn0r0", "west", 0)
	sh := NewShipperForTest(n, r.primary, r.replica)
	t.Cleanup(sh.Stop)
	r.client = NewClient(n, "east")
	return r
}

// NewShipperForTest wires a shipper from primary to replica with default
// config and registers it with the primary's manager.
func NewShipperForTest(n *netsim.Network, p *Primary, r *Replica) *repl.Shipper {
	sh := repl.NewShipper(repl.DefaultShipperConfig(), n, p.Region(), ReplEndpointName(r.ID()), p.Log(), p.Repl().AckHook())
	p.Repl().AddShipper(sh)
	sh.Start()
	return sh
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestWriteCommitReadCycle(t *testing.T) {
	r := newRig(t, repl.Async)
	ops := []WriteOp{{Key: []byte("k1"), Value: []byte("v1")}, {Key: []byte("k2"), Value: []byte("v2")}}
	if err := r.client.Write(bg, "dn0", 1, 0, ops); err != nil {
		t.Fatal(err)
	}
	if err := r.client.Pending(bg, "dn0", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.client.Commit(bg, "dn0", 1, 100, false); err != nil {
		t.Fatal(err)
	}
	v, found, err := r.client.Read(bg, "dn0", []byte("k1"), 100, 0)
	if err != nil || !found || string(v) != "v1" {
		t.Fatalf("read: %q %v %v", v, found, err)
	}
	// The replica converges to the same state.
	waitFor(t, "replica replay", func() bool { return r.replica.Applier().MaxCommitTS() >= 100 })
	v, found, err = r.client.Read(bg, "dn0r0", []byte("k2"), 100, 0)
	if err != nil || !found || string(v) != "v2" {
		t.Fatalf("replica read: %q %v %v", v, found, err)
	}
}

func TestWriteConflictPropagates(t *testing.T) {
	r := newRig(t, repl.Async)
	if err := r.client.Write(bg, "dn0", 1, 0, []WriteOp{{Key: []byte("k"), Value: []byte("a")}}); err != nil {
		t.Fatal(err)
	}
	err := r.client.Write(bg, "dn0", 2, 0, []WriteOp{{Key: []byte("k"), Value: []byte("b")}})
	if err == nil {
		t.Fatal("conflicting write must fail")
	}
	// Loser aborts; winner proceeds.
	if err := r.client.Abort(bg, "dn0", 2); err != nil {
		t.Fatal(err)
	}
	if err := r.client.Pending(bg, "dn0", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.client.Commit(bg, "dn0", 1, 10, false); err != nil {
		t.Fatal(err)
	}
}

func TestAbortCleansReplica(t *testing.T) {
	r := newRig(t, repl.Async)
	r.client.Write(bg, "dn0", 5, 0, []WriteOp{{Key: []byte("x"), Value: []byte("ghost")}})
	r.client.Pending(bg, "dn0", 5)
	if err := r.client.Abort(bg, "dn0", 5); err != nil {
		t.Fatal(err)
	}
	// Write a later txn so we can detect replay completion.
	r.client.Write(bg, "dn0", 6, 0, []WriteOp{{Key: []byte("y"), Value: []byte("real")}})
	r.client.Pending(bg, "dn0", 6)
	r.client.Commit(bg, "dn0", 6, 50, false)
	waitFor(t, "replay", func() bool { return r.replica.Applier().MaxCommitTS() >= 50 })
	_, found, err := r.client.Read(bg, "dn0r0", []byte("x"), ts.Max, 0)
	if err != nil || found {
		t.Fatalf("aborted write on replica: found=%v err=%v", found, err)
	}
}

func TestDeleteOp(t *testing.T) {
	r := newRig(t, repl.Async)
	r.client.Write(bg, "dn0", 1, 0, []WriteOp{{Key: []byte("k"), Value: []byte("v")}})
	r.client.Pending(bg, "dn0", 1)
	r.client.Commit(bg, "dn0", 1, 10, false)
	if err := r.client.Write(bg, "dn0", 2, 10, []WriteOp{{Delete: true, Key: []byte("k")}}); err != nil {
		t.Fatal(err)
	}
	r.client.Pending(bg, "dn0", 2)
	r.client.Commit(bg, "dn0", 2, 20, false)
	if _, found, _ := r.client.Read(bg, "dn0", []byte("k"), 20, 0); found {
		t.Fatal("deleted key visible")
	}
	if _, found, _ := r.client.Read(bg, "dn0", []byte("k"), 10, 0); !found {
		t.Fatal("pre-delete snapshot must see the key")
	}
	waitFor(t, "replay", func() bool { return r.replica.Applier().MaxCommitTS() >= 20 })
	if _, found, _ := r.client.Read(bg, "dn0r0", []byte("k"), 20, 0); found {
		t.Fatal("deleted key visible on replica")
	}
}

func TestScanOnPrimaryAndReplica(t *testing.T) {
	r := newRig(t, repl.Async)
	ops := []WriteOp{
		{Key: []byte("a1"), Value: []byte("1")},
		{Key: []byte("a2"), Value: []byte("2")},
		{Key: []byte("b1"), Value: []byte("3")},
	}
	r.client.Write(bg, "dn0", 1, 0, ops)
	r.client.Pending(bg, "dn0", 1)
	r.client.Commit(bg, "dn0", 1, 10, false)
	kvs, err := r.client.Scan(bg, "dn0", []byte("a"), []byte("b"), 10, 0, 0)
	if err != nil || len(kvs) != 2 {
		t.Fatalf("primary scan: %v %v", kvs, err)
	}
	waitFor(t, "replay", func() bool { return r.replica.Applier().MaxCommitTS() >= 10 })
	kvs, err = r.client.Scan(bg, "dn0r0", nil, nil, 10, 2, 0)
	if err != nil || len(kvs) != 2 {
		t.Fatalf("replica limited scan: %v %v", kvs, err)
	}
}

func TestTwoPhaseCommitFlow(t *testing.T) {
	r := newRig(t, repl.Async)
	r.client.Write(bg, "dn0", 9, 0, []WriteOp{{Key: []byte("k"), Value: []byte("v")}})
	if err := r.client.Prepare(bg, "dn0", 9, "dn0"); err != nil {
		t.Fatal(err)
	}
	// Prepared intents block readers on the primary too.
	ctx, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	_, _, err := r.client.Read(ctx, "dn0", []byte("k"), ts.Max, 0)
	cancel()
	if err == nil {
		t.Fatal("prepared tuple must block reads")
	}
	if err := r.client.CommitPrepared(bg, "dn0", 9, 30, false); err != nil {
		t.Fatal(err)
	}
	v, found, err := r.client.Read(bg, "dn0", []byte("k"), 30, 0)
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("after commit prepared: %q %v %v", v, found, err)
	}
	waitFor(t, "replay", func() bool { return r.replica.Applier().MaxCommitTS() >= 30 })
}

func TestAbortPreparedFlow(t *testing.T) {
	r := newRig(t, repl.Async)
	r.client.Write(bg, "dn0", 9, 0, []WriteOp{{Key: []byte("k"), Value: []byte("v")}})
	r.client.Prepare(bg, "dn0", 9, "dn0")
	if err := r.client.AbortPrepared(bg, "dn0", 9); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := r.client.Read(bg, "dn0", []byte("k"), ts.Max, 0); found {
		t.Fatal("aborted prepared write visible")
	}
}

func TestHeartbeatAdvancesReplica(t *testing.T) {
	r := newRig(t, repl.Async)
	if err := r.client.Heartbeat(bg, "dn0", 777); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "heartbeat replay", func() bool { return r.replica.Applier().MaxCommitTS() >= 777 })
	st, err := r.client.Status(bg, "dn0r0")
	if err != nil || st.LastCommitTS < 777 {
		t.Fatalf("replica status: %+v %v", st, err)
	}
	if st.Primary {
		t.Fatal("replica must not report primary role")
	}
}

func TestDDLRecordReachesReplica(t *testing.T) {
	r := newRig(t, repl.Async)
	if err := r.client.DDL(bg, "dn0", 42, 900, []byte(`{"name":"t"}`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "ddl replay", func() bool { return r.replica.Applier().MaxDDLTS() >= 900 })
}

func TestStatusLoadAndRole(t *testing.T) {
	r := newRig(t, repl.Async)
	st, err := r.client.Status(bg, "dn0")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Primary {
		t.Fatal("primary must report its role")
	}
}

func TestSyncReplicationCommitLatency(t *testing.T) {
	r := newRig(t, repl.SyncQuorum)
	r.client.Write(bg, "dn0", 1, 0, []WriteOp{{Key: []byte("k"), Value: []byte("v")}})
	r.client.Pending(bg, "dn0", 1)
	start := time.Now()
	if err := r.client.Commit(bg, "dn0", 1, 10, false); err != nil {
		t.Fatal(err)
	}
	// Scaled one-way is 2ms; a sync commit pays at least the shipping
	// round trip on top of the client RTT (client is local to primary).
	if e := time.Since(start); e < 4*time.Millisecond {
		t.Fatalf("sync commit returned in %v; replication wait missing", e)
	}
	if r.primary.Repl().MinAckedLSN() < r.primary.Log().LastLSN() {
		t.Fatal("commit acked before the replica applied it")
	}
}

func TestCommitUnknownTxnFails(t *testing.T) {
	r := newRig(t, repl.Async)
	if err := r.client.Commit(bg, "dn0", 999, 5, false); err == nil {
		t.Fatal("committing an unknown txn must fail")
	}
}

func TestEndpointDownFailsFast(t *testing.T) {
	r := newRig(t, repl.Async)
	r.primary.Endpoint().SetDown(true)
	if _, _, err := r.client.Read(bg, "dn0", []byte("k"), 1, 0); !errors.Is(err, netsim.ErrEndpointDown) {
		t.Fatalf("down primary: %v", err)
	}
}

func TestPromotionFromReplicaStore(t *testing.T) {
	r := newRig(t, repl.Async)
	r.client.Write(bg, "dn0", 1, 0, []WriteOp{{Key: []byte("k"), Value: []byte("v")}})
	r.client.Pending(bg, "dn0", 1)
	r.client.Commit(bg, "dn0", 1, 10, false)
	waitFor(t, "replay", func() bool { return r.replica.Applier().MaxCommitTS() >= 10 })

	// Primary dies; replica's store is promoted under a new endpoint.
	r.primary.Endpoint().SetDown(true)
	promoted := NewPrimaryFromStore(r.net, "dn0-promoted", "west", 0, r.replica.Applier().Store(), repl.Async, 1)
	v, found, err := r.client.Read(bg, "dn0-promoted", []byte("k"), 10, 0)
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("promoted read: %q %v %v", v, found, err)
	}
	// Writes continue on the promoted primary.
	if err := r.client.Write(bg, "dn0-promoted", 2, 10, []WriteOp{{Key: []byte("k2"), Value: []byte("v2")}}); err != nil {
		t.Fatal(err)
	}
	r.client.Pending(bg, "dn0-promoted", 2)
	if err := r.client.Commit(bg, "dn0-promoted", 2, 20, false); err != nil {
		t.Fatal(err)
	}
	if promoted.Store().LastCommitTS() != 20 {
		t.Fatalf("promoted watermark = %v", promoted.Store().LastCommitTS())
	}
}

func TestReplicaPendingCommitLockDuringLag(t *testing.T) {
	// A reader at a fresh snapshot that touches a pending tuple on the
	// replica must wait for the commit record rather than miss the txn.
	n := netsim.New(netsim.Config{TimeScale: 0.2})
	n.SetLink("east", "west", 20*time.Millisecond, 0)
	p := NewPrimary(n, "p", "east", 0, repl.Async, 1)
	rep := NewReplica(n, "r", "west", 0)
	// Ship manually so we control batch boundaries.
	cli := NewClient(n, "west")

	p.Store().Put(1, []byte("k"), []byte("v"), 0)
	p.Log().Append(redo.Record{Type: redo.TypeHeapUpdate, Txn: 1, Key: []byte("k"), Value: []byte("v")})
	p.Store().MarkPending(1)
	p.Log().Append(redo.Record{Type: redo.TypePendingCommit, Txn: 1})

	// Replay only the prefix (heap + pending) to the replica.
	recs, _ := p.Log().ReadFrom(1, 0)
	if _, err := rep.Applier().ApplyParallel(recs); err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	go func() {
		v, _, _ := cli.Read(bg, "r", []byte("k"), ts.Max, 0)
		got <- string(v)
	}()
	select {
	case v := <-got:
		t.Fatalf("read returned %q during pending window", v)
	case <-time.After(30 * time.Millisecond):
	}
	// Now the commit record arrives.
	p.Store().Commit(1, 99)
	p.Log().Append(redo.Record{Type: redo.TypeCommit, Txn: 1, TS: 99})
	recs, _ = p.Log().ReadFrom(3, 0)
	if _, err := rep.Applier().ApplyParallel(recs); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "v" {
			t.Fatalf("reader got %q", v)
		}
	case <-time.After(time.Second):
		t.Fatal("reader stuck after commit replay")
	}
}
