package datanode

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"globaldb/internal/netsim"
	"globaldb/internal/repl"
	"globaldb/internal/ts"
	"globaldb/internal/wal"
)

// TestKillAndRecoverAckedCommitsDurable is the group-commit durability
// contract end to end: commits acked under wal.SyncGroup must survive a
// crash that does NOT drain the archiver (Archiver.Kill). Concurrent
// committers hammer one primary; every ack the client observed must be
// visible after WAL replay.
func TestKillAndRecoverAckedCommitsDurable(t *testing.T) {
	dir := t.TempDir()
	n := netsim.New(netsim.Config{TimeScale: 0.2})
	n.SetLink("east", "west", 2*time.Millisecond, 0)
	p := NewPrimary(n, "dn0", "east", 0, repl.Async, 1)
	arch, err := p.AttachWALOptions(wal.Options{
		Dir:    dir,
		Sync:   wal.SyncGroup,
		Linger: 200 * time.Microsecond,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(n, "east")

	type acked struct {
		key, val []byte
		ts       ts.Timestamp
	}
	const committers = 8
	const rounds = 15
	var mu sync.Mutex
	var acks []acked
	var wg sync.WaitGroup
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				txn := uint64(g*rounds + r + 1)
				commitTS := ts.Timestamp(1000 + txn)
				k := []byte(fmt.Sprintf("g%d-r%d", g, r))
				v := []byte(fmt.Sprintf("v%d", txn))
				if err := c.Write(bg, "dn0", txn, ts.Max, []WriteOp{{Key: k, Value: v}}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if err := c.Commit(bg, "dn0", txn, commitTS, false); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				// The ack is in hand: this write is a durability promise.
				mu.Lock()
				acks = append(acks, acked{key: k, val: v, ts: commitTS})
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	st := p.WAL().GroupStats()
	if st.Fsyncs >= int64(committers*rounds) {
		t.Fatalf("fsyncs=%d for %d commits: group commit not coalescing", st.Fsyncs, committers*rounds)
	}
	if err := arch.Kill(); err != nil { // crash: no drain, no final sync
		t.Fatal(err)
	}
	p.Endpoint().SetDown(true)

	n2 := netsim.New(netsim.Config{TimeScale: 0.2})
	p2, closer2, err := RecoverPrimaryOptions(n2, "dn0", "east", 0,
		wal.Options{Dir: dir, Sync: wal.SyncGroup}, repl.Async, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer closer2.Close()
	for _, a := range acks {
		versions := p2.Store().Versions(a.key)
		found := false
		for _, ver := range versions {
			if ver.CommitTS == a.ts && string(ver.Value) == string(a.val) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("acked commit lost: key=%s ts=%v versions=%v", a.key, a.ts, versions)
		}
	}
}

// TestRecoverRebuildsInDoubtState: prepare records survive a crash with
// their anchor, resolved 2PC outcomes are queryable, and the in-doubt set
// contains exactly the unresolved transactions.
func TestRecoverRebuildsInDoubtState(t *testing.T) {
	dir := t.TempDir()
	n := netsim.New(netsim.Config{TimeScale: 0.2})
	n.SetLink("east", "west", 2*time.Millisecond, 0)
	p := NewPrimary(n, "dn0", "east", 0, repl.Async, 1)
	arch, err := p.AttachWALOptions(wal.Options{Dir: dir, Sync: wal.SyncGroup}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(n, "east")

	// Txn 1: prepared and committed (resolved outcome must survive).
	if err := c.Write(bg, "dn0", 1, ts.Max, []WriteOp{{Key: []byte("a"), Value: []byte("1")}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepare(bg, "dn0", 1, "dn-anchor"); err != nil {
		t.Fatal(err)
	}
	if err := c.CommitPrepared(bg, "dn0", 1, 500, false); err != nil {
		t.Fatal(err)
	}
	// Txn 2: prepared, never resolved (in doubt across the crash).
	if err := c.Write(bg, "dn0", 2, ts.Max, []WriteOp{{Key: []byte("b"), Value: []byte("2")}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepare(bg, "dn0", 2, "dn-anchor"); err != nil {
		t.Fatal(err)
	}
	if err := arch.Kill(); err != nil {
		t.Fatal(err)
	}
	p.Endpoint().SetDown(true)

	n2 := netsim.New(netsim.Config{TimeScale: 0.2})
	n2.SetLink("east", "west", 2*time.Millisecond, 0)
	_, closer2, err := RecoverPrimaryOptions(n2, "dn0", "east", 0,
		wal.Options{Dir: dir, Sync: wal.SyncGroup}, repl.Async, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer closer2.Close()
	c2 := NewClient(n2, "east")
	txns, err := c2.InDoubt(bg, "dn0")
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 1 || txns[0].Txn != 2 || txns[0].Anchor != "dn-anchor" {
		t.Fatalf("in-doubt = %+v, want txn 2 anchored at dn-anchor", txns)
	}
	st, err := c2.TxnStatus(bg, "dn0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Known || !st.Committed || st.TS != 500 {
		t.Fatalf("txn 1 status = %+v, want known commit at 500", st)
	}
	if st, _ := c2.TxnStatus(bg, "dn0", 2); st.Known || !st.Prepared {
		t.Fatalf("txn 2 status = %+v, want unresolved prepared", st)
	}
}
