package datanode

import (
	"bytes"
	"context"
	"sort"
	"sync"

	"globaldb/gsql/fragment"
	"globaldb/internal/keys"
	"globaldb/internal/storage/mvcc"
)

// This file is the data-node side of GlobalDB's distributed execution
// split: a ScanPageReq may carry an encoded plan fragment (filter +
// projection + partial aggregates, see globaldb/gsql/fragment), and the
// node evaluates it here, next to the data, so only qualifying or
// pre-aggregated tuples cross the WAN back to the computing node. The
// executor is stateless across requests — every page request re-decodes
// the fragment and resumes from the request's start key — and snapshot
// semantics come for free from the store's MVCC ScanPage, so the same code
// serves primaries (with read-own-writes and RCP replicas).
//
// Execution is batch-native: each storage page is decoded once into a
// column-major fragment.RowBatch backed by a pooled arena, the filter runs
// over the batch producing a selection vector, and survivors are either
// encoded for the wire (rows / projections, into one page buffer) or
// folded into per-group aggregate states — no per-row []any allocation
// anywhere on the hot path.

const (
	// fragScanBatch is how many storage rows the fragment executor pulls
	// per internal storage page — the row budget that bounds per-iteration
	// memory regardless of how much of the shard one RPC walks.
	fragScanBatch = 512
	// fragExamineBudget caps the storage rows one filter-pushdown RPC may
	// examine, so a highly selective predicate cannot turn a single request
	// into an unbounded full-shard walk; the request returns a resume key
	// and the cursor follows up. Aggregate fragments are exempt: they hold
	// only O(groups) state and must consume the whole range to produce a
	// mergeable partial.
	fragExamineBudget = 4096
)

// arenaPool recycles batch arenas across scan RPCs; an arena's slabs reach
// steady-state capacity after the first page and are then reused for every
// subsequent page and request.
//
// Recycling is safe even though the coordinator pipelines page requests
// (page N may still be consumed at the CN while page N+1 executes here and
// takes an arena from the pool — possibly the same one): a response never
// aliases arena memory. Shipped keys slice the immutable MVCC store, raw
// and filtered values slice the store too, and projected values are
// sliced out of a per-request encode buffer allocated in this call (see
// finishFragPage). The arena only backs the decoded column batch used
// transiently for filter/projection/aggregate evaluation.
var arenaPool = sync.Pool{New: func() any { return fragment.NewArena() }}

// execFragScanPage serves one paged scan request that carries a fragment.
// It returns the page, plus the count of storage rows examined so the
// computing node can account rows filtered out DN-side.
func execFragScanPage(ctx context.Context, store *mvcc.Store, req ScanPageReq, reader mvcc.TxnID) (ScanPageResp, error) {
	frag, err := fragment.Decode(req.Frag)
	if err != nil {
		return ScanPageResp{}, err
	}
	arena := arenaPool.Get().(*fragment.Arena)
	defer arenaPool.Put(arena)
	if frag.HasAggs() {
		return execFragAggregate(ctx, store, frag, arena, req, reader)
	}
	if frag.Lookup != nil {
		return execFragLookupJoin(ctx, store, frag, arena, req, reader)
	}
	outBudget := pageLimit(req.Limit, req.MaxPage)
	start := req.Start
	examined := 0
	var out []mvcc.KV
	// Projected page values are encoded into one buffer per page and sliced
	// per row after the page settles (appends may relocate the buffer, so
	// only offsets are recorded during the walk).
	var pageEnc *keys.Encoder
	var valOffs []int
	if frag.Project != nil {
		pageEnc = keys.NewEncoder(0)
	}
	// Decode only the columns the fragment references; the rest are
	// skipped byte-wise (no boxing, no string copies).
	need := frag.NeededCols()
	// The internal storage batch starts near the output budget — a
	// selective LIMIT then reads O(k) storage rows, not a full batch — and
	// grows geometrically when the filter keeps dropping rows, mirroring
	// the coordinator cursor's adaptive page growth.
	storageBatch := outBudget
	if storageBatch < 16 {
		storageBatch = 16
	}
	if storageBatch > fragScanBatch {
		storageBatch = fragScanBatch
	}
	for {
		kvs, next, more, err := store.ScanPage(ctx, start, req.End, req.SnapTS, storageBatch, reader)
		if err != nil {
			return ScanPageResp{}, err
		}
		if storageBatch < fragScanBatch {
			storageBatch *= 4
			if storageBatch > fragScanBatch {
				storageBatch = fragScanBatch
			}
		}
		// Decode the whole page once into the arena's column slabs.
		batch := arena.NewBatch(frag.Kinds, len(kvs))
		for i := range kvs {
			if err := batch.AppendStoredNeeded(kvs[i].Value, need); err != nil {
				return ScanPageResp{}, err
			}
		}
		// Filter the batch, stopping exactly when the output budget is met
		// so examined-row accounting matches row-at-a-time execution.
		sel, evaluated, err := frag.FilterBatch(batch, 0, outBudget-len(out), arena.Sel(len(kvs)))
		if err != nil {
			return ScanPageResp{}, err
		}
		examined += evaluated
		for _, r := range sel {
			kv := mvcc.KV{Key: kvs[r].Key, Value: kvs[r].Value}
			if frag.Project != nil {
				valOffs = append(valOffs, len(pageEnc.Bytes()))
				if err := frag.AppendProjected(pageEnc, batch, r); err != nil {
					return ScanPageResp{}, err
				}
				kv.Value = nil // sliced out of the page buffer below
			}
			out = append(out, kv)
		}
		if len(out) >= outBudget {
			// The page is full mid-range: resume at the successor of the
			// last shipped key (the same resume convention as
			// mvcc.ScanPage).
			last := evaluated - 1 // FilterBatch stops on the kept row
			if last+1 < len(kvs) || more {
				resume := append(bytes.Clone(kvs[last].Key), 0x00)
				if req.End == nil || bytes.Compare(resume, req.End) < 0 {
					return finishFragPage(out, pageEnc, valOffs, resume, true, examined), nil
				}
			}
			return finishFragPage(out, pageEnc, valOffs, nil, false, examined), nil
		}
		if !more {
			return finishFragPage(out, pageEnc, valOffs, nil, false, examined), nil
		}
		start = next
		if examined >= fragExamineBudget {
			// Work budget exhausted with the output page still open: hand
			// the resume key back so the next RPC continues the walk.
			return finishFragPage(out, pageEnc, valOffs, next, true, examined), nil
		}
	}
}

// finishFragPage slices projected values out of the settled page buffer
// (offset i to offset i+1) and assembles the response.
func finishFragPage(out []mvcc.KV, pageEnc *keys.Encoder, valOffs []int, next []byte, more bool, examined int) ScanPageResp {
	if pageEnc != nil {
		buf := pageEnc.Bytes()
		for i := range out {
			end := len(buf)
			if i+1 < len(valOffs) {
				end = valOffs[i+1]
			}
			out[i].Value = buf[valOffs[i]:end]
		}
	}
	return ScanPageResp{KVs: out, Next: next, More: more, Examined: examined}
}

// execFragLookupJoin serves one page of a pushed lookup join: for every
// outer row the fragment's filter keeps, it evaluates the key expressions,
// reads the matching inner-table rows from the same store (the planner only
// pushes co-located joins), and ships already-joined rows — outer projected
// columns followed by the shipped inner columns in one encoded value. The
// join's WAN cost is O(matching output); the inner reads stay node-side and
// are reported in Looked.
//
// Page breaks happen only at outer-row boundaries: when the output budget
// fills, the current outer row becomes the resume key (re-included, not
// skipped) and Examined covers only the rows strictly before it, so
// re-scanned rows are never double-counted. A page may therefore overshoot
// the budget by one outer row's fan-out.
func execFragLookupJoin(ctx context.Context, store *mvcc.Store, frag *fragment.Fragment, arena *fragment.Arena, req ScanPageReq, reader mvcc.TxnID) (ScanPageResp, error) {
	lk := frag.Lookup
	ship := lk.ShipCols()
	outBudget := pageLimit(req.Limit, req.MaxPage)
	start := req.Start
	examined, looked := 0, 0
	var out []mvcc.KV
	pageEnc := keys.NewEncoder(0) // joined values are always re-encoded
	var valOffs []int
	keyEnc := keys.NewEncoder(64)
	outerEnc := keys.NewEncoder(64)
	var innerRow []any
	keyVals := make([][]any, len(lk.KeyExprs))
	coerced := make([]any, len(lk.KeyExprs))
	need := frag.NeededCols()
	storageBatch := outBudget
	if storageBatch < 16 {
		storageBatch = 16
	}
	if storageBatch > fragScanBatch {
		storageBatch = fragScanBatch
	}
	for {
		kvs, next, more, err := store.ScanPage(ctx, start, req.End, req.SnapTS, storageBatch, reader)
		if err != nil {
			return ScanPageResp{}, err
		}
		if storageBatch < fragScanBatch {
			storageBatch *= 4
			if storageBatch > fragScanBatch {
				storageBatch = fragScanBatch
			}
		}
		batch := arena.NewBatch(frag.Kinds, len(kvs))
		for i := range kvs {
			if err := batch.AppendStoredNeeded(kvs[i].Value, need); err != nil {
				return ScanPageResp{}, err
			}
		}
		// The budget applies to joined output rows, so the filter always
		// evaluates the whole batch (no maxKeep).
		sel, _, err := frag.FilterBatch(batch, 0, 0, arena.Sel(len(kvs)))
		if err != nil {
			return ScanPageResp{}, err
		}
		// Evaluate every key expression over the surviving rows at once.
		for j := range lk.KeyExprs {
			if cap(keyVals[j]) < len(sel) {
				keyVals[j] = make([]any, len(sel))
			}
			keyVals[j] = keyVals[j][:len(sel)]
			if err := fragment.EvalBatch(&lk.KeyExprs[j], batch, sel, keyVals[j]); err != nil {
				return ScanPageResp{}, err
			}
		}
		resumeAt := -1
		for i, r := range sel {
			if len(out) >= outBudget {
				resumeAt = r
				break
			}
			// A NULL key value matches nothing (SQL equality is never TRUE
			// against NULL); an uncoercible type is a query error, exactly as
			// the computing node's own key-access path would report.
			nullKey := false
			for j := range coerced {
				cv, err := fragment.CoerceKey(lk.KeyKinds[j], keyVals[j][i])
				if err != nil {
					return ScanPageResp{}, err
				}
				if cv == nil {
					nullKey = true
					break
				}
				coerced[j] = cv
			}
			if nullKey {
				continue
			}
			keyEnc.Reset()
			keyEnc.AppendRaw(lk.Prefix)
			for _, cv := range coerced {
				if err := fragment.AppendKeyValue(keyEnc, cv); err != nil {
					return ScanPageResp{}, err
				}
			}
			innerKey := keyEnc.Bytes()
			ikvs, err := store.Scan(ctx, innerKey, keys.PrefixEnd(innerKey), req.SnapTS, 0, reader)
			if err != nil {
				return ScanPageResp{}, err
			}
			looked += len(ikvs)
			if len(ikvs) == 0 {
				continue
			}
			// Mirror the computing node's residual equality check on the rows
			// found: the stored key values equal the coerced values
			// byte-for-byte (exact-prefix scan), so one comparison per outer
			// row covers every match — and a cross-type comparison errors only
			// when at least one inner row matched, as the residual would.
			skipMatches := false
			for j := range coerced {
				c, err := fragment.Compare(coerced[j], keyVals[j][i])
				if err != nil {
					return ScanPageResp{}, err
				}
				if c != 0 {
					skipMatches = true
					break
				}
			}
			if skipMatches {
				continue
			}
			// The outer segment is identical for every match of this outer
			// row: encode it once and splice the bytes per joined row, so a
			// high fan-out costs one outer encode, not one per match.
			outerEnc.Reset()
			if err := frag.AppendOuter(outerEnc, batch, r); err != nil {
				return ScanPageResp{}, err
			}
			for _, ikv := range ikvs {
				if innerRow, err = lk.DecodeInnerRowAppend(ikv.Value, innerRow); err != nil {
					return ScanPageResp{}, err
				}
				valOffs = append(valOffs, len(pageEnc.Bytes()))
				pageEnc.AppendRaw(outerEnc.Bytes())
				if err := lk.AppendInner(pageEnc, innerRow, ship); err != nil {
					return ScanPageResp{}, err
				}
				out = append(out, mvcc.KV{Key: kvs[r].Key})
			}
		}
		if resumeAt >= 0 {
			examined += resumeAt // rows before the resume row are consumed
			resume := bytes.Clone(kvs[resumeAt].Key)
			resp := finishFragPage(out, pageEnc, valOffs, resume, true, examined)
			resp.Looked = looked
			return resp, nil
		}
		examined += len(kvs)
		if len(out) >= outBudget || !more {
			resp := finishFragPage(out, pageEnc, valOffs, next, more, examined)
			resp.Looked = looked
			return resp, nil
		}
		start = next
		if examined+looked >= fragExamineBudget {
			resp := finishFragPage(out, pageEnc, valOffs, next, true, examined)
			resp.Looked = looked
			return resp, nil
		}
	}
}

// execFragAggregate folds the entire requested range into per-group
// partial aggregate states and returns them as one page of
// (group key, encoded states) pairs in group-key order — O(groups) rows
// over the WAN instead of O(matching rows). Group keys are memcomparable,
// so the coordinator's cross-shard merge cursor sees equal groups from
// different shards adjacent and combines their states.
func execFragAggregate(ctx context.Context, store *mvcc.Store, frag *fragment.Fragment, arena *fragment.Arena, req ScanPageReq, reader mvcc.TxnID) (ScanPageResp, error) {
	type group struct {
		key    []byte
		states []fragment.AggState
	}
	groups := map[string]*group{}
	gids := make([]*group, 0, fragScanBatch) // group of each selected row
	keyEnc := keys.NewEncoder(64)
	start := req.Start
	examined := 0
	need := frag.NeededCols()
	for {
		kvs, next, more, err := store.ScanPage(ctx, start, req.End, req.SnapTS, fragScanBatch, reader)
		if err != nil {
			return ScanPageResp{}, err
		}
		batch := arena.NewBatch(frag.Kinds, len(kvs))
		for i := range kvs {
			if err := batch.AppendStoredNeeded(kvs[i].Value, need); err != nil {
				return ScanPageResp{}, err
			}
		}
		sel, evaluated, err := frag.FilterBatch(batch, 0, 0, arena.Sel(len(kvs)))
		if err != nil {
			return ScanPageResp{}, err
		}
		examined += evaluated
		// Resolve each surviving row's group once: the key is encoded into
		// a reused buffer and only cloned when a new group appears.
		gids = gids[:0]
		for _, r := range sel {
			keyEnc.Reset()
			if err := frag.AppendGroupKey(keyEnc, batch, r); err != nil {
				return ScanPageResp{}, err
			}
			g := groups[string(keyEnc.Bytes())]
			if g == nil {
				gkey := bytes.Clone(keyEnc.Bytes())
				g = &group{key: gkey, states: make([]fragment.AggState, len(frag.Aggs))}
				groups[string(gkey)] = g
			}
			gids = append(gids, g)
		}
		// Fold slot by slot: evaluate the argument over the whole selection
		// at once, then accumulate each value into its row's group state.
		for s, spec := range frag.Aggs {
			if spec.Star {
				for i := range gids {
					gids[i].states[s].Count++
				}
				continue
			}
			vals := arena.Out(len(sel))
			if err := fragment.EvalBatch(spec.Arg, batch, sel, vals); err != nil {
				return ScanPageResp{}, err
			}
			for i, g := range gids {
				if err := g.states[s].Fold(spec.Kind, vals[i]); err != nil {
					return ScanPageResp{}, err
				}
			}
		}
		if !more {
			break
		}
		start = next
	}
	out := make([]mvcc.KV, 0, len(groups))
	for _, g := range groups {
		val, err := fragment.EncodeStates(g.states)
		if err != nil {
			return ScanPageResp{}, err
		}
		out = append(out, mvcc.KV{Key: g.key, Value: val})
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Key, out[j].Key) < 0 })
	return ScanPageResp{KVs: out, Next: nil, More: false, Examined: examined}, nil
}
