package datanode

import (
	"bytes"
	"context"
	"sort"

	"globaldb/gsql/fragment"
	"globaldb/internal/storage/mvcc"
)

// This file is the data-node side of GlobalDB's distributed execution
// split: a ScanPageReq may carry an encoded plan fragment (filter +
// projection + partial aggregates, see globaldb/gsql/fragment), and the
// node evaluates it here, next to the data, so only qualifying or
// pre-aggregated tuples cross the WAN back to the computing node. The
// executor is stateless across requests — every page request re-decodes
// the fragment and resumes from the request's start key — and snapshot
// semantics come for free from the store's MVCC ScanPage, so the same code
// serves primaries (with read-own-writes) and RCP replicas.

const (
	// fragScanBatch is how many storage rows the fragment executor pulls
	// per internal storage page — the row budget that bounds per-iteration
	// memory regardless of how much of the shard one RPC walks.
	fragScanBatch = 512
	// fragExamineBudget caps the storage rows one filter-pushdown RPC may
	// examine, so a highly selective predicate cannot turn a single request
	// into an unbounded full-shard walk; the request returns a resume key
	// and the cursor follows up. Aggregate fragments are exempt: they hold
	// only O(groups) state and must consume the whole range to produce a
	// mergeable partial.
	fragExamineBudget = 4096
)

// execFragScanPage serves one paged scan request that carries a fragment.
// It returns the page, plus the count of storage rows examined so the
// computing node can account rows filtered out DN-side.
func execFragScanPage(ctx context.Context, store *mvcc.Store, req ScanPageReq, reader mvcc.TxnID) (ScanPageResp, error) {
	frag, err := fragment.Decode(req.Frag)
	if err != nil {
		return ScanPageResp{}, err
	}
	if frag.HasAggs() {
		return execFragAggregate(ctx, store, frag, req, reader)
	}
	outBudget := pageLimit(req.Limit, req.MaxPage)
	start := req.Start
	examined := 0
	var out []mvcc.KV
	// The internal storage batch starts near the output budget — a
	// selective LIMIT then reads O(k) storage rows, not a full batch — and
	// grows geometrically when the filter keeps dropping rows, mirroring
	// the coordinator cursor's adaptive page growth.
	batch := outBudget
	if batch < 16 {
		batch = 16
	}
	if batch > fragScanBatch {
		batch = fragScanBatch
	}
	for {
		kvs, next, more, err := store.ScanPage(ctx, start, req.End, req.SnapTS, batch, reader)
		if err != nil {
			return ScanPageResp{}, err
		}
		if batch < fragScanBatch {
			batch *= 4
			if batch > fragScanBatch {
				batch = fragScanBatch
			}
		}
		for i := range kvs {
			examined++
			row, err := frag.DecodeStoredRow(kvs[i].Value)
			if err != nil {
				return ScanPageResp{}, err
			}
			keep, err := frag.FilterRow(row)
			if err != nil {
				return ScanPageResp{}, err
			}
			if !keep {
				continue
			}
			val := kvs[i].Value
			if frag.Project != nil {
				if val, err = frag.EncodeProjected(row); err != nil {
					return ScanPageResp{}, err
				}
			}
			out = append(out, mvcc.KV{Key: kvs[i].Key, Value: val})
			if len(out) >= outBudget {
				// The page is full mid-range: resume at the successor of
				// the last shipped key (the same resume convention as
				// mvcc.ScanPage).
				if i+1 < len(kvs) || more {
					resume := append(bytes.Clone(kvs[i].Key), 0x00)
					if req.End == nil || bytes.Compare(resume, req.End) < 0 {
						return ScanPageResp{KVs: out, Next: resume, More: true, Examined: examined}, nil
					}
				}
				return ScanPageResp{KVs: out, Examined: examined}, nil
			}
		}
		if !more {
			return ScanPageResp{KVs: out, Examined: examined}, nil
		}
		start = next
		if examined >= fragExamineBudget {
			// Work budget exhausted with the output page still open: hand
			// the resume key back so the next RPC continues the walk.
			return ScanPageResp{KVs: out, Next: next, More: true, Examined: examined}, nil
		}
	}
}

// execFragAggregate folds the entire requested range into per-group
// partial aggregate states and returns them as one page of
// (group key, encoded states) pairs in group-key order — O(groups) rows
// over the WAN instead of O(matching rows). Group keys are memcomparable,
// so the coordinator's cross-shard merge cursor sees equal groups from
// different shards adjacent and combines their states.
func execFragAggregate(ctx context.Context, store *mvcc.Store, frag *fragment.Fragment, req ScanPageReq, reader mvcc.TxnID) (ScanPageResp, error) {
	type group struct {
		key    []byte
		states []fragment.AggState
	}
	groups := map[string]*group{}
	start := req.Start
	examined := 0
	for {
		kvs, next, more, err := store.ScanPage(ctx, start, req.End, req.SnapTS, fragScanBatch, reader)
		if err != nil {
			return ScanPageResp{}, err
		}
		for i := range kvs {
			examined++
			row, err := frag.DecodeStoredRow(kvs[i].Value)
			if err != nil {
				return ScanPageResp{}, err
			}
			keep, err := frag.FilterRow(row)
			if err != nil {
				return ScanPageResp{}, err
			}
			if !keep {
				continue
			}
			gkey, err := frag.EncodeGroupKey(row)
			if err != nil {
				return ScanPageResp{}, err
			}
			g := groups[string(gkey)]
			if g == nil {
				g = &group{key: gkey, states: make([]fragment.AggState, len(frag.Aggs))}
				groups[string(gkey)] = g
			}
			for s, spec := range frag.Aggs {
				if err := g.states[s].Accumulate(spec, row); err != nil {
					return ScanPageResp{}, err
				}
			}
		}
		if !more {
			break
		}
		start = next
	}
	out := make([]mvcc.KV, 0, len(groups))
	for _, g := range groups {
		val, err := fragment.EncodeStates(g.states)
		if err != nil {
			return ScanPageResp{}, err
		}
		out = append(out, mvcc.KV{Key: g.key, Value: val})
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Key, out[j].Key) < 0 })
	return ScanPageResp{KVs: out, Examined: examined}, nil
}
