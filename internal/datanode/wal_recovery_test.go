package datanode

import (
	"fmt"
	"testing"
	"time"

	"globaldb/internal/netsim"
	"globaldb/internal/repl"
	"globaldb/internal/ts"
)

// runTxns pushes n committed single-shard transactions through the client.
func runTxns(t *testing.T, c *Client, node string, n int, firstTxn uint64, firstTS ts.Timestamp) {
	t.Helper()
	for i := 0; i < n; i++ {
		txn := firstTxn + uint64(i)
		ops := []WriteOp{
			{Key: []byte(fmt.Sprintf("key-%03d", i%40)), Value: []byte(fmt.Sprintf("v-%d", txn))},
			{Key: []byte(fmt.Sprintf("key-%03d", (i+7)%40)), Value: []byte(fmt.Sprintf("w-%d", txn))},
		}
		if err := c.Write(bg, node, txn, ts.Max, ops); err != nil {
			t.Fatalf("txn %d write: %v", txn, err)
		}
		if err := c.Pending(bg, node, txn); err != nil {
			t.Fatalf("txn %d pending: %v", txn, err)
		}
		if err := c.Commit(bg, node, txn, firstTS+ts.Timestamp(i), false); err != nil {
			t.Fatalf("txn %d commit: %v", txn, err)
		}
	}
}

func TestPrimaryCrashRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	n := netsim.New(netsim.Config{TimeScale: 0.2})
	n.SetLink("east", "west", 10*time.Millisecond, 0)
	p := NewPrimary(n, "dn0", "east", 0, repl.Async, 1)
	closer, err := p.AttachWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(n, "east")
	runTxns(t, c, "dn0", 50, 1, 1000)
	before := p.Store().LastCommitTS()
	if err := closer.Close(); err != nil { // drain + "crash"
		t.Fatal(err)
	}
	p.Endpoint().SetDown(true) // the crashed node stops answering

	// Recover into a new node on a fresh network.
	n2 := netsim.New(netsim.Config{TimeScale: 0.2})
	n2.SetLink("east", "west", 10*time.Millisecond, 0)
	p2, closer2, err := RecoverPrimary(n2, "dn0", "east", 0, dir, repl.Async, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer closer2.Close()
	if got := p2.Store().LastCommitTS(); got != before {
		t.Fatalf("recovered watermark %v, want %v", got, before)
	}
	if p2.Log().LastLSN() != p.Log().LastLSN() {
		t.Fatalf("recovered log LSN %d, want %d", p2.Log().LastLSN(), p.Log().LastLSN())
	}
	// Reads see the pre-crash data.
	c2 := NewClient(n2, "east")
	v, found, err := c2.Read(bg, "dn0", []byte("key-000"), ts.Max, 0)
	if err != nil || !found {
		t.Fatalf("read after recovery: %q %v %v", v, found, err)
	}
	// The recovered node accepts new transactions with continuing LSNs.
	runTxns(t, c2, "dn0", 5, 100, 2000)
	if p2.Store().LastCommitTS() != 2004 {
		t.Fatalf("watermark after new txns = %v", p2.Store().LastCommitTS())
	}
}

func TestRecoveredPrimaryServesReplicas(t *testing.T) {
	dir := t.TempDir()
	n := netsim.New(netsim.Config{TimeScale: 0.2})
	n.SetLink("east", "west", 10*time.Millisecond, 0)
	p := NewPrimary(n, "dn0", "east", 0, repl.Async, 1)
	closer, err := p.AttachWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(n, "east")
	runTxns(t, c, "dn0", 20, 1, 500)
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover on a fresh network and attach a brand-new replica: the
	// re-seeded log must ship the full history from LSN 1.
	n2 := netsim.New(netsim.Config{TimeScale: 0.2})
	n2.SetLink("east", "west", 10*time.Millisecond, 0)
	p2, closer2, err := RecoverPrimary(n2, "dn0", "east", 0, dir, repl.Async, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer closer2.Close()
	rep := NewReplica(n2, "dn0r0", "west", 0)
	sh := NewShipperForTest(n2, p2, rep)
	defer sh.Stop()

	waitFor(t, "replica catch-up from recovered log", func() bool {
		return rep.Applier().MaxCommitTS() >= 519
	})
	c2 := NewClient(n2, "west")
	v, found, err := c2.Read(bg, "dn0r0", []byte("key-000"), ts.Max, 0)
	if err != nil || !found {
		t.Fatalf("replica read: %q %v %v", v, found, err)
	}
}

func TestWALArchiverKeepsUpUnderLoad(t *testing.T) {
	dir := t.TempDir()
	n := netsim.New(netsim.Config{TimeScale: 0.2})
	n.SetLink("east", "west", 10*time.Millisecond, 0)
	p := NewPrimary(n, "dn0", "east", 0, repl.Async, 1)
	closer, err := p.AttachWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(n, "east")
	runTxns(t, c, "dn0", 200, 1, 100)
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	// Every appended record must be durable after Close.
	n2 := netsim.New(netsim.Config{TimeScale: 0.2})
	n2.SetLink("east", "west", 10*time.Millisecond, 0)
	p2, closer2, err := RecoverPrimary(n2, "dn0", "east", 0, dir, repl.Async, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer closer2.Close()
	if p2.Log().LastLSN() != p.Log().LastLSN() {
		t.Fatalf("durable LSN %d, want %d", p2.Log().LastLSN(), p.Log().LastLSN())
	}
}
