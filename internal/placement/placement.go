// Package placement implements the paper's future-work "transparent load
// balancing based on geographical access patterns" (Sec. VI): computing
// nodes record which region drives each shard's traffic, and an advisor
// recommends relocating shard primaries toward their dominant access
// region. Writes weigh more than reads because they must always reach the
// primary, while reads can be absorbed by local replicas.
package placement

import (
	"fmt"
	"sort"
	"sync"
)

// Access counts one region's traffic against one shard.
type Access struct {
	Reads  int64
	Writes int64
}

// Tracker accumulates per-shard, per-region access counts. All methods are
// safe for concurrent use; every CN in the cluster shares one tracker.
type Tracker struct {
	mu     sync.Mutex
	counts map[int]map[string]*Access
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{counts: make(map[int]map[string]*Access)}
}

// RecordRead notes a primary read of shard issued from region.
func (t *Tracker) RecordRead(shard int, region string) { t.record(shard, region, 1, 0) }

// RecordWrite notes a write to shard issued from region.
func (t *Tracker) RecordWrite(shard int, region string) { t.record(shard, region, 0, 1) }

func (t *Tracker) record(shard int, region string, reads, writes int64) {
	t.mu.Lock()
	m, ok := t.counts[shard]
	if !ok {
		m = make(map[string]*Access)
		t.counts[shard] = m
	}
	a, ok := m[region]
	if !ok {
		a = &Access{}
		m[region] = a
	}
	a.Reads += reads
	a.Writes += writes
	t.mu.Unlock()
}

// Snapshot copies the current counts.
func (t *Tracker) Snapshot() map[int]map[string]Access {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]map[string]Access, len(t.counts))
	for shard, m := range t.counts {
		cm := make(map[string]Access, len(m))
		for region, a := range m {
			cm[region] = *a
		}
		out[shard] = cm
	}
	return out
}

// Reset clears the counts (start of a new observation window).
func (t *Tracker) Reset() {
	t.mu.Lock()
	t.counts = make(map[int]map[string]*Access)
	t.mu.Unlock()
}

// Config tunes the advisor.
type Config struct {
	// WriteWeight multiplies writes relative to reads when scoring a
	// region's interest in a shard. Writes must reach the primary, so they
	// dominate; reads can be served by local replicas.
	WriteWeight float64
	// MinAccesses ignores shards with less total (weighted) traffic.
	MinAccesses float64
	// MinAdvantage requires the dominant region's score to exceed the
	// current primary region's score by this factor before recommending a
	// move (hysteresis against flapping).
	MinAdvantage float64
}

// DefaultConfig returns conservative advisor settings.
func DefaultConfig() Config {
	return Config{WriteWeight: 4, MinAccesses: 16, MinAdvantage: 2}
}

// Move is one recommended primary relocation.
type Move struct {
	Shard int
	From  string
	To    string
	// Score is the weighted access of the target region.
	Score float64
	// CurrentScore is the weighted access of the current primary region.
	CurrentScore float64
}

func (m Move) String() string {
	return fmt.Sprintf("shard %d: %s -> %s (%.0f vs %.0f)", m.Shard, m.From, m.To, m.Score, m.CurrentScore)
}

// Advise scans an access snapshot and recommends moving each shard whose
// dominant region clearly out-weighs the current primary region. Moves
// come back sorted by descending advantage.
func Advise(snapshot map[int]map[string]Access, primaryRegion map[int]string, cfg Config) []Move {
	if cfg.WriteWeight <= 0 {
		cfg.WriteWeight = 1
	}
	if cfg.MinAdvantage <= 0 {
		cfg.MinAdvantage = 1
	}
	score := func(a Access) float64 {
		return float64(a.Reads) + cfg.WriteWeight*float64(a.Writes)
	}
	var moves []Move
	for shard, byRegion := range snapshot {
		cur, ok := primaryRegion[shard]
		if !ok {
			continue
		}
		total := 0.0
		bestRegion, bestScore := "", 0.0
		for region, a := range byRegion {
			s := score(a)
			total += s
			// Deterministic tie-break by region name.
			if s > bestScore || (s == bestScore && region < bestRegion) {
				bestRegion, bestScore = region, s
			}
		}
		if total < cfg.MinAccesses || bestRegion == "" || bestRegion == cur {
			continue
		}
		curScore := score(byRegion[cur])
		if bestScore < cfg.MinAdvantage*curScore || bestScore <= curScore {
			continue
		}
		moves = append(moves, Move{
			Shard: shard, From: cur, To: bestRegion,
			Score: bestScore, CurrentScore: curScore,
		})
	}
	sort.Slice(moves, func(i, j int) bool {
		ai := moves[i].Score - moves[i].CurrentScore
		aj := moves[j].Score - moves[j].CurrentScore
		if ai != aj {
			return ai > aj
		}
		return moves[i].Shard < moves[j].Shard
	})
	return moves
}
