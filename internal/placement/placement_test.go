package placement

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestTrackerCountsAndSnapshot(t *testing.T) {
	tr := NewTracker()
	tr.RecordWrite(0, "east")
	tr.RecordWrite(0, "east")
	tr.RecordRead(0, "west")
	tr.RecordRead(1, "east")
	snap := tr.Snapshot()
	if a := snap[0]["east"]; a.Writes != 2 || a.Reads != 0 {
		t.Fatalf("shard 0 east: %+v", a)
	}
	if a := snap[0]["west"]; a.Reads != 1 {
		t.Fatalf("shard 0 west: %+v", a)
	}
	if a := snap[1]["east"]; a.Reads != 1 {
		t.Fatalf("shard 1 east: %+v", a)
	}
	// Snapshot is a copy: mutating it does not affect the tracker.
	snap[0]["east"] = Access{Reads: 99}
	if a := tr.Snapshot()[0]["east"]; a.Writes != 2 {
		t.Fatalf("tracker mutated through snapshot: %+v", a)
	}
	tr.Reset()
	if len(tr.Snapshot()) != 0 {
		t.Fatal("reset must clear counts")
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			region := fmt.Sprintf("r%d", w%2)
			for i := 0; i < 1000; i++ {
				tr.RecordWrite(i%4, region)
				tr.RecordRead(i%4, region)
			}
		}(w)
	}
	wg.Wait()
	var writes int64
	for _, m := range tr.Snapshot() {
		for _, a := range m {
			writes += a.Writes
		}
	}
	if writes != 8000 {
		t.Fatalf("writes = %d, want 8000", writes)
	}
}

func TestAdviseRecommendsDominantRegion(t *testing.T) {
	snap := map[int]map[string]Access{
		0: {"east": {Writes: 100}, "west": {Writes: 5}},
		1: {"east": {Writes: 5}, "west": {Writes: 100}},
	}
	primary := map[int]string{0: "west", 1: "west"}
	moves := Advise(snap, primary, DefaultConfig())
	if len(moves) != 1 {
		t.Fatalf("moves = %v", moves)
	}
	if moves[0].Shard != 0 || moves[0].To != "east" || moves[0].From != "west" {
		t.Fatalf("move = %+v", moves[0])
	}
}

func TestAdviseHysteresis(t *testing.T) {
	// 1.5x advantage is below the 2x threshold: no move.
	snap := map[int]map[string]Access{
		0: {"east": {Writes: 30}, "west": {Writes: 20}},
	}
	primary := map[int]string{0: "west"}
	if moves := Advise(snap, primary, DefaultConfig()); len(moves) != 0 {
		t.Fatalf("moves = %v", moves)
	}
	// 3x advantage clears it.
	snap[0]["east"] = Access{Writes: 60}
	if moves := Advise(snap, primary, DefaultConfig()); len(moves) != 1 {
		t.Fatalf("moves = %v", moves)
	}
}

func TestAdviseIgnoresColdShards(t *testing.T) {
	snap := map[int]map[string]Access{
		0: {"east": {Writes: 2}}, // weighted 8 < MinAccesses 16
	}
	primary := map[int]string{0: "west"}
	if moves := Advise(snap, primary, DefaultConfig()); len(moves) != 0 {
		t.Fatalf("moves = %v", moves)
	}
}

func TestAdviseWriteWeightDominates(t *testing.T) {
	// West has many reads; east has fewer but heavier writes.
	snap := map[int]map[string]Access{
		0: {"west": {Reads: 40}, "east": {Writes: 30}}, // east score 120 vs 40
	}
	primary := map[int]string{0: "west"}
	moves := Advise(snap, primary, DefaultConfig())
	if len(moves) != 1 || moves[0].To != "east" {
		t.Fatalf("moves = %v", moves)
	}
	// With WriteWeight 1 the reads win and no move is advised.
	cfg := DefaultConfig()
	cfg.WriteWeight = 1
	if moves := Advise(snap, primary, cfg); len(moves) != 0 {
		t.Fatalf("moves = %v", moves)
	}
}

func TestAdviseOrdersByAdvantage(t *testing.T) {
	snap := map[int]map[string]Access{
		0: {"east": {Writes: 50}, "west": {Writes: 1}},
		1: {"east": {Writes: 500}, "west": {Writes: 1}},
	}
	primary := map[int]string{0: "west", 1: "west"}
	moves := Advise(snap, primary, DefaultConfig())
	if len(moves) != 2 || moves[0].Shard != 1 || moves[1].Shard != 0 {
		t.Fatalf("moves = %v", moves)
	}
}

func TestAdviseNeverMovesToCurrentRegion(t *testing.T) {
	// Property: no advised move has To == From, and every move's target
	// strictly beats the current region under the configured threshold.
	f := func(eastW, westW, northW uint16) bool {
		snap := map[int]map[string]Access{
			0: {
				"east":  {Writes: int64(eastW % 500)},
				"west":  {Writes: int64(westW % 500)},
				"north": {Writes: int64(northW % 500)},
			},
		}
		primary := map[int]string{0: "west"}
		cfg := DefaultConfig()
		for _, m := range Advise(snap, primary, cfg) {
			if m.To == m.From {
				return false
			}
			if m.Score < cfg.MinAdvantage*m.CurrentScore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
