package table

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func customerSchema() *Schema {
	return &Schema{
		ID:   7,
		Name: "customer",
		Columns: []Column{
			{Name: "c_w_id", Kind: Int64},
			{Name: "c_d_id", Kind: Int64},
			{Name: "c_id", Kind: Int64},
			{Name: "c_name", Kind: String},
			{Name: "c_balance", Kind: Float64},
			{Name: "c_data", Kind: Bytes},
			{Name: "c_good", Kind: Bool},
		},
		PK:      []int{0, 1, 2},
		Indexes: []Index{{ID: 8, Name: "customer_name", Cols: []int{0, 1, 3}}},
	}
}

func sampleRow() Row {
	return Row{int64(1), int64(2), int64(3), "Alice", 99.5, []byte{0xDE, 0xAD}, true}
}

func TestSchemaValidate(t *testing.T) {
	if err := customerSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := customerSchema()
	bad.PK = []int{99}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range PK must fail validation")
	}
	bad = customerSchema()
	bad.PK = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("missing PK must fail validation")
	}
	bad = customerSchema()
	bad.Indexes[0].Cols = []int{42}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range index column must fail validation")
	}
}

func TestRowRoundTrip(t *testing.T) {
	s := customerSchema()
	r := sampleRow()
	b, err := s.EncodeRow(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.DecodeRow(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip:\n got %#v\nwant %#v", got, r)
	}
}

func TestRowWithNulls(t *testing.T) {
	s := customerSchema()
	r := Row{int64(1), int64(2), int64(3), nil, nil, nil, nil}
	b, err := s.EncodeRow(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.DecodeRow(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("nulls: got %#v", got)
	}
}

func TestRowKindMismatch(t *testing.T) {
	s := customerSchema()
	r := sampleRow()
	r[0] = "not an int"
	if _, err := s.EncodeRow(r); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("kind mismatch: %v", err)
	}
	if _, err := s.EncodeRow(Row{int64(1)}); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatal("arity mismatch must fail")
	}
}

func TestPrimaryKeyOrdering(t *testing.T) {
	s := customerSchema()
	r1, r2 := sampleRow(), sampleRow()
	r2[2] = int64(4) // larger c_id
	k1, err := s.PrimaryKey(r1)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := s.PrimaryKey(r2)
	if bytes.Compare(k1, k2) >= 0 {
		t.Fatal("pk ordering must follow column values")
	}
	// Key built from values matches key built from row.
	k1b, err := s.PrimaryKeyFromValues([]any{int64(1), int64(2), int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k1, k1b) {
		t.Fatal("PrimaryKeyFromValues must agree with PrimaryKey")
	}
}

func TestPrimaryKeyHasTablePrefix(t *testing.T) {
	s := customerSchema()
	k, _ := s.PrimaryKey(sampleRow())
	if !bytes.HasPrefix(k, s.TablePrefix()) {
		t.Fatal("pk must start with the table prefix")
	}
	other := customerSchema()
	other.ID = 99
	k2, _ := other.PrimaryKey(sampleRow())
	if bytes.HasPrefix(k2, s.TablePrefix()) {
		t.Fatal("different tables must have disjoint key spaces")
	}
}

func TestIndexKeyAndPrefix(t *testing.T) {
	s := customerSchema()
	ix := s.Indexes[0]
	r := sampleRow()
	k, err := s.IndexKey(ix, r)
	if err != nil {
		t.Fatal(err)
	}
	// Prefix over (c_w_id, c_d_id, c_name) must cover the full entry.
	p, err := s.IndexPrefix(ix, []any{int64(1), int64(2), "Alice"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(k, p) {
		t.Fatal("index entry must start with its column prefix")
	}
	// A shorter prefix also covers it.
	p2, _ := s.IndexPrefix(ix, []any{int64(1)})
	if !bytes.HasPrefix(k, p2) {
		t.Fatal("partial prefix must cover the entry")
	}
	if _, err := s.IndexPrefix(ix, []any{int64(1), int64(2), "Alice", "extra"}); err == nil {
		t.Fatal("too many prefix values must fail")
	}
}

func TestRowRoundTripProperty(t *testing.T) {
	s := &Schema{
		ID: 3, Name: "t",
		Columns: []Column{{Name: "a", Kind: Int64}, {Name: "b", Kind: String}, {Name: "c", Kind: Float64}},
		PK:      []int{0},
	}
	f := func(a int64, b string, c float64) bool {
		if c != c { // NaN: float equality would fail below
			return true
		}
		r := Row{a, b, c}
		enc, err := s.EncodeRow(r)
		if err != nil {
			return false
		}
		got, err := s.DecodeRow(enc)
		return err == nil && reflect.DeepEqual(got, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRowCorrupt(t *testing.T) {
	s := customerSchema()
	b, _ := s.EncodeRow(sampleRow())
	if _, err := s.DecodeRow(b[:len(b)-3]); err == nil {
		t.Fatal("truncated row must fail")
	}
	if _, err := s.DecodeRow(append(bytes.Clone(b), 0x01)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
}

func TestColIndex(t *testing.T) {
	s := customerSchema()
	if s.ColIndex("c_balance") != 4 {
		t.Fatal("ColIndex wrong")
	}
	if s.ColIndex("nope") != -1 {
		t.Fatal("missing column must be -1")
	}
}

func TestCatalogCreateGetDrop(t *testing.T) {
	c := NewCatalog()
	s := customerSchema()
	if err := c.Create(s, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Create(s, 100); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	got, err := c.Get("customer")
	if err != nil || got.ID != s.ID {
		t.Fatalf("Get: %v %v", got, err)
	}
	if byID, err := c.GetByID(7); err != nil || byID.Name != "customer" {
		t.Fatalf("GetByID: %v %v", byID, err)
	}
	if len(c.Tables()) != 1 {
		t.Fatal("Tables")
	}
	if err := c.Drop("customer", 200); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("customer"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after drop: %v", err)
	}
	if err := c.Drop("customer", 300); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestCatalogDDLGate(t *testing.T) {
	c := NewCatalog()
	s1 := customerSchema()
	s2 := &Schema{ID: 20, Name: "orders", Columns: []Column{{Name: "id", Kind: Int64}}, PK: []int{0}}
	c.Create(s1, 100)
	c.Create(s2, 500)

	// RCP below every DDL: nothing allowed.
	if c.RORAllowed(50, s1.ID) {
		t.Fatal("RCP 50 must not allow reads on a table created at 100")
	}
	// Condition 2: RCP past the involved table's DDL, even though a newer
	// DDL exists elsewhere.
	if !c.RORAllowed(150, s1.ID) {
		t.Fatal("RCP 150 must allow reads on customer (DDL 100)")
	}
	if c.RORAllowed(150, s1.ID, s2.ID) {
		t.Fatal("RCP 150 must not allow reads involving orders (DDL 500)")
	}
	// Condition 1: RCP past the global max allows everything.
	if !c.RORAllowed(500, s1.ID, s2.ID) {
		t.Fatal("RCP at max DDL must allow all reads")
	}
	if c.MaxDDLTS() != 500 {
		t.Fatalf("MaxDDLTS = %v", c.MaxDDLTS())
	}
	// CREATE INDEX bumps the table's DDL timestamp.
	c.NoteDDL(s1.ID, 900)
	if c.RORAllowed(600, s1.ID) {
		t.Fatal("reads must gate on the new index DDL")
	}
	if c.DDLTSOf(s1.ID) != 900 {
		t.Fatalf("DDLTSOf = %v", c.DDLTSOf(s1.ID))
	}
}

func TestCatalogNextID(t *testing.T) {
	c := NewCatalog()
	id1, id2 := c.NextID(), c.NextID()
	if id1 == id2 {
		t.Fatal("IDs must be unique")
	}
	s := customerSchema() // ID 7
	c.Create(s, 1)
	if id := c.NextID(); id <= 7 {
		t.Fatalf("NextID %d must skip past created IDs", id)
	}
}

func TestSchemaMarshalRoundTrip(t *testing.T) {
	s := customerSchema()
	b, err := MarshalSchema(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSchema(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("schema round trip:\n got %#v\nwant %#v", got, s)
	}
	if _, err := UnmarshalSchema([]byte("{broken")); err == nil {
		t.Fatal("bad JSON must fail")
	}
}
