package table

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"globaldb/internal/ts"
)

// Catalog tracks schemas and the commit timestamp of each table's last DDL.
// The read-on-replica gate of Sec. IV-A allows a replica read only when the
// RCP has passed either the global maximum DDL timestamp or the DDL
// timestamps of every table the query touches.
type Catalog struct {
	mu       sync.RWMutex
	byName   map[string]*Schema
	byID     map[uint64]*Schema
	ddlTS    map[uint64]ts.Timestamp // tableID -> last DDL commit timestamp
	maxDDLTS ts.Timestamp
	nextID   uint64

	// rowEst holds approximate per-table row counts, bumped on committed
	// inserts and deletes. The counts are advisory planner statistics — they
	// drift under aborted transactions replayed from redo and reset to zero
	// on restart — good enough to pick a join strategy, never consulted for
	// correctness.
	estMu  sync.RWMutex
	rowEst map[uint64]*atomic.Int64
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		byName: make(map[string]*Schema),
		byID:   make(map[uint64]*Schema),
		ddlTS:  make(map[uint64]ts.Timestamp),
		nextID: 1,
		rowEst: make(map[uint64]*atomic.Int64),
	}
}

// NextID allocates a unique ID for a table or index.
func (c *Catalog) NextID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	return id
}

// Create registers a schema with the given DDL commit timestamp.
func (c *Catalog) Create(s *Schema, ddlTS ts.Timestamp) error {
	if err := s.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byName[s.Name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, s.Name)
	}
	c.byName[s.Name] = s
	c.byID[s.ID] = s
	c.noteDDLLocked(s.ID, ddlTS)
	if s.ID >= c.nextID {
		c.nextID = s.ID + 1
	}
	return nil
}

// Drop removes a table, recording the DDL timestamp.
func (c *Catalog) Drop(name string, ddlTS ts.Timestamp) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(c.byName, name)
	delete(c.byID, s.ID)
	c.noteDDLLocked(s.ID, ddlTS)
	return nil
}

// NoteDDL records a DDL commit against a table (e.g. CREATE INDEX).
func (c *Catalog) NoteDDL(tableID uint64, ddlTS ts.Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteDDLLocked(tableID, ddlTS)
}

func (c *Catalog) noteDDLLocked(tableID uint64, ddlTS ts.Timestamp) {
	if ddlTS > c.ddlTS[tableID] {
		c.ddlTS[tableID] = ddlTS
	}
	if ddlTS > c.maxDDLTS {
		c.maxDDLTS = ddlTS
	}
}

// Get returns the schema for name.
func (c *Catalog) Get(name string) (*Schema, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return s, nil
}

// GetByID returns the schema for a table ID.
func (c *Catalog) GetByID(id uint64) (*Schema, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return s, nil
}

// Tables returns every schema, unordered.
func (c *Catalog) Tables() []*Schema {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Schema, 0, len(c.byName))
	for _, s := range c.byName {
		out = append(out, s)
	}
	return out
}

// MaxDDLTS returns the largest DDL commit timestamp recorded.
func (c *Catalog) MaxDDLTS() ts.Timestamp {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.maxDDLTS
}

// DDLTSOf returns the last DDL commit timestamp of a table (zero if never).
func (c *Catalog) DDLTSOf(tableID uint64) ts.Timestamp {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ddlTS[tableID]
}

// RORAllowed implements the two-condition DDL gate of Sec. IV-A: a
// read-on-replica query over the given tables is allowed when the RCP has
// passed all DDLs globally, or at least the DDLs of every involved table.
func (c *Catalog) RORAllowed(rcp ts.Timestamp, tableIDs ...uint64) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if rcp >= c.maxDDLTS {
		return true
	}
	for _, id := range tableIDs {
		if rcp < c.ddlTS[id] {
			return false
		}
	}
	return true
}

// BumpRowEstimate adjusts a table's approximate row count by delta
// (inserts +1, deletes -1).
func (c *Catalog) BumpRowEstimate(tableID uint64, delta int64) {
	c.estMu.RLock()
	ctr := c.rowEst[tableID]
	c.estMu.RUnlock()
	if ctr == nil {
		c.estMu.Lock()
		if ctr = c.rowEst[tableID]; ctr == nil {
			ctr = &atomic.Int64{}
			c.rowEst[tableID] = ctr
		}
		c.estMu.Unlock()
	}
	ctr.Add(delta)
}

// RowEstimate returns a table's approximate row count (zero if unknown;
// never negative).
func (c *Catalog) RowEstimate(tableID uint64) int64 {
	c.estMu.RLock()
	ctr := c.rowEst[tableID]
	c.estMu.RUnlock()
	if ctr == nil {
		return 0
	}
	if n := ctr.Load(); n > 0 {
		return n
	}
	return 0
}

// MarshalSchema serializes a schema for DDL redo records.
func MarshalSchema(s *Schema) ([]byte, error) { return json.Marshal(s) }

// UnmarshalSchema parses a schema from a DDL redo record.
func UnmarshalSchema(b []byte) (*Schema, error) {
	var s Schema
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("table: decoding schema: %w", err)
	}
	return &s, nil
}
