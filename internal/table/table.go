// Package table implements GlobalDB's relational layer: schemas, a row
// codec, memcomparable primary and secondary index keys, and a catalog with
// the DDL timestamps the read-on-replica protocol gates on (Sec. IV-A).
//
// Rows live in data-node MVCC stores under keys of the form
// (tableID, pk...) and index entries under (indexID, cols..., pk...). No SQL
// parser is involved: workloads drive the layer through typed accessors,
// which is sufficient to reproduce the paper's TPC-C and Sysbench behaviour.
package table

import (
	"errors"
	"fmt"

	"globaldb/internal/keys"
)

// Kind is a column type.
type Kind uint8

// Column kinds.
const (
	// Int64 is a signed 64-bit integer column.
	Int64 Kind = iota + 1
	// Float64 is a double-precision column.
	Float64
	// String is a variable-length text column.
	String
	// Bytes is a variable-length binary column.
	Bytes
	// Bool is a boolean column.
	Bool
)

func (k Kind) String() string {
	switch k {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Bytes:
		return "bytes"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Column describes one column.
type Column struct {
	Name string
	Kind Kind
}

// Index describes a secondary index over column positions, with the primary
// key appended for uniqueness.
type Index struct {
	// ID is unique across the cluster; index keys are prefixed with it.
	ID uint64
	// Name is the index's human name.
	Name string
	// Cols are positions into Schema.Columns.
	Cols []int
}

// Schema describes a table.
type Schema struct {
	// ID is unique across the cluster; row keys are prefixed with it.
	ID uint64
	// Name is the table's human name.
	Name string
	// Columns lists the columns in storage order.
	Columns []Column
	// PK holds positions of the primary key columns, in key order.
	PK []int
	// Indexes lists secondary indexes.
	Indexes []Index
	// ShardBy is the position of the distribution column whose hash picks
	// the shard. Defaults to the first PK column.
	ShardBy int
	// SyncReplicated forces transactions writing this table to wait for
	// replica acknowledgement at commit, even under asynchronous cluster
	// replication — the paper's future-work "synchronous replicated tables
	// that co-exist with asynchronous tables", trading update latency for
	// maximal replica freshness on selected relations.
	SyncReplicated bool
}

// Row is a tuple of column values aligned with Schema.Columns. Values are
// int64, float64, string, []byte, bool, or nil.
type Row []any

// Errors.
var (
	// ErrSchemaMismatch means a row does not match its schema.
	ErrSchemaMismatch = errors.New("table: row does not match schema")
	// ErrNotFound means the catalog has no such table.
	ErrNotFound = errors.New("table: no such table")
	// ErrExists means a table with that name already exists.
	ErrExists = errors.New("table: table already exists")
)

// Validate checks structural invariants of the schema.
func (s *Schema) Validate() error {
	if s.Name == "" || s.ID == 0 {
		return fmt.Errorf("table %q: missing name or ID", s.Name)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("table %q: no columns", s.Name)
	}
	if len(s.PK) == 0 {
		return fmt.Errorf("table %q: no primary key", s.Name)
	}
	for _, p := range s.PK {
		if p < 0 || p >= len(s.Columns) {
			return fmt.Errorf("table %q: PK position %d out of range", s.Name, p)
		}
	}
	if s.ShardBy < 0 || s.ShardBy >= len(s.Columns) {
		return fmt.Errorf("table %q: ShardBy %d out of range", s.Name, s.ShardBy)
	}
	for _, ix := range s.Indexes {
		if ix.ID == 0 {
			return fmt.Errorf("table %q index %q: missing ID", s.Name, ix.Name)
		}
		for _, c := range ix.Cols {
			if c < 0 || c >= len(s.Columns) {
				return fmt.Errorf("table %q index %q: column %d out of range", s.Name, ix.Name, c)
			}
		}
	}
	return nil
}

// checkRow verifies arity and value kinds.
func (s *Schema) checkRow(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("%w: %d values for %d columns of %s", ErrSchemaMismatch, len(r), len(s.Columns), s.Name)
	}
	for i, v := range r {
		if v == nil {
			continue
		}
		ok := false
		switch s.Columns[i].Kind {
		case Int64:
			_, ok = v.(int64)
		case Float64:
			_, ok = v.(float64)
		case String:
			_, ok = v.(string)
		case Bytes:
			_, ok = v.([]byte)
		case Bool:
			_, ok = v.(bool)
		}
		if !ok {
			return fmt.Errorf("%w: column %s wants %v, got %T", ErrSchemaMismatch, s.Columns[i].Name, s.Columns[i].Kind, v)
		}
	}
	return nil
}

func encodeValue(e *keys.Encoder, v any) error {
	switch x := v.(type) {
	case nil:
		e.Null()
	case int64:
		e.Int64(x)
	case float64:
		e.Float64(x)
	case string:
		e.String(x)
	case []byte:
		e.RawBytes(x)
	case bool:
		e.Bool(x)
	default:
		return fmt.Errorf("%w: unsupported value type %T", ErrSchemaMismatch, v)
	}
	return nil
}

// PrimaryKey encodes the row's primary key: (tableID, pk columns...).
func (s *Schema) PrimaryKey(r Row) ([]byte, error) {
	if err := s.checkRow(r); err != nil {
		return nil, err
	}
	return s.PrimaryKeyFromValues(pick(r, s.PK))
}

// PrimaryKeyFromValues encodes a primary key from the PK column values
// alone, for lookups without a full row.
func (s *Schema) PrimaryKeyFromValues(pkVals []any) ([]byte, error) {
	if len(pkVals) != len(s.PK) {
		return nil, fmt.Errorf("%w: %d PK values, want %d", ErrSchemaMismatch, len(pkVals), len(s.PK))
	}
	e := keys.NewEncoder(16 + 16*len(pkVals))
	e.Uint64(s.ID)
	for _, v := range pkVals {
		if err := encodeValue(e, v); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// PrimaryKeyPrefix encodes a scan prefix from the leading PK column values.
func (s *Schema) PrimaryKeyPrefix(vals []any) ([]byte, error) {
	if len(vals) > len(s.PK) {
		return nil, fmt.Errorf("%w: %d values for %d PK columns", ErrSchemaMismatch, len(vals), len(s.PK))
	}
	e := keys.NewEncoder(16 + 16*len(vals))
	e.Uint64(s.ID)
	for _, v := range vals {
		if err := encodeValue(e, v); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// TablePrefix returns the key prefix that covers every row of the table.
func (s *Schema) TablePrefix() []byte {
	return keys.NewEncoder(16).Uint64(s.ID).Bytes()
}

// IndexKey encodes a secondary index entry: (indexID, cols..., pk...).
func (s *Schema) IndexKey(ix Index, r Row) ([]byte, error) {
	if err := s.checkRow(r); err != nil {
		return nil, err
	}
	e := keys.NewEncoder(16 + 16*(len(ix.Cols)+len(s.PK)))
	e.Uint64(ix.ID)
	for _, v := range pick(r, ix.Cols) {
		if err := encodeValue(e, v); err != nil {
			return nil, err
		}
	}
	for _, v := range pick(r, s.PK) {
		if err := encodeValue(e, v); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// IndexPrefix encodes the scan prefix for an index given a prefix of its
// columns' values.
func (s *Schema) IndexPrefix(ix Index, vals []any) ([]byte, error) {
	if len(vals) > len(ix.Cols) {
		return nil, fmt.Errorf("%w: %d values for %d index columns", ErrSchemaMismatch, len(vals), len(ix.Cols))
	}
	e := keys.NewEncoder(16 + 16*len(vals))
	e.Uint64(ix.ID)
	for _, v := range vals {
		if err := encodeValue(e, v); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

func pick(r Row, idx []int) []any {
	out := make([]any, len(idx))
	for i, p := range idx {
		out[i] = r[p]
	}
	return out
}

// EncodeRow serializes a row as the stored value.
func (s *Schema) EncodeRow(r Row) ([]byte, error) {
	if err := s.checkRow(r); err != nil {
		return nil, err
	}
	e := keys.NewEncoder(32 * len(r))
	for _, v := range r {
		if err := encodeValue(e, v); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// DecodeRow parses a stored value back into a row.
func (s *Schema) DecodeRow(b []byte) (Row, error) {
	out, err := s.DecodeRowAppend(b, make([]any, 0, len(s.Columns)))
	return Row(out), err
}

// DecodeRowAppend parses a stored value, appending the column values to dst
// and returning the extended slice. Batch consumers decode many rows into
// one backing slab this way, one slab allocation per page instead of one
// Row allocation per row.
func (s *Schema) DecodeRowAppend(b []byte, dst []any) ([]any, error) {
	var d keys.Decoder
	d.Reset(b)
	for i := range s.Columns {
		c := &s.Columns[i]
		if d.IsNull() {
			dst = append(dst, nil)
			continue
		}
		var v any
		var err error
		switch c.Kind {
		case Int64:
			v, err = d.Int64()
		case Float64:
			v, err = d.Float64()
		case String:
			v, err = d.String()
		case Bytes:
			v, err = d.RawBytes()
		case Bool:
			v, err = d.Bool()
		}
		if err != nil {
			return nil, fmt.Errorf("table %s column %s: %w", s.Name, c.Name, err)
		}
		dst = append(dst, v)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("table %s: %w: trailing bytes", s.Name, keys.ErrCorrupt)
	}
	return dst, nil
}

// DecodeIndexKey parses a secondary index entry produced by IndexKey back
// into the indexed column values and the primary key values.
func (s *Schema) DecodeIndexKey(ix Index, key []byte) (colVals, pkVals []any, err error) {
	d := keys.NewDecoder(key)
	id, err := d.Uint64()
	if err != nil {
		return nil, nil, err
	}
	if id != ix.ID {
		return nil, nil, fmt.Errorf("table %s: key belongs to index %d, not %d", s.Name, id, ix.ID)
	}
	decodeOne := func(kind Kind) (any, error) {
		if d.IsNull() {
			return nil, nil
		}
		switch kind {
		case Int64:
			return d.Int64()
		case Float64:
			return d.Float64()
		case String:
			return d.String()
		case Bytes:
			return d.RawBytes()
		case Bool:
			return d.Bool()
		default:
			return nil, fmt.Errorf("table %s: unknown kind %v", s.Name, kind)
		}
	}
	colVals = make([]any, len(ix.Cols))
	for i, c := range ix.Cols {
		if colVals[i], err = decodeOne(s.Columns[c].Kind); err != nil {
			return nil, nil, err
		}
	}
	pkVals = make([]any, len(s.PK))
	for i, c := range s.PK {
		if pkVals[i], err = decodeOne(s.Columns[c].Kind); err != nil {
			return nil, nil, err
		}
	}
	if d.Remaining() != 0 {
		return nil, nil, fmt.Errorf("table %s: %w: trailing bytes in index key", s.Name, keys.ErrCorrupt)
	}
	return colVals, pkVals, nil
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}
