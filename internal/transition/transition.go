// Package transition orchestrates GlobalDB's zero-downtime, bi-directional
// switch between centralized (GTM) and clock-based (GClock) transaction
// management (Sec. III-A, Figs. 2 and 3).
//
// Both directions pass through DUAL mode, during which the GTM server issues
// TS_DUAL = max(TS_GTM, TS_GClock)+1 and prescribes waits that keep mixed
// GTM/DUAL/GClock transactions externally consistent. The cluster accepts
// new transactions throughout; only stale GTM-mode transactions that try to
// commit after the server has reached GClock mode abort.
package transition

import (
	"context"
	"fmt"
	"time"

	"globaldb/internal/gtm"
	"globaldb/internal/ts"
)

// Node is a computing node's view the controller manipulates: its oracle.
type Node interface {
	// Name identifies the node in errors and logs.
	Name() string
	// Mode returns the node's current transaction management mode.
	Mode() ts.Mode
	// SetMode switches the node's mode for new transactions.
	SetMode(ts.Mode)
	// SetReporting toggles forwarding of GClock commit timestamps to the
	// GTM server during GClock→GTM transitions.
	SetReporting(bool)
	// ClockState returns the node's largest issued GClock timestamp with
	// its current error bound, for flooring TS_GTM.
	ClockState() ts.Interval
}

// Controller drives transitions over one GTM server and a set of nodes.
type Controller struct {
	server *gtm.Server
	nodes  []Node

	// Sleep is injectable for tests; defaults to a context-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error

	// MinDwell floors the DUAL-mode dwell time so a transition on an idle
	// cluster (Terrmax == 0) still orders timestamps across modes.
	MinDwell time.Duration
}

// NewController returns a controller for server and nodes.
func NewController(server *gtm.Server, nodes ...Node) *Controller {
	return &Controller{
		server:   server,
		nodes:    nodes,
		Sleep:    sleepCtx,
		MinDwell: time.Millisecond,
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ToGClock performs the GTM→GClock transition of Fig. 2:
//
//  1. Switch the GTM server to DUAL mode. From now on it tracks the largest
//     error bound (Terrmax) and timestamp (TSMax) it observes.
//  2. Switch every node to DUAL mode. New transactions exchange clock
//     readings with the server and honor its waits; in-flight GTM-mode
//     transactions receive commit waits of 2×Terrmax (Listing 1).
//  3. Dwell in DUAL for at least 2×Terrmax so every timestamp issued before
//     the transition lies in the past of every future clock reading.
//  4. Switch the server to GClock mode (old GTM transactions now abort),
//     then switch every node.
func (c *Controller) ToGClock(ctx context.Context) error {
	if c.server.Mode() == ts.ModeGClock {
		return nil
	}
	c.server.SetMode(ts.ModeDUAL)
	for _, n := range c.nodes {
		n.SetMode(ts.ModeDUAL)
		// Seed Terrmax/TSMax even if the node runs no transactions during
		// the transition window.
		if _, err := c.server.Handle(gtm.Request{Mode: ts.ModeGClock, GClock: n.ClockState(), Report: true}); err != nil {
			return fmt.Errorf("transition: seeding clock state of %s: %w", n.Name(), err)
		}
	}

	dwell := 2 * c.server.TerrMax()
	if dwell < c.MinDwell {
		dwell = c.MinDwell
	}
	if err := c.Sleep(ctx, dwell); err != nil {
		return fmt.Errorf("transition: DUAL dwell interrupted: %w", err)
	}

	c.server.SetMode(ts.ModeGClock)
	for _, n := range c.nodes {
		n.SetMode(ts.ModeGClock)
	}
	return nil
}

// ToGTM performs the GClock→GTM transition of Fig. 3. It is simpler than
// the forward direction: the server learns the largest GClock timestamp in
// use and floors TS_GTM above it, so nothing aborts and no dwell is needed
// beyond collecting every node's state.
//
//  1. Switch the server to DUAL mode and enable commit reporting on every
//     node so in-flight GClock commits raise the server's TSMax.
//  2. Switch each node to DUAL, reporting its largest issued timestamp.
//  3. Switch the server to GTM (TS_GTM := TSMax + 1), then every node.
func (c *Controller) ToGTM(ctx context.Context) error {
	if c.server.Mode() == ts.ModeGTM {
		return nil
	}
	c.server.SetMode(ts.ModeDUAL)
	for _, n := range c.nodes {
		n.SetReporting(true)
	}
	for _, n := range c.nodes {
		n.SetMode(ts.ModeDUAL)
		if _, err := c.server.Handle(gtm.Request{Mode: ts.ModeGClock, GClock: n.ClockState(), Report: true}); err != nil {
			return fmt.Errorf("transition: reporting clock state of %s: %w", n.Name(), err)
		}
	}

	// A short dwell lets in-flight GClock transactions that fetched their
	// commit timestamp just before their node switched report in. Their
	// timestamps are bounded by ClockState().Upper(), already reported, so
	// this is belt-and-suspenders rather than required for safety.
	if err := c.Sleep(ctx, c.MinDwell); err != nil {
		return fmt.Errorf("transition: DUAL dwell interrupted: %w", err)
	}

	c.server.SetMode(ts.ModeGTM)
	for _, n := range c.nodes {
		n.SetMode(ts.ModeGTM)
		n.SetReporting(false)
	}
	return nil
}
