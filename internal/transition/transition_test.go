package transition

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"globaldb/internal/clock"
	"globaldb/internal/gtm"
	"globaldb/internal/netsim"
	"globaldb/internal/ts"
	"globaldb/internal/tso"
)

var bg = context.Background()

type rig struct {
	server  *gtm.Server
	oracles []*tso.Oracle
	ctl     *Controller
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	net := netsim.New(netsim.Config{})
	net.AddRegion("r")
	server := gtm.NewServer()
	gtm.Serve(net, "r", server)
	r := &rig{server: server}
	nodes := make([]Node, 0, n)
	for i := 0; i < n; i++ {
		dev := clock.NewDevice("r", clock.Real())
		nc := clock.NewNode(clock.DefaultNodeConfig(), clock.Real(), dev)
		stop := nc.Start()
		t.Cleanup(stop)
		o := tso.New("cn"+string(rune('0'+i)), nc, gtm.NewClient(net, "r"))
		r.oracles = append(r.oracles, o)
		nodes = append(nodes, o)
	}
	r.ctl = NewController(server, nodes...)
	return r
}

func TestToGClockSwitchesEverything(t *testing.T) {
	r := newRig(t, 3)
	if err := r.ctl.ToGClock(bg); err != nil {
		t.Fatal(err)
	}
	if r.server.Mode() != ts.ModeGClock {
		t.Fatalf("server mode = %v", r.server.Mode())
	}
	for _, o := range r.oracles {
		if o.Mode() != ts.ModeGClock {
			t.Fatalf("%s mode = %v", o.Name(), o.Mode())
		}
	}
	// Idempotent.
	if err := r.ctl.ToGClock(bg); err != nil {
		t.Fatal(err)
	}
}

func TestToGTMSwitchesBackWithFloor(t *testing.T) {
	r := newRig(t, 2)
	if err := r.ctl.ToGClock(bg); err != nil {
		t.Fatal(err)
	}
	// Issue GClock commits so the server must floor above them.
	var maxCommit ts.Timestamp
	for i := 0; i < 5; i++ {
		c, finish, err := r.oracles[0].Commit(bg, ts.ModeGClock)
		if err != nil {
			t.Fatal(err)
		}
		finish(bg)
		maxCommit = c
	}
	if err := r.ctl.ToGTM(bg); err != nil {
		t.Fatal(err)
	}
	if r.server.Mode() != ts.ModeGTM {
		t.Fatalf("server mode = %v", r.server.Mode())
	}
	b, err := r.oracles[1].Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Snap <= maxCommit {
		t.Fatalf("first GTM timestamp %v must exceed last GClock commit %v", b.Snap, maxCommit)
	}
	for _, o := range r.oracles {
		if o.Mode() != ts.ModeGTM {
			t.Fatalf("%s mode = %v", o.Name(), o.Mode())
		}
	}
}

func TestRoundTripTwiceStaysMonotonic(t *testing.T) {
	r := newRig(t, 2)
	o := r.oracles[0]
	var last ts.Timestamp
	commitOne := func() {
		t.Helper()
		b, err := o.Begin(bg)
		if err != nil {
			t.Fatal(err)
		}
		c, finish, err := o.Commit(bg, b.Mode)
		if err != nil {
			t.Fatal(err)
		}
		if err := finish(bg); err != nil {
			t.Fatal(err)
		}
		if c <= last {
			t.Fatalf("commit %v after %v: monotonicity broken across transitions", c, last)
		}
		last = c
	}
	commitOne() // GTM
	if err := r.ctl.ToGClock(bg); err != nil {
		t.Fatal(err)
	}
	commitOne() // GClock
	if err := r.ctl.ToGTM(bg); err != nil {
		t.Fatal(err)
	}
	commitOne() // GTM again
	if err := r.ctl.ToGClock(bg); err != nil {
		t.Fatal(err)
	}
	commitOne() // GClock again
}

// TestZeroDowntimeUnderLoad drives continuous transactions on every node
// through a full GTM→GClock→GTM cycle. The cluster must keep committing:
// the only tolerated failures are stale GTM-mode transactions aborting at
// the mode boundary (which a client would simply retry), and every node's
// commit timestamps must be strictly increasing — the external-consistency
// invariant the DUAL-mode waits exist to protect.
func TestZeroDowntimeUnderLoad(t *testing.T) {
	r := newRig(t, 3)
	var stop atomic.Bool
	var aborted, committed atomic.Int64
	var wg sync.WaitGroup
	for _, o := range r.oracles {
		wg.Add(1)
		go func(o *tso.Oracle) {
			defer wg.Done()
			var prev ts.Timestamp
			for !stop.Load() {
				b, err := o.Begin(bg)
				if err != nil {
					if errors.Is(err, gtm.ErrOldModeAborted) {
						aborted.Add(1)
						continue
					}
					t.Errorf("begin: %v", err)
					return
				}
				c, finish, err := o.Commit(bg, b.Mode)
				if err != nil {
					if errors.Is(err, gtm.ErrOldModeAborted) {
						aborted.Add(1)
						continue
					}
					t.Errorf("commit: %v", err)
					return
				}
				if err := finish(bg); err != nil {
					t.Errorf("finish: %v", err)
					return
				}
				if c <= prev {
					t.Errorf("%s: commit %v not after %v", o.Name(), c, prev)
					return
				}
				prev = c
				committed.Add(1)
			}
		}(o)
	}

	time.Sleep(30 * time.Millisecond)
	if err := r.ctl.ToGClock(bg); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := r.ctl.ToGTM(bg); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if committed.Load() < 100 {
		t.Fatalf("only %d commits across the transition; the cluster effectively stalled", committed.Load())
	}
	t.Logf("committed=%d aborted(stale GTM)=%d", committed.Load(), aborted.Load())
}

// TestListing1Anomaly reproduces the scenario of Listing 1. Node3's clock
// reads far ahead (within a large but honest error bound); its DUAL request
// raises the server's internal timestamp. A GTM-mode transaction then
// commits with an even larger DUAL timestamp. Without the prescribed
// 2×Terrmax wait, a GClock-mode transaction beginning immediately afterwards
// on an accurate node would receive a smaller snapshot and miss the commit.
// With the wait, the snapshot exceeds the commit timestamp.
func TestListing1Anomaly(t *testing.T) {
	net := netsim.New(netsim.Config{})
	net.AddRegion("r")
	server := gtm.NewServer()
	gtm.Serve(net, "r", server)
	server.SetMode(ts.ModeDUAL)

	mkClock := func(syncRTT time.Duration, skew time.Duration) *clock.Node {
		dev := clock.NewDevice("r", clock.Real())
		cfg := clock.DefaultNodeConfig()
		cfg.SyncRTT = syncRTT
		nc := clock.NewNode(cfg, clock.Real(), dev)
		stop := nc.Start()
		t.Cleanup(stop)
		nc.SetFaultSkew(skew)
		return nc
	}

	// Node3: clock 20ms ahead, honestly reported via a 25ms error bound.
	n3clock := mkClock(25*time.Millisecond, 20*time.Millisecond)
	n3 := tso.New("node3", n3clock, gtm.NewClient(net, "r"))
	n3.SetMode(ts.ModeDUAL)

	// Node3 sends its large GClock timestamp to the GTM server (the
	// "Send large GClock timestamp ts3" step).
	b3, err := n3.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}

	// Node1: an old GTM-mode transaction commits via the DUAL-mode server.
	n1 := tso.New("node1", mkClock(60*time.Microsecond, 0), gtm.NewClient(net, "r"))
	n1.SetMode(ts.ModeGTM)

	// First, demonstrate the anomaly exists without the wait: ask the
	// server directly and compare against an immediate accurate reading.
	rawResp, err := server.Handle(gtm.Request{Mode: ts.ModeGTM})
	if err != nil {
		t.Fatal(err)
	}
	accurate := mkClock(60*time.Microsecond, 0)
	if snapNow := accurate.Now().Upper(); snapNow >= rawResp.TS {
		t.Skipf("clock advanced too far to exhibit the anomaly window (snap %v >= ts1 %v)", snapNow, rawResp.TS)
	}
	if rawResp.Wait == 0 {
		t.Fatal("server must prescribe a wait for GTM transactions during DUAL mode")
	}

	// Now the protocol-following path: Commit honors the wait.
	c1, _, err := n1.Commit(bg, ts.ModeGTM)
	if err != nil {
		t.Fatal(err)
	}

	// Node2: already in GClock mode with an accurate clock, begins after
	// node1's commit returned.
	n2 := tso.New("node2", mkClock(60*time.Microsecond, 0), gtm.NewClient(net, "r"))
	n2.SetMode(ts.ModeGClock)
	b2, err := n2.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Snap <= c1 {
		t.Fatalf("Listing 1 anomaly: Trx2 snapshot %v <= Trx1 commit %v; Trx2 would miss Trx1's update", b2.Snap, c1)
	}
	_ = b3
}

// TestManualSleepInjection verifies the dwell uses the controller's Sleep.
func TestManualSleepInjection(t *testing.T) {
	r := newRig(t, 1)
	var slept []time.Duration
	r.ctl.Sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	if err := r.ctl.ToGClock(bg); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 {
		t.Fatalf("dwell sleeps = %v", slept)
	}
	if slept[0] < r.ctl.MinDwell {
		t.Fatalf("dwell %v below MinDwell", slept[0])
	}
	// The dwell must be at least 2×Terrmax observed during the transition.
	if want := 2 * r.server.TerrMax(); slept[0] < want {
		t.Fatalf("dwell %v < 2×Terrmax %v", slept[0], want)
	}
}

func TestTransitionCancelable(t *testing.T) {
	r := newRig(t, 1)
	r.ctl.MinDwell = time.Hour
	ctx, cancel := context.WithTimeout(bg, 20*time.Millisecond)
	defer cancel()
	err := r.ctl.ToGClock(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
}
