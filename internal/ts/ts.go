// Package ts defines the timestamp domain shared by every transaction
// management mode in GlobalDB.
//
// GTM timestamps are small integers handed out by the centralized Global
// Transaction Manager (they start near zero and increment once per
// transaction). GClock timestamps are nanoseconds of global epoch time read
// from a synchronized clock. DUAL-mode timestamps bridge the two during an
// online transition: max(GTM, GClock upper bound) + 1.
//
// All three live in the same signed 64-bit space so a single MVCC visibility
// rule (commitTS <= snapshotTS) works across modes and across transitions.
package ts

import (
	"fmt"
	"time"
)

// Timestamp is a cluster-wide commit/snapshot timestamp. Depending on the
// transaction management mode it is either a GTM counter value or GClock
// epoch nanoseconds. Higher is later.
type Timestamp int64

const (
	// Zero is the timestamp before any transaction has committed.
	Zero Timestamp = 0
	// Max is the largest representable timestamp.
	Max Timestamp = 1<<63 - 1
)

// FromTime converts wall-clock time into a GClock timestamp.
func FromTime(t time.Time) Timestamp { return Timestamp(t.UnixNano()) }

// Time converts a GClock timestamp back to wall-clock time. Only meaningful
// for timestamps produced in GClock mode.
func (t Timestamp) Time() time.Time { return time.Unix(0, int64(t)) }

// Before reports whether t is strictly earlier than u.
func (t Timestamp) Before(u Timestamp) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Timestamp) After(u Timestamp) bool { return t > u }

// Add returns the timestamp d later than t. d is interpreted in the
// timestamp's own unit (nanoseconds under GClock).
func (t Timestamp) Add(d time.Duration) Timestamp { return t + Timestamp(d) }

// Sub returns the duration t-u, interpreting both as GClock nanoseconds.
func (t Timestamp) Sub(u Timestamp) time.Duration { return time.Duration(t - u) }

func (t Timestamp) String() string {
	// GClock timestamps are huge (≈1.7e18); GTM counters are small. Render
	// each in the way a human debugging the system wants to read it.
	if t > Timestamp(1e15) {
		return fmt.Sprintf("gclock(%s)", t.Time().UTC().Format("15:04:05.000000000"))
	}
	return fmt.Sprintf("gtm(%d)", int64(t))
}

// Interval is a GClock timestamp with its synchronization error bound, the
// pair (Tclock, Terr) of Eq. (1) in the paper: TS = Tclock ± Terr where
// Terr = Tsync + Tdrift.
type Interval struct {
	Clock Timestamp
	Err   time.Duration
}

// Lower returns the earliest true time consistent with the reading.
func (iv Interval) Lower() Timestamp { return iv.Clock.Add(-iv.Err) }

// Upper returns the latest true time consistent with the reading.
func (iv Interval) Upper() Timestamp { return iv.Clock.Add(iv.Err) }

// DefinitelyBefore reports whether the entire interval precedes u's interval
// with no overlap, i.e. the event at iv certainly happened before u.
func (iv Interval) DefinitelyBefore(u Interval) bool { return iv.Upper() < u.Lower() }

func (iv Interval) String() string {
	return fmt.Sprintf("%v±%v", iv.Clock, iv.Err)
}

// Mode identifies how a transaction obtained its timestamps.
type Mode uint8

const (
	// ModeGTM uses the centralized Global Transaction Manager counter.
	ModeGTM Mode = iota
	// ModeDUAL is the bridge mode used during online transitions:
	// TS_DUAL = max(TS_GTM, TS_GClock) + 1, issued by the GTM server.
	ModeDUAL
	// ModeGClock uses decentralized synchronized-clock timestamps.
	ModeGClock
)

func (m Mode) String() string {
	switch m {
	case ModeGTM:
		return "GTM"
	case ModeDUAL:
		return "DUAL"
	case ModeGClock:
		return "GClock"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}
