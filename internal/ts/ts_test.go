package ts

import (
	"testing"
	"testing/quick"
	"time"
)

func TestFromTimeRoundTrip(t *testing.T) {
	now := time.Now()
	got := FromTime(now).Time()
	if !got.Equal(now) {
		t.Fatalf("round trip: got %v want %v", got, now)
	}
}

func TestOrdering(t *testing.T) {
	a, b := Timestamp(10), Timestamp(20)
	if !a.Before(b) || b.Before(a) {
		t.Fatal("Before is wrong")
	}
	if !b.After(a) || a.After(b) {
		t.Fatal("After is wrong")
	}
	if a.Before(a) || a.After(a) {
		t.Fatal("a timestamp must not be before/after itself")
	}
}

func TestAddSub(t *testing.T) {
	a := Timestamp(1000)
	if a.Add(time.Microsecond) != Timestamp(2000) {
		t.Fatalf("Add: got %d", a.Add(time.Microsecond))
	}
	if a.Add(time.Microsecond).Sub(a) != time.Microsecond {
		t.Fatal("Sub does not invert Add")
	}
}

func TestIntervalBounds(t *testing.T) {
	iv := Interval{Clock: 1_000_000, Err: 100 * time.Nanosecond}
	if iv.Lower() != 999_900 {
		t.Fatalf("Lower: got %d", iv.Lower())
	}
	if iv.Upper() != 1_000_100 {
		t.Fatalf("Upper: got %d", iv.Upper())
	}
}

func TestDefinitelyBefore(t *testing.T) {
	a := Interval{Clock: 1000, Err: 100}
	b := Interval{Clock: 1300, Err: 100}
	c := Interval{Clock: 1150, Err: 100}
	if !a.DefinitelyBefore(b) {
		t.Fatal("disjoint intervals must order")
	}
	if a.DefinitelyBefore(c) {
		t.Fatal("overlapping intervals must not order")
	}
	if b.DefinitelyBefore(a) {
		t.Fatal("ordering must be antisymmetric")
	}
}

func TestDefinitelyBeforeIrreflexive(t *testing.T) {
	f := func(clock int64, errNS uint32) bool {
		iv := Interval{Clock: Timestamp(clock), Err: time.Duration(errNS)}
		return !iv.DefinitelyBefore(iv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalBoundsProperty(t *testing.T) {
	// Lower <= Clock <= Upper for every non-negative error bound.
	f := func(clock int64, errNS uint32) bool {
		iv := Interval{Clock: Timestamp(clock), Err: time.Duration(errNS)}
		return iv.Lower() <= iv.Clock && iv.Clock <= iv.Upper()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{ModeGTM: "GTM", ModeDUAL: "DUAL", ModeGClock: "GClock", Mode(9): "Mode(9)"}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestTimestampString(t *testing.T) {
	if s := Timestamp(42).String(); s != "gtm(42)" {
		t.Fatalf("small timestamps must render as GTM counters, got %q", s)
	}
	big := FromTime(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	if s := big.String(); s == "" || s[:6] != "gclock" {
		t.Fatalf("epoch timestamps must render as clock readings, got %q", s)
	}
}
