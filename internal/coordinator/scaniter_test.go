package coordinator

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"globaldb/internal/storage/mvcc"
)

// pagesCursor feeds canned pages through a ScanCursor, standing in for a
// data node.
func pagesCursor(pages [][]mvcc.KV) *ScanCursor {
	i := 0
	return newScanCursor(context.Background(), nil, 0, 0, 0, nil, func(context.Context, []byte, int, int) ([]mvcc.KV, []byte, bool, error) {
		p := pages[i]
		i++
		return p, nil, i < len(pages), nil
	})
}

func kv(key string) mvcc.KV { return mvcc.KV{Key: []byte(key), Value: []byte("v" + key)} }

// TestRowViewAdapters pins the row-at-a-time faces of the batch pipeline:
// ScanCursor's native Next/KV (interleaved with NextBatch, which must pick
// up exactly where the row view stopped) and AsKVCursor over a merged
// stream, which must yield the same global key order row by row.
func TestRowViewAdapters(t *testing.T) {
	ctx := context.Background()

	c := pagesCursor([][]mvcc.KV{{kv("a"), kv("b"), kv("c")}, {kv("d")}})
	if !c.Next(ctx) || string(c.KV().Key) != "a" {
		t.Fatalf("row view: first key = %q", c.KV().Key)
	}
	if !c.NextBatch(ctx) {
		t.Fatal("NextBatch after Next failed")
	}
	if got := c.Batch(); len(got) != 2 || string(got[0].Key) != "b" {
		t.Fatalf("batch after one row = %v", got)
	}
	if !c.Next(ctx) || string(c.KV().Key) != "d" {
		t.Fatalf("row after batch = %q", c.KV().Key)
	}
	if c.Next(ctx) || c.Err() != nil {
		t.Fatalf("expected clean end, err=%v", c.Err())
	}

	merged := MergeCursors(
		pagesCursor([][]mvcc.KV{{kv("a"), kv("c"), kv("e")}}),
		pagesCursor([][]mvcc.KV{{kv("b"), kv("d")}, {kv("f")}}),
	)
	rowView := AsKVCursor(merged)
	var got []string
	for rowView.Next(ctx) {
		got = append(got, string(rowView.KV().Key))
	}
	if rowView.Err() != nil {
		t.Fatal(rowView.Err())
	}
	want := []string{"a", "b", "c", "d", "e", "f"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merged row view = %v, want %v", got, want)
	}
}

// TestAggMergeAcrossBatches pins two AggMergeCursor properties: a group
// spanning a child batch boundary merges into one output pair, and the
// pending group's bytes are cloned before the child refills (so a child
// that recycles its page buffer cannot corrupt the group being
// assembled).
func TestAggMergeAcrossBatches(t *testing.T) {
	ctx := context.Background()
	// Child recycles one backing buffer across batches, as the BatchCursor
	// contract permits.
	buf := make([]mvcc.KV, 2)
	batches := [][2]string{{"g1", "g2"}, {"g2", "g3"}}
	i := 0
	child := newScanCursor(context.Background(), nil, 0, 0, 0, nil, func(context.Context, []byte, int, int) ([]mvcc.KV, []byte, bool, error) {
		b := batches[i]
		i++
		buf[0] = mvcc.KV{Key: []byte(b[0]), Value: []byte{1}}
		buf[1] = mvcc.KV{Key: []byte(b[1]), Value: []byte{1}}
		return buf, nil, i < len(batches), nil
	})
	m := MergeAggregates(child, func(a, b []byte) ([]byte, error) {
		return []byte{a[0] + b[0]}, nil
	})
	var keys []string
	var counts []int
	for m.NextBatch(ctx) {
		for _, kv := range m.Batch() {
			keys = append(keys, string(kv.Key))
			counts = append(counts, int(kv.Value[0]))
		}
	}
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	if fmt.Sprint(keys) != "[g1 g2 g3]" || fmt.Sprint(counts) != "[1 2 1]" {
		t.Fatalf("merged groups %v counts %v, want [g1 g2 g3] [1 2 1]", keys, counts)
	}
	if !bytes.Equal([]byte("g2"), []byte(keys[1])) {
		t.Fatalf("boundary group key corrupted: %q", keys[1])
	}
}
