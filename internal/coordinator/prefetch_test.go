package coordinator

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"globaldb/internal/stats"
	"globaldb/internal/storage/mvcc"
)

// slowPages builds a prefetching cursor whose fetch signals `started` when
// a page request begins and parks until `release` closes — a deterministic
// stand-in for an in-flight WAN RPC.
func slowPages(ctx context.Context, window int, pages [][]mvcc.KV, started chan<- struct{}, release <-chan struct{}) *ScanCursor {
	i := 0
	return newScanCursor(ctx, nil, 0, 0, window, nil, func(fctx context.Context, _ []byte, _, _ int) ([]mvcc.KV, []byte, bool, error) {
		if started != nil {
			started <- struct{}{}
		}
		if release != nil {
			select {
			case <-release:
			case <-fctx.Done():
				return nil, nil, false, fctx.Err()
			}
		}
		p := pages[i]
		i++
		return p, nil, i < len(pages), nil
	})
}

// TestPrefetchFirstPagesFanOutInParallel pins the structural claim behind
// the merged-scan latency win: every shard cursor's first page RPC is
// issued at creation, before anyone consumes, so K first pages are in
// flight concurrently — the merge's first batch costs ~1 round trip, not
// K serial ones. The test is timing-free: it observes all K fetches start
// while all of them are still blocked.
func TestPrefetchFirstPagesFanOutInParallel(t *testing.T) {
	const k = 4
	started := make(chan struct{}, k)
	release := make(chan struct{})
	children := make([]BatchCursor, k)
	for i := 0; i < k; i++ {
		children[i] = slowPages(context.Background(), DefaultPrefetchWindow,
			[][]mvcc.KV{{kv(string(rune('a' + i)))}}, started, release)
	}
	for i := 0; i < k; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d first-page fetches started in parallel", i, k)
		}
	}
	close(release)
	m := MergeCursors(children...)
	defer m.Close()
	var got []string
	for m.NextBatch(context.Background()) {
		for _, kv := range m.Batch() {
			got = append(got, string(kv.Key))
		}
	}
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	if len(got) != k || got[0] != "a" || got[k-1] != "d" {
		t.Fatalf("merged keys = %v", got)
	}
}

// TestPrefetchWindowBoundsInFlightPages pins the window semantics: with a
// window of one page ahead, the prefetcher fetches page 1 immediately but
// does not start page 2 until page 1 is handed to the consumer.
func TestPrefetchWindowBoundsInFlightPages(t *testing.T) {
	var fetches atomic.Int64
	pages := [][]mvcc.KV{{kv("a")}, {kv("b")}, {kv("c")}, {kv("d")}}
	i := 0
	c := newScanCursor(context.Background(), nil, 0, 0, 1, nil, func(context.Context, []byte, int, int) ([]mvcc.KV, []byte, bool, error) {
		fetches.Add(1)
		p := pages[i]
		i++
		return p, nil, i < len(pages), nil
	})
	defer c.Close()

	waitFor := func(want int64) {
		deadline := time.Now().Add(5 * time.Second)
		for fetches.Load() < want {
			if time.Now().After(deadline) {
				t.Fatalf("fetches = %d, want %d", fetches.Load(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(1)
	time.Sleep(20 * time.Millisecond) // would overrun here if unbounded
	if n := fetches.Load(); n > 1 {
		t.Fatalf("window 1 issued %d fetches before any consumption", n)
	}
	if !c.NextBatch(context.Background()) {
		t.Fatal("first batch missing")
	}
	waitFor(2) // handing page 1 over frees the window for page 2
	time.Sleep(20 * time.Millisecond)
	if n := fetches.Load(); n > 2 {
		t.Fatalf("window 1 ran %d fetches ahead after one batch", n)
	}
}

// TestPrefetchLimitStopsFetching pins that a satisfied row budget stops
// the prefetcher outright: once the limit is consumed by fetched pages, no
// further RPC is issued no matter how deep the window — LIMIT pushdown
// wastes no WAN bandwidth on prefetch.
func TestPrefetchLimitStopsFetching(t *testing.T) {
	var fetches atomic.Int64
	c := newScanCursor(context.Background(), nil, 2, 0, 3, nil, func(context.Context, []byte, int, int) ([]mvcc.KV, []byte, bool, error) {
		fetches.Add(1)
		return []mvcc.KV{kv("a"), kv("b"), kv("c")}, []byte("resume"), true, nil
	})
	defer c.Close()
	var got []string
	for c.NextBatch(context.Background()) {
		for _, kv := range c.Batch() {
			got = append(got, string(kv.Key))
		}
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if len(got) != 2 {
		t.Fatalf("limit 2 yielded %v", got)
	}
	time.Sleep(20 * time.Millisecond)
	if n := fetches.Load(); n != 1 {
		t.Fatalf("limit-satisfied cursor issued %d fetches, want 1", n)
	}
}

// TestPrefetchCloseCancelsInFlight pins Close's obligations: it cancels
// the outstanding page RPC and joins the prefetch goroutine before
// returning, so closing a cursor mid-fetch neither blocks on the WAN nor
// leaks the goroutine.
func TestPrefetchCloseCancelsInFlight(t *testing.T) {
	started := make(chan struct{}, 1)
	c := slowPages(context.Background(), 1, [][]mvcc.KV{{kv("a")}}, started, make(chan struct{}))
	<-started // the page RPC is in flight and will never complete on its own
	done := make(chan struct{})
	go func() {
		c.Close() // waits for the prefetch goroutine internally
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not cancel the in-flight fetch")
	}
}

// TestPrefetchConsumerContextCancel pins the consumer-side unblock path: a
// NextBatch waiting for a page honors its own context even while the
// fetch is stuck, and the cursor surfaces the cancellation as its error.
func TestPrefetchConsumerContextCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	c := slowPages(context.Background(), 1, [][]mvcc.KV{{kv("a")}}, nil, release)
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if c.NextBatch(ctx) {
		t.Fatal("NextBatch succeeded under a canceled context")
	}
	if !errors.Is(c.Err(), context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", c.Err())
	}
}

// TestPrefetchErrorSurfaces pins error delivery through the prefetch
// channel: pages before the failure are yielded, then the fetch error
// terminates the stream exactly as in synchronous mode.
func TestPrefetchErrorSurfaces(t *testing.T) {
	boom := errors.New("boom")
	i := 0
	c := newScanCursor(context.Background(), nil, 0, 0, 2, nil, func(context.Context, []byte, int, int) ([]mvcc.KV, []byte, bool, error) {
		i++
		if i == 2 {
			return nil, nil, false, boom
		}
		return []mvcc.KV{kv("a")}, []byte("r"), true, nil
	})
	defer c.Close()
	if !c.NextBatch(context.Background()) {
		t.Fatalf("first page missing, err=%v", c.Err())
	}
	if c.NextBatch(context.Background()) {
		t.Fatal("batch yielded past the failing fetch")
	}
	if !errors.Is(c.Err(), boom) {
		t.Fatalf("err = %v, want boom", c.Err())
	}
}

// TestPrefetchCountersObserveHitsAndWait pins the WAN observability feed:
// a page that is ready before the consumer asks counts as a prefetch hit,
// and the consumer's blocked time accumulates as WAN wait.
func TestPrefetchCountersObserveHitsAndWait(t *testing.T) {
	ctrs := &stats.ScanCounters{}
	release := make(chan struct{}, 2)
	release <- struct{}{} // page 1 may fetch immediately
	i := 0
	c := newScanCursor(context.Background(), nil, 0, 0, 1, ctrs, func(fctx context.Context, _ []byte, _, _ int) ([]mvcc.KV, []byte, bool, error) {
		select {
		case <-release:
		case <-fctx.Done():
			return nil, nil, false, fctx.Err()
		}
		i++
		ctrs.Observe(1, 1) // what ScanSpec.observePage does per fetched page
		return []mvcc.KV{kv(string(rune('a' + i)))}, []byte("r"), i < 2, nil
	})
	defer c.Close()

	// Page 1: give the prefetcher time to have it ready — a hit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := ctrs.Snapshot()
		if s.PagesFetched >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first page never fetched")
		}
		time.Sleep(time.Millisecond)
	}
	// ObserveWait(hit) fires on the handoff, not the fetch: give the
	// prefetcher a beat to park on the handoff channel, then consume.
	time.Sleep(50 * time.Millisecond)
	if !c.NextBatch(context.Background()) {
		t.Fatalf("page 1 missing, err=%v", c.Err())
	}
	if s := ctrs.Snapshot(); s.PrefetchHits != 1 {
		t.Fatalf("prefetch hits = %d after a ready page, want 1", s.PrefetchHits)
	}
	// Page 2 is still blocked: the consumer must wait, accruing WAN wait
	// and no hit.
	go func() {
		time.Sleep(15 * time.Millisecond)
		release <- struct{}{}
	}()
	if !c.NextBatch(context.Background()) {
		t.Fatalf("page 2 missing, err=%v", c.Err())
	}
	s := ctrs.Snapshot()
	if s.PrefetchHits != 1 {
		t.Fatalf("prefetch hits = %d, want 1 (page 2 was a miss)", s.PrefetchHits)
	}
	if s.WANWait < 10*time.Millisecond {
		t.Fatalf("WAN wait = %v, want >= 10ms from the blocked second page", s.WANWait)
	}
	if s.PagesFetched != 2 {
		t.Fatalf("pages fetched = %d, want 2", s.PagesFetched)
	}
}

// TestSyncModeUnchanged pins that a negative prefetch window reproduces
// the fully synchronous cursor: no fetch happens before demand, and a
// consumer that stops early never pays for pages it did not read.
func TestSyncModeUnchanged(t *testing.T) {
	var fetches atomic.Int64
	specWindow := ScanSpec{Prefetch: -1}.window()
	if specWindow != 0 {
		t.Fatalf("Prefetch -1 resolved to window %d, want 0", specWindow)
	}
	if w := (ScanSpec{}).window(); w != DefaultPrefetchWindow {
		t.Fatalf("default window = %d, want %d", w, DefaultPrefetchWindow)
	}
	i := 0
	pages := [][]mvcc.KV{{kv("a")}, {kv("b")}}
	c := newScanCursor(context.Background(), nil, 0, 0, 0, nil, func(context.Context, []byte, int, int) ([]mvcc.KV, []byte, bool, error) {
		fetches.Add(1)
		p := pages[i]
		i++
		return p, nil, i < len(pages), nil
	})
	defer c.Close()
	time.Sleep(10 * time.Millisecond)
	if fetches.Load() != 0 {
		t.Fatal("synchronous cursor fetched before demand")
	}
	if !c.NextBatch(context.Background()) || fetches.Load() != 1 {
		t.Fatalf("after one batch: fetches=%d", fetches.Load())
	}
	c.Close()
	if fetches.Load() != 1 {
		t.Fatalf("close issued fetches: %d", fetches.Load())
	}
}
