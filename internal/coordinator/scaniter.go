package coordinator

import (
	"bytes"
	"context"
	"sort"
	"time"

	"globaldb/internal/datanode"
	"globaldb/internal/stats"
	"globaldb/internal/storage/mvcc"
)

// BatchCursor is the batch-native pull iterator the scan pipeline runs on:
// each NextBatch yields a reference to the next run of key/value pairs —
// typically a whole data-node page — instead of one pair at a time.
// Implementations fetch lazily (no page is requested until NextBatch
// demands it) and move batch references rather than copying rows: the
// cross-shard merge only splits a page where another shard's keys
// interleave. A returned batch is valid until the following NextBatch
// call, and its pairs must be treated as read-only (they may alias storage
// memory end to end).
type BatchCursor interface {
	// NextBatch advances to the following batch, fetching if needed. It
	// returns false at the end of the stream or on error.
	NextBatch(ctx context.Context) bool
	// Batch returns the current batch (valid after a true NextBatch, until
	// the following NextBatch).
	Batch() []mvcc.KV
	// Err returns the first error encountered, if any.
	Err() error
	// Close releases the cursor. It is safe to call multiple times.
	Close()
}

// KVCursor is the row-at-a-time view of a batch stream, kept for consumers
// that genuinely want one pair per step. AsKVCursor adapts any BatchCursor.
type KVCursor interface {
	// Next advances to the following pair, fetching a page if needed.
	Next(ctx context.Context) bool
	// KV returns the current pair (valid after a true Next).
	KV() mvcc.KV
	// Err returns the first error encountered, if any.
	Err() error
	// Close releases the cursor. It is safe to call multiple times.
	Close()
}

// AsKVCursor wraps a batch cursor in a row-at-a-time view.
func AsKVCursor(bc BatchCursor) KVCursor { return &rowCursor{bc: bc} }

type rowCursor struct {
	bc    BatchCursor
	batch []mvcc.KV
	pos   int
	cur   mvcc.KV
}

func (r *rowCursor) Next(ctx context.Context) bool {
	for r.pos >= len(r.batch) {
		if !r.bc.NextBatch(ctx) {
			return false
		}
		r.batch, r.pos = r.bc.Batch(), 0
	}
	r.cur = r.batch[r.pos]
	r.pos++
	return true
}

func (r *rowCursor) KV() mvcc.KV { return r.cur }
func (r *rowCursor) Err() error  { return r.bc.Err() }
func (r *rowCursor) Close()      { r.bc.Close() }

// fetchPage retrieves one page starting at start: it returns the pairs, the
// resume key, and whether the range may hold more. remaining is the total
// row budget still wanted (<= 0 means unlimited); page is the requested
// page size for this fetch (<= 0 lets the data node pick its default).
type fetchPage func(ctx context.Context, start []byte, remaining, page int) ([]mvcc.KV, []byte, bool, error)

// ScanCursor streams one shard's key range as pages pulled on demand. It is
// the pipeline's batch source: each data-node page is handed upward as one
// batch reference.
//
// Pages grow adaptively: the first page uses the caller's hint (cheap
// time-to-first-row, little wasted prefetch when a LIMIT stops the scan),
// and each following page quadruples up to the data node's default so deep
// scans amortize WAN round trips.
type ScanCursor struct {
	fetch     fetchPage
	next      []byte
	remaining int // rows still wanted; < 0 means unlimited
	pageSize  int // current page size; <= 0 lets the node pick
	pageCap   int // growth ceiling
	buf       []mvcc.KV
	pos       int // row-view position within buf
	batch     []mvcc.KV
	cur       mvcc.KV
	started   bool
	more      bool
	err       error
	closed    bool
}

func newScanCursor(start []byte, limit, pageSize int, fetch fetchPage) *ScanCursor {
	remaining := -1
	if limit > 0 {
		remaining = limit
	}
	cap := datanode.DefaultScanPageSize
	if pageSize > cap {
		cap = pageSize
	}
	return &ScanCursor{fetch: fetch, next: bytes.Clone(start), remaining: remaining,
		pageSize: pageSize, pageCap: cap}
}

// fill ensures buf[pos:] holds at least one unconsumed pair, fetching the
// next page when the current one is drained. The row budget truncates at
// the page level, so batch and row consumers see identical limits.
func (c *ScanCursor) fill(ctx context.Context) bool {
	if c.closed || c.err != nil {
		return false
	}
	for c.pos >= len(c.buf) {
		if (c.started && !c.more) || c.remaining == 0 {
			return false
		}
		want := 0
		if c.remaining > 0 {
			want = c.remaining
		}
		kvs, next, more, err := c.fetch(ctx, c.next, want, c.pageSize)
		if err != nil {
			c.err = err
			return false
		}
		c.started = true
		if c.remaining > 0 {
			if len(kvs) > c.remaining {
				kvs = kvs[:c.remaining]
			}
			c.remaining -= len(kvs)
		}
		c.buf, c.pos = kvs, 0
		c.next, c.more = next, more
		if c.pageSize > 0 && c.pageSize < c.pageCap {
			c.pageSize *= 4
			if c.pageSize > c.pageCap {
				c.pageSize = c.pageCap
			}
		}
	}
	return true
}

// NextBatch implements BatchCursor: it yields the unconsumed remainder of
// the current page, or fetches the next one.
func (c *ScanCursor) NextBatch(ctx context.Context) bool {
	if !c.fill(ctx) {
		return false
	}
	c.batch = c.buf[c.pos:]
	c.pos = len(c.buf)
	return true
}

// Batch implements BatchCursor.
func (c *ScanCursor) Batch() []mvcc.KV { return c.batch }

// Next implements KVCursor.
func (c *ScanCursor) Next(ctx context.Context) bool {
	if !c.fill(ctx) {
		return false
	}
	c.cur = c.buf[c.pos]
	c.pos++
	return true
}

// KV implements KVCursor.
func (c *ScanCursor) KV() mvcc.KV { return c.cur }

// Err implements KVCursor and BatchCursor.
func (c *ScanCursor) Err() error { return c.err }

// Close implements KVCursor and BatchCursor.
func (c *ScanCursor) Close() { c.closed = true }

// ScanSpec describes one shard's paged scan: the key range, row budgets,
// an optional encoded execution fragment the data node evaluates locally
// (globaldb/gsql/fragment), and optional per-query counters fed by every
// page fetch.
type ScanSpec struct {
	// Start and End bound the key range, [Start, End).
	Start, End []byte
	// Limit caps the qualifying rows the cursor yields; <= 0 unlimited.
	Limit int
	// PageSize is the first page's row budget; <= 0 uses the node default.
	PageSize int
	// Frag is the encoded execution fragment shipped with every page
	// request; nil scans raw pairs.
	Frag []byte
	// Counters, when non-nil, accumulates per-fetch examined/shipped rows.
	Counters *stats.ScanCounters
}

// observePage feeds one fetched page into the spec's counters.
func (s ScanSpec) observePage(resp datanode.ScanPageResp) {
	if s.Counters != nil {
		s.Counters.Observe(resp.Examined, len(resp.KVs))
	}
}

// ScanCursor returns a lazy paged cursor over the spec's range on one
// shard's primary at the transaction's snapshot, observing the
// transaction's own writes. Any attached fragment runs on the data node
// before rows are shipped.
func (t *Txn) ScanCursor(shard int, spec ScanSpec) *ScanCursor {
	return newScanCursor(spec.Start, spec.Limit, spec.PageSize, func(ctx context.Context, from []byte, remaining, page int) ([]mvcc.KV, []byte, bool, error) {
		if t.done {
			return nil, nil, false, ErrTxnDone
		}
		t.cn.primaryReads.Add(1)
		if tr := t.cn.placement; tr != nil {
			tr.RecordRead(shard, t.cn.region)
		}
		resp, err := t.cn.client.ScanPageFrag(ctx, t.cn.routing.Primary(shard), from, spec.End, t.ts.Snap, remaining, page, spec.Frag, t.id)
		if err != nil {
			return nil, nil, false, err
		}
		spec.observePage(resp)
		return resp.KVs, resp.Next, resp.More, nil
	})
}

// ScanCursor returns a lazy paged cursor over the spec's range on one
// shard at the query's snapshot, served by the skyline-selected node with
// a per-page fallback to the primary when a replica fails mid-scan. Any
// attached fragment runs on whichever node serves the page — the fragment
// carries the snapshot-independent plan and the request carries the
// snapshot, so replica execution at the RCP is identical to primary
// execution.
func (r *ROTxn) ScanCursor(shard int, spec ScanSpec) *ScanCursor {
	return newScanCursor(spec.Start, spec.Limit, spec.PageSize, func(ctx context.Context, from []byte, remaining, page int) ([]mvcc.KV, []byte, bool, error) {
		node, replica, err := r.pick(shard)
		if err != nil {
			return nil, nil, false, err
		}
		t0 := time.Now()
		resp, err := r.cn.client.ScanPageFrag(ctx, node, from, spec.End, r.snap, remaining, page, spec.Frag, 0)
		r.observe(node, replica, t0, err)
		if err != nil && replica {
			r.cn.primaryReads.Add(1)
			resp, err = r.cn.client.ScanPageFrag(ctx, r.cn.routing.Primary(shard), from, spec.End, r.snap, remaining, page, spec.Frag, 0)
		}
		if err != nil {
			return nil, nil, false, err
		}
		spec.observePage(resp)
		return resp.KVs, resp.Next, resp.More, nil
	})
}

// MergedCursor merges several batch streams into one in ascending key
// order — the cross-shard merge that turns per-shard paged scans into a
// single table-wide scan in primary-key order. It moves batch references:
// each NextBatch emits the longest prefix of the leading shard's current
// batch whose keys precede every other shard's head, splitting a page only
// at a genuine shard-interleave boundary rather than re-copying rows one
// by one.
type MergedCursor struct {
	children []BatchCursor
	heads    [][]mvcc.KV // unconsumed remainder of each child's batch
	alive    []bool
	inited   bool
	batch    []mvcc.KV
	err      error
}

// MergeCursors combines batch cursors in ascending key order. The inputs
// must each yield keys in ascending order (as ScanCursor does). Ties
// between shards break toward the lower-index child, matching row-at-a-time
// merge order.
func MergeCursors(children ...BatchCursor) *MergedCursor {
	return &MergedCursor{
		children: children,
		heads:    make([][]mvcc.KV, len(children)),
		alive:    make([]bool, len(children)),
	}
}

// refill pulls child i's next batch if its current one is consumed.
func (m *MergedCursor) refill(ctx context.Context, i int) {
	if !m.alive[i] || len(m.heads[i]) > 0 {
		return
	}
	if m.children[i].NextBatch(ctx) {
		m.heads[i] = m.children[i].Batch()
		return
	}
	m.alive[i] = false
	if err := m.children[i].Err(); err != nil && m.err == nil {
		m.err = err
	}
}

// NextBatch implements BatchCursor.
func (m *MergedCursor) NextBatch(ctx context.Context) bool {
	if m.err != nil {
		return false
	}
	if !m.inited {
		m.inited = true
		for i := range m.alive {
			m.alive[i] = true
		}
	}
	for i := range m.children {
		m.refill(ctx, i)
		if m.err != nil {
			return false
		}
	}
	// Pick the child whose head key is smallest (lowest index on ties).
	best := -1
	for i, h := range m.heads {
		if len(h) == 0 {
			continue
		}
		if best < 0 || bytes.Compare(h[0].Key, m.heads[best][0].Key) < 0 {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	// Emit the run of the best child's keys that precede every other head.
	var minOther []byte
	haveOther := false
	for i, h := range m.heads {
		if i == best || len(h) == 0 {
			continue
		}
		if !haveOther || bytes.Compare(h[0].Key, minOther) < 0 {
			minOther, haveOther = h[0].Key, true
		}
	}
	h := m.heads[best]
	run := len(h)
	if haveOther {
		run = sort.Search(len(h), func(i int) bool { return bytes.Compare(h[i].Key, minOther) >= 0 })
		if run == 0 {
			run = 1 // head ties another shard: emit it alone, lower index first
		}
	}
	m.batch = h[:run]
	m.heads[best] = h[run:]
	return true
}

// Batch implements BatchCursor.
func (m *MergedCursor) Batch() []mvcc.KV { return m.batch }

// Err implements BatchCursor.
func (m *MergedCursor) Err() error { return m.err }

// Close implements BatchCursor.
func (m *MergedCursor) Close() {
	for _, c := range m.children {
		c.Close()
	}
}

// ChainedCursor concatenates batch streams, draining each in turn — the
// legacy shard-order traversal (shard 0's keys, then shard 1's, ...).
type ChainedCursor struct {
	children []BatchCursor
	i        int
	err      error
}

// ChainCursors concatenates cursors in the given order.
func ChainCursors(children ...BatchCursor) *ChainedCursor {
	return &ChainedCursor{children: children}
}

// NextBatch implements BatchCursor.
func (c *ChainedCursor) NextBatch(ctx context.Context) bool {
	if c.err != nil {
		return false
	}
	for c.i < len(c.children) {
		child := c.children[c.i]
		if child.NextBatch(ctx) {
			return true
		}
		if err := child.Err(); err != nil {
			c.err = err
			return false
		}
		c.i++
	}
	return false
}

// Batch implements BatchCursor.
func (c *ChainedCursor) Batch() []mvcc.KV {
	return c.children[c.i].Batch()
}

// Err implements BatchCursor.
func (c *ChainedCursor) Err() error { return c.err }

// Close implements BatchCursor.
func (c *ChainedCursor) Close() {
	for _, child := range c.children {
		child.Close()
	}
}

// AggMergeCursor coalesces runs of equal keys in an already key-ordered
// batch stream, combining their values with a caller-supplied merge
// function. This is the coordinator's CN-final half of aggregate pushdown:
// each shard returns per-group partial states keyed by a memcomparable
// group key, MergeCursors interleaves them in key order (equal groups
// adjacent), and this cursor merges the adjacent partials into one state
// per group. A group is emitted only once a strictly greater key (or end
// of stream) proves it complete, so groups spanning shard-batch boundaries
// are never split.
type AggMergeCursor struct {
	child        BatchCursor
	merge        func(a, b []byte) ([]byte, error)
	out          []mvcc.KV // reused output buffer; valid until next NextBatch
	pending      mvcc.KV
	havePending  bool
	pendingOwned bool // pending no longer aliases the child's batch
	done         bool
	err          error
}

// MergeAggregates wraps a key-ordered batch cursor of per-shard partial
// rows, yielding exactly one pair per distinct key with values combined by
// merge. A child error suppresses the group being assembled — a partial
// aggregate missing one shard's contribution would be silently wrong.
func MergeAggregates(child BatchCursor, merge func(a, b []byte) ([]byte, error)) *AggMergeCursor {
	return &AggMergeCursor{child: child, merge: merge}
}

// NextBatch implements BatchCursor.
func (m *AggMergeCursor) NextBatch(ctx context.Context) bool {
	if m.err != nil || m.done {
		return false
	}
	m.out = m.out[:0]
	for {
		// The group being assembled is about to outlive the child's
		// current batch (the refill below invalidates it), so take
		// ownership of its bytes first.
		if m.havePending && !m.pendingOwned {
			m.pending.Key = bytes.Clone(m.pending.Key)
			m.pending.Value = bytes.Clone(m.pending.Value)
			m.pendingOwned = true
		}
		if !m.child.NextBatch(ctx) {
			if err := m.child.Err(); err != nil {
				m.err = err
				return false
			}
			m.done = true
			if m.havePending {
				m.out = append(m.out, m.pending)
				m.havePending = false
			}
			return len(m.out) > 0
		}
		for _, kv := range m.child.Batch() {
			if m.havePending && bytes.Equal(kv.Key, m.pending.Key) {
				merged, err := m.merge(m.pending.Value, kv.Value)
				if err != nil {
					m.err = err
					return false
				}
				m.pending.Value = merged
				continue
			}
			if m.havePending {
				m.out = append(m.out, m.pending)
			}
			m.pending, m.havePending, m.pendingOwned = kv, true, false
		}
		// Groups closed within this child batch are ready; the last one
		// stays pending until a greater key or end of stream closes it.
		if len(m.out) > 0 {
			return true
		}
	}
}

// Batch implements BatchCursor.
func (m *AggMergeCursor) Batch() []mvcc.KV { return m.out }

// Err implements BatchCursor.
func (m *AggMergeCursor) Err() error { return m.err }

// Close implements BatchCursor.
func (m *AggMergeCursor) Close() { m.child.Close() }

// ScanRowsFetched reports the rows this CN has received in scan responses,
// one layer above the storage engines' own RowsScanned counters.
func (c *CN) ScanRowsFetched() int64 { return c.client.ScanRowsFetched() }
