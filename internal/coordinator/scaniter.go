package coordinator

import (
	"bytes"
	"context"
	"sort"
	"time"

	"globaldb/internal/datanode"
	"globaldb/internal/obs"
	"globaldb/internal/stats"
	"globaldb/internal/storage/mvcc"
)

// BatchCursor is the batch-native pull iterator the scan pipeline runs on:
// each NextBatch yields a reference to the next run of key/value pairs —
// typically a whole data-node page — instead of one pair at a time.
// Implementations move batch references rather than copying rows: the
// cross-shard merge only splits a page where another shard's keys
// interleave. A returned batch is valid until the following NextBatch
// call, and its pairs must be treated as read-only (they may alias storage
// memory end to end).
type BatchCursor interface {
	// NextBatch advances to the following batch, fetching if needed. It
	// returns false at the end of the stream or on error.
	NextBatch(ctx context.Context) bool
	// Batch returns the current batch (valid after a true NextBatch, until
	// the following NextBatch).
	Batch() []mvcc.KV
	// Err returns the first error encountered, if any.
	Err() error
	// Close releases the cursor. It is safe to call multiple times.
	Close()
}

// KVCursor is the row-at-a-time view of a batch stream, kept for consumers
// that genuinely want one pair per step. AsKVCursor adapts any BatchCursor.
type KVCursor interface {
	// Next advances to the following pair, fetching a page if needed.
	Next(ctx context.Context) bool
	// KV returns the current pair (valid after a true Next).
	KV() mvcc.KV
	// Err returns the first error encountered, if any.
	Err() error
	// Close releases the cursor. It is safe to call multiple times.
	Close()
}

// AsKVCursor wraps a batch cursor in a row-at-a-time view.
func AsKVCursor(bc BatchCursor) KVCursor { return &rowCursor{bc: bc} }

type rowCursor struct {
	bc    BatchCursor
	batch []mvcc.KV
	pos   int
	cur   mvcc.KV
}

func (r *rowCursor) Next(ctx context.Context) bool {
	for r.pos >= len(r.batch) {
		if !r.bc.NextBatch(ctx) {
			return false
		}
		r.batch, r.pos = r.bc.Batch(), 0
	}
	r.cur = r.batch[r.pos]
	r.pos++
	return true
}

func (r *rowCursor) KV() mvcc.KV { return r.cur }
func (r *rowCursor) Err() error  { return r.bc.Err() }
func (r *rowCursor) Close()      { r.bc.Close() }

// fetchPage retrieves one page starting at start: it returns the pairs, the
// resume key, and whether the range may hold more. remaining is the total
// row budget still wanted (<= 0 means unlimited); page is the requested
// page size for this fetch (<= 0 lets the data node pick its default).
type fetchPage func(ctx context.Context, start []byte, remaining, page int) ([]mvcc.KV, []byte, bool, error)

// DefaultPrefetchWindow is the number of pages a cursor keeps fetched (or
// in flight) ahead of the page being consumed when the caller does not
// choose a window: classic double buffering. One page ahead already turns
// a multi-page drain from serial (RTT + consume, per page) into pipelined
// (max(RTT, consume) per page), and — because every cursor's prefetcher
// starts at creation — gives a K-shard merged scan all K first pages in
// parallel. Deeper windows only help when consumption is burstier than one
// page; they cost proportionally more wasted WAN bandwidth when the
// consumer stops early.
const DefaultPrefetchWindow = 1

// prefetched is one page handed from the prefetch goroutine to the
// consumer. A non-nil err terminates the stream.
type prefetched struct {
	kvs []mvcc.KV
	err error
}

// ScanCursor streams one shard's key range as pages. It is the pipeline's
// batch source: each data-node page is handed upward as one batch
// reference.
//
// With a prefetch window (the default), a per-cursor goroutine runs the
// page fetch loop ahead of consumption: the first page's RPC is issued the
// moment the cursor is created and each following page is requested as
// soon as its predecessor's resume key arrives, so the WAN round trip of
// page N+1 overlaps the consumer processing page N, and the first pages of
// K sibling shard cursors travel in parallel. The window bounds how many
// unconsumed pages may be fetched or in flight, which is also the maximum
// WAN waste when a consumer stops early. With the window disabled the
// cursor fetches synchronously on demand, exactly as before.
//
// Pages grow adaptively in either mode: the first page uses the caller's
// hint (cheap time-to-first-row, little wasted prefetch when a LIMIT stops
// the scan), and each following page quadruples up to the data node's
// default so deep scans amortize WAN round trips. The growth state lives
// in the serial fetch loop, so issuing requests ahead of consumption
// cannot reorder or skip the growth schedule.
type ScanCursor struct {
	fetch fetchPage
	ctrs  *stats.ScanCounters // optional; fed page-wait/prefetch-hit stats

	// Fetch-side state machine. The consumer drives it from fill in
	// synchronous mode; with prefetch it is owned exclusively by the
	// prefetch goroutine (no lock needed — pages cross via the channel).
	next      []byte
	remaining int // rows still wanted; < 0 means unlimited
	pageSize  int // current page size; <= 0 lets the node pick
	pageCap   int // growth ceiling
	started   bool
	more      bool

	// Consumer-side state.
	buf    []mvcc.KV
	pos    int // row-view position within buf
	batch  []mvcc.KV
	cur    mvcc.KV
	err    error
	closed bool

	// Prefetcher plumbing; nil cancel means synchronous mode.
	pages  chan prefetched
	cancel context.CancelFunc
	done   chan struct{}
}

// newScanCursor builds a cursor; window > 0 starts a prefetcher fetching
// that many pages ahead of consumption under ctx (canceled by Close).
func newScanCursor(ctx context.Context, start []byte, limit, pageSize, window int, ctrs *stats.ScanCounters, fetch fetchPage) *ScanCursor {
	remaining := -1
	if limit > 0 {
		remaining = limit
	}
	cap := datanode.DefaultScanPageSize
	if pageSize > cap {
		cap = pageSize
	}
	c := &ScanCursor{fetch: fetch, ctrs: ctrs, next: bytes.Clone(start), remaining: remaining,
		pageSize: pageSize, pageCap: cap}
	if window > 0 {
		pctx, cancel := context.WithCancel(ctx)
		// Channel capacity window-1: one page rests in the goroutine's hand
		// (fetched, blocked on send) and window-1 more are buffered, so at
		// most `window` unconsumed pages exist at any moment.
		c.pages = make(chan prefetched, window-1)
		c.cancel = cancel
		c.done = make(chan struct{})
		go c.prefetchLoop(pctx)
	}
	return c
}

// fetchOnce advances the serial fetch state machine by one page. It
// returns the page (possibly empty), whether the stream is exhausted, and
// any error. It must only be called from one goroutine at a time: the
// consumer (synchronous mode) or the prefetcher.
func (c *ScanCursor) fetchOnce(ctx context.Context) (kvs []mvcc.KV, done bool, err error) {
	if (c.started && !c.more) || c.remaining == 0 {
		return nil, true, nil
	}
	want := 0
	if c.remaining > 0 {
		want = c.remaining
	}
	kvs, next, more, err := c.fetch(ctx, c.next, want, c.pageSize)
	if err != nil {
		return nil, true, err
	}
	c.started = true
	if c.remaining > 0 {
		if len(kvs) > c.remaining {
			kvs = kvs[:c.remaining]
		}
		c.remaining -= len(kvs)
	}
	c.next, c.more = next, more
	if c.pageSize > 0 && c.pageSize < c.pageCap {
		c.pageSize *= 4
		if c.pageSize > c.pageCap {
			c.pageSize = c.pageCap
		}
	}
	return kvs, false, nil
}

// prefetchLoop runs the fetch state machine ahead of consumption, handing
// pages to the consumer over the bounded channel. It exits — closing the
// channel so the consumer observes end-of-stream — when the range is
// exhausted, the row budget is spent, an error occurs, or ctx is canceled
// (Close, or the scan's parent context).
func (c *ScanCursor) prefetchLoop(ctx context.Context) {
	defer close(c.done)
	defer close(c.pages)
	for {
		kvs, done, err := c.fetchOnce(ctx)
		if err != nil {
			select {
			case c.pages <- prefetched{err: err}:
			case <-ctx.Done():
			}
			return
		}
		if done {
			return
		}
		if len(kvs) == 0 {
			continue // empty page mid-range (e.g. a DN examine budget)
		}
		select {
		case c.pages <- prefetched{kvs: kvs}:
		case <-ctx.Done():
			return
		}
	}
}

// recvPage takes the next prefetched page. The fast path is a ready page —
// a prefetch hit, the WAN round trip fully hidden — otherwise the consumer
// blocks (accounted as WAN wait) until a page, an error, the end of the
// stream, or ctx cancellation arrives.
func (c *ScanCursor) recvPage(ctx context.Context) bool {
	var p prefetched
	var ok bool
	select {
	case p, ok = <-c.pages:
		if ok && c.ctrs != nil {
			c.ctrs.ObserveWait(0, true)
		}
	default:
		start := time.Now()
		select {
		case p, ok = <-c.pages:
		case <-ctx.Done():
			c.err = ctx.Err()
			return false
		}
		if ok && c.ctrs != nil {
			c.ctrs.ObserveWait(time.Since(start), false)
		}
	}
	if !ok {
		return false // clean end of stream (channel closed)
	}
	if p.err != nil {
		c.err = p.err
		return false
	}
	c.buf, c.pos = p.kvs, 0
	return true
}

// fill ensures buf[pos:] holds at least one unconsumed pair, taking the
// next page from the prefetcher (or fetching it synchronously) when the
// current one is drained. The row budget truncates at the page level, so
// batch and row consumers see identical limits.
func (c *ScanCursor) fill(ctx context.Context) bool {
	if c.closed || c.err != nil {
		return false
	}
	for c.pos >= len(c.buf) {
		if c.cancel != nil {
			if !c.recvPage(ctx) {
				return false
			}
			continue
		}
		start := time.Now()
		kvs, done, err := c.fetchOnce(ctx)
		if err != nil {
			c.err = err
			return false
		}
		if done {
			return false
		}
		if c.ctrs != nil {
			c.ctrs.ObserveWait(time.Since(start), false)
		}
		c.buf, c.pos = kvs, 0
	}
	return true
}

// NextBatch implements BatchCursor: it yields the unconsumed remainder of
// the current page, or fetches the next one.
func (c *ScanCursor) NextBatch(ctx context.Context) bool {
	if !c.fill(ctx) {
		return false
	}
	c.batch = c.buf[c.pos:]
	c.pos = len(c.buf)
	return true
}

// Batch implements BatchCursor.
func (c *ScanCursor) Batch() []mvcc.KV { return c.batch }

// Next implements KVCursor.
func (c *ScanCursor) Next(ctx context.Context) bool {
	if !c.fill(ctx) {
		return false
	}
	c.cur = c.buf[c.pos]
	c.pos++
	return true
}

// KV implements KVCursor.
func (c *ScanCursor) KV() mvcc.KV { return c.cur }

// Err implements KVCursor and BatchCursor.
func (c *ScanCursor) Err() error { return c.err }

// Close implements KVCursor and BatchCursor. In prefetch mode it cancels
// the outstanding page RPC (the netsim transport aborts canceled calls)
// and waits for the prefetch goroutine to exit, so a closed cursor never
// leaks a goroutine or lets a stale fetch land later.
func (c *ScanCursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.cancel != nil {
		c.cancel()
		<-c.done
	}
}

// ScanSpec describes one shard's paged scan: the key range, row budgets,
// an optional encoded execution fragment the data node evaluates locally
// (globaldb/gsql/fragment), and optional per-query counters fed by every
// page fetch.
type ScanSpec struct {
	// Start and End bound the key range, [Start, End).
	Start, End []byte
	// Limit caps the qualifying rows the cursor yields; <= 0 unlimited.
	Limit int
	// PageSize is the first page's row budget; <= 0 uses the node default.
	PageSize int
	// Prefetch is the pages-ahead window: 0 uses DefaultPrefetchWindow,
	// negative disables prefetching (fully synchronous on-demand fetches),
	// and a positive value keeps that many unconsumed pages fetched or in
	// flight.
	Prefetch int
	// Frag is the encoded execution fragment shipped with every page
	// request; nil scans raw pairs.
	Frag []byte
	// Counters, when non-nil, accumulates per-fetch examined/shipped rows
	// plus page, prefetch-hit and WAN-wait observability.
	Counters *stats.ScanCounters
}

// window resolves the spec's prefetch setting to a concrete page window.
func (s ScanSpec) window() int {
	switch {
	case s.Prefetch < 0:
		return 0
	case s.Prefetch == 0:
		return DefaultPrefetchWindow
	default:
		return s.Prefetch
	}
}

// observePage feeds one fetched page into the spec's counters.
func (s ScanSpec) observePage(resp datanode.ScanPageResp) {
	if s.Counters != nil {
		s.Counters.ObserveJoin(resp.Examined, resp.Looked, len(resp.KVs))
	}
}

// ScanCursor returns a paged cursor over the spec's range on one shard's
// primary at the transaction's snapshot, observing the transaction's own
// writes. Any attached fragment runs on the data node before rows are
// shipped. ctx bounds the cursor's background prefetching; Close (or
// draining the cursor) releases it.
func (t *Txn) ScanCursor(ctx context.Context, shard int, spec ScanSpec) *ScanCursor {
	return newScanCursor(ctx, spec.Start, spec.Limit, spec.PageSize, spec.window(), spec.Counters,
		func(ctx context.Context, from []byte, remaining, page int) ([]mvcc.KV, []byte, bool, error) {
			if t.done.Load() {
				return nil, nil, false, ErrTxnDone
			}
			t.cn.primaryReads.Add(1)
			if tr := t.cn.placement; tr != nil {
				tr.RecordRead(shard, t.cn.region)
			}
			node := t.cn.routing.Primary(shard)
			rpc := obs.SpanFrom(ctx).Child("scan-page")
			rpc.Tag("shard=%d node=%s", shard, node)
			resp, err := t.cn.client.ScanPageFrag(ctx, node, from, spec.End, t.ts.Snap, remaining, page, spec.Frag, t.id)
			rpc.AddDNExec(time.Duration(resp.ExecNanos))
			rpc.End()
			if err != nil {
				return nil, nil, false, err
			}
			// Re-check after the RPC: a prefetched page racing Commit must
			// not be delivered. Commit flips done before it resolves any
			// intent, so a page evaluated after resolution — at a snapshot
			// where the transaction's own writes are no longer visible —
			// always observes done here and errors instead of shipping a
			// silently inconsistent page; a page that raced the flip but
			// was evaluated before resolution still saw the intents.
			if t.done.Load() {
				return nil, nil, false, ErrTxnDone
			}
			spec.observePage(resp)
			return resp.KVs, resp.Next, resp.More, nil
		})
}

// ScanCursors opens one cursor per shard in [0, shards) with the same
// spec. Opening a cursor never blocks — the routing lookup and first-page
// RPC run on the cursor's prefetch goroutine, which starts at creation —
// so by the time this returns, all K shards' first pages are in flight
// concurrently and the merge's first refill costs one (maximum) round
// trip instead of K serial ones. With prefetching disabled the cursors
// stay fully lazy by design: nothing is fetched until demanded.
func (t *Txn) ScanCursors(ctx context.Context, shards int, spec ScanSpec) []BatchCursor {
	out := make([]BatchCursor, shards)
	for shard := range out {
		out[shard] = t.ScanCursor(ctx, shard, spec)
	}
	return out
}

// ScanCursor returns a paged cursor over the spec's range on one shard at
// the query's snapshot, served by the skyline-selected node with a
// per-page fallback to the primary when a replica fails mid-scan. Any
// attached fragment runs on whichever node serves the page — the fragment
// carries the snapshot-independent plan and the request carries the
// snapshot, so replica execution at the RCP is identical to primary
// execution. ctx bounds the cursor's background prefetching.
func (r *ROTxn) ScanCursor(ctx context.Context, shard int, spec ScanSpec) *ScanCursor {
	return newScanCursor(ctx, spec.Start, spec.Limit, spec.PageSize, spec.window(), spec.Counters,
		func(ctx context.Context, from []byte, remaining, page int) ([]mvcc.KV, []byte, bool, error) {
			node, replica, err := r.pick(shard)
			if err != nil {
				return nil, nil, false, err
			}
			t0 := time.Now()
			rpc := obs.SpanFrom(ctx).Child("scan-page")
			rpc.Tag("shard=%d node=%s", shard, node)
			resp, err := r.cn.client.ScanPageFrag(ctx, node, from, spec.End, r.snap, remaining, page, spec.Frag, 0)
			if err != nil && ctx.Err() != nil {
				rpc.End()
				// The cursor canceled this RPC (Close, or the consumer's
				// context) — the normal end of an early-terminated prefetch,
				// not a node failure. Don't poison the skyline tracker by
				// marking the replica failed, and don't retry the primary on
				// a context that is already dead.
				return nil, nil, false, err
			}
			r.observe(node, replica, t0, err)
			if err != nil && replica {
				r.cn.primaryReads.Add(1)
				primary := r.cn.routing.Primary(shard)
				rpc.Tag("shard=%d node=%s (replica %s failed)", shard, primary, node)
				resp, err = r.cn.client.ScanPageFrag(ctx, primary, from, spec.End, r.snap, remaining, page, spec.Frag, 0)
			}
			rpc.AddDNExec(time.Duration(resp.ExecNanos))
			rpc.End()
			if err != nil {
				return nil, nil, false, err
			}
			spec.observePage(resp)
			return resp.KVs, resp.Next, resp.More, nil
		})
}

// ScanCursors opens one cursor per shard in [0, shards); the per-shard
// replica selection (RCP-governed skyline pick) and first-page RPCs run
// concurrently on the cursors' prefetch goroutines — see Txn.ScanCursors.
func (r *ROTxn) ScanCursors(ctx context.Context, shards int, spec ScanSpec) []BatchCursor {
	out := make([]BatchCursor, shards)
	for shard := range out {
		out[shard] = r.ScanCursor(ctx, shard, spec)
	}
	return out
}

// MergedCursor merges several batch streams into one in ascending key
// order — the cross-shard merge that turns per-shard paged scans into a
// single table-wide scan in primary-key order. It moves batch references:
// each NextBatch emits the longest prefix of the leading shard's current
// batch whose keys precede every other shard's head, splitting a page only
// at a genuine shard-interleave boundary rather than re-copying rows one
// by one. With prefetching children the first refill round resolves in one
// (maximum) round trip: every child's first page is already in flight when
// the merge first asks.
type MergedCursor struct {
	children []BatchCursor
	heads    [][]mvcc.KV // unconsumed remainder of each child's batch
	alive    []bool
	inited   bool
	batch    []mvcc.KV
	err      error
}

// MergeCursors combines batch cursors in ascending key order. The inputs
// must each yield keys in ascending order (as ScanCursor does). Ties
// between shards break toward the lower-index child, matching row-at-a-time
// merge order.
func MergeCursors(children ...BatchCursor) *MergedCursor {
	return &MergedCursor{
		children: children,
		heads:    make([][]mvcc.KV, len(children)),
		alive:    make([]bool, len(children)),
	}
}

// refill pulls child i's next batch if its current one is consumed.
func (m *MergedCursor) refill(ctx context.Context, i int) {
	if !m.alive[i] || len(m.heads[i]) > 0 {
		return
	}
	if m.children[i].NextBatch(ctx) {
		m.heads[i] = m.children[i].Batch()
		return
	}
	m.alive[i] = false
	if err := m.children[i].Err(); err != nil && m.err == nil {
		m.err = err
	}
}

// NextBatch implements BatchCursor.
func (m *MergedCursor) NextBatch(ctx context.Context) bool {
	if m.err != nil {
		return false
	}
	if !m.inited {
		m.inited = true
		for i := range m.alive {
			m.alive[i] = true
		}
	}
	for i := range m.children {
		m.refill(ctx, i)
		if m.err != nil {
			return false
		}
	}
	// Pick the child whose head key is smallest (lowest index on ties).
	best := -1
	for i, h := range m.heads {
		if len(h) == 0 {
			continue
		}
		if best < 0 || bytes.Compare(h[0].Key, m.heads[best][0].Key) < 0 {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	// Emit the run of the best child's keys that precede every other head.
	var minOther []byte
	haveOther := false
	for i, h := range m.heads {
		if i == best || len(h) == 0 {
			continue
		}
		if !haveOther || bytes.Compare(h[0].Key, minOther) < 0 {
			minOther, haveOther = h[0].Key, true
		}
	}
	h := m.heads[best]
	run := len(h)
	if haveOther {
		run = sort.Search(len(h), func(i int) bool { return bytes.Compare(h[i].Key, minOther) >= 0 })
		if run == 0 {
			run = 1 // head ties another shard: emit it alone, lower index first
		}
	}
	m.batch = h[:run]
	m.heads[best] = h[run:]
	return true
}

// Batch implements BatchCursor.
func (m *MergedCursor) Batch() []mvcc.KV { return m.batch }

// Err implements BatchCursor.
func (m *MergedCursor) Err() error { return m.err }

// Close implements BatchCursor.
func (m *MergedCursor) Close() {
	for _, c := range m.children {
		c.Close()
	}
}

// ChainedCursor concatenates batch streams, draining each in turn — the
// legacy shard-order traversal (shard 0's keys, then shard 1's, ...).
// Prefetching children overlap across the chain too: while shard i drains,
// shard i+1's first pages are already traveling.
type ChainedCursor struct {
	children []BatchCursor
	i        int
	err      error
}

// ChainCursors concatenates cursors in the given order.
func ChainCursors(children ...BatchCursor) *ChainedCursor {
	return &ChainedCursor{children: children}
}

// NextBatch implements BatchCursor.
func (c *ChainedCursor) NextBatch(ctx context.Context) bool {
	if c.err != nil {
		return false
	}
	for c.i < len(c.children) {
		child := c.children[c.i]
		if child.NextBatch(ctx) {
			return true
		}
		if err := child.Err(); err != nil {
			c.err = err
			return false
		}
		c.i++
	}
	return false
}

// Batch implements BatchCursor.
func (c *ChainedCursor) Batch() []mvcc.KV {
	return c.children[c.i].Batch()
}

// Err implements BatchCursor.
func (c *ChainedCursor) Err() error { return c.err }

// Close implements BatchCursor.
func (c *ChainedCursor) Close() {
	for _, child := range c.children {
		child.Close()
	}
}

// AggMergeCursor coalesces runs of equal keys in an already key-ordered
// batch stream, combining their values with a caller-supplied merge
// function. This is the coordinator's CN-final half of aggregate pushdown:
// each shard returns per-group partial states keyed by a memcomparable
// group key, MergeCursors interleaves them in key order (equal groups
// adjacent), and this cursor merges the adjacent partials into one state
// per group. A group is emitted only once a strictly greater key (or end
// of stream) proves it complete, so groups spanning shard-batch boundaries
// are never split.
type AggMergeCursor struct {
	child        BatchCursor
	merge        func(a, b []byte) ([]byte, error)
	out          []mvcc.KV // reused output buffer; valid until next NextBatch
	pending      mvcc.KV
	havePending  bool
	pendingOwned bool // pending no longer aliases the child's batch
	done         bool
	err          error
}

// MergeAggregates wraps a key-ordered batch cursor of per-shard partial
// rows, yielding exactly one pair per distinct key with values combined by
// merge. A child error suppresses the group being assembled — a partial
// aggregate missing one shard's contribution would be silently wrong.
func MergeAggregates(child BatchCursor, merge func(a, b []byte) ([]byte, error)) *AggMergeCursor {
	return &AggMergeCursor{child: child, merge: merge}
}

// NextBatch implements BatchCursor.
func (m *AggMergeCursor) NextBatch(ctx context.Context) bool {
	if m.err != nil || m.done {
		return false
	}
	m.out = m.out[:0]
	for {
		// The group being assembled is about to outlive the child's
		// current batch (the refill below invalidates it), so take
		// ownership of its bytes first.
		if m.havePending && !m.pendingOwned {
			m.pending.Key = bytes.Clone(m.pending.Key)
			m.pending.Value = bytes.Clone(m.pending.Value)
			m.pendingOwned = true
		}
		if !m.child.NextBatch(ctx) {
			if err := m.child.Err(); err != nil {
				m.err = err
				return false
			}
			m.done = true
			if m.havePending {
				m.out = append(m.out, m.pending)
				m.havePending = false
			}
			return len(m.out) > 0
		}
		for _, kv := range m.child.Batch() {
			if m.havePending && bytes.Equal(kv.Key, m.pending.Key) {
				merged, err := m.merge(m.pending.Value, kv.Value)
				if err != nil {
					m.err = err
					return false
				}
				m.pending.Value = merged
				continue
			}
			if m.havePending {
				m.out = append(m.out, m.pending)
			}
			m.pending, m.havePending, m.pendingOwned = kv, true, false
		}
		// Groups closed within this child batch are ready; the last one
		// stays pending until a greater key or end of stream closes it.
		if len(m.out) > 0 {
			return true
		}
	}
}

// Batch implements BatchCursor.
func (m *AggMergeCursor) Batch() []mvcc.KV { return m.out }

// Err implements BatchCursor.
func (m *AggMergeCursor) Err() error { return m.err }

// Close implements BatchCursor.
func (m *AggMergeCursor) Close() { m.child.Close() }

// ScanRowsFetched reports the rows this CN has received in scan responses,
// one layer above the storage engines' own RowsScanned counters.
func (c *CN) ScanRowsFetched() int64 { return c.client.ScanRowsFetched() }
