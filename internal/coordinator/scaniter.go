package coordinator

import (
	"bytes"
	"context"
	"time"

	"globaldb/internal/datanode"
	"globaldb/internal/stats"
	"globaldb/internal/storage/mvcc"
)

// KVCursor is a pull-based iterator over key/value pairs. Implementations
// fetch lazily: no page is requested from a data node until Next demands it,
// which is what lets LIMIT-style consumers terminate a scan after O(pages)
// rather than O(table) work.
type KVCursor interface {
	// Next advances to the following pair, fetching a page if needed.
	Next(ctx context.Context) bool
	// KV returns the current pair (valid after a true Next).
	KV() mvcc.KV
	// Err returns the first error encountered, if any.
	Err() error
	// Close releases the cursor. It is safe to call multiple times.
	Close()
}

// fetchPage retrieves one page starting at start: it returns the pairs, the
// resume key, and whether the range may hold more. remaining is the total
// row budget still wanted (<= 0 means unlimited); page is the requested
// page size for this fetch (<= 0 lets the data node pick its default).
type fetchPage func(ctx context.Context, start []byte, remaining, page int) ([]mvcc.KV, []byte, bool, error)

// ScanCursor streams one shard's key range as pages pulled on demand.
//
// Pages grow adaptively: the first page uses the caller's hint (cheap
// time-to-first-row, little wasted prefetch when a LIMIT stops the scan),
// and each following page quadruples up to the data node's default so deep
// scans amortize WAN round trips.
type ScanCursor struct {
	fetch     fetchPage
	next      []byte
	remaining int // rows still wanted; < 0 means unlimited
	pageSize  int // current page size; <= 0 lets the node pick
	pageCap   int // growth ceiling
	buf       []mvcc.KV
	pos       int
	cur       mvcc.KV
	started   bool
	more      bool
	err       error
	closed    bool
}

func newScanCursor(start []byte, limit, pageSize int, fetch fetchPage) *ScanCursor {
	remaining := -1
	if limit > 0 {
		remaining = limit
	}
	cap := datanode.DefaultScanPageSize
	if pageSize > cap {
		cap = pageSize
	}
	return &ScanCursor{fetch: fetch, next: bytes.Clone(start), remaining: remaining,
		pageSize: pageSize, pageCap: cap}
}

// Next implements KVCursor.
func (c *ScanCursor) Next(ctx context.Context) bool {
	if c.closed || c.err != nil || c.remaining == 0 {
		return false
	}
	for c.pos >= len(c.buf) {
		if c.started && !c.more {
			return false
		}
		want := 0
		if c.remaining > 0 {
			want = c.remaining
		}
		kvs, next, more, err := c.fetch(ctx, c.next, want, c.pageSize)
		if err != nil {
			c.err = err
			return false
		}
		c.started = true
		c.buf, c.pos = kvs, 0
		c.next, c.more = next, more
		if c.pageSize > 0 && c.pageSize < c.pageCap {
			c.pageSize *= 4
			if c.pageSize > c.pageCap {
				c.pageSize = c.pageCap
			}
		}
	}
	c.cur = c.buf[c.pos]
	c.pos++
	if c.remaining > 0 {
		c.remaining--
	}
	return true
}

// KV implements KVCursor.
func (c *ScanCursor) KV() mvcc.KV { return c.cur }

// Err implements KVCursor.
func (c *ScanCursor) Err() error { return c.err }

// Close implements KVCursor.
func (c *ScanCursor) Close() { c.closed = true }

// ScanSpec describes one shard's paged scan: the key range, row budgets,
// an optional encoded execution fragment the data node evaluates locally
// (globaldb/gsql/fragment), and optional per-query counters fed by every
// page fetch.
type ScanSpec struct {
	// Start and End bound the key range, [Start, End).
	Start, End []byte
	// Limit caps the qualifying rows the cursor yields; <= 0 unlimited.
	Limit int
	// PageSize is the first page's row budget; <= 0 uses the node default.
	PageSize int
	// Frag is the encoded execution fragment shipped with every page
	// request; nil scans raw pairs.
	Frag []byte
	// Counters, when non-nil, accumulates per-fetch examined/shipped rows.
	Counters *stats.ScanCounters
}

// observePage feeds one fetched page into the spec's counters.
func (s ScanSpec) observePage(resp datanode.ScanPageResp) {
	if s.Counters != nil {
		s.Counters.Observe(resp.Examined, len(resp.KVs))
	}
}

// ScanCursor returns a lazy paged cursor over the spec's range on one
// shard's primary at the transaction's snapshot, observing the
// transaction's own writes. Any attached fragment runs on the data node
// before rows are shipped.
func (t *Txn) ScanCursor(shard int, spec ScanSpec) *ScanCursor {
	return newScanCursor(spec.Start, spec.Limit, spec.PageSize, func(ctx context.Context, from []byte, remaining, page int) ([]mvcc.KV, []byte, bool, error) {
		if t.done {
			return nil, nil, false, ErrTxnDone
		}
		t.cn.primaryReads.Add(1)
		if tr := t.cn.placement; tr != nil {
			tr.RecordRead(shard, t.cn.region)
		}
		resp, err := t.cn.client.ScanPageFrag(ctx, t.cn.routing.Primary(shard), from, spec.End, t.ts.Snap, remaining, page, spec.Frag, t.id)
		if err != nil {
			return nil, nil, false, err
		}
		spec.observePage(resp)
		return resp.KVs, resp.Next, resp.More, nil
	})
}

// ScanCursor returns a lazy paged cursor over the spec's range on one
// shard at the query's snapshot, served by the skyline-selected node with
// a per-page fallback to the primary when a replica fails mid-scan. Any
// attached fragment runs on whichever node serves the page — the fragment
// carries the snapshot-independent plan and the request carries the
// snapshot, so replica execution at the RCP is identical to primary
// execution.
func (r *ROTxn) ScanCursor(shard int, spec ScanSpec) *ScanCursor {
	return newScanCursor(spec.Start, spec.Limit, spec.PageSize, func(ctx context.Context, from []byte, remaining, page int) ([]mvcc.KV, []byte, bool, error) {
		node, replica, err := r.pick(shard)
		if err != nil {
			return nil, nil, false, err
		}
		t0 := time.Now()
		resp, err := r.cn.client.ScanPageFrag(ctx, node, from, spec.End, r.snap, remaining, page, spec.Frag, 0)
		r.observe(node, replica, t0, err)
		if err != nil && replica {
			r.cn.primaryReads.Add(1)
			resp, err = r.cn.client.ScanPageFrag(ctx, r.cn.routing.Primary(shard), from, spec.End, r.snap, remaining, page, spec.Frag, 0)
		}
		if err != nil {
			return nil, nil, false, err
		}
		spec.observePage(resp)
		return resp.KVs, resp.Next, resp.More, nil
	})
}

// MergedCursor merges several cursors into one stream in ascending key
// order — the cross-shard merge that turns per-shard paged scans into a
// single table-wide scan in primary-key order.
type MergedCursor struct {
	children []KVCursor
	heads    []mvcc.KV
	alive    []bool
	inited   bool
	cur      mvcc.KV
	err      error
}

// MergeCursors combines cursors in ascending key order. The inputs must
// each yield keys in ascending order (as ScanCursor does).
func MergeCursors(children ...KVCursor) *MergedCursor {
	return &MergedCursor{
		children: children,
		heads:    make([]mvcc.KV, len(children)),
		alive:    make([]bool, len(children)),
	}
}

func (m *MergedCursor) advance(ctx context.Context, i int) bool {
	m.alive[i] = m.children[i].Next(ctx)
	if m.alive[i] {
		m.heads[i] = m.children[i].KV()
		return true
	}
	if err := m.children[i].Err(); err != nil && m.err == nil {
		m.err = err
	}
	return false
}

// Next implements KVCursor.
func (m *MergedCursor) Next(ctx context.Context) bool {
	if m.err != nil {
		return false
	}
	if !m.inited {
		m.inited = true
		for i := range m.children {
			m.advance(ctx, i)
			if m.err != nil {
				return false
			}
		}
	}
	best := -1
	for i, ok := range m.alive {
		if !ok {
			continue
		}
		if best < 0 || bytes.Compare(m.heads[i].Key, m.heads[best].Key) < 0 {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	m.cur = m.heads[best]
	// Pre-fetch that child's next head; if it errors, the current pair is
	// still valid and the error surfaces on the following Next.
	m.advance(ctx, best)
	return true
}

// KV implements KVCursor.
func (m *MergedCursor) KV() mvcc.KV { return m.cur }

// Err implements KVCursor.
func (m *MergedCursor) Err() error { return m.err }

// Close implements KVCursor.
func (m *MergedCursor) Close() {
	for _, c := range m.children {
		c.Close()
	}
}

// ChainedCursor concatenates cursors, draining each in turn — the legacy
// shard-order traversal (shard 0's keys, then shard 1's, ...).
type ChainedCursor struct {
	children []KVCursor
	i        int
	cur      mvcc.KV
	err      error
}

// ChainCursors concatenates cursors in the given order.
func ChainCursors(children ...KVCursor) *ChainedCursor {
	return &ChainedCursor{children: children}
}

// Next implements KVCursor.
func (c *ChainedCursor) Next(ctx context.Context) bool {
	if c.err != nil {
		return false
	}
	for c.i < len(c.children) {
		child := c.children[c.i]
		if child.Next(ctx) {
			c.cur = child.KV()
			return true
		}
		if err := child.Err(); err != nil {
			c.err = err
			return false
		}
		c.i++
	}
	return false
}

// KV implements KVCursor.
func (c *ChainedCursor) KV() mvcc.KV { return c.cur }

// Err implements KVCursor.
func (c *ChainedCursor) Err() error { return c.err }

// Close implements KVCursor.
func (c *ChainedCursor) Close() {
	for _, child := range c.children {
		child.Close()
	}
}

// AggMergeCursor coalesces runs of equal keys in an already key-ordered
// stream, combining their values with a caller-supplied merge function.
// This is the coordinator's CN-final half of aggregate pushdown: each
// shard returns per-group partial states keyed by a memcomparable group
// key, MergeCursors interleaves them in key order (equal groups adjacent),
// and this cursor merges the adjacent partials into one state per group.
type AggMergeCursor struct {
	child       KVCursor
	merge       func(a, b []byte) ([]byte, error)
	cur         mvcc.KV
	pending     mvcc.KV
	havePending bool
	err         error
}

// MergeAggregates wraps a key-ordered cursor of per-shard partial rows,
// yielding exactly one pair per distinct key with values combined by
// merge. A child error suppresses the group being assembled — a partial
// aggregate missing one shard's contribution would be silently wrong.
func MergeAggregates(child KVCursor, merge func(a, b []byte) ([]byte, error)) *AggMergeCursor {
	return &AggMergeCursor{child: child, merge: merge}
}

// Next implements KVCursor.
func (m *AggMergeCursor) Next(ctx context.Context) bool {
	if m.err != nil {
		return false
	}
	var cur mvcc.KV
	if m.havePending {
		cur, m.havePending = m.pending, false
	} else {
		if !m.child.Next(ctx) {
			m.err = m.child.Err()
			return false
		}
		cur = m.child.KV()
	}
	for m.child.Next(ctx) {
		kv := m.child.KV()
		if !bytes.Equal(kv.Key, cur.Key) {
			m.pending, m.havePending = kv, true
			break
		}
		merged, err := m.merge(cur.Value, kv.Value)
		if err != nil {
			m.err = err
			return false
		}
		cur.Value = merged
	}
	if err := m.child.Err(); err != nil {
		m.err = err
		return false
	}
	m.cur = cur
	return true
}

// KV implements KVCursor.
func (m *AggMergeCursor) KV() mvcc.KV { return m.cur }

// Err implements KVCursor.
func (m *AggMergeCursor) Err() error { return m.err }

// Close implements KVCursor.
func (m *AggMergeCursor) Close() { m.child.Close() }

// ScanRowsFetched reports the rows this CN has received in scan responses,
// one layer above the storage engines' own RowsScanned counters.
func (c *CN) ScanRowsFetched() int64 { return c.client.ScanRowsFetched() }
