package coordinator

import (
	"context"
	"time"

	"globaldb/internal/storage/mvcc"
	"globaldb/internal/ts"
)

// AnyStaleness disables the freshness bound: the query accepts whatever the
// RCP currently offers.
const AnyStaleness = time.Duration(-1)

// ROTxn is a read-only query context. Reads are served from replicas at the
// RCP snapshot when the staleness bound and the DDL gate allow it, and fall
// back to primaries at a fresh snapshot otherwise (Sec. IV).
type ROTxn struct {
	cn    *CN
	snap  ts.Timestamp
	bound time.Duration
	// replicaMode is decided once at creation so every read in the query
	// sees one snapshot on one class of nodes (no torn mixed reads).
	replicaMode bool
}

// ReadOnly starts a read-only query with a staleness bound. tableIDs are
// the tables the query will touch, for the DDL visibility gate; pass none
// to gate on the global maximum DDL timestamp only.
func (c *CN) ReadOnly(ctx context.Context, bound time.Duration, tableIDs ...uint64) (*ROTxn, error) {
	rcpTS := c.Collector().RCP()
	replicaMode := true

	// DDL gate (Sec. IV-A): every involved table's schema must have
	// reached the replicas.
	if !c.catalog.RORAllowed(rcpTS, tableIDs...) {
		replicaMode = false
		c.rorFallbacks.Add(1)
	}
	// Freshness gate: the RCP itself must satisfy the bound.
	if replicaMode && bound >= 0 && c.rcpStaleness(rcpTS) > bound {
		replicaMode = false
		c.rorFallbacks.Add(1)
	}

	if replicaMode {
		c.maybeRefreshTracker()
		return &ROTxn{cn: c, snap: rcpTS, bound: bound, replicaMode: true}, nil
	}
	// Fresh snapshot on primaries: the single-shard fast path
	// (SnapshotNoWait) applies under GClock; centralized modes fetch from
	// the GTM server.
	snap := c.oracle.SnapshotNoWait()
	if snap.Snap == 0 {
		tt, err := c.oracle.Begin(ctx)
		if err != nil {
			return nil, err
		}
		snap = tt
	}
	return &ROTxn{cn: c, snap: snap.Snap, bound: bound}, nil
}

// Snapshot returns the query's snapshot timestamp.
func (r *ROTxn) Snapshot() ts.Timestamp { return r.snap }

// OnReplicas reports whether the query reads from replicas.
func (r *ROTxn) OnReplicas() bool { return r.replicaMode }

// Get reads one key.
func (r *ROTxn) Get(ctx context.Context, shard int, key []byte) ([]byte, bool, error) {
	node, replica, err := r.pick(shard)
	if err != nil {
		return nil, false, err
	}
	start := time.Now()
	v, found, err := r.cn.client.Read(ctx, node, key, r.snap, 0)
	r.observe(node, replica, start, err)
	if err != nil && replica {
		// One retry on the primary: the replica crashed mid-query.
		r.cn.primaryReads.Add(1)
		return r.cn.client.Read(ctx, r.cn.routing.Primary(shard), key, r.snap, 0)
	}
	return v, found, err
}

// Scan range-scans one shard.
func (r *ROTxn) Scan(ctx context.Context, shard int, start, end []byte, limit int) ([]mvcc.KV, error) {
	node, replica, err := r.pick(shard)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	kvs, err := r.cn.client.Scan(ctx, node, start, end, r.snap, limit, 0)
	r.observe(node, replica, t0, err)
	if err != nil && replica {
		r.cn.primaryReads.Add(1)
		return r.cn.client.Scan(ctx, r.cn.routing.Primary(shard), start, end, r.snap, limit, 0)
	}
	return kvs, err
}

// pick chooses the serving node for a shard.
func (r *ROTxn) pick(shard int) (node string, replica bool, err error) {
	if !r.replicaMode {
		return r.cn.routing.Primary(shard), false, nil
	}
	r.cn.maybeRefreshTracker()
	// Pure skyline cost selection (Fig. 5): the primary competes with the
	// replicas, so a home-shard read takes the local primary while a
	// remote-shard read takes the local replica — the routing that yields
	// the paper's read speedups.
	best, ok := r.cn.Tracker().Pick(shard, r.bound, false)
	if !ok {
		// Everything is dark; the primary is the last resort.
		return r.cn.routing.Primary(shard), false, nil
	}
	return best.Node, !best.Primary, nil
}

func (r *ROTxn) observe(node string, replica bool, start time.Time, err error) {
	rtt := time.Since(start)
	if replica {
		r.cn.replicaReads.Add(1)
	} else {
		r.cn.primaryReads.Add(1)
	}
	if err != nil {
		r.cn.Tracker().MarkFailed(node)
		return
	}
	r.cn.Tracker().ObserveLatency(node, rtt)
}

// rcpStaleness estimates how far the RCP lags real time. Under GClock the
// clock answers directly; under GTM the CN estimates from the rate at which
// timestamps have been growing (Sec. IV-B).
func (c *CN) rcpStaleness(rcpTS ts.Timestamp) time.Duration {
	if c.oracle.Mode() == ts.ModeGClock {
		now := c.oracle.Clock().Now().Clock
		if now <= rcpTS {
			return 0
		}
		return now.Sub(rcpTS)
	}
	return c.estimateCounterStaleness(rcpTS)
}

// estimateCounterStaleness converts a counter gap into time using the
// observed issue rate.
func (c *CN) estimateCounterStaleness(rcpTS ts.Timestamp) time.Duration {
	c.trackerMu.Lock()
	defer c.trackerMu.Unlock()
	maxSeen := c.lastMaxTS
	if rcpTS >= maxSeen {
		return 0
	}
	gap := float64(maxSeen - rcpTS)
	rate := c.gtmRate
	if rate <= 0 {
		rate = 1
	}
	return time.Duration(gap / rate * float64(time.Second))
}

// maybeRefreshTracker pulls fresh replica statuses from the collector into
// the ROR tracker, rate-limited to cfg.TrackerRefresh.
func (c *CN) maybeRefreshTracker() {
	c.trackerMu.Lock()
	if time.Since(c.lastRefresh) < c.cfg.TrackerRefresh {
		c.trackerMu.Unlock()
		return
	}
	c.lastRefresh = time.Now()
	prevMax, prevAt := c.lastMaxTS, c.lastMaxAt
	c.trackerMu.Unlock()

	statuses := c.Collector().Statuses()
	gclock := c.oracle.Mode() == ts.ModeGClock
	var now ts.Timestamp
	if gclock {
		now = c.oracle.Clock().Now().Clock
	}
	var maxSeen ts.Timestamp
	for _, st := range statuses {
		if st.MaxCommitTS > maxSeen {
			maxSeen = st.MaxCommitTS
		}
	}
	for _, st := range statuses {
		var staleness time.Duration
		switch {
		case st.Primary:
			// Primaries always serve fresh data.
		case gclock:
			if now > st.MaxCommitTS {
				staleness = now.Sub(st.MaxCommitTS)
			}
		default:
			staleness = c.counterGapToTime(maxSeen, st.MaxCommitTS, prevMax, prevAt)
		}
		c.Tracker().UpdateStatus(st.Node, staleness, st.Load, st.Healthy)
	}

	c.trackerMu.Lock()
	if maxSeen > c.lastMaxTS {
		// Update the GTM-mode issue-rate estimate.
		if !c.lastMaxAt.IsZero() {
			dt := time.Since(c.lastMaxAt).Seconds()
			if dt > 0 {
				inst := float64(maxSeen-c.lastMaxTS) / dt
				c.gtmRate = 0.7*c.gtmRate + 0.3*inst
			}
		}
		c.lastMaxTS = maxSeen
		c.lastMaxAt = time.Now()
	}
	c.trackerMu.Unlock()
}

func (c *CN) counterGapToTime(maxSeen, nodeTS, prevMax ts.Timestamp, prevAt time.Time) time.Duration {
	if nodeTS >= maxSeen {
		return 0
	}
	c.trackerMu.Lock()
	rate := c.gtmRate
	c.trackerMu.Unlock()
	if rate <= 0 {
		rate = 1
	}
	_ = prevMax
	_ = prevAt
	return time.Duration(float64(maxSeen-nodeTS) / rate * float64(time.Second))
}
