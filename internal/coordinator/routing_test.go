package coordinator

import (
	"sync"
	"testing"
)

func TestRoutingSetAndGet(t *testing.T) {
	r := NewRouting(3)
	if r.NumShards() != 3 {
		t.Fatalf("NumShards = %d", r.NumShards())
	}
	r.SetPrimary(0, "dn0")
	r.SetPrimary(1, "dn1")
	r.AddReplica(0, "dn0r0")
	r.AddReplica(0, "dn0r1")
	if r.Primary(0) != "dn0" || r.Primary(1) != "dn1" || r.Primary(2) != "" {
		t.Fatalf("primaries: %q %q %q", r.Primary(0), r.Primary(1), r.Primary(2))
	}
	reps := r.Replicas(0)
	if len(reps) != 2 || reps[0] != "dn0r0" || reps[1] != "dn0r1" {
		t.Fatalf("replicas: %v", reps)
	}
	if len(r.Replicas(1)) != 0 {
		t.Fatal("shard 1 must have no replicas")
	}
}

func TestRoutingReplicasReturnsCopy(t *testing.T) {
	r := NewRouting(1)
	r.AddReplica(0, "a")
	got := r.Replicas(0)
	got[0] = "mutated"
	if r.Replicas(0)[0] != "a" {
		t.Fatal("Replicas must return a copy")
	}
}

func TestRoutingReset(t *testing.T) {
	r := NewRouting(2)
	r.SetPrimary(0, "old0")
	r.AddReplica(0, "old0r")
	r.Reset([]string{"new0", "new1"}, [][]string{{"new0r"}, nil})
	if r.Primary(0) != "new0" || r.Primary(1) != "new1" {
		t.Fatalf("after reset: %q %q", r.Primary(0), r.Primary(1))
	}
	if reps := r.Replicas(0); len(reps) != 1 || reps[0] != "new0r" {
		t.Fatalf("after reset replicas: %v", reps)
	}
}

func TestRoutingConcurrentAccess(t *testing.T) {
	// Failover re-wiring races reads in production; the table must stay
	// internally consistent under the race detector.
	r := NewRouting(4)
	for s := 0; s < 4; s++ {
		r.SetPrimary(s, "p")
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch w % 3 {
				case 0:
					r.SetPrimary(i%4, "p2")
				case 1:
					_ = r.Primary(i % 4)
				case 2:
					_ = r.Replicas(i % 4)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestStatsZeroValue(t *testing.T) {
	var s Stats
	if s.Commits != 0 || s.Aborts != 0 || s.ReplicaReads != 0 {
		t.Fatalf("zero stats: %+v", s)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TrackerRefresh <= 0 || cfg.GTMRatePerSec <= 0 {
		t.Fatalf("defaults: %+v", cfg)
	}
}
