// Package coordinator implements GlobalDB's computing node (CN): the
// stateless front end that begins and commits transactions, routes reads
// and writes to shard primaries, coordinates two-phase commit across
// shards, and serves read-only queries from asynchronous replicas at the
// RCP snapshot with skyline node selection (Secs. II-A, III, IV).
package coordinator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"globaldb/internal/datanode"
	"globaldb/internal/obs"
	"globaldb/internal/placement"
	"globaldb/internal/rcp"
	"globaldb/internal/ror"
	"globaldb/internal/stats"
	"globaldb/internal/storage/mvcc"
	"globaldb/internal/table"
	"globaldb/internal/ts"
	"globaldb/internal/tso"
)

// Commit-path instruments (names in internal/stats).
var (
	metricCommitLatency  = obs.Default.Histogram(stats.MetricCommitLatency)
	metricPrepareLatency = obs.Default.Histogram(stats.MetricPrepareLatency)
	metricDecideLatency  = obs.Default.Histogram(stats.MetricDecideLatency)
	metricAsyncResolves  = obs.Default.Counter(stats.MetricAsyncResolves)
	metricResolveFails   = obs.Default.Counter(stats.MetricResolveFailures)
)

// Errors.
var (
	// ErrTxnDone means the transaction already committed or aborted.
	ErrTxnDone = errors.New("coordinator: transaction already finished")
	// ErrNoReplica means no node qualified to serve a replica read.
	ErrNoReplica = errors.New("coordinator: no node qualifies for replica read")
)

// Routing maps shards to node endpoints. It is shared by every CN and
// mutable for failover.
type Routing struct {
	mu        sync.RWMutex
	primaries []string
	replicas  [][]string
}

// NewRouting builds routing for numShards shards.
func NewRouting(numShards int) *Routing {
	return &Routing{primaries: make([]string, numShards), replicas: make([][]string, numShards)}
}

// NumShards returns the shard count.
func (r *Routing) NumShards() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.primaries)
}

// SetPrimary installs the primary endpoint for a shard (also used by
// failover promotion).
func (r *Routing) SetPrimary(shard int, node string) {
	r.mu.Lock()
	r.primaries[shard] = node
	r.mu.Unlock()
}

// AddReplica registers a replica endpoint for a shard.
func (r *Routing) AddReplica(shard int, node string) {
	r.mu.Lock()
	r.replicas[shard] = append(r.replicas[shard], node)
	r.mu.Unlock()
}

// Reset atomically replaces the whole routing table (failover re-wiring).
func (r *Routing) Reset(primaries []string, replicas [][]string) {
	r.mu.Lock()
	r.primaries = primaries
	r.replicas = replicas
	r.mu.Unlock()
}

// Primary returns the shard's primary endpoint.
func (r *Routing) Primary(shard int) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.primaries[shard]
}

// Replicas returns the shard's replica endpoints.
func (r *Routing) Replicas(shard int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.replicas[shard]))
	copy(out, r.replicas[shard])
	return out
}

// Stats counts CN-level outcomes.
type Stats struct {
	Commits      int64
	Aborts       int64
	ReplicaReads int64
	PrimaryReads int64
	RORFallbacks int64
}

// Config tunes a CN.
type Config struct {
	// TrackerRefresh is how often ROR metrics are refreshed from the
	// collector's statuses.
	TrackerRefresh time.Duration
	// GTMRatePerSec estimates timestamp growth for staleness estimation in
	// GTM mode (Sec. IV-B); measured dynamically once traffic flows.
	GTMRatePerSec float64
}

// DefaultConfig returns CN defaults.
func DefaultConfig() Config {
	return Config{TrackerRefresh: 2 * time.Millisecond, GTMRatePerSec: 10000}
}

// CN is one computing node.
type CN struct {
	cfg     Config
	name    string
	region  string
	cnID    uint64
	client  *datanode.Client
	oracle  *tso.Oracle
	routing *Routing
	catalog *table.Catalog

	depMu   sync.RWMutex // guards col and tracker, swappable on failover
	col     *rcp.Collector
	tracker *ror.Tracker

	txnSeq atomic.Uint64

	trackerMu   sync.Mutex
	lastRefresh time.Time
	lastMaxTS   ts.Timestamp // for GTM-mode staleness rate estimation
	lastMaxAt   time.Time
	gtmRate     float64 // timestamps per second

	commits      atomic.Int64
	aborts       atomic.Int64
	replicaReads atomic.Int64
	primaryReads atomic.Int64
	rorFallbacks atomic.Int64

	// Background 2PC resolution (pipelined phase two). resolveWG tracks
	// in-flight resolutions so Quiesce can drain them; resolveDrop is a
	// test hook simulating coordinator death between decision and
	// resolution.
	resolveWG    sync.WaitGroup
	dropMu       sync.Mutex
	resolveDrop  func(txn uint64) bool
	resolveFails atomic.Int64

	// placement, when set, accumulates per-shard geographic access counts
	// for the load-balancing advisor (the paper's future-work feature).
	placement *placement.Tracker
}

// New creates a CN. cnID must be unique across CNs (it namespaces
// transaction IDs). The RCP collector and ROR tracker are installed
// afterwards with SetCollector and SetTracker once the cluster topology is
// known.
func New(cfg Config, name, region string, cnID uint64, client *datanode.Client, oracle *tso.Oracle,
	routing *Routing, catalog *table.Catalog) *CN {
	if cfg.TrackerRefresh <= 0 {
		cfg.TrackerRefresh = 2 * time.Millisecond
	}
	if cfg.GTMRatePerSec <= 0 {
		cfg.GTMRatePerSec = 10000
	}
	return &CN{
		cfg: cfg, name: name, region: region, cnID: cnID,
		client: client, oracle: oracle, routing: routing,
		tracker: ror.NewTracker(), catalog: catalog,
		gtmRate: cfg.GTMRatePerSec,
	}
}

// Name returns the CN's name.
func (c *CN) Name() string { return c.name }

// Region returns the CN's region.
func (c *CN) Region() string { return c.region }

// Oracle exposes the timestamp oracle (transitions, tests).
func (c *CN) Oracle() *tso.Oracle { return c.oracle }

// Catalog exposes the CN's catalog.
func (c *CN) Catalog() *table.Catalog { return c.catalog }

// Routing exposes the shared routing table.
func (c *CN) Routing() *Routing { return c.routing }

// Tracker exposes the ROR tracker (tests, observability).
func (c *CN) Tracker() *ror.Tracker {
	c.depMu.RLock()
	defer c.depMu.RUnlock()
	return c.tracker
}

// SetTracker replaces the ROR tracker (failover re-wiring).
func (c *CN) SetTracker(t *ror.Tracker) {
	c.depMu.Lock()
	c.tracker = t
	c.depMu.Unlock()
}

// Collector returns the RCP collector in use.
func (c *CN) Collector() *rcp.Collector {
	c.depMu.RLock()
	defer c.depMu.RUnlock()
	return c.col
}

// SetCollector installs the RCP collector (set once at cluster start, and
// replaced when the designated collector CN fails over).
func (c *CN) SetCollector(col *rcp.Collector) {
	c.depMu.Lock()
	c.col = col
	c.depMu.Unlock()
}

// SetPlacementTracker installs the shared geographic access tracker.
func (c *CN) SetPlacementTracker(tr *placement.Tracker) { c.placement = tr }

// Stats returns a snapshot of the CN's counters.
func (c *CN) Stats() Stats {
	return Stats{
		Commits:      c.commits.Load(),
		Aborts:       c.aborts.Load(),
		ReplicaReads: c.replicaReads.Load(),
		PrimaryReads: c.primaryReads.Load(),
		RORFallbacks: c.rorFallbacks.Load(),
	}
}

// Quiesce waits for every background 2PC resolution this CN started to
// finish. Call before tearing the cluster down.
func (c *CN) Quiesce() { c.resolveWG.Wait() }

// ResolveFailures reports background resolutions that exhausted retries.
func (c *CN) ResolveFailures() int64 { return c.resolveFails.Load() }

// SetResolveDropHook installs a test hook: when it returns true for a
// transaction, the background phase-two resolution is abandoned,
// simulating the coordinator dying between decision durability and
// resolution. Participants stay prepared until ResolveInDoubt runs.
func (c *CN) SetResolveDropHook(fn func(txn uint64) bool) {
	c.dropMu.Lock()
	c.resolveDrop = fn
	c.dropMu.Unlock()
}

func (c *CN) dropResolve(txn uint64) bool {
	c.dropMu.Lock()
	fn := c.resolveDrop
	c.dropMu.Unlock()
	return fn != nil && fn(txn)
}

// Begin starts a read-write transaction.
func (c *CN) Begin(ctx context.Context) (*Txn, error) {
	tt, err := c.oracle.Begin(ctx)
	if err != nil {
		return nil, err
	}
	id := c.cnID<<40 | c.txnSeq.Add(1)
	return &Txn{cn: c, id: id, ts: tt, touched: make(map[int]bool)}, nil
}

// Txn is a read-write transaction coordinated by one CN.
type Txn struct {
	cn      *CN
	id      uint64
	ts      tso.TxnTS
	touched map[int]bool
	// done flips once at Commit/Abort. It is atomic because scan-cursor
	// prefetch goroutines check it while issuing page RPCs in the
	// background; an in-flight prefetch racing a commit observes either
	// state safely and at worst gets ErrTxnDone on its next page.
	done     atomic.Bool
	sync     bool // wait for replica acknowledgement at commit
	commitTS ts.Timestamp
}

// CommitTS returns the transaction's commit timestamp, or zero before a
// successful Commit (read-only transactions never acquire one).
func (t *Txn) CommitTS() ts.Timestamp { return t.commitTS }

// RequireSyncCommit marks the transaction as writing a synchronously
// replicated table: its commit waits for replica acknowledgement even under
// asynchronous cluster replication.
func (t *Txn) RequireSyncCommit() { t.sync = true }

// ID returns the cluster-wide transaction ID.
func (t *Txn) ID() uint64 { return t.id }

// Snapshot returns the transaction's snapshot timestamp.
func (t *Txn) Snapshot() ts.Timestamp { return t.ts.Snap }

// WriteBatch stages a batch of mutations on one shard.
func (t *Txn) WriteBatch(ctx context.Context, shard int, ops []datanode.WriteOp) error {
	if t.done.Load() {
		return ErrTxnDone
	}
	node := t.cn.routing.Primary(shard)
	if err := t.cn.client.Write(ctx, node, t.id, t.ts.Snap, ops); err != nil {
		return err
	}
	t.touched[shard] = true
	if tr := t.cn.placement; tr != nil {
		tr.RecordWrite(shard, t.cn.region)
	}
	return nil
}

// Put stages one write.
func (t *Txn) Put(ctx context.Context, shard int, key, value []byte) error {
	return t.WriteBatch(ctx, shard, []datanode.WriteOp{{Key: key, Value: value}})
}

// Delete stages one deletion.
func (t *Txn) Delete(ctx context.Context, shard int, key []byte) error {
	return t.WriteBatch(ctx, shard, []datanode.WriteOp{{Delete: true, Key: key}})
}

// Get reads a key from the shard primary at the transaction's snapshot,
// observing the transaction's own writes.
func (t *Txn) Get(ctx context.Context, shard int, key []byte) ([]byte, bool, error) {
	if t.done.Load() {
		return nil, false, ErrTxnDone
	}
	t.cn.primaryReads.Add(1)
	if tr := t.cn.placement; tr != nil {
		tr.RecordRead(shard, t.cn.region)
	}
	return t.cn.client.Read(ctx, t.cn.routing.Primary(shard), key, t.ts.Snap, t.id)
}

// Scan range-scans a shard primary at the transaction's snapshot.
func (t *Txn) Scan(ctx context.Context, shard int, start, end []byte, limit int) ([]mvcc.KV, error) {
	if t.done.Load() {
		return nil, ErrTxnDone
	}
	t.cn.primaryReads.Add(1)
	if tr := t.cn.placement; tr != nil {
		tr.RecordRead(shard, t.cn.region)
	}
	return t.cn.client.Scan(ctx, t.cn.routing.Primary(shard), start, end, t.ts.Snap, limit, t.id)
}

// Commit finishes the transaction: the single-shard fast path writes
// PENDING COMMIT then COMMIT; the multi-shard path runs two-phase commit.
// The commit wait completes before Commit returns (external consistency).
func (t *Txn) Commit(ctx context.Context) error {
	if !t.done.CompareAndSwap(false, true) {
		return ErrTxnDone
	}
	shards := t.shards()
	if len(shards) == 0 {
		return nil // read-only: nothing to resolve
	}

	sp := obs.SpanFrom(ctx).Child("commit")
	defer sp.End()
	tCommit := time.Now()
	defer func() { metricCommitLatency.Observe(time.Since(tCommit)) }()

	if len(shards) == 1 {
		shard := shards[0]
		node := t.cn.routing.Primary(shard)
		sp.Tag("shard=%d node=%s", shard, node)
		// PENDING COMMIT precedes the commit-timestamp fetch (Sec. IV-A).
		if err := t.cn.client.Pending(ctx, node, t.id); err != nil {
			t.abortShards(shards)
			return err
		}
		commitTS, finish, err := t.cn.oracle.Commit(ctx, t.ts.Mode)
		if err != nil {
			t.abortShards(shards)
			return err
		}
		if err := t.cn.client.Commit(ctx, node, t.id, commitTS, t.sync); err != nil {
			// The commit record was not applied (or the apply raced a
			// cancellation); the transaction must not stay pending forever.
			t.abortShards(shards)
			return fmt.Errorf("coordinator: commit apply: %w", err)
		}
		if err := finish(ctx); err != nil {
			return err
		}
		t.commitTS = commitTS
		t.cn.commits.Add(1)
		return nil
	}

	// Two-phase commit, pipelined. The lowest-numbered shard's primary is
	// the transaction's anchor: every prepare record names it, and the
	// client ack gates only on the anchor's commit being durable (decision
	// durability). The remaining participants resolve in the background —
	// safe because prepared tuples block readers until resolution arrives,
	// and a crashed resolver is replaced by ResolveInDoubt asking the
	// anchor for the durable outcome.
	sort.Ints(shards)
	anchor := t.cn.routing.Primary(shards[0])
	sp.Tag("2pc shards=%d anchor=%s", len(shards), anchor)
	prep := sp.Child("2pc-prepare")
	tPrep := time.Now()
	err := t.forEachShard(ctx, shards, func(ctx context.Context, node string) error {
		return t.cn.client.Prepare(ctx, node, t.id, anchor)
	})
	metricPrepareLatency.Observe(time.Since(tPrep))
	prep.End()
	if err != nil {
		t.abortPrepared(shards)
		return fmt.Errorf("coordinator: prepare: %w", err)
	}
	// The commit-timestamp fetch must follow every PENDING/prepare record
	// (Sec. IV-A), so it cannot overlap phase one.
	commitTS, finish, err := t.cn.oracle.Commit(ctx, t.ts.Mode)
	if err != nil {
		t.abortPrepared(shards)
		return err
	}
	// Decision durability: commit the anchor synchronously. Its ack means
	// the decision survives any crash — recovery finds it in the anchor's
	// WAL, and presumed abort covers every txn without one.
	dec := sp.Child("2pc-decide")
	tDec := time.Now()
	err = t.resolvePrepared(shards[:1], commitTS)
	metricDecideLatency.Observe(time.Since(tDec))
	dec.End()
	if err != nil {
		return fmt.Errorf("coordinator: commit decision: %w", err)
	}
	rest := shards[1:]
	if t.sync {
		// Per-table synchronous replication keeps phase two synchronous:
		// the caller asked for replica acknowledgement before the ack.
		res := sp.Child("2pc-commit")
		err = t.resolvePrepared(rest, commitTS)
		res.End()
		if err != nil {
			return fmt.Errorf("coordinator: commit prepared: %w", err)
		}
	} else if len(rest) > 0 {
		metricAsyncResolves.Inc()
		t.cn.resolveWG.Add(1)
		go func() {
			defer t.cn.resolveWG.Done()
			if t.cn.dropResolve(t.id) {
				return // chaos hook: simulate coordinator death here
			}
			if err := t.resolvePrepared(rest, commitTS); err != nil {
				t.cn.resolveFails.Add(1)
				metricResolveFails.Inc()
			}
		}()
	}
	if err := finish(ctx); err != nil {
		return err
	}
	t.commitTS = commitTS
	t.cn.commits.Add(1)
	return nil
}

// resolvePrepared drives 2PC phase two to completion with bounded retries.
func (t *Txn) resolvePrepared(shards []int, commitTS ts.Timestamp) error {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		cctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		lastErr = t.forEachShard(cctx, shards, func(ctx context.Context, node string) error {
			err := t.cn.client.CommitPrepared(ctx, node, t.id, commitTS, t.sync)
			if errors.Is(err, mvcc.ErrTxnNotFound) {
				return nil // already resolved by an earlier attempt
			}
			return err
		})
		cancel()
		if lastErr == nil {
			return nil
		}
		time.Sleep(time.Duration(attempt+1) * time.Millisecond)
	}
	return lastErr
}

// Abort rolls back the transaction on every touched shard.
func (t *Txn) Abort(ctx context.Context) error {
	if !t.done.CompareAndSwap(false, true) {
		return ErrTxnDone
	}
	t.abortShards(t.shards())
	t.cn.aborts.Add(1)
	return nil
}

func (t *Txn) shards() []int {
	out := make([]int, 0, len(t.touched))
	for s := range t.touched {
		out = append(out, s)
	}
	return out
}

func (t *Txn) forEachShard(ctx context.Context, shards []int, fn func(context.Context, string) error) error {
	return fanOut(len(shards), func(i int) error {
		return fn(ctx, t.cn.routing.Primary(shards[i]))
	})
}

// fanOut runs fn(0..n-1) concurrently and joins the errors — the
// coordinator's fan-out primitive for "touch all shards" rounds (2PC
// prepare/commit/abort), so they cost one round trip instead of K serial
// ones. Scans reach the same shape differently: their per-shard
// concurrency lives in the cursors' long-lived prefetch goroutines.
func fanOut(n int, fn func(i int) error) error {
	if n == 1 {
		return fn(0) // skip the goroutine for the single-shard fast path
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// abortShards rolls back on a cleanup context so a canceled caller cannot
// leave intents behind to block future readers and writers.
func (t *Txn) abortShards(shards []int) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = t.forEachShard(ctx, shards, func(ctx context.Context, node string) error {
		return t.cn.client.Abort(ctx, node, t.id)
	})
	t.cn.aborts.Add(1)
}

// ResolveInDoubt drives every in-doubt (prepared-but-unresolved) 2PC
// transaction on the given primaries to an outcome — the recovery path
// after a coordinator died between decision durability and background
// resolution. Each prepare record names its anchor; the anchor's durable
// decision (commit with its timestamp, or abort) is replayed onto the
// stuck participant. When the anchor holds no decision the transaction is
// presumed aborted: the client ack gates on the anchor's commit, so no
// decision durable at the anchor means no client was ever acked.
func ResolveInDoubt(ctx context.Context, client *datanode.Client, primaries []string) (committed, aborted int, err error) {
	for _, node := range primaries {
		txns, err := client.InDoubt(ctx, node)
		if err != nil {
			return committed, aborted, err
		}
		for _, it := range txns {
			var st datanode.TxnStatusResp
			if it.Anchor != "" {
				if st, err = client.TxnStatus(ctx, it.Anchor, it.Txn); err != nil {
					return committed, aborted, err
				}
			}
			var rerr error
			if st.Known && st.Committed {
				rerr = client.CommitPrepared(ctx, node, it.Txn, st.TS, false)
				committed++
			} else {
				rerr = client.AbortPrepared(ctx, node, it.Txn)
				aborted++
			}
			if rerr != nil && !errors.Is(rerr, mvcc.ErrTxnNotFound) {
				return committed, aborted, rerr
			}
		}
	}
	return committed, aborted, nil
}

func (t *Txn) abortPrepared(shards []int) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = t.forEachShard(ctx, shards, func(ctx context.Context, node string) error {
		return t.cn.client.AbortPrepared(ctx, node, t.id)
	})
	t.cn.aborts.Add(1)
}
