// Package cluster assembles a complete GlobalDB deployment in-process:
// regions connected by a simulated WAN, a GTM server, per-region computing
// nodes with synchronized clocks, sharded primaries with replica sets, redo
// shipping, the RCP collector, heartbeats, and the online transition
// controller. It is the programmatic equivalent of the paper's One-Region
// and Three-City testbeds (Sec. V).
package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"path/filepath"
	"sync"
	"time"

	"globaldb/internal/clock"
	"globaldb/internal/coordinator"
	"globaldb/internal/datanode"
	"globaldb/internal/gtm"
	"globaldb/internal/keys"
	"globaldb/internal/netsim"
	"globaldb/internal/placement"
	"globaldb/internal/rcp"
	"globaldb/internal/repl"
	"globaldb/internal/ror"
	"globaldb/internal/table"
	"globaldb/internal/transition"
	"globaldb/internal/ts"
	"globaldb/internal/tso"
	"globaldb/internal/wal"
)

// LinkSpec declares a WAN link between two regions.
type LinkSpec struct {
	A, B string
	// RTT is the round-trip latency.
	RTT time.Duration
	// Bandwidth in bytes/second; 0 means unlimited.
	Bandwidth float64
}

// Config describes a deployment.
type Config struct {
	// Regions lists region names; one CN is created per region.
	Regions []string
	// Links declares inter-region connectivity.
	Links []LinkSpec
	// TimeScale shrinks simulated delays (netsim.Config).
	TimeScale float64
	// JitterFrac adds latency jitter.
	JitterFrac float64

	// Shards is the number of data shards.
	Shards int
	// ReplicasPerShard places this many replicas per shard, round-robin
	// over the regions other than the primary's.
	ReplicasPerShard int
	// ReplMode selects async or sync-quorum replication.
	ReplMode repl.Mode
	// Quorum is the sync-quorum size.
	Quorum int
	// Shipper tunes log shipping (compression, flush delay).
	Shipper repl.ShipperConfig

	// GTMRegion hosts the GTM server; defaults to Regions[0].
	GTMRegion string
	// Mode is the starting transaction management mode.
	Mode ts.Mode
	// Clock configures node clocks.
	Clock clock.NodeConfig
	// RCP configures the collector.
	RCP rcp.Config
	// CN configures computing nodes.
	CN coordinator.Config

	// WALDir, when non-empty, makes every shard primary archive its redo
	// stream to an on-disk WAL under <WALDir>/shard-<n> (GaussDB's XLOG
	// durability), and commit acks then wait for WAL durability. Recovery
	// tooling replays it with datanode.RecoverPrimary.
	WALDir string
	// WALSync selects the WAL fsync policy (default wal.SyncGroup via
	// baseConfig: concurrent commits coalesce into one fsync).
	WALSync wal.SyncPolicy
	// WALLinger / WALFsyncDelay / WALArchiveBatch tune group commit: the
	// coalescing window, a simulated device-sync latency (tmpfs hides the
	// real cost), and the archiver's records-per-append cap (1 = the
	// fsync-per-commit baseline). Zero values use the wal defaults.
	WALLinger       time.Duration
	WALFsyncDelay   time.Duration
	WALArchiveBatch int
}

// ThreeCity returns the paper's geo-distributed topology: Xi'an, Langzhong
// and Dongguan with 25/35/55 ms RTT edges.
func ThreeCity() Config {
	cfg := baseConfig()
	cfg.Regions = []string{"xian", "langzhong", "dongguan"}
	cfg.Links = []LinkSpec{
		{A: "xian", B: "langzhong", RTT: 25 * time.Millisecond},
		{A: "langzhong", B: "dongguan", RTT: 35 * time.Millisecond},
		{A: "xian", B: "dongguan", RTT: 55 * time.Millisecond},
	}
	cfg.GTMRegion = "langzhong" // lowest mean latency to the others (Sec. V-A)
	return cfg
}

// OneRegion returns the paper's single-datacenter cluster with tc-style
// injected delay between its three servers.
func OneRegion(injectedRTT time.Duration) Config {
	cfg := baseConfig()
	cfg.Regions = []string{"node1", "node2", "node3"}
	cfg.Links = []LinkSpec{
		{A: "node1", B: "node2", RTT: injectedRTT},
		{A: "node2", B: "node3", RTT: injectedRTT},
		{A: "node1", B: "node3", RTT: injectedRTT},
	}
	cfg.GTMRegion = "node1"
	return cfg
}

func baseConfig() Config {
	return Config{
		TimeScale:        0.1,
		Shards:           6,
		ReplicasPerShard: 2,
		ReplMode:         repl.Async,
		Quorum:           1,
		Shipper:          repl.DefaultShipperConfig(),
		Mode:             ts.ModeGClock,
		Clock:            clock.DefaultNodeConfig(),
		RCP:              rcp.DefaultConfig(),
		CN:               coordinator.DefaultConfig(),
		WALSync:          wal.SyncGroup,
	}
}

// Cluster is a running deployment.
type Cluster struct {
	cfg Config

	Net        *netsim.Network
	GTMServer  *gtm.Server
	GTMService *gtm.Service
	Catalog    *table.Catalog
	Routing    *coordinator.Routing
	Collector  *rcp.Collector
	Controller *transition.Controller

	cns       map[string]*coordinator.CN
	oracles   []*tso.Oracle
	primaries []*datanode.Primary
	replicas  [][]*datanode.Replica

	// Placement accumulates per-shard geographic access counts from every
	// CN for the load-balancing advisor.
	Placement *placement.Tracker

	mu         sync.Mutex
	clockStops []func()
	devices    map[string]*clock.Device
	walClosers []io.Closer
	closed     bool
	gc         gcState
}

// Open builds and starts a cluster.
func Open(cfg Config) (*Cluster, error) {
	if len(cfg.Regions) == 0 {
		return nil, fmt.Errorf("cluster: no regions")
	}
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("cluster: no shards")
	}
	if cfg.GTMRegion == "" {
		cfg.GTMRegion = cfg.Regions[0]
	}
	c := &Cluster{
		cfg:       cfg,
		Net:       netsim.New(netsim.Config{TimeScale: cfg.TimeScale, JitterFrac: cfg.JitterFrac}),
		Catalog:   table.NewCatalog(),
		cns:       make(map[string]*coordinator.CN),
		devices:   make(map[string]*clock.Device),
		replicas:  make([][]*datanode.Replica, cfg.Shards),
		Placement: placement.NewTracker(),
	}
	for _, r := range cfg.Regions {
		c.Net.AddRegion(r)
	}
	for _, l := range cfg.Links {
		c.Net.SetLink(l.A, l.B, l.RTT, l.Bandwidth)
	}

	// GTM server.
	c.GTMServer = gtm.NewServer()
	c.GTMService = gtm.Serve(c.Net, cfg.GTMRegion, c.GTMServer)

	// Per-region time devices (the paper deploys one per regional cluster).
	for _, r := range cfg.Regions {
		c.devices[r] = clock.NewDevice(r, clock.Real())
	}

	// Shards: primary in region shard%len(regions), replicas round-robin
	// over the other regions.
	c.Routing = coordinator.NewRouting(cfg.Shards)
	topo := rcp.Topology{Primaries: map[int]string{}, Replicas: map[int][]string{}}
	for shard := 0; shard < cfg.Shards; shard++ {
		pRegion := cfg.Regions[shard%len(cfg.Regions)]
		p := datanode.NewPrimary(c.Net, fmt.Sprintf("dn%d", shard), pRegion, shard, cfg.ReplMode, cfg.Quorum)
		if cfg.WALDir != "" {
			closer, err := p.AttachWALOptions(wal.Options{
				Dir:        filepath.Join(cfg.WALDir, fmt.Sprintf("shard-%d", shard)),
				Sync:       cfg.WALSync,
				Linger:     cfg.WALLinger,
				FsyncDelay: cfg.WALFsyncDelay,
			}, cfg.WALArchiveBatch)
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d WAL: %w", shard, err)
			}
			c.walClosers = append(c.walClosers, closer)
		}
		c.primaries = append(c.primaries, p)
		c.Routing.SetPrimary(shard, p.ID())
		topo.Primaries[shard] = p.ID()

		others := otherRegions(cfg.Regions, pRegion)
		for i := 0; i < cfg.ReplicasPerShard; i++ {
			rRegion := pRegion
			if len(others) > 0 {
				rRegion = others[(shard+i)%len(others)]
			}
			rep := datanode.NewReplica(c.Net, fmt.Sprintf("dn%dr%d", shard, i), rRegion, shard)
			c.replicas[shard] = append(c.replicas[shard], rep)
			c.Routing.AddReplica(shard, rep.ID())
			topo.Replicas[shard] = append(topo.Replicas[shard], rep.ID())

			sh := repl.NewShipper(cfg.Shipper, c.Net, pRegion, datanode.ReplEndpointName(rep.ID()), p.Log(), p.Repl().AckHook())
			p.Repl().AddShipper(sh)
			sh.Start()
		}
	}

	// CNs: one per region, each with its own synchronized clock and oracle.
	var nodes []transition.Node
	for i, r := range cfg.Regions {
		nc := clock.NewNode(cfg.Clock, clock.Real(), c.devices[r])
		stop := nc.Start()
		c.clockStops = append(c.clockStops, stop)
		oracle := tso.New(fmt.Sprintf("cn-%s", r), nc, gtm.NewClient(c.Net, r))
		oracle.SetMode(cfg.Mode)
		c.oracles = append(c.oracles, oracle)
		nodes = append(nodes, oracle)

		cn := coordinator.New(cfg.CN, oracle.Name(), r, uint64(i+1),
			datanode.NewClient(c.Net, r), oracle, c.Routing, c.Catalog)
		c.cns[r] = cn
	}
	c.wireTrackers()
	c.GTMServer.SetMode(cfg.Mode)
	c.Controller = transition.NewController(c.GTMServer, nodes...)

	// RCP collector, designated at the GTM region's CN; shared by all CNs
	// (the in-process analogue of the designated CN distributing the RCP).
	hbOracle := c.cns[cfg.GTMRegion].Oracle()
	tsp := func(ctx context.Context) (ts.Timestamp, error) {
		t, _, err := hbOracle.Commit(ctx, hbOracle.Mode())
		return t, err
	}
	c.Collector = rcp.NewCollector(cfg.RCP, datanode.NewClient(c.Net, cfg.GTMRegion), topo, tsp)
	for _, cn := range c.cns {
		cn.SetCollector(c.Collector)
	}
	c.Collector.Start()
	return c, nil
}

func otherRegions(all []string, except string) []string {
	out := make([]string, 0, len(all))
	for _, r := range all {
		if r != except {
			out = append(out, r)
		}
	}
	return out
}

// wireTrackers (re)builds every CN's tracker from current routing. Called
// after Open's node construction and after failover.
func (c *Cluster) wireTrackers() {
	for region, cn := range c.cns {
		cn.SetPlacementTracker(c.Placement)
		tr := ror.NewTracker()
		for shard := 0; shard < c.cfg.Shards; shard++ {
			pID := c.Routing.Primary(shard)
			tr.AddNode(shard, pID, c.regionOfPrimary(shard), true, c.latencyEstimate(region, c.regionOfPrimary(shard)))
			for _, rep := range c.replicas[shard] {
				if rep.Endpoint().Down() {
					continue
				}
				tr.AddNode(shard, rep.ID(), rep.Region(), false, c.latencyEstimate(region, rep.Region()))
			}
		}
		cn.SetTracker(tr)
	}
}

func (c *Cluster) regionOfPrimary(shard int) string {
	return c.primaries[shard].Region()
}

func (c *Cluster) latencyEstimate(from, to string) time.Duration {
	d, err := c.Net.OneWay(from, to, 0)
	if err != nil {
		return time.Millisecond
	}
	return 2 * d
}

// CN returns the computing node of a region.
func (c *Cluster) CN(region string) *coordinator.CN { return c.cns[region] }

// CNs returns every computing node.
func (c *Cluster) CNs() []*coordinator.CN {
	out := make([]*coordinator.CN, 0, len(c.cns))
	for _, r := range c.cfg.Regions {
		out = append(out, c.cns[r])
	}
	return out
}

// Regions returns the configured region names.
func (c *Cluster) Regions() []string { return c.cfg.Regions }

// Primaries returns the shard primaries.
func (c *Cluster) Primaries() []*datanode.Primary { return c.primaries }

// Replicas returns the replicas of a shard.
func (c *Cluster) Replicas(shard int) []*datanode.Replica { return c.replicas[shard] }

// Shards returns the shard count.
func (c *Cluster) Shards() int { return c.cfg.Shards }

// ShardOf hashes a distribution value to a shard, matching GaussDB's
// hash distribution of tables across data nodes.
func (c *Cluster) ShardOf(distValue any) int { return ShardOf(distValue, c.cfg.Shards) }

// ShardOf hashes a distribution-column value onto one of n shards.
func ShardOf(distValue any, n int) int {
	e := keys.NewEncoder(16)
	switch v := distValue.(type) {
	case int64:
		e.Int64(v)
	case uint64:
		e.Uint64(v)
	case int:
		e.Int64(int64(v))
	case string:
		e.String(v)
	case []byte:
		e.RawBytes(v)
	case float64:
		e.Float64(v)
	case bool:
		e.Bool(v)
	default:
		e.String(fmt.Sprint(v))
	}
	h := fnv.New32a()
	h.Write(e.Bytes())
	return int(h.Sum32() % uint32(n))
}

// CreateTable runs the DDL: it assigns an ID if missing, stamps the change
// with a commit timestamp, records it in every primary's redo stream (so
// replicas can gate ROR queries on it), and installs the schema.
func (c *Cluster) CreateTable(ctx context.Context, s *table.Schema) error {
	if s.ID == 0 {
		s.ID = c.Catalog.NextID()
	}
	for i := range s.Indexes {
		if s.Indexes[i].ID == 0 {
			s.Indexes[i].ID = c.Catalog.NextID()
		}
	}
	if err := s.Validate(); err != nil {
		return err
	}
	cn := c.cns[c.cfg.GTMRegion]
	commitTS, _, err := cn.Oracle().Commit(ctx, cn.Oracle().Mode())
	if err != nil {
		return err
	}
	blob, err := table.MarshalSchema(s)
	if err != nil {
		return err
	}
	client := datanode.NewClient(c.Net, c.cfg.GTMRegion)
	var wg sync.WaitGroup
	errs := make([]error, len(c.primaries))
	for i, p := range c.primaries {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			errs[i] = client.DDL(ctx, node, s.ID, commitTS, blob)
		}(i, p.ID())
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return c.Catalog.Create(s, commitTS)
}

// DropTable removes a table, recording the DDL timestamp cluster-wide.
func (c *Cluster) DropTable(ctx context.Context, name string) error {
	s, err := c.Catalog.Get(name)
	if err != nil {
		return err
	}
	cn := c.cns[c.cfg.GTMRegion]
	commitTS, _, err := cn.Oracle().Commit(ctx, cn.Oracle().Mode())
	if err != nil {
		return err
	}
	client := datanode.NewClient(c.Net, c.cfg.GTMRegion)
	for _, p := range c.primaries {
		if err := client.DDL(ctx, p.ID(), s.ID, commitTS, nil); err != nil {
			return err
		}
	}
	return c.Catalog.Drop(name, commitTS)
}

// TransitionToGClock migrates the live cluster to clock-based transaction
// management (Fig. 2).
func (c *Cluster) TransitionToGClock(ctx context.Context) error {
	return c.Controller.ToGClock(ctx)
}

// TransitionToGTM migrates the live cluster back to centralized management
// (Fig. 3) — the clock-failure fallback.
func (c *Cluster) TransitionToGTM(ctx context.Context) error {
	return c.Controller.ToGTM(ctx)
}

// Mode returns the GTM server's current mode.
func (c *Cluster) Mode() ts.Mode { return c.GTMServer.Mode() }

// FailPrimary injects a primary crash for a shard: its endpoint goes dark
// and its shippers stop.
func (c *Cluster) FailPrimary(shard int) {
	p := c.primaries[shard]
	p.Endpoint().SetDown(true)
	p.Repl().StopAll()
}

// PromoteReplica promotes a shard's replica to primary after a failure: the
// replica's store becomes the new primary's, surviving replicas are
// re-seeded from a clone of it, shipping is re-wired, and routing is
// updated on every CN.
func (c *Cluster) PromoteReplica(ctx context.Context, shard, replicaIdx int) error {
	if replicaIdx < 0 || replicaIdx >= len(c.replicas[shard]) {
		return fmt.Errorf("cluster: shard %d has no replica %d", shard, replicaIdx)
	}
	promoted := c.replicas[shard][replicaIdx]
	promoted.SetDown(true) // stop serving as a replica

	newID := fmt.Sprintf("dn%d-promoted-%s", shard, promoted.ID())
	p := datanode.NewPrimaryFromStore(c.Net, newID, promoted.Region(), shard,
		promoted.Applier().Store(), c.cfg.ReplMode, c.cfg.Quorum)
	c.primaries[shard] = p
	c.Routing.SetPrimary(shard, newID)

	// Re-seed surviving replicas from a clone and re-wire shipping.
	survivors := make([]*datanode.Replica, 0, len(c.replicas[shard])-1)
	for i, rep := range c.replicas[shard] {
		if i == replicaIdx {
			continue
		}
		rep.SetDown(true)
		fresh := datanode.NewReplicaFromStore(c.Net, rep.ID()+"x", rep.Region(), shard, p.Store().Clone())
		survivors = append(survivors, fresh)
		sh := repl.NewShipper(c.cfg.Shipper, c.Net, p.Region(), datanode.ReplEndpointName(fresh.ID()), p.Log(), p.Repl().AckHook())
		p.Repl().AddShipper(sh)
		sh.Start()
	}
	c.replicas[shard] = survivors

	// Rebuild routing's replica list and the collector topology.
	c.rebuildCollector()
	c.wireTrackers()
	return nil
}

// AdvisePlacement runs the geographic load-balancing advisor over the
// access counts accumulated since the last window, recommending primary
// relocations toward each shard's dominant access region — the paper's
// future-work "transparent load balancing based on geographical access
// patterns".
func (c *Cluster) AdvisePlacement(cfg placement.Config) []placement.Move {
	primaryRegion := make(map[int]string, c.cfg.Shards)
	for shard, p := range c.primaries {
		primaryRegion[shard] = p.Region()
	}
	return placement.Advise(c.Placement.Snapshot(), primaryRegion, cfg)
}

// MovePrimary relocates a shard's primary into the target region by
// promoting that region's replica: it waits for the replica to catch up to
// the primary's log, stops the old primary, and promotes. In-flight
// transactions on the shard may abort and retry (the same behaviour as a
// failover); data is preserved because promotion happens only at parity.
func (c *Cluster) MovePrimary(ctx context.Context, shard int, targetRegion string) error {
	if shard < 0 || shard >= c.cfg.Shards {
		return fmt.Errorf("cluster: no shard %d", shard)
	}
	old := c.primaries[shard]
	if old.Region() == targetRegion {
		return nil
	}
	idx := -1
	for i, rep := range c.replicas[shard] {
		if rep.Region() == targetRegion {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("cluster: shard %d has no replica in region %q", shard, targetRegion)
	}
	target := c.replicas[shard][idx]
	// Drain: stop accepting new work on the old primary, then wait for the
	// target replica to apply the full log.
	old.Endpoint().SetDown(true)
	defer old.Repl().StopAll()
	deadline := time.Now().Add(30 * time.Second)
	for target.Applier().AppliedLSN() < old.Log().LastLSN() {
		if time.Now().After(deadline) {
			old.Endpoint().SetDown(false) // re-open; the move failed
			return fmt.Errorf("cluster: shard %d replica in %q did not catch up", shard, targetRegion)
		}
		select {
		case <-ctx.Done():
			old.Endpoint().SetDown(false)
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return c.PromoteReplica(ctx, shard, idx)
}

// rebuildCollector restarts the RCP collector with current topology.
func (c *Cluster) rebuildCollector() {
	c.Collector.Stop()
	topo := rcp.Topology{Primaries: map[int]string{}, Replicas: map[int][]string{}}
	primaries := make([]string, c.cfg.Shards)
	replicas := make([][]string, c.cfg.Shards)
	for shard := 0; shard < c.cfg.Shards; shard++ {
		topo.Primaries[shard] = c.primaries[shard].ID()
		primaries[shard] = c.primaries[shard].ID()
		for _, rep := range c.replicas[shard] {
			topo.Replicas[shard] = append(topo.Replicas[shard], rep.ID())
			replicas[shard] = append(replicas[shard], rep.ID())
		}
	}
	c.Routing.Reset(primaries, replicas)
	hbOracle := c.cns[c.cfg.GTMRegion].Oracle()
	tsp := func(ctx context.Context) (ts.Timestamp, error) {
		t, _, err := hbOracle.Commit(ctx, hbOracle.Mode())
		return t, err
	}
	c.Collector = rcp.NewCollector(c.cfg.RCP, datanode.NewClient(c.Net, c.cfg.GTMRegion), topo, tsp)
	for _, cn := range c.cns {
		cn.SetCollector(c.Collector)
	}
	c.Collector.Start()
}

// FailClockDevice injects a time-device failure in a region; node clocks
// there stop syncing and their error bounds grow until the operator
// transitions the cluster to GTM mode.
func (c *Cluster) FailClockDevice(region string, failed bool) {
	if d, ok := c.devices[region]; ok {
		d.SetFailed(failed)
	}
}

// ClockHealthy reports whether every CN clock is within limit.
func (c *Cluster) ClockHealthy(limit time.Duration) bool {
	for _, o := range c.oracles {
		if !o.Clock().Healthy(limit) {
			return false
		}
	}
	return true
}

// SetReplication switches replication mode on every primary at runtime.
func (c *Cluster) SetReplication(mode repl.Mode, quorum int) {
	for _, p := range c.primaries {
		p.Repl().SetMode(mode, quorum)
	}
}

// Close stops background activity.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	// Drain background 2PC resolutions before tearing down the transport:
	// an in-flight phase two must land, not race the shutdown.
	for _, cn := range c.cns {
		cn.Quiesce()
	}
	c.Collector.Stop()
	for _, p := range c.primaries {
		p.Repl().StopAll()
	}
	for _, stop := range c.clockStops {
		stop()
	}
	for _, w := range c.walClosers {
		_ = w.Close()
	}
}
