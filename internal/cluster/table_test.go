package cluster

import (
	"globaldb/internal/table"
)

// testSchema builds a simple keyed table for tests.
func testSchema(name string) *table.Schema {
	return &table.Schema{
		Name: name,
		Columns: []table.Column{
			{Name: "id", Kind: table.Int64},
			{Name: "val", Kind: table.String},
		},
		PK: []int{0},
	}
}
