package cluster

import (
	"sync"
	"time"

	"globaldb/internal/ts"
)

// gcState tracks the version-GC watermark. Versions older than the newest
// version at or below the watermark can never be read again: read-write
// transactions use fresh snapshots and read-only queries use the monotonic
// RCP, so pruning below a *previously published* RCP is safe even for
// queries still in flight.
type gcState struct {
	mu      sync.Mutex
	prevRCP ts.Timestamp // RCP observed at the previous GC round
	stop    chan struct{}
	done    chan struct{}
}

// PruneOnce prunes MVCC version chains on every primary and replica store
// up to the RCP observed at the previous call, and returns the number of
// versions removed. The one-round delay guarantees no in-flight query holds
// a snapshot below the prune watermark.
func (c *Cluster) PruneOnce() int {
	c.gc.mu.Lock()
	watermark := c.gc.prevRCP
	c.gc.prevRCP = c.Collector.RCP()
	c.gc.mu.Unlock()
	if watermark == 0 {
		return 0
	}
	removed := 0
	for _, p := range c.primaries {
		removed += p.Store().Prune(watermark)
	}
	for shard := range c.replicas {
		for _, rep := range c.replicas[shard] {
			removed += rep.Applier().Store().Prune(watermark)
		}
	}
	return removed
}

// StartGC launches periodic version garbage collection. Returns a stop
// function. Calling it twice is an error guarded by the caller (Open starts
// it only when configured).
func (c *Cluster) StartGC(interval time.Duration) (stop func()) {
	c.gc.mu.Lock()
	c.gc.stop = make(chan struct{})
	c.gc.done = make(chan struct{})
	stopCh, doneCh := c.gc.stop, c.gc.done
	c.gc.mu.Unlock()
	go func() {
		defer close(doneCh)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.PruneOnce()
			case <-stopCh:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopCh)
			<-doneCh
		})
	}
}
