package cluster

import (
	"testing"
	"time"

	"globaldb/internal/placement"
)

// TestAdviseAndMovePrimary drives a write-heavy workload against one shard
// from a region that does not own it, asks the advisor for moves, executes
// the top move, and verifies the shard keeps serving reads and writes from
// its new home.
func TestAdviseAndMovePrimary(t *testing.T) {
	c := open(t, smallCfg())

	// Find a shard whose primary is NOT in dongguan but which has a
	// replica there.
	shard := -1
	for s := 0; s < c.Shards(); s++ {
		if c.Primaries()[s].Region() == "dongguan" {
			continue
		}
		for _, rep := range c.Replicas(s) {
			if rep.Region() == "dongguan" {
				shard = s
				break
			}
		}
		if shard >= 0 {
			break
		}
	}
	if shard < 0 {
		t.Fatal("topology has no candidate shard")
	}

	// Dongguan hammers the shard with writes.
	cn := c.CN("dongguan")
	var lastKey []byte
	for i := 0; i < 40; i++ {
		tx, err := cn.Begin(bg)
		if err != nil {
			t.Fatal(err)
		}
		lastKey = key(shard, i)
		if err := tx.Put(bg, shard, lastKey, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(bg); err != nil {
			t.Fatal(err)
		}
	}

	moves := c.AdvisePlacement(placement.DefaultConfig())
	var move *placement.Move
	for i := range moves {
		if moves[i].Shard == shard {
			move = &moves[i]
		}
	}
	if move == nil {
		t.Fatalf("advisor did not recommend moving shard %d: %v", shard, moves)
	}
	if move.To != "dongguan" {
		t.Fatalf("advisor recommends %q, want dongguan", move.To)
	}

	if err := c.MovePrimary(bg, shard, "dongguan"); err != nil {
		t.Fatal(err)
	}
	if got := c.Primaries()[shard].Region(); got != "dongguan" {
		t.Fatalf("primary region = %q after move", got)
	}

	// Data survives and the shard keeps accepting traffic from its new home.
	r, err := cn.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	v, found, err := r.Get(bg, shard, lastKey)
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("read after move: %q %v %v", v, found, err)
	}
	r.Commit(bg)
	w, _ := cn.Begin(bg)
	if err := w.Put(bg, shard, key(shard, 999), []byte("after-move")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(bg); err != nil {
		t.Fatal(err)
	}

	// Replicas of the relocated shard converge to the new primary.
	deadline := time.Now().Add(10 * time.Second)
	for {
		reps := c.Replicas(shard)
		if len(reps) > 0 && reps[0].Applier().MaxCommitTS() >= w.Snapshot() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas never converged after the move")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMovePrimaryValidation covers the error paths.
func TestMovePrimaryValidation(t *testing.T) {
	c := open(t, smallCfg())
	if err := c.MovePrimary(bg, -1, "xian"); err == nil {
		t.Fatal("negative shard must fail")
	}
	if err := c.MovePrimary(bg, 0, "atlantis"); err == nil {
		t.Fatal("unknown region must fail")
	}
	// Moving to the current region is a no-op.
	cur := c.Primaries()[0].Region()
	if err := c.MovePrimary(bg, 0, cur); err != nil {
		t.Fatalf("no-op move: %v", err)
	}
}

// TestPlacementTrackerWiredIntoCNs verifies CN traffic lands in the shared
// tracker with the issuing CN's region.
func TestPlacementTrackerWiredIntoCNs(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("langzhong")
	tx, err := cn.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(bg, 1, key(1, 1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tx.Get(bg, 1, key(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}
	snap := c.Placement.Snapshot()
	a := snap[1]["langzhong"]
	if a.Writes != 1 || a.Reads != 1 {
		t.Fatalf("tracked access = %+v", a)
	}
}
