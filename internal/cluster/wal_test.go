package cluster

import (
	"fmt"
	"path/filepath"
	"testing"

	"globaldb/internal/datanode"
	"globaldb/internal/netsim"
	"globaldb/internal/repl"
	"globaldb/internal/table"
	"globaldb/internal/wal"
)

// TestClusterWALDurability runs transactions against a cluster with WAL
// archiving enabled, closes it (draining the WALs), and verifies that each
// shard's full redo stream can be recovered and replayed into a store that
// matches the primary's final watermark.
func TestClusterWALDurability(t *testing.T) {
	dir := t.TempDir()
	cfg := smallCfg()
	cfg.WALDir = dir
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sch := &table.Schema{
		Name:    "kv",
		Columns: []table.Column{{Name: "k", Kind: table.Int64}, {Name: "v", Kind: table.String}},
		PK:      []int{0},
	}
	if err := c.CreateTable(bg, sch); err != nil {
		t.Fatal(err)
	}
	cn := c.CN(cfg.Regions[0])
	for i := 0; i < 60; i++ {
		txn, err := cn.Begin(bg)
		if err != nil {
			t.Fatal(err)
		}
		pk, _ := sch.PrimaryKeyFromValues([]any{int64(i)})
		val, _ := sch.EncodeRow(table.Row{int64(i), fmt.Sprintf("v%d", i)})
		if err := txn.WriteBatch(bg, c.ShardOf(int64(i)), []datanode.WriteOp{{Key: pk, Value: val}}); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(bg); err != nil {
			t.Fatal(err)
		}
	}
	watermarks := make(map[int]int64)
	lsns := make(map[int]uint64)
	for _, p := range c.Primaries() {
		watermarks[p.Shard()] = int64(p.Store().LastCommitTS())
		lsns[p.Shard()] = p.Log().LastLSN()
	}
	c.Close() // drains the WAL archivers

	for shard := 0; shard < cfg.Shards; shard++ {
		shardDir := filepath.Join(dir, fmt.Sprintf("shard-%d", shard))
		recs, err := wal.Recover(shardDir)
		if err != nil {
			t.Fatalf("shard %d recover: %v", shard, err)
		}
		if uint64(len(recs)) != lsns[shard] {
			t.Fatalf("shard %d: recovered %d records, want %d", shard, len(recs), lsns[shard])
		}
		n := netsim.New(netsim.Config{TimeScale: 0.2})
		n.SetLink("east", "west", 0, 0)
		p, closer, err := datanode.RecoverPrimary(n, fmt.Sprintf("r%d", shard), "east", shard, shardDir, repl.Async, 1)
		if err != nil {
			t.Fatalf("shard %d recover primary: %v", shard, err)
		}
		if got := int64(p.Store().LastCommitTS()); got != watermarks[shard] {
			t.Fatalf("shard %d watermark %d, want %d", shard, got, watermarks[shard])
		}
		closer.Close()
	}
}
