package cluster

import (
	"errors"
	"testing"

	"globaldb/internal/coordinator"
)

// TestTxnDoubleFinish checks that a transaction rejects operations after it
// finished, whichever way it finished.
func TestTxnDoubleFinish(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("xian")

	tx, err := cn.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(bg, 0, key(0, 1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(bg); !errors.Is(err, coordinator.ErrTxnDone) {
		t.Fatalf("second commit: %v", err)
	}
	if err := tx.Put(bg, 0, key(0, 2), []byte("v")); !errors.Is(err, coordinator.ErrTxnDone) {
		t.Fatalf("write after commit: %v", err)
	}
	if _, _, err := tx.Get(bg, 0, key(0, 1)); !errors.Is(err, coordinator.ErrTxnDone) {
		t.Fatalf("read after commit: %v", err)
	}

	tx2, _ := cn.Begin(bg)
	if err := tx2.Abort(bg); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(bg); !errors.Is(err, coordinator.ErrTxnDone) {
		t.Fatalf("commit after abort: %v", err)
	}
}

// TestEmptyTxnCommit commits a transaction that wrote nothing: no shard is
// touched, no timestamp fetched, and the commit succeeds immediately.
func TestEmptyTxnCommit(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("xian")
	tx, err := cn.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}
	if tx.CommitTS() != 0 {
		t.Fatalf("read-only commit TS = %v, want 0", tx.CommitTS())
	}
}

// TestAbortReleasesLocksPromptly verifies a conflicting writer succeeds
// immediately after the holder aborts.
func TestAbortReleasesLocksPromptly(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("xian")
	holder, _ := cn.Begin(bg)
	if err := holder.Put(bg, 1, key(1, 7), []byte("h")); err != nil {
		t.Fatal(err)
	}
	contender, _ := cn.Begin(bg)
	if err := contender.Put(bg, 1, key(1, 7), []byte("c")); err == nil {
		t.Fatal("conflicting write must fail while the intent is held")
	}
	_ = contender.Abort(bg)
	if err := holder.Abort(bg); err != nil {
		t.Fatal(err)
	}
	retry, _ := cn.Begin(bg)
	if err := retry.Put(bg, 1, key(1, 7), []byte("r")); err != nil {
		t.Fatalf("write after abort: %v", err)
	}
	if err := retry.Commit(bg); err != nil {
		t.Fatal(err)
	}
}

// TestCommitTimestampsStrictlyOrderWithSnapshots checks R.1 through the
// coordinator: a transaction that begins after another committed (same CN)
// gets a snapshot at or above the earlier commit timestamp and sees its
// write.
func TestCommitTimestampsStrictlyOrderWithSnapshots(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("xian")
	w, _ := cn.Begin(bg)
	if err := w.Put(bg, 2, key(2, 9), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(bg); err != nil {
		t.Fatal(err)
	}
	r, _ := cn.Begin(bg)
	if r.Snapshot() < w.CommitTS() {
		t.Fatalf("snapshot %v below prior commit %v", r.Snapshot(), w.CommitTS())
	}
	v, found, err := r.Get(bg, 2, key(2, 9))
	if err != nil || !found || string(v) != "x" {
		t.Fatalf("R.1 violated: %q %v %v", v, found, err)
	}
	r.Commit(bg)
}

// TestMultiShardCommitTimestampUniform checks that a 2PC transaction's
// versions land at one commit timestamp on every shard (no torn timestamps).
func TestMultiShardCommitTimestampUniform(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("xian")
	tx, _ := cn.Begin(bg)
	shards := []int{0, 1, 2}
	for _, s := range shards {
		if err := tx.Put(bg, s, key(s, 77), []byte("multi")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}
	// Phase two resolves non-anchor shards in the background after the
	// client ack; drain it before inspecting shard state directly.
	cn.Quiesce()
	want := tx.CommitTS()
	if want == 0 {
		t.Fatal("no commit timestamp")
	}
	for _, s := range shards {
		versions := c.Primaries()[s].Store().Versions(key(s, 77))
		if len(versions) != 1 || versions[0].CommitTS != want {
			t.Fatalf("shard %d versions %v, want single at %v", s, versions, want)
		}
	}
}
