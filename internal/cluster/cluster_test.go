package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"globaldb/internal/coordinator"
	"globaldb/internal/repl"
	"globaldb/internal/ts"
)

var bg = context.Background()

// smallCfg is a fast three-region cluster for tests.
func smallCfg() Config {
	cfg := ThreeCity()
	cfg.TimeScale = 0.02 // 55ms RTT -> 1.1ms
	cfg.Shards = 4
	cfg.ReplicasPerShard = 2
	return cfg
}

func open(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func key(shard, i int) []byte { return []byte(fmt.Sprintf("s%02d-key-%06d", shard, i)) }

func TestOpenBuildsTopology(t *testing.T) {
	c := open(t, smallCfg())
	if got := len(c.CNs()); got != 3 {
		t.Fatalf("CNs = %d", got)
	}
	if got := len(c.Primaries()); got != 4 {
		t.Fatalf("primaries = %d", got)
	}
	for shard := 0; shard < 4; shard++ {
		reps := c.Replicas(shard)
		if len(reps) != 2 {
			t.Fatalf("shard %d replicas = %d", shard, len(reps))
		}
		// Replicas are placed outside the primary's region (remote
		// replication protects against regional disasters).
		for _, r := range reps {
			if r.Region() == c.Primaries()[shard].Region() {
				t.Fatalf("shard %d replica in primary region %s", shard, r.Region())
			}
		}
	}
	if c.Mode() != ts.ModeGClock {
		t.Fatalf("mode = %v", c.Mode())
	}
}

func TestSingleShardTxnCommitAndRead(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("xian")
	txn, err := cn.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Put(bg, 0, key(0, 1), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// Read own write before commit.
	v, found, err := txn.Get(bg, 0, key(0, 1))
	if err != nil || !found || string(v) != "hello" {
		t.Fatalf("RYOW: %q %v %v", v, found, err)
	}
	if err := txn.Commit(bg); err != nil {
		t.Fatal(err)
	}
	// A new transaction sees it.
	txn2, _ := cn.Begin(bg)
	v, found, err = txn2.Get(bg, 0, key(0, 1))
	if err != nil || !found || string(v) != "hello" {
		t.Fatalf("after commit: %q %v %v", v, found, err)
	}
	txn2.Commit(bg)
}

func TestMultiShardTxn2PC(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("dongguan")
	txn, err := cn.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < 4; shard++ {
		if err := txn.Put(bg, shard, key(shard, 7), []byte("multi")); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(bg); err != nil {
		t.Fatal(err)
	}
	txn2, _ := cn.Begin(bg)
	for shard := 0; shard < 4; shard++ {
		v, found, err := txn2.Get(bg, shard, key(shard, 7))
		if err != nil || !found || string(v) != "multi" {
			t.Fatalf("shard %d: %q %v %v", shard, v, found, err)
		}
	}
	txn2.Commit(bg)
}

func TestAbortRollsBackAllShards(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("xian")
	txn, _ := cn.Begin(bg)
	txn.Put(bg, 0, key(0, 9), []byte("x"))
	txn.Put(bg, 1, key(1, 9), []byte("y"))
	if err := txn.Abort(bg); err != nil {
		t.Fatal(err)
	}
	txn2, _ := cn.Begin(bg)
	for _, shard := range []int{0, 1} {
		if _, found, _ := txn2.Get(bg, shard, key(shard, 9)); found {
			t.Fatalf("aborted write visible on shard %d", shard)
		}
	}
	txn2.Commit(bg)
	// The aborted transaction cannot be reused.
	if err := txn.Commit(bg); err != coordinator.ErrTxnDone {
		t.Fatalf("commit after abort: %v", err)
	}
}

func TestWriteConflictAborts(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("xian")
	t1, _ := cn.Begin(bg)
	t2, _ := cn.Begin(bg)
	if err := t1.Put(bg, 0, key(0, 42), []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Put(bg, 0, key(0, 42), []byte("second")); err == nil {
		t.Fatal("conflicting write must fail")
	}
	t2.Abort(bg)
	if err := t1.Commit(bg); err != nil {
		t.Fatal(err)
	}
}

func TestExternalConsistencyAcrossCNs(t *testing.T) {
	// R.1 end to end: a transaction committed (acked) on the Xi'an CN is
	// visible to a transaction begun afterwards on the Dongguan CN.
	c := open(t, smallCfg())
	for i := 0; i < 20; i++ {
		w, _ := c.CN("xian").Begin(bg)
		if err := w.Put(bg, 0, key(0, 100+i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(bg); err != nil {
			t.Fatal(err)
		}
		r, err := c.CN("dongguan").Begin(bg)
		if err != nil {
			t.Fatal(err)
		}
		v, found, err := r.Get(bg, 0, key(0, 100+i))
		if err != nil || !found || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("iter %d: R.1 violated: %q %v %v", i, v, found, err)
		}
		r.Commit(bg)
	}
}

func waitRCP(t *testing.T, c *Cluster, min ts.Timestamp) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Collector.RCP() < min {
		if time.Now().After(deadline) {
			t.Fatalf("RCP stuck at %v, want >= %v", c.Collector.RCP(), min)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestReplicaReadsSeeCommittedData(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("xian")
	w, _ := cn.Begin(bg)
	if err := w.Put(bg, 0, key(0, 1), []byte("replicated")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(bg); err != nil {
		t.Fatal(err)
	}
	// Wait for the RCP to pass the commit, then a replica read must see it.
	// Reading from a CN remote from shard 0's primary: the skyline picks
	// that CN's local replica over the remote primary.
	waitRCP(t, c, w.Snapshot())
	var remote *coordinator.CN
	for _, cand := range c.CNs() {
		if cand.Region() != c.Primaries()[0].Region() {
			remote = cand
			break
		}
	}
	ro, err := remote.ReadOnly(bg, coordinator.AnyStaleness)
	if err != nil {
		t.Fatal(err)
	}
	if !ro.OnReplicas() {
		t.Fatal("read-only query must run on replicas")
	}
	v, found, err := ro.Get(bg, 0, key(0, 1))
	if err != nil || !found || string(v) != "replicated" {
		t.Fatalf("replica read: %q %v %v", v, found, err)
	}
	if remote.Stats().ReplicaReads == 0 {
		t.Fatal("replica read counter must increment")
	}
}

func TestRORMonotonicFreshness(t *testing.T) {
	// Consecutive ROR queries never observe a smaller snapshot (Sec. IV-A:
	// "the RCP increases monotonically ... consecutive ROR queries always
	// show data with equal or greater freshness").
	c := open(t, smallCfg())
	cn := c.CN("langzhong")
	var prev ts.Timestamp
	for i := 0; i < 30; i++ {
		ro, err := cn.ReadOnly(bg, coordinator.AnyStaleness)
		if err != nil {
			t.Fatal(err)
		}
		if ro.Snapshot() < prev {
			t.Fatalf("RCP went backwards: %v after %v", ro.Snapshot(), prev)
		}
		prev = ro.Snapshot()
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRORNoTornMultiShardReads(t *testing.T) {
	// A multi-shard transaction moves value between two shards; replica
	// reads at the RCP must always see the sum conserved.
	c := open(t, smallCfg())
	cn := c.CN("xian")
	init, _ := cn.Begin(bg)
	init.Put(bg, 0, []byte("acct-a"), []byte{100})
	init.Put(bg, 1, []byte("acct-b"), []byte{100})
	if err := init.Commit(bg); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			txn, err := cn.Begin(bg)
			if err != nil {
				continue
			}
			av, _, err1 := txn.Get(bg, 0, []byte("acct-a"))
			bv, _, err2 := txn.Get(bg, 1, []byte("acct-b"))
			if err1 != nil || err2 != nil {
				txn.Abort(bg)
				continue
			}
			if err := txn.Put(bg, 0, []byte("acct-a"), []byte{av[0] - 1}); err != nil {
				txn.Abort(bg)
				continue
			}
			if err := txn.Put(bg, 1, []byte("acct-b"), []byte{bv[0] + 1}); err != nil {
				txn.Abort(bg)
				continue
			}
			txn.Commit(bg)
		}
	}()

	reader := c.CN("dongguan")
	deadline := time.Now().Add(500 * time.Millisecond)
	checks := 0
	for time.Now().Before(deadline) {
		ro, err := reader.ReadOnly(bg, coordinator.AnyStaleness)
		if err != nil {
			t.Fatal(err)
		}
		av, foundA, err1 := ro.Get(bg, 0, []byte("acct-a"))
		bv, foundB, err2 := ro.Get(bg, 1, []byte("acct-b"))
		if err1 != nil || err2 != nil {
			t.Fatalf("ro read: %v %v", err1, err2)
		}
		if !foundA && !foundB {
			continue // RCP before the initial commit
		}
		if foundA != foundB {
			t.Fatal("torn read: one account visible, the other not")
		}
		if sum := int(av[0]) + int(bv[0]); sum != 200 {
			t.Fatalf("torn read: sum = %d", sum)
		}
		checks++
	}
	stop.Store(true)
	wg.Wait()
	if checks == 0 {
		t.Fatal("no successful consistency checks ran")
	}
}

func TestStalenessBoundFallsBackToPrimary(t *testing.T) {
	cfg := smallCfg()
	cfg.RCP.HeartbeatInterval = time.Hour // RCP barely moves
	cfg.RCP.PollInterval = 2 * time.Millisecond
	c := open(t, cfg)
	cn := c.CN("xian")
	// With a tight bound and a stale RCP, the query must fall back to
	// primaries at a fresh snapshot.
	time.Sleep(20 * time.Millisecond)
	ro, err := cn.ReadOnly(bg, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if ro.OnReplicas() {
		t.Fatal("stale RCP with tight bound must fall back to primary reads")
	}
	if cn.Stats().RORFallbacks == 0 {
		t.Fatal("fallback counter must increment")
	}
}

func TestDDLGateBlocksFreshTables(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("xian")
	schema := testSchema("users")
	if err := c.CreateTable(bg, schema); err != nil {
		t.Fatal(err)
	}
	// Immediately after the DDL the RCP is typically behind it: a query
	// naming the table must fall back to primaries.
	ro, err := cn.ReadOnly(bg, coordinator.AnyStaleness, schema.ID)
	if err != nil {
		t.Fatal(err)
	}
	ddlTS := c.Catalog.DDLTSOf(schema.ID)
	if ro.OnReplicas() && ro.Snapshot() < ddlTS {
		t.Fatal("ROR allowed below the table's DDL timestamp")
	}
	// Once the RCP passes the DDL, replica reads are allowed again.
	waitRCP(t, c, ddlTS)
	ro, err = cn.ReadOnly(bg, coordinator.AnyStaleness, schema.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !ro.OnReplicas() {
		t.Fatal("ROR must be allowed once the RCP passes the DDL")
	}
}

func TestReplicaFailureReroutes(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("xian")
	w, _ := cn.Begin(bg)
	w.Put(bg, 0, key(0, 5), []byte("v"))
	if err := w.Commit(bg); err != nil {
		t.Fatal(err)
	}
	waitRCP(t, c, w.Snapshot())
	// Kill every replica of shard 0: reads must still succeed via the
	// primary fallback.
	for _, rep := range c.Replicas(0) {
		rep.SetDown(true)
	}
	time.Sleep(20 * time.Millisecond) // let a status poll observe the failure
	ro, err := cn.ReadOnly(bg, coordinator.AnyStaleness)
	if err != nil {
		t.Fatal(err)
	}
	v, found, err := ro.Get(bg, 0, key(0, 5))
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("read with dead replicas: %q %v %v", v, found, err)
	}
}

func TestPrimaryFailoverPromotion(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("xian")
	w, _ := cn.Begin(bg)
	w.Put(bg, 2, key(2, 1), []byte("before-failover"))
	if err := w.Commit(bg); err != nil {
		t.Fatal(err)
	}
	// Let replication catch up so the promoted replica has the data.
	deadline := time.Now().Add(5 * time.Second)
	for c.Replicas(2)[0].Applier().MaxCommitTS() < w.Snapshot() {
		if time.Now().After(deadline) {
			t.Fatal("replica never caught up before failover")
		}
		time.Sleep(2 * time.Millisecond)
	}

	c.FailPrimary(2)
	if err := c.PromoteReplica(bg, 2, 0); err != nil {
		t.Fatal(err)
	}

	// Reads and writes continue against the promoted primary.
	r, err := cn.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	v, found, err := r.Get(bg, 2, key(2, 1))
	if err != nil || !found || string(v) != "before-failover" {
		t.Fatalf("read after failover: %q %v %v", v, found, err)
	}
	r.Commit(bg)

	w2, _ := cn.Begin(bg)
	if err := w2.Put(bg, 2, key(2, 2), []byte("after-failover")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(bg); err != nil {
		t.Fatal(err)
	}
	// The re-seeded surviving replica converges to the new primary.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if len(c.Replicas(2)) > 0 && c.Replicas(2)[0].Applier().MaxCommitTS() >= w2.Snapshot() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("surviving replica never converged after failover")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestClockFailureFallbackToGTM(t *testing.T) {
	c := open(t, smallCfg())
	// The region's time device fails; error bounds grow at 200 PPM plus
	// the 60µs sync floor — after 250ms the bound passes 110µs.
	c.FailClockDevice("xian", true)
	deadline := time.Now().Add(5 * time.Second)
	for c.ClockHealthy(100 * time.Microsecond) {
		if time.Now().After(deadline) {
			t.Fatal("clock must become unhealthy after device failure")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Operator falls back to centralized management with zero downtime.
	if err := c.TransitionToGTM(bg); err != nil {
		t.Fatal(err)
	}
	if c.Mode() != ts.ModeGTM {
		t.Fatalf("mode = %v", c.Mode())
	}
	// Transactions still work.
	cn := c.CN("xian")
	txn, err := cn.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Put(bg, 0, key(0, 77), []byte("gtm-mode")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(bg); err != nil {
		t.Fatal(err)
	}
	// Device heals; transition back online.
	c.FailClockDevice("xian", false)
	time.Sleep(10 * time.Millisecond)
	if err := c.TransitionToGClock(bg); err != nil {
		t.Fatal(err)
	}
	txn2, err := cn.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	v, found, err := txn2.Get(bg, 0, key(0, 77))
	if err != nil || !found || string(v) != "gtm-mode" {
		t.Fatalf("read across transitions: %q %v %v", v, found, err)
	}
	txn2.Commit(bg)
}

func TestSyncReplicationMode(t *testing.T) {
	cfg := smallCfg()
	cfg.ReplMode = repl.SyncQuorum
	cfg.Quorum = 1
	c := open(t, cfg)
	cn := c.CN("xian")
	txn, _ := cn.Begin(bg)
	txn.Put(bg, 0, key(0, 3), []byte("sync"))
	if err := txn.Commit(bg); err != nil {
		t.Fatal(err)
	}
	// The commit is already on a quorum (1) of replicas: at least one
	// shipper has acked through the commit record.
	p := c.Primaries()[0]
	lsn := p.Log().LastLSN()
	acked := func() bool {
		for _, sh := range p.Repl().Shippers() {
			if sh.AckedLSN() >= lsn {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(time.Second)
	for !acked() {
		if time.Now().After(deadline) {
			t.Fatal("no replica acked the commit despite sync mode")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestShardOfStable(t *testing.T) {
	a := ShardOf(int64(42), 6)
	for i := 0; i < 10; i++ {
		if ShardOf(int64(42), 6) != a {
			t.Fatal("ShardOf must be deterministic")
		}
	}
	spread := map[int]bool{}
	for i := 0; i < 100; i++ {
		spread[ShardOf(int64(i), 6)] = true
	}
	if len(spread) != 6 {
		t.Fatalf("hash must use all shards, got %d", len(spread))
	}
	if ShardOf("warehouse-1", 6) < 0 || ShardOf([]byte("k"), 6) < 0 || ShardOf(1.5, 6) < 0 || ShardOf(true, 6) < 0 || ShardOf(uint64(7), 6) < 0 || ShardOf(struct{}{}, 6) < 0 {
		t.Fatal("all value kinds must hash")
	}
}
