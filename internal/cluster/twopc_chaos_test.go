package cluster

import (
	"testing"

	"globaldb/internal/coordinator"
	"globaldb/internal/datanode"
	"globaldb/internal/ts"
)

func primaryIDs(c *Cluster) []string {
	ids := make([]string, 0, len(c.Primaries()))
	for _, p := range c.Primaries() {
		ids = append(ids, p.ID())
	}
	return ids
}

// TestChaosCoordinatorDiesBeforeResolution simulates the coordinator dying
// between decision durability and phase-two fan-out: the drop hook abandons
// background resolution, leaving non-anchor shards prepared. The client ack
// already happened (decision is durable at the anchor), so recovery via
// ResolveInDoubt must commit the stragglers — no lost writes.
func TestChaosCoordinatorDiesBeforeResolution(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("xian")
	cn.SetResolveDropHook(func(uint64) bool { return true })

	tx, _ := cn.Begin(bg)
	shards := []int{0, 1, 2}
	for _, s := range shards {
		if err := tx.Put(bg, s, key(s, 42), []byte("chaos")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err) // ack must arrive: decision durability doesn't need phase two
	}
	cn.Quiesce()
	want := tx.CommitTS()

	// Anchor (lowest shard's primary) is committed; the rest are still
	// prepared — their intents are not yet versions.
	if v := c.Primaries()[0].Store().Versions(key(0, 42)); len(v) != 1 || v[0].CommitTS != want {
		t.Fatalf("anchor shard versions %v, want single at %v", v, want)
	}
	for _, s := range shards[1:] {
		if v := c.Primaries()[s].Store().Versions(key(s, 42)); len(v) != 0 {
			t.Fatalf("shard %d resolved despite dropped phase two: %v", s, v)
		}
	}

	// Recovery: a fresh coordinator sweeps the in-doubt sets and consults
	// each transaction's anchor for the outcome.
	client := datanode.NewClient(c.Net, "xian")
	committed, aborted, err := coordinator.ResolveInDoubt(bg, client, primaryIDs(c))
	if err != nil {
		t.Fatal(err)
	}
	if committed != 2 || aborted != 0 {
		t.Fatalf("resolved committed=%d aborted=%d, want 2/0", committed, aborted)
	}
	for _, s := range shards {
		if v := c.Primaries()[s].Store().Versions(key(s, 42)); len(v) != 1 || v[0].CommitTS != want {
			t.Fatalf("shard %d after recovery: %v, want single at %v", s, v, want)
		}
	}
	// A second sweep finds nothing in doubt.
	if committed, aborted, _ := coordinator.ResolveInDoubt(bg, client, primaryIDs(c)); committed+aborted != 0 {
		t.Fatalf("second sweep resolved %d/%d, want idle", committed, aborted)
	}
}

// TestResolveInDoubtPresumedAbort: a participant prepared for a transaction
// whose anchor never saw a decision is aborted on recovery. The anchor not
// knowing the transaction proves no client was acked, so abort is safe.
func TestResolveInDoubtPresumedAbort(t *testing.T) {
	c := open(t, smallCfg())
	client := datanode.NewClient(c.Net, "xian")
	anchor := c.Primaries()[0].ID()
	part := c.Primaries()[1].ID()

	const orphan = 987654
	k := key(1, 314)
	if err := client.Write(bg, part, orphan, ts.Max, []datanode.WriteOp{{Key: k, Value: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := client.Prepare(bg, part, orphan, anchor); err != nil {
		t.Fatal(err)
	}

	committed, aborted, err := coordinator.ResolveInDoubt(bg, client, primaryIDs(c))
	if err != nil {
		t.Fatal(err)
	}
	if committed != 0 || aborted != 1 {
		t.Fatalf("resolved committed=%d aborted=%d, want 0/1", committed, aborted)
	}
	if v := c.Primaries()[1].Store().Versions(k); len(v) != 0 {
		t.Fatalf("aborted prepare left versions: %v", v)
	}
	// The key is writable again: the intent is gone, not just invisible.
	cn := c.CN("xian")
	tx, _ := cn.Begin(bg)
	if err := tx.Put(bg, 1, k, []byte("after")); err != nil {
		t.Fatalf("write after presumed abort: %v", err)
	}
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}
}
