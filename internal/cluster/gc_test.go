package cluster

import (
	"testing"
	"time"
)

func TestPruneOnceBoundsVersionChains(t *testing.T) {
	c := open(t, smallCfg())
	cn := c.CN("xian")
	// Hammer one key with updates.
	var lastSnap = c.Collector.RCP()
	k := key(0, 1)
	for i := 0; i < 50; i++ {
		txn, err := cn.Begin(bg)
		if err != nil {
			t.Fatal(err)
		}
		if err := txn.Put(bg, 0, k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(bg); err != nil {
			t.Fatal(err)
		}
		lastSnap = txn.Snapshot()
	}
	before := len(c.Primaries()[0].Store().Versions(k))
	if before < 40 {
		t.Fatalf("expected a long version chain, got %d", before)
	}
	// Two GC rounds with RCP advancement in between: the first records the
	// watermark, the second prunes.
	waitRCP(t, c, lastSnap)
	c.PruneOnce()
	time.Sleep(10 * time.Millisecond)
	removed := c.PruneOnce()
	if removed == 0 {
		t.Fatal("GC removed nothing")
	}
	after := len(c.Primaries()[0].Store().Versions(k))
	if after >= before {
		t.Fatalf("chain did not shrink: %d -> %d", before, after)
	}
	// Fresh reads still see the newest value.
	txn, _ := cn.Begin(bg)
	v, found, err := txn.Get(bg, 0, k)
	if err != nil || !found || v[0] != 49 {
		t.Fatalf("read after GC: %v %v %v", v, found, err)
	}
	txn.Commit(bg)
	// ROR reads at the current RCP still work.
	ro, err := cn.ReadOnly(bg, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ro.Get(bg, 0, k); err != nil {
		t.Fatal(err)
	}
}

func TestStartGCLoop(t *testing.T) {
	c := open(t, smallCfg())
	stop := c.StartGC(5 * time.Millisecond)
	defer stop()
	cn := c.CN("xian")
	k := key(1, 2)
	var lastSnap = c.Collector.RCP()
	for i := 0; i < 30; i++ {
		txn, _ := cn.Begin(bg)
		txn.Put(bg, 1, k, []byte{byte(i)})
		if err := txn.Commit(bg); err != nil {
			t.Fatal(err)
		}
		lastSnap = txn.Snapshot()
	}
	waitRCP(t, c, lastSnap)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := len(c.Primaries()[1].Store().Versions(k)); n < 30 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("GC loop never pruned; chain still %d", len(c.Primaries()[1].Store().Versions(k)))
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
}
