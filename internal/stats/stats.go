// Package stats provides the measurement primitives the benchmark harness
// uses — latency histograms with percentiles and exponential moving
// averages — plus the per-query scan counters that make execution-pushdown
// wins observable at runtime.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"globaldb/internal/obs"
)

// Process-wide scan totals on obs.Default: every per-query ScanCounters
// mirrors its page-level observations here, so the metrics endpoint can
// report cluster-lifetime pushdown and prefetch effectiveness without a
// second accounting path. Updates are page-granular (a handful of atomic
// adds per scan RPC), never per-row.
var (
	scanPagesTotal    = obs.Default.Counter("globaldb_scan_pages_total")
	scanStorageTotal  = obs.Default.Counter("globaldb_scan_storage_rows_total")
	scanFilteredTotal = obs.Default.Counter("globaldb_scan_dn_filtered_rows_total")
	scanWANTotal      = obs.Default.Counter("globaldb_scan_wan_rows_total")
	scanHitsTotal     = obs.Default.Counter("globaldb_scan_prefetch_hits_total")
	scanWaitTotal     = obs.Default.Counter("globaldb_scan_wan_wait_nanos_total")
	scanLookupTotal   = obs.Default.Counter("globaldb_scan_lookup_rows_total")
)

// ScanCounters accumulates one query's scan activity across every shard
// cursor it opens: rows the data nodes read from storage, rows those nodes
// dropped locally (filtered out or folded into partial aggregates), and
// rows that actually crossed the WAN to the computing node. The gap
// between StorageRows and WANRows is the pushdown win. Alongside the row
// counters it tracks WAN latency observability: pages fetched, pages that
// were already prefetched when the consumer asked for them, and the
// cumulative time the consumer actually spent blocked on the WAN. Safe for
// concurrent use; cursors for different shards fetch from concurrent
// prefetch goroutines.
type ScanCounters struct {
	storage  atomic.Int64
	filtered atomic.Int64
	wan      atomic.Int64
	lookups  atomic.Int64
	pages    atomic.Int64
	hits     atomic.Int64
	waitNano atomic.Int64
}

// Observe records one scan RPC's outcome: examined rows read at storage,
// shipped rows returned over the network.
func (c *ScanCounters) Observe(examined, shipped int) {
	c.ObserveJoin(examined, 0, shipped)
}

// ObserveJoin records one lookup-join scan RPC's outcome: examined outer
// rows read at storage, looked inner rows the data node read to join them,
// and shipped joined rows returned over the network. Both row classes count
// as storage reads; looked rows additionally feed the lookup counter so
// per-side join accounting survives aggregation. A pushed lookup join never
// ships more rows than it read (each shipped row consumed at least one
// looked inner row), so the DN-filtered gap stays non-negative.
func (c *ScanCounters) ObserveJoin(examined, looked, shipped int) {
	read := examined + looked
	c.storage.Add(int64(read))
	c.filtered.Add(int64(read - shipped))
	c.wan.Add(int64(shipped))
	c.pages.Add(1)
	scanStorageTotal.Add(int64(read))
	scanFilteredTotal.Add(int64(read - shipped))
	scanWANTotal.Add(int64(shipped))
	scanPagesTotal.Inc()
	if looked > 0 {
		c.lookups.Add(int64(looked))
		scanLookupTotal.Add(int64(looked))
	}
}

// ObserveWait records one page handoff to the consumer: how long the
// consumer blocked waiting for the page, and whether it was already
// prefetched (ready with no wait beyond channel handoff) when asked for.
func (c *ScanCounters) ObserveWait(d time.Duration, hit bool) {
	if hit {
		c.hits.Add(1)
		scanHitsTotal.Inc()
	}
	if d > 0 {
		c.waitNano.Add(int64(d))
		scanWaitTotal.Add(int64(d))
	}
}

// Snapshot returns the current totals.
func (c *ScanCounters) Snapshot() ScanSnapshot {
	return ScanSnapshot{
		StorageRows:    c.storage.Load(),
		DNFilteredRows: c.filtered.Load(),
		WANRows:        c.wan.Load(),
		LookupRows:     c.lookups.Load(),
		PagesFetched:   c.pages.Load(),
		PrefetchHits:   c.hits.Load(),
		WANWait:        time.Duration(c.waitNano.Load()),
	}
}

// ScanSnapshot is a point-in-time read of ScanCounters.
type ScanSnapshot struct {
	// StorageRows is how many rows data nodes read from their MVCC stores.
	StorageRows int64
	// DNFilteredRows is how many of those the data nodes dropped locally
	// (failed a pushed filter, or were folded into partial aggregates).
	DNFilteredRows int64
	// WANRows is how many rows were shipped over the (simulated) WAN.
	WANRows int64
	// LookupRows is how many inner-table rows data nodes read while
	// executing pushed lookup joins — the join's inner side, served next to
	// the data instead of shipped. Also included in StorageRows.
	LookupRows int64
	// PagesFetched is how many scan-page RPCs the query issued.
	PagesFetched int64
	// PrefetchHits is how many of those pages were already fetched when the
	// consumer asked — WAN round trips fully hidden behind consumption.
	PrefetchHits int64
	// WANWait is the cumulative time the consumer spent blocked waiting for
	// a page; with an effective prefetcher it approaches the latency of the
	// first page instead of pages x RTT.
	WANWait time.Duration
}

// Add returns the element-wise sum of two snapshots.
func (s ScanSnapshot) Add(o ScanSnapshot) ScanSnapshot {
	return ScanSnapshot{
		StorageRows:    s.StorageRows + o.StorageRows,
		DNFilteredRows: s.DNFilteredRows + o.DNFilteredRows,
		WANRows:        s.WANRows + o.WANRows,
		LookupRows:     s.LookupRows + o.LookupRows,
		PagesFetched:   s.PagesFetched + o.PagesFetched,
		PrefetchHits:   s.PrefetchHits + o.PrefetchHits,
		WANWait:        s.WANWait + o.WANWait,
	}
}

// Histogram collects duration samples and reports percentiles. It is safe
// for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds a sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.sorted = false
	h.mu.Unlock()
}

// Merge folds another histogram's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	s := append([]time.Duration(nil), other.samples...)
	other.mu.Unlock()
	h.mu.Lock()
	h.samples = append(h.samples, s...)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

func (h *Histogram) ensureSortedLocked() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank. Zero with no samples.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSortedLocked()
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(h.samples) {
		rank = len(h.samples)
	}
	return h.samples[rank-1]
}

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSortedLocked()
	return h.samples[len(h.samples)-1]
}

// Summary is a formatted percentile report.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
}

// EWMA is an exponentially weighted moving average.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given weight for new samples.
func NewEWMA(alpha float64) *EWMA { return &EWMA{alpha: alpha} }

// Add folds in a sample.
func (e *EWMA) Add(v float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.init {
		e.value, e.init = v, true
		return
	}
	e.value = e.value*(1-e.alpha) + v*e.alpha
}

// Value returns the current average.
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}
