package stats

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.Summary() == "" {
		t.Fatal("summary must render")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 2 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Mean() != 2*time.Millisecond {
		t.Fatalf("mean = %v", a.Mean())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(rng.Intn(1000)) * time.Microsecond)
				if i%100 == 0 {
					_ = h.Percentile(95)
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	e.Add(10)
	if e.Value() != 10 {
		t.Fatal("first sample must seed")
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("ewma = %v", e.Value())
	}
	e.Add(15)
	if e.Value() != 15 {
		t.Fatalf("ewma = %v", e.Value())
	}
}
