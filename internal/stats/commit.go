package stats

import (
	"fmt"
	"time"

	"globaldb/internal/obs"
	"globaldb/internal/repl"
	"globaldb/internal/wal"
)

// Commit-path metric names on obs.Default (the CN side; the WAL and
// replication layers define their own wal_* / repl_* names). Together they
// describe the write path this repo optimizes: group-commit fsync
// coalescing, batched redo shipping, and pipelined 2PC.
const (
	// MetricCommitLatency is end-to-end CN commit latency (seconds).
	MetricCommitLatency = "cn_commit_seconds"
	// MetricPrepareLatency is 2PC phase-one fan-out latency.
	MetricPrepareLatency = "cn_2pc_prepare_seconds"
	// MetricDecideLatency is the decision-durability step: the synchronous
	// anchor commit that gates the client ack.
	MetricDecideLatency = "cn_2pc_decide_seconds"
	// MetricAsyncResolves counts commits whose phase two completed in the
	// background after the client was acked.
	MetricAsyncResolves = "cn_2pc_async_resolves_total"
	// MetricResolveFailures counts background resolutions that exhausted
	// retries (participants stay prepared until recovery resolves them).
	MetricResolveFailures = "cn_2pc_resolve_failures_total"
)

// CommitPathSnapshot is a point-in-time read of every write-path instrument:
// CN commit latency, 2PC phase timing, WAL group-commit effectiveness, and
// redo-shipping volume. Snapshots subtract (Sub) so callers can report the
// activity of one statement, one benchmark run, or one REPL session on the
// shared registry.
type CommitPathSnapshot struct {
	// Commits and latency quantiles from the CN commit histogram.
	Commits                          int64
	CommitP50, CommitP95, CommitMean time.Duration

	// 2PC phase counters.
	AsyncResolves   int64
	ResolveFailures int64

	// WAL group commit.
	Fsyncs         int64
	GroupCommits   int64
	GroupedCommits int64
	FsyncsSaved    int64

	// Redo shipping.
	ReplBatches      int64
	ReplRecords      int64
	ReplSendFailures int64
}

// ReadCommitPath snapshots the commit-path instruments from a registry
// (normally obs.Default).
func ReadCommitPath(reg *obs.Registry) CommitPathSnapshot {
	h := reg.Histogram(MetricCommitLatency).Snapshot()
	return CommitPathSnapshot{
		Commits:          h.Count,
		CommitP50:        h.P50(),
		CommitP95:        h.P95(),
		CommitMean:       h.Mean(),
		AsyncResolves:    reg.Counter(MetricAsyncResolves).Value(),
		ResolveFailures:  reg.Counter(MetricResolveFailures).Value(),
		Fsyncs:           reg.Counter(wal.MetricFsyncs).Value(),
		GroupCommits:     reg.Counter(wal.MetricGroupCommits).Value(),
		GroupedCommits:   reg.Counter(wal.MetricGroupedCommits).Value(),
		FsyncsSaved:      reg.Counter(wal.MetricFsyncsSaved).Value(),
		ReplBatches:      reg.Counter(repl.MetricBatches).Value(),
		ReplRecords:      reg.Counter(repl.MetricRecords).Value(),
		ReplSendFailures: reg.Counter(repl.MetricSendFailures).Value(),
	}
}

// Sub returns the counter-wise difference s - o. The latency quantiles are
// carried over from s (quantiles do not subtract; for interval quantiles use
// obs.HistSnapshot.Sub on the raw histogram).
func (s CommitPathSnapshot) Sub(o CommitPathSnapshot) CommitPathSnapshot {
	out := s
	out.Commits -= o.Commits
	out.AsyncResolves -= o.AsyncResolves
	out.ResolveFailures -= o.ResolveFailures
	out.Fsyncs -= o.Fsyncs
	out.GroupCommits -= o.GroupCommits
	out.GroupedCommits -= o.GroupedCommits
	out.FsyncsSaved -= o.FsyncsSaved
	out.ReplBatches -= o.ReplBatches
	out.ReplRecords -= o.ReplRecords
	out.ReplSendFailures -= o.ReplSendFailures
	return out
}

// FsyncsPerCommit is the headline group-commit ratio (<1 means coalescing
// is winning); zero commits reports zero.
func (s CommitPathSnapshot) FsyncsPerCommit() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Fsyncs) / float64(s.Commits)
}

// Format renders the snapshot as indented human-readable lines, one block
// per write-path layer, for the CLI stats surfaces.
func (s CommitPathSnapshot) Format() []string {
	lines := []string{
		fmt.Sprintf("commits: n=%d p50=%v p95=%v mean=%v",
			s.Commits, s.CommitP50.Round(time.Microsecond),
			s.CommitP95.Round(time.Microsecond), s.CommitMean.Round(time.Microsecond)),
		fmt.Sprintf("2pc:     async-resolved=%d resolve-failures=%d",
			s.AsyncResolves, s.ResolveFailures),
		fmt.Sprintf("wal:     fsyncs=%d (%.2f/commit) groups=%d grouped-commits=%d fsyncs-saved=%d",
			s.Fsyncs, s.FsyncsPerCommit(), s.GroupCommits, s.GroupedCommits, s.FsyncsSaved),
		fmt.Sprintf("repl:    batches=%d records=%d send-failures=%d",
			s.ReplBatches, s.ReplRecords, s.ReplSendFailures),
	}
	return lines
}
