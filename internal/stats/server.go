package stats

import "sync/atomic"

// ServerCounters aggregates the network server's connection and statement
// activity. One instance lives per server; connection goroutines update it
// concurrently.
type ServerCounters struct {
	accepted   atomic.Int64
	active     atomic.Int64
	statements atomic.Int64
	rowsOut    atomic.Int64
	canceled   atomic.Int64
	panics     atomic.Int64
}

// ConnOpened records an accepted connection.
func (c *ServerCounters) ConnOpened() {
	c.accepted.Add(1)
	c.active.Add(1)
}

// ConnClosed records a connection teardown.
func (c *ServerCounters) ConnClosed() { c.active.Add(-1) }

// ObserveStatement records one completed statement and how many result rows
// it streamed to the client.
func (c *ServerCounters) ObserveStatement(rows int64) {
	c.statements.Add(1)
	c.rowsOut.Add(rows)
}

// ObserveCancel records a stream stopped by a client cancel.
func (c *ServerCounters) ObserveCancel() { c.canceled.Add(1) }

// ObservePanic records a statement panic contained to its connection.
func (c *ServerCounters) ObservePanic() { c.panics.Add(1) }

// Snapshot returns the current totals.
func (c *ServerCounters) Snapshot() ServerSnapshot {
	return ServerSnapshot{
		Accepted:     c.accepted.Load(),
		Active:       c.active.Load(),
		Statements:   c.statements.Load(),
		RowsStreamed: c.rowsOut.Load(),
		Canceled:     c.canceled.Load(),
		Panics:       c.panics.Load(),
	}
}

// ServerSnapshot is a point-in-time read of ServerCounters.
type ServerSnapshot struct {
	// Accepted counts connections the server ever accepted.
	Accepted int64
	// Active counts connections currently open.
	Active int64
	// Statements counts statements run to completion (including failures).
	Statements int64
	// RowsStreamed counts result rows shipped to clients.
	RowsStreamed int64
	// Canceled counts streams stopped early by a client Cancel.
	Canceled int64
	// Panics counts statement panics contained to their connection.
	Panics int64
}
