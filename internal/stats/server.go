package stats

import "globaldb/internal/obs"

// Server metric names on the obs registry. ServerCounters is a typed
// facade over these instruments — the registry is the single source of
// truth, so the same numbers answer Snapshot(), the wire Stats frame,
// and the Prometheus exposition without double bookkeeping.
const (
	MetricConnsAccepted = "server_connections_accepted_total"
	MetricConnsActive   = "server_connections_active"
	MetricStatements    = "server_statements_total"
	MetricRowsStreamed  = "server_rows_streamed_total"
	MetricCanceled      = "server_statements_canceled_total"
	MetricPanics        = "server_panics_total"
)

// ServerCounters aggregates the network server's connection and statement
// activity. One instance lives per server; connection goroutines update it
// concurrently. The counters are homed on an obs.Registry (one per server,
// so parallel test servers don't share state) and updated lock-free.
type ServerCounters struct {
	accepted   *obs.Counter
	active     *obs.Gauge
	statements *obs.Counter
	rowsOut    *obs.Counter
	canceled   *obs.Counter
	panics     *obs.Counter
}

// NewServerCounters homes a ServerCounters set on reg.
func NewServerCounters(reg *obs.Registry) *ServerCounters {
	return &ServerCounters{
		accepted:   reg.Counter(MetricConnsAccepted),
		active:     reg.Gauge(MetricConnsActive),
		statements: reg.Counter(MetricStatements),
		rowsOut:    reg.Counter(MetricRowsStreamed),
		canceled:   reg.Counter(MetricCanceled),
		panics:     reg.Counter(MetricPanics),
	}
}

// ConnOpened records an accepted connection.
func (c *ServerCounters) ConnOpened() {
	c.accepted.Inc()
	c.active.Inc()
}

// ConnClosed records a connection teardown.
func (c *ServerCounters) ConnClosed() { c.active.Dec() }

// ObserveStatement records one completed statement and how many result rows
// it streamed to the client.
func (c *ServerCounters) ObserveStatement(rows int64) {
	c.statements.Inc()
	c.rowsOut.Add(rows)
}

// ObserveCancel records a stream stopped by a client cancel.
func (c *ServerCounters) ObserveCancel() { c.canceled.Inc() }

// ObservePanic records a statement panic contained to its connection.
func (c *ServerCounters) ObservePanic() { c.panics.Inc() }

// Snapshot returns the current totals.
func (c *ServerCounters) Snapshot() ServerSnapshot {
	return ServerSnapshot{
		Accepted:     c.accepted.Value(),
		Active:       c.active.Value(),
		Statements:   c.statements.Value(),
		RowsStreamed: c.rowsOut.Value(),
		Canceled:     c.canceled.Value(),
		Panics:       c.panics.Value(),
	}
}

// ServerSnapshot is a point-in-time read of ServerCounters.
type ServerSnapshot struct {
	// Accepted counts connections the server ever accepted.
	Accepted int64
	// Active counts connections currently open.
	Active int64
	// Statements counts statements run to completion (including failures).
	Statements int64
	// RowsStreamed counts result rows shipped to clients.
	RowsStreamed int64
	// Canceled counts streams stopped early by a client Cancel.
	Canceled int64
	// Panics counts statement panics contained to their connection.
	Panics int64
}
