package redo

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"globaldb/internal/ts"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{LSN: 1, Type: TypeHeapInsert, Txn: 42, TS: 0, Key: []byte("k"), Value: []byte("v")},
		{LSN: 2, Type: TypeCommit, Txn: 42, TS: ts.Timestamp(1e18)},
		{LSN: 3, Type: TypePendingCommit, Txn: 42},
		{LSN: 4, Type: TypeHeapDelete, Txn: 7, Key: []byte("gone")},
		{LSN: 5, Type: TypeHeartbeat, TS: 12345},
		{LSN: 6, Type: TypeDDL, TS: 99, Key: []byte("tbl"), Value: []byte("create")},
	}
	buf := Marshal(recs)
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, recs)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(lsn, txn uint64, tsv int64, typ uint8, key, value []byte) bool {
		r := Record{LSN: lsn, Type: Type(typ%11 + 1), Txn: txn, TS: ts.Timestamp(tsv)}
		if len(key) > 0 {
			r.Key = key
		}
		if len(value) > 0 {
			r.Value = value
		}
		got, rest, err := DecodeRecord(AppendRecord(nil, r))
		return err == nil && len(rest) == 0 && reflect.DeepEqual(got, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorruption(t *testing.T) {
	r := Record{LSN: 9, Type: TypeCommit, Txn: 1, TS: 100, Key: []byte("key"), Value: []byte("value")}
	buf := AppendRecord(nil, r)
	// Flip every byte one at a time: decode must fail or return the
	// original record (a flip in padding-free frames always breaks CRC).
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xFF
		got, _, err := DecodeRecord(mut)
		if err == nil && reflect.DeepEqual(got, r) {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	// Truncations must fail cleanly.
	for i := 0; i < len(buf); i++ {
		if _, _, err := DecodeRecord(buf[:i]); err == nil {
			t.Fatalf("truncation at %d went undetected", i)
		}
	}
}

func TestLogAppendAndRead(t *testing.T) {
	l := NewLog()
	if l.LastLSN() != 0 {
		t.Fatalf("empty log LastLSN = %d", l.LastLSN())
	}
	for i := 0; i < 10; i++ {
		lsn := l.Append(Record{Type: TypeHeartbeat, TS: ts.Timestamp(i)})
		if lsn != uint64(i+1) {
			t.Fatalf("LSN %d, want %d", lsn, i+1)
		}
	}
	recs, err := l.ReadFrom(1, 0)
	if err != nil || len(recs) != 10 {
		t.Fatalf("ReadFrom(1): %d recs, %v", len(recs), err)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("rec %d has LSN %d", i, r.LSN)
		}
	}
	recs, _ = l.ReadFrom(5, 3)
	if len(recs) != 3 || recs[0].LSN != 5 {
		t.Fatalf("bounded read: %v", recs)
	}
	recs, _ = l.ReadFrom(11, 0)
	if recs != nil {
		t.Fatalf("read past end: %v", recs)
	}
}

func TestLogAppendBatch(t *testing.T) {
	l := NewLog()
	batch := []Record{{Type: TypeHeapInsert}, {Type: TypeHeapInsert}, {Type: TypeCommit}}
	last := l.AppendBatch(batch)
	if last != 3 {
		t.Fatalf("last LSN = %d", last)
	}
	if l.AppendBatch(nil) != 3 {
		t.Fatal("empty batch must not advance LSN")
	}
	recs, _ := l.ReadFrom(1, 0)
	if len(recs) != 3 || recs[2].LSN != 3 {
		t.Fatalf("batch read: %v", recs)
	}
}

func TestLogTruncate(t *testing.T) {
	l := NewLog()
	for i := 0; i < 10; i++ {
		l.Append(Record{Type: TypeHeartbeat})
	}
	l.Truncate(5)
	if _, err := l.ReadFrom(4, 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("read of truncated LSN: %v", err)
	}
	recs, err := l.ReadFrom(5, 0)
	if err != nil || len(recs) != 6 || recs[0].LSN != 5 {
		t.Fatalf("read after truncate: %d recs err %v", len(recs), err)
	}
	// Truncating backwards or past the end must be safe.
	l.Truncate(2)
	l.Truncate(100)
	if l.LastLSN() != 10 {
		t.Fatalf("LastLSN after truncate = %d", l.LastLSN())
	}
	if lsn := l.Append(Record{Type: TypeHeartbeat}); lsn != 11 {
		t.Fatalf("append after truncate: LSN %d", lsn)
	}
}

func TestLogNotifyAppend(t *testing.T) {
	l := NewLog()
	ch := l.NotifyAppend()
	select {
	case <-ch:
		t.Fatal("notified before append")
	default:
	}
	l.Append(Record{Type: TypeHeartbeat})
	select {
	case <-ch:
	default:
		t.Fatal("append did not notify")
	}
}

func TestLogConcurrentAppendersAndTailer(t *testing.T) {
	l := NewLog()
	const appenders = 8
	const each = 500
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Append(Record{Type: TypeHeapInsert, Txn: uint64(a), Key: []byte(fmt.Sprintf("%d-%d", a, i))})
			}
		}(a)
	}
	// Tail concurrently until all records observed.
	seen := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		next := uint64(1)
		for seen < appenders*each {
			recs, err := l.ReadFrom(next, 64)
			if err != nil {
				t.Error(err)
				return
			}
			if len(recs) == 0 {
				ch := l.NotifyAppend()
				if recs, _ := l.ReadFrom(next, 64); len(recs) == 0 {
					<-ch
				}
				continue
			}
			for _, r := range recs {
				if r.LSN != next {
					t.Errorf("gap: got LSN %d want %d", r.LSN, next)
					return
				}
				next++
				seen++
			}
		}
	}()
	wg.Wait()
	<-done
	if seen != appenders*each {
		t.Fatalf("tailer saw %d records", seen)
	}
}

func BenchmarkAppendRecord(b *testing.B) {
	r := Record{LSN: 1, Type: TypeHeapUpdate, Txn: 99, TS: 1 << 60, Key: make([]byte, 24), Value: make([]byte, 128)}
	buf := make([]byte, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendRecord(buf[:0], r)
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	r := Record{LSN: 1, Type: TypeHeapUpdate, Txn: 99, TS: 1 << 60, Key: make([]byte, 24), Value: make([]byte, 128)}
	buf := AppendRecord(nil, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeRecord(buf); err != nil {
			b.Fatal(err)
		}
	}
}
