// Package redo implements GlobalDB's redo (write-ahead) log.
//
// Primary data nodes append a record for every heap mutation plus the
// transaction-control records the replication protocol of Secs. II-A and
// IV-A relies on: PENDING COMMIT (written before the commit timestamp is
// fetched), COMMIT/ABORT, the two-phase-commit PREPARE and COMMIT/ABORT
// PREPARED pair, DDL barriers, and heartbeats that advance idle replicas.
//
// Records are assigned contiguous LSNs. Shippers tail the log, batch and
// optionally compress record frames, and stream them to replicas.
package redo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"globaldb/internal/ts"
)

// Type identifies a redo record.
type Type uint8

// Record types.
const (
	// TypeHeapInsert carries a new key/value pair written by Txn.
	TypeHeapInsert Type = iota + 1
	// TypeHeapUpdate carries a replacement value for Key written by Txn.
	TypeHeapUpdate
	// TypeHeapDelete carries a deletion of Key by Txn.
	TypeHeapDelete
	// TypePendingCommit marks that Txn is about to fetch its commit
	// timestamp; replicas lock Txn's tuples until resolution (Sec. IV-A).
	TypePendingCommit
	// TypeCommit commits Txn at TS.
	TypeCommit
	// TypeAbort aborts Txn.
	TypeAbort
	// TypePrepare marks Txn prepared under two-phase commit.
	TypePrepare
	// TypeCommitPrepared commits a prepared Txn at TS.
	TypeCommitPrepared
	// TypeAbortPrepared aborts a prepared Txn.
	TypeAbortPrepared
	// TypeDDL carries a catalog mutation committed at TS; Key/Value hold
	// the encoded catalog change.
	TypeDDL
	// TypeHeartbeat advances the replica's max commit timestamp on shards
	// that receive no transactions (Sec. IV-A).
	TypeHeartbeat
)

func (t Type) String() string {
	switch t {
	case TypeHeapInsert:
		return "INSERT"
	case TypeHeapUpdate:
		return "UPDATE"
	case TypeHeapDelete:
		return "DELETE"
	case TypePendingCommit:
		return "PENDING_COMMIT"
	case TypeCommit:
		return "COMMIT"
	case TypeAbort:
		return "ABORT"
	case TypePrepare:
		return "PREPARE"
	case TypeCommitPrepared:
		return "COMMIT_PREPARED"
	case TypeAbortPrepared:
		return "ABORT_PREPARED"
	case TypeDDL:
		return "DDL"
	case TypeHeartbeat:
		return "HEARTBEAT"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Record is one redo log entry.
type Record struct {
	LSN   uint64
	Type  Type
	Txn   uint64
	TS    ts.Timestamp
	Key   []byte
	Value []byte
}

func (r Record) String() string {
	return fmt.Sprintf("lsn=%d %s txn=%d ts=%v key=%q", r.LSN, r.Type, r.Txn, r.TS, r.Key)
}

// Codec errors.
var (
	// ErrCorrupt means a frame failed its CRC or is structurally invalid.
	ErrCorrupt = errors.New("redo: corrupt record frame")
	// ErrTruncated means the log no longer retains the requested LSN.
	ErrTruncated = errors.New("redo: LSN already truncated")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord encodes r onto buf as a length-prefixed, CRC-protected frame
// and returns the extended buffer.
func AppendRecord(buf []byte, r Record) []byte {
	var payload []byte
	payload = append(payload, byte(r.Type))
	payload = binary.AppendUvarint(payload, r.LSN)
	payload = binary.AppendUvarint(payload, r.Txn)
	payload = binary.AppendVarint(payload, int64(r.TS))
	payload = binary.AppendUvarint(payload, uint64(len(r.Key)))
	payload = append(payload, r.Key...)
	payload = binary.AppendUvarint(payload, uint64(len(r.Value)))
	payload = append(payload, r.Value...)

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeRecord parses one frame from buf, returning the record and the
// remaining bytes.
func DecodeRecord(buf []byte) (Record, []byte, error) {
	if len(buf) < 8 {
		return Record{}, nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	want := binary.LittleEndian.Uint32(buf[4:8])
	if len(buf) < 8+int(n) {
		return Record{}, nil, fmt.Errorf("%w: short payload", ErrCorrupt)
	}
	payload := buf[8 : 8+n]
	if crc32.Checksum(payload, crcTable) != want {
		return Record{}, nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	rest := buf[8+n:]

	var r Record
	if len(payload) < 1 {
		return Record{}, nil, ErrCorrupt
	}
	r.Type = Type(payload[0])
	p := payload[1:]
	var read int
	if r.LSN, read = binary.Uvarint(p); read <= 0 {
		return Record{}, nil, ErrCorrupt
	}
	p = p[read:]
	if r.Txn, read = binary.Uvarint(p); read <= 0 {
		return Record{}, nil, ErrCorrupt
	}
	p = p[read:]
	tsv, read := binary.Varint(p)
	if read <= 0 {
		return Record{}, nil, ErrCorrupt
	}
	r.TS = ts.Timestamp(tsv)
	p = p[read:]
	klen, read := binary.Uvarint(p)
	if read <= 0 || uint64(len(p)-read) < klen {
		return Record{}, nil, ErrCorrupt
	}
	p = p[read:]
	if klen > 0 {
		r.Key = append([]byte(nil), p[:klen]...)
	}
	p = p[klen:]
	vlen, read := binary.Uvarint(p)
	if read <= 0 || uint64(len(p)-read) < vlen {
		return Record{}, nil, ErrCorrupt
	}
	p = p[read:]
	if vlen > 0 {
		r.Value = append([]byte(nil), p[:vlen]...)
	}
	if uint64(len(p)) != vlen {
		return Record{}, nil, fmt.Errorf("%w: trailing bytes in frame", ErrCorrupt)
	}
	return r, rest, nil
}

// Marshal encodes a batch of records into one byte stream.
func Marshal(recs []Record) []byte {
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	return buf
}

// Unmarshal decodes a stream produced by Marshal.
func Unmarshal(buf []byte) ([]Record, error) {
	var out []Record
	for len(buf) > 0 {
		r, rest, err := DecodeRecord(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		buf = rest
	}
	return out, nil
}

// Log is an in-memory append-only redo log with LSN assignment, tailing, and
// truncation. It stands in for GaussDB's on-disk XLOG: the replication
// protocol only needs ordered records with stable LSNs.
type Log struct {
	mu       sync.Mutex
	recs     []Record
	startLSN uint64 // LSN of recs[0]
	nextLSN  uint64
	waiters  []chan struct{}

	bytesAppended int64
}

// NewLog returns an empty log whose first record will get LSN 1.
func NewLog() *Log {
	return &Log{startLSN: 1, nextLSN: 1}
}

// Append assigns the next LSN to r and appends it, waking tailing readers.
func (l *Log) Append(r Record) uint64 {
	l.mu.Lock()
	r.LSN = l.nextLSN
	l.nextLSN++
	l.recs = append(l.recs, r)
	l.bytesAppended += int64(16 + len(r.Key) + len(r.Value))
	waiters := l.waiters
	l.waiters = nil
	l.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
	return r.LSN
}

// AppendBatch appends several records atomically (one lock acquisition),
// returning the LSN of the last record.
func (l *Log) AppendBatch(recs []Record) uint64 {
	if len(recs) == 0 {
		return l.LastLSN()
	}
	l.mu.Lock()
	for i := range recs {
		recs[i].LSN = l.nextLSN
		l.nextLSN++
		l.recs = append(l.recs, recs[i])
		l.bytesAppended += int64(16 + len(recs[i].Key) + len(recs[i].Value))
	}
	last := l.nextLSN - 1
	waiters := l.waiters
	l.waiters = nil
	l.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
	return last
}

// LastLSN returns the LSN of the most recent record (0 when empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// BytesAppended returns the approximate total payload volume appended.
func (l *Log) BytesAppended() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesAppended
}

// ReadFrom returns up to max records starting at LSN from. It returns
// ErrTruncated if from precedes the retained prefix. An empty result means
// the log has no records at or beyond from yet.
func (l *Log) ReadFrom(from uint64, max int) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.startLSN {
		return nil, fmt.Errorf("%w: want %d, retained from %d", ErrTruncated, from, l.startLSN)
	}
	if from >= l.nextLSN {
		return nil, nil
	}
	i := int(from - l.startLSN)
	j := len(l.recs)
	if max > 0 && j-i > max {
		j = i + max
	}
	out := make([]Record, j-i)
	copy(out, l.recs[i:j])
	return out, nil
}

// NotifyAppend returns a channel closed at the next append. Callers check
// for new records, then wait on the channel, then re-check — the classic
// condition-variable pattern without lost wakeups.
func (l *Log) NotifyAppend() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	ch := make(chan struct{})
	l.waiters = append(l.waiters, ch)
	return ch
}

// Truncate drops records with LSN < before, bounding memory. Replication
// managers call it once every replica has acknowledged the prefix.
func (l *Log) Truncate(before uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if before <= l.startLSN {
		return
	}
	if before > l.nextLSN {
		before = l.nextLSN
	}
	drop := int(before - l.startLSN)
	if drop > len(l.recs) {
		drop = len(l.recs)
	}
	l.recs = append([]Record(nil), l.recs[drop:]...)
	l.startLSN = before
}
