package harness

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRunCountsOps(t *testing.T) {
	r := Run(context.Background(), Options{Name: "noop", Clients: 4, Duration: 50 * time.Millisecond},
		func(ctx context.Context, client int) error {
			time.Sleep(time.Millisecond)
			return nil
		})
	if r.Ops == 0 {
		t.Fatal("no ops measured")
	}
	if r.Errors != 0 {
		t.Fatalf("errors = %d", r.Errors)
	}
	if r.Throughput <= 0 {
		t.Fatal("throughput must be positive")
	}
	// 4 clients, 1ms per op, 50ms window: roughly 200 ops; allow slack.
	if r.Ops < 50 || r.Ops > 400 {
		t.Fatalf("ops = %d, outside plausible range", r.Ops)
	}
	if r.P50 < 500*time.Microsecond {
		t.Fatalf("p50 = %v", r.P50)
	}
}

func TestRunCountsErrors(t *testing.T) {
	fail := errors.New("abort")
	n := 0
	r := Run(context.Background(), Options{Clients: 1, Duration: 20 * time.Millisecond},
		func(ctx context.Context, client int) error {
			n++
			time.Sleep(100 * time.Microsecond)
			if n%2 == 0 {
				return fail
			}
			return nil
		})
	if r.Errors == 0 {
		t.Fatal("errors must be counted")
	}
	if r.Ops == 0 {
		t.Fatal("successes must be counted")
	}
}

func TestWarmupNotMeasured(t *testing.T) {
	var calls int64
	r := Run(context.Background(), Options{Clients: 1, Duration: 20 * time.Millisecond, Warmup: 20 * time.Millisecond},
		func(ctx context.Context, client int) error {
			calls++
			time.Sleep(time.Millisecond)
			return nil
		})
	// Total calls span warmup+measure; measured ops must be roughly half.
	if r.Ops >= calls {
		t.Fatalf("measured %d of %d calls; warmup leaked into measurement", r.Ops, calls)
	}
}

func TestRunHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	Run(ctx, Options{Clients: 2, Duration: 10 * time.Second},
		func(ctx context.Context, client int) error {
			time.Sleep(time.Millisecond)
			return nil
		})
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancelled run did not stop early")
	}
}

func TestSeriesTable(t *testing.T) {
	s := Series{Label: "fig", Results: []Result{{Name: "row", Ops: 10, Throughput: 100}}}
	out := s.Table()
	if !strings.Contains(out, "fig") || !strings.Contains(out, "row") {
		t.Fatalf("table output: %q", out)
	}
}
