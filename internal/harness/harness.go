// Package harness drives benchmark workloads against a GlobalDB cluster:
// client goroutines ("terminals") execute a workload function in a closed
// loop for a fixed duration, and the harness reports throughput and latency
// percentiles — the measurements behind every figure in the paper's
// evaluation (Sec. V).
package harness

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"globaldb/internal/stats"
)

// Workload executes one operation for one client. Returning an error counts
// as a failed operation (e.g. an aborted transaction a real client would
// retry).
type Workload func(ctx context.Context, client int) error

// Result summarizes a run.
type Result struct {
	// Name labels the run.
	Name string
	// Ops is the number of successful operations.
	Ops int64
	// Errors counts failed operations.
	Errors int64
	// Elapsed is the measured wall time.
	Elapsed time.Duration
	// Throughput is Ops per second of wall time.
	Throughput float64
	// P50, P95 and P99 are latency percentiles of successful operations.
	P50, P95, P99 time.Duration
	// Mean is the mean latency.
	Mean time.Duration
}

// String renders the result as a report row.
func (r Result) String() string {
	return fmt.Sprintf("%-28s %10.0f op/s  ops=%-8d err=%-6d p50=%-10v p95=%-10v p99=%v",
		r.Name, r.Throughput, r.Ops, r.Errors, r.P50, r.P95, r.P99)
}

// Options configure a run.
type Options struct {
	// Name labels the result.
	Name string
	// Clients is the number of concurrent terminals.
	Clients int
	// Duration is the measured window after warmup.
	Duration time.Duration
	// Warmup runs the workload without measuring, letting caches, RCP and
	// replication settle.
	Warmup time.Duration
}

// Run executes the workload and returns its result.
func Run(ctx context.Context, opts Options, w Workload) Result {
	if opts.Clients <= 0 {
		opts.Clients = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}

	var measuring atomic.Bool
	var stop atomic.Bool
	var ops, errs atomic.Int64
	hist := stats.NewHistogram()

	// Clients observe a stop flag rather than a canceled context: a real
	// terminal finishes its in-flight transaction instead of abandoning a
	// half-committed one, so runs never leak pending or prepared intents.
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for !stop.Load() && ctx.Err() == nil {
				start := time.Now()
				err := w(ctx, c)
				if !measuring.Load() {
					continue
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				ops.Add(1)
				hist.Record(time.Since(start))
			}
		}(c)
	}

	if opts.Warmup > 0 {
		sleepCtx(ctx, opts.Warmup)
	}
	measuring.Store(true)
	begin := time.Now()
	sleepCtx(ctx, opts.Duration)
	measuring.Store(false)
	elapsed := time.Since(begin)
	stop.Store(true)
	wg.Wait()

	r := Result{
		Name:    opts.Name,
		Ops:     ops.Load(),
		Errors:  errs.Load(),
		Elapsed: elapsed,
		P50:     hist.Percentile(50),
		P95:     hist.Percentile(95),
		P99:     hist.Percentile(99),
		Mean:    hist.Mean(),
	}
	if elapsed > 0 {
		r.Throughput = float64(r.Ops) / elapsed.Seconds()
	}
	return r
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Series is a labeled sequence of results (one figure line).
type Series struct {
	Label   string
	Results []Result
}

// Table renders paper-style output: one row per result.
func (s Series) Table() string {
	out := fmt.Sprintf("== %s ==\n", s.Label)
	for _, r := range s.Results {
		out += r.String() + "\n"
	}
	return out
}
