package tpcc

import (
	"context"
	"fmt"
	"time"

	"globaldb"
)

// abortOn aborts tx and returns err (helper for the error-path boilerplate).
func abortOn(ctx context.Context, tx *globaldb.Tx, err error) error {
	tx.Abort(ctx)
	return err
}

// pickWarehouse returns the transaction's target warehouse: the home
// warehouse, or a remote one RemotePct% of the time.
func (d *Driver) pickWarehouse(rng *lockedRand, home int64) int64 {
	if d.cfg.Warehouses > 1 && rng.Intn(100) < d.cfg.RemotePct {
		for {
			w := int64(1 + rng.Intn(d.cfg.Warehouses))
			if w != home {
				return w
			}
		}
	}
	return home
}

// NewOrder runs the TPC-C New-Order transaction for a terminal homed at w.
func (d *Driver) NewOrder(ctx context.Context, client int, home int64) error {
	rng := d.rng(client)
	w := d.pickWarehouse(rng, home)
	did := int64(1 + rng.Intn(d.cfg.Districts))
	cid := int64(1 + rng.Intn(d.cfg.CustomersPerDistrict))

	sess, err := d.session(d.HomeRegion(home))
	if err != nil {
		return err
	}
	tx, err := sess.Begin(ctx)
	if err != nil {
		return err
	}

	wRow, found, err := tx.Get(ctx, TWarehouse, []any{w})
	if err != nil || !found {
		return abortOn(ctx, tx, fmt.Errorf("tpcc: warehouse %d: %v found=%v", w, err, found))
	}
	dRow, found, err := tx.Get(ctx, TDistrict, []any{w, did})
	if err != nil || !found {
		return abortOn(ctx, tx, fmt.Errorf("tpcc: district: %v found=%v", err, found))
	}
	if _, found, err = tx.Get(ctx, TCustomer, []any{w, did, cid}); err != nil || !found {
		return abortOn(ctx, tx, fmt.Errorf("tpcc: customer: %v found=%v", err, found))
	}

	oid := dRow[5].(int64)
	dRow[5] = oid + 1
	if err := tx.Update(ctx, TDistrict, dRow); err != nil {
		return abortOn(ctx, tx, err)
	}

	olCnt := int64(5 + rng.Intn(11))
	if err := tx.Insert(ctx, TOrders, globaldb.Row{w, did, oid, cid, int64(0), olCnt, time.Now().UnixNano()}); err != nil {
		return abortOn(ctx, tx, err)
	}
	if err := tx.Insert(ctx, TNewOrder, globaldb.Row{w, did, oid}); err != nil {
		return abortOn(ctx, tx, err)
	}

	wTax := wRow[2].(float64)
	dTax := dRow[3].(float64)
	for ol := int64(1); ol <= olCnt; ol++ {
		iid := int64(1 + rng.Intn(d.cfg.Items))
		supplyW := w
		// Per spec ~1% of lines come from a remote warehouse; folded into
		// the driver-level remote percentage for the paper's locality
		// sweeps.
		if d.cfg.Warehouses > 1 && rng.Intn(100) < d.cfg.RemotePct {
			supplyW = int64(1 + rng.Intn(d.cfg.Warehouses))
		}
		iRow, found, err := tx.Get(ctx, TItem, []any{supplyW, iid})
		if err != nil || !found {
			return abortOn(ctx, tx, fmt.Errorf("tpcc: item: %v found=%v", err, found))
		}
		sRow, found, err := tx.Get(ctx, TStock, []any{supplyW, iid})
		if err != nil || !found {
			return abortOn(ctx, tx, fmt.Errorf("tpcc: stock: %v found=%v", err, found))
		}
		qty := int64(1 + rng.Intn(10))
		sQty := sRow[2].(int64)
		if sQty >= qty+10 {
			sRow[2] = sQty - qty
		} else {
			sRow[2] = sQty - qty + 91
		}
		sRow[3] = sRow[3].(int64) + qty
		sRow[4] = sRow[4].(int64) + 1
		if supplyW != w {
			sRow[5] = sRow[5].(int64) + 1
		}
		if err := tx.Update(ctx, TStock, sRow); err != nil {
			return abortOn(ctx, tx, err)
		}
		amount := float64(qty) * iRow[3].(float64) * (1 + wTax + dTax)
		if err := tx.Insert(ctx, TOrderLine, globaldb.Row{w, did, oid, ol, iid, supplyW, qty, amount}); err != nil {
			return abortOn(ctx, tx, err)
		}
	}
	return tx.Commit(ctx)
}

// Payment runs the TPC-C Payment transaction.
func (d *Driver) Payment(ctx context.Context, client int, home int64) error {
	rng := d.rng(client)
	w := home
	did := int64(1 + rng.Intn(d.cfg.Districts))
	// 15% of payments are for a customer of a remote warehouse (folded
	// into RemotePct for the locality sweeps).
	cw, cd := w, did
	if d.cfg.Warehouses > 1 && rng.Intn(100) < d.cfg.RemotePct {
		cw = int64(1 + rng.Intn(d.cfg.Warehouses))
		cd = int64(1 + rng.Intn(d.cfg.Districts))
	}
	cid := int64(1 + rng.Intn(d.cfg.CustomersPerDistrict))
	amount := 1 + rng.Float64()*4999

	sess, err := d.session(d.HomeRegion(home))
	if err != nil {
		return err
	}
	tx, err := sess.Begin(ctx)
	if err != nil {
		return err
	}

	wRow, found, err := tx.Get(ctx, TWarehouse, []any{w})
	if err != nil || !found {
		return abortOn(ctx, tx, fmt.Errorf("tpcc: warehouse: %v found=%v", err, found))
	}
	wRow[3] = wRow[3].(float64) + amount
	if err := tx.Update(ctx, TWarehouse, wRow); err != nil {
		return abortOn(ctx, tx, err)
	}

	dRow, found, err := tx.Get(ctx, TDistrict, []any{w, did})
	if err != nil || !found {
		return abortOn(ctx, tx, fmt.Errorf("tpcc: district: %v found=%v", err, found))
	}
	dRow[4] = dRow[4].(float64) + amount
	if err := tx.Update(ctx, TDistrict, dRow); err != nil {
		return abortOn(ctx, tx, err)
	}

	cRow, found, err := tx.Get(ctx, TCustomer, []any{cw, cd, cid})
	if err != nil || !found {
		return abortOn(ctx, tx, fmt.Errorf("tpcc: customer: %v found=%v", err, found))
	}
	cRow[5] = cRow[5].(float64) - amount
	cRow[6] = cRow[6].(float64) + amount
	cRow[7] = cRow[7].(int64) + 1
	if err := tx.Update(ctx, TCustomer, cRow); err != nil {
		return abortOn(ctx, tx, err)
	}

	seq := d.histSeq.Add(1)
	if err := tx.Insert(ctx, THistory, globaldb.Row{w, seq, did, cid, amount, "payment"}); err != nil {
		return abortOn(ctx, tx, err)
	}
	return tx.Commit(ctx)
}

// OrderStatus runs the read-only Order-Status transaction through the
// read-write path (primary reads at a fresh snapshot). The paper's
// baseline runs read-only work this way.
func (d *Driver) OrderStatus(ctx context.Context, client int, home int64) error {
	rng := d.rng(client)
	sess, err := d.session(d.HomeRegion(home))
	if err != nil {
		return err
	}
	tx, err := sess.Begin(ctx)
	if err != nil {
		return err
	}
	if err := d.orderStatusBody(ctx, rng, txReader{tx}, home); err != nil {
		return abortOn(ctx, tx, err)
	}
	return tx.Commit(ctx)
}

// StockLevel runs the read-only Stock-Level transaction on the primary.
func (d *Driver) StockLevel(ctx context.Context, client int, home int64) error {
	rng := d.rng(client)
	sess, err := d.session(d.HomeRegion(home))
	if err != nil {
		return err
	}
	tx, err := sess.Begin(ctx)
	if err != nil {
		return err
	}
	if err := d.stockLevelBody(ctx, rng, txReader{tx}, home); err != nil {
		return abortOn(ctx, tx, err)
	}
	return tx.Commit(ctx)
}

// Delivery runs the TPC-C Delivery transaction: for each district, deliver
// the oldest undelivered order.
func (d *Driver) Delivery(ctx context.Context, client int, home int64) error {
	rng := d.rng(client)
	carrier := int64(1 + rng.Intn(10))
	sess, err := d.session(d.HomeRegion(home))
	if err != nil {
		return err
	}
	tx, err := sess.Begin(ctx)
	if err != nil {
		return err
	}
	for dd := 1; dd <= d.cfg.Districts; dd++ {
		did := int64(dd)
		noRows, err := tx.ScanPK(ctx, TNewOrder, []any{home, did}, 1)
		if err != nil {
			return abortOn(ctx, tx, err)
		}
		if len(noRows) == 0 {
			continue // no undelivered order in this district
		}
		oid := noRows[0][2].(int64)
		if err := tx.Delete(ctx, TNewOrder, []any{home, did, oid}); err != nil {
			return abortOn(ctx, tx, err)
		}
		oRow, found, err := tx.Get(ctx, TOrders, []any{home, did, oid})
		if err != nil || !found {
			return abortOn(ctx, tx, fmt.Errorf("tpcc: order %d: %v found=%v", oid, err, found))
		}
		oRow[4] = carrier
		if err := tx.Update(ctx, TOrders, oRow); err != nil {
			return abortOn(ctx, tx, err)
		}
		lines, err := tx.ScanPK(ctx, TOrderLine, []any{home, did, oid}, 0)
		if err != nil {
			return abortOn(ctx, tx, err)
		}
		total := 0.0
		for _, l := range lines {
			total += l[7].(float64)
		}
		cid := oRow[3].(int64)
		cRow, found, err := tx.Get(ctx, TCustomer, []any{home, did, cid})
		if err != nil || !found {
			return abortOn(ctx, tx, fmt.Errorf("tpcc: customer %d: %v found=%v", cid, err, found))
		}
		cRow[5] = cRow[5].(float64) + total
		cRow[8] = cRow[8].(int64) + 1
		if err := tx.Update(ctx, TCustomer, cRow); err != nil {
			return abortOn(ctx, tx, err)
		}
	}
	return tx.Commit(ctx)
}

// reader abstracts the read API shared by Tx and Query so the read-only
// transaction bodies run identically on primaries and replicas.
type reader interface {
	Get(ctx context.Context, table string, pk []any) (globaldb.Row, bool, error)
	ScanPK(ctx context.Context, table string, prefix []any, limit int) ([]globaldb.Row, error)
	ScanIndex(ctx context.Context, table, index string, prefix []any, limit int) ([]globaldb.Row, error)
}

type txReader struct{ tx *globaldb.Tx }

func (r txReader) Get(ctx context.Context, t string, pk []any) (globaldb.Row, bool, error) {
	return r.tx.Get(ctx, t, pk)
}
func (r txReader) ScanPK(ctx context.Context, t string, p []any, l int) ([]globaldb.Row, error) {
	return r.tx.ScanPK(ctx, t, p, l)
}
func (r txReader) ScanIndex(ctx context.Context, t, ix string, p []any, l int) ([]globaldb.Row, error) {
	return r.tx.ScanIndex(ctx, t, ix, p, l)
}

type queryReader struct{ q *globaldb.Query }

func (r queryReader) Get(ctx context.Context, t string, pk []any) (globaldb.Row, bool, error) {
	return r.q.Get(ctx, t, pk)
}
func (r queryReader) ScanPK(ctx context.Context, t string, p []any, l int) ([]globaldb.Row, error) {
	return r.q.ScanPK(ctx, t, p, l)
}
func (r queryReader) ScanIndex(ctx context.Context, t, ix string, p []any, l int) ([]globaldb.Row, error) {
	return r.q.ScanIndex(ctx, t, ix, p, l)
}

// orderStatusBody: find a customer (60% by last name via index, 40% by id),
// their most recent order, and its order lines.
func (d *Driver) orderStatusBody(ctx context.Context, rng *lockedRand, r reader, w int64) error {
	did := int64(1 + rng.Intn(d.cfg.Districts))
	var cid int64
	if rng.Intn(100) < 60 {
		last := LastName(1 + rng.Intn(d.cfg.CustomersPerDistrict)%1000)
		rows, err := r.ScanIndex(ctx, TCustomer, "customer_name", []any{w, did, last}, 0)
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			return nil // no such name at this scale; still a valid query
		}
		cid = rows[len(rows)/2][2].(int64)
	} else {
		cid = int64(1 + rng.Intn(d.cfg.CustomersPerDistrict))
		if _, _, err := r.Get(ctx, TCustomer, []any{w, did, cid}); err != nil {
			return err
		}
	}
	orders, err := r.ScanIndex(ctx, TOrders, "orders_customer", []any{w, did, cid}, 0)
	if err != nil {
		return err
	}
	if len(orders) == 0 {
		return nil
	}
	lastOrder := orders[len(orders)-1]
	_, err = r.ScanPK(ctx, TOrderLine, []any{w, did, lastOrder[2].(int64)}, 0)
	return err
}

// stockLevelBody: examine the last 20 orders' lines in a district and count
// stock entries below a threshold.
func (d *Driver) stockLevelBody(ctx context.Context, rng *lockedRand, r reader, w int64) error {
	did := int64(1 + rng.Intn(d.cfg.Districts))
	dRow, found, err := r.Get(ctx, TDistrict, []any{w, did})
	if err != nil || !found {
		return fmt.Errorf("tpcc: district: %v found=%v", err, found)
	}
	nextO := dRow[5].(int64)
	lowO := nextO - 20
	if lowO < 1 {
		lowO = 1
	}
	threshold := int64(10 + rng.Intn(11))
	seen := map[int64]bool{}
	low := 0
	for oid := lowO; oid < nextO; oid++ {
		lines, err := r.ScanPK(ctx, TOrderLine, []any{w, did, oid}, 0)
		if err != nil {
			return err
		}
		for _, l := range lines {
			iid := l[4].(int64)
			supplyW := l[5].(int64)
			if seen[iid] {
				continue
			}
			seen[iid] = true
			sRow, found, err := r.Get(ctx, TStock, []any{supplyW, iid})
			if err != nil {
				return err
			}
			if found && sRow[2].(int64) < threshold {
				low++
			}
		}
	}
	return nil
}

// Terminal returns the full-mix workload function for a client: 45%
// New-Order, 43% Payment, 4% each Order-Status, Delivery, Stock-Level.
func (d *Driver) Terminal(client int) func(ctx context.Context) error {
	return d.TerminalAt(client, d.HomeWarehouse(client))
}

// TerminalAt is Terminal with an explicit home warehouse, letting
// experiments bind terminals to specific placements (e.g. warehouses not
// co-located with the GTM server).
func (d *Driver) TerminalAt(client int, home int64) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		rng := d.rng(client)
		switch x := rng.Intn(100); {
		case x < 45:
			return d.NewOrder(ctx, client, home)
		case x < 88:
			return d.Payment(ctx, client, home)
		case x < 92:
			return d.OrderStatus(ctx, client, home)
		case x < 96:
			return d.Delivery(ctx, client, home)
		default:
			return d.StockLevel(ctx, client, home)
		}
	}
}

// ReadOnlyTerminal returns the paper's modified read-only TPC-C (Sec. V-B):
// only Order-Status and Stock-Level, with multiShardPct% of queries
// touching a warehouse other than the terminal's home. When useROR is true
// the queries run through the read-on-replica path with the given staleness
// bound; otherwise they read primaries through regular transactions (the
// baseline).
func (d *Driver) ReadOnlyTerminal(client int, multiShardPct int, useROR bool, bound time.Duration) func(ctx context.Context) error {
	home := d.HomeWarehouse(client)
	return func(ctx context.Context) error {
		rng := d.rng(client)
		w := home
		if d.cfg.Warehouses > 1 && rng.Intn(100) < multiShardPct {
			w = int64(1 + rng.Intn(d.cfg.Warehouses))
		}
		sess, err := d.session(d.HomeRegion(home))
		if err != nil {
			return err
		}
		var r reader
		var finish func() error
		if useROR {
			q, err := sess.ReadOnly(ctx, bound, TCustomer, TOrders, TOrderLine, TDistrict, TStock)
			if err != nil {
				return err
			}
			r = queryReader{q}
			finish = func() error { return nil }
		} else {
			tx, err := sess.Begin(ctx)
			if err != nil {
				return err
			}
			r = txReader{tx}
			finish = func() error { return tx.Commit(ctx) }
		}
		if rng.Intn(100) < 50 {
			err = d.orderStatusBody(ctx, rng, r, w)
		} else {
			err = d.stockLevelBody(ctx, rng, r, w)
		}
		if err != nil {
			if t, ok := r.(txReader); ok {
				t.tx.Abort(ctx)
			}
			return err
		}
		return finish()
	}
}

// ConsistencyCheck verifies cross-table invariants after a run: for every
// district, d_next_o_id-1 equals the maximum order ID, and order-line
// counts match o_ol_cnt — catching lost updates or torn multi-row commits.
func (d *Driver) ConsistencyCheck(ctx context.Context) error {
	sess, err := d.session(d.HomeRegion(1))
	if err != nil {
		return err
	}
	for w := int64(1); w <= int64(d.cfg.Warehouses); w++ {
		tx, err := sess.Begin(ctx)
		if err != nil {
			return err
		}
		for dd := int64(1); dd <= int64(d.cfg.Districts); dd++ {
			dRow, found, err := tx.Get(ctx, TDistrict, []any{w, dd})
			if err != nil || !found {
				return abortOn(ctx, tx, fmt.Errorf("tpcc: check district %d/%d: %v", w, dd, err))
			}
			nextO := dRow[5].(int64)
			orders, err := tx.ScanPK(ctx, TOrders, []any{w, dd}, 0)
			if err != nil {
				return abortOn(ctx, tx, err)
			}
			var maxO int64
			for _, o := range orders {
				if oid := o[2].(int64); oid > maxO {
					maxO = oid
				}
				lines, err := tx.ScanPK(ctx, TOrderLine, []any{w, dd, o[2].(int64)}, 0)
				if err != nil {
					return abortOn(ctx, tx, err)
				}
				if int64(len(lines)) != o[5].(int64) {
					return abortOn(ctx, tx, fmt.Errorf("tpcc: order %v has %d lines, o_ol_cnt=%v", o[2], len(lines), o[5]))
				}
			}
			if maxO != nextO-1 {
				return abortOn(ctx, tx, fmt.Errorf("tpcc: district %d/%d next_o_id=%d but max order=%d", w, dd, nextO, maxO))
			}
		}
		if err := tx.Commit(ctx); err != nil {
			return err
		}
	}
	return nil
}
