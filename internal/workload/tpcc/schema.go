// Package tpcc implements the TPC-C benchmark against GlobalDB's public
// API: the nine-table schema, a scaled loader, all five transaction types
// with the standard 45/43/4/4/4 mix, and the paper's read-only variant
// (Order-Status + Stock-Level with a configurable multi-shard fraction,
// Sec. V-B).
//
// Tables are distributed by warehouse ID, as in the paper's sharded
// deployment. The ITEM table is denormalized per warehouse (a common
// device in sharded TPC-C evaluations) so that a 100%-local configuration
// really is local — the knob Sec. V-A uses to isolate transaction
// management and log shipping costs.
package tpcc

import "globaldb"

// Table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	THistory   = "history"
	TNewOrder  = "new_order"
	TOrders    = "orders"
	TOrderLine = "order_line"
	TItem      = "item"
	TStock     = "stock"
)

// AllTables lists every TPC-C table name.
var AllTables = []string{
	TWarehouse, TDistrict, TCustomer, THistory, TNewOrder,
	TOrders, TOrderLine, TItem, TStock,
}

// Schemas returns the nine TPC-C table schemas. IDs are assigned by the
// catalog at creation time.
func Schemas() []*globaldb.Schema {
	return []*globaldb.Schema{
		{
			Name: TWarehouse,
			Columns: []globaldb.Column{
				{Name: "w_id", Kind: globaldb.Int64},
				{Name: "w_name", Kind: globaldb.String},
				{Name: "w_tax", Kind: globaldb.Float64},
				{Name: "w_ytd", Kind: globaldb.Float64},
			},
			PK: []int{0},
		},
		{
			Name: TDistrict,
			Columns: []globaldb.Column{
				{Name: "d_w_id", Kind: globaldb.Int64},
				{Name: "d_id", Kind: globaldb.Int64},
				{Name: "d_name", Kind: globaldb.String},
				{Name: "d_tax", Kind: globaldb.Float64},
				{Name: "d_ytd", Kind: globaldb.Float64},
				{Name: "d_next_o_id", Kind: globaldb.Int64},
			},
			PK: []int{0, 1},
		},
		{
			Name: TCustomer,
			Columns: []globaldb.Column{
				{Name: "c_w_id", Kind: globaldb.Int64},
				{Name: "c_d_id", Kind: globaldb.Int64},
				{Name: "c_id", Kind: globaldb.Int64},
				{Name: "c_last", Kind: globaldb.String},
				{Name: "c_first", Kind: globaldb.String},
				{Name: "c_balance", Kind: globaldb.Float64},
				{Name: "c_ytd_payment", Kind: globaldb.Float64},
				{Name: "c_payment_cnt", Kind: globaldb.Int64},
				{Name: "c_delivery_cnt", Kind: globaldb.Int64},
				{Name: "c_data", Kind: globaldb.String},
			},
			PK: []int{0, 1, 2},
			Indexes: []globaldb.Index{
				{Name: "customer_name", Cols: []int{0, 1, 3}},
			},
		},
		{
			Name: THistory,
			Columns: []globaldb.Column{
				{Name: "h_w_id", Kind: globaldb.Int64},
				{Name: "h_seq", Kind: globaldb.Int64},
				{Name: "h_d_id", Kind: globaldb.Int64},
				{Name: "h_c_id", Kind: globaldb.Int64},
				{Name: "h_amount", Kind: globaldb.Float64},
				{Name: "h_data", Kind: globaldb.String},
			},
			PK: []int{0, 1},
		},
		{
			Name: TNewOrder,
			Columns: []globaldb.Column{
				{Name: "no_w_id", Kind: globaldb.Int64},
				{Name: "no_d_id", Kind: globaldb.Int64},
				{Name: "no_o_id", Kind: globaldb.Int64},
			},
			PK: []int{0, 1, 2},
		},
		{
			Name: TOrders,
			Columns: []globaldb.Column{
				{Name: "o_w_id", Kind: globaldb.Int64},
				{Name: "o_d_id", Kind: globaldb.Int64},
				{Name: "o_id", Kind: globaldb.Int64},
				{Name: "o_c_id", Kind: globaldb.Int64},
				{Name: "o_carrier_id", Kind: globaldb.Int64},
				{Name: "o_ol_cnt", Kind: globaldb.Int64},
				{Name: "o_entry_d", Kind: globaldb.Int64},
			},
			PK: []int{0, 1, 2},
			Indexes: []globaldb.Index{
				{Name: "orders_customer", Cols: []int{0, 1, 3}},
			},
		},
		{
			Name: TOrderLine,
			Columns: []globaldb.Column{
				{Name: "ol_w_id", Kind: globaldb.Int64},
				{Name: "ol_d_id", Kind: globaldb.Int64},
				{Name: "ol_o_id", Kind: globaldb.Int64},
				{Name: "ol_number", Kind: globaldb.Int64},
				{Name: "ol_i_id", Kind: globaldb.Int64},
				{Name: "ol_supply_w_id", Kind: globaldb.Int64},
				{Name: "ol_quantity", Kind: globaldb.Int64},
				{Name: "ol_amount", Kind: globaldb.Float64},
			},
			PK: []int{0, 1, 2, 3},
		},
		{
			Name: TItem,
			Columns: []globaldb.Column{
				{Name: "i_w_id", Kind: globaldb.Int64}, // per-warehouse copy
				{Name: "i_id", Kind: globaldb.Int64},
				{Name: "i_name", Kind: globaldb.String},
				{Name: "i_price", Kind: globaldb.Float64},
			},
			PK: []int{0, 1},
		},
		{
			Name: TStock,
			Columns: []globaldb.Column{
				{Name: "s_w_id", Kind: globaldb.Int64},
				{Name: "s_i_id", Kind: globaldb.Int64},
				{Name: "s_quantity", Kind: globaldb.Int64},
				{Name: "s_ytd", Kind: globaldb.Int64},
				{Name: "s_order_cnt", Kind: globaldb.Int64},
				{Name: "s_remote_cnt", Kind: globaldb.Int64},
			},
			PK: []int{0, 1},
		},
	}
}

// lastNameSyllables are the TPC-C 4.3.2.3 name parts.
var lastNameSyllables = []string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName builds the spec's customer last name for a number in [0,999].
func LastName(num int) string {
	return lastNameSyllables[num/100%10] + lastNameSyllables[num/10%10] + lastNameSyllables[num%10]
}
