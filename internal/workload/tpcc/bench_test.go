package tpcc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"globaldb"
	"globaldb/internal/obs"
	"globaldb/internal/stats"
	"globaldb/internal/wal"
)

// benchConfig is the TPC-C scale for the throughput benchmarks: one home
// warehouse per terminal so the mix conflicts on districts, not on
// everything, and a 10% remote rate so a realistic slice of New-Orders and
// Payments run 2PC across the three-city topology.
func benchConfig(terminals int) Config {
	return Config{
		Warehouses:               terminals,
		Districts:                4,
		CustomersPerDistrict:     12,
		Items:                    24,
		InitialOrdersPerDistrict: 4,
		RemotePct:                10,
		Seed:                     42,
	}
}

// benchFsyncDelay simulates device sync latency. The CI tmpfs makes real
// fsyncs invisibly fast; commit-path comparisons need the cost the paper's
// hardware pays.
const benchFsyncDelay = 300 * time.Microsecond

// benchTerminals is the headline terminal count. The paper drives 600
// terminals; 24 is enough that each shard's WAL sees several concurrent
// committers — the regime group commit exists for — while a closed loop of
// 8 (BenchmarkTPCCNewOrderPayment8) shows the low-concurrency end.
const benchTerminals = 24

// benchTPCCMix drives a 50/50 New-Order/Payment mix from `terminals`
// concurrent terminals on the three-city topology with an on-disk WAL, and
// reports tpmC (successful New-Orders per minute), fsyncs per committed
// transaction, and interval commit-latency quantiles from the obs registry.
func benchTPCCMix(b *testing.B, terminals int, group bool) {
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.005
	cfg.Shards = 3
	cfg.WALDir = b.TempDir()
	cfg.WALFsyncDelay = benchFsyncDelay
	cfg.WALLinger = 500 * time.Microsecond
	if !group {
		// The pre-group-commit write path: every commit's records are
		// archived alone and fsynced alone.
		cfg.WALSync = wal.SyncEveryBatch
		cfg.WALArchiveBatch = 1
	}
	db, err := globaldb.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	d := New(db, benchConfig(terminals))
	if err := d.CreateTables(bg); err != nil {
		b.Fatal(err)
	}
	if err := d.Load(bg); err != nil {
		b.Fatal(err)
	}

	fsyncsBefore := walFsyncs(db)
	commitHist := obs.Default.Histogram(stats.MetricCommitLatency)
	histBefore := commitHist.Snapshot()

	var seq, newOrders, commits atomic.Int64
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < terminals; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			home := d.HomeWarehouse(t)
			for {
				n := seq.Add(1)
				if n > int64(b.N) {
					return
				}
				if n%2 == 0 {
					if d.NewOrder(bg, t, home) == nil {
						newOrders.Add(1)
						commits.Add(1)
					}
				} else {
					if d.Payment(bg, t, home) == nil {
						commits.Add(1)
					}
				}
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	if c := commits.Load(); c > 0 {
		b.ReportMetric(float64(newOrders.Load())/elapsed.Minutes(), "tpmC")
		b.ReportMetric(float64(walFsyncs(db)-fsyncsBefore)/float64(c), "fsyncs/commit")
	}
	interval := commitHist.Snapshot().Sub(histBefore)
	b.ReportMetric(float64(interval.P50())/1e6, "commit-p50-ms")
	b.ReportMetric(float64(interval.P95())/1e6, "commit-p95-ms")
}

// walFsyncs sums WAL fsync counts across every shard primary.
func walFsyncs(db *globaldb.DB) int64 {
	var n int64
	for _, p := range db.Cluster().Primaries() {
		if w := p.WAL(); w != nil {
			n += w.GroupStats().Fsyncs
		}
	}
	return n
}

// BenchmarkTPCCNewOrderPayment is the headline write-path number: group
// commit on, eight terminals.
func BenchmarkTPCCNewOrderPayment(b *testing.B) {
	benchTPCCMix(b, benchTerminals, true)
}

// BenchmarkTPCCNewOrderPayment8 is the same mix at eight terminals.
func BenchmarkTPCCNewOrderPayment8(b *testing.B) {
	benchTPCCMix(b, 8, true)
}

// BenchmarkTPCCNewOrderPaymentFsyncPerCommit is the pre-PR baseline: the
// same mix with the WAL fsyncing each commit's records alone
// (SyncEveryBatch, archive batch 1). The tpmC gap against
// BenchmarkTPCCNewOrderPayment is the group-commit + async-2PC win.
func BenchmarkTPCCNewOrderPaymentFsyncPerCommit(b *testing.B) {
	benchTPCCMix(b, benchTerminals, false)
}
