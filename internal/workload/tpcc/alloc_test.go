package tpcc

import (
	"testing"

	"globaldb"
)

// tpccAllocBudgetMax caps allocations for one warm New-Order transaction
// (single terminal, local warehouse, group-commit WAL attached). Measured
// ~830 warm: a New-Order runs ~25 row operations (reads, updates, order +
// order-line inserts) through planning-free key paths, plus the commit's
// redo marshal and group-commit wait. The ceiling leaves ~2.4x headroom for
// Go-version drift while still failing fast if the write path regresses to
// per-record or per-op allocation habits — a handful of leaked allocations
// per row op (+25/txn each) blows through it long before benchmarks notice.
const tpccAllocBudgetMax = 2000

// TestTPCCAllocBudget is the write-path analogue of the root package's
// TestAllocBudget: a hard allocation gate on the warm New-Order path.
func TestTPCCAllocBudget(t *testing.T) {
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.005
	cfg.Shards = 3
	cfg.WALDir = t.TempDir()
	db, err := globaldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	d := New(db, benchConfig(2))
	if err := d.CreateTables(bg); err != nil {
		t.Fatal(err)
	}
	if err := d.Load(bg); err != nil {
		t.Fatal(err)
	}
	run := func() {
		if err := d.NewOrder(bg, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm sessions, plan-free key paths, WAL segment

	// Minimum over several samples: cluster background goroutines (shippers,
	// heartbeats, the group-commit syncer) allocate too and can inflate
	// individual samples.
	best := float64(1 << 60)
	for i := 0; i < 5; i++ {
		if n := testing.AllocsPerRun(1, run); n < best {
			best = n
		}
	}
	t.Logf("warm New-Order: %.0f allocs/txn (budget %d)", best, tpccAllocBudgetMax)
	if best > tpccAllocBudgetMax {
		t.Fatalf("warm New-Order allocated %.0f times, budget is %d — the commit path regressed", best, tpccAllocBudgetMax)
	}
}
