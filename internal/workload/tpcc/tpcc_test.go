package tpcc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"globaldb"
	"globaldb/internal/coordinator"
)

var bg = context.Background()

func tinyConfig() Config {
	return Config{
		Warehouses:               3,
		Districts:                2,
		CustomersPerDistrict:     8,
		Items:                    15,
		InitialOrdersPerDistrict: 5,
		RemotePct:                0,
		Seed:                     1,
	}
}

func openLoaded(t *testing.T) (*globaldb.DB, *Driver) {
	t.Helper()
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.005
	cfg.Shards = 3
	db, err := globaldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	d := New(db, tinyConfig())
	if err := d.CreateTables(bg); err != nil {
		t.Fatal(err)
	}
	if err := d.Load(bg); err != nil {
		t.Fatal(err)
	}
	return db, d
}

func TestLastName(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %q", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %q", LastName(371))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Fatalf("LastName(999) = %q", LastName(999))
	}
}

func TestSchemasValid(t *testing.T) {
	if len(Schemas()) != 9 {
		t.Fatal("TPC-C has nine tables")
	}
	for _, s := range Schemas() {
		s.ID = 1
		for i := range s.Indexes {
			s.Indexes[i].ID = uint64(i + 2)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		// Every table distributes by warehouse id (first PK column).
		if s.ShardBy != 0 || s.PK[0] != 0 {
			t.Fatalf("%s must distribute by its leading warehouse column", s.Name)
		}
	}
}

func TestLoadPopulates(t *testing.T) {
	_, d := openLoaded(t)
	sess, err := d.session(d.HomeRegion(1))
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := sess.Begin(bg)
	defer tx.Commit(bg)
	for w := int64(1); w <= 3; w++ {
		if _, found, err := tx.Get(bg, TWarehouse, []any{w}); err != nil || !found {
			t.Fatalf("warehouse %d: %v %v", w, found, err)
		}
	}
	rows, err := tx.ScanPK(bg, TCustomer, []any{int64(1), int64(1)}, 0)
	if err != nil || len(rows) != 8 {
		t.Fatalf("customers of w1/d1: %d %v", len(rows), err)
	}
	dRow, _, _ := tx.Get(bg, TDistrict, []any{int64(1), int64(1)})
	if dRow[5].(int64) != 6 {
		t.Fatalf("next_o_id = %v", dRow[5])
	}
	orders, err := tx.ScanPK(bg, TOrders, []any{int64(1), int64(1)}, 0)
	if err != nil || len(orders) != 5 {
		t.Fatalf("orders: %d %v", len(orders), err)
	}
}

func TestNewOrderAdvancesDistrict(t *testing.T) {
	_, d := openLoaded(t)
	if err := d.NewOrder(bg, 0, 1); err != nil {
		t.Fatal(err)
	}
	sess, _ := d.session(d.HomeRegion(1))
	tx, _ := sess.Begin(bg)
	defer tx.Commit(bg)
	// One of the districts advanced its next_o_id to 7.
	advanced := false
	for dd := int64(1); dd <= 2; dd++ {
		dRow, _, _ := tx.Get(bg, TDistrict, []any{int64(1), dd})
		if dRow[5].(int64) == 7 {
			advanced = true
			oid := int64(6)
			if _, found, _ := tx.Get(bg, TOrders, []any{int64(1), dd, oid}); !found {
				t.Fatal("order row missing")
			}
			lines, _ := tx.ScanPK(bg, TOrderLine, []any{int64(1), dd, oid}, 0)
			if len(lines) < 5 {
				t.Fatalf("only %d order lines", len(lines))
			}
		}
	}
	if !advanced {
		t.Fatal("no district advanced")
	}
}

func TestPaymentUpdatesBalances(t *testing.T) {
	_, d := openLoaded(t)
	if err := d.Payment(bg, 1, 2); err != nil {
		t.Fatal(err)
	}
	sess, _ := d.session(d.HomeRegion(2))
	tx, _ := sess.Begin(bg)
	defer tx.Commit(bg)
	wRow, _, _ := tx.Get(bg, TWarehouse, []any{int64(2)})
	if wRow[3].(float64) <= 0 {
		t.Fatalf("w_ytd = %v", wRow[3])
	}
	hist, err := tx.ScanPK(bg, THistory, []any{int64(2)}, 0)
	if err != nil || len(hist) != 1 {
		t.Fatalf("history rows: %d %v", len(hist), err)
	}
}

func TestOrderStatusAndStockLevel(t *testing.T) {
	_, d := openLoaded(t)
	for i := 0; i < 5; i++ {
		if err := d.OrderStatus(bg, i, 1); err != nil {
			t.Fatalf("order status %d: %v", i, err)
		}
		if err := d.StockLevel(bg, i, 1); err != nil {
			t.Fatalf("stock level %d: %v", i, err)
		}
	}
}

func TestDeliveryConsumesNewOrders(t *testing.T) {
	_, d := openLoaded(t)
	sess, _ := d.session(d.HomeRegion(1))
	count := func() int {
		tx, _ := sess.Begin(bg)
		defer tx.Commit(bg)
		n := 0
		for dd := int64(1); dd <= 2; dd++ {
			rows, err := tx.ScanPK(bg, TNewOrder, []any{int64(1), dd}, 0)
			if err != nil {
				t.Fatal(err)
			}
			n += len(rows)
		}
		return n
	}
	before := count()
	if before == 0 {
		t.Fatal("loader must leave undelivered orders")
	}
	if err := d.Delivery(bg, 0, 1); err != nil {
		t.Fatal(err)
	}
	after := count()
	if after >= before {
		t.Fatalf("delivery did not consume new orders: %d -> %d", before, after)
	}
}

func TestTerminalMixRuns(t *testing.T) {
	_, d := openLoaded(t)
	term := d.Terminal(0)
	okCount := 0
	for i := 0; i < 30; i++ {
		if err := term(bg); err == nil {
			okCount++
		}
	}
	if okCount < 20 {
		t.Fatalf("only %d/30 transactions succeeded", okCount)
	}
	if err := d.ConsistencyCheck(bg); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTerminalsKeepInvariants(t *testing.T) {
	_, d := openLoaded(t)
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			term := d.Terminal(c)
			for i := 0; i < 15; i++ {
				_ = term(bg) // conflicts abort; clients retry next loop
			}
		}(c)
	}
	wg.Wait()
	if err := d.ConsistencyCheck(bg); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyTerminalOnReplicas(t *testing.T) {
	db, d := openLoaded(t)
	// Wait for the RCP to pass the whole load: stamp a marker transaction
	// after loading and wait for the RCP to reach its snapshot.
	sess, err := d.session(d.HomeRegion(1))
	if err != nil {
		t.Fatal(err)
	}
	marker, err := sess.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	marker.Commit(bg)
	deadline := time.Now().Add(10 * time.Second)
	for db.Cluster().Collector.RCP() < marker.Snapshot() {
		if time.Now().After(deadline) {
			t.Fatalf("RCP never passed the load; RCP=%v want %v",
				db.Cluster().Collector.RCP(), marker.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	term := d.ReadOnlyTerminal(0, 50, true, coordinator.AnyStaleness)
	for i := 0; i < 10; i++ {
		if err := term(bg); err != nil {
			t.Fatalf("ror terminal %d: %v", i, err)
		}
	}
	// The baseline flavor reads primaries.
	base := d.ReadOnlyTerminal(1, 50, false, 0)
	for i := 0; i < 5; i++ {
		if err := base(bg); err != nil {
			t.Fatalf("baseline terminal %d: %v", i, err)
		}
	}
}

func TestRemoteTransactions(t *testing.T) {
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.005
	cfg.Shards = 3
	db, err := globaldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	tc := tinyConfig()
	tc.RemotePct = 100
	d := New(db, tc)
	if err := d.CreateTables(bg); err != nil {
		t.Fatal(err)
	}
	if err := d.Load(bg); err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := 0; i < 10; i++ {
		if err := d.Payment(bg, i, 1); err != nil {
			if errors.Is(err, context.Canceled) {
				t.Fatal(err)
			}
			errs++
		}
	}
	if errs > 5 {
		t.Fatalf("%d/10 remote payments failed", errs)
	}
}
