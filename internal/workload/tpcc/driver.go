package tpcc

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"globaldb"
)

// Config scales the benchmark. The paper runs 600 warehouses with 600
// terminals; the defaults here are scaled down so in-process sweeps finish
// in seconds while keeping every code path identical.
type Config struct {
	// Warehouses is the scale factor.
	Warehouses int
	// Districts per warehouse (spec: 10).
	Districts int
	// CustomersPerDistrict (spec: 3000).
	CustomersPerDistrict int
	// Items per warehouse (spec: 100000, shared).
	Items int
	// InitialOrdersPerDistrict pre-loads order history (spec: 3000).
	InitialOrdersPerDistrict int
	// RemotePct is the percentage of New-Order and Payment transactions
	// that touch a remote warehouse. Sec. V-A starts at 0 ("100% local")
	// to isolate transaction management and log shipping costs.
	RemotePct int
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Warehouses:               4,
		Districts:                4,
		CustomersPerDistrict:     20,
		Items:                    50,
		InitialOrdersPerDistrict: 10,
		RemotePct:                0,
		Seed:                     1,
	}
}

// Driver runs TPC-C terminals against a DB.
type Driver struct {
	db  *globaldb.DB
	cfg Config

	mu       sync.Mutex
	sessions map[string]*globaldb.Session

	histSeq atomic.Int64
	rngs    sync.Map // client -> *lockedRand
}

type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (l *lockedRand) Intn(n int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Intn(n)
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}

// New creates a driver.
func New(db *globaldb.DB, cfg Config) *Driver {
	if cfg.Warehouses <= 0 {
		cfg = DefaultConfig()
	}
	return &Driver{db: db, cfg: cfg, sessions: make(map[string]*globaldb.Session)}
}

// Config returns the driver's configuration.
func (d *Driver) Config() Config { return d.cfg }

func (d *Driver) rng(client int) *lockedRand {
	if v, ok := d.rngs.Load(client); ok {
		return v.(*lockedRand)
	}
	lr := &lockedRand{rng: rand.New(rand.NewSource(d.cfg.Seed + int64(client)*7919))}
	actual, _ := d.rngs.LoadOrStore(client, lr)
	return actual.(*lockedRand)
}

// session returns (cached) the session for a region.
func (d *Driver) session(region string) (*globaldb.Session, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.sessions[region]; ok {
		return s, nil
	}
	s, err := d.db.Connect(region)
	if err != nil {
		return nil, err
	}
	d.sessions[region] = s
	return s, nil
}

// HomeRegion returns the region hosting a warehouse's shard primary —
// terminals connect to their local CN, giving the workload the physical
// affinity real customer workloads have (Sec. V-A).
func (d *Driver) HomeRegion(w int64) string {
	shard := d.db.Cluster().ShardOf(w)
	return d.db.Cluster().Primaries()[shard].Region()
}

// HomeWarehouse assigns a terminal its home warehouse.
func (d *Driver) HomeWarehouse(client int) int64 {
	return int64(client%d.cfg.Warehouses) + 1
}

// WarehousesOutsideRegion lists warehouses whose shard primary is NOT in
// the given region. The paper's Figs. 1a/6b measure "a node that is not
// co-located with the GTM server"; binding terminals to these warehouses
// reproduces that measurement.
func (d *Driver) WarehousesOutsideRegion(region string) []int64 {
	var out []int64
	for w := int64(1); w <= int64(d.cfg.Warehouses); w++ {
		if d.HomeRegion(w) != region {
			out = append(out, w)
		}
	}
	return out
}

// CreateTables registers the nine schemas.
func (d *Driver) CreateTables(ctx context.Context) error {
	for _, s := range Schemas() {
		if err := d.db.CreateTable(ctx, s); err != nil {
			return fmt.Errorf("tpcc: create %s: %w", s.Name, err)
		}
	}
	return nil
}

// Load populates the database at the configured scale. Rows are inserted in
// chunked transactions per warehouse, in parallel across warehouses.
func (d *Driver) Load(ctx context.Context) error {
	var wg sync.WaitGroup
	errs := make([]error, d.cfg.Warehouses)
	for w := 1; w <= d.cfg.Warehouses; w++ {
		wg.Add(1)
		go func(w int64) {
			defer wg.Done()
			errs[w-1] = d.loadWarehouse(ctx, w)
		}(int64(w))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (d *Driver) loadWarehouse(ctx context.Context, w int64) error {
	sess, err := d.session(d.HomeRegion(w))
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(d.cfg.Seed*1000 + w))

	const chunk = 200
	var tx *globaldb.Tx
	pending := 0
	begin := func() error {
		if tx != nil {
			return nil
		}
		var err error
		tx, err = sess.Begin(ctx)
		pending = 0
		return err
	}
	insert := func(tbl string, row globaldb.Row) error {
		if err := begin(); err != nil {
			return err
		}
		if err := tx.Insert(ctx, tbl, row); err != nil {
			tx.Abort(ctx)
			tx = nil
			return err
		}
		pending++
		if pending >= chunk {
			if err := tx.Commit(ctx); err != nil {
				tx = nil
				return err
			}
			tx = nil
		}
		return nil
	}

	if err := insert(TWarehouse, globaldb.Row{w, fmt.Sprintf("W-%03d", w), rng.Float64() * 0.2, 0.0}); err != nil {
		return err
	}
	for i := 1; i <= d.cfg.Items; i++ {
		if err := insert(TItem, globaldb.Row{w, int64(i), fmt.Sprintf("item-%d", i), 1 + rng.Float64()*99}); err != nil {
			return err
		}
		if err := insert(TStock, globaldb.Row{w, int64(i), int64(10 + rng.Intn(90)), int64(0), int64(0), int64(0)}); err != nil {
			return err
		}
	}
	for dd := 1; dd <= d.cfg.Districts; dd++ {
		did := int64(dd)
		nextO := int64(d.cfg.InitialOrdersPerDistrict + 1)
		if err := insert(TDistrict, globaldb.Row{w, did, fmt.Sprintf("D-%d-%d", w, dd), rng.Float64() * 0.2, 0.0, nextO}); err != nil {
			return err
		}
		for cc := 1; cc <= d.cfg.CustomersPerDistrict; cc++ {
			cid := int64(cc)
			last := LastName(cc % 1000)
			row := globaldb.Row{w, did, cid, last, fmt.Sprintf("First%d", cc), -10.0, 10.0, int64(1), int64(0), "customer-data"}
			if err := insert(TCustomer, row); err != nil {
				return err
			}
		}
		for oo := 1; oo <= d.cfg.InitialOrdersPerDistrict; oo++ {
			oid := int64(oo)
			cid := int64(1 + rng.Intn(d.cfg.CustomersPerDistrict))
			olCnt := int64(5 + rng.Intn(11))
			carrier := int64(1 + rng.Intn(10))
			undelivered := oo > d.cfg.InitialOrdersPerDistrict*2/3
			if undelivered {
				carrier = 0
				if err := insert(TNewOrder, globaldb.Row{w, did, oid}); err != nil {
					return err
				}
			}
			if err := insert(TOrders, globaldb.Row{w, did, oid, cid, carrier, olCnt, time.Now().UnixNano()}); err != nil {
				return err
			}
			for ol := int64(1); ol <= olCnt; ol++ {
				iid := int64(1 + rng.Intn(d.cfg.Items))
				amount := 0.0
				if undelivered {
					amount = 1 + rng.Float64()*9998/100
				}
				if err := insert(TOrderLine, globaldb.Row{w, did, oid, ol, iid, w, int64(5), amount}); err != nil {
					return err
				}
			}
		}
	}
	if tx != nil {
		return tx.Commit(ctx)
	}
	return nil
}
