package sysbench

import (
	"context"
	"testing"
	"time"

	"globaldb"
	"globaldb/internal/coordinator"
)

var bg = context.Background()

func openLoaded(t *testing.T) (*globaldb.DB, *Driver) {
	t.Helper()
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.005
	cfg.Shards = 3
	db, err := globaldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	d := New(db, Config{Tables: 3, RowsPerTable: 60, Seed: 1})
	if err := d.CreateTables(bg); err != nil {
		t.Fatal(err)
	}
	if err := d.Load(bg); err != nil {
		t.Fatal(err)
	}
	return db, d
}

func TestLoadAndPointSelectPrimary(t *testing.T) {
	_, d := openLoaded(t)
	ps := d.PointSelect(0, "xian", 0, false, 0)
	for i := 0; i < 20; i++ {
		if err := ps(bg); err != nil {
			t.Fatalf("point select %d: %v", i, err)
		}
	}
}

func TestPointSelectRemoteMix(t *testing.T) {
	_, d := openLoaded(t)
	// 100% remote still works; it just pays WAN latency.
	ps := d.PointSelect(1, "dongguan", 100, false, 0)
	for i := 0; i < 10; i++ {
		if err := ps(bg); err != nil {
			t.Fatalf("remote select %d: %v", i, err)
		}
	}
}

func TestPointSelectROR(t *testing.T) {
	db, d := openLoaded(t)
	// Stamp a marker and wait for the RCP to cover the load.
	sess, err := db.Connect("xian")
	if err != nil {
		t.Fatal(err)
	}
	marker, _ := sess.Begin(bg)
	marker.Commit(bg)
	deadline := time.Now().Add(10 * time.Second)
	for db.Cluster().Collector.RCP() < marker.Snapshot() {
		if time.Now().After(deadline) {
			t.Fatal("RCP never covered the load")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ps := d.PointSelect(2, "xian", 67, true, coordinator.AnyStaleness)
	for i := 0; i < 20; i++ {
		if err := ps(bg); err != nil {
			t.Fatalf("ror select %d: %v", i, err)
		}
	}
	cn := db.Cluster().CN("xian")
	if cn.Stats().ReplicaReads == 0 {
		t.Fatal("ROR point selects must hit replicas")
	}
}

func TestLocalIDsMatchTopology(t *testing.T) {
	db, d := openLoaded(t)
	ids := d.localIDs("xian")
	if len(ids) == 0 {
		t.Fatal("region must own some rows")
	}
	for _, id := range ids {
		shard := db.Cluster().ShardOf(id)
		if db.Cluster().Primaries()[shard].Region() != "xian" {
			t.Fatalf("id %d not local to xian", id)
		}
	}
}
