// Package sysbench implements the Sysbench OLTP point-select workload of
// Sec. V-B: N tables of M rows each, uniformly random primary-key lookups,
// with a configurable fraction of lookups landing on remote shards (the
// paper fetches 2/3 of tuples from a remote node).
package sysbench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"globaldb"
)

// Config scales the workload. The paper runs 250 tables × 25000 rows with
// 600 client threads; defaults are scaled for in-process sweeps.
type Config struct {
	// Tables is the number of sbtest tables.
	Tables int
	// RowsPerTable is the row count per table.
	RowsPerTable int
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Tables: 8, RowsPerTable: 200, Seed: 1}
}

// Driver runs sysbench clients against a DB.
type Driver struct {
	db  *globaldb.DB
	cfg Config

	mu       sync.Mutex
	sessions map[string]*globaldb.Session
	rngs     sync.Map
}

// New creates a driver.
func New(db *globaldb.DB, cfg Config) *Driver {
	if cfg.Tables <= 0 {
		cfg = DefaultConfig()
	}
	return &Driver{db: db, cfg: cfg, sessions: make(map[string]*globaldb.Session)}
}

// Config returns the driver's configuration.
func (d *Driver) Config() Config { return d.cfg }

// tableName is the sysbench naming convention.
func tableName(i int) string { return fmt.Sprintf("sbtest%d", i+1) }

// schema builds one sbtest table: id (PK), k, c, pad.
func schema(i int) *globaldb.Schema {
	return &globaldb.Schema{
		Name: tableName(i),
		Columns: []globaldb.Column{
			{Name: "id", Kind: globaldb.Int64},
			{Name: "k", Kind: globaldb.Int64},
			{Name: "c", Kind: globaldb.String},
			{Name: "pad", Kind: globaldb.String},
		},
		PK: []int{0},
	}
}

func (d *Driver) session(region string) (*globaldb.Session, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.sessions[region]; ok {
		return s, nil
	}
	s, err := d.db.Connect(region)
	if err != nil {
		return nil, err
	}
	d.sessions[region] = s
	return s, nil
}

func (d *Driver) rng(client int) *rand.Rand {
	if v, ok := d.rngs.Load(client); ok {
		return v.(*rand.Rand)
	}
	r := rand.New(rand.NewSource(d.cfg.Seed + int64(client)*104729))
	actual, _ := d.rngs.LoadOrStore(client, r)
	return actual.(*rand.Rand)
}

// CreateTables registers all sbtest schemas.
func (d *Driver) CreateTables(ctx context.Context) error {
	for i := 0; i < d.cfg.Tables; i++ {
		if err := d.db.CreateTable(ctx, schema(i)); err != nil {
			return fmt.Errorf("sysbench: create %s: %w", tableName(i), err)
		}
	}
	return nil
}

// Load populates every table, parallel across tables.
func (d *Driver) Load(ctx context.Context) error {
	regions := d.db.Regions()
	var wg sync.WaitGroup
	errs := make([]error, d.cfg.Tables)
	for i := 0; i < d.cfg.Tables; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = d.loadTable(ctx, i, regions[i%len(regions)])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (d *Driver) loadTable(ctx context.Context, i int, region string) error {
	sess, err := d.session(region)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(d.cfg.Seed*31 + int64(i)))
	pad := strings.Repeat("x", 60)
	const chunk = 200
	for lo := 1; lo <= d.cfg.RowsPerTable; lo += chunk {
		tx, err := sess.Begin(ctx)
		if err != nil {
			return err
		}
		hi := lo + chunk - 1
		if hi > d.cfg.RowsPerTable {
			hi = d.cfg.RowsPerTable
		}
		for id := lo; id <= hi; id++ {
			row := globaldb.Row{int64(id), int64(rng.Intn(1 << 20)), fmt.Sprintf("c-%d-%d", i, id), pad}
			if err := tx.Insert(ctx, tableName(i), row); err != nil {
				tx.Abort(ctx)
				return err
			}
		}
		if err := tx.Commit(ctx); err != nil {
			return err
		}
	}
	return nil
}

// localIDs returns, for a client's home region, the row IDs whose shard
// primaries live in that region (used to steer the local/remote mix).
func (d *Driver) localIDs(region string) []int64 {
	var out []int64
	for id := int64(1); id <= int64(d.cfg.RowsPerTable); id++ {
		shard := d.db.Cluster().ShardOf(id)
		if d.db.Cluster().Primaries()[shard].Region() == region {
			out = append(out, id)
		}
	}
	return out
}

// PointSelect returns the point-select workload for a client homed in
// region. remotePct of lookups target rows whose primary is in another
// region. useROR serves reads from replicas at the staleness bound;
// otherwise reads go to primaries at a fresh snapshot (the baseline).
func (d *Driver) PointSelect(client int, region string, remotePct int, useROR bool, bound time.Duration) func(ctx context.Context) error {
	local := d.localIDs(region)
	return func(ctx context.Context) error {
		rng := d.rng(client)
		tbl := tableName(rng.Intn(d.cfg.Tables))
		var id int64
		if len(local) > 0 && rng.Intn(100) >= remotePct {
			id = local[rng.Intn(len(local))]
		} else {
			id = int64(1 + rng.Intn(d.cfg.RowsPerTable))
		}
		sess, err := d.session(region)
		if err != nil {
			return err
		}
		if useROR {
			q, err := sess.ReadOnly(ctx, bound, tbl)
			if err != nil {
				return err
			}
			_, found, err := q.Get(ctx, tbl, []any{id})
			if err != nil {
				return err
			}
			if !found {
				return fmt.Errorf("sysbench: %s id %d missing", tbl, id)
			}
			return nil
		}
		tx, err := sess.Begin(ctx)
		if err != nil {
			return err
		}
		_, found, err := tx.Get(ctx, tbl, []any{id})
		if err != nil {
			tx.Abort(ctx)
			return err
		}
		if !found {
			tx.Abort(ctx)
			return fmt.Errorf("sysbench: %s id %d missing", tbl, id)
		}
		return tx.Commit(ctx)
	}
}
