package repl

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"globaldb/internal/netsim"
	"globaldb/internal/redo"
	"globaldb/internal/storage/mvcc"
	"globaldb/internal/ts"
)

var bg = context.Background()

func TestCompressorsRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte("redo record payload "), 100)
	for _, c := range []Compressor{Noop{}, Flate{}} {
		enc, err := c.Compress(payload)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(dec, payload) {
			t.Fatalf("%s: round trip mismatch", c.Name())
		}
	}
	// Flate must actually shrink repetitive redo traffic.
	enc, _ := Flate{}.Compress(payload)
	if len(enc) >= len(payload)/2 {
		t.Fatalf("flate only got %d/%d bytes", len(enc), len(payload))
	}
}

func TestFlateRoundTripProperty(t *testing.T) {
	f := func(b []byte) bool {
		enc, err := Flate{}.Compress(b)
		if err != nil {
			return false
		}
		dec, err := Flate{}.Decompress(enc)
		return err == nil && bytes.Equal(dec, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// writeTxn appends a transaction's records to a log: heap writes, PENDING
// COMMIT, then COMMIT.
func writeTxn(log *redo.Log, txn uint64, commitTS ts.Timestamp, kv map[string]string) {
	var recs []redo.Record
	for k, v := range kv {
		recs = append(recs, redo.Record{Type: redo.TypeHeapInsert, Txn: txn, Key: []byte(k), Value: []byte(v)})
	}
	recs = append(recs, redo.Record{Type: redo.TypePendingCommit, Txn: txn})
	recs = append(recs, redo.Record{Type: redo.TypeCommit, Txn: txn, TS: commitTS})
	log.AppendBatch(recs)
}

func TestApplierBasicReplay(t *testing.T) {
	log := redo.NewLog()
	writeTxn(log, 1, 100, map[string]string{"a": "1", "b": "2"})
	writeTxn(log, 2, 200, map[string]string{"a": "3"})
	recs, _ := log.ReadFrom(1, 0)

	a := NewApplier(mvcc.NewStore())
	applied, err := a.Apply(recs)
	if err != nil {
		t.Fatal(err)
	}
	if applied != uint64(len(recs)) {
		t.Fatalf("applied = %d", applied)
	}
	if a.MaxCommitTS() != 200 {
		t.Fatalf("MaxCommitTS = %v", a.MaxCommitTS())
	}
	v, ok, _ := a.Store().Get(bg, []byte("a"), 150, 0)
	if !ok || string(v) != "1" {
		t.Fatalf("a@150 = %q,%v", v, ok)
	}
	v, ok, _ = a.Store().Get(bg, []byte("a"), 200, 0)
	if !ok || string(v) != "3" {
		t.Fatalf("a@200 = %q,%v", v, ok)
	}
}

func TestApplierIdempotentAndGapDetection(t *testing.T) {
	log := redo.NewLog()
	writeTxn(log, 1, 100, map[string]string{"k": "v"})
	recs, _ := log.ReadFrom(1, 0)
	a := NewApplier(mvcc.NewStore())
	if _, err := a.Apply(recs); err != nil {
		t.Fatal(err)
	}
	// Re-applying the same batch must be a no-op.
	applied, err := a.Apply(recs)
	if err != nil || applied != uint64(len(recs)) {
		t.Fatalf("re-apply: %d %v", applied, err)
	}
	// A gap must be rejected with the current position.
	writeTxn(log, 2, 200, map[string]string{"k": "v2"})
	writeTxn(log, 3, 300, map[string]string{"k": "v3"})
	tail, _ := log.ReadFrom(uint64(len(recs))+4, 0) // skip txn 2's records
	if _, err := a.Apply(tail); err == nil {
		t.Fatal("gap must be detected")
	}
	if a.MaxCommitTS() != 100 {
		t.Fatal("gapped batch must not apply")
	}
}

func TestApplierAbortDiscards(t *testing.T) {
	log := redo.NewLog()
	log.AppendBatch([]redo.Record{
		{Type: redo.TypeHeapInsert, Txn: 1, Key: []byte("k"), Value: []byte("v")},
		{Type: redo.TypePendingCommit, Txn: 1},
		{Type: redo.TypeAbort, Txn: 1},
	})
	recs, _ := log.ReadFrom(1, 0)
	a := NewApplier(mvcc.NewStore())
	if _, err := a.Apply(recs); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := a.Store().Get(bg, []byte("k"), ts.Max, 0); ok {
		t.Fatal("aborted write visible on replica")
	}
}

func TestApplierPendingBlocksReaderUntilCommit(t *testing.T) {
	a := NewApplier(mvcc.NewStore())
	a.Apply([]redo.Record{
		{LSN: 1, Type: redo.TypeHeapInsert, Txn: 1, Key: []byte("k"), Value: []byte("v")},
		{LSN: 2, Type: redo.TypePendingCommit, Txn: 1},
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, ok, err := a.Store().Get(bg, []byte("k"), ts.Max, 0)
		if err != nil || !ok || string(v) != "v" {
			t.Errorf("read after commit: %q %v %v", v, ok, err)
		}
	}()
	select {
	case <-done:
		t.Fatal("reader must block on a pending-commit tuple")
	case <-time.After(20 * time.Millisecond):
	}
	a.Apply([]redo.Record{{LSN: 3, Type: redo.TypeCommit, Txn: 1, TS: 50}})
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("reader stuck after commit replay")
	}
}

func TestApplierTwoPhaseCommitRecords(t *testing.T) {
	a := NewApplier(mvcc.NewStore())
	a.Apply([]redo.Record{
		{LSN: 1, Type: redo.TypeHeapInsert, Txn: 9, Key: []byte("k"), Value: []byte("v")},
		{LSN: 2, Type: redo.TypePrepare, Txn: 9},
	})
	// Prepared tuples block readers.
	ctx, cancel := context.WithTimeout(bg, 30*time.Millisecond)
	defer cancel()
	if _, _, err := a.Store().Get(ctx, []byte("k"), ts.Max, 0); err == nil {
		t.Fatal("prepared tuple must block reads")
	}
	a.Apply([]redo.Record{{LSN: 3, Type: redo.TypeCommitPrepared, Txn: 9, TS: 77}})
	v, ok, err := a.Store().Get(bg, []byte("k"), 77, 0)
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("after COMMIT PREPARED: %q %v %v", v, ok, err)
	}
	if a.MaxCommitTS() != 77 {
		t.Fatalf("MaxCommitTS = %v", a.MaxCommitTS())
	}
}

func TestApplierHeartbeatAndDDL(t *testing.T) {
	a := NewApplier(mvcc.NewStore())
	var ddlSeen []redo.Record
	a.SetDDLHook(func(r redo.Record) { ddlSeen = append(ddlSeen, r) })
	a.Apply([]redo.Record{
		{LSN: 1, Type: redo.TypeHeartbeat, TS: 500},
		{LSN: 2, Type: redo.TypeDDL, Txn: 42, TS: 600, Key: []byte("tbl"), Value: []byte("schema")},
	})
	if a.MaxCommitTS() != 600 {
		t.Fatalf("watermark = %v", a.MaxCommitTS())
	}
	if a.MaxDDLTS() != 600 {
		t.Fatalf("MaxDDLTS = %v", a.MaxDDLTS())
	}
	if len(ddlSeen) != 1 || ddlSeen[0].Txn != 42 {
		t.Fatalf("DDL hook: %v", ddlSeen)
	}
}

func TestApplyParallelMatchesSequential(t *testing.T) {
	// Build a large interleaved workload, replay it via Apply on one store
	// and ApplyParallel on another, and compare visible states.
	rng := rand.New(rand.NewSource(11))
	log := redo.NewLog()
	var commitTS ts.Timestamp = 10
	for txn := uint64(1); txn <= 200; txn++ {
		kv := map[string]string{}
		for i := 0; i < 1+rng.Intn(20); i++ {
			kv[fmt.Sprintf("key-%03d", rng.Intn(100))] = fmt.Sprintf("v-%d-%d", txn, i)
		}
		if rng.Intn(10) == 0 {
			var recs []redo.Record
			for k, v := range kv {
				recs = append(recs, redo.Record{Type: redo.TypeHeapUpdate, Txn: txn, Key: []byte(k), Value: []byte(v)})
			}
			recs = append(recs, redo.Record{Type: redo.TypeAbort, Txn: txn})
			log.AppendBatch(recs)
			continue
		}
		commitTS += ts.Timestamp(1 + rng.Intn(5))
		writeTxn(log, txn, commitTS, kv)
	}
	recs, _ := log.ReadFrom(1, 0)

	seq := NewApplier(mvcc.NewStore())
	if _, err := seq.Apply(recs); err != nil {
		t.Fatal(err)
	}
	// Feed the parallel applier in random-sized chunks.
	par := NewApplier(mvcc.NewStore())
	for i := 0; i < len(recs); {
		n := 1 + rng.Intn(64)
		if i+n > len(recs) {
			n = len(recs) - i
		}
		if _, err := par.ApplyParallel(recs[i : i+n]); err != nil {
			t.Fatal(err)
		}
		i += n
	}

	if seq.MaxCommitTS() != par.MaxCommitTS() {
		t.Fatalf("watermarks differ: %v vs %v", seq.MaxCommitTS(), par.MaxCommitTS())
	}
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		a := seq.Store().Versions(key)
		b := par.Store().Versions(key)
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d versions", key, len(a), len(b))
		}
		for j := range a {
			if a[j].CommitTS != b[j].CommitTS || !bytes.Equal(a[j].Value, b[j].Value) {
				t.Fatalf("%s version %d differs", key, j)
			}
		}
	}
}

// shipRig wires one primary log to one replica applier across a simulated
// WAN link.
type shipRig struct {
	net     *netsim.Network
	log     *redo.Log
	applier *Applier
	shipper *Shipper
	mgr     *Manager
	ep      *netsim.Endpoint
}

func newShipRig(t *testing.T, rtt time.Duration, bw float64, cfg ShipperConfig, mode Mode) *shipRig {
	t.Helper()
	n := netsim.New(netsim.Config{TimeScale: 0.2})
	n.SetLink("primary", "replica", rtt, bw)
	r := &shipRig{net: n, log: redo.NewLog(), applier: NewApplier(mvcc.NewStore())}
	r.mgr = NewManager(r.log, mode, 1)
	r.ep = ServeApplier(n, "repl-ep", "replica", r.applier, Flate{})
	r.shipper = NewShipper(cfg, n, "primary", "repl-ep", r.log, r.mgr.AckHook())
	r.mgr.AddShipper(r.shipper)
	r.shipper.Start()
	t.Cleanup(r.shipper.Stop)
	return r
}

func waitFor(t *testing.T, what string, timeout time.Duration, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestShipperDeliversAndAcks(t *testing.T) {
	r := newShipRig(t, 30*time.Millisecond, 0, DefaultShipperConfig(), Async)
	for i := 0; i < 10; i++ {
		writeTxn(r.log, uint64(i+1), ts.Timestamp((i+1)*10), map[string]string{fmt.Sprintf("k%d", i): "v"})
	}
	last := r.log.LastLSN()
	waitFor(t, "replica catch-up", 5*time.Second, func() bool { return r.shipper.AckedLSN() == last })
	if r.applier.MaxCommitTS() != 100 {
		t.Fatalf("MaxCommitTS = %v", r.applier.MaxCommitTS())
	}
	st := r.shipper.Stats()
	if st.Batches == 0 || st.Records != int64(last) {
		t.Fatalf("stats: %+v", st)
	}
	if r.shipper.Lag() != 0 {
		t.Fatalf("lag = %d", r.shipper.Lag())
	}
}

func TestShipperCompressionShrinksWire(t *testing.T) {
	r := newShipRig(t, 10*time.Millisecond, 0, DefaultShipperConfig(), Async)
	big := bytes.Repeat([]byte("AAAA"), 256)
	for i := 0; i < 50; i++ {
		writeTxn(r.log, uint64(i+1), ts.Timestamp((i+1)*10), map[string]string{fmt.Sprintf("k%d", i): string(big)})
	}
	last := r.log.LastLSN()
	waitFor(t, "catch-up", 5*time.Second, func() bool { return r.shipper.AckedLSN() == last })
	st := r.shipper.Stats()
	if st.WireBytes >= st.RawBytes/2 {
		t.Fatalf("compression ineffective: wire=%d raw=%d", st.WireBytes, st.RawBytes)
	}
}

func TestSyncQuorumWaitsForReplica(t *testing.T) {
	r := newShipRig(t, 50*time.Millisecond, 0, DefaultShipperConfig(), SyncQuorum)
	writeTxn(r.log, 1, 10, map[string]string{"k": "v"})
	lsn := r.log.LastLSN()
	start := time.Now()
	if err := r.mgr.WaitDurable(bg, lsn); err != nil {
		t.Fatal(err)
	}
	// One-way 25ms × 0.2 scale = 5ms each way; the wait must reflect it.
	if e := time.Since(start); e < 5*time.Millisecond {
		t.Fatalf("sync wait returned too fast: %v", e)
	}
	if r.shipper.AckedLSN() < lsn {
		t.Fatal("WaitDurable returned before the replica acked")
	}
}

func TestAsyncDoesNotWait(t *testing.T) {
	r := newShipRig(t, 100*time.Millisecond, 0, DefaultShipperConfig(), Async)
	writeTxn(r.log, 1, 10, map[string]string{"k": "v"})
	start := time.Now()
	if err := r.mgr.WaitDurable(bg, r.log.LastLSN()); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > 5*time.Millisecond {
		t.Fatalf("async commit waited %v", e)
	}
}

func TestSetModeWakesWaiters(t *testing.T) {
	r := newShipRig(t, time.Hour, 0, DefaultShipperConfig(), SyncQuorum) // effectively unreachable
	writeTxn(r.log, 1, 10, map[string]string{"k": "v"})
	errCh := make(chan error, 1)
	go func() { errCh <- r.mgr.WaitDurable(bg, r.log.LastLSN()) }()
	select {
	case err := <-errCh:
		t.Fatalf("WaitDurable returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	r.mgr.SetMode(Async, 1)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("mode switch did not wake the waiter")
	}
}

func TestShipperRecoversFromReplicaOutage(t *testing.T) {
	r := newShipRig(t, 10*time.Millisecond, 0, DefaultShipperConfig(), Async)
	writeTxn(r.log, 1, 10, map[string]string{"a": "1"})
	waitFor(t, "initial ship", 5*time.Second, func() bool { return r.shipper.AckedLSN() == r.log.LastLSN() })

	r.ep.SetDown(true)
	writeTxn(r.log, 2, 20, map[string]string{"b": "2"})
	time.Sleep(30 * time.Millisecond)
	if r.applier.MaxCommitTS() != 10 {
		t.Fatal("records applied while replica was down")
	}
	r.ep.SetDown(false)
	waitFor(t, "recovery", 5*time.Second, func() bool { return r.shipper.AckedLSN() == r.log.LastLSN() })
	if r.applier.MaxCommitTS() != 20 {
		t.Fatalf("MaxCommitTS after recovery = %v", r.applier.MaxCommitTS())
	}
	if r.shipper.Stats().SendFailures == 0 {
		t.Fatal("outage must be visible in stats")
	}
}

func TestManagerTruncate(t *testing.T) {
	r := newShipRig(t, 5*time.Millisecond, 0, DefaultShipperConfig(), Async)
	for i := 0; i < 20; i++ {
		writeTxn(r.log, uint64(i+1), ts.Timestamp((i+1)*10), map[string]string{"k": "v"})
	}
	last := r.log.LastLSN()
	waitFor(t, "catch-up", 5*time.Second, func() bool { return r.mgr.MinAckedLSN() == last })
	r.mgr.Truncate()
	if _, err := r.log.ReadFrom(1, 1); err == nil {
		t.Fatal("log must be truncated below the acked prefix")
	}
	// New appends still ship.
	writeTxn(r.log, 99, 999, map[string]string{"z": "end"})
	waitFor(t, "post-truncate ship", 5*time.Second, func() bool { return r.shipper.AckedLSN() == r.log.LastLSN() })
}
