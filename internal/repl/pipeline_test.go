package repl

import (
	"fmt"
	"testing"
	"time"

	"globaldb/internal/ts"
)

// pipeCfg is a shipping config that forces many small batches, so the
// window (not the batch size) dominates catch-up time.
func pipeCfg(window int) ShipperConfig {
	return ShipperConfig{
		BatchMax:   8,
		FlushDelay: 0,
		Compressor: Noop{},
		RetryDelay: time.Millisecond,
		Window:     window,
	}
}

func shipBacklog(t *testing.T, window int) time.Duration {
	t.Helper()
	r := newShipRig(t, 40*time.Millisecond, 0, pipeCfg(window), Async)
	for i := 0; i < 64; i++ {
		writeTxn(r.log, uint64(i+1), ts.Timestamp((i+1)*10), map[string]string{fmt.Sprintf("k%d", i): "v"})
	}
	last := r.log.LastLSN()
	start := time.Now()
	waitFor(t, "catch-up", 10*time.Second, func() bool { return r.shipper.AckedLSN() == last })
	elapsed := time.Since(start)
	if r.applier.AppliedLSN() != last {
		t.Fatalf("applied %d, want %d", r.applier.AppliedLSN(), last)
	}
	return elapsed
}

// TestShipperPipelineBeatsStopAndWait: with a backlog of many small batches
// over a high-latency link, a windowed shipper drains at bandwidth while
// stop-and-wait pays a full round trip per batch. Also exercises the
// applier's reorder stash: concurrent in-flight batches arrive in whatever
// order the simulated WAN delivers them.
func TestShipperPipelineBeatsStopAndWait(t *testing.T) {
	stopWait := shipBacklog(t, 1)
	pipelined := shipBacklog(t, 4)
	if pipelined >= stopWait {
		t.Fatalf("window=4 (%v) not faster than stop-and-wait (%v)", pipelined, stopWait)
	}
}

// TestShipperStopPreservesAck: Stop() during an in-flight batch must not
// drop the ack the replica is about to return. The invariant after Stop is
// acked == applied — the shipper's view of the replica cannot be staler
// than what the replica durably applied. (The old stop-and-wait loop died
// inside its send call on cancellation, losing exactly that ack.)
func TestShipperStopPreservesAck(t *testing.T) {
	for _, preStop := range []time.Duration{0, 2 * time.Millisecond, 5 * time.Millisecond} {
		r := newShipRig(t, 20*time.Millisecond, 0, pipeCfg(4), Async)
		for i := 0; i < 16; i++ {
			writeTxn(r.log, uint64(i+1), ts.Timestamp((i+1)*10), map[string]string{fmt.Sprintf("k%d", i): "v"})
		}
		time.Sleep(preStop) // stagger Stop against the in-flight window
		r.shipper.Stop()
		if acked, applied := r.shipper.AckedLSN(), r.applier.AppliedLSN(); acked != applied {
			t.Fatalf("preStop=%v: acked=%d but replica applied %d", preStop, acked, applied)
		}
	}
}
