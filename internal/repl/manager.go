package repl

import (
	"context"
	"sync"

	"globaldb/internal/redo"
)

// Mode selects when a transaction's commit may be acknowledged relative to
// replication (Sec. II-B).
type Mode int

const (
	// Async acknowledges commits after local durability only; replicas lag
	// behind (GlobalDB's default, paired with RCP-consistent replica reads).
	Async Mode = iota
	// SyncQuorum acknowledges once a quorum of replicas persisted the
	// commit record. If the quorum spans regions, commits pay WAN latency.
	SyncQuorum
)

func (m Mode) String() string {
	if m == SyncQuorum {
		return "sync-quorum"
	}
	return "async"
}

// Manager owns a primary's shippers and implements commit-time durability
// waits plus log truncation below the slowest replica.
type Manager struct {
	log  *redo.Log
	mode Mode

	mu       sync.Mutex
	quorum   int
	shippers []*Shipper
	waiters  []chan struct{}
}

// NewManager creates a manager over the primary's log. quorum is the number
// of replica acknowledgements a SyncQuorum commit waits for.
func NewManager(log *redo.Log, mode Mode, quorum int) *Manager {
	if quorum < 1 {
		quorum = 1
	}
	return &Manager{log: log, mode: mode, quorum: quorum}
}

// Mode returns the replication mode.
func (m *Manager) Mode() Mode { return m.mode }

// SetMode switches between async and sync replication at runtime.
func (m *Manager) SetMode(mode Mode, quorum int) {
	m.mu.Lock()
	m.mode = mode
	if quorum >= 1 {
		m.quorum = quorum
	}
	waiters := m.waiters
	m.waiters = nil
	m.mu.Unlock()
	// Wake waiters so they re-evaluate under the new mode.
	for _, w := range waiters {
		close(w)
	}
}

// AddShipper attaches a started-elsewhere shipper. The manager hooks its
// acknowledgements to wake quorum waiters; callers must create the shipper
// with the manager's AckHook.
func (m *Manager) AddShipper(s *Shipper) {
	m.mu.Lock()
	m.shippers = append(m.shippers, s)
	m.mu.Unlock()
}

// AckHook returns the onAck callback shippers must be constructed with.
func (m *Manager) AckHook() func(uint64) {
	return func(uint64) {
		m.mu.Lock()
		waiters := m.waiters
		m.waiters = nil
		m.mu.Unlock()
		for _, w := range waiters {
			close(w)
		}
	}
}

// ackCount reports how many shippers have acknowledged at least lsn.
func (m *Manager) ackCount(lsn uint64) (int, Mode, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, s := range m.shippers {
		if s.AckedLSN() >= lsn {
			n++
		}
	}
	return n, m.mode, m.quorum
}

// WaitDurable blocks until the commit record at lsn satisfies the
// replication mode: immediately under Async, after quorum acknowledgements
// under SyncQuorum.
func (m *Manager) WaitDurable(ctx context.Context, lsn uint64) error {
	return m.waitDurable(ctx, lsn, false)
}

// WaitReplicated blocks until a quorum of replicas acknowledged lsn even
// when the manager runs asynchronously — the per-table synchronous
// replication path.
func (m *Manager) WaitReplicated(ctx context.Context, lsn uint64) error {
	return m.waitDurable(ctx, lsn, true)
}

func (m *Manager) waitDurable(ctx context.Context, lsn uint64, force bool) error {
	for {
		n, mode, quorum := m.ackCount(lsn)
		if force {
			mode = SyncQuorum
		}
		if mode == Async || n >= quorum || quorum > m.shipperCount() {
			return nil
		}
		m.mu.Lock()
		w := make(chan struct{})
		m.waiters = append(m.waiters, w)
		m.mu.Unlock()
		// Re-check: an ack may have landed between the check and the wait
		// registration.
		if n, mode, quorum := m.ackCount(lsn); (!force && mode == Async) || n >= quorum {
			return nil
		}
		select {
		case <-w:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (m *Manager) shipperCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.shippers)
}

// MinAckedLSN returns the slowest replica's applied LSN (0 with no
// replicas).
func (m *Manager) MinAckedLSN() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.shippers) == 0 {
		return 0
	}
	min := m.shippers[0].AckedLSN()
	for _, s := range m.shippers[1:] {
		if a := s.AckedLSN(); a < min {
			min = a
		}
	}
	return min
}

// Truncate drops log records every replica has applied.
func (m *Manager) Truncate() {
	if min := m.MinAckedLSN(); min > 1 {
		m.log.Truncate(min)
	}
}

// Shippers returns the attached shippers (for stats).
func (m *Manager) Shippers() []*Shipper {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Shipper, len(m.shippers))
	copy(out, m.shippers)
	return out
}

// StopAll stops every shipper.
func (m *Manager) StopAll() {
	for _, s := range m.Shippers() {
		s.Stop()
	}
}
