package repl

import "globaldb/internal/obs"

// Redo-shipping metric names on obs.Default. Per-shipper numbers stay in
// ShipperStats; these are the process-wide mirrors the commit-path stats
// surfaces read (batch sizes and wire bytes tell whether cross-txn redo
// batching and compression are doing their job).
const (
	// MetricBatches counts batches put on the wire.
	MetricBatches = "repl_batches_total"
	// MetricRecords counts records inside those batches.
	MetricRecords = "repl_records_total"
	// MetricRawBytes counts marshaled record bytes before compression.
	MetricRawBytes = "repl_raw_bytes_total"
	// MetricWireBytes counts bytes that crossed the (simulated) WAN.
	MetricWireBytes = "repl_wire_bytes_total"
	// MetricSendFailures counts failed sends (replica down, partition).
	MetricSendFailures = "repl_send_failures_total"
)

var (
	metricBatches      = obs.Default.Counter(MetricBatches)
	metricRecords      = obs.Default.Counter(MetricRecords)
	metricRawBytes     = obs.Default.Counter(MetricRawBytes)
	metricWireBytes    = obs.Default.Counter(MetricWireBytes)
	metricSendFailures = obs.Default.Counter(MetricSendFailures)
)
