package repl

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"globaldb/internal/netsim"
	"globaldb/internal/redo"
)

// Batch is the wire unit of log shipping.
type Batch struct {
	// From is the LSN of the first record in Data.
	From uint64
	// Count is the number of records in Data.
	Count int
	// Compressed marks Data as codec-encoded.
	Compressed bool
	// Codec names the compressor used.
	Codec string
	// Data holds the marshaled (and possibly compressed) records.
	Data []byte
}

// Ack is the replica's response to a batch.
type Ack struct {
	// AppliedLSN is the replica's new applied position. On a gap it tells
	// the shipper where to rewind.
	AppliedLSN uint64
}

// ShipperConfig tunes a shipper.
type ShipperConfig struct {
	// BatchMax bounds records per batch.
	BatchMax int
	// FlushDelay is how long the shipper lingers after the first pending
	// record to accumulate a fuller batch — the knob that models Nagle-less
	// aggressive flushing (GlobalDB) versus buffered shipping (baseline).
	FlushDelay time.Duration
	// Compressor encodes batches; Noop for the baseline, Flate for
	// GlobalDB's LZ4-style compression.
	Compressor Compressor
	// RetryDelay is the pause after a failed send (replica down, partition).
	RetryDelay time.Duration
	// Window is the maximum number of unacked batches in flight. 1 (and 0)
	// is stop-and-wait: each batch pays a full WAN round trip before the
	// next leaves. Larger windows pipeline sends so the log drains at
	// bandwidth rather than latency — the replica stashes out-of-order
	// arrivals and acks carry its applied LSN, so a lost or reordered
	// batch just rewinds the cursor.
	Window int
}

// DefaultShipperWindow is the pipelined in-flight batch budget.
const DefaultShipperWindow = 4

// DefaultShipperConfig returns GlobalDB's optimized shipping parameters.
func DefaultShipperConfig() ShipperConfig {
	return ShipperConfig{
		BatchMax:   512,
		FlushDelay: 200 * time.Microsecond,
		Compressor: Flate{},
		RetryDelay: 5 * time.Millisecond,
		Window:     DefaultShipperWindow,
	}
}

// BaselineShipperConfig returns the unoptimized baseline: no compression,
// sluggish flushing, stop-and-wait acks.
func BaselineShipperConfig() ShipperConfig {
	return ShipperConfig{
		BatchMax:   512,
		FlushDelay: 2 * time.Millisecond,
		Compressor: Noop{},
		RetryDelay: 5 * time.Millisecond,
		Window:     1,
	}
}

// ShipperStats are cumulative shipping counters.
type ShipperStats struct {
	Batches      int64
	Records      int64
	RawBytes     int64
	WireBytes    int64
	SendFailures int64
	AckedLSN     uint64
}

// Shipper tails a primary's redo log and streams batches to one replica
// endpoint over the simulated network, tracking the replica's applied LSN.
type Shipper struct {
	cfg      ShipperConfig
	net      *netsim.Network
	from     string // primary's region
	endpoint string // replica's replication endpoint

	log    *redo.Log
	cancel context.CancelFunc
	done   chan struct{}

	acked atomic.Uint64
	onAck func(lsn uint64)

	mu    sync.Mutex
	stats ShipperStats
}

// NewShipper creates a shipper from a primary log in region from to the
// replica's endpoint. onAck (optional) fires on every acknowledgement.
func NewShipper(cfg ShipperConfig, n *netsim.Network, from, endpoint string, log *redo.Log, onAck func(uint64)) *Shipper {
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 512
	}
	if cfg.Compressor == nil {
		cfg.Compressor = Noop{}
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 5 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 1 // zero-value config keeps stop-and-wait semantics
	}
	return &Shipper{cfg: cfg, net: n, from: from, endpoint: endpoint, log: log, onAck: onAck}
}

// Start launches the shipping loop.
func (s *Shipper) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.done = make(chan struct{})
	go s.run(ctx)
}

// Stop terminates the loop and waits for it to exit.
func (s *Shipper) Stop() {
	if s.cancel != nil {
		s.cancel()
		<-s.done
	}
}

// AckedLSN returns the replica's last acknowledged applied LSN.
func (s *Shipper) AckedLSN() uint64 { return s.acked.Load() }

// Stats returns a snapshot of shipping counters.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.AckedLSN = s.acked.Load()
	return st
}

// Lag returns how many records the replica is behind the primary log.
func (s *Shipper) Lag() uint64 {
	last := s.log.LastLSN()
	acked := s.acked.Load()
	if acked >= last {
		return 0
	}
	return last - acked
}

// stopDrainTimeout bounds how long Stop waits for in-flight batch acks.
const stopDrainTimeout = 2 * time.Second

// run is the shipping loop: a sliding window of in-flight batches. The
// cursor advances optimistically past each batch as it is handed to a
// sender goroutine; acks (which may arrive out of order) carry the
// replica's applied LSN and only ever raise the acked watermark. When every
// send has completed but the watermark sits below the cursor — a reordered
// batch was rejected, or a send failed — the cursor rewinds to acked+1 and
// the gap is re-shipped (at-least-once delivery; the applier deduplicates).
func (s *Shipper) run(ctx context.Context) {
	defer close(s.done)
	// Sends run on their own context so Stop() can DRAIN the window rather
	// than cancel it: with stop-and-wait this loop used to die mid-Call and
	// lose the ack for a batch the replica had already applied, leaving
	// AckedLSN stale for whoever reads it after Stop.
	sendCtx, cancelSend := context.WithCancel(context.Background())
	defer cancelSend()

	type result struct {
		acked uint64
		err   error
	}
	results := make(chan result, s.cfg.Window) // cap=window: senders never block
	inflight := 0
	sawFail := false
	cursor := uint64(1)

	handle := func(r result) {
		inflight--
		if r.err != nil {
			if !errors.Is(r.err, context.Canceled) {
				s.mu.Lock()
				s.stats.SendFailures++
				s.mu.Unlock()
				metricSendFailures.Inc()
			}
			sawFail = true
			return
		}
		for { // max-merge: a stale ack must not regress the watermark
			cur := s.acked.Load()
			if r.acked <= cur || s.acked.CompareAndSwap(cur, r.acked) {
				break
			}
		}
		if s.onAck != nil {
			s.onAck(s.acked.Load())
		}
	}
	drain := func(limit time.Duration) {
		timer := time.NewTimer(limit)
		defer timer.Stop()
		for inflight > 0 {
			select {
			case r := <-results:
				handle(r)
			case <-timer.C:
				return
			}
		}
	}

	for {
		// Reap completed sends without blocking.
		for done := false; !done; {
			select {
			case r := <-results:
				handle(r)
			default:
				done = true
			}
		}
		if ctx.Err() != nil {
			drain(stopDrainTimeout)
			return
		}
		if inflight == 0 {
			if sawFail {
				sawFail = false
				cursor = s.acked.Load() + 1
				select {
				case <-time.After(s.cfg.RetryDelay):
				case <-ctx.Done():
				}
				continue
			}
			if next := s.acked.Load() + 1; cursor > next {
				cursor = next // stalled: re-ship the unacked gap
			}
		}
		if inflight >= s.cfg.Window {
			select {
			case r := <-results:
				handle(r)
			case <-ctx.Done():
			}
			continue
		}
		recs, err := s.log.ReadFrom(cursor, s.cfg.BatchMax)
		if err != nil {
			// Truncated past our cursor: jump forward. In a production
			// system this replica would need a full rebuild; the manager
			// only truncates below the minimum acked LSN, so this is a
			// defensive path.
			cursor = s.acked.Load() + 1
			continue
		}
		if len(recs) == 0 {
			notify := s.log.NotifyAppend()
			if recs, _ = s.log.ReadFrom(cursor, s.cfg.BatchMax); len(recs) == 0 {
				select {
				case <-notify:
				case r := <-results:
					handle(r)
				case <-ctx.Done():
				}
				continue
			}
		}
		// Linger to accumulate a fuller cross-transaction batch (the
		// baseline buffers longer); acks keep landing while we wait.
		if s.cfg.FlushDelay > 0 && len(recs) < s.cfg.BatchMax {
			timer := time.NewTimer(s.cfg.FlushDelay)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				continue
			}
			if more, _ := s.log.ReadFrom(cursor, s.cfg.BatchMax); len(more) > len(recs) {
				recs = more
			}
		}

		raw := redo.Marshal(recs)
		wire, cerr := s.cfg.Compressor.Compress(raw)
		compressed := cerr == nil && len(wire) < len(raw)
		if !compressed {
			wire = raw
		}
		batch := Batch{From: recs[0].LSN, Count: len(recs), Compressed: compressed, Codec: s.cfg.Compressor.Name(), Data: wire}

		s.mu.Lock()
		s.stats.Batches++
		s.stats.Records += int64(len(recs))
		s.stats.RawBytes += int64(len(raw))
		s.stats.WireBytes += int64(len(wire))
		s.mu.Unlock()
		metricBatches.Inc()
		metricRecords.Add(int64(len(recs)))
		metricRawBytes.Add(int64(len(raw)))
		metricWireBytes.Add(int64(len(wire)))

		cursor = recs[len(recs)-1].LSN + 1
		inflight++
		go func() {
			resp, err := s.net.Call(sendCtx, s.from, s.endpoint, netsim.Message{Payload: batch, Size: len(wire) + 32})
			if err != nil {
				results <- result{err: err}
				return
			}
			results <- result{acked: resp.Payload.(Ack).AppliedLSN}
		}()
	}
}

// applierStashMax bounds the reorder stash: beyond this many parked
// batches an early arrival is dropped and the shipper re-ships it.
const applierStashMax = 64

// ServeApplier registers a replication endpoint that replays incoming
// batches into applier and acknowledges the applied LSN. It returns the
// endpoint for failure injection.
//
// Pipelined shippers put several batches on the wire at once and the
// simulated network preserves no ordering between them, so batch N+1 can
// arrive before batch N. A bounded reorder stash parks such early arrivals
// and replays them the moment the gap fills, instead of rejecting them and
// forcing a rewind round trip.
func ServeApplier(n *netsim.Network, name, region string, applier *Applier, comp Compressor) *netsim.Endpoint {
	if comp == nil {
		comp = Flate{}
	}
	var (
		stashMu sync.Mutex
		stash   = map[uint64][]redo.Record{} // batch From -> decoded records
	)
	ack := func() (netsim.Message, error) {
		return netsim.Message{Payload: Ack{AppliedLSN: applier.AppliedLSN()}, Size: 16}, nil
	}
	return n.Register(name, region, func(_ context.Context, m netsim.Message) (netsim.Message, error) {
		batch, ok := m.Payload.(Batch)
		if !ok {
			return netsim.Message{}, errors.New("repl: bad batch payload")
		}
		data := batch.Data
		if batch.Compressed {
			var err error
			if data, err = comp.Decompress(data); err != nil {
				return netsim.Message{}, err
			}
		}
		recs, err := redo.Unmarshal(data)
		if err != nil {
			return netsim.Message{}, err
		}
		stashMu.Lock()
		defer stashMu.Unlock()
		if batch.From > applier.AppliedLSN()+1 {
			// Early arrival: park it (the ack below reports the current
			// applied LSN, which the shipper treats as "not yet").
			if len(stash) < applierStashMax {
				stash[batch.From] = recs
			}
			return ack()
		}
		if _, err := applier.ApplyParallel(recs); err != nil {
			return ack() // overlap raced another apply; shipper rewinds
		}
		// The gap may have filled: replay every stashed batch that is now
		// contiguous (duplicates and overlaps dedupe inside the applier).
		for {
			ready := uint64(0)
			for from := range stash {
				if from <= applier.AppliedLSN()+1 {
					ready = from
					break
				}
			}
			if ready == 0 {
				break
			}
			parked := stash[ready]
			delete(stash, ready)
			if _, err := applier.ApplyParallel(parked); err != nil {
				break
			}
		}
		return ack()
	})
}
