package repl

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"globaldb/internal/netsim"
	"globaldb/internal/redo"
)

// Batch is the wire unit of log shipping.
type Batch struct {
	// From is the LSN of the first record in Data.
	From uint64
	// Count is the number of records in Data.
	Count int
	// Compressed marks Data as codec-encoded.
	Compressed bool
	// Codec names the compressor used.
	Codec string
	// Data holds the marshaled (and possibly compressed) records.
	Data []byte
}

// Ack is the replica's response to a batch.
type Ack struct {
	// AppliedLSN is the replica's new applied position. On a gap it tells
	// the shipper where to rewind.
	AppliedLSN uint64
}

// ShipperConfig tunes a shipper.
type ShipperConfig struct {
	// BatchMax bounds records per batch.
	BatchMax int
	// FlushDelay is how long the shipper lingers after the first pending
	// record to accumulate a fuller batch — the knob that models Nagle-less
	// aggressive flushing (GlobalDB) versus buffered shipping (baseline).
	FlushDelay time.Duration
	// Compressor encodes batches; Noop for the baseline, Flate for
	// GlobalDB's LZ4-style compression.
	Compressor Compressor
	// RetryDelay is the pause after a failed send (replica down, partition).
	RetryDelay time.Duration
}

// DefaultShipperConfig returns GlobalDB's optimized shipping parameters.
func DefaultShipperConfig() ShipperConfig {
	return ShipperConfig{
		BatchMax:   512,
		FlushDelay: 200 * time.Microsecond,
		Compressor: Flate{},
		RetryDelay: 5 * time.Millisecond,
	}
}

// BaselineShipperConfig returns the unoptimized baseline: no compression and
// sluggish flushing.
func BaselineShipperConfig() ShipperConfig {
	return ShipperConfig{
		BatchMax:   512,
		FlushDelay: 2 * time.Millisecond,
		Compressor: Noop{},
		RetryDelay: 5 * time.Millisecond,
	}
}

// ShipperStats are cumulative shipping counters.
type ShipperStats struct {
	Batches      int64
	Records      int64
	RawBytes     int64
	WireBytes    int64
	SendFailures int64
	AckedLSN     uint64
}

// Shipper tails a primary's redo log and streams batches to one replica
// endpoint over the simulated network, tracking the replica's applied LSN.
type Shipper struct {
	cfg      ShipperConfig
	net      *netsim.Network
	from     string // primary's region
	endpoint string // replica's replication endpoint

	log    *redo.Log
	cancel context.CancelFunc
	done   chan struct{}

	acked atomic.Uint64
	onAck func(lsn uint64)

	mu    sync.Mutex
	stats ShipperStats
}

// NewShipper creates a shipper from a primary log in region from to the
// replica's endpoint. onAck (optional) fires on every acknowledgement.
func NewShipper(cfg ShipperConfig, n *netsim.Network, from, endpoint string, log *redo.Log, onAck func(uint64)) *Shipper {
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 512
	}
	if cfg.Compressor == nil {
		cfg.Compressor = Noop{}
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 5 * time.Millisecond
	}
	return &Shipper{cfg: cfg, net: n, from: from, endpoint: endpoint, log: log, onAck: onAck}
}

// Start launches the shipping loop.
func (s *Shipper) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.done = make(chan struct{})
	go s.run(ctx)
}

// Stop terminates the loop and waits for it to exit.
func (s *Shipper) Stop() {
	if s.cancel != nil {
		s.cancel()
		<-s.done
	}
}

// AckedLSN returns the replica's last acknowledged applied LSN.
func (s *Shipper) AckedLSN() uint64 { return s.acked.Load() }

// Stats returns a snapshot of shipping counters.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.AckedLSN = s.acked.Load()
	return st
}

// Lag returns how many records the replica is behind the primary log.
func (s *Shipper) Lag() uint64 {
	last := s.log.LastLSN()
	acked := s.acked.Load()
	if acked >= last {
		return 0
	}
	return last - acked
}

func (s *Shipper) run(ctx context.Context) {
	defer close(s.done)
	cursor := uint64(1)
	for {
		recs, err := s.log.ReadFrom(cursor, s.cfg.BatchMax)
		if err != nil {
			// Truncated past our cursor: jump forward. In a production
			// system this replica would need a full rebuild; the manager
			// only truncates below the minimum acked LSN, so this is a
			// defensive path.
			cursor = s.acked.Load() + 1
			continue
		}
		if len(recs) == 0 {
			notify := s.log.NotifyAppend()
			if recs, _ = s.log.ReadFrom(cursor, s.cfg.BatchMax); len(recs) == 0 {
				select {
				case <-notify:
					continue
				case <-ctx.Done():
					return
				}
			}
		}
		// Linger to accumulate a fuller batch (baseline buffers longer).
		if s.cfg.FlushDelay > 0 && len(recs) < s.cfg.BatchMax {
			timer := time.NewTimer(s.cfg.FlushDelay)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return
			}
			if more, _ := s.log.ReadFrom(cursor, s.cfg.BatchMax); len(more) > len(recs) {
				recs = more
			}
		}

		raw := redo.Marshal(recs)
		wire, cerr := s.cfg.Compressor.Compress(raw)
		compressed := cerr == nil && len(wire) < len(raw)
		if !compressed {
			wire = raw
		}
		batch := Batch{From: recs[0].LSN, Count: len(recs), Compressed: compressed, Codec: s.cfg.Compressor.Name(), Data: wire}

		resp, err := s.net.Call(ctx, s.from, s.endpoint, netsim.Message{Payload: batch, Size: len(wire) + 32})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return
			}
			s.mu.Lock()
			s.stats.SendFailures++
			s.mu.Unlock()
			select {
			case <-time.After(s.cfg.RetryDelay):
			case <-ctx.Done():
				return
			}
			continue
		}
		ack := resp.Payload.(Ack)
		s.acked.Store(ack.AppliedLSN)
		cursor = ack.AppliedLSN + 1

		s.mu.Lock()
		s.stats.Batches++
		s.stats.Records += int64(len(recs))
		s.stats.RawBytes += int64(len(raw))
		s.stats.WireBytes += int64(len(wire))
		s.mu.Unlock()
		if s.onAck != nil {
			s.onAck(ack.AppliedLSN)
		}
	}
}

// ServeApplier registers a replication endpoint that replays incoming
// batches into applier and acknowledges the applied LSN. It returns the
// endpoint for failure injection.
func ServeApplier(n *netsim.Network, name, region string, applier *Applier, comp Compressor) *netsim.Endpoint {
	if comp == nil {
		comp = Flate{}
	}
	return n.Register(name, region, func(_ context.Context, m netsim.Message) (netsim.Message, error) {
		batch, ok := m.Payload.(Batch)
		if !ok {
			return netsim.Message{}, errors.New("repl: bad batch payload")
		}
		data := batch.Data
		if batch.Compressed {
			var err error
			if data, err = comp.Decompress(data); err != nil {
				return netsim.Message{}, err
			}
		}
		recs, err := redo.Unmarshal(data)
		if err != nil {
			return netsim.Message{}, err
		}
		applied, err := applier.ApplyParallel(recs)
		if err != nil {
			// Gap: tell the shipper where we are so it rewinds.
			return netsim.Message{Payload: Ack{AppliedLSN: applied}, Size: 16}, nil
		}
		return netsim.Message{Payload: Ack{AppliedLSN: applied}, Size: 16}, nil
	})
}
