// Package repl implements GlobalDB's redo replication: primaries ship log
// batches to replicas asynchronously or synchronously (Sec. II), and
// replicas replay them in parallel while tracking the maximum commit
// timestamp the RCP calculation consumes (Sec. IV-A).
package repl

import (
	"fmt"
	"math"
	"sync"

	"globaldb/internal/redo"
	"globaldb/internal/storage/mvcc"
	"globaldb/internal/ts"
)

// ApplyParallelism is the worker count for parallel heap-record replay. The
// paper notes that parallel apply "significantly improves log replay speed".
const ApplyParallelism = 4

// Applier replays redo records into a replica's MVCC store, preserving
// per-key order while applying runs of heap records in parallel. Control
// records (PENDING COMMIT, COMMIT, ABORT, PREPARE, COMMIT/ABORT PREPARED,
// DDL, HEARTBEAT) act as barriers.
type Applier struct {
	store *mvcc.Store

	mu         sync.Mutex
	appliedLSN uint64
	maxDDLTS   ts.Timestamp
	ddlTS      map[uint64]ts.Timestamp // tableID (from DDL record Txn field) -> ts

	onDDL func(r redo.Record) // optional catalog hook
}

// NewApplier returns an applier over store, expecting the log from LSN 1.
func NewApplier(store *mvcc.Store) *Applier {
	return &Applier{
		store: store,
		ddlTS: make(map[uint64]ts.Timestamp),
	}
}

// NewApplierWithStore returns an applier over a pre-seeded store (failover
// re-seeding), expecting a fresh log from LSN 1.
func NewApplierWithStore(store *mvcc.Store) *Applier { return NewApplier(store) }

// SetDDLHook installs a callback invoked for every replayed DDL record,
// letting the hosting node maintain a replica catalog.
func (a *Applier) SetDDLHook(fn func(redo.Record)) { a.onDDL = fn }

// AppliedLSN returns the LSN of the last applied record.
func (a *Applier) AppliedLSN() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.appliedLSN
}

// MaxCommitTS returns the largest commit timestamp replayed — this
// replica's contribution to the RCP (Fig. 4).
func (a *Applier) MaxCommitTS() ts.Timestamp { return a.store.LastCommitTS() }

// Store exposes the underlying MVCC store for reads.
func (a *Applier) Store() *mvcc.Store { return a.store }

// Apply replays a batch that must start exactly at AppliedLSN()+1. It
// returns the new applied LSN. Batches starting beyond the expected LSN are
// rejected so the shipper rewinds; batches that overlap the applied prefix
// are deduplicated (at-least-once delivery is fine).
func (a *Applier) Apply(recs []redo.Record) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range recs {
		switch {
		case r.LSN <= a.appliedLSN:
			continue // duplicate from a resend
		case r.LSN != a.appliedLSN+1:
			return a.appliedLSN, fmt.Errorf("repl: gap: got LSN %d, want %d", r.LSN, a.appliedLSN+1)
		}
		a.applyOne(r)
		a.appliedLSN = r.LSN
	}
	return a.appliedLSN, nil
}

// stageItem is one heap operation on a staging worker's queue, tagged with
// its log position so the coordinator can order control records around it.
type stageItem struct {
	lsn uint64
	op  mvcc.StagedOp
}

// ApplyParallel replays a batch with key-partitioned parallelism — the
// paper's "applies Redo logs in parallel which significantly improves log
// replay speed". Heap records hash by key onto ApplyParallelism staging
// workers, so every key's operations stage in log order. Control records
// (PENDING COMMIT, COMMIT, ABORT, PREPARE, COMMIT/ABORT PREPARED, DDL,
// HEARTBEAT) apply in strict log order on the dispatching goroutine, each
// gated on every worker having staged past its LSN.
//
// The gate makes the wait graph acyclic. A worker blocks in StageOp only
// when it finds a foreign intent; per-key log order means the holder's
// resolution record precedes the blocked op in the log, so the coordinator
// has either applied it (the worker re-checks and proceeds) or will reach
// it without waiting on this worker: the blocked op's LSN is strictly
// greater than the resolution's LSN, so the worker's published progress
// does not gate the coordinator.
func (a *Applier) ApplyParallel(recs []redo.Record) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()

	queues := make([][]stageItem, ApplyParallelism)
	var controls []redo.Record
	expected := a.appliedLSN + 1
	for i := range recs {
		r := &recs[i]
		if r.LSN <= a.appliedLSN {
			continue
		}
		if r.LSN != expected {
			return a.appliedLSN, fmt.Errorf("repl: gap: got LSN %d, want %d", r.LSN, expected)
		}
		expected++
		if isHeap(r.Type) {
			p := int(keyHash(r.Key) % ApplyParallelism)
			queues[p] = append(queues[p], stageItem{lsn: r.LSN, op: mvcc.StagedOp{
				Txn: mvcc.TxnID(r.Txn), Key: r.Key, Value: r.Value,
				Deleted: r.Type == redo.TypeHeapDelete,
			}})
		} else {
			controls = append(controls, *r)
		}
	}

	// next[w] is the LSN of worker w's next unstaged item (MaxUint64 when
	// drained); the coordinator applies a control record at LSN r only once
	// min(next) > r, i.e. all heap records before it are staged.
	var (
		progressMu sync.Mutex
		progressCv = sync.NewCond(&progressMu)
		next       = make([]uint64, ApplyParallelism)
	)
	for w, q := range queues {
		if len(q) == 0 {
			next[w] = math.MaxUint64
		} else {
			next[w] = q[0].lsn
		}
	}
	var wg sync.WaitGroup
	for w, q := range queues {
		if len(q) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, q []stageItem) {
			defer wg.Done()
			for i, item := range q {
				if err := a.store.StageOp(item.op); err != nil {
					panic(fmt.Sprintf("repl: parallel replay: %v", err))
				}
				progressMu.Lock()
				if i+1 < len(q) {
					next[w] = q[i+1].lsn
				} else {
					next[w] = math.MaxUint64
				}
				progressCv.Broadcast()
				progressMu.Unlock()
			}
		}(w, q)
	}
	waitStagedBefore := func(lsn uint64) {
		progressMu.Lock()
		for {
			min := uint64(math.MaxUint64)
			for _, n := range next {
				if n < min {
					min = n
				}
			}
			if min > lsn {
				break
			}
			progressCv.Wait()
		}
		progressMu.Unlock()
	}
	for i := range controls {
		waitStagedBefore(controls[i].LSN)
		a.applyOne(controls[i])
	}
	wg.Wait()
	if expected > a.appliedLSN+1 {
		a.appliedLSN = expected - 1
	}
	return a.appliedLSN, nil
}

// keyHash is FNV-1a over the key, picking the staging worker so each key's
// operations replay in log order on one worker.
func keyHash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func isHeap(t redo.Type) bool {
	return t == redo.TypeHeapInsert || t == redo.TypeHeapUpdate || t == redo.TypeHeapDelete
}

// applyOne replays a single record. Replay bypasses snapshot conflict
// checks (ts.Max snapshots): the primary already serialized these writes.
func (a *Applier) applyOne(r redo.Record) {
	txn := mvcc.TxnID(r.Txn)
	switch r.Type {
	case redo.TypeHeapInsert, redo.TypeHeapUpdate:
		// Replay errors are impossible by construction (primary-serialized
		// order); a failure here would mean a corrupted stream.
		if err := a.store.Put(txn, r.Key, r.Value, ts.Max); err != nil {
			panic(fmt.Sprintf("repl: replay Put lsn=%d: %v", r.LSN, err))
		}
	case redo.TypeHeapDelete:
		if err := a.store.Delete(txn, r.Key, ts.Max); err != nil {
			panic(fmt.Sprintf("repl: replay Delete lsn=%d: %v", r.LSN, err))
		}
	case redo.TypePendingCommit:
		// Locks the transaction's tuples until COMMIT/ABORT replays
		// (Sec. IV-A); readers at the RCP wait instead of missing it.
		a.store.MarkPending(txn)
	case redo.TypeCommit, redo.TypeCommitPrepared:
		if err := a.store.Commit(txn, r.TS); err != nil {
			// The transaction wrote nothing on this shard (control-only
			// stream); still advance the visibility watermark.
			a.store.AdvanceCommitWatermark(r.TS)
		}
	case redo.TypeAbort, redo.TypeAbortPrepared:
		_ = a.store.Abort(txn) // not-found is fine: nothing was staged here
	case redo.TypePrepare:
		a.store.MarkPrepared(txn)
	case redo.TypeDDL:
		if r.TS > a.maxDDLTS {
			a.maxDDLTS = r.TS
		}
		if r.Txn != 0 && r.TS > a.ddlTS[r.Txn] {
			a.ddlTS[r.Txn] = r.TS // DDL records carry the table ID in Txn
		}
		a.store.AdvanceCommitWatermark(r.TS)
		if a.onDDL != nil {
			a.onDDL(r)
		}
	case redo.TypeHeartbeat:
		a.store.AdvanceCommitWatermark(r.TS)
	}
}

// MaxDDLTS returns the largest replayed DDL timestamp.
func (a *Applier) MaxDDLTS() ts.Timestamp {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxDDLTS
}
