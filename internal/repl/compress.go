package repl

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Compressor compresses redo batches before they cross the WAN. The paper
// uses LZ4; the stdlib's DEFLATE is the substituted LZ-family codec — the
// experiments only depend on batches shrinking before paying for bandwidth.
type Compressor interface {
	// Name identifies the codec in stats and logs.
	Name() string
	// Compress returns the encoded form of b.
	Compress(b []byte) ([]byte, error)
	// Decompress inverts Compress.
	Decompress(b []byte) ([]byte, error)
}

// Noop is the identity compressor (the baseline configuration).
type Noop struct{}

// Name implements Compressor.
func (Noop) Name() string { return "none" }

// Compress implements Compressor.
func (Noop) Compress(b []byte) ([]byte, error) { return b, nil }

// Decompress implements Compressor.
func (Noop) Decompress(b []byte) ([]byte, error) { return b, nil }

// Flate compresses with DEFLATE at a fast level, standing in for LZ4.
type Flate struct{}

var flateWriters = sync.Pool{
	New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	},
}

// Name implements Compressor.
func (Flate) Name() string { return "flate" }

// Compress implements Compressor.
func (Flate) Compress(b []byte) ([]byte, error) {
	var buf bytes.Buffer
	w := flateWriters.Get().(*flate.Writer)
	defer flateWriters.Put(w)
	w.Reset(&buf)
	if _, err := w.Write(b); err != nil {
		return nil, fmt.Errorf("repl: compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("repl: compress: %w", err)
	}
	return buf.Bytes(), nil
}

// Decompress implements Compressor.
func (Flate) Decompress(b []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(b))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("repl: decompress: %w", err)
	}
	return out, nil
}
