package repl

import (
	"fmt"
	"math/rand"
	"testing"

	"globaldb/internal/redo"
	"globaldb/internal/storage/mvcc"
	"globaldb/internal/ts"
)

// buildWorkload produces an interleaved redo stream of committed
// transactions over a keyspace, shaped like TPC-C traffic.
func buildWorkload(txns, writesPerTxn, keyspace int) []redo.Record {
	rng := rand.New(rand.NewSource(7))
	log := redo.NewLog()
	var commitTS ts.Timestamp = 1
	for txn := uint64(1); txn <= uint64(txns); txn++ {
		var recs []redo.Record
		for i := 0; i < writesPerTxn; i++ {
			k := []byte(fmt.Sprintf("key-%06d", rng.Intn(keyspace)))
			v := make([]byte, 96)
			rng.Read(v)
			recs = append(recs, redo.Record{Type: redo.TypeHeapUpdate, Txn: txn, Key: k, Value: v})
		}
		recs = append(recs, redo.Record{Type: redo.TypePendingCommit, Txn: txn})
		commitTS++
		recs = append(recs, redo.Record{Type: redo.TypeCommit, Txn: txn, TS: commitTS})
		log.AppendBatch(recs)
	}
	recs, _ := log.ReadFrom(1, 0)
	return recs
}

// BenchmarkReplaySequential is the ablation baseline: single-threaded redo
// replay.
func BenchmarkReplaySequential(b *testing.B) {
	recs := buildWorkload(500, 12, 4096)
	b.SetBytes(recBytes(recs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := NewApplier(mvcc.NewStore())
		b.StartTimer()
		if _, err := a.Apply(recs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayParallel measures the paper's parallel replay ("applies
// Redo logs in parallel which significantly improves log replay speed").
func BenchmarkReplayParallel(b *testing.B) {
	recs := buildWorkload(500, 12, 4096)
	b.SetBytes(recBytes(recs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := NewApplier(mvcc.NewStore())
		b.StartTimer()
		if _, err := a.ApplyParallel(recs); err != nil {
			b.Fatal(err)
		}
	}
}

func recBytes(recs []redo.Record) int64 {
	var n int64
	for _, r := range recs {
		n += int64(16 + len(r.Key) + len(r.Value))
	}
	return n
}

// BenchmarkCompressRedoBatch measures the LZ-style compression ablation:
// how much a realistic redo batch shrinks and at what CPU cost.
func BenchmarkCompressRedoBatch(b *testing.B) {
	recs := buildWorkload(64, 12, 512)
	raw := redo.Marshal(recs)
	for _, comp := range []Compressor{Noop{}, Flate{}} {
		b.Run(comp.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			var wire []byte
			for i := 0; i < b.N; i++ {
				var err error
				wire, err = comp.Compress(raw)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(raw))/float64(len(wire)), "compression-ratio")
		})
	}
}
