package wal

import (
	"context"
	"testing"
	"time"

	"globaldb/internal/redo"
)

func BenchmarkAppendSyncEveryBatch(b *testing.B) {
	benchAppend(b, SyncEveryBatch)
}

func BenchmarkAppendSyncNever(b *testing.B) {
	benchAppend(b, SyncNever)
}

func benchAppend(b *testing.B, policy SyncPolicy) {
	w, err := Open(Options{Dir: b.TempDir(), Sync: policy})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	recs := genRecords(64, 1)
	next := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			recs[j].LSN = next + uint64(j)
		}
		next += uint64(len(recs))
		if err := w.Append(recs); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs)) * 48)
}

// benchFsyncDelay models a real device's sync cost; tmpfs fsync is nearly
// free, which would hide the contention group commit removes.
const benchFsyncDelay = 100 * time.Microsecond

// BenchmarkAppendGroupCommit: N concurrent committers, each append+wait-
// durable per commit, under the group-commit policy. Compare against
// BenchmarkAppendPerCommitFsync (SyncEveryBatch, the fsync-per-commit
// baseline) at the same parallelism.
func BenchmarkAppendGroupCommit(b *testing.B) {
	benchConcurrentCommit(b, SyncGroup)
}

func BenchmarkAppendPerCommitFsync(b *testing.B) {
	benchConcurrentCommit(b, SyncEveryBatch)
}

func benchConcurrentCommit(b *testing.B, policy SyncPolicy) {
	w, err := Open(Options{Dir: b.TempDir(), Sync: policy, FsyncDelay: benchFsyncDelay})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	ctx := context.Background()
	b.SetParallelism(4) // 4 × GOMAXPROCS committer goroutines
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		recs := []redo.Record{
			{Type: redo.TypeHeapInsert, Key: []byte("bench-key"), Value: []byte("bench-value")},
			{Type: redo.TypeCommit, TS: 1},
		}
		for pb.Next() {
			lsn, err := w.AppendAssign(recs)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.WaitDurable(ctx, lsn); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := w.GroupStats()
	if n := st.Appended / 2; n > 0 {
		b.ReportMetric(float64(st.Fsyncs)/float64(n), "fsyncs/commit")
	}
}

func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncNever, SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Append(genRecords(100000, 2)); err != nil {
		b.Fatal(err)
	}
	w.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := Recover(dir)
		if err != nil || len(recs) != 100000 {
			b.Fatalf("%d %v", len(recs), err)
		}
	}
}
