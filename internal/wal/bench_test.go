package wal

import (
	"testing"
)

func BenchmarkAppendSyncEveryBatch(b *testing.B) {
	benchAppend(b, SyncEveryBatch)
}

func BenchmarkAppendSyncNever(b *testing.B) {
	benchAppend(b, SyncNever)
}

func benchAppend(b *testing.B, policy SyncPolicy) {
	w, err := Open(Options{Dir: b.TempDir(), Sync: policy})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	recs := genRecords(64, 1)
	next := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			recs[j].LSN = next + uint64(j)
		}
		next += uint64(len(recs))
		if err := w.Append(recs); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs)) * 48)
}

func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncNever, SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Append(genRecords(100000, 2)); err != nil {
		b.Fatal(err)
	}
	w.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := Recover(dir)
		if err != nil || len(recs) != 100000 {
			b.Fatalf("%d %v", len(recs), err)
		}
	}
}
