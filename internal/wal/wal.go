// Package wal persists a data node's redo stream to disk, standing in for
// GaussDB's XLOG durability layer. The in-memory redo.Log remains the
// replication source of truth; the WAL makes the stream durable so a
// primary can crash-recover by replaying it (the same replay path replicas
// use, Sec. II-A). Commit durability is batch-native: under the SyncGroup
// policy a committer goroutine coalesces concurrent appenders' fsyncs into
// group commits (group.go), and callers observe durability through a
// monotone watermark (DurableLSN / WaitDurable) rather than per-append
// fsync returns.
//
// Layout: a directory of segment files named wal-<startLSN>.log, each a
// concatenation of the redo package's length-prefixed, CRC32C-protected
// frames. Recovery scans segments in LSN order, verifies every frame, and
// truncates a torn tail (an interrupted write during a crash) at the first
// corrupt or out-of-sequence frame.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"globaldb/internal/redo"
)

// DefaultSegmentBytes is the rotation threshold for segment files.
const DefaultSegmentBytes = 4 << 20

// SyncPolicy controls when appends reach stable storage.
type SyncPolicy uint8

const (
	// SyncEveryBatch fsyncs after every Append call (commit durability).
	SyncEveryBatch SyncPolicy = iota
	// SyncNever leaves flushing to the OS (fastest, weakest).
	SyncNever
	// SyncGroup batches fsyncs across concurrent appenders: a committer
	// goroutine coalesces everything appended within a linger window into
	// one fsync and resolves the affected WaitDurable futures (group
	// commit). Fsyncs are demand-driven — only a parked WaitDurable caller
	// triggers one, and it covers every record appended before it — so K
	// concurrent commits cost ~1 fsync and intent-only appends cost none.
	SyncGroup
)

// DefaultGroupLinger is how long the group committer waits after the first
// unsynced append for more commits to pile into the same fsync.
const DefaultGroupLinger = 200 * time.Microsecond

// DefaultGroupMaxBatch caps how many records a group fsync may cover before
// the linger is skipped and the fsync issued immediately.
const DefaultGroupMaxBatch = 4096

// Options configures a writer.
type Options struct {
	// Dir is the segment directory; created if missing.
	Dir string
	// SegmentBytes rotates segments at this size (default 4 MiB).
	SegmentBytes int64
	// Sync selects the durability policy (default SyncEveryBatch).
	Sync SyncPolicy
	// Linger bounds how long a group fsync waits for more committers
	// (SyncGroup only; default DefaultGroupLinger).
	Linger time.Duration
	// MaxBatch forces a group fsync once this many records are unsynced,
	// skipping the linger (SyncGroup only; default DefaultGroupMaxBatch).
	MaxBatch int
	// FsyncDelay adds a simulated device-sync latency to every fsync — the
	// WAL's analogue of netsim's WAN model, for benchmarks on tmpfs where
	// real fsync cost is invisible. Zero (the default) adds nothing.
	FsyncDelay time.Duration
}

// Errors.
var (
	// ErrClosed means the writer was closed.
	ErrClosed = errors.New("wal: writer closed")
	// ErrGap means an appended batch does not continue the stream.
	ErrGap = errors.New("wal: LSN gap")
)

// Writer appends redo records to segment files.
type Writer struct {
	opts Options

	mu      sync.Mutex
	file    *os.File
	size    int64
	nextLSN uint64
	closed  bool

	appends atomic.Int64
	syncs   atomic.Int64
	groups  atomic.Int64 // group fsyncs issued (SyncGroup)
	grouped atomic.Int64 // commit waiters released by group fsyncs

	// durable is the highest LSN known to be on stable storage; WaitDurable
	// futures resolve as it advances (group.go).
	durable atomic.Uint64
	wmu     sync.Mutex
	waiters []waiter
	werr    error

	// Group-committer goroutine plumbing (nil unless Sync == SyncGroup).
	syncReq    chan struct{}
	syncerStop chan struct{}
	syncerDone chan struct{}
	stopOnce   sync.Once
}

// segmentName formats the file name for a segment starting at startLSN.
func segmentName(startLSN uint64) string {
	return fmt.Sprintf("wal-%020d.log", startLSN)
}

// parseSegmentName extracts the start LSN, reporting ok=false for
// non-segment files.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open creates a writer. If the directory already holds segments, the
// writer continues after the last valid record (use Recover first to learn
// what survived).
func Open(opts Options) (*Writer, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: no directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	recs, err := Recover(opts.Dir)
	if err != nil {
		return nil, err
	}
	if opts.Sync == SyncGroup {
		if opts.Linger <= 0 {
			opts.Linger = DefaultGroupLinger
		}
		if opts.MaxBatch <= 0 {
			opts.MaxBatch = DefaultGroupMaxBatch
		}
	}
	w := &Writer{opts: opts, nextLSN: 1}
	if n := len(recs); n > 0 {
		w.nextLSN = recs[n-1].LSN + 1
		// Everything recovery validated is on disk already.
		w.durable.Store(recs[n-1].LSN)
	}
	if opts.Sync == SyncGroup {
		w.syncReq = make(chan struct{}, 1)
		w.syncerStop = make(chan struct{})
		w.syncerDone = make(chan struct{})
		go w.runSyncer()
	}
	return w, nil
}

// NextLSN returns the LSN the next appended record must carry.
func (w *Writer) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Append writes a batch of records, which must continue the stream
// contiguously from NextLSN. The batch is framed and written to the active
// segment. Under SyncEveryBatch it is fsynced before returning; under
// SyncGroup the group committer fsyncs it shortly after (WaitDurable parks
// until then); under SyncNever flushing is left to the OS.
func (w *Writer) Append(recs []redo.Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	for i, r := range recs {
		if r.LSN != w.nextLSN+uint64(i) {
			return fmt.Errorf("%w: record %d has LSN %d, want %d", ErrGap, i, r.LSN, w.nextLSN+uint64(i))
		}
	}
	return w.writeLocked(recs)
}

// writeLocked frames and writes a contiguous, validated batch, then applies
// the sync policy. Caller holds w.mu.
func (w *Writer) writeLocked(recs []redo.Record) error {
	if w.file == nil || w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(recs[0].LSN); err != nil {
			return err
		}
	}
	buf := redo.Marshal(recs)
	if _, err := w.file.Write(buf); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	w.size += int64(len(buf))
	last := recs[len(recs)-1].LSN
	w.nextLSN = last + 1
	w.appends.Add(int64(len(recs)))
	switch w.opts.Sync {
	case SyncEveryBatch:
		if err := w.fsyncTimed(w.file); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		w.advanceDurable(last)
	case SyncNever:
		// No fsync discipline: treat written as durable so WaitDurable
		// callers do not park forever on a policy that never syncs.
		w.advanceDurable(last)
	case SyncGroup:
		// The kick wakes the syncer, but fsyncs are demand-driven: the
		// syncer skips groups with no parked WaitDurable caller, so
		// intent-only appends cost no fsync of their own. The kick still
		// matters for waiters parked on an LSN this append just produced
		// (the archiver appends behind the committer's wait).
		w.kickSyncer()
	}
	return nil
}

// rotateLocked closes the active segment and starts a new one whose name
// records the first LSN it will hold.
func (w *Writer) rotateLocked(startLSN uint64) error {
	if w.file != nil {
		if err := w.file.Sync(); err != nil {
			return fmt.Errorf("wal: fsync on rotate: %w", err)
		}
		if err := w.file.Close(); err != nil {
			return fmt.Errorf("wal: close on rotate: %w", err)
		}
	}
	path := filepath.Join(w.opts.Dir, segmentName(startLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat segment: %w", err)
	}
	w.file = f
	w.size = st.Size()
	return nil
}

// Sync forces pending appends to stable storage and advances the durable
// watermark past them.
func (w *Writer) Sync() error {
	w.mu.Lock()
	if w.closed || w.file == nil {
		w.mu.Unlock()
		return nil
	}
	last := w.nextLSN - 1
	err := w.fsyncTimed(w.file)
	w.mu.Unlock()
	if err != nil {
		return err
	}
	w.advanceDurable(last)
	return nil
}

// Stats reports appended record and fsync counts.
func (w *Writer) Stats() (appended, syncs int64) {
	return w.appends.Load(), w.syncs.Load()
}

// Close stops the group committer (if any), syncs, and closes the active
// segment. Every record appended before Close is durable afterwards, so
// parked WaitDurable futures resolve successfully (or with the sync error).
func (w *Writer) Close() error {
	if w.syncerStop != nil {
		w.stopOnce.Do(func() { close(w.syncerStop) })
		<-w.syncerDone
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	if w.file == nil {
		w.mu.Unlock()
		w.advanceDurable(w.durable.Load()) // nothing written; nothing owed
		return nil
	}
	last := w.nextLSN - 1
	err := w.file.Sync()
	cerr := w.file.Close()
	w.mu.Unlock()
	if err != nil {
		w.failWaiters(fmt.Errorf("wal: fsync on close: %w", err))
		return err
	}
	w.advanceDurable(last)
	w.failWaiters(ErrClosed) // waiters beyond the last appended LSN
	return cerr
}

// Recover reads every valid record from the directory's segments, in LSN
// order. A corrupt or out-of-sequence frame ends recovery at the last good
// record (torn tail truncation); the damaged tail is physically truncated
// so a subsequent writer continues from a clean stream. Records from a
// segment whose frames precede an already-recovered LSN are deduplicated.
func Recover(dir string) ([]redo.Record, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	type seg struct {
		start uint64
		name  string
	}
	var segs []seg
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if start, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, seg{start: start, name: e.Name()})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })

	var out []redo.Record
	var lastLSN uint64
	for _, sg := range segs {
		path := filepath.Join(dir, sg.name)
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment: %w", err)
		}
		offset := int64(0)
		for len(buf) > 0 {
			r, rest, err := redo.DecodeRecord(buf)
			if err != nil {
				// Torn tail: truncate the damage and stop recovery here.
				if terr := os.Truncate(path, offset); terr != nil {
					return nil, fmt.Errorf("wal: truncate torn tail: %w", terr)
				}
				return out, nil
			}
			frameLen := int64(len(buf) - len(rest))
			if lastLSN != 0 && r.LSN != lastLSN+1 {
				if r.LSN <= lastLSN {
					// Duplicate from an overlapping segment; skip.
					buf = rest
					offset += frameLen
					continue
				}
				// A gap means the tail of a previous segment was lost;
				// everything from here on is unusable.
				if terr := os.Truncate(path, offset); terr != nil {
					return nil, fmt.Errorf("wal: truncate after gap: %w", terr)
				}
				return out, nil
			}
			out = append(out, r)
			lastLSN = r.LSN
			buf = rest
			offset += frameLen
		}
	}
	return out, nil
}

// Segments lists the segment file names in LSN order (for tests and tools).
func Segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
