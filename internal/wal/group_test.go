package wal

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"globaldb/internal/redo"
)

// commitOnce appends one txn's records with writer-assigned LSNs and waits
// for durability — the shape of a terminal committing under group commit.
func commitOnce(w *Writer, txn uint64) (uint64, error) {
	lsn, err := w.AppendAssign([]redo.Record{
		{Type: redo.TypeHeapInsert, Txn: txn, Key: []byte(fmt.Sprintf("k-%d", txn)), Value: []byte("v")},
		{Type: redo.TypeCommit, Txn: txn, TS: 1},
	})
	if err != nil {
		return 0, err
	}
	return lsn, w.WaitDurable(context.Background(), lsn)
}

func TestGroupCommitCoalescesFsyncs(t *testing.T) {
	w, err := Open(Options{
		Dir:        t.TempDir(),
		Sync:       SyncGroup,
		Linger:     500 * time.Microsecond,
		FsyncDelay: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const committers = 16
	const rounds = 8
	var wg sync.WaitGroup
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := commitOnce(w, uint64(c*rounds+r+1)); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := w.GroupStats()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	commits := int64(committers * rounds)
	if st.GroupedCommits != commits {
		t.Fatalf("grouped commits = %d, want %d", st.GroupedCommits, commits)
	}
	// The whole point: far fewer fsyncs than commits. With 16 concurrent
	// committers and a lingering syncer even a conservative bound holds.
	if st.Fsyncs >= commits {
		t.Fatalf("fsyncs = %d, commits = %d: no coalescing happened", st.Fsyncs, commits)
	}
	if st.DurableLSN != uint64(commits*2) {
		t.Fatalf("durable LSN = %d, want %d", st.DurableLSN, commits*2)
	}
}

// TestGroupCommitAckedIsRecoverable: any commit whose WaitDurable returned
// must be visible to Recover — without a clean Close. This is the durability
// contract group commit must not weaken.
func TestGroupCommitAckedIsRecoverable(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncGroup, Linger: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var acked atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				lsn, err := commitOnce(w, uint64(c*20+r+1))
				if err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				for {
					cur := acked.Load()
					if lsn <= cur || acked.CompareAndSwap(cur, lsn) {
						break
					}
				}
			}
		}(c)
	}
	wg.Wait()
	// No Close: recover straight from the directory, as a crash would.
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	var maxLSN uint64
	for _, r := range got {
		if r.LSN > maxLSN {
			maxLSN = r.LSN
		}
	}
	if maxLSN < acked.Load() {
		t.Fatalf("recovered up to LSN %d, but LSN %d was acked durable", maxLSN, acked.Load())
	}
	w.Close()
}

// TestGroupCommitHammer is the -race stress: concurrent AppendAssign,
// WaitDurable, explicit Sync, and a Close racing all of them. Every waiter
// must resolve (nil or ErrClosed) — nobody hangs, nothing data-races.
func TestGroupCommitHammer(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir(), Sync: SyncGroup, Linger: 50 * time.Microsecond, MaxBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for r := 0; ; r++ {
				lsn, err := w.AppendAssign([]redo.Record{{Type: redo.TypeHeartbeat, Txn: uint64(c), TS: 1}})
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				err = w.WaitDurable(ctx, lsn)
				cancel()
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("wait: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 50; i++ {
			if err := w.Sync(); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("sync: %v", err)
				return
			}
		}
	}()
	close(start)
	time.Sleep(20 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestWaitDurableContextCancel(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir(), Sync: SyncGroup, Linger: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	// Wait for an LSN that will never be appended.
	if err := w.WaitDurable(ctx, 1<<40); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
}

func TestWaitDurableAfterCloseFailsFutureLSNs(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir(), Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w.AppendAssign(genRecords(3, 21))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		// Parked on an LSN beyond everything appended; Close must fail it.
		errCh <- w.WaitDurable(context.Background(), lsn+100)
	}()
	// Let the waiter park before closing.
	time.Sleep(5 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	// Everything actually appended is durable after Close.
	if err := w.WaitDurable(context.Background(), lsn); err != nil {
		t.Fatalf("appended LSNs must be durable after Close: %v", err)
	}
}

func TestWaitDurableEveryBatchIsImmediate(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir(), Sync: SyncEveryBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	lsn, err := w.AppendAssign(genRecords(5, 22))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// SyncEveryBatch advances the watermark inside Append: no parking.
	if err := w.WaitDurable(ctx, lsn); err != nil {
		t.Fatalf("wait under SyncEveryBatch: %v", err)
	}
	if w.DurableLSN() != lsn {
		t.Fatalf("durable = %d, want %d", w.DurableLSN(), lsn)
	}
}
