package wal

import (
	"sync"

	"globaldb/internal/redo"
)

// Archiver tails an in-memory redo log and appends new records to a WAL
// writer — the durability sidecar a primary data node runs. Archival is
// asynchronous (like shipping to a local synchronous replica would be in
// GaussDB, durability trails the commit acknowledgment by one flush);
// Close drains everything appended so far before returning.
type Archiver struct {
	log      *redo.Log
	w        *Writer
	batchMax int

	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	lastErr error
}

// DefaultArchiveBatch is how many records an archiver drains per WAL append.
const DefaultArchiveBatch = 4096

// NewArchiver starts archiving log records from the writer's next LSN.
func NewArchiver(log *redo.Log, w *Writer) *Archiver {
	return NewArchiverBatched(log, w, DefaultArchiveBatch)
}

// NewArchiverBatched archives with an explicit per-append batch cap.
// batchMax=1 appends (and, under SyncEveryBatch, fsyncs) record by record —
// the no-coalescing baseline a database without group commit pays.
func NewArchiverBatched(log *redo.Log, w *Writer, batchMax int) *Archiver {
	if batchMax <= 0 {
		batchMax = DefaultArchiveBatch
	}
	a := &Archiver{log: log, w: w, batchMax: batchMax, stop: make(chan struct{}), done: make(chan struct{})}
	go a.run()
	return a
}

// Writer exposes the underlying WAL writer (durability waits, stats).
func (a *Archiver) Writer() *Writer { return a.w }

func (a *Archiver) run() {
	defer close(a.done)
	for {
		if err := a.drainOnce(); err != nil {
			a.mu.Lock()
			a.lastErr = err
			a.mu.Unlock()
			return
		}
		notify := a.log.NotifyAppend()
		// Re-check after arming the notification to avoid a lost wakeup.
		if a.log.LastLSN() >= a.w.NextLSN() {
			continue
		}
		select {
		case <-a.stop:
			return
		case <-notify:
		}
	}
}

// drainOnce archives every record currently in the log.
func (a *Archiver) drainOnce() error {
	for {
		next := a.w.NextLSN()
		if a.log.LastLSN() < next {
			return nil
		}
		recs, err := a.log.ReadFrom(next, a.batchMax)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			return nil
		}
		if err := a.w.Append(recs); err != nil {
			return err
		}
	}
}

// Err reports a terminal archiving error, if any.
func (a *Archiver) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastErr
}

// Kill simulates a crash: it stops the archiver WITHOUT draining the log
// tail and closes the writer. Records the primary appended but the
// archiver had not yet written are lost — exactly what a crash loses —
// while every record whose WaitDurable completed survives. Test-only.
func (a *Archiver) Kill() error {
	close(a.stop)
	<-a.done
	return a.w.Close()
}

// Close drains the log tail, stops the archiver, and closes the writer.
func (a *Archiver) Close() error {
	close(a.stop)
	<-a.done
	if err := a.Err(); err != nil {
		a.w.Close()
		return err
	}
	if err := a.drainOnce(); err != nil {
		a.w.Close()
		return err
	}
	return a.w.Close()
}
