package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"globaldb/internal/redo"
	"globaldb/internal/repl"
	"globaldb/internal/storage/mvcc"
	"globaldb/internal/ts"
)

// genRecords builds a contiguous stream of n records starting at LSN 1,
// alternating heap writes and commits.
func genRecords(n int, seed int64) []redo.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]redo.Record, 0, n)
	lsn := uint64(1)
	txn := uint64(0)
	commit := ts.Timestamp(10)
	for len(recs) < n {
		txn++
		writes := 1 + rng.Intn(3)
		for i := 0; i < writes && len(recs) < n; i++ {
			recs = append(recs, redo.Record{
				LSN: lsn, Type: redo.TypeHeapInsert, Txn: txn,
				Key:   []byte(fmt.Sprintf("key-%04d", rng.Intn(500))),
				Value: []byte(fmt.Sprintf("val-%d-%d", txn, i)),
			})
			lsn++
		}
		if len(recs) < n {
			commit += ts.Timestamp(1 + rng.Intn(3))
			recs = append(recs, redo.Record{LSN: lsn, Type: redo.TypeCommit, Txn: txn, TS: commit})
			lsn++
		}
	}
	return recs
}

func TestWriterAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	recs := genRecords(100, 1)
	if err := w.Append(recs[:40]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[40:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].LSN != recs[i].LSN || got[i].Type != recs[i].Type ||
			!bytes.Equal(got[i].Key, recs[i].Key) || !bytes.Equal(got[i].Value, recs[i].Value) {
			t.Fatalf("record %d differs: %v vs %v", i, got[i], recs[i])
		}
	}
}

func TestWriterRejectsGaps(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	recs := genRecords(10, 2)
	if err := w.Append(recs[:5]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[6:]); !errors.Is(err, ErrGap) {
		t.Fatalf("gap append: %v", err)
	}
	// Internal discontinuity is also rejected.
	bad := []redo.Record{recs[5], recs[7]}
	if err := w.Append(bad); !errors.Is(err, ErrGap) {
		t.Fatalf("discontinuous append: %v", err)
	}
}

func TestWriterClosedRejectsAppend(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Append(genRecords(1, 3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestWriterSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	recs := genRecords(200, 4)
	for i := 0; i < len(recs); i += 10 {
		end := i + 10
		if end > len(recs) {
			end = len(recs)
		}
		if err := w.Append(recs[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation, got segments %v", segs)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("recovered %d, want %d", len(got), len(recs))
	}
}

func TestReopenContinuesStream(t *testing.T) {
	dir := t.TempDir()
	recs := genRecords(60, 5)
	w, err := Open(Options{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[:30]); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, err := Open(Options{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if w2.NextLSN() != 31 {
		t.Fatalf("NextLSN = %d, want 31", w2.NextLSN())
	}
	if err := w2.Append(recs[30:]); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("recovered %d, want 60", len(got))
	}
}

// lastSegment returns the path of the newest segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := Segments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	return filepath.Join(dir, segs[len(segs)-1])
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	recs := genRecords(50, 6)
	if err := w.Append(recs); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Chop bytes off the tail, simulating a crash mid-write.
	path := lastSegment(t, dir)
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 49 {
		t.Fatalf("recovered %d, want 49 (last record torn)", len(got))
	}
	// The torn tail is physically gone: a reopened writer continues
	// cleanly and recovery sees the new records.
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if w2.NextLSN() != 50 {
		t.Fatalf("NextLSN = %d, want 50", w2.NextLSN())
	}
	if err := w2.Append([]redo.Record{{LSN: 50, Type: redo.TypeHeartbeat, TS: 999}}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	got2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 50 || got2[49].TS != 999 {
		t.Fatalf("after repair: %d records", len(got2))
	}
}

func TestRecoverStopsAtCorruptFrame(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	recs := genRecords(20, 7)
	if err := w.Append(recs); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Flip a byte in the middle of the file: CRC catches it and recovery
	// keeps only the prefix.
	path := lastSegment(t, dir)
	buf, _ := os.ReadFile(path)
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= 20 {
		t.Fatalf("recovered %d records, want a strict prefix", len(got))
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

func TestRecoverEmptyAndMissingDir(t *testing.T) {
	got, err := Recover(t.TempDir())
	if err != nil || len(got) != 0 {
		t.Fatalf("empty dir: %v %v", got, err)
	}
	got, err = Recover(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(got) != 0 {
		t.Fatalf("missing dir: %v %v", got, err)
	}
}

func TestRecoverIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-zzz.log"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(genRecords(5, 8)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := Recover(dir)
	if err != nil || len(got) != 5 {
		t.Fatalf("recover: %d %v", len(got), err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncEveryBatch, SyncNever} {
		dir := t.TempDir()
		w, err := Open(Options{Dir: dir, Sync: policy})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(genRecords(10, 9)); err != nil {
			t.Fatal(err)
		}
		appended, syncs := w.Stats()
		if appended != 10 {
			t.Fatalf("appended = %d", appended)
		}
		if policy == SyncEveryBatch && syncs == 0 {
			t.Fatal("SyncEveryBatch must fsync")
		}
		if policy == SyncNever && syncs != 0 {
			t.Fatal("SyncNever must not fsync on append")
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		w.Close()
	}
}

// TestCrashRecoveryRebuildsStore replays a recovered WAL through the
// replica applier — the primary crash-recovery path — and checks that the
// rebuilt store matches a store that applied the stream directly.
func TestCrashRecoveryRebuildsStore(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	recs := genRecords(300, 10)
	for i := 0; i < len(recs); i += 17 {
		end := i + 17
		if end > len(recs) {
			end = len(recs)
		}
		if err := w.Append(recs[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	w.Close() // "crash" after everything is durable

	recovered, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	direct := repl.NewApplier(mvcc.NewStore())
	if _, err := direct.Apply(recs); err != nil {
		t.Fatal(err)
	}
	rebuilt := repl.NewApplier(mvcc.NewStore())
	if _, err := rebuilt.Apply(recovered); err != nil {
		t.Fatal(err)
	}
	if direct.MaxCommitTS() != rebuilt.MaxCommitTS() {
		t.Fatalf("watermarks differ: %v vs %v", direct.MaxCommitTS(), rebuilt.MaxCommitTS())
	}
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		a := direct.Store().Versions(key)
		b := rebuilt.Store().Versions(key)
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d versions", key, len(a), len(b))
		}
		for j := range a {
			if a[j].CommitTS != b[j].CommitTS || !bytes.Equal(a[j].Value, b[j].Value) {
				t.Fatalf("%s version %d differs", key, j)
			}
		}
	}
}

// TestRecoverPrefixProperty: recovery after truncating the file at ANY byte
// offset yields a valid prefix of the original stream (never garbage, never
// out of order).
func TestRecoverPrefixProperty(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	recs := genRecords(40, 11)
	if err := w.Append(recs); err != nil {
		t.Fatal(err)
	}
	w.Close()
	path := lastSegment(t, dir)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(cut uint16) bool {
		n := int(cut) % (len(full) + 1)
		scratch := t.TempDir()
		p := filepath.Join(scratch, segmentName(1))
		if err := os.WriteFile(p, full[:n], 0o644); err != nil {
			return false
		}
		got, err := Recover(scratch)
		if err != nil {
			return false
		}
		if len(got) > len(recs) {
			return false
		}
		for i, r := range got {
			if r.LSN != recs[i].LSN || !bytes.Equal(r.Key, recs[i].Key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
