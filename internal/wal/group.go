package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"globaldb/internal/obs"
	"globaldb/internal/redo"
)

// Group commit (the paper's write-path throughput lever, mirroring GaussDB's
// XLOG group flush): under SyncGroup a background committer goroutine
// coalesces the fsyncs of concurrent Append callers. Appends write their
// frames to the OS immediately and return; durability is tracked by a
// monotone durable-LSN watermark that a single fsync advances for every
// record written before it. K concurrent commits therefore cost ~1 fsync
// instead of K. Callers that need durability park on WaitDurable — a
// per-caller completion future resolved when the watermark passes their LSN.

// Commit-path metric names on obs.Default. Fsync counts include every
// policy; the group_* instruments move only under SyncGroup.
const (
	// MetricFsyncs counts every fsync the WAL layer issues.
	MetricFsyncs = "wal_fsyncs_total"
	// MetricGroupCommits counts group fsyncs (one per coalesced batch).
	MetricGroupCommits = "wal_group_commits_total"
	// MetricGroupedCommits counts commit waiters completed by group fsyncs.
	MetricGroupedCommits = "wal_grouped_commits_total"
	// MetricFsyncsSaved counts fsyncs avoided by coalescing: for a group
	// releasing k>=1 waiters, k-1 per-commit fsyncs were saved.
	MetricFsyncsSaved = "wal_fsyncs_saved_total"
	// MetricGroupSize is a histogram of waiters released per group fsync
	// (unit: 1ns == 1 commit; the registry's log buckets double as a
	// count distribution).
	MetricGroupSize = "wal_group_size"
	// MetricFsyncLatency is a histogram of fsync wall time (including any
	// configured FsyncDelay device model).
	MetricFsyncLatency = "wal_fsync_seconds"
)

var (
	metricFsyncs         = obs.Default.Counter(MetricFsyncs)
	metricGroupCommits   = obs.Default.Counter(MetricGroupCommits)
	metricGroupedCommits = obs.Default.Counter(MetricGroupedCommits)
	metricFsyncsSaved    = obs.Default.Counter(MetricFsyncsSaved)
	metricGroupSize      = obs.Default.Histogram(MetricGroupSize)
	metricFsyncLatency   = obs.Default.Histogram(MetricFsyncLatency)
)

// waiter is one parked WaitDurable caller. ch is buffered so completion
// never blocks on a caller that abandoned the wait (context cancellation).
type waiter struct {
	lsn uint64
	ch  chan error
}

// DurableLSN returns the highest LSN known to be on stable storage.
func (w *Writer) DurableLSN() uint64 { return w.durable.Load() }

// WaitDurable blocks until every record up to lsn is durable per the
// writer's sync policy, the context is canceled, or the writer fails.
// Under SyncEveryBatch the watermark advances inside Append, so the wait
// usually returns immediately; under SyncGroup it resolves when the
// committer goroutine's next coalesced fsync covers lsn; under SyncNever
// appends count as durable the moment they are written (the caller opted
// out of fsync discipline entirely). lsn may exceed the last appended LSN:
// the wait then also covers the append that will produce it.
func (w *Writer) WaitDurable(ctx context.Context, lsn uint64) error {
	if w.durable.Load() >= lsn {
		return nil
	}
	w.wmu.Lock()
	if w.durable.Load() >= lsn {
		w.wmu.Unlock()
		return nil
	}
	if w.werr != nil {
		err := w.werr
		w.wmu.Unlock()
		return err
	}
	ch := make(chan error, 1)
	w.waiters = append(w.waiters, waiter{lsn: lsn, ch: ch})
	w.wmu.Unlock()
	// Fsyncs are demand-driven: the syncer skips groups nobody waits for,
	// so the kick must come after parking (a kick consumed by a skipped
	// group is re-issued here, never lost).
	w.kickSyncer()
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// advanceDurable moves the watermark to upTo and completes every waiter at
// or below it, returning how many it released.
func (w *Writer) advanceDurable(upTo uint64) int {
	w.wmu.Lock()
	if upTo > w.durable.Load() {
		w.durable.Store(upTo)
	}
	released := 0
	kept := w.waiters[:0]
	for _, wt := range w.waiters {
		if wt.lsn <= upTo {
			wt.ch <- nil
			released++
		} else {
			kept = append(kept, wt)
		}
	}
	w.waiters = kept
	w.wmu.Unlock()
	return released
}

// failWaiters resolves every parked waiter with err and records it as the
// writer's terminal error.
func (w *Writer) failWaiters(err error) {
	w.wmu.Lock()
	if w.werr == nil {
		w.werr = err
	}
	for _, wt := range w.waiters {
		wt.ch <- err
	}
	w.waiters = nil
	w.wmu.Unlock()
}

// kickSyncer schedules a group fsync (no-op if one is already scheduled).
func (w *Writer) kickSyncer() {
	select {
	case w.syncReq <- struct{}{}:
	default:
	}
}

// runSyncer is the committer goroutine: it waits for appended-but-unsynced
// records, lingers briefly so concurrent committers pile into the same
// group, then issues one fsync and resolves every waiter it covered.
func (w *Writer) runSyncer() {
	defer close(w.syncerDone)
	for {
		select {
		case <-w.syncReq:
		case <-w.syncerStop:
			return // Close's final sync covers the tail
		}
		if w.opts.Linger > 0 && !w.maxBatchPending() {
			timer := time.NewTimer(w.opts.Linger)
			select {
			case <-timer.C:
			case <-w.syncerStop:
				timer.Stop()
				return
			}
		}
		// Absorb kicks that arrived during the linger: this fsync covers
		// their records too.
		select {
		case <-w.syncReq:
		default:
		}
		if err := w.groupSync(); err != nil {
			w.failWaiters(err)
			return
		}
	}
}

// maxBatchPending reports whether the unsynced backlog already reached
// MaxBatch records, in which case the linger is skipped.
func (w *Writer) maxBatchPending() bool {
	w.mu.Lock()
	appended := w.nextLSN - 1
	w.mu.Unlock()
	return appended >= w.durable.Load()+uint64(w.opts.MaxBatch)
}

// waitersPending reports whether any WaitDurable caller is parked.
func (w *Writer) waitersPending() bool {
	w.wmu.Lock()
	n := len(w.waiters)
	w.wmu.Unlock()
	return n > 0
}

// groupSync performs one coalesced fsync. The fsync runs outside the append
// mutex so the next group accumulates while the device write is in flight —
// the overlap is where group commit's throughput comes from. Fsyncs are
// demand-driven: a group nobody is parked on is skipped, so intent traffic
// (appends that never wait) rides along with the next commit's fsync
// instead of paying its own. Unwaited records still reach stable storage on
// rotation and Close; losing them in a crash loses only unacked work.
func (w *Writer) groupSync() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	upTo := w.nextLSN - 1
	f := w.file
	w.mu.Unlock()
	if f == nil || upTo == 0 || upTo <= w.durable.Load() {
		return nil
	}
	if !w.waitersPending() {
		// Nobody needs durability yet. WaitDurable kicks after parking, so
		// skipping here cannot strand a commit.
		return nil
	}
	if err := w.fsyncTimed(f); err != nil {
		// A rotation may have closed this segment underneath us; rotation
		// fsyncs before closing, so everything up to upTo is durable anyway.
		if !errors.Is(err, os.ErrClosed) {
			return fmt.Errorf("wal: group fsync: %w", err)
		}
	}
	released := w.advanceDurable(upTo)
	w.groups.Add(1)
	w.grouped.Add(int64(released))
	metricGroupCommits.Inc()
	metricGroupedCommits.Add(int64(released))
	metricGroupSize.Observe(time.Duration(released))
	if released > 1 {
		metricFsyncsSaved.Add(int64(released - 1))
	}
	// Records appended while the fsync was in flight form the next group.
	w.mu.Lock()
	more := !w.closed && w.nextLSN-1 > upTo
	w.mu.Unlock()
	if more {
		w.kickSyncer()
	}
	return nil
}

// fsyncTimed fsyncs f, applies the configured device-latency model, and
// records the fsync count and latency metrics. FsyncDelay stands in for a
// real disk's sync cost the same way netsim stands in for the WAN: on
// tmpfs-backed test dirs fsync is nearly free, which would hide the very
// contention group commit exists to remove.
func (w *Writer) fsyncTimed(f *os.File) error {
	t0 := time.Now()
	err := f.Sync()
	if w.opts.FsyncDelay > 0 {
		time.Sleep(w.opts.FsyncDelay)
	}
	if err == nil {
		w.syncs.Add(1)
		metricFsyncs.Inc()
		metricFsyncLatency.Observe(time.Since(t0))
	}
	return err
}

// GroupStats reports the writer's cumulative group-commit counters.
type GroupStats struct {
	// Appended is the number of records written.
	Appended int64
	// Fsyncs is the number of fsyncs issued (all policies).
	Fsyncs int64
	// Groups is the number of group fsyncs (SyncGroup only).
	Groups int64
	// GroupedCommits is the number of commit waiters those groups released.
	GroupedCommits int64
	// DurableLSN is the current durable watermark.
	DurableLSN uint64
}

// GroupStats returns a snapshot of the writer's group-commit counters.
func (w *Writer) GroupStats() GroupStats {
	return GroupStats{
		Appended:       w.appends.Load(),
		Fsyncs:         w.syncs.Load(),
		Groups:         w.groups.Load(),
		GroupedCommits: w.grouped.Load(),
		DurableLSN:     w.durable.Load(),
	}
}

// AppendAssign appends records whose LSNs are assigned by the writer under
// its own mutex, returning the last LSN written. It lets independent
// committers append concurrently without coordinating contiguity themselves
// (Append's ErrGap contract) — the shape of K terminals racing commit
// records into one log.
func (w *Writer) AppendAssign(recs []redo.Record) (uint64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	for i := range recs {
		recs[i].LSN = w.nextLSN + uint64(i)
	}
	if err := w.writeLocked(recs); err != nil {
		return 0, err
	}
	return recs[len(recs)-1].LSN, nil
}
