// Package clock implements GlobalDB's global clock infrastructure (Sec. III).
//
// The paper deploys a GPS-plus-atomic-clock time device in each regional
// cluster; machines synchronize against it every millisecond over a ~60 µs
// TCP round trip, and oscillator drift between syncs is bounded at 200 PPM.
// A GClock reading is therefore an interval: TS = Tclock ± Terr with
// Terr = Tsync + Tdrift (Eq. 1).
//
// Here the device is simulated: it reports true time unless failed, and
// node clocks model sync error and drift explicitly. Fault-injection hooks
// reproduce device outages (error bounds grow until the cluster falls back
// to GTM mode) and bound-violating skew (the Listing 1 anomaly).
package clock

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"globaldb/internal/ts"
)

// Source provides true time. The default is the machine's clock; tests can
// substitute a manual source.
type Source interface {
	Now() time.Time
}

type realSource struct{}

func (realSource) Now() time.Time { return time.Now() }

// Real returns the wall-clock time source.
func Real() Source { return realSource{} }

// Manual is a controllable time source for deterministic tests.
type Manual struct {
	mu  sync.Mutex
	now time.Time
}

// NewManual returns a manual source starting at start.
func NewManual(start time.Time) *Manual { return &Manual{now: start} }

// Now returns the current manual time.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the manual clock forward by d.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	m.mu.Unlock()
}

// ErrDeviceFailed is returned by a failed time device.
var ErrDeviceFailed = errors.New("clock: global time device failed")

// Device is the per-region global time source (GPS receiver + atomic clock).
// It reports true time to within nanoseconds, or fails entirely.
type Device struct {
	src    Source
	region string

	mu     sync.RWMutex
	failed bool
}

// NewDevice creates a device for a region backed by src.
func NewDevice(region string, src Source) *Device {
	return &Device{src: src, region: region}
}

// Region returns the region this device serves.
func (d *Device) Region() string { return d.region }

// Read returns the device's time.
func (d *Device) Read() (time.Time, error) {
	d.mu.RLock()
	failed := d.failed
	d.mu.RUnlock()
	if failed {
		return time.Time{}, ErrDeviceFailed
	}
	return d.src.Now(), nil
}

// SetFailed injects or heals a device failure.
func (d *Device) SetFailed(failed bool) {
	d.mu.Lock()
	d.failed = failed
	d.mu.Unlock()
}

// NodeConfig configures a node clock.
type NodeConfig struct {
	// SyncRTT is the round trip to the regional time device (Tsync). The
	// paper observes ~60 µs.
	SyncRTT time.Duration
	// MaxDriftPPM bounds oscillator drift between syncs; the paper assumes
	// 200 PPM.
	MaxDriftPPM float64
	// SyncInterval is how often Start re-synchronizes; the paper uses 1 ms.
	SyncInterval time.Duration
}

// DefaultNodeConfig mirrors the paper's deployment parameters.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{SyncRTT: 60 * time.Microsecond, MaxDriftPPM: 200, SyncInterval: time.Millisecond}
}

// Node is one machine's synchronized clock. Reads return intervals whose
// error bound is the sync uncertainty plus accumulated drift allowance.
type Node struct {
	cfg    NodeConfig
	src    Source
	device *Device

	mu           sync.Mutex
	synced       bool
	lastSyncTrue time.Time
	faultSkew    time.Duration // injected skew NOT reflected in Err (bound violation)
	driftPPM     float64       // actual oscillator drift applied to readings
}

// NewNode creates a node clock synchronized against device. It performs an
// initial sync; if the device is down the clock starts unsynchronized with
// an unbounded error.
func NewNode(cfg NodeConfig, src Source, device *Device) *Node {
	n := &Node{cfg: cfg, src: src, device: device}
	n.Sync()
	return n
}

// Sync synchronizes against the regional device. On failure the error bound
// keeps growing with drift until a later sync succeeds.
func (n *Node) Sync() error {
	t, err := n.device.Read()
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.synced = true
	n.lastSyncTrue = t
	n.mu.Unlock()
	return nil
}

// Start launches periodic synchronization and returns a stop function.
func (n *Node) Start() (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(n.cfg.SyncInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				n.Sync() // failure just widens the bound; nothing to do here
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// SetFaultSkew injects skew into readings without widening the reported
// error bound — a *violated* bound, the failure mode the DUAL-mode waits
// defend against. Zero heals the fault.
func (n *Node) SetFaultSkew(skew time.Duration) {
	n.mu.Lock()
	n.faultSkew = skew
	n.mu.Unlock()
}

// SetDriftPPM sets the oscillator's actual drift rate. Values within
// MaxDriftPPM stay inside the advertised bound.
func (n *Node) SetDriftPPM(ppm float64) {
	n.mu.Lock()
	n.driftPPM = ppm
	n.mu.Unlock()
}

// unboundedErr is the error reported before the first successful sync.
const unboundedErr = time.Hour

// Now returns the node's clock reading with its error bound.
func (n *Node) Now() ts.Interval {
	trueNow := n.src.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.synced {
		return ts.Interval{Clock: ts.FromTime(trueNow).Add(n.faultSkew), Err: unboundedErr}
	}
	elapsed := trueNow.Sub(n.lastSyncTrue)
	if elapsed < 0 {
		elapsed = 0
	}
	drift := time.Duration(float64(elapsed) * n.driftPPM / 1e6)
	errBound := n.cfg.SyncRTT + time.Duration(float64(elapsed)*n.cfg.MaxDriftPPM/1e6)
	return ts.Interval{
		Clock: ts.FromTime(trueNow).Add(drift + n.faultSkew),
		Err:   errBound,
	}
}

// Err returns the current error bound without the reading.
func (n *Node) Err() time.Duration { return n.Now().Err }

// Healthy reports whether the clock's error bound is within limit. The
// cluster uses this to decide when to fall back to GTM mode.
func (n *Node) Healthy(limit time.Duration) bool { return n.Err() <= limit }

// WaitUntilAfter blocks until the clock's lower bound strictly exceeds t —
// the commit wait of Sec. III ("wait until Tclock > TS"). With the paper's
// parameters the wait is on the order of 2×Terr ≈ 120 µs, below the OS
// timer granularity, so short waits spin-yield instead of sleeping.
func (n *Node) WaitUntilAfter(ctx context.Context, t ts.Timestamp) error {
	for {
		iv := n.Now()
		if iv.Lower() > t {
			return nil
		}
		gap := t.Sub(iv.Lower()) + time.Microsecond
		if gap <= 200*time.Microsecond {
			if err := ctx.Err(); err != nil {
				return err
			}
			runtime.Gosched()
			continue
		}
		if gap > time.Second {
			gap = time.Second // re-check periodically; the bound may shrink after a sync
		}
		timer := time.NewTimer(gap)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
	}
}
