package clock

import (
	"context"
	"errors"
	"testing"
	"time"

	"globaldb/internal/ts"
)

var epoch = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

func TestManualSource(t *testing.T) {
	m := NewManual(epoch)
	if !m.Now().Equal(epoch) {
		t.Fatal("manual start time wrong")
	}
	m.Advance(5 * time.Second)
	if !m.Now().Equal(epoch.Add(5 * time.Second)) {
		t.Fatal("advance wrong")
	}
}

func TestDeviceReadAndFailure(t *testing.T) {
	m := NewManual(epoch)
	d := NewDevice("xian", m)
	if d.Region() != "xian" {
		t.Fatal("region")
	}
	got, err := d.Read()
	if err != nil || !got.Equal(epoch) {
		t.Fatalf("Read: %v %v", got, err)
	}
	d.SetFailed(true)
	if _, err := d.Read(); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("failed device read: %v", err)
	}
	d.SetFailed(false)
	if _, err := d.Read(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeErrorBoundGrowsWithDrift(t *testing.T) {
	m := NewManual(epoch)
	dev := NewDevice("r", m)
	cfg := NodeConfig{SyncRTT: 60 * time.Microsecond, MaxDriftPPM: 200, SyncInterval: time.Millisecond}
	n := NewNode(cfg, m, dev)

	iv := n.Now()
	if iv.Err != 60*time.Microsecond {
		t.Fatalf("fresh sync Err = %v", iv.Err)
	}
	// After 1 s without sync: Terr = 60µs + 200e-6 * 1s = 260µs.
	m.Advance(time.Second)
	iv = n.Now()
	if iv.Err != 260*time.Microsecond {
		t.Fatalf("Err after 1s = %v, want 260µs", iv.Err)
	}
	// Re-sync collapses the bound back to Tsync.
	if err := n.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := n.Err(); got != 60*time.Microsecond {
		t.Fatalf("Err after resync = %v", got)
	}
}

func TestNodeReadingTracksTrueTime(t *testing.T) {
	m := NewManual(epoch)
	dev := NewDevice("r", m)
	n := NewNode(DefaultNodeConfig(), m, dev)
	m.Advance(time.Second)
	iv := n.Now()
	want := ts.FromTime(epoch.Add(time.Second))
	if iv.Clock != want {
		t.Fatalf("reading = %v, want %v", iv.Clock, want)
	}
	// True time is always inside the interval when drift is within bound.
	if iv.Lower() > want || want > iv.Upper() {
		t.Fatal("true time outside interval")
	}
}

func TestNodeActualDriftWithinBound(t *testing.T) {
	m := NewManual(epoch)
	dev := NewDevice("r", m)
	n := NewNode(DefaultNodeConfig(), m, dev)
	n.SetDriftPPM(150) // within the 200 PPM bound
	m.Advance(10 * time.Second)
	iv := n.Now()
	trueTS := ts.FromTime(epoch.Add(10 * time.Second))
	if trueTS < iv.Lower() || trueTS > iv.Upper() {
		t.Fatalf("true time %v outside [%v,%v] despite drift within bound", trueTS, iv.Lower(), iv.Upper())
	}
	if iv.Clock <= trueTS {
		t.Fatal("positive drift must push the reading ahead of true time")
	}
}

func TestNodeFaultSkewViolatesBound(t *testing.T) {
	m := NewManual(epoch)
	dev := NewDevice("r", m)
	n := NewNode(DefaultNodeConfig(), m, dev)
	n.SetFaultSkew(500 * time.Millisecond)
	iv := n.Now()
	trueTS := ts.FromTime(epoch)
	if trueTS >= iv.Lower() {
		t.Fatal("fault skew must push true time outside the interval")
	}
	n.SetFaultSkew(0)
	iv = n.Now()
	if trueTS < iv.Lower() || trueTS > iv.Upper() {
		t.Fatal("healed clock must contain true time again")
	}
}

func TestUnsyncedClockIsUnbounded(t *testing.T) {
	m := NewManual(epoch)
	dev := NewDevice("r", m)
	dev.SetFailed(true)
	n := NewNode(DefaultNodeConfig(), m, dev)
	if n.Healthy(time.Millisecond) {
		t.Fatal("never-synced clock must be unhealthy")
	}
	if n.Err() < time.Minute {
		t.Fatalf("unsynced Err = %v, want effectively unbounded", n.Err())
	}
	dev.SetFailed(false)
	if err := n.Sync(); err != nil {
		t.Fatal(err)
	}
	if !n.Healthy(time.Millisecond) {
		t.Fatal("synced clock must be healthy")
	}
}

func TestSyncFailureKeepsGrowingBound(t *testing.T) {
	m := NewManual(epoch)
	dev := NewDevice("r", m)
	n := NewNode(DefaultNodeConfig(), m, dev)
	dev.SetFailed(true)
	m.Advance(30 * time.Second)
	if err := n.Sync(); err == nil {
		t.Fatal("sync against failed device must error")
	}
	// 60µs + 200PPM × 30s = 6.06ms
	if got := n.Err(); got != 6060*time.Microsecond {
		t.Fatalf("Err = %v, want 6.06ms", got)
	}
}

func TestWaitUntilAfterRealTime(t *testing.T) {
	dev := NewDevice("r", Real())
	n := NewNode(DefaultNodeConfig(), Real(), dev)
	target := n.Now().Upper() // a commit timestamp
	start := time.Now()
	if err := n.WaitUntilAfter(context.Background(), target); err != nil {
		t.Fatal(err)
	}
	if n.Now().Lower() <= target {
		t.Fatal("wait returned before lower bound passed target")
	}
	// The wait should be on the order of 2×Terr, far below a second.
	if e := time.Since(start); e > time.Second {
		t.Fatalf("commit wait took %v", e)
	}
}

func TestWaitUntilAfterHonorsContext(t *testing.T) {
	m := NewManual(epoch)
	dev := NewDevice("r", m)
	n := NewNode(DefaultNodeConfig(), m, dev)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	// Manual time never advances, so the wait can only end via ctx.
	err := n.WaitUntilAfter(ctx, n.Now().Upper())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
}

func TestStartPeriodicSync(t *testing.T) {
	dev := NewDevice("r", Real())
	n := NewNode(NodeConfig{SyncRTT: 60 * time.Microsecond, MaxDriftPPM: 200, SyncInterval: time.Millisecond}, Real(), dev)
	stop := n.Start()
	defer stop()
	time.Sleep(20 * time.Millisecond)
	// With 1ms syncs the bound stays near Tsync (60µs + ≤ a few ms drift).
	if got := n.Err(); got > time.Millisecond {
		t.Fatalf("Err with periodic sync = %v", got)
	}
	stop()
	stop() // idempotent
}

func TestVisibilityRequirementsUnderGClock(t *testing.T) {
	// R.1/R.2 at the clock level: if commit-wait for trx1 finishes before
	// trx2 reads its invocation timestamp, then trx2's snapshot exceeds
	// trx1's commit timestamp.
	dev := NewDevice("r", Real())
	n1 := NewNode(DefaultNodeConfig(), Real(), dev)
	n2 := NewNode(DefaultNodeConfig(), Real(), dev)

	commitTS := n1.Now().Upper()
	if err := n1.WaitUntilAfter(context.Background(), commitTS); err != nil {
		t.Fatal(err)
	}
	snapTS := n2.Now().Upper()
	if snapTS <= commitTS {
		t.Fatalf("R.1 violated: snapshot %v <= commit %v", snapTS, commitTS)
	}
}
