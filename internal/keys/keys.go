// Package keys implements order-preserving ("memcomparable") key encoding.
//
// Data nodes store rows and index entries in B-trees keyed by byte slices;
// bytes.Compare over encoded keys must equal the natural composite ordering
// of (tableID, column values...). This is the same trick TiDB, CockroachDB
// and FoundationDB use so range scans over a prefix visit rows in primary
// key order.
package keys

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Tag bytes prefix every encoded element so heterogeneous tuples still sort
// deterministically and decoding is self-describing.
const (
	tagNull   byte = 0x01
	tagInt    byte = 0x03
	tagFloat  byte = 0x05
	tagString byte = 0x07
	tagBytes  byte = 0x08
	tagBool   byte = 0x09
)

var (
	// ErrCorrupt is returned when decoding malformed key bytes.
	ErrCorrupt = errors.New("keys: corrupt encoding")
)

// Encoder builds a composite key. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity pre-allocated for n bytes.
func NewEncoder(n int) *Encoder { return &Encoder{buf: make([]byte, 0, n)} }

// Bytes returns the encoded key. The slice aliases the encoder's buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset clears the encoder for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint64 appends an unsigned integer; bigger values sort later.
func (e *Encoder) Uint64(v uint64) *Encoder {
	e.buf = append(e.buf, tagInt)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}

// Int64 appends a signed integer; the sign bit is flipped so negative values
// sort before positive ones under unsigned byte comparison.
func (e *Encoder) Int64(v int64) *Encoder {
	return e.Uint64(uint64(v) ^ (1 << 63))
}

// Float64 appends a float with total ordering (-Inf < ... < -0 = 0 < ... <
// +Inf; NaN sorts first). IEEE 754 bits order correctly once negative
// numbers have all bits flipped and positive ones have the sign bit set.
func (e *Encoder) Float64(v float64) *Encoder {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	e.buf = append(e.buf, tagFloat)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], bits)
	e.buf = append(e.buf, b[:]...)
	return e
}

// Bool appends a boolean; false sorts before true.
func (e *Encoder) Bool(v bool) *Encoder {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, tagBool, b)
	return e
}

// String appends a string with escape-based termination so that "a" sorts
// before "ab" and no string is a raw prefix of another's encoding.
func (e *Encoder) String(s string) *Encoder {
	e.buf = append(e.buf, tagString)
	e.appendEscapedString(s)
	return e
}

// RawBytes appends an arbitrary byte slice with the same escaping as String.
func (e *Encoder) RawBytes(b []byte) *Encoder {
	e.buf = append(e.buf, tagBytes)
	e.appendEscaped(b)
	return e
}

// Null appends a NULL marker, which sorts before every other value.
func (e *Encoder) Null() *Encoder {
	e.buf = append(e.buf, tagNull)
	return e
}

// AppendRaw appends bytes that are already in encoded form — e.g. a table
// key prefix produced by another Encoder — without tagging or escaping.
func (e *Encoder) AppendRaw(b []byte) *Encoder {
	e.buf = append(e.buf, b...)
	return e
}

// appendEscaped writes b with 0x00 bytes escaped as 0x00 0xFF and a 0x00 0x01
// terminator. Under bytewise comparison this preserves ordering and makes
// the terminator sort before any continuation byte.
func (e *Encoder) appendEscaped(b []byte) {
	for _, c := range b {
		if c == 0x00 {
			e.buf = append(e.buf, 0x00, 0xFF)
		} else {
			e.buf = append(e.buf, c)
		}
	}
	e.buf = append(e.buf, 0x00, 0x01)
}

// appendEscapedString is appendEscaped for strings, skipping the []byte
// conversion (and its allocation) on the encode hot path.
func (e *Encoder) appendEscapedString(s string) {
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			e.buf = append(e.buf, 0x00, 0xFF)
		} else {
			e.buf = append(e.buf, s[i])
		}
	}
	e.buf = append(e.buf, 0x00, 0x01)
}

// Decoder reads back a composite key produced by Encoder.
type Decoder struct {
	buf []byte
}

// NewDecoder returns a decoder over the encoded key b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Reset points the decoder at a new encoded key, allowing one decoder
// (often stack-allocated) to decode many values without reallocating.
func (d *Decoder) Reset(b []byte) { d.buf = b }

// Remaining reports how many undecoded bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) }

// Peek returns the tag of the next element without consuming it.
func (d *Decoder) Peek() (byte, error) {
	if len(d.buf) == 0 {
		return 0, ErrCorrupt
	}
	return d.buf[0], nil
}

func (d *Decoder) expect(tag byte) error {
	if len(d.buf) == 0 || d.buf[0] != tag {
		return fmt.Errorf("%w: want tag %#x", ErrCorrupt, tag)
	}
	d.buf = d.buf[1:]
	return nil
}

// Uint64 decodes an unsigned integer element.
func (d *Decoder) Uint64() (uint64, error) {
	if err := d.expect(tagInt); err != nil {
		return 0, err
	}
	if len(d.buf) < 8 {
		return 0, ErrCorrupt
	}
	v := binary.BigEndian.Uint64(d.buf[:8])
	d.buf = d.buf[8:]
	return v, nil
}

// Int64 decodes a signed integer element.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	if err != nil {
		return 0, err
	}
	return int64(v ^ (1 << 63)), nil
}

// Float64 decodes a float element.
func (d *Decoder) Float64() (float64, error) {
	if err := d.expect(tagFloat); err != nil {
		return 0, err
	}
	if len(d.buf) < 8 {
		return 0, ErrCorrupt
	}
	bits := binary.BigEndian.Uint64(d.buf[:8])
	d.buf = d.buf[8:]
	if bits&(1<<63) != 0 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits), nil
}

// Bool decodes a boolean element.
func (d *Decoder) Bool() (bool, error) {
	if err := d.expect(tagBool); err != nil {
		return false, err
	}
	if len(d.buf) < 1 {
		return false, ErrCorrupt
	}
	v := d.buf[0] != 0
	d.buf = d.buf[1:]
	return v, nil
}

// String decodes a string element.
func (d *Decoder) String() (string, error) {
	if err := d.expect(tagString); err != nil {
		return "", err
	}
	if seg, rest, ok := fastSegment(d.buf); ok {
		d.buf = rest
		return string(seg), nil
	}
	b, err := d.unescape()
	return string(b), err
}

// RawBytes decodes a bytes element. The result never aliases the encoded
// input.
func (d *Decoder) RawBytes() ([]byte, error) {
	if err := d.expect(tagBytes); err != nil {
		return nil, err
	}
	if seg, rest, ok := fastSegment(d.buf); ok {
		d.buf = rest
		return bytes.Clone(seg), nil
	}
	return d.unescape()
}

// fastSegment recognizes the common escape-free case: the element's content
// runs up to the first 0x00, which starts the 0x00 0x01 terminator. It
// returns the content (aliasing b) and the remaining buffer. ok is false
// when the content contains escaped bytes (or is malformed), in which case
// the caller falls back to the allocating unescape walk.
func fastSegment(b []byte) (seg, rest []byte, ok bool) {
	i := bytes.IndexByte(b, 0x00)
	if i >= 0 && i+1 < len(b) && b[i+1] == 0x01 {
		return b[:i], b[i+2:], true
	}
	return nil, nil, false
}

// Skip advances past the next element, whatever its type, without
// materializing it — the no-allocation path for walking encoded rows whose
// current column the caller does not need (boxing an int or copying a
// string costs a heap object each; skipping costs none).
func (d *Decoder) Skip() error {
	if len(d.buf) == 0 {
		return ErrCorrupt
	}
	switch d.buf[0] {
	case tagNull:
		d.buf = d.buf[1:]
	case tagInt, tagFloat:
		if len(d.buf) < 9 {
			return ErrCorrupt
		}
		d.buf = d.buf[9:]
	case tagBool:
		if len(d.buf) < 2 {
			return ErrCorrupt
		}
		d.buf = d.buf[2:]
	case tagString, tagBytes:
		b := d.buf[1:]
		for i := 0; i < len(b); i++ {
			if b[i] != 0x00 {
				continue
			}
			if i+1 >= len(b) {
				return ErrCorrupt
			}
			switch b[i+1] {
			case 0xFF:
				i++ // escaped 0x00, continue
			case 0x01:
				d.buf = b[i+2:]
				return nil
			default:
				return ErrCorrupt
			}
		}
		return ErrCorrupt
	default:
		return fmt.Errorf("%w: unknown tag %#x", ErrCorrupt, d.buf[0])
	}
	return nil
}

// IsNull consumes a NULL marker if one is next and reports whether it did.
func (d *Decoder) IsNull() bool {
	if len(d.buf) > 0 && d.buf[0] == tagNull {
		d.buf = d.buf[1:]
		return true
	}
	return false
}

func (d *Decoder) unescape() ([]byte, error) {
	var out []byte
	b := d.buf
	for i := 0; i < len(b); i++ {
		if b[i] != 0x00 {
			out = append(out, b[i])
			continue
		}
		if i+1 >= len(b) {
			return nil, ErrCorrupt
		}
		switch b[i+1] {
		case 0xFF:
			out = append(out, 0x00)
			i++
		case 0x01:
			d.buf = b[i+2:]
			return out, nil
		default:
			return nil, ErrCorrupt
		}
	}
	return nil, ErrCorrupt
}

// PrefixEnd returns the first key that does not have prefix p, suitable as an
// exclusive upper bound for a prefix range scan. It returns nil when p is
// all 0xFF bytes (scan to the end of the keyspace).
func PrefixEnd(p []byte) []byte {
	end := bytes.Clone(p)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// Compare is bytes.Compare, re-exported so callers of this package do not
// also need to import bytes just for key comparison.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }
