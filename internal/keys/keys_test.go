package keys

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func encInt(v int64) []byte     { return NewEncoder(16).Int64(v).Bytes() }
func encUint(v uint64) []byte   { return NewEncoder(16).Uint64(v).Bytes() }
func encFloat(v float64) []byte { return NewEncoder(16).Float64(v).Bytes() }
func encString(s string) []byte { return NewEncoder(16).String(s).Bytes() }
func encBytes(b []byte) []byte  { return NewEncoder(16).RawBytes(b).Bytes() }

func TestInt64RoundTrip(t *testing.T) {
	for _, v := range []int64{math.MinInt64, -1e12, -1, 0, 1, 42, 1e12, math.MaxInt64} {
		got, err := NewDecoder(encInt(v)).Int64()
		if err != nil {
			t.Fatalf("decode %d: %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %d: got %d", v, got)
		}
	}
}

func TestInt64OrderProperty(t *testing.T) {
	f := func(a, b int64) bool {
		cmp := bytes.Compare(encInt(a), encInt(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64OrderProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		cmp := bytes.Compare(encUint(a), encUint(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64OrderProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true // NaN has no numeric order; encoding is still total
		}
		cmp := bytes.Compare(encFloat(a), encFloat(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0 || a == 0 && b == 0 // -0 and +0 encode distinctly
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Specials(t *testing.T) {
	vals := []float64{math.Inf(-1), -math.MaxFloat64, -1, -math.SmallestNonzeroFloat64, 0, math.SmallestNonzeroFloat64, 1, math.MaxFloat64, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		if bytes.Compare(encFloat(vals[i-1]), encFloat(vals[i])) >= 0 {
			t.Fatalf("%g must sort before %g", vals[i-1], vals[i])
		}
	}
	for _, v := range vals {
		got, err := NewDecoder(encFloat(v)).Float64()
		if err != nil || got != v {
			t.Fatalf("round trip %g: got %g err %v", v, got, err)
		}
	}
}

func TestStringOrderProperty(t *testing.T) {
	f := func(a, b string) bool {
		cmp := bytes.Compare(encString(a), encString(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		got, err := NewDecoder(encString(s)).String()
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesWithZeros(t *testing.T) {
	in := []byte{0x00, 0xFF, 0x00, 0x00, 0x01, 0x00}
	got, err := NewDecoder(encBytes(in)).RawBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, in) {
		t.Fatalf("round trip: got %x want %x", got, in)
	}
}

func TestBytesOrderProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		cmp := bytes.Compare(encBytes(a), encBytes(b))
		return sign(cmp) == sign(bytes.Compare(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestPrefixIsNotAmbiguous(t *testing.T) {
	// "a" must sort before "ab", and the encoding of "a" must not be a
	// prefix-ordering hazard for composite keys: ("a", 2) < ("ab", 1).
	k1 := NewEncoder(0).String("a").Int64(2).Bytes()
	k2 := NewEncoder(0).String("ab").Int64(1).Bytes()
	if bytes.Compare(k1, k2) >= 0 {
		t.Fatal(`("a",2) must sort before ("ab",1)`)
	}
}

func TestCompositeOrdering(t *testing.T) {
	type row struct {
		w int64
		d int64
		s string
	}
	rows := []row{
		{2, 1, "b"}, {1, 2, "a"}, {1, 1, "z"}, {1, 1, "a"}, {2, 0, ""}, {-1, 5, "m"},
	}
	enc := func(r row) []byte {
		return NewEncoder(0).Int64(r.w).Int64(r.d).String(r.s).Bytes()
	}
	encoded := make([][]byte, len(rows))
	for i, r := range rows {
		encoded[i] = enc(r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].w != rows[j].w {
			return rows[i].w < rows[j].w
		}
		if rows[i].d != rows[j].d {
			return rows[i].d < rows[j].d
		}
		return rows[i].s < rows[j].s
	})
	sort.Slice(encoded, func(i, j int) bool { return bytes.Compare(encoded[i], encoded[j]) < 0 })
	for i := range rows {
		if !bytes.Equal(encoded[i], enc(rows[i])) {
			t.Fatalf("composite order diverges at %d", i)
		}
	}
}

func TestNullSortsFirst(t *testing.T) {
	null := NewEncoder(0).Null().Bytes()
	for _, other := range [][]byte{encInt(math.MinInt64), encString(""), encFloat(math.Inf(-1))} {
		if bytes.Compare(null, other) >= 0 {
			t.Fatalf("NULL must sort before %x", other)
		}
	}
	d := NewDecoder(null)
	if !d.IsNull() {
		t.Fatal("IsNull must consume the marker")
	}
	if d.Remaining() != 0 {
		t.Fatal("marker must be fully consumed")
	}
}

func TestBoolRoundTripAndOrder(t *testing.T) {
	fEnc := NewEncoder(0).Bool(false).Bytes()
	tEnc := NewEncoder(0).Bool(true).Bytes()
	if bytes.Compare(fEnc, tEnc) >= 0 {
		t.Fatal("false must sort before true")
	}
	for _, v := range []bool{true, false} {
		got, err := NewDecoder(NewEncoder(0).Bool(v).Bytes()).Bool()
		if err != nil || got != v {
			t.Fatalf("bool round trip %v: got %v err %v", v, got, err)
		}
	}
}

func TestDecodeWrongTag(t *testing.T) {
	if _, err := NewDecoder(encString("x")).Int64(); err == nil {
		t.Fatal("decoding a string as int must fail")
	}
	if _, err := NewDecoder(nil).Uint64(); err == nil {
		t.Fatal("decoding empty input must fail")
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := encInt(123456)
	for i := 1; i < len(full); i++ {
		if _, err := NewDecoder(full[:i]).Int64(); err == nil {
			t.Fatalf("truncated input of %d bytes must fail", i)
		}
	}
	s := encString("hello")
	for i := 1; i < len(s)-1; i++ {
		if _, err := NewDecoder(s[:i]).String(); err == nil {
			t.Fatalf("truncated string of %d bytes must fail", i)
		}
	}
}

func TestPrefixEnd(t *testing.T) {
	cases := []struct{ in, want []byte }{
		{[]byte{0x01}, []byte{0x02}},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{0xAB, 0x00}, []byte{0xAB, 0x01}},
	}
	for _, c := range cases {
		got := PrefixEnd(c.in)
		if !bytes.Equal(got, c.want) {
			t.Errorf("PrefixEnd(%x) = %x, want %x", c.in, got, c.want)
		}
	}
}

func TestPrefixEndProperty(t *testing.T) {
	// Every key that starts with prefix p is < PrefixEnd(p), and PrefixEnd
	// itself does not start with p.
	f := func(p, suffix []byte) bool {
		if len(p) == 0 {
			return true
		}
		end := PrefixEnd(p)
		if end == nil {
			return true // all-0xFF prefix: unbounded scan
		}
		k := append(bytes.Clone(p), suffix...)
		return bytes.Compare(k, end) < 0 && !bytes.HasPrefix(end, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiElementDecode(t *testing.T) {
	k := NewEncoder(0).Int64(7).String("abc").Float64(2.5).Bool(true).Uint64(9).Bytes()
	d := NewDecoder(k)
	if v, err := d.Int64(); err != nil || v != 7 {
		t.Fatalf("int: %d %v", v, err)
	}
	if s, err := d.String(); err != nil || s != "abc" {
		t.Fatalf("string: %q %v", s, err)
	}
	if f, err := d.Float64(); err != nil || f != 2.5 {
		t.Fatalf("float: %g %v", f, err)
	}
	if b, err := d.Bool(); err != nil || !b {
		t.Fatalf("bool: %v %v", b, err)
	}
	if u, err := d.Uint64(); err != nil || u != 9 {
		t.Fatalf("uint: %d %v", u, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d stray bytes", d.Remaining())
	}
}
