// Package gtm implements the Global Transaction Manager — GaussDB's
// centralized timestamp server — together with the DUAL mode that bridges
// centralized and clock-based transaction management during an online
// transition (Sec. III-A, Figs. 2–3).
//
// In GTM mode timestamps are a counter incremented per transaction (Eq. 2).
// In DUAL mode the server issues TS_DUAL = max(TS_GTM, TS_GClock) + 1
// (Eq. 3), guaranteed larger than both the most recent GTM timestamp and
// every reported clock upper bound, and tells the requester how long to wait
// so incompatible timestamps cannot produce visibility anomalies. In GClock
// mode the server refuses plain GTM requests (old GTM-mode transactions
// abort) but keeps serving DUAL requests from nodes that have not finished
// switching.
package gtm

import (
	"context"
	"errors"
	"sync"
	"time"

	"globaldb/internal/netsim"
	"globaldb/internal/ts"
)

// ErrOldModeAborted is returned to a GTM-mode transaction that tries to get
// a timestamp after the server has moved on to GClock mode.
var ErrOldModeAborted = errors.New("gtm: server in GClock mode; old GTM-mode transaction must abort")

// Request asks the server for a timestamp or reports a clock reading.
type Request struct {
	// Mode is the requester's transaction management mode.
	Mode ts.Mode
	// GClock is the requester's clock reading; set for DUAL requests and
	// for GClock commit reports.
	GClock ts.Interval
	// Report marks a one-way notification of a GClock commit timestamp
	// (Fig. 3: "Send TS_GClock, Terr — no response needed").
	Report bool
}

// Response carries an issued timestamp.
type Response struct {
	// TS is the issued timestamp.
	TS ts.Timestamp
	// Wait must elapse before the requester commits with TS. For DUAL
	// requests it is |TS_GClock − TS_DUAL| (Fig. 2's Terr2); for GTM-mode
	// requests while the server is in DUAL it is 2× the largest error
	// bound observed during the transition (Listing 1's safeguard).
	Wait time.Duration
	// ServerMode lets requesters observe transitions.
	ServerMode ts.Mode
}

// Server is the GTM server state machine. Transport-agnostic: the cluster
// exposes it through a netsim endpoint via Service.
type Server struct {
	mu      sync.Mutex
	mode    ts.Mode
	last    ts.Timestamp // last issued timestamp (GTM counter / DUAL values)
	tsMax   ts.Timestamp // max timestamp issued or reported, across modes
	terrMax time.Duration

	issuedGTM  int64
	issuedDual int64
	reports    int64
}

// NewServer returns a server in GTM mode with the counter at zero.
func NewServer() *Server { return &Server{mode: ts.ModeGTM} }

// Mode returns the server's current mode.
func (s *Server) Mode() ts.Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

// SetMode transitions the server. Callers (the transition controller) are
// responsible for ordering and for the DUAL-mode dwell time; the server
// enforces the timestamp floors:
//
//	DUAL → GTM sets the counter to TSMax+1 so every new GTM timestamp
//	exceeds every previously issued timestamp (Fig. 3).
//	entering DUAL resets Terrmax tracking for this transition.
func (s *Server) SetMode(m ts.Mode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m == s.mode {
		return
	}
	switch m {
	case ts.ModeDUAL:
		s.terrMax = 0
		if s.last > s.tsMax {
			s.tsMax = s.last
		}
	case ts.ModeGTM:
		if s.tsMax > s.last {
			s.last = s.tsMax
		}
		// Guarantee: all new TS_GTM > previous TS (Fig. 3). The +1 happens
		// on the first request.
	}
	s.mode = m
}

// TerrMax returns the largest error bound observed since entering DUAL
// mode. The controller dwells 2× this long before completing a GTM→GClock
// transition.
func (s *Server) TerrMax() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.terrMax
}

// TSMax returns the largest timestamp the server has issued or learned of.
func (s *Server) TSMax() ts.Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last > s.tsMax {
		return s.last
	}
	return s.tsMax
}

// Handle processes one request.
func (s *Server) Handle(req Request) (Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if req.Report {
		s.reports++
		if u := req.GClock.Upper(); u > s.tsMax {
			s.tsMax = u
		}
		if req.GClock.Err > s.terrMax {
			s.terrMax = req.GClock.Err
		}
		return Response{ServerMode: s.mode}, nil
	}

	switch s.mode {
	case ts.ModeGTM:
		if req.Mode == ts.ModeDUAL || req.Mode == ts.ModeGClock {
			// A straggler from a previous transition: serve it the same
			// floor guarantee DUAL provides.
			return s.issueDualLocked(req), nil
		}
		// Respect TSMax raises from late GClock commit reports so GTM
		// timestamps stay above every clock-based timestamp ever issued.
		s.last = maxTS(s.last, s.tsMax) + 1
		s.tsMax = s.last
		s.issuedGTM++
		return Response{TS: s.last, ServerMode: s.mode}, nil

	case ts.ModeDUAL:
		if req.Mode == ts.ModeGTM {
			// Listing 1: GTM-mode transactions must wait at commit while
			// the server is in DUAL, or a later transaction on an
			// already-switched node could miss their updates.
			s.last = maxTS(s.last, s.tsMax) + 1
			s.tsMax = s.last
			s.issuedGTM++
			return Response{TS: s.last, Wait: 2 * s.terrMax, ServerMode: s.mode}, nil
		}
		return s.issueDualLocked(req), nil

	default: // ts.ModeGClock
		if req.Mode == ts.ModeGTM {
			return Response{ServerMode: s.mode}, ErrOldModeAborted
		}
		// Fig. 2: "GTMS: GClock mode — generate TS_DUAL for DUAL mode
		// transactions" issued by CNs that have not switched yet.
		return s.issueDualLocked(req), nil
	}
}

func (s *Server) issueDualLocked(req Request) Response {
	if req.GClock.Err > s.terrMax {
		s.terrMax = req.GClock.Err
	}
	t := maxTS(s.last, s.tsMax)
	if u := req.GClock.Upper(); u > t {
		t = u
	}
	t++
	s.last = t
	s.tsMax = t
	s.issuedDual++

	// Terr2 = |TS_GClock − TS_DUAL| (Fig. 2): how far the issued timestamp
	// sits above the requester's clock; waiting that long lets real time
	// catch up to the timestamp before it commits.
	wait := time.Duration(t - req.GClock.Clock)
	if wait < 0 {
		wait = -wait
	}
	return Response{TS: t, Wait: wait, ServerMode: s.mode}
}

func maxTS(a, b ts.Timestamp) ts.Timestamp {
	if a > b {
		return a
	}
	return b
}

// Stats reports request counters.
type Stats struct {
	IssuedGTM  int64
	IssuedDual int64
	Reports    int64
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{IssuedGTM: s.issuedGTM, IssuedDual: s.issuedDual, Reports: s.reports}
}

// EndpointName is the netsim address the GTM service registers under.
const EndpointName = "gtm"

// reqSize approximates the wire size of a timestamp request/response.
const reqSize = 32

// Service exposes a Server on a network.
type Service struct {
	server *Server
	ep     *netsim.Endpoint
}

// Serve registers the server in the given region and returns the service.
func Serve(n *netsim.Network, region string, s *Server) *Service {
	svc := &Service{server: s}
	svc.ep = n.Register(EndpointName, region, func(_ context.Context, m netsim.Message) (netsim.Message, error) {
		req, ok := m.Payload.(Request)
		if !ok {
			return netsim.Message{}, errors.New("gtm: bad request payload")
		}
		resp, err := s.Handle(req)
		if err != nil {
			return netsim.Message{}, err
		}
		return netsim.Message{Payload: resp, Size: reqSize}, nil
	})
	return svc
}

// Endpoint returns the underlying endpoint (for failure injection).
func (svc *Service) Endpoint() *netsim.Endpoint { return svc.ep }

// Client calls a GTM service across the simulated network from a fixed
// region. Every call pays the CN↔GTM round trip — the cost GClock mode
// eliminates.
type Client struct {
	net    *netsim.Network
	region string
}

// NewClient returns a client homed in region.
func NewClient(n *netsim.Network, region string) *Client {
	return &Client{net: n, region: region}
}

// Call sends one request and waits for the response.
func (c *Client) Call(ctx context.Context, req Request) (Response, error) {
	m, err := c.net.Call(ctx, c.region, EndpointName, netsim.Message{Payload: req, Size: reqSize})
	if err != nil {
		return Response{}, err
	}
	return m.Payload.(Response), nil
}

// Report sends a one-way GClock commit report. Errors are ignored beyond
// returning them; reports are advisory redundancy during transitions.
func (c *Client) Report(ctx context.Context, iv ts.Interval) error {
	_, err := c.Call(ctx, Request{Mode: ts.ModeGClock, GClock: iv, Report: true})
	return err
}
