package gtm

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"globaldb/internal/netsim"
	"globaldb/internal/ts"
)

var bg = context.Background()

func TestGTMModeCounter(t *testing.T) {
	s := NewServer()
	for i := 1; i <= 5; i++ {
		resp, err := s.Handle(Request{Mode: ts.ModeGTM})
		if err != nil {
			t.Fatal(err)
		}
		if resp.TS != ts.Timestamp(i) {
			t.Fatalf("TS %d, want %d", resp.TS, i)
		}
		if resp.Wait != 0 {
			t.Fatal("GTM mode must not require waits")
		}
	}
	if s.Stats().IssuedGTM != 5 {
		t.Fatalf("counter stats: %+v", s.Stats())
	}
}

func TestDualTimestampDominatesBoth(t *testing.T) {
	s := NewServer()
	// Consume some GTM timestamps.
	for i := 0; i < 10; i++ {
		s.Handle(Request{Mode: ts.ModeGTM})
	}
	s.SetMode(ts.ModeDUAL)
	// A DUAL request with a huge clock upper bound: TS must exceed it.
	iv := ts.Interval{Clock: 1_000_000, Err: 100 * time.Nanosecond}
	resp, err := s.Handle(Request{Mode: ts.ModeDUAL, GClock: iv})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TS <= iv.Upper() || resp.TS <= 10 {
		t.Fatalf("TS_DUAL=%d must exceed clock upper %d and GTM max 10", resp.TS, iv.Upper())
	}
	// Wait is |TS_GClock - TS_DUAL|.
	if want := time.Duration(resp.TS - iv.Clock); resp.Wait != want {
		t.Fatalf("Wait=%v want %v", resp.Wait, want)
	}
	// A subsequent small-clock request still gets a larger TS (monotonic).
	resp2, _ := s.Handle(Request{Mode: ts.ModeDUAL, GClock: ts.Interval{Clock: 5}})
	if resp2.TS <= resp.TS {
		t.Fatalf("DUAL timestamps must be monotonic: %d then %d", resp.TS, resp2.TS)
	}
}

func TestDualTracksTerrMax(t *testing.T) {
	s := NewServer()
	s.SetMode(ts.ModeDUAL)
	s.Handle(Request{Mode: ts.ModeDUAL, GClock: ts.Interval{Clock: 100, Err: 50 * time.Microsecond}})
	s.Handle(Request{Mode: ts.ModeDUAL, GClock: ts.Interval{Clock: 200, Err: 300 * time.Microsecond}})
	s.Handle(Request{Mode: ts.ModeDUAL, GClock: ts.Interval{Clock: 300, Err: 10 * time.Microsecond}})
	if got := s.TerrMax(); got != 300*time.Microsecond {
		t.Fatalf("TerrMax = %v", got)
	}
	// Entering DUAL again resets tracking.
	s.SetMode(ts.ModeGClock)
	s.SetMode(ts.ModeDUAL)
	if got := s.TerrMax(); got != 0 {
		t.Fatalf("TerrMax after re-entry = %v", got)
	}
}

func TestGTMRequestDuringDualWaits(t *testing.T) {
	// Listing 1's safeguard: a GTM-mode transaction committing while the
	// server is in DUAL receives a wait of 2×Terrmax.
	s := NewServer()
	s.SetMode(ts.ModeDUAL)
	s.Handle(Request{Mode: ts.ModeDUAL, GClock: ts.Interval{Clock: 1000, Err: 200 * time.Microsecond}})
	resp, err := s.Handle(Request{Mode: ts.ModeGTM})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Wait != 400*time.Microsecond {
		t.Fatalf("GTM-in-DUAL wait = %v, want 2×200µs", resp.Wait)
	}
	if resp.TS <= 1001 {
		t.Fatalf("GTM-in-DUAL TS=%d must exceed the DUAL timestamp", resp.TS)
	}
}

func TestGClockModeAbortsOldGTM(t *testing.T) {
	s := NewServer()
	s.SetMode(ts.ModeDUAL)
	s.SetMode(ts.ModeGClock)
	_, err := s.Handle(Request{Mode: ts.ModeGTM})
	if !errors.Is(err, ErrOldModeAborted) {
		t.Fatalf("old GTM txn: %v", err)
	}
	// DUAL requests must still be served (Fig. 2).
	resp, err := s.Handle(Request{Mode: ts.ModeDUAL, GClock: ts.Interval{Clock: 777}})
	if err != nil || resp.TS <= 777 {
		t.Fatalf("DUAL in GClock mode: %v %v", resp, err)
	}
}

func TestReportRaisesTSMaxAndTerrMax(t *testing.T) {
	s := NewServer()
	s.SetMode(ts.ModeDUAL)
	iv := ts.Interval{Clock: 5000, Err: time.Millisecond}
	if _, err := s.Handle(Request{Mode: ts.ModeGClock, GClock: iv, Report: true}); err != nil {
		t.Fatal(err)
	}
	if s.TSMax() != iv.Upper() {
		t.Fatalf("TSMax = %v, want %v", s.TSMax(), iv.Upper())
	}
	if s.TerrMax() != time.Millisecond {
		t.Fatalf("TerrMax = %v", s.TerrMax())
	}
	if s.Stats().Reports != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

func TestDualToGTMSetsFloor(t *testing.T) {
	// Fig. 3: after a GClock→GTM transition, the first GTM timestamp must
	// exceed the largest GClock timestamp ever reported.
	s := NewServer()
	s.SetMode(ts.ModeDUAL)
	s.Handle(Request{Mode: ts.ModeGClock, GClock: ts.Interval{Clock: 1 << 40}, Report: true})
	s.SetMode(ts.ModeGTM)
	resp, err := s.Handle(Request{Mode: ts.ModeGTM})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TS <= 1<<40 {
		t.Fatalf("GTM TS %d must exceed reported GClock max %d", resp.TS, 1<<40)
	}
}

func TestMonotonicAcrossModeChanges(t *testing.T) {
	s := NewServer()
	var last ts.Timestamp
	issue := func(req Request) {
		t.Helper()
		resp, err := s.Handle(req)
		if err != nil {
			return
		}
		if resp.TS <= last {
			t.Fatalf("timestamp went backwards: %d after %d (mode %v)", resp.TS, last, s.Mode())
		}
		last = resp.TS
	}
	issue(Request{Mode: ts.ModeGTM})
	issue(Request{Mode: ts.ModeGTM})
	s.SetMode(ts.ModeDUAL)
	issue(Request{Mode: ts.ModeDUAL, GClock: ts.Interval{Clock: 10_000, Err: time.Microsecond}})
	issue(Request{Mode: ts.ModeGTM})
	s.SetMode(ts.ModeGClock)
	issue(Request{Mode: ts.ModeDUAL, GClock: ts.Interval{Clock: 20_000, Err: time.Microsecond}})
	s.SetMode(ts.ModeDUAL)
	issue(Request{Mode: ts.ModeDUAL, GClock: ts.Interval{Clock: 1, Err: time.Microsecond}})
	s.SetMode(ts.ModeGTM)
	issue(Request{Mode: ts.ModeGTM})
}

func TestConcurrentMixedRequests(t *testing.T) {
	s := NewServer()
	s.SetMode(ts.ModeDUAL)
	var mu sync.Mutex
	seen := make(map[ts.Timestamp]bool)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var req Request
				if w%2 == 0 {
					req = Request{Mode: ts.ModeGTM}
				} else {
					req = Request{Mode: ts.ModeDUAL, GClock: ts.Interval{Clock: ts.Timestamp(i), Err: time.Microsecond}}
				}
				resp, err := s.Handle(req)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[resp.TS] {
					t.Errorf("duplicate timestamp %d", resp.TS)
				}
				seen[resp.TS] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
}

func TestServiceOverNetwork(t *testing.T) {
	n := netsim.New(netsim.Config{})
	n.SetLink("beijing", "xian", 20*time.Millisecond, 0)
	s := NewServer()
	svc := Serve(n, "beijing", s)

	remote := NewClient(n, "xian")
	start := time.Now()
	resp, err := remote.Call(bg, Request{Mode: ts.ModeGTM})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TS != 1 {
		t.Fatalf("TS = %d", resp.TS)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("remote fetch must pay the WAN round trip")
	}

	local := NewClient(n, "beijing")
	start = time.Now()
	if _, err := local.Call(bg, Request{Mode: ts.ModeGTM}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Millisecond {
		t.Fatal("local fetch must be fast")
	}

	// Crash the GTM endpoint: calls fail.
	svc.Endpoint().SetDown(true)
	if _, err := local.Call(bg, Request{Mode: ts.ModeGTM}); !errors.Is(err, netsim.ErrEndpointDown) {
		t.Fatalf("down GTM: %v", err)
	}
}

func TestClientReport(t *testing.T) {
	n := netsim.New(netsim.Config{})
	n.AddRegion("r")
	s := NewServer()
	Serve(n, "r", s)
	c := NewClient(n, "r")
	if err := c.Report(bg, ts.Interval{Clock: 999, Err: time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if s.TSMax() < 999 {
		t.Fatalf("report not applied: TSMax=%v", s.TSMax())
	}
}
