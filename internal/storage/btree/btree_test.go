package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func TestSetGet(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 1000; i++ {
		if _, replaced := tr.Set(key(i), i); replaced {
			t.Fatalf("key %d must not pre-exist", i)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := tr.Get(key(i))
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("missing key found")
	}
}

func TestSetReplace(t *testing.T) {
	tr := New[string]()
	tr.Set([]byte("a"), "one")
	old, replaced := tr.Set([]byte("a"), "two")
	if !replaced || old != "one" {
		t.Fatalf("replace: old=%q replaced=%v", old, replaced)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace", tr.Len())
	}
	v, _ := tr.Get([]byte("a"))
	if v != "two" {
		t.Fatalf("value after replace = %q", v)
	}
}

func TestDelete(t *testing.T) {
	tr := New[int]()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Set(key(i), i)
	}
	// Delete odd keys.
	for i := 1; i < n; i += 2 {
		v, ok := tr.Delete(key(i))
		if !ok || v != i {
			t.Fatalf("Delete(%d) = %d,%v", i, v, ok)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(key(i))
		if want := i%2 == 0; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
	if _, ok := tr.Delete([]byte("missing")); ok {
		t.Fatal("deleting a missing key must report false")
	}
}

func TestDeleteAllShrinksRoot(t *testing.T) {
	tr := New[int]()
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Set(key(i), i)
	}
	for _, i := range perm {
		if _, ok := tr.Delete(key(i)); !ok {
			t.Fatalf("Delete(%d) lost key", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
}

func TestAscendRange(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Set(key(i), i)
	}
	var got []int
	tr.AscendRange(key(10), key(20), func(k []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 {
		t.Fatalf("range [10,20): %d items: %v", len(got), got)
	}
	for i, v := range got {
		if v != 10+i {
			t.Fatalf("range order wrong at %d: %v", i, got)
		}
	}
}

func TestAscendRangeFullAndEarlyStop(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 500; i++ {
		tr.Set(key(i), i)
	}
	var all []int
	tr.AscendRange(nil, nil, func(k []byte, v int) bool {
		all = append(all, v)
		return true
	})
	if len(all) != 500 || !sort.IntsAreSorted(all) {
		t.Fatalf("full scan: %d items sorted=%v", len(all), sort.IntsAreSorted(all))
	}
	var first5 []int
	tr.AscendRange(nil, nil, func(k []byte, v int) bool {
		first5 = append(first5, v)
		return len(first5) < 5
	})
	if len(first5) != 5 {
		t.Fatalf("early stop returned %d items", len(first5))
	}
}

func TestMinMax(t *testing.T) {
	tr := New[int]()
	for _, i := range rand.New(rand.NewSource(7)).Perm(300) {
		tr.Set(key(i), i)
	}
	if k, v, ok := tr.Min(); !ok || v != 0 || !bytes.Equal(k, key(0)) {
		t.Fatalf("Min = %s,%d,%v", k, v, ok)
	}
	if k, v, ok := tr.Max(); !ok || v != 299 || !bytes.Equal(k, key(299)) {
		t.Fatalf("Max = %s,%d,%v", k, v, ok)
	}
}

// TestModelRandomOps cross-checks the tree against a map + sort model under
// a long random workload of inserts, deletes, lookups, and scans.
func TestModelRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New[int]()
	model := map[string]int{}
	keys := func() []string {
		ks := make([]string, 0, len(model))
		for k := range model {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return ks
	}
	for op := 0; op < 20000; op++ {
		k := key(rng.Intn(3000))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // insert/update
			v := rng.Int()
			_, hadTree := tr.Set(k, v)
			_, hadModel := model[string(k)]
			if hadTree != hadModel {
				t.Fatalf("op %d: Set replaced=%v model=%v", op, hadTree, hadModel)
			}
			model[string(k)] = v
		case 5, 6, 7: // delete
			vTree, okTree := tr.Delete(k)
			vModel, okModel := model[string(k)]
			if okTree != okModel || (okTree && vTree != vModel) {
				t.Fatalf("op %d: Delete (%d,%v) model (%d,%v)", op, vTree, okTree, vModel, okModel)
			}
			delete(model, string(k))
		case 8: // lookup
			vTree, okTree := tr.Get(k)
			vModel, okModel := model[string(k)]
			if okTree != okModel || (okTree && vTree != vModel) {
				t.Fatalf("op %d: Get (%d,%v) model (%d,%v)", op, vTree, okTree, vModel, okModel)
			}
		case 9: // occasional full-order check
			if op%1000 != 9 {
				continue
			}
			var scanned []string
			tr.AscendRange(nil, nil, func(k []byte, v int) bool {
				scanned = append(scanned, string(k))
				return true
			})
			want := keys()
			if len(scanned) != len(want) {
				t.Fatalf("op %d: scan %d keys, model %d", op, len(scanned), len(want))
			}
			for i := range want {
				if scanned[i] != want[i] {
					t.Fatalf("op %d: scan order diverges at %d", op, i)
				}
			}
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("final Len=%d model=%d", tr.Len(), len(model))
	}
}

func TestRangeMatchesModelProperty(t *testing.T) {
	f := func(seed int64, loIdx, hiIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New[int]()
		model := map[string]int{}
		for i := 0; i < 200; i++ {
			k := key(rng.Intn(256))
			tr.Set(k, i)
			model[string(k)] = i
		}
		lo, hi := key(int(loIdx)), key(int(hiIdx))
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		var got []string
		tr.AscendRange(lo, hi, func(k []byte, _ int) bool {
			got = append(got, string(k))
			return true
		})
		var want []string
		for k := range model {
			if k >= string(lo) && k < string(hi) {
				want = append(want, k)
			}
		}
		sort.Strings(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialAndReverseInsert(t *testing.T) {
	for name, order := range map[string]func(i, n int) int{
		"ascending":  func(i, n int) int { return i },
		"descending": func(i, n int) int { return n - 1 - i },
	} {
		tr := New[int]()
		const n = 10000
		for i := 0; i < n; i++ {
			tr.Set(key(order(i, n)), i)
		}
		if tr.Len() != n {
			t.Fatalf("%s: Len=%d", name, tr.Len())
		}
		count := 0
		prev := []byte(nil)
		tr.AscendRange(nil, nil, func(k []byte, _ int) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("%s: out of order", name)
			}
			prev = bytes.Clone(k)
			count++
			return true
		})
		if count != n {
			t.Fatalf("%s: scanned %d", name, count)
		}
	}
}

func BenchmarkSet(b *testing.B) {
	tr := New[int]()
	ks := make([][]byte, b.N)
	for i := range ks {
		ks[i] = key(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Set(ks[i], i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[int]()
	const n = 1 << 16
	for i := 0; i < n; i++ {
		tr.Set(key(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i & (n - 1)))
	}
}
