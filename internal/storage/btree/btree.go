// Package btree implements an in-memory B-tree keyed by byte slices.
//
// It is the ordered heap/index substrate for GlobalDB data nodes: rows and
// index entries are stored under memcomparable keys (package keys) and range
// scans iterate in key order. The tree is not safe for concurrent use; the
// MVCC layer above provides locking.
package btree

import (
	"bytes"
	"sort"
)

// degree is the minimum number of children per internal node. Each node
// holds between degree-1 and 2*degree-1 items (except the root).
const degree = 32

const maxItems = 2*degree - 1

// Tree is a B-tree mapping byte-slice keys to values of type V.
// The zero value is not usable; call New.
type Tree[V any] struct {
	root   *node[V]
	length int
}

type item[V any] struct {
	key   []byte
	value V
}

type node[V any] struct {
	items    []item[V]
	children []*node[V] // nil for leaves
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	return &Tree[V]{root: &node[V]{}}
}

// Len reports the number of keys stored.
func (t *Tree[V]) Len() int { return t.length }

// Get returns the value stored under key.
func (t *Tree[V]) Get(key []byte) (V, bool) {
	n := t.root
	for {
		i, found := n.search(key)
		if found {
			return n.items[i].value, true
		}
		if n.children == nil {
			var zero V
			return zero, false
		}
		n = n.children[i]
	}
}

// search returns the index of the first item >= key and whether it equals key.
func (n *node[V]) search(key []byte) (int, bool) {
	i := sort.Search(len(n.items), func(i int) bool {
		return bytes.Compare(n.items[i].key, key) >= 0
	})
	if i < len(n.items) && bytes.Equal(n.items[i].key, key) {
		return i, true
	}
	return i, false
}

// Set inserts or replaces the value under key, returning the previous value
// if any. The key slice is stored as-is; callers must not mutate it after.
func (t *Tree[V]) Set(key []byte, value V) (old V, replaced bool) {
	if len(t.root.items) == maxItems {
		// Split the root: the tree grows one level.
		oldRoot := t.root
		t.root = &node[V]{children: []*node[V]{oldRoot}}
		t.root.splitChild(0)
	}
	old, replaced = t.root.set(key, value)
	if !replaced {
		t.length++
	}
	return old, replaced
}

func (n *node[V]) set(key []byte, value V) (old V, replaced bool) {
	i, found := n.search(key)
	if found {
		old, replaced = n.items[i].value, true
		n.items[i].value = value
		return old, replaced
	}
	if n.children == nil {
		n.items = append(n.items, item[V]{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = item[V]{key: key, value: value}
		var zero V
		return zero, false
	}
	if len(n.children[i].items) == maxItems {
		n.splitChild(i)
		switch c := bytes.Compare(key, n.items[i].key); {
		case c == 0:
			old, replaced = n.items[i].value, true
			n.items[i].value = value
			return old, replaced
		case c > 0:
			i++
		}
	}
	return n.children[i].set(key, value)
}

// splitChild splits the full child at index i, hoisting its median into n.
func (n *node[V]) splitChild(i int) {
	child := n.children[i]
	mid := len(child.items) / 2
	median := child.items[mid]

	right := &node[V]{}
	right.items = append(right.items, child.items[mid+1:]...)
	child.items = child.items[:mid:mid]
	if child.children != nil {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[: mid+1 : mid+1]
	}

	n.items = append(n.items, item[V]{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median

	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes key, returning the removed value if it was present.
func (t *Tree[V]) Delete(key []byte) (V, bool) {
	v, ok := t.root.delete(key)
	if ok {
		t.length--
	}
	if len(t.root.items) == 0 && t.root.children != nil {
		t.root = t.root.children[0]
	}
	return v, ok
}

func (n *node[V]) delete(key []byte) (V, bool) {
	i, found := n.search(key)
	if n.children == nil {
		if !found {
			var zero V
			return zero, false
		}
		v := n.items[i].value
		n.items = append(n.items[:i], n.items[i+1:]...)
		return v, true
	}
	if found {
		// Replace with predecessor from the left subtree, then delete it
		// there. Rebalance the child first so the recursive delete cannot
		// underflow.
		if len(n.children[i].items) >= degree {
			pred := n.children[i].max()
			v := n.items[i].value
			n.items[i] = pred
			n.children[i].delete(pred.key)
			return v, true
		}
		if len(n.children[i+1].items) >= degree {
			succ := n.children[i+1].min()
			v := n.items[i].value
			n.items[i] = succ
			n.children[i+1].delete(succ.key)
			return v, true
		}
		n.mergeChildren(i)
		return n.children[i].delete(key)
	}
	// Key lives in subtree i; make sure that child has >= degree items.
	if len(n.children[i].items) < degree {
		i = n.rebalance(i)
	}
	return n.children[i].delete(key)
}

func (n *node[V]) min() item[V] {
	for n.children != nil {
		n = n.children[0]
	}
	return n.items[0]
}

func (n *node[V]) max() item[V] {
	for n.children != nil {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// rebalance ensures child i has at least degree items, borrowing from a
// sibling or merging. It returns the index of the child that now covers the
// original child's key range.
func (n *node[V]) rebalance(i int) int {
	if i > 0 && len(n.children[i-1].items) >= degree {
		// Rotate right: left sibling's max -> separator -> child's front.
		child, left := n.children[i], n.children[i-1]
		child.items = append(child.items, item[V]{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if left.children != nil {
			moved := left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = moved
		}
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) >= degree {
		// Rotate left: right sibling's min -> separator -> child's back.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if right.children != nil {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		return i
	}
	if i > 0 {
		n.mergeChildren(i - 1)
		return i - 1
	}
	n.mergeChildren(i)
	return i
}

// mergeChildren merges child i, separator i, and child i+1 into child i.
func (n *node[V]) mergeChildren(i int) {
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// AscendRange calls fn for every key in [start, end) in ascending order. A
// nil start begins at the first key; a nil end scans to the last. fn
// returning false stops the scan.
func (t *Tree[V]) AscendRange(start, end []byte, fn func(key []byte, value V) bool) {
	t.root.ascend(start, end, fn)
}

func (n *node[V]) ascend(start, end []byte, fn func([]byte, V) bool) bool {
	i := 0
	if start != nil {
		i, _ = n.search(start)
	}
	for ; i < len(n.items); i++ {
		if n.children != nil {
			if !n.children[i].ascend(start, end, fn) {
				return false
			}
		}
		it := n.items[i]
		if start != nil && bytes.Compare(it.key, start) < 0 {
			continue
		}
		if end != nil && bytes.Compare(it.key, end) >= 0 {
			return false
		}
		if !fn(it.key, it.value) {
			return false
		}
		// Once past start, descendants to the right are all >= start.
		start = nil
	}
	if n.children != nil {
		return n.children[len(n.children)-1].ascend(start, end, fn)
	}
	return true
}

// Min returns the smallest key and its value.
func (t *Tree[V]) Min() ([]byte, V, bool) {
	if t.length == 0 {
		var zero V
		return nil, zero, false
	}
	it := t.root.min()
	return it.key, it.value, true
}

// Max returns the largest key and its value.
func (t *Tree[V]) Max() ([]byte, V, bool) {
	if t.length == 0 {
		var zero V
		return nil, zero, false
	}
	it := t.root.max()
	return it.key, it.value, true
}
