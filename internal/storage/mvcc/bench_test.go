package mvcc

import (
	"context"
	"fmt"
	"testing"

	"globaldb/internal/ts"
)

func BenchmarkPutCommit(b *testing.B) {
	s := NewStore()
	val := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := TxnID(i + 1)
		key := []byte(fmt.Sprintf("key-%08d", i&0xFFFF))
		if err := s.Put(txn, key, val, ts.Max); err != nil {
			b.Fatal(err)
		}
		if err := s.Commit(txn, ts.Timestamp(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetHot(b *testing.B) {
	s := NewStore()
	ctx := context.Background()
	for i := 0; i < 1024; i++ {
		s.ApplyCommitted([]byte(fmt.Sprintf("key-%08d", i)), make([]byte, 128), false, ts.Timestamp(i+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%08d", i&1023))
		if _, _, err := s.Get(ctx, key, ts.Max, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetDeepVersionChain(b *testing.B) {
	// Reading an old snapshot must walk the chain; this quantifies why the
	// RCP-driven GC matters.
	s := NewStore()
	ctx := context.Background()
	for i := 0; i < 256; i++ {
		s.ApplyCommitted([]byte("hot"), make([]byte, 64), false, ts.Timestamp(i+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Get(ctx, []byte("hot"), 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan100(b *testing.B) {
	s := NewStore()
	ctx := context.Background()
	for i := 0; i < 4096; i++ {
		s.ApplyCommitted([]byte(fmt.Sprintf("key-%08d", i)), make([]byte, 64), false, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kvs, err := s.Scan(ctx, []byte("key-00000000"), nil, ts.Max, 100, 0)
		if err != nil || len(kvs) != 100 {
			b.Fatalf("scan: %d %v", len(kvs), err)
		}
	}
}
