package mvcc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"globaldb/internal/ts"
)

var bg = context.Background()

func mustPut(t *testing.T, s *Store, txn TxnID, key, val string, snap ts.Timestamp) {
	t.Helper()
	if err := s.Put(txn, []byte(key), []byte(val), snap); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func get(t *testing.T, s *Store, key string, snap ts.Timestamp) (string, bool) {
	t.Helper()
	v, ok, err := s.Get(bg, []byte(key), snap, 0)
	if err != nil {
		t.Fatalf("Get(%s): %v", key, err)
	}
	return string(v), ok
}

func TestBasicCommitVisibility(t *testing.T) {
	s := NewStore()
	mustPut(t, s, 1, "k", "v1", 0)
	if _, ok := get(t, s, "k", 100); ok {
		t.Fatal("active intent must be invisible")
	}
	if err := s.Commit(1, 10); err != nil {
		t.Fatal(err)
	}
	if v, ok := get(t, s, "k", 10); !ok || v != "v1" {
		t.Fatalf("at snap 10: %q,%v", v, ok)
	}
	if _, ok := get(t, s, "k", 9); ok {
		t.Fatal("snapshot before commit must not see the version")
	}
	if s.LastCommitTS() != 10 {
		t.Fatalf("LastCommitTS = %v", s.LastCommitTS())
	}
}

func TestMultipleVersions(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 5; i++ {
		txn := TxnID(i)
		mustPut(t, s, txn, "k", fmt.Sprintf("v%d", i), ts.Timestamp(i*10-1))
		if err := s.Commit(txn, ts.Timestamp(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 5; i++ {
		if v, _ := get(t, s, "k", ts.Timestamp(i*10)); v != fmt.Sprintf("v%d", i) {
			t.Fatalf("snap %d: got %q", i*10, v)
		}
		if v, _ := get(t, s, "k", ts.Timestamp(i*10+5)); v != fmt.Sprintf("v%d", i) {
			t.Fatalf("snap %d: got %q", i*10+5, v)
		}
	}
}

func TestDeleteTombstone(t *testing.T) {
	s := NewStore()
	mustPut(t, s, 1, "k", "v", 0)
	s.Commit(1, 10)
	if err := s.Delete(2, []byte("k"), 15); err != nil {
		t.Fatal(err)
	}
	s.Commit(2, 20)
	if _, ok := get(t, s, "k", 15); !ok {
		t.Fatal("pre-delete snapshot must still see the row")
	}
	if _, ok := get(t, s, "k", 25); ok {
		t.Fatal("post-delete snapshot must not see the row")
	}
}

func TestWriteWriteConflictIntent(t *testing.T) {
	s := NewStore()
	mustPut(t, s, 1, "k", "a", 100)
	err := s.Put(2, []byte("k"), []byte("b"), 100)
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("want ErrWriteConflict, got %v", err)
	}
	// Same transaction may overwrite its own intent.
	mustPut(t, s, 1, "k", "a2", 100)
	s.Commit(1, 110)
	if v, _ := get(t, s, "k", 110); v != "a2" {
		t.Fatalf("got %q", v)
	}
}

func TestFirstCommitterWins(t *testing.T) {
	s := NewStore()
	mustPut(t, s, 1, "k", "v1", 0)
	s.Commit(1, 50)
	// A writer whose snapshot predates commit 50 must fail (lost update).
	err := s.Put(2, []byte("k"), []byte("v2"), 40)
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("stale writer must conflict, got %v", err)
	}
	// A writer with a fresh snapshot succeeds.
	mustPut(t, s, 3, "k", "v3", 60)
	s.Commit(3, 70)
}

func TestAbortDiscardsIntents(t *testing.T) {
	s := NewStore()
	mustPut(t, s, 1, "k", "v", 0)
	mustPut(t, s, 1, "k2", "v2", 0)
	if err := s.Abort(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := get(t, s, "k", 100); ok {
		t.Fatal("aborted write visible")
	}
	// k2 had no committed versions: the chain must be gone entirely.
	if got := s.Stats().Keys; got != 0 {
		t.Fatalf("keys after abort = %d", got)
	}
	// Writing again after the abort must succeed.
	mustPut(t, s, 2, "k", "v2", 0)
	s.Commit(2, 10)
}

func TestReadYourOwnWrites(t *testing.T) {
	s := NewStore()
	mustPut(t, s, 1, "k", "mine", 0)
	v, ok, err := s.Get(bg, []byte("k"), 0, 1)
	if err != nil || !ok || string(v) != "mine" {
		t.Fatalf("RYOW: %q,%v,%v", v, ok, err)
	}
	// Own deletion hides the row.
	s.Delete(1, []byte("k"), 0)
	_, ok, _ = s.Get(bg, []byte("k"), 0, 1)
	if ok {
		t.Fatal("own delete must hide the row")
	}
}

func TestPendingIntentBlocksReader(t *testing.T) {
	s := NewStore()
	mustPut(t, s, 1, "k", "v1", 0)
	s.Commit(1, 10)
	mustPut(t, s, 2, "k", "v2", 10)
	if err := s.MarkPending(2); err != nil {
		t.Fatal(err)
	}

	got := make(chan string, 1)
	go func() {
		v, _, _ := s.Get(bg, []byte("k"), 100, 0)
		got <- string(v)
	}()
	select {
	case v := <-got:
		t.Fatalf("reader returned %q before pending txn resolved", v)
	case <-time.After(20 * time.Millisecond):
	}
	s.Commit(2, 50)
	select {
	case v := <-got:
		if v != "v2" {
			t.Fatalf("reader got %q, want v2", v)
		}
	case <-time.After(time.Second):
		t.Fatal("reader still blocked after commit")
	}
	if s.Stats().ReaderWaits == 0 {
		t.Fatal("wait counter must increment")
	}
}

func TestPendingAbortUnblocksReader(t *testing.T) {
	s := NewStore()
	mustPut(t, s, 1, "k", "v1", 0)
	s.Commit(1, 10)
	mustPut(t, s, 2, "k", "v2", 10)
	s.MarkPending(2)
	got := make(chan string, 1)
	go func() {
		v, _, _ := s.Get(bg, []byte("k"), 100, 0)
		got <- string(v)
	}()
	time.Sleep(10 * time.Millisecond)
	s.Abort(2)
	select {
	case v := <-got:
		if v != "v1" {
			t.Fatalf("reader got %q, want v1 after abort", v)
		}
	case <-time.After(time.Second):
		t.Fatal("reader still blocked after abort")
	}
}

func TestPreparedIntentBlocksReader(t *testing.T) {
	s := NewStore()
	mustPut(t, s, 7, "k", "v", 0)
	s.MarkPrepared(7)
	st, ok := s.TxnStateOf(7)
	if !ok || st != StatePrepared {
		t.Fatalf("state = %v,%v", st, ok)
	}
	ctx, cancel := context.WithTimeout(bg, 30*time.Millisecond)
	defer cancel()
	_, _, err := s.Get(ctx, []byte("k"), 100, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("prepared intent must block reader until ctx deadline, got %v", err)
	}
	s.Commit(7, 40)
	if v, ok := get(t, s, "k", 100); !ok || v != "v" {
		t.Fatalf("after commit prepared: %q,%v", v, ok)
	}
}

func TestActiveIntentDoesNotBlockReader(t *testing.T) {
	s := NewStore()
	mustPut(t, s, 1, "k", "v1", 0)
	s.Commit(1, 10)
	mustPut(t, s, 2, "k", "v2", 10) // active, not pending
	ctx, cancel := context.WithTimeout(bg, 200*time.Millisecond)
	defer cancel()
	v, ok, err := s.Get(ctx, []byte("k"), 100, 0)
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("active intent must be skipped: %q,%v,%v", v, ok, err)
	}
}

func TestScanVisibility(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%02d", i)
		txn := TxnID(i + 1)
		mustPut(t, s, txn, k, fmt.Sprintf("v%d", i), 0)
		s.Commit(txn, ts.Timestamp(10*(i+1)))
	}
	// At snap 50, keys 0..4 are visible.
	kvs, err := s.Scan(bg, []byte("k00"), []byte("k99"), 50, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 5 {
		t.Fatalf("scan at 50: %d rows", len(kvs))
	}
	for i, kv := range kvs {
		if want := fmt.Sprintf("k%02d", i); string(kv.Key) != want {
			t.Fatalf("row %d key %q", i, kv.Key)
		}
	}
	// Limit.
	kvs, _ = s.Scan(bg, nil, nil, 1000, 3, 0)
	if len(kvs) != 3 {
		t.Fatalf("limited scan: %d rows", len(kvs))
	}
}

func TestScanSeesOwnWritesAndBlocksOnPending(t *testing.T) {
	s := NewStore()
	mustPut(t, s, 1, "a", "a1", 0)
	s.Commit(1, 10)
	mustPut(t, s, 2, "b", "mine", 10)
	kvs, err := s.Scan(bg, nil, nil, 100, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || string(kvs[1].Value) != "mine" {
		t.Fatalf("scan with own intent: %v", kvs)
	}
	// Another txn's pending intent blocks a foreign scan.
	s.MarkPending(2)
	done := make(chan int, 1)
	go func() {
		kvs, _ := s.Scan(bg, nil, nil, 100, 0, 0)
		done <- len(kvs)
	}()
	select {
	case n := <-done:
		t.Fatalf("scan returned %d rows before pending resolved", n)
	case <-time.After(20 * time.Millisecond):
	}
	s.Commit(2, 50)
	if n := <-done; n != 2 {
		t.Fatalf("scan after resolve: %d rows", n)
	}
}

func TestApplyCommittedOutOfOrder(t *testing.T) {
	s := NewStore()
	// Parallel replay can apply versions out of timestamp order.
	s.ApplyCommitted([]byte("k"), []byte("v30"), false, 30)
	s.ApplyCommitted([]byte("k"), []byte("v10"), false, 10)
	s.ApplyCommitted([]byte("k"), []byte("v20"), false, 20)
	for _, c := range []struct {
		snap ts.Timestamp
		want string
	}{{10, "v10"}, {15, "v10"}, {20, "v20"}, {30, "v30"}, {99, "v30"}} {
		if v, _ := get(t, s, "k", c.snap); v != c.want {
			t.Fatalf("snap %d: got %q want %q", c.snap, v, c.want)
		}
	}
	vs := s.Versions([]byte("k"))
	for i := 1; i < len(vs); i++ {
		if vs[i-1].CommitTS < vs[i].CommitTS {
			t.Fatal("version chain must be newest-first")
		}
	}
}

func TestPrune(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 10; i++ {
		s.ApplyCommitted([]byte("k"), []byte(fmt.Sprintf("v%d", i)), false, ts.Timestamp(i*10))
	}
	removed := s.Prune(55)
	if removed != 4 { // versions 10..40 dropped; 50 kept as the snapshot floor
		t.Fatalf("removed %d versions", removed)
	}
	if v, ok := get(t, s, "k", 55); !ok || v != "v5" {
		t.Fatalf("watermark read after prune: %q,%v", v, ok)
	}
	if v, ok := get(t, s, "k", 100); !ok || v != "v10" {
		t.Fatalf("fresh read after prune: %q,%v", v, ok)
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	s := NewStore()
	const writers = 16
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				txn := TxnID(w*perWriter + i + 1)
				key := []byte(fmt.Sprintf("w%02d-%04d", w, i))
				if err := s.Put(txn, key, []byte("x"), ts.Max); err != nil {
					t.Error(err)
					return
				}
				if err := s.Commit(txn, ts.Timestamp(int(txn)*2)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Stats().Keys; got != writers*perWriter {
		t.Fatalf("keys = %d, want %d", got, writers*perWriter)
	}
	if got := s.Stats().Commits; got != writers*perWriter {
		t.Fatalf("commits = %d", got)
	}
}

func TestConcurrentContendedWriters(t *testing.T) {
	// Many writers race on one key; exactly the winners' chain must be
	// consistent and no committed value may be lost mid-chain.
	s := NewStore()
	var next ts.Timestamp = 1
	var mu sync.Mutex
	nextTS := func() ts.Timestamp {
		mu.Lock()
		defer mu.Unlock()
		next++
		return next
	}
	var wg sync.WaitGroup
	var commits atomic64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				txn := TxnID(w*1000 + i + 1)
				snap := s.LastCommitTS()
				if err := s.Put(txn, []byte("hot"), []byte{byte(w)}, snap); err != nil {
					continue // conflict: fine, retry next iteration
				}
				s.Commit(txn, nextTS())
				commits.add(1)
			}
		}(w)
	}
	wg.Wait()
	if commits.load() == 0 {
		t.Fatal("no writer ever succeeded")
	}
	vs := s.Versions([]byte("hot"))
	if int64(len(vs)) != commits.load() {
		t.Fatalf("chain has %d versions, committed %d", len(vs), commits.load())
	}
}

type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

func TestTxnNotFound(t *testing.T) {
	s := NewStore()
	if err := s.Commit(99, 1); !errors.Is(err, ErrTxnNotFound) {
		t.Fatalf("Commit unknown txn: %v", err)
	}
	if err := s.Abort(99); !errors.Is(err, ErrTxnNotFound) {
		t.Fatalf("Abort unknown txn: %v", err)
	}
}

func TestCommitWatermarkMonotonic(t *testing.T) {
	s := NewStore()
	s.AdvanceCommitWatermark(100)
	s.AdvanceCommitWatermark(50)
	if s.LastCommitTS() != 100 {
		t.Fatalf("watermark moved backwards: %v", s.LastCommitTS())
	}
}
