package mvcc

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"globaldb/internal/ts"
)

// loadSeq commits n keys k000..k(n-1) with values equal to their keys.
func loadSeq(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		s.ApplyCommitted(k, k, false, ts.Timestamp(10+i))
	}
}

func TestScanPageResume(t *testing.T) {
	s := NewStore()
	loadSeq(t, s, 25)
	snap := ts.Timestamp(1000)

	var all []KV
	start := []byte("k")
	end := []byte("l")
	pages := 0
	for {
		kvs, next, more, err := s.ScanPage(context.Background(), start, end, snap, 7, 0)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, kvs...)
		pages++
		if !more {
			break
		}
		if next == nil {
			t.Fatal("more=true but next=nil")
		}
		start = next
	}
	if len(all) != 25 {
		t.Fatalf("paged scan returned %d rows, want 25", len(all))
	}
	if pages < 4 {
		t.Fatalf("expected >= 4 pages of 7, got %d", pages)
	}
	for i, kv := range all {
		want := fmt.Sprintf("k%03d", i)
		if string(kv.Key) != want {
			t.Fatalf("row %d: key %q, want %q", i, kv.Key, want)
		}
	}

	// The paged walk must agree with a single unlimited scan.
	whole, err := s.Scan(context.Background(), []byte("k"), []byte("l"), snap, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole) != len(all) {
		t.Fatalf("whole scan %d rows vs paged %d", len(whole), len(all))
	}
	for i := range whole {
		if !bytes.Equal(whole[i].Key, all[i].Key) || !bytes.Equal(whole[i].Value, all[i].Value) {
			t.Fatalf("row %d differs between whole and paged scan", i)
		}
	}
}

func TestScanPageExhaustedRange(t *testing.T) {
	s := NewStore()
	loadSeq(t, s, 5)
	// Truncated exactly at the last key whose successor equals the range
	// end: the store knows nothing can follow, so more must be false.
	kvs, next, more, err := s.ScanPage(context.Background(), []byte("k000"), []byte("k003\x00"), ts.Timestamp(1000), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 4 {
		t.Fatalf("rows = %d, want 4", len(kvs))
	}
	if more || next != nil {
		t.Fatalf("more=%v next=%q, want no continuation past the range end", more, next)
	}
	// Truncated mid-range with nothing actually left: the cursor cannot know
	// without peeking, so it reports more=true and the follow-up page is the
	// empty terminal page.
	kvs, next, more, err = s.ScanPage(context.Background(), []byte("k000"), []byte("k004"), ts.Timestamp(1000), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 4 || !more {
		t.Fatalf("rows=%d more=%v, want 4 rows with a continuation", len(kvs), more)
	}
	rest, _, more2, err := s.ScanPage(context.Background(), next, []byte("k004"), ts.Timestamp(1000), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || more2 {
		t.Fatalf("terminal page: %d rows more=%v", len(rest), more2)
	}
}

func TestScanPageSkipsDeletedAndCountsRows(t *testing.T) {
	s := NewStore()
	loadSeq(t, s, 10)
	s.ApplyCommitted([]byte("k003"), nil, true, ts.Timestamp(500))
	before := s.RowsScanned()
	kvs, next, more, err := s.ScanPage(context.Background(), []byte("k"), []byte("l"), ts.Timestamp(1000), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 5 {
		t.Fatalf("rows = %d, want 5", len(kvs))
	}
	// k003 is deleted, so the 5th visible row is k005.
	if string(kvs[4].Key) != "k005" {
		t.Fatalf("5th row = %q, want k005", kvs[4].Key)
	}
	if !more || string(next) != "k005\x00" {
		t.Fatalf("next = %q more=%v", next, more)
	}
	if got := s.RowsScanned() - before; got != 5 {
		t.Fatalf("RowsScanned delta = %d, want 5", got)
	}
	// Resuming covers the remainder exactly once.
	rest, _, more2, err := s.ScanPage(context.Background(), next, []byte("l"), ts.Timestamp(1000), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if more2 || len(rest) != 4 || string(rest[0].Key) != "k006" {
		t.Fatalf("rest = %d rows starting %q more=%v", len(rest), rest[0].Key, more2)
	}
}

func TestScanPageReadsOwnIntents(t *testing.T) {
	s := NewStore()
	loadSeq(t, s, 4)
	const me = TxnID(42)
	if err := s.Put(me, []byte("k001x"), []byte("mine"), ts.Timestamp(1000)); err != nil {
		t.Fatal(err)
	}
	kvs, next, more, err := s.ScanPage(context.Background(), []byte("k"), []byte("l"), ts.Timestamp(1000), 3, me)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 3 || string(kvs[2].Key) != "k001x" || string(kvs[2].Value) != "mine" {
		t.Fatalf("own intent missing from page: %v", kvs)
	}
	if !more {
		t.Fatal("expected continuation")
	}
	rest, _, _, err := s.ScanPage(context.Background(), next, []byte("l"), ts.Timestamp(1000), 0, me)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || string(rest[0].Key) != "k002" {
		t.Fatalf("rest = %v", rest)
	}
}
