package mvcc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"globaldb/internal/ts"
)

// modelVersion is one committed value in the oracle.
type modelVersion struct {
	commitTS ts.Timestamp
	value    []byte
	deleted  bool
}

// model is a sequential oracle for a Store driven with non-overlapping
// transactions: committed versions per key, in commit order.
type model struct {
	versions map[string][]modelVersion // append order = commit order
}

func newModel() *model { return &model{versions: make(map[string][]modelVersion)} }

func (m *model) commit(writes map[string][]byte, deletes map[string]bool, commitTS ts.Timestamp) {
	for k, v := range writes {
		m.versions[k] = append(m.versions[k], modelVersion{commitTS: commitTS, value: v})
	}
	for k := range deletes {
		m.versions[k] = append(m.versions[k], modelVersion{commitTS: commitTS, deleted: true})
	}
}

func (m *model) read(key string, snap ts.Timestamp) ([]byte, bool) {
	var best *modelVersion
	for i := range m.versions[key] {
		v := &m.versions[key][i]
		if v.commitTS <= snap && (best == nil || v.commitTS > best.commitTS) {
			best = v
		}
	}
	if best == nil || best.deleted {
		return nil, false
	}
	return best.value, true
}

// TestStoreMatchesSequentialModel drives a Store with a long random
// sequence of serial transactions (writes, deletes, commits, aborts) and
// cross-checks every read at randomly chosen historical snapshots against
// the oracle.
func TestStoreMatchesSequentialModel(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			store := NewStore()
			oracle := newModel()
			ctx := context.Background()

			var commitTimes []ts.Timestamp
			nextTS := ts.Timestamp(100)
			for txn := TxnID(1); txn <= 300; txn++ {
				writes := map[string][]byte{}
				deletes := map[string]bool{}
				nOps := 1 + rng.Intn(5)
				for i := 0; i < nOps; i++ {
					key := fmt.Sprintf("k%02d", rng.Intn(30))
					if rng.Intn(5) == 0 {
						// Deleting a key that exists at the current tip.
						if _, ok := oracle.read(key, ts.Max); ok {
							if err := store.Delete(txn, []byte(key), ts.Max); err != nil {
								t.Fatalf("delete: %v", err)
							}
							delete(writes, key)
							deletes[key] = true
							continue
						}
					}
					val := []byte(fmt.Sprintf("v-%d-%d", txn, i))
					if err := store.Put(txn, []byte(key), val, ts.Max); err != nil {
						t.Fatalf("put: %v", err)
					}
					delete(deletes, key)
					writes[key] = val
				}
				if rng.Intn(8) == 0 {
					if err := store.Abort(txn); err != nil {
						t.Fatalf("abort: %v", err)
					}
					continue
				}
				nextTS += ts.Timestamp(1 + rng.Intn(4))
				if err := store.Commit(txn, nextTS); err != nil {
					t.Fatalf("commit: %v", err)
				}
				oracle.commit(writes, deletes, nextTS)
				commitTimes = append(commitTimes, nextTS)

				// Cross-check reads at the tip and at a random historical
				// snapshot (including between commits).
				snaps := []ts.Timestamp{nextTS, ts.Max}
				if len(commitTimes) > 1 {
					base := commitTimes[rng.Intn(len(commitTimes))]
					snaps = append(snaps, base, base-1)
				}
				for _, snap := range snaps {
					key := fmt.Sprintf("k%02d", rng.Intn(30))
					got, found, err := store.Get(ctx, []byte(key), snap, 0)
					if err != nil {
						t.Fatalf("get: %v", err)
					}
					want, wantFound := oracle.read(key, snap)
					if found != wantFound || !bytes.Equal(got, want) {
						t.Fatalf("txn %d key %s snap %v: store (%q,%v) vs model (%q,%v)",
							txn, key, snap, got, found, want, wantFound)
					}
				}
			}

			// Full sweep at several snapshots.
			for _, snap := range []ts.Timestamp{commitTimes[len(commitTimes)/3], commitTimes[len(commitTimes)-1], ts.Max} {
				for i := 0; i < 30; i++ {
					key := fmt.Sprintf("k%02d", i)
					got, found, err := store.Get(ctx, []byte(key), snap, 0)
					if err != nil {
						t.Fatal(err)
					}
					want, wantFound := oracle.read(key, snap)
					if found != wantFound || !bytes.Equal(got, want) {
						t.Fatalf("sweep key %s snap %v: store (%q,%v) vs model (%q,%v)",
							key, snap, got, found, want, wantFound)
					}
				}
			}
		})
	}
}

// TestScanMatchesModel cross-checks range scans against the oracle.
func TestScanMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	store := NewStore()
	oracle := newModel()
	ctx := context.Background()
	nextTS := ts.Timestamp(10)
	for txn := TxnID(1); txn <= 100; txn++ {
		writes := map[string][]byte{}
		for i := 0; i < 1+rng.Intn(4); i++ {
			key := fmt.Sprintf("k%02d", rng.Intn(40))
			val := []byte(fmt.Sprintf("v%d", txn))
			if err := store.Put(txn, []byte(key), val, ts.Max); err != nil {
				t.Fatal(err)
			}
			writes[key] = val
		}
		nextTS += 2
		if err := store.Commit(txn, nextTS); err != nil {
			t.Fatal(err)
		}
		oracle.commit(writes, nil, nextTS)
	}
	for trial := 0; trial < 50; trial++ {
		lo := rng.Intn(40)
		hi := lo + rng.Intn(40-lo) + 1
		snap := ts.Timestamp(10 + rng.Intn(220))
		start := []byte(fmt.Sprintf("k%02d", lo))
		end := []byte(fmt.Sprintf("k%02d", hi))
		got, err := store.Scan(ctx, start, end, snap, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		var want []KV
		for i := lo; i < hi; i++ {
			key := fmt.Sprintf("k%02d", i)
			if v, ok := oracle.read(key, snap); ok {
				want = append(want, KV{Key: []byte(key), Value: v})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("scan [%s,%s) @%v: %d rows, want %d", start, end, snap, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
				t.Fatalf("scan row %d: (%q,%q) vs (%q,%q)", i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
			}
		}
	}
}

// TestWriteConflictRules checks first-committer-wins behaviour explicitly:
// a writer with a snapshot below an existing committed version must fail,
// as must a writer colliding with a foreign intent.
func TestWriteConflictRules(t *testing.T) {
	store := NewStore()
	if err := store.Put(1, []byte("k"), []byte("v1"), ts.Max); err != nil {
		t.Fatal(err)
	}
	// Foreign intent conflict.
	if err := store.Put(2, []byte("k"), []byte("v2"), ts.Max); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("intent conflict: %v", err)
	}
	if err := store.Commit(1, 100); err != nil {
		t.Fatal(err)
	}
	// Snapshot-stale write conflict.
	if err := store.Put(3, []byte("k"), []byte("v3"), 50); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("stale snapshot: %v", err)
	}
	// Fresh snapshot succeeds.
	if err := store.Put(4, []byte("k"), []byte("v4"), 100); err != nil {
		t.Fatal(err)
	}
	if err := store.Commit(4, 200); err != nil {
		t.Fatal(err)
	}
}
