// Package mvcc implements the multi-version storage engine used by GlobalDB
// data nodes.
//
// Each key maps to a version chain (newest first) plus at most one
// uncommitted write intent. Visibility follows snapshot semantics: a read at
// snapshot timestamp S sees the newest version with commitTS <= S.
//
// Intents move through states mirroring the paper's redo protocol
// (Sec. IV-A):
//
//	Active   — the transaction is still executing; its eventual commit
//	           timestamp is guaranteed to exceed any snapshot already
//	           issued, so the intent is simply invisible to readers.
//	Pending  — a PENDING COMMIT record has been written: the commit
//	           timestamp is being fetched and may land below a reader's
//	           snapshot, so readers touching these tuples must wait.
//	Prepared — a two-phase-commit participant has prepared; visibility is
//	           blocked until COMMIT PREPARED or ABORT PREPARED resolves it.
//
// The same machinery serves both primaries (intents created by executing
// transactions) and replicas (intents created by redo replay).
//
// Locking: a structure RWMutex guards the B-tree's shape (chain insertion
// and removal), each chain carries its own mutex for contents, and the
// transaction table has a separate mutex. Operations on distinct keys run
// in parallel — this is what makes the replica's parallel redo replay
// actually faster than sequential replay. The transaction-table mutex is
// never acquired while holding the structure or a chain lock, which rules
// out lock-order cycles; readers that race a resolving transaction simply
// retry their key.
package mvcc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"globaldb/internal/storage/btree"
	"globaldb/internal/ts"
)

// TxnID identifies a transaction cluster-wide. Coordinators compose it from
// their node ID and a local sequence number.
type TxnID uint64

// Errors returned by the store.
var (
	// ErrWriteConflict means another transaction holds a write intent on the
	// key, or a version newer than the writer's snapshot exists
	// (first-committer-wins snapshot isolation).
	ErrWriteConflict = errors.New("mvcc: write-write conflict")
	// ErrTxnNotFound means the transaction has no state in this store.
	ErrTxnNotFound = errors.New("mvcc: transaction not found")
)

// TxnState is the lifecycle state of a transaction's intents in one store.
type TxnState uint8

const (
	// StateActive means the transaction is executing.
	StateActive TxnState = iota
	// StatePending means a PENDING COMMIT record was logged: the commit
	// timestamp is unknown but may be below snapshots already handed out.
	StatePending
	// StatePrepared means the transaction prepared under 2PC.
	StatePrepared
)

func (s TxnState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StatePending:
		return "pending"
	case StatePrepared:
		return "prepared"
	default:
		return fmt.Sprintf("TxnState(%d)", uint8(s))
	}
}

// Version is one committed value of a key.
type Version struct {
	CommitTS ts.Timestamp
	Value    []byte
	Deleted  bool
}

type intent struct {
	txn     TxnID
	value   []byte
	deleted bool
}

type chain struct {
	mu       sync.Mutex
	dead     bool      // set when the chain is unlinked from the tree; writers must re-fetch
	versions []Version // newest first
	intent   *intent
}

type txnMeta struct {
	keys  [][]byte
	state TxnState
	done  chan struct{} // closed when the txn commits or aborts
}

// Store is a single data node's versioned key space.
type Store struct {
	mu   sync.RWMutex // guards the tree's shape
	data *btree.Tree[*chain]

	txnMu sync.Mutex
	txns  map[TxnID]*txnMeta

	lastCommit atomic.Int64 // max commit timestamp applied, for fast local snapshots
	commits    atomic.Int64
	aborts     atomic.Int64
	waits      atomic.Int64 // reader waits on pending/prepared intents
	scanRows   atomic.Int64 // visible pairs returned by Scan/ScanPage
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{data: btree.New[*chain](), txns: make(map[TxnID]*txnMeta)}
}

// LastCommitTS returns the largest commit timestamp applied to this store.
// Replicas report it to the RCP collector; primaries use it for the
// single-shard read fast path of Sec. III.
func (s *Store) LastCommitTS() ts.Timestamp { return ts.Timestamp(s.lastCommit.Load()) }

// advanceLastCommit raises the last-commit watermark monotonically.
func (s *Store) advanceLastCommit(t ts.Timestamp) {
	for {
		cur := s.lastCommit.Load()
		if int64(t) <= cur || s.lastCommit.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// AdvanceCommitWatermark raises the last-commit watermark without applying
// data. Replica appliers call it when replaying heartbeat records, which
// exist precisely so the RCP advances on idle shards (Sec. IV-A).
func (s *Store) AdvanceCommitWatermark(t ts.Timestamp) { s.advanceLastCommit(t) }

// getChain returns the chain for key, creating it when create is set.
func (s *Store) getChain(key []byte, create bool) *chain {
	s.mu.RLock()
	c, ok := s.data.Get(key)
	s.mu.RUnlock()
	if ok || !create {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok = s.data.Get(key); ok {
		return c
	}
	c = &chain{}
	s.data.Set(bytes.Clone(key), c)
	return c
}

// removeChainIfEmpty deletes a chain that lost its last contents (aborted
// insert of a fresh key). Takes the structure lock first, then the chain
// lock — the global lock order. The chain is marked dead under both locks
// so a writer that fetched the pointer before the removal re-fetches
// instead of staging into a detached object.
func (s *Store) removeChainIfEmpty(key []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.data.Get(key)
	if !ok {
		return
	}
	c.mu.Lock()
	empty := len(c.versions) == 0 && c.intent == nil
	if empty {
		c.dead = true
	}
	c.mu.Unlock()
	if empty {
		s.data.Delete(key)
	}
}

func (s *Store) txnLocked(id TxnID) *txnMeta {
	m, ok := s.txns[id]
	if !ok {
		m = &txnMeta{state: StateActive, done: make(chan struct{})}
		s.txns[id] = m
	}
	return m
}

// Put stages a write intent for txn. snapTS is the writer's snapshot; a
// committed version newer than it fails with ErrWriteConflict, as does an
// intent held by another transaction.
func (s *Store) Put(txn TxnID, key, value []byte, snapTS ts.Timestamp) error {
	return s.write(txn, key, value, false, snapTS)
}

// Delete stages a deletion intent for txn.
func (s *Store) Delete(txn TxnID, key []byte, snapTS ts.Timestamp) error {
	return s.write(txn, key, nil, true, snapTS)
}

func (s *Store) write(txn TxnID, key, value []byte, deleted bool, snapTS ts.Timestamp) error {
	c := s.getChain(key, true)
	c.mu.Lock()
	for c.dead {
		// Lost a race with removeChainIfEmpty; fetch the live chain.
		c.mu.Unlock()
		c = s.getChain(key, true)
		c.mu.Lock()
	}
	if c.intent != nil && c.intent.txn != txn {
		holder := c.intent.txn
		c.mu.Unlock()
		return fmt.Errorf("%w: key %q held by txn %d", ErrWriteConflict, key, holder)
	}
	if len(c.versions) > 0 && c.versions[0].CommitTS > snapTS {
		newer := c.versions[0].CommitTS
		c.mu.Unlock()
		return fmt.Errorf("%w: key %q has newer version %v > snapshot %v",
			ErrWriteConflict, key, newer, snapTS)
	}
	firstWrite := c.intent == nil
	c.intent = &intent{txn: txn, value: bytes.Clone(value), deleted: deleted}
	c.mu.Unlock()

	if firstWrite {
		// A transaction's operations are serial (one coordinator goroutine),
		// so registering the key after releasing the chain lock cannot race
		// this transaction's own commit.
		s.txnMu.Lock()
		m := s.txnLocked(txn)
		m.keys = append(m.keys, bytes.Clone(key))
		s.txnMu.Unlock()
	}
	return nil
}

// StagedOp is one replay mutation for StageBatch.
type StagedOp struct {
	Txn     TxnID
	Key     []byte
	Value   []byte
	Deleted bool
}

// StageOp stages one replay intent. Unlike Put/Delete it skips snapshot
// conflict checks (the primary already serialized the stream). When it
// encounters a foreign intent it waits for that transaction to resolve.
//
// Callers must preserve per-key log order across StageOp calls (the
// parallel applier partitions records by key hash, so each key's ops
// arrive in log order). Under that discipline a foreign intent always
// belongs to a transaction whose resolution record precedes this op in
// the log, so the replay coordinator is guaranteed to apply it.
//
// The key registers in the transaction table immediately — before the
// caller advances its replay watermark — so a commit replayed later can
// never miss it.
func (s *Store) StageOp(op StagedOp) error {
	c := s.getChain(op.Key, true)
	for {
		c.mu.Lock()
		if c.dead {
			// Lost a race with removeChainIfEmpty (an abort of the key's
			// only writer unlinked the chain); fetch the live chain.
			c.mu.Unlock()
			c = s.getChain(op.Key, true)
			continue
		}
		if c.intent == nil || c.intent.txn == op.Txn {
			break
		}
		holder := c.intent.txn
		c.mu.Unlock()
		if _, ok, done := s.stateAndDone(holder); ok {
			<-done // the holder resolves on the replay coordinator
		} else {
			runtime.Gosched() // resolved between reads; re-check
		}
	}
	firstWrite := c.intent == nil
	c.intent = &intent{txn: op.Txn, value: bytes.Clone(op.Value), deleted: op.Deleted}
	c.mu.Unlock()
	if firstWrite {
		s.txnMu.Lock()
		m := s.txnLocked(op.Txn)
		m.keys = append(m.keys, bytes.Clone(op.Key))
		s.txnMu.Unlock()
	}
	return nil
}

// StageBatch stages many intents in order via StageOp.
func (s *Store) StageBatch(ops []StagedOp) error {
	for _, op := range ops {
		if err := s.StageOp(op); err != nil {
			return err
		}
	}
	return nil
}

// MarkPending transitions txn's intents to the Pending state. Primaries call
// it when writing the PENDING COMMIT record, before fetching the commit
// timestamp; replicas call it when that record replays.
func (s *Store) MarkPending(txn TxnID) error { return s.setState(txn, StatePending) }

// MarkPrepared transitions txn's intents to the Prepared 2PC state.
func (s *Store) MarkPrepared(txn TxnID) error { return s.setState(txn, StatePrepared) }

func (s *Store) setState(txn TxnID, st TxnState) error {
	s.txnMu.Lock()
	defer s.txnMu.Unlock()
	// A transaction that never wrote here still gets a record so a later
	// Commit succeeds (control-only replay streams).
	m := s.txnLocked(txn)
	m.state = st
	return nil
}

// TxnStateOf reports the state of txn in this store.
func (s *Store) TxnStateOf(txn TxnID) (TxnState, bool) {
	s.txnMu.Lock()
	defer s.txnMu.Unlock()
	m, ok := s.txns[txn]
	if !ok {
		return 0, false
	}
	return m.state, true
}

// Commit applies txn's intents as versions at commitTS and wakes waiting
// readers.
func (s *Store) Commit(txn TxnID, commitTS ts.Timestamp) error {
	s.txnMu.Lock()
	m, ok := s.txns[txn]
	if !ok {
		s.txnMu.Unlock()
		return fmt.Errorf("%w: %d", ErrTxnNotFound, txn)
	}
	delete(s.txns, txn)
	s.txnMu.Unlock()

	for _, key := range m.keys {
		c := s.getChain(key, false)
		if c == nil {
			continue
		}
		c.mu.Lock()
		if c.intent != nil && c.intent.txn == txn {
			c.versions = append([]Version{{CommitTS: commitTS, Value: c.intent.value, Deleted: c.intent.deleted}}, c.versions...)
			c.intent = nil
		}
		c.mu.Unlock()
	}
	s.advanceLastCommit(commitTS)
	s.commits.Add(1)
	close(m.done)
	return nil
}

// Abort discards txn's intents and wakes waiting readers.
func (s *Store) Abort(txn TxnID) error {
	s.txnMu.Lock()
	m, ok := s.txns[txn]
	if !ok {
		s.txnMu.Unlock()
		return fmt.Errorf("%w: %d", ErrTxnNotFound, txn)
	}
	delete(s.txns, txn)
	s.txnMu.Unlock()

	for _, key := range m.keys {
		c := s.getChain(key, false)
		if c == nil {
			continue
		}
		c.mu.Lock()
		cleared := false
		if c.intent != nil && c.intent.txn == txn {
			c.intent = nil
			cleared = len(c.versions) == 0
		}
		c.mu.Unlock()
		if cleared {
			s.removeChainIfEmpty(key)
		}
	}
	s.aborts.Add(1)
	close(m.done)
	return nil
}

// snapshotChain reads a chain's contents under its lock.
func (c *chain) snapshot() (it *intent, top []Version) {
	c.mu.Lock()
	it = c.intent
	top = c.versions
	c.mu.Unlock()
	return it, top
}

// Get returns the value of key visible at snapTS. If reader is non-zero and
// holds an intent on the key, the intent's value is returned
// (read-your-own-writes). Readers encountering Pending or Prepared intents
// block until those transactions resolve, per Sec. IV-A.
func (s *Store) Get(ctx context.Context, key []byte, snapTS ts.Timestamp, reader TxnID) ([]byte, bool, error) {
	for {
		c := s.getChain(key, false)
		if c == nil {
			return nil, false, nil
		}
		it, versions := c.snapshot()
		if it != nil {
			if reader != 0 && it.txn == reader {
				if it.deleted {
					return nil, false, nil
				}
				return it.value, true, nil
			}
			state, ok, done := s.stateAndDone(it.txn)
			switch {
			case !ok:
				// The transaction resolved between our chain read and the
				// state lookup; re-read the chain.
				runtime.Gosched()
				continue
			case state != StateActive:
				s.waits.Add(1)
				select {
				case <-done:
					continue // re-evaluate with the resolved chain
				case <-ctx.Done():
					return nil, false, ctx.Err()
				}
			}
			// Active intent: invisible; fall through to committed versions.
		}
		v, found := visible(versions, snapTS)
		if !found || v.Deleted {
			return nil, false, nil
		}
		return v.Value, true, nil
	}
}

func (s *Store) stateAndDone(txn TxnID) (TxnState, bool, chan struct{}) {
	s.txnMu.Lock()
	defer s.txnMu.Unlock()
	m, ok := s.txns[txn]
	if !ok {
		return 0, false, nil
	}
	return m.state, true, m.done
}

func visible(versions []Version, snapTS ts.Timestamp) (Version, bool) {
	for _, v := range versions {
		if v.CommitTS <= snapTS {
			return v, true
		}
	}
	return Version{}, false
}

// KV is one key/value pair returned by Scan. Both slices may alias the
// store's immutable internals (tree keys and committed version values), so
// callers must treat them as read-only; deriving a new key (e.g. a resume
// key) requires copying first. This is what lets a page scan hand back a
// whole page without one clone per row.
type KV struct {
	Key   []byte
	Value []byte
}

// Scan returns up to limit visible pairs with keys in [start, end) at
// snapTS, in key order. limit <= 0 means unlimited. Pending/prepared intents
// inside the range block the scan until resolved, then the scan restarts so
// the result is a consistent cut.
func (s *Store) Scan(ctx context.Context, start, end []byte, snapTS ts.Timestamp, limit int, reader TxnID) ([]KV, error) {
	kvs, _, _, err := s.ScanPage(ctx, start, end, snapTS, limit, reader)
	return kvs, err
}

// ScanPage is the resumable form of Scan: it returns up to limit visible
// pairs in [start, end) at snapTS, plus a resume key and whether the range
// may hold further keys. When more is true, a follow-up ScanPage starting at
// next continues exactly where this page stopped without rescanning — the
// primitive the paged cursor pipeline is built on. Each page is a consistent
// cut at snapTS; MVCC snapshot semantics make consecutive pages at the same
// snapshot mutually consistent.
func (s *Store) ScanPage(ctx context.Context, start, end []byte, snapTS ts.Timestamp, limit int, reader TxnID) (kvs []KV, next []byte, more bool, err error) {
	for {
		out, foreign, last, truncated := s.scanOnce(start, end, snapTS, limit, reader)
		// Validate foreign intents seen during the scan: any that is (or
		// has become) pending/prepared — or resolved since — may have
		// committed below our snapshot, so wait and restart. Intents still
		// Active are invisible by the monotonic-issuance invariant.
		var wait chan struct{}
		for _, txn := range foreign {
			state, ok, done := s.stateAndDone(txn)
			if !ok {
				// Resolved mid-scan: its versions may or may not be in our
				// results — restart for a consistent cut.
				wait = closedCh
				break
			}
			if state != StateActive {
				wait = done
				break
			}
		}
		if wait == nil {
			s.scanRows.Add(int64(len(out)))
			if !truncated {
				return out, nil, false, nil
			}
			// Resume at the immediate successor of the last visited key.
			next = append(bytes.Clone(last), 0x00)
			if end != nil && bytes.Compare(next, end) >= 0 {
				return out, nil, false, nil
			}
			return out, next, true, nil
		}
		s.waits.Add(1)
		select {
		case <-wait:
		case <-ctx.Done():
			return nil, nil, false, ctx.Err()
		}
	}
}

// RowsScanned reports the total visible pairs returned by scans, for
// measuring how many rows each layer of the scan pipeline actually fetched.
func (s *Store) RowsScanned() int64 { return s.scanRows.Load() }

var closedCh = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// scanOnce walks the range, returning visible pairs, the distinct foreign
// transactions whose intents were encountered, the last key visited, and
// whether the walk stopped early at the limit.
func (s *Store) scanOnce(start, end []byte, snapTS ts.Timestamp, limit int, reader TxnID) (out []KV, foreign []TxnID, last []byte, truncated bool) {
	seen := map[TxnID]bool{}
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.data.AscendRange(start, end, func(key []byte, c *chain) bool {
		last = key
		it, versions := c.snapshot()
		if it != nil {
			if reader != 0 && it.txn == reader {
				if !it.deleted {
					out = append(out, KV{Key: key, Value: it.value})
				}
				if limit > 0 && len(out) >= limit {
					truncated = true
					return false
				}
				return true
			}
			if !seen[it.txn] {
				seen[it.txn] = true
				foreign = append(foreign, it.txn)
			}
		}
		if v, found := visible(versions, snapTS); found && !v.Deleted {
			out = append(out, KV{Key: key, Value: v.Value})
		}
		if limit > 0 && len(out) >= limit {
			truncated = true
			return false
		}
		return true
	})
	return out, foreign, last, truncated
}

// ApplyCommitted installs an already-committed version directly, bypassing
// the intent machinery. Replica appliers use it for single-record commits
// and loaders use it for bulk-loading initial data.
func (s *Store) ApplyCommitted(key, value []byte, deleted bool, commitTS ts.Timestamp) {
	c := s.getChain(key, true)
	c.mu.Lock()
	// Insert preserving newest-first order; replay can deliver old versions
	// after new ones when parallel appliers interleave.
	i := 0
	for i < len(c.versions) && c.versions[i].CommitTS > commitTS {
		i++
	}
	v := Version{CommitTS: commitTS, Value: bytes.Clone(value), Deleted: deleted}
	c.versions = append(c.versions, Version{})
	copy(c.versions[i+1:], c.versions[i:])
	c.versions[i] = v
	c.mu.Unlock()
	s.advanceLastCommit(commitTS)
}

// Prune drops versions strictly older than the newest version at or below
// watermark for every key, bounding version-chain growth. It returns the
// number of versions removed.
func (s *Store) Prune(watermark ts.Timestamp) int {
	removed := 0
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.data.AscendRange(nil, nil, func(_ []byte, c *chain) bool {
		c.mu.Lock()
		for i, v := range c.versions {
			if v.CommitTS <= watermark {
				removed += len(c.versions) - i - 1
				c.versions = c.versions[:i+1]
				break
			}
		}
		c.mu.Unlock()
		return true
	})
	return removed
}

// Stats are operation counters for observability and tests.
type Stats struct {
	Keys        int
	ActiveTxns  int
	Commits     int64
	Aborts      int64
	ReaderWaits int64
	RowsScanned int64
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	keys := s.data.Len()
	s.mu.RUnlock()
	s.txnMu.Lock()
	txns := len(s.txns)
	s.txnMu.Unlock()
	return Stats{
		Keys:        keys,
		ActiveTxns:  txns,
		Commits:     s.commits.Load(),
		Aborts:      s.aborts.Load(),
		ReaderWaits: s.waits.Load(),
		RowsScanned: s.scanRows.Load(),
	}
}

// Versions returns the committed version chain of key, newest first. Tests
// use it to compare primary and replica states.
func (s *Store) Versions(key []byte) []Version {
	c := s.getChain(key, false)
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Version, len(c.versions))
	copy(out, c.versions)
	return out
}

// Clone deep-copies the committed state (version chains and watermark) into
// a fresh store, dropping uncommitted intents. Failover uses it to re-seed
// surviving replicas from a promoted primary.
func (s *Store) Clone() *Store {
	out := NewStore()
	s.mu.RLock()
	s.data.AscendRange(nil, nil, func(k []byte, c *chain) bool {
		c.mu.Lock()
		if len(c.versions) > 0 {
			nc := &chain{versions: make([]Version, len(c.versions))}
			copy(nc.versions, c.versions)
			out.data.Set(bytes.Clone(k), nc)
		}
		c.mu.Unlock()
		return true
	})
	s.mu.RUnlock()
	out.lastCommit.Store(s.lastCommit.Load())
	return out
}

// Keys returns every key present (committed or with intent), in order.
func (s *Store) Keys() [][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out [][]byte
	s.data.AscendRange(nil, nil, func(k []byte, _ *chain) bool {
		out = append(out, bytes.Clone(k))
		return true
	})
	return out
}
