// Package rcp computes and publishes the Replica Consistency Point — the
// largest commit timestamp available on the asynchronous replicas, the
// snapshot at which read-on-replica queries are guaranteed consistent
// (Sec. IV-A, Fig. 4).
//
// A designated CN polls every replica's maximum applied commit timestamp.
// For each shard it takes the freshest replica, and the RCP is the minimum
// across shards; queries then route to replicas that have reached the RCP.
// The published value is monotonic from the client's point of view, and a
// replacement collector (after a CN failure) can never regress it because
// replica watermarks only grow.
//
// Heartbeat transactions keep idle shards moving: the collector
// periodically stamps every primary's log with a fresh commit timestamp so
// "a replica node's maximum timestamp could lag behind when it does not
// receive any transactions to replay" never pins the RCP.
package rcp

import (
	"context"
	"sync"
	"time"

	"globaldb/internal/datanode"
	"globaldb/internal/ts"
)

// ReplicaStatus is one replica's last observed state.
type ReplicaStatus struct {
	// Node is the replica's read endpoint.
	Node string
	// Shard is the shard it replicates.
	Shard int
	// MaxCommitTS is its applied-commit watermark.
	MaxCommitTS ts.Timestamp
	// Primary marks the shard primary (polled for load/health, not RCP).
	Primary bool
	// Load is its in-flight request count at poll time.
	Load int64
	// RTT is the observed status-poll round trip.
	RTT time.Duration
	// Healthy is false when the poll failed (crash, partition).
	Healthy bool
	// PolledAt is when the status was observed.
	PolledAt time.Time
}

// Topology maps shards to their replica endpoints and primary endpoint.
type Topology struct {
	// Primaries maps shard -> primary endpoint name.
	Primaries map[int]string
	// Replicas maps shard -> replica endpoint names.
	Replicas map[int][]string
}

// TSProvider supplies fresh commit timestamps for heartbeat transactions.
type TSProvider func(ctx context.Context) (ts.Timestamp, error)

// Config tunes the collector.
type Config struct {
	// PollInterval is how often replica watermarks are collected.
	PollInterval time.Duration
	// HeartbeatInterval is how often heartbeat transactions are issued.
	HeartbeatInterval time.Duration
	// PollTimeout bounds each status RPC.
	PollTimeout time.Duration
}

// DefaultConfig returns collector timing suitable for the simulator.
func DefaultConfig() Config {
	return Config{
		PollInterval:      2 * time.Millisecond,
		HeartbeatInterval: 5 * time.Millisecond,
		PollTimeout:       2 * time.Second,
	}
}

// Collector computes the RCP. It is shared by every CN in the cluster —
// the in-process analogue of the designated CN distributing the RCP.
type Collector struct {
	cfg    Config
	client *datanode.Client
	topo   Topology
	tsp    TSProvider

	mu       sync.RWMutex
	rcp      ts.Timestamp
	statuses map[string]ReplicaStatus

	cancel context.CancelFunc
	done   chan struct{}
}

// NewCollector creates a collector polling through client (homed at the
// designated CN's region).
func NewCollector(cfg Config, client *datanode.Client, topo Topology, tsp TSProvider) *Collector {
	return &Collector{
		cfg:      cfg,
		client:   client,
		topo:     topo,
		tsp:      tsp,
		statuses: make(map[string]ReplicaStatus),
	}
}

// Start launches the poll and heartbeat loops.
func (c *Collector) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	c.done = make(chan struct{})
	go c.run(ctx)
}

// Stop terminates the loops.
func (c *Collector) Stop() {
	if c.cancel != nil {
		c.cancel()
		<-c.done
	}
}

// RCP returns the current replica consistency point. It is monotonic.
func (c *Collector) RCP() ts.Timestamp {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rcp
}

// Statuses returns the last observed per-replica states (for node
// selection).
func (c *Collector) Statuses() map[string]ReplicaStatus {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]ReplicaStatus, len(c.statuses))
	for k, v := range c.statuses {
		out[k] = v
	}
	return out
}

// PollOnce collects every replica's watermark and recomputes the RCP,
// returning the new value. Exposed for tests and for a takeover CN that
// wants an immediate value.
func (c *Collector) PollOnce(ctx context.Context) ts.Timestamp {
	type result struct {
		node    string
		shard   int
		primary bool
		status  datanode.StatusResp
		rtt     time.Duration
		err     error
	}
	var wg sync.WaitGroup
	results := make(chan result, 64)
	poll := func(shard int, node string, primary bool) {
		defer wg.Done()
		cctx, cancel := context.WithTimeout(ctx, c.cfg.PollTimeout)
		defer cancel()
		start := time.Now()
		st, err := c.client.Status(cctx, node)
		results <- result{node: node, shard: shard, primary: primary, status: st, rtt: time.Since(start), err: err}
	}
	for shard, nodes := range c.topo.Replicas {
		for _, node := range nodes {
			wg.Add(1)
			go poll(shard, node, false)
		}
	}
	// Primaries are polled for load and health (node selection), but never
	// contribute to the RCP.
	for shard, node := range c.topo.Primaries {
		wg.Add(1)
		go poll(shard, node, true)
	}
	go func() { wg.Wait(); close(results) }()

	bestPerShard := make(map[int]ts.Timestamp)
	now := time.Now()
	c.mu.Lock()
	for r := range results {
		st := ReplicaStatus{
			Node: r.node, Shard: r.shard, Primary: r.primary, RTT: r.rtt, PolledAt: now, Healthy: r.err == nil,
		}
		if r.err == nil {
			st.MaxCommitTS = r.status.LastCommitTS
			st.Load = r.status.Load
			if !r.primary {
				if best, ok := bestPerShard[r.shard]; !ok || st.MaxCommitTS > best {
					bestPerShard[r.shard] = st.MaxCommitTS
				}
			}
		} else if prev, ok := c.statuses[r.node]; ok {
			st.MaxCommitTS = prev.MaxCommitTS // remember last known watermark
		}
		c.statuses[r.node] = st
	}
	// RCP = min over shards of the freshest replica (Fig. 4). A shard with
	// no reachable replica pins the RCP at its last known value.
	candidate := ts.Max
	for shard := range c.topo.Replicas {
		best, ok := bestPerShard[shard]
		if !ok {
			candidate = c.rcp
			break
		}
		if best < candidate {
			candidate = best
		}
	}
	if candidate != ts.Max && candidate > c.rcp {
		c.rcp = candidate
	}
	out := c.rcp
	c.mu.Unlock()
	return out
}

// HeartbeatOnce stamps every primary with a fresh commit timestamp.
func (c *Collector) HeartbeatOnce(ctx context.Context) error {
	t, err := c.tsp(ctx)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	for _, primary := range c.topo.Primaries {
		wg.Add(1)
		go func(primary string) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, c.cfg.PollTimeout)
			defer cancel()
			_ = c.client.Heartbeat(cctx, primary, t) // a dead primary just lags
		}(primary)
	}
	wg.Wait()
	return nil
}

func (c *Collector) run(ctx context.Context) {
	defer close(c.done)
	poll := time.NewTicker(c.cfg.PollInterval)
	hb := time.NewTicker(c.cfg.HeartbeatInterval)
	defer poll.Stop()
	defer hb.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-poll.C:
			c.PollOnce(ctx)
		case <-hb.C:
			_ = c.HeartbeatOnce(ctx) // provider failures retry next tick
		}
	}
}

// ComputeRCP is the pure Fig. 4 calculation over per-replica maximum commit
// timestamps grouped by shard: min over shards of (max over that shard's
// replicas). It returns Zero for an empty input.
func ComputeRCP(perShard map[int][]ts.Timestamp) ts.Timestamp {
	if len(perShard) == 0 {
		return ts.Zero
	}
	out := ts.Max
	for _, reps := range perShard {
		best := ts.Zero
		for _, t := range reps {
			if t > best {
				best = t
			}
		}
		if best < out {
			out = best
		}
	}
	return out
}
