package rcp

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"globaldb/internal/datanode"
	"globaldb/internal/netsim"
	"globaldb/internal/redo"
	"globaldb/internal/repl"
	"globaldb/internal/storage/mvcc"
	"globaldb/internal/ts"
)

var bg = context.Background()

// TestComputeRCPPaperExample reproduces Fig. 4 exactly: three replicas with
// commit timestamps {ts2,ts4,ts1}, {ts5}, {ts1,ts3}; the RCP is
// min(max each) = min(ts4, ts5, ts3) = ts3.
func TestComputeRCPPaperExample(t *testing.T) {
	perShard := map[int][]ts.Timestamp{
		1: {2, 4, 1}, // Replica 1: Trx2, Trx4, Trx1
		2: {5},       // Replica 2: Trx5
		3: {1, 3},    // Replica 3: Trx1, Trx3
	}
	if got := ComputeRCP(perShard); got != 3 {
		t.Fatalf("RCP = %v, want ts3", got)
	}
}

func TestComputeRCPMultipleReplicasPerShard(t *testing.T) {
	perShard := map[int][]ts.Timestamp{
		0: {10, 50}, // freshest replica of shard 0 is at 50
		1: {40, 20},
	}
	if got := ComputeRCP(perShard); got != 40 {
		t.Fatalf("RCP = %v, want 40", got)
	}
	if got := ComputeRCP(nil); got != ts.Zero {
		t.Fatalf("empty RCP = %v", got)
	}
}

// rig: two shards, each with one primary (east) and two replicas
// (west, east).
type rig struct {
	net       *netsim.Network
	primaries []*datanode.Primary
	replicas  []*datanode.Replica
	col       *Collector
	hbTS      atomic.Int64
}

func newRig(t *testing.T) *rig {
	t.Helper()
	n := netsim.New(netsim.Config{TimeScale: 0.1})
	n.SetLink("east", "west", 20*time.Millisecond, 0)
	r := &rig{net: n}
	topo := Topology{Primaries: map[int]string{}, Replicas: map[int][]string{}}
	for shard := 0; shard < 2; shard++ {
		p := datanode.NewPrimary(n, pname(shard), "east", shard, repl.Async, 1)
		r.primaries = append(r.primaries, p)
		topo.Primaries[shard] = p.ID()
		for i, region := range []string{"west", "east"} {
			rep := datanode.NewReplica(n, rname(shard, i), region, shard)
			r.replicas = append(r.replicas, rep)
			topo.Replicas[shard] = append(topo.Replicas[shard], rep.ID())
			sh := repl.NewShipper(repl.DefaultShipperConfig(), n, "east", datanode.ReplEndpointName(rep.ID()), p.Log(), p.Repl().AckHook())
			p.Repl().AddShipper(sh)
			sh.Start()
			t.Cleanup(sh.Stop)
		}
	}
	r.hbTS.Store(1000)
	tsp := func(context.Context) (ts.Timestamp, error) {
		return ts.Timestamp(r.hbTS.Add(10)), nil
	}
	r.col = NewCollector(DefaultConfig(), datanode.NewClient(n, "east"), topo, tsp)
	return r
}

func pname(shard int) string    { return "p" + string(rune('0'+shard)) }
func rname(shard, i int) string { return "r" + string(rune('0'+shard)) + string(rune('0'+i)) }

// commitPlain writes one committed txn to a primary's store and log.
func commitPlain(p *datanode.Primary, txn uint64, commitTS ts.Timestamp) {
	p.Store().Put(mvcc.TxnID(txn), []byte("k"), []byte("v"), ts.Max)
	p.Log().Append(redo.Record{Type: redo.TypeHeapUpdate, Txn: txn, Key: []byte("k"), Value: []byte("v")})
	p.Store().MarkPending(mvcc.TxnID(txn))
	p.Log().Append(redo.Record{Type: redo.TypePendingCommit, Txn: txn})
	p.Store().Commit(mvcc.TxnID(txn), commitTS)
	p.Log().Append(redo.Record{Type: redo.TypeCommit, Txn: txn, TS: commitTS})
}

func TestPollOnceComputesMinOfMax(t *testing.T) {
	r := newRig(t)
	// Shard 0 commits at 100, shard 1 at 60.
	commitPlain(r.primaries[0], 1, 100)
	commitPlain(r.primaries[1], 2, 60)
	waitReplay(t, r, 0, 100)
	waitReplay(t, r, 1, 60)
	got := r.col.PollOnce(bg)
	if got != 60 {
		t.Fatalf("RCP = %v, want 60", got)
	}
	// Shard 1 catches up; RCP advances to shard 0's watermark.
	commitPlain(r.primaries[1], 3, 200)
	waitReplay(t, r, 1, 200)
	if got := r.col.PollOnce(bg); got != 100 {
		t.Fatalf("RCP = %v, want 100", got)
	}
}

func TestRCPMonotonicUnderReplicaFailure(t *testing.T) {
	r := newRig(t)
	commitPlain(r.primaries[0], 1, 100)
	commitPlain(r.primaries[1], 2, 100)
	waitReplay(t, r, 0, 100)
	waitReplay(t, r, 1, 100)
	first := r.col.PollOnce(bg)
	if first != 100 {
		t.Fatalf("RCP = %v", first)
	}
	// Both replicas of shard 0 fail: the RCP must hold, not regress.
	for _, rep := range r.replicas {
		if rep.Shard() == 0 {
			rep.SetDown(true)
		}
	}
	if got := r.col.PollOnce(bg); got != first {
		t.Fatalf("RCP moved to %v with shard 0 dark", got)
	}
	st := r.col.Statuses()
	if st[rname(0, 0)].Healthy {
		t.Fatal("failed replica must be marked unhealthy")
	}
}

func TestHeartbeatAdvancesIdleShards(t *testing.T) {
	r := newRig(t)
	// No transactions at all; heartbeats alone must move the RCP.
	if err := r.col.HeartbeatOnce(bg); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := r.col.PollOnce(bg)
		if got >= 1010 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("RCP stuck at %v despite heartbeats", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRunLoopAndTakeover(t *testing.T) {
	r := newRig(t)
	r.col.Start()
	defer r.col.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for r.col.RCP() < 1010 {
		if time.Now().After(deadline) {
			t.Fatalf("collector loop never advanced the RCP past heartbeats: %v", r.col.RCP())
		}
		time.Sleep(2 * time.Millisecond)
	}
	old := r.col.RCP()
	r.col.Stop()

	// A takeover collector on another CN computes at least the old value:
	// replica watermarks are monotonic, so the new RCP can't regress.
	topo := Topology{Primaries: map[int]string{}, Replicas: map[int][]string{}}
	for shard := 0; shard < 2; shard++ {
		topo.Primaries[shard] = pname(shard)
		topo.Replicas[shard] = []string{rname(shard, 0), rname(shard, 1)}
	}
	takeover := NewCollector(DefaultConfig(), datanode.NewClient(r.net, "west"), topo,
		func(context.Context) (ts.Timestamp, error) { return ts.Timestamp(r.hbTS.Add(10)), nil })
	if got := takeover.PollOnce(bg); got < old {
		t.Fatalf("takeover RCP %v regressed below %v", got, old)
	}
}

func waitReplay(t *testing.T, r *rig, shard int, want ts.Timestamp) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, rep := range r.replicas {
			if rep.Shard() == shard && rep.Applier().MaxCommitTS() < want {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d replicas never reached %v", shard, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
