// Package obs is GlobalDB's observability core: a metrics registry whose
// instruments are safe for concurrent use and allocation-free on the hot
// path (atomic counters, gauges, and log-bucketed latency histograms), and
// a lightweight per-query span tracer (trace.go) that attributes a query's
// wall time across parse/plan/bind, per-shard scan RPCs, DN-side execute
// time, and commit fan-out.
//
// Instruments are looked up by name once — at construction of the
// component that updates them — and then updated with plain atomic
// operations, so instrumented hot paths (per-page scan accounting, the
// server's per-statement observations) never touch the registry map or
// allocate. Snapshots are taken by readers (the metrics endpoint, the
// Stats wire frame, tests) concurrently with writers.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (in-flight statements, active
// connections, pool occupancy).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc moves the gauge up by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec moves the gauge down by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of logarithmic latency buckets: bucket i holds
// observations whose nanosecond count has bit length i, i.e. durations in
// [2^(i-1), 2^i) ns. 64 buckets cover every possible time.Duration, from
// sub-nanosecond (bucket 0) to ~292 years.
const histBuckets = 64

// Histogram is a log-bucketed latency histogram. Observe is wait-free and
// allocation-free: one atomic add into the duration's power-of-two bucket
// plus count and sum, so it can sit on per-statement and per-page paths.
// Quantiles are resolved from a Snapshot with at most 2x (one octave)
// resolution error — ample for p50/p95/p99 reporting.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d)) - 1
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[bucketFor(d)].Add(1)
}

// Snapshot returns a point-in-time copy of the histogram. Concurrent
// Observes may land between field reads; the snapshot is still a valid
// histogram (each bucket is internally consistent), which is all
// percentile reporting needs.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time read of a Histogram. Snapshots merge
// associatively and commutatively with Add — the same contract
// stats.ScanSnapshot.Add keeps — so per-server or per-shard snapshots can
// be folded together in any grouping.
type HistSnapshot struct {
	Count    int64
	SumNanos int64
	Buckets  [histBuckets]int64
}

// Add returns the element-wise sum of two snapshots.
func (s HistSnapshot) Add(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + o.Count, SumNanos: s.SumNanos + o.SumNanos}
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] + o.Buckets[i]
	}
	return out
}

// Sub returns the element-wise difference s - o: the histogram of
// observations that landed between snapshot o and snapshot s of the same
// histogram. Benchmarks use it to report interval quantiles on the shared
// Default registry without resetting instruments.
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count - o.Count, SumNanos: s.SumNanos - o.SumNanos}
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] - o.Buckets[i]
	}
	return out
}

// Quantile returns the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket holding the nearest-rank sample. Zero with no samples.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			return time.Duration(uint64(1) << uint(i+1)) // bucket upper bound
		}
	}
	return time.Duration(s.SumNanos) // unreachable unless counts raced; cap at sum
}

// P50 returns the median latency.
func (s HistSnapshot) P50() time.Duration { return s.Quantile(0.50) }

// P95 returns the 95th-percentile latency.
func (s HistSnapshot) P95() time.Duration { return s.Quantile(0.95) }

// P99 returns the 99th-percentile latency.
func (s HistSnapshot) P99() time.Duration { return s.Quantile(0.99) }

// Mean returns the average latency.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}

// Registry is a named collection of instruments. Lookups get-or-create
// under a mutex; holders of the returned instrument update it lock-free.
// Names follow Prometheus conventions and may carry a label set baked into
// the name, e.g. `server_statement_latency_seconds{type="select"}` —
// the registry treats the whole string as the key and the text exposition
// emits it verbatim.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry: cluster-side totals (scan pages,
// rows by layer, commit counts) and client pool gauges land here; the
// metrics endpoint serves it alongside any per-server registry.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Histograms snapshots every histogram in the registry, keyed by name.
func (r *Registry) Histograms() map[string]HistSnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.hists))
	hs := make([]*Histogram, 0, len(r.hists))
	for name, h := range r.hists {
		names = append(names, name)
		hs = append(hs, h)
	}
	r.mu.Unlock()
	out := make(map[string]HistSnapshot, len(names))
	for i, name := range names {
		out[name] = hs[i].Snapshot()
	}
	return out
}

// LabeledName bakes one label into a metric name in Prometheus text form.
func LabeledName(base, label, value string) string {
	return fmt.Sprintf("%s{%s=%q}", base, label, value)
}

// labeledQuantile renders a metric name with an extra quantile label,
// merging into an existing label set when the name already carries one.
func labeledQuantile(name string, q string) string {
	if n := len(name); n > 0 && name[n-1] == '}' {
		return name[:n-1] + `,quantile="` + q + `"}`
	}
	return name + `{quantile="` + q + `"}`
}

// stripLabels returns the metric base name without any baked-in label set.
func stripLabels(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i]
		}
	}
	return name
}

// suffixedName inserts a suffix onto the base name ahead of any baked-in
// label set: `lat{type="q"}` + `_count` → `lat_count{type="q"}`.
func suffixedName(name, suffix string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i] + suffix + name[i:]
		}
	}
	return name + suffix
}

// WriteProm renders the registry in Prometheus text exposition format:
// counters and gauges as single samples, histograms in summary form
// (quantile-labeled samples plus _count and _sum). Output is sorted by
// name so scrapes and tests are deterministic.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	type sample struct {
		name string
		kind string
		c    *Counter
		g    *Gauge
		h    *Histogram
	}
	samples := make([]sample, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		samples = append(samples, sample{name: name, kind: "counter", c: c})
	}
	for name, g := range r.gauges {
		samples = append(samples, sample{name: name, kind: "gauge", g: g})
	}
	for name, h := range r.hists {
		samples = append(samples, sample{name: name, kind: "summary", h: h})
	}
	r.mu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i].name < samples[j].name })

	typed := make(map[string]bool)
	for _, s := range samples {
		base := stripLabels(s.name)
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, s.kind); err != nil {
				return err
			}
		}
		switch {
		case s.c != nil:
			if _, err := fmt.Fprintf(w, "%s %d\n", s.name, s.c.Value()); err != nil {
				return err
			}
		case s.g != nil:
			if _, err := fmt.Fprintf(w, "%s %d\n", s.name, s.g.Value()); err != nil {
				return err
			}
		default:
			snap := s.h.Snapshot()
			for _, q := range []struct {
				label string
				v     time.Duration
			}{{"0.5", snap.P50()}, {"0.95", snap.P95()}, {"0.99", snap.P99()}} {
				if _, err := fmt.Fprintf(w, "%s %g\n", labeledQuantile(s.name, q.label), q.v.Seconds()); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", suffixedName(s.name, "_count"), snap.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %g\n", suffixedName(s.name, "_sum"), time.Duration(snap.SumNanos).Seconds()); err != nil {
				return err
			}
		}
	}
	return nil
}
