package obs

import "net/http"

// MetricsHandler serves the given registries, in order, as one
// Prometheus text exposition document. cmd/globaldb-server mounts it on
// the -metrics listener next to net/http/pprof.
func MetricsHandler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if r == nil {
				continue
			}
			if err := r.WriteProm(w); err != nil {
				return
			}
		}
	})
}
