package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace is a per-query span tree. A Trace is created by the session layer
// when tracing is enabled (EXPLAIN ANALYZE or the shell's \trace toggle)
// and threaded through the executor via context, so lower tiers — the
// coordinator's per-shard scan loops, the 2PC commit path — attach child
// spans without any signature changes. Every method on Trace and Span is
// nil-receiver-safe: when tracing is off the context carries no span,
// SpanFrom returns nil, and instrumented code pays one pointer compare.
type Trace struct {
	root *Span
}

// NewTrace starts a trace with a root span of the given name.
func NewTrace(name string) *Trace {
	return &Trace{root: newSpan(name)}
}

// Root returns the trace's root span, or nil for a nil trace.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Span is one timed region of a query. Spans form a tree under the
// trace root; children may be added concurrently (per-shard scan loops
// run in parallel), so the child list is mutex-guarded.
type Span struct {
	name  string
	tag   string // shard/node/region annotation, e.g. "shard=1 node=dn1@us-east"
	start time.Time
	dur   time.Duration // set by End; 0 while open

	// dnExec accumulates DN-side execute time reported back in
	// ScanPage responses, so the render can split an RPC span into
	// network vs remote-execute time.
	dnExec time.Duration

	mu       sync.Mutex
	children []*Span
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a new child span under s. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Tag annotates the span (shard, node, region). No-op on nil.
func (s *Span) Tag(format string, args ...any) {
	if s == nil {
		return
	}
	s.tag = fmt.Sprintf(format, args...)
}

// AddDNExec accumulates DN-reported execute time onto the span.
func (s *Span) AddDNExec(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.dnExec += d
	s.mu.Unlock()
}

// End closes the span, fixing its duration. No-op on nil; idempotent.
func (s *Span) End() {
	if s == nil || s.dur != 0 {
		return
	}
	s.dur = time.Since(s.start)
}

// Duration returns the span's duration — its final duration once ended,
// or the running elapsed time while still open. Zero on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if s.dur != 0 {
		return s.dur
	}
	return time.Since(s.start)
}

type spanKey struct{}

// WithSpan returns a context carrying sp as the current span. Child
// goroutines (the scan prefetchers inherit their creation context) see
// the same span and attach their RPC child spans to it.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom returns the current span carried by ctx, or nil when tracing
// is off. The nil result is safe to call every Span method on.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Render returns the trace as an indented tree, one line per span, with
// durations, tags, and DN execute attribution. Sibling spans render in
// start order so parallel per-shard spans line up deterministically
// enough to read; durations overlap by design (the shard fan-out is
// concurrent), so children can sum past their parent's wall time.
func (t *Trace) Render() []string {
	if t == nil || t.root == nil {
		return nil
	}
	var lines []string
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		var b strings.Builder
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.name)
		if s.tag != "" {
			b.WriteString(" [")
			b.WriteString(s.tag)
			b.WriteString("]")
		}
		fmt.Fprintf(&b, "  %s", fmtDur(s.Duration()))
		if s.dnExec > 0 {
			fmt.Fprintf(&b, " (dn-exec %s)", fmtDur(s.dnExec))
		}
		lines = append(lines, b.String())
		s.mu.Lock()
		kids := make([]*Span, len(s.children))
		copy(kids, s.children)
		s.mu.Unlock()
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].start.Before(kids[j].start) })
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
	return lines
}

// fmtDur rounds a duration for display so trace trees stay readable.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
