package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBuckets pins the bucket mapping: each observation lands in
// the bucket whose range [2^(i-1), 2^i) ns contains it.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-5, 0},
		{1, 0},
		{2, 1},
		{3, 1},
		{4, 2},
		{time.Microsecond, 9},        // 1000ns, bits.Len64=10
		{time.Millisecond, 19},       // 1e6 ns
		{time.Second, 29},            // 1e9 ns
		{512 * time.Millisecond, 28}, // exactly 2^29 ns? 512e6 < 2^29=536870912 → len=29 → 28
		{time.Hour, 41},              // 3.6e12 ns
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestHistogramQuantiles checks nearest-rank quantiles resolve to the
// upper bound of the correct bucket.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast samples (~1µs), 9 medium (~1ms), 1 slow (~1s).
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)

	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	// p50 falls in the 1µs bucket (index 9, upper bound 2^10 ns).
	if got, want := s.P50(), time.Duration(1<<10); got != want {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	// p95 lands among the 1ms samples (bucket 19, upper bound 2^20 ns).
	if got, want := s.P95(), time.Duration(1<<20); got != want {
		t.Errorf("p95 = %v, want %v", got, want)
	}
	// p99 is rank 99 — still the last 1ms sample.
	if got, want := s.P99(), time.Duration(1<<20); got != want {
		t.Errorf("p99 = %v, want %v", got, want)
	}
	// The max sample pushes quantile 1.0 into the 1s bucket.
	if got, want := s.Quantile(1.0), time.Duration(1<<30); got != want {
		t.Errorf("q100 = %v, want %v", got, want)
	}
	if s.Mean() <= 0 {
		t.Errorf("mean = %v, want > 0", s.Mean())
	}
}

// TestHistSnapshotAddAssociative mirrors the ScanSnapshot.Add contract:
// merging per-source snapshots must be associative and commutative, so
// per-shard or per-server histograms can be folded in any grouping.
func TestHistSnapshotAddAssociative(t *testing.T) {
	mk := func(ds ...time.Duration) HistSnapshot {
		var h Histogram
		for _, d := range ds {
			h.Observe(d)
		}
		return h.Snapshot()
	}
	a := mk(time.Microsecond, 3*time.Microsecond)
	b := mk(time.Millisecond)
	c := mk(50*time.Millisecond, 2*time.Second, 7)

	left := a.Add(b).Add(c)
	right := a.Add(b.Add(c))
	if left != right {
		t.Fatalf("Add not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", left, right)
	}
	if ab, ba := a.Add(b), b.Add(a); ab != ba {
		t.Fatalf("Add not commutative: %+v vs %+v", ab, ba)
	}
	if left.Count != 6 {
		t.Fatalf("merged count = %d, want 6", left.Count)
	}
	var zero HistSnapshot
	if a.Add(zero) != a {
		t.Fatalf("zero snapshot is not the identity")
	}
}

// TestHistogramConcurrent hammers Observe against Snapshot from many
// goroutines; run under -race this proves the histogram needs no lock.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const writers = 8
	const perWriter = 5000
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Concurrent snapshot readers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				var inBuckets int64
				for _, n := range s.Buckets {
					inBuckets += n
				}
				// Bucket totals may run ahead of or behind the count
				// field mid-update, but never go negative.
				if inBuckets < 0 || s.Count < 0 {
					t.Error("negative snapshot")
					return
				}
				_ = s.P99()
			}
		}()
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				h.Observe(time.Duration((seed+1)*(j+1)) * time.Nanosecond)
			}
		}(i)
	}
	// Wait for writers (the first writers goroutines started after the
	// readers); then stop readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Poll until all writes are visible, then stop the readers.
		deadline := time.Now().Add(10 * time.Second)
		for h.count.Load() < writers*perWriter && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	wg.Wait()

	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("final count = %d, want %d", s.Count, writers*perWriter)
	}
	var inBuckets int64
	for _, n := range s.Buckets {
		inBuckets += n
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket total = %d, count = %d", inBuckets, s.Count)
	}
}

// TestRegistryGetOrCreate checks instruments are shared by name and
// registry access is safe under concurrency.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same-name counters not shared")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same-name gauges not shared")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same-name histograms not shared")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(time.Microsecond)
				r.Gauge("inflight").Add(1)
				r.Gauge("inflight").Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 1600 {
		t.Fatalf("shared counter = %d, want 1600", got)
	}
	if got := r.Gauge("inflight").Value(); got != 0 {
		t.Fatalf("inflight gauge = %d, want 0", got)
	}
	snaps := r.Histograms()
	if snaps["lat"].Count != 1600 {
		t.Fatalf("lat histogram count = %d, want 1600", snaps["lat"].Count)
	}
}

// TestWriteProm pins the exposition format: TYPE headers, quantile
// labels (merged into existing label sets), _count/_sum, sorted output.
func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("rows_total").Add(42)
	r.Gauge("inflight").Set(3)
	r.Histogram(LabeledName("stmt_latency_seconds", "type", "select")).Observe(2 * time.Millisecond)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE inflight gauge\n",
		"inflight 3\n",
		"# TYPE rows_total counter\n",
		"rows_total 42\n",
		"# TYPE stmt_latency_seconds summary\n",
		`stmt_latency_seconds{type="select",quantile="0.5"}`,
		`stmt_latency_seconds{type="select",quantile="0.99"}`,
		`stmt_latency_seconds_count{type="select"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSpanNilSafety proves every Span/Trace method is a no-op on nil —
// the property that makes tracing free when disabled.
func TestSpanNilSafety(t *testing.T) {
	var tr *Trace
	var sp *Span
	if tr.Root() != nil {
		t.Fatal("nil trace root")
	}
	if tr.Render() != nil {
		t.Fatal("nil trace render")
	}
	if sp.Child("x") != nil {
		t.Fatal("nil span child")
	}
	sp.Tag("shard=%d", 1)
	sp.AddDNExec(time.Second)
	sp.End()
	if sp.Duration() != 0 {
		t.Fatal("nil span duration")
	}
	ctx := WithSpan(context.Background(), nil)
	if SpanFrom(ctx) != nil {
		t.Fatal("nil span round-tripped through context")
	}
}

// TestTraceTree builds a small span tree (with concurrent children, as
// the shard fan-out does) and checks the rendered shape.
func TestTraceTree(t *testing.T) {
	tr := NewTrace("execute")
	root := tr.Root()
	ctx := WithSpan(context.Background(), root)
	if SpanFrom(ctx) != root {
		t.Fatal("span did not round-trip through context")
	}

	plan := root.Child("plan")
	plan.End()
	var wg sync.WaitGroup
	for shard := 0; shard < 3; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			rpc := SpanFrom(ctx).Child("scan-page")
			rpc.Tag("shard=%d node=dn%d@region-a", shard, shard)
			rpc.AddDNExec(time.Millisecond)
			rpc.End()
		}(shard)
	}
	wg.Wait()
	root.End()

	lines := tr.Render()
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	if !strings.HasPrefix(lines[0], "execute") {
		t.Fatalf("root line = %q", lines[0])
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"  plan", "scan-page [shard=1 node=dn1@region-a]", "dn-exec"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("render missing %q:\n%s", want, joined)
		}
	}
	// Ended spans freeze their duration.
	d := root.Duration()
	time.Sleep(2 * time.Millisecond)
	if root.Duration() != d {
		t.Fatal("ended span duration drifted")
	}
}
