package tso

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"globaldb/internal/clock"
	"globaldb/internal/gtm"
	"globaldb/internal/netsim"
	"globaldb/internal/ts"
)

var bg = context.Background()

// rig wires a GTM server and n oracles over a zero-latency network.
type rig struct {
	net     *netsim.Network
	server  *gtm.Server
	oracles []*Oracle
	stops   []func()
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	r := &rig{net: netsim.New(netsim.Config{}), server: gtm.NewServer()}
	r.net.AddRegion("r")
	gtm.Serve(r.net, "r", r.server)
	for i := 0; i < n; i++ {
		dev := clock.NewDevice("r", clock.Real())
		nc := clock.NewNode(clock.DefaultNodeConfig(), clock.Real(), dev)
		stop := nc.Start()
		r.stops = append(r.stops, stop)
		o := New("cn"+string(rune('0'+i)), nc, gtm.NewClient(r.net, "r"))
		r.oracles = append(r.oracles, o)
	}
	t.Cleanup(func() {
		for _, s := range r.stops {
			s()
		}
	})
	return r
}

func TestGTMModeBeginCommit(t *testing.T) {
	r := newRig(t, 1)
	o := r.oracles[0]
	if o.Mode() != ts.ModeGTM {
		t.Fatal("oracle must start in GTM mode")
	}
	b1, err := o.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	c1, finish, err := o.Commit(bg, b1.Mode)
	if err != nil {
		t.Fatal(err)
	}
	if err := finish(bg); err != nil {
		t.Fatal(err)
	}
	if c1 <= b1.Snap {
		t.Fatalf("commit %v must exceed begin %v", c1, b1.Snap)
	}
	b2, _ := o.Begin(bg)
	if b2.Snap <= c1 {
		t.Fatalf("next begin %v must exceed previous commit %v", b2.Snap, c1)
	}
}

func TestGClockModeLocalTimestamps(t *testing.T) {
	r := newRig(t, 1)
	o := r.oracles[0]
	o.SetMode(ts.ModeGClock)
	b, err := o.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Mode != ts.ModeGClock {
		t.Fatalf("mode = %v", b.Mode)
	}
	// GClock timestamps are epoch-scale.
	if b.Snap < ts.Timestamp(1e15) {
		t.Fatalf("GClock snapshot %v is not epoch time", b.Snap)
	}
	c, finish, err := o.Commit(bg, b.Mode)
	if err != nil {
		t.Fatal(err)
	}
	if c <= b.Snap {
		t.Fatalf("commit %v <= begin %v", c, b.Snap)
	}
	if err := finish(bg); err != nil {
		t.Fatal(err)
	}
	// Commit wait completed: the clock's lower bound has passed c.
	if o.Clock().Now().Lower() <= c {
		t.Fatal("finish returned before the commit wait elapsed")
	}
	// No GTM requests were made.
	if st := r.server.Stats(); st.IssuedGTM != 0 && st.IssuedDual != 0 {
		t.Fatalf("GClock mode must not hit the GTM server: %+v", st)
	}
}

func TestGClockExternalConsistencyAcrossNodes(t *testing.T) {
	// R.1: commit-wait on node A finishes before node B begins => B's
	// snapshot exceeds A's commit timestamp. Run many rounds alternating.
	r := newRig(t, 2)
	a, b := r.oracles[0], r.oracles[1]
	a.SetMode(ts.ModeGClock)
	b.SetMode(ts.ModeGClock)
	for i := 0; i < 50; i++ {
		w, x := a, b
		if i%2 == 1 {
			w, x = b, a
		}
		c, finish, err := w.Commit(bg, ts.ModeGClock)
		if err != nil {
			t.Fatal(err)
		}
		if err := finish(bg); err != nil {
			t.Fatal(err)
		}
		snap, err := x.Begin(bg)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Snap <= c {
			t.Fatalf("round %d: snapshot %v <= prior commit %v (R.1 violated)", i, snap.Snap, c)
		}
	}
}

func TestSnapshotNoWait(t *testing.T) {
	r := newRig(t, 1)
	o := r.oracles[0]
	o.SetMode(ts.ModeGClock)
	s := o.SnapshotNoWait()
	if s.Mode != ts.ModeGClock || s.Snap == 0 {
		t.Fatalf("SnapshotNoWait = %+v", s)
	}
	o.SetMode(ts.ModeGTM)
	s = o.SnapshotNoWait()
	if s.Snap != 0 {
		t.Fatal("centralized modes must signal fallback with a zero snapshot")
	}
}

func TestDualModeWaitsAndMonotonicity(t *testing.T) {
	r := newRig(t, 1)
	o := r.oracles[0]
	r.server.SetMode(ts.ModeDUAL)
	o.SetMode(ts.ModeDUAL)
	var last ts.Timestamp
	for i := 0; i < 10; i++ {
		b, err := o.Begin(bg)
		if err != nil {
			t.Fatal(err)
		}
		if b.Snap <= last {
			t.Fatalf("DUAL timestamps not monotonic: %v after %v", b.Snap, last)
		}
		last = b.Snap
		c, _, err := o.Commit(bg, b.Mode)
		if err != nil {
			t.Fatal(err)
		}
		if c <= b.Snap {
			t.Fatalf("commit %v <= begin %v", c, b.Snap)
		}
		last = c
	}
	if r.server.Stats().IssuedDual != 20 {
		t.Fatalf("server stats: %+v", r.server.Stats())
	}
}

func TestOldGTMTxnAbortsAfterSwitch(t *testing.T) {
	r := newRig(t, 1)
	o := r.oracles[0]
	b, err := o.Begin(bg) // GTM-mode txn
	if err != nil {
		t.Fatal(err)
	}
	// The cluster completes a transition while the txn runs.
	r.server.SetMode(ts.ModeDUAL)
	r.server.SetMode(ts.ModeGClock)
	o.SetMode(ts.ModeGClock)
	_, _, err = o.Commit(bg, b.Mode)
	if !errors.Is(err, gtm.ErrOldModeAborted) {
		t.Fatalf("stale GTM txn commit: %v", err)
	}
}

func TestReportingForwardsCommits(t *testing.T) {
	r := newRig(t, 1)
	o := r.oracles[0]
	o.SetMode(ts.ModeGClock)
	o.SetReporting(true)
	c, finish, err := o.Commit(bg, ts.ModeGClock)
	if err != nil {
		t.Fatal(err)
	}
	finish(bg)
	// The report is async; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for r.server.TSMax() < c {
		if time.Now().After(deadline) {
			t.Fatalf("server TSMax %v never reached commit %v", r.server.TSMax(), c)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestClockStateCoversIssued(t *testing.T) {
	r := newRig(t, 1)
	o := r.oracles[0]
	o.SetMode(ts.ModeGClock)
	c, _, err := o.Commit(bg, ts.ModeGClock)
	if err != nil {
		t.Fatal(err)
	}
	st := o.ClockState()
	if st.Upper() < c {
		t.Fatalf("ClockState upper %v below issued commit %v", st.Upper(), c)
	}
}

func TestGTMFetchPaysNetworkLatency(t *testing.T) {
	// The heart of the baseline's Fig. 1a problem: a remote CN pays the
	// round trip per timestamp in GTM mode and nothing in GClock mode.
	n := netsim.New(netsim.Config{})
	n.SetLink("hub", "edge", 30*time.Millisecond, 0)
	server := gtm.NewServer()
	gtm.Serve(n, "hub", server)
	dev := clock.NewDevice("edge", clock.Real())
	nc := clock.NewNode(clock.DefaultNodeConfig(), clock.Real(), dev)
	stop := nc.Start()
	defer stop()
	o := New("edge-cn", nc, gtm.NewClient(n, "edge"))

	start := time.Now()
	if _, err := o.Begin(bg); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("GTM begin must pay the WAN round trip")
	}

	o.SetMode(ts.ModeGClock)
	start = time.Now()
	if _, err := o.Begin(bg); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 10*time.Millisecond {
		t.Fatalf("GClock begin took %v; must not touch the network", time.Since(start))
	}
}

func TestConcurrentMixedModeClients(t *testing.T) {
	r := newRig(t, 3)
	r.server.SetMode(ts.ModeDUAL)
	r.oracles[0].SetMode(ts.ModeGTM)
	r.oracles[1].SetMode(ts.ModeDUAL)
	r.oracles[2].SetMode(ts.ModeGClock)
	var wg sync.WaitGroup
	for _, o := range r.oracles {
		wg.Add(1)
		go func(o *Oracle) {
			defer wg.Done()
			var prev ts.Timestamp
			for i := 0; i < 30; i++ {
				b, err := o.Begin(bg)
				if err != nil {
					t.Error(err)
					return
				}
				c, finish, err := o.Commit(bg, b.Mode)
				if err != nil {
					t.Error(err)
					return
				}
				if err := finish(bg); err != nil {
					t.Error(err)
					return
				}
				if c <= prev {
					t.Errorf("%s: commit %v after %v not monotonic", o.Name(), c, prev)
					return
				}
				prev = c
			}
		}(o)
	}
	wg.Wait()
}
