// Package tso implements the timestamp oracle each computing node uses to
// begin and commit transactions.
//
// The oracle dispatches on the node's transaction management mode (Sec. III):
//
//	GTM    — fetch a counter timestamp from the central GTM server, paying
//	         a network round trip (the baseline's bottleneck).
//	GClock — read the local synchronized clock: TS = Tclock + Terr, wait at
//	         invocation, commit-wait before acknowledging. No round trip.
//	DUAL   — transition bridge: obtain a clock reading, exchange it with
//	         the GTM server for TS_DUAL = max(TS_GTM, TS_GClock)+1, and
//	         honor the server-prescribed wait (Figs. 2–3).
//
// Timestamps are always fetched under the node's *current* mode. A
// transaction records the mode it began under only to enforce the one abort
// rule of Fig. 2: a transaction that began under GTM and reaches commit
// after the node has completed the switch to GClock must abort — its
// counter-scale snapshot is incompatible with clock-scale commit
// timestamps. Every other combination commits safely: an old DUAL or GClock
// transaction committing on a GTM-mode node simply "gets TS_GTM and
// commits" (Fig. 3), which the server's TSMax floor makes monotonic.
//
// Mode reads and local timestamp issuance happen under one lock, so the
// transition controller's snapshot of ClockState() is guaranteed to cover
// every timestamp this node issued before it switched modes — the property
// that lets the GTM floor be computed without quiescing the cluster.
package tso

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"globaldb/internal/clock"
	"globaldb/internal/gtm"
	"globaldb/internal/ts"
)

// TxnTS is the timestamp state a transaction carries from begin.
type TxnTS struct {
	// Snap is the snapshot (invocation) timestamp.
	Snap ts.Timestamp
	// Mode is the management mode the transaction began under.
	Mode ts.Mode
}

// Oracle issues timestamps on one computing node.
type Oracle struct {
	name  string
	clock *clock.Node
	gtm   *gtm.Client

	mu        sync.Mutex
	mode      ts.Mode
	maxIssued ts.Timestamp // largest local GClock timestamp issued here

	reporting atomic.Bool // also forward GClock commits to the GTM server

	sleep func(ctx context.Context, d time.Duration) error
}

// New returns an oracle in GTM mode.
func New(name string, clk *clock.Node, client *gtm.Client) *Oracle {
	return &Oracle{name: name, clock: clk, gtm: client, mode: ts.ModeGTM, sleep: sleepCtx}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Name identifies the oracle's node.
func (o *Oracle) Name() string { return o.name }

// Mode returns the node's current transaction management mode.
func (o *Oracle) Mode() ts.Mode {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.mode
}

// SetMode switches the node's mode for subsequently issued timestamps.
func (o *Oracle) SetMode(m ts.Mode) {
	o.mu.Lock()
	o.mode = m
	o.mu.Unlock()
}

// SetReporting enables forwarding GClock commit timestamps to the GTM
// server (Fig. 3's "Send TS_GClock, Terr — no response needed"). The floor
// guarantee does not depend on it — ClockState() snapshots cover every
// issued timestamp — but it mirrors the paper's wire protocol and gives the
// server earlier visibility during GClock→GTM transitions.
func (o *Oracle) SetReporting(on bool) { o.reporting.Store(on) }

// ClockState returns the node's largest issued GClock timestamp merged with
// its current clock reading and error bound. Because issuance happens under
// the same lock as mode switches, a ClockState taken after SetMode covers
// every timestamp issued under the previous mode.
func (o *Oracle) ClockState() ts.Interval {
	iv := o.clock.Now()
	o.mu.Lock()
	if o.maxIssued > iv.Clock {
		iv.Clock = o.maxIssued
	}
	o.mu.Unlock()
	return iv
}

// Clock exposes the node clock (health checks, commit waits in tests).
func (o *Oracle) Clock() *clock.Node { return o.clock }

// issueLocal atomically reads the mode and, if it is GClock, issues a local
// timestamp. ok is false when the mode is not GClock.
func (o *Oracle) issueLocal() (t ts.Timestamp, errBound time.Duration, mode ts.Mode, ok bool) {
	iv := o.clock.Now()
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.mode != ts.ModeGClock {
		return 0, 0, o.mode, false
	}
	t = iv.Upper()
	if t > o.maxIssued {
		o.maxIssued = t
	}
	return t, iv.Err, ts.ModeGClock, true
}

// Begin obtains an invocation timestamp under the node's current mode,
// performing the mode's invocation wait.
func (o *Oracle) Begin(ctx context.Context) (TxnTS, error) {
	if t, _, _, ok := o.issueLocal(); ok {
		// "Invocation: wait until Tclock > TS_GClock and begin" — by the
		// time work starts, true time has passed the snapshot, making
		// concurrent writers' eventual commit timestamps exceed it.
		if err := o.clock.WaitUntilAfter(ctx, t); err != nil {
			return TxnTS{}, err
		}
		return TxnTS{Snap: t, Mode: ts.ModeGClock}, nil
	}
	mode := o.Mode()
	resp, err := o.callGTM(ctx, mode)
	if err != nil {
		return TxnTS{}, err
	}
	return TxnTS{Snap: resp.TS, Mode: mode}, nil
}

// SnapshotNoWait returns a read snapshot without the invocation wait or any
// network round trip. Callers must pair it with a data-node-local freshness
// floor (the "single shard queries bypass this wait by using the node's last
// committed transaction timestamp" fast path of Sec. III).
func (o *Oracle) SnapshotNoWait() TxnTS {
	if t, _, _, ok := o.issueLocal(); ok {
		return TxnTS{Snap: t, Mode: ts.ModeGClock}
	}
	// Centralized modes have no local clock notion; the caller falls back
	// to Begin.
	return TxnTS{Mode: o.Mode()}
}

// Commit obtains a commit timestamp for a transaction begun under
// beginMode, fetching under the node's *current* mode. The returned finish
// function performs the commit wait and must run after the commit has
// applied, before acknowledging the client.
//
// It returns gtm.ErrOldModeAborted when a GTM-mode transaction reaches
// commit after the node has switched to GClock (Fig. 2's abort rule).
func (o *Oracle) Commit(ctx context.Context, beginMode ts.Mode) (ts.Timestamp, func(context.Context) error, error) {
	if t, errBound, _, ok := o.issueLocal(); ok {
		if beginMode == ts.ModeGTM {
			return 0, nil, gtm.ErrOldModeAborted
		}
		if o.reporting.Load() {
			// One-way advisory report; never blocks the commit path.
			go func() {
				rctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				_ = o.gtm.Report(rctx, ts.Interval{Clock: t, Err: errBound})
			}()
		}
		finish := func(fctx context.Context) error { return o.clock.WaitUntilAfter(fctx, t) }
		return t, finish, nil
	}
	// Centralized path: GTM-begun transactions identify themselves so a
	// DUAL-mode server applies the Listing 1 wait and a GClock-mode server
	// aborts them; DUAL/GClock-begun transactions request DUAL timestamps.
	reqMode := beginMode
	if reqMode != ts.ModeGTM {
		reqMode = ts.ModeDUAL
	}
	resp, err := o.callGTM(ctx, reqMode)
	if err != nil {
		return 0, nil, err
	}
	return resp.TS, func(context.Context) error { return nil }, nil
}

// callGTM performs a timestamp fetch for GTM or DUAL mode, honoring the
// server-prescribed anomaly-avoidance wait before returning.
func (o *Oracle) callGTM(ctx context.Context, mode ts.Mode) (gtm.Response, error) {
	req := gtm.Request{Mode: mode}
	if mode == ts.ModeDUAL {
		req.GClock = o.clock.Now()
	}
	resp, err := o.gtm.Call(ctx, req)
	if err != nil {
		return gtm.Response{}, err
	}
	if resp.Wait > 0 {
		if err := o.sleep(ctx, resp.Wait); err != nil {
			return gtm.Response{}, err
		}
	}
	return resp, nil
}
