package experiments

import (
	"context"
	"testing"
	"time"
)

var bg = context.Background()

// tiny returns the smallest parameter set that still exercises every code
// path; used to smoke-test each figure's pipeline.
func tiny() Params {
	p := Quick()
	p.Clients = 8
	p.Duration = 300 * time.Millisecond
	p.Warmup = 100 * time.Millisecond
	p.RTTs = []time.Duration{0, 80 * time.Millisecond}
	p.TPCC.Warehouses = 3
	p.TPCC.Districts = 2
	p.TPCC.CustomersPerDistrict = 8
	p.TPCC.Items = 15
	p.TPCC.InitialOrdersPerDistrict = 4
	p.Sysbench.Tables = 2
	p.Sysbench.RowsPerTable = 60
	p.Shards = 3
	return p
}

func TestFig1aShape(t *testing.T) {
	s, err := Fig1a(bg, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 2 {
		t.Fatalf("results = %d", len(s.Results))
	}
	lowRTT, highRTT := s.Results[0], s.Results[1]
	if lowRTT.Ops == 0 || highRTT.Ops == 0 {
		t.Fatalf("empty measurements: %+v %+v", lowRTT, highRTT)
	}
	// The baseline must degrade with latency (Fig. 1a's whole point).
	if highRTT.Throughput >= lowRTT.Throughput {
		t.Fatalf("baseline did not degrade: %0.f -> %0.f tx/s", lowRTT.Throughput, highRTT.Throughput)
	}
}

func TestFig6bShape(t *testing.T) {
	series, err := Fig6b(bg, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	base, gdb := series[0], series[1]
	// At the highest RTT, GlobalDB must beat the baseline decisively: the
	// baseline pays two GTM round trips per transaction.
	bHigh := base.Results[len(base.Results)-1].Throughput
	gHigh := gdb.Results[len(gdb.Results)-1].Throughput
	if gHigh <= bHigh {
		t.Fatalf("GClock (%.0f tx/s) must beat the baseline (%.0f tx/s) at high RTT", gHigh, bHigh)
	}
}

func TestFig6cShape(t *testing.T) {
	series, err := Fig6c(bg, tiny())
	if err != nil {
		t.Fatal(err)
	}
	base, gdb := series[0], series[1]
	bHigh := base.Results[len(base.Results)-1].Throughput
	gHigh := gdb.Results[len(gdb.Results)-1].Throughput
	if gHigh <= bHigh {
		t.Fatalf("ROR (%.0f q/s) must beat primary reads (%.0f q/s) at high RTT", gHigh, bHigh)
	}
}

func TestFig6dShape(t *testing.T) {
	series, err := Fig6d(bg, tiny())
	if err != nil {
		t.Fatal(err)
	}
	base, gdb := series[0], series[1]
	bHigh := base.Results[len(base.Results)-1].Throughput
	gHigh := gdb.Results[len(gdb.Results)-1].Throughput
	if gHigh <= bHigh {
		t.Fatalf("ROR point select (%.0f q/s) must beat baseline (%.0f q/s)", gHigh, bHigh)
	}
}

func TestFig6aRuns(t *testing.T) {
	p := tiny()
	s, err := Fig6a(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 4 {
		t.Fatalf("results = %d", len(s.Results))
	}
	for _, r := range s.Results {
		if r.Ops == 0 {
			t.Fatalf("empty measurement: %+v", r)
		}
	}
}

func TestTransitionTimelineNoDowntime(t *testing.T) {
	p := tiny()
	p.Clients = 6
	counts, err := TransitionTimeline(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	for w, c := range counts {
		if c == 0 {
			t.Fatalf("window %d committed nothing: downtime during transition (%v)", w, counts)
		}
	}
}
