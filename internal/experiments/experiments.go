// Package experiments defines one runnable experiment per table/figure in
// the paper's evaluation (Sec. V, Figs. 1a and 6a–6d), plus the transition
// timeline the paper demonstrates qualitatively. Each experiment builds the
// matching cluster(s), loads the workload, drives terminals through the
// harness, and returns paper-style series.
//
// "Baseline" is GaussDB as described in Sec. II: centralized GTM
// timestamps, primary-only reads, uncompressed buffered log shipping.
// "GlobalDB" enables the paper's contributions: GClock timestamps, ROR
// with RCP snapshots, and compressed aggressive shipping.
package experiments

import (
	"context"
	"fmt"
	"time"

	"globaldb"
	"globaldb/internal/coordinator"
	"globaldb/internal/harness"
	"globaldb/internal/repl"
	"globaldb/internal/ts"
	"globaldb/internal/workload/sysbench"
	"globaldb/internal/workload/tpcc"
)

// Params scales an experiment run.
type Params struct {
	// TimeScale shrinks simulated WAN delays.
	TimeScale float64
	// Clients is the number of terminals.
	Clients int
	// Duration is the measured window per data point.
	Duration time.Duration
	// Warmup precedes each measurement.
	Warmup time.Duration
	// RTTs is the latency sweep for Figs. 1a, 6b, 6c, 6d.
	RTTs []time.Duration
	// TPCC scales the TPC-C schema.
	TPCC tpcc.Config
	// Sysbench scales the Sysbench schema.
	Sysbench sysbench.Config
	// Shards is the shard count (the paper uses 6 DNs).
	Shards int
	// Bandwidth caps inter-region links (bytes/sec, pre-scale); gives the
	// shipping optimizations something to win. 0 = unlimited.
	Bandwidth float64
}

// Quick returns parameters sized for CI and go test -bench: a full figure
// regenerates in a few seconds.
func Quick() Params {
	tc := tpcc.DefaultConfig()
	return Params{
		// The scale must keep WAN latency dominant over in-process
		// transaction work, or the latency sweep flattens artificially.
		TimeScale: 0.2,
		Clients:   24,
		Duration:  500 * time.Millisecond,
		Warmup:    200 * time.Millisecond,
		RTTs:      []time.Duration{0, 50 * time.Millisecond, 100 * time.Millisecond},
		TPCC:      tc,
		Sysbench:  sysbench.Config{Tables: 4, RowsPerTable: 120, Seed: 1},
		Shards:    6,
		Bandwidth: 4e6,
	}
}

// Full returns parameters for the standalone benchmark binary: longer
// windows and the paper's full RTT sweep.
func Full() Params {
	p := Quick()
	p.Clients = 64
	p.Duration = 2 * time.Second
	p.Warmup = 500 * time.Millisecond
	p.RTTs = []time.Duration{0, 20 * time.Millisecond, 40 * time.Millisecond,
		60 * time.Millisecond, 80 * time.Millisecond, 100 * time.Millisecond}
	p.TPCC.Warehouses = 8
	p.TPCC.Districts = 4
	p.TPCC.CustomersPerDistrict = 30
	p.TPCC.Items = 60
	return p
}

// system describes one configuration under test.
type system struct {
	name    string
	mode    ts.Mode
	shipper repl.ShipperConfig
	useROR  bool
}

func baselineSystem() system {
	return system{name: "baseline", mode: ts.ModeGTM, shipper: repl.BaselineShipperConfig(), useROR: false}
}

func globaldbSystem() system {
	return system{name: "globaldb", mode: ts.ModeGClock, shipper: repl.DefaultShipperConfig(), useROR: true}
}

// openTPCC builds a cluster for a system at a topology and loads TPC-C.
func openTPCC(ctx context.Context, cfg globaldb.Config, sys system, p Params) (*globaldb.DB, *tpcc.Driver, error) {
	cfg.TimeScale = p.TimeScale
	cfg.Shards = p.Shards
	cfg.Mode = sys.mode
	cfg.Shipper = sys.shipper
	db, err := globaldb.Open(cfg)
	if err != nil {
		return nil, nil, err
	}
	d := tpcc.New(db, p.TPCC)
	if err := d.CreateTables(ctx); err != nil {
		db.Close()
		return nil, nil, err
	}
	if err := d.Load(ctx); err != nil {
		db.Close()
		return nil, nil, err
	}
	return db, d, nil
}

// oneRegion returns the One-Region topology with injected RTT and the
// experiment's bandwidth cap.
func oneRegion(p Params, rtt time.Duration) globaldb.Config {
	cfg := globaldb.OneRegion(rtt)
	for i := range cfg.Links {
		cfg.Links[i].Bandwidth = p.Bandwidth
	}
	return cfg
}

func threeCity(p Params) globaldb.Config {
	cfg := globaldb.ThreeCity()
	for i := range cfg.Links {
		cfg.Links[i].Bandwidth = p.Bandwidth
	}
	return cfg
}

// Fig1a reproduces Fig. 1a: baseline TPC-C throughput degrading as the
// cluster spans higher round-trip latencies (centralized GTM, async
// replication, 100% local transactions).
func Fig1a(ctx context.Context, p Params) (harness.Series, error) {
	s := harness.Series{Label: "Fig 1a: TPC-C degradation vs RTT (baseline, centralized GTM)"}
	for _, rtt := range p.RTTs {
		res, err := runTPCCPoint(ctx, p, oneRegion(p, rtt), baselineSystem(), fmt.Sprintf("rtt=%v", rtt), true)
		if err != nil {
			return s, err
		}
		s.Results = append(s.Results, res)
	}
	return s, nil
}

// runTPCCPoint measures one TPC-C data point. When remoteFromGTM is true,
// terminals bind only to warehouses whose region differs from the GTM
// server's — the paper's "throughput of a node that is not co-located with
// the GTM server" (Sec. V-A).
func runTPCCPoint(ctx context.Context, p Params, cfg globaldb.Config, sys system, name string, remoteFromGTM bool) (harness.Result, error) {
	db, d, err := openTPCC(ctx, cfg, sys, p)
	if err != nil {
		return harness.Result{}, err
	}
	defer db.Close()
	homes := make([]int64, 0, p.TPCC.Warehouses)
	if remoteFromGTM {
		homes = d.WarehousesOutsideRegion(cfg.GTMRegion)
	}
	if len(homes) == 0 {
		for w := int64(1); w <= int64(p.TPCC.Warehouses); w++ {
			homes = append(homes, w)
		}
	}
	res := harness.Run(ctx, harness.Options{Name: name, Clients: p.Clients, Duration: p.Duration, Warmup: p.Warmup},
		func(ctx context.Context, client int) error {
			return d.TerminalAt(client, homes[client%len(homes)])(ctx)
		})
	return res, nil
}

// Fig6a reproduces Fig. 6a: TPC-C under synchronous replication, One-Region
// versus Three-City, baseline versus GlobalDB. Sync commits wait for every
// replica (the quorum that survives a regional disaster).
func Fig6a(ctx context.Context, p Params) (harness.Series, error) {
	s := harness.Series{Label: "Fig 6a: TPC-C synchronous replication"}
	for _, topo := range []struct {
		name string
		cfg  globaldb.Config
	}{
		{"one-region", oneRegion(p, 500*time.Microsecond)},
		{"three-city", threeCity(p)},
	} {
		for _, sys := range []system{baselineSystem(), globaldbSystem()} {
			cfg := topo.cfg
			cfg.ReplMode = repl.SyncQuorum
			cfg.Quorum = cfg.ReplicasPerShard
			res, err := runTPCCPoint(ctx, p, cfg, sys, fmt.Sprintf("%s/%s", topo.name, sys.name), false)
			if err != nil {
				return s, err
			}
			s.Results = append(s.Results, res)
		}
	}
	return s, nil
}

// Fig6b reproduces Fig. 6b: TPC-C with asynchronous replication across the
// RTT sweep — the baseline collapses as every begin/commit pays the GTM
// round trip; GlobalDB stays flat on local clocks.
func Fig6b(ctx context.Context, p Params) ([]harness.Series, error) {
	var out []harness.Series
	for _, sys := range []system{baselineSystem(), globaldbSystem()} {
		s := harness.Series{Label: fmt.Sprintf("Fig 6b: TPC-C async vs RTT (%s)", sys.name)}
		for _, rtt := range p.RTTs {
			res, err := runTPCCPoint(ctx, p, oneRegion(p, rtt), sys, fmt.Sprintf("rtt=%v", rtt), true)
			if err != nil {
				return out, err
			}
			s.Results = append(s.Results, res)
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig6c reproduces Fig. 6c: the modified read-only TPC-C (Order-Status +
// Stock-Level, 50% multi-shard). The baseline reads primaries with GTM
// snapshots; GlobalDB reads local replicas at the RCP.
func Fig6c(ctx context.Context, p Params) ([]harness.Series, error) {
	var out []harness.Series
	for _, sys := range []system{baselineSystem(), globaldbSystem()} {
		s := harness.Series{Label: fmt.Sprintf("Fig 6c: TPC-C read-only vs RTT (%s)", sys.name)}
		for _, rtt := range p.RTTs {
			res, err := runTPCCReadOnlyPoint(ctx, p, oneRegion(p, rtt), sys, fmt.Sprintf("rtt=%v", rtt))
			if err != nil {
				return out, err
			}
			s.Results = append(s.Results, res)
		}
		out = append(out, s)
	}
	return out, nil
}

func runTPCCReadOnlyPoint(ctx context.Context, p Params, cfg globaldb.Config, sys system, name string) (harness.Result, error) {
	db, d, err := openTPCC(ctx, cfg, sys, p)
	if err != nil {
		return harness.Result{}, err
	}
	defer db.Close()
	if sys.useROR {
		if err := waitRCPCoversLoad(ctx, db); err != nil {
			return harness.Result{}, err
		}
	}
	res := harness.Run(ctx, harness.Options{Name: name, Clients: p.Clients, Duration: p.Duration, Warmup: p.Warmup},
		func(ctx context.Context, client int) error {
			return d.ReadOnlyTerminal(client, 50, sys.useROR, coordinator.AnyStaleness)(ctx)
		})
	return res, nil
}

// waitRCPCoversLoad stamps a marker transaction and waits for the RCP to
// reach it, so replica reads see the loaded data.
func waitRCPCoversLoad(ctx context.Context, db *globaldb.DB) error {
	sess, err := db.Connect(db.Regions()[0])
	if err != nil {
		return err
	}
	marker, err := sess.Begin(ctx)
	if err != nil {
		return err
	}
	if err := marker.Commit(ctx); err != nil {
		return err
	}
	deadline := time.Now().Add(30 * time.Second)
	for db.Cluster().Collector.RCP() < marker.Snapshot() {
		if time.Now().After(deadline) {
			return fmt.Errorf("experiments: RCP never covered the load (rcp=%v, want %v)",
				db.Cluster().Collector.RCP(), marker.Snapshot())
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
	return nil
}

// Fig6d reproduces Fig. 6d: Sysbench point select with 2/3 of tuples
// fetched from remote nodes. GlobalDB serves them from local replicas.
func Fig6d(ctx context.Context, p Params) ([]harness.Series, error) {
	var out []harness.Series
	for _, sys := range []system{baselineSystem(), globaldbSystem()} {
		s := harness.Series{Label: fmt.Sprintf("Fig 6d: Sysbench point select vs RTT (%s)", sys.name)}
		for _, rtt := range p.RTTs {
			res, err := runSysbenchPoint(ctx, p, oneRegion(p, rtt), sys, fmt.Sprintf("rtt=%v", rtt))
			if err != nil {
				return out, err
			}
			s.Results = append(s.Results, res)
		}
		out = append(out, s)
	}
	return out, nil
}

func runSysbenchPoint(ctx context.Context, p Params, cfg globaldb.Config, sys system, name string) (harness.Result, error) {
	cfg.TimeScale = p.TimeScale
	cfg.Shards = p.Shards
	cfg.Mode = sys.mode
	cfg.Shipper = sys.shipper
	db, err := globaldb.Open(cfg)
	if err != nil {
		return harness.Result{}, err
	}
	defer db.Close()
	d := sysbench.New(db, p.Sysbench)
	if err := d.CreateTables(ctx); err != nil {
		return harness.Result{}, err
	}
	if err := d.Load(ctx); err != nil {
		return harness.Result{}, err
	}
	if sys.useROR {
		if err := waitRCPCoversLoad(ctx, db); err != nil {
			return harness.Result{}, err
		}
	}
	regions := db.Regions()
	res := harness.Run(ctx, harness.Options{Name: name, Clients: p.Clients, Duration: p.Duration, Warmup: p.Warmup},
		func(ctx context.Context, client int) error {
			region := regions[client%len(regions)]
			return d.PointSelect(client, region, 67, sys.useROR, coordinator.AnyStaleness)(ctx)
		})
	return res, nil
}

// TransitionTimeline demonstrates the zero-downtime claim of Sec. III-A: it
// drives TPC-C while the cluster migrates GTM→GClock→GTM and samples
// throughput in windows. It returns per-window committed transaction
// counts; a window of zero would mean downtime.
func TransitionTimeline(ctx context.Context, p Params) ([]int64, error) {
	db, d, err := openTPCC(ctx, threeCity(p), baselineSystem(), p)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	const windows = 12
	window := p.Duration / 2
	counts := make([]int64, windows)
	done := make(chan struct{})
	var running = true

	go func() {
		defer close(done)
		// Transition forward after a quarter of the run, back after three
		// quarters.
		time.Sleep(time.Duration(windows/4) * window)
		db.TransitionToGClock(ctx)
		time.Sleep(time.Duration(windows/2) * window)
		db.TransitionToGTM(ctx)
	}()

	var total int64
	for w := 0; w < windows && running; w++ {
		res := harness.Run(ctx, harness.Options{Name: fmt.Sprintf("window-%d", w), Clients: p.Clients, Duration: window},
			func(ctx context.Context, client int) error {
				return d.Terminal(client)(ctx)
			})
		counts[w] = res.Ops
		total += res.Ops
	}
	<-done
	if total == 0 {
		return counts, fmt.Errorf("experiments: no transactions committed during the transition run")
	}
	return counts, nil
}
