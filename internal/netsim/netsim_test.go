package netsim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

var bg = context.Background()

func threeCity(scale float64) *Network {
	// The paper's Three-City triangle: 25/35/55 ms RTT edges.
	n := New(Config{TimeScale: scale})
	n.SetLink("xian", "langzhong", 25*time.Millisecond, 0)
	n.SetLink("langzhong", "dongguan", 35*time.Millisecond, 0)
	n.SetLink("xian", "dongguan", 55*time.Millisecond, 0)
	return n
}

func TestOneWayLatency(t *testing.T) {
	n := threeCity(1.0)
	d, err := n.OneWay("xian", "langzhong", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 12500*time.Microsecond {
		t.Fatalf("one-way = %v, want 12.5ms", d)
	}
	// Symmetric.
	d2, _ := n.OneWay("langzhong", "xian", 0)
	if d2 != d {
		t.Fatalf("asymmetric link: %v vs %v", d, d2)
	}
}

func TestIntraRegionIsFree(t *testing.T) {
	n := threeCity(1.0)
	d, err := n.OneWay("xian", "xian", 1<<20)
	if err != nil || d != 0 {
		t.Fatalf("intra-region: %v, %v", d, err)
	}
}

func TestTimeScale(t *testing.T) {
	n := threeCity(0.1)
	d, _ := n.OneWay("xian", "dongguan", 0)
	if d != 2750*time.Microsecond {
		t.Fatalf("scaled one-way = %v, want 2.75ms", d)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	n := New(Config{})
	n.SetLink("a", "b", 10*time.Millisecond, 1e6) // 1 MB/s
	d, _ := n.OneWay("a", "b", 100_000)           // 100 KB -> +100ms
	if d < 100*time.Millisecond || d > 110*time.Millisecond {
		t.Fatalf("serialization delay = %v", d)
	}
}

func TestJitterBounded(t *testing.T) {
	n := New(Config{JitterFrac: 0.2, Seed: 7})
	n.SetLink("a", "b", 100*time.Millisecond, 0)
	for i := 0; i < 100; i++ {
		d, _ := n.OneWay("a", "b", 0)
		if d < 40*time.Millisecond || d > 60*time.Millisecond {
			t.Fatalf("jittered one-way %v outside ±20%% of 50ms", d)
		}
	}
}

func TestNoRoute(t *testing.T) {
	n := threeCity(1.0)
	if _, err := n.OneWay("xian", "mars", 0); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("unknown region: %v", err)
	}
}

func TestPartition(t *testing.T) {
	n := threeCity(1.0)
	n.SetPartitioned("xian", "dongguan", true)
	if _, err := n.OneWay("xian", "dongguan", 0); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned link: %v", err)
	}
	// Other links stay up.
	if _, err := n.OneWay("xian", "langzhong", 0); err != nil {
		t.Fatal(err)
	}
	n.SetPartitioned("xian", "dongguan", false)
	if _, err := n.OneWay("xian", "dongguan", 0); err != nil {
		t.Fatal(err)
	}
}

func TestCallRoundTrip(t *testing.T) {
	n := New(Config{})
	n.SetLink("a", "b", 20*time.Millisecond, 0)
	n.Register("echo", "b", func(_ context.Context, req Message) (Message, error) {
		return Message{Payload: req.Payload, Size: 8}, nil
	})
	start := time.Now()
	resp, err := n.Call(bg, "a", "echo", Message{Payload: "hi", Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Payload != "hi" {
		t.Fatalf("payload = %v", resp.Payload)
	}
	if e := time.Since(start); e < 20*time.Millisecond {
		t.Fatalf("call returned in %v, must pay one RTT", e)
	}
}

func TestCallLocalIsFast(t *testing.T) {
	n := New(Config{})
	n.AddRegion("a")
	n.Register("svc", "a", func(_ context.Context, req Message) (Message, error) {
		return Message{}, nil
	})
	start := time.Now()
	if _, err := n.Call(bg, "a", "svc", Message{}); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > 5*time.Millisecond {
		t.Fatalf("local call took %v", e)
	}
}

func TestCallEndpointDown(t *testing.T) {
	n := New(Config{})
	n.AddRegion("a")
	ep := n.Register("svc", "a", func(_ context.Context, req Message) (Message, error) {
		return Message{}, nil
	})
	ep.SetDown(true)
	if _, err := n.Call(bg, "a", "svc", Message{}); !errors.Is(err, ErrEndpointDown) {
		t.Fatalf("down endpoint: %v", err)
	}
	ep.SetDown(false)
	if _, err := n.Call(bg, "a", "svc", Message{}); err != nil {
		t.Fatal(err)
	}
}

func TestCallUnknownEndpoint(t *testing.T) {
	n := New(Config{})
	n.AddRegion("a")
	if _, err := n.Call(bg, "a", "nope", Message{}); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("unknown endpoint: %v", err)
	}
}

func TestCallContextCancelDuringDelay(t *testing.T) {
	n := New(Config{})
	n.SetLink("a", "b", time.Second, 0)
	n.Register("slow", "b", func(_ context.Context, req Message) (Message, error) {
		return Message{}, nil
	})
	ctx, cancel := context.WithTimeout(bg, 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.Call(ctx, "a", "slow", Message{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("cancellation did not interrupt the simulated delay")
	}
}

func TestStreamFIFO(t *testing.T) {
	n := New(Config{})
	n.SetLink("a", "b", 5*time.Millisecond, 0)
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	s := n.NewStream("a", "b", func(p any) {
		mu.Lock()
		got = append(got, p.(int))
		n := len(got)
		mu.Unlock()
		if n == 50 {
			close(done)
		}
	})
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Send(i, 100)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream stalled")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestStreamSurvivesPartition(t *testing.T) {
	n := New(Config{TimeScale: 0.2})
	n.SetLink("a", "b", 5*time.Millisecond, 0)
	var mu sync.Mutex
	count := 0
	s := n.NewStream("a", "b", func(p any) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	defer s.Close()
	n.SetPartitioned("a", "b", true)
	for i := 0; i < 10; i++ {
		s.Send(i, 10)
	}
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	if count != 0 {
		mu.Unlock()
		t.Fatal("messages delivered across a partition")
	}
	mu.Unlock()
	n.SetPartitioned("a", "b", false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/10 delivered after heal", c)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStreamCloseDropsQueue(t *testing.T) {
	n := New(Config{})
	n.SetLink("a", "b", 50*time.Millisecond, 0)
	s := n.NewStream("a", "b", func(any) {})
	for i := 0; i < 5; i++ {
		s.Send(i, 0)
	}
	s.Close()
	s.Send(99, 0) // must be a no-op, not a panic
}

func TestRegionsList(t *testing.T) {
	n := threeCity(1)
	if got := len(n.Regions()); got != 3 {
		t.Fatalf("regions = %d", got)
	}
}
