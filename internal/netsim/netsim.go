// Package netsim simulates the wide-area network between GlobalDB regions.
//
// The paper evaluates two clusters: one region with tc-injected latency, and
// three cities (Xi'an, Langzhong, Dongguan) forming a 25/35/55 ms RTT
// triangle. This package reproduces both: a Network holds regions and
// per-pair one-way latency and bandwidth, and everything that crosses a
// region boundary — CN↔GTM timestamp fetches, CN↔DN reads and writes,
// primary→replica redo shipping — pays the simulated cost with real
// (optionally scaled) sleeps.
//
// A global time-scale factor shrinks every delay proportionally so a 100 ms
// RTT sweep finishes in seconds while preserving the relative shape of the
// results.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Errors.
var (
	// ErrPartitioned means the two regions are currently partitioned.
	ErrPartitioned = errors.New("netsim: network partition")
	// ErrNoRoute means one of the regions is unknown.
	ErrNoRoute = errors.New("netsim: no route between regions")
)

type pair struct{ a, b string }

func normPair(a, b string) pair {
	if a > b {
		a, b = b, a
	}
	return pair{a, b}
}

// Config describes a network.
type Config struct {
	// TimeScale multiplies every simulated delay. 1.0 is real time; 0.1
	// makes a nominal 100 ms round trip cost 10 ms of wall time. Zero
	// defaults to 1.0.
	TimeScale float64
	// JitterFrac adds uniform random jitter of ±JitterFrac × latency.
	JitterFrac float64
	// Seed seeds the jitter source. Zero uses a fixed default, keeping
	// simulations reproducible.
	Seed int64
}

// Network is a set of regions and the links between them.
type Network struct {
	cfg Config

	mu          sync.RWMutex
	regions     map[string]bool
	latency     map[pair]time.Duration // one-way
	bandwidth   map[pair]float64       // bytes/sec, 0 = unlimited
	partitioned map[pair]bool
	eps         map[string]*Endpoint

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New creates an empty network.
func New(cfg Config) *Network {
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1.0
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 20240101
	}
	return &Network{
		cfg:         cfg,
		regions:     make(map[string]bool),
		latency:     make(map[pair]time.Duration),
		bandwidth:   make(map[pair]float64),
		partitioned: make(map[pair]bool),
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// AddRegion registers a region. Links inside a region default to zero
// latency until SetLink overrides them.
func (n *Network) AddRegion(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.regions[name] = true
}

// Regions returns the registered region names.
func (n *Network) Regions() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.regions))
	for r := range n.regions {
		out = append(out, r)
	}
	return out
}

// SetLink sets the round-trip latency and bandwidth between two regions.
// Latency is stored as one-way (rtt/2). bandwidthBytesPerSec 0 means
// unlimited.
func (n *Network) SetLink(a, b string, rtt time.Duration, bandwidthBytesPerSec float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.regions[a] = true
	n.regions[b] = true
	p := normPair(a, b)
	n.latency[p] = rtt / 2
	n.bandwidth[p] = bandwidthBytesPerSec
}

// SetPartitioned opens or heals a partition between two regions.
func (n *Network) SetPartitioned(a, b string, partitioned bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[normPair(a, b)] = partitioned
}

// OneWay returns the simulated one-way delay for a message of size bytes
// from region a to region b, including jitter and time scaling.
func (n *Network) OneWay(a, b string, size int) (time.Duration, error) {
	n.mu.RLock()
	if !n.regions[a] || !n.regions[b] {
		n.mu.RUnlock()
		return 0, fmt.Errorf("%w: %s->%s", ErrNoRoute, a, b)
	}
	p := normPair(a, b)
	if n.partitioned[p] {
		n.mu.RUnlock()
		return 0, fmt.Errorf("%w: %s->%s", ErrPartitioned, a, b)
	}
	lat := n.latency[p]
	bw := n.bandwidth[p]
	n.mu.RUnlock()

	d := lat
	if bw > 0 && size > 0 {
		d += time.Duration(float64(size) / bw * float64(time.Second))
	}
	if n.cfg.JitterFrac > 0 && d > 0 {
		n.rngMu.Lock()
		j := (n.rng.Float64()*2 - 1) * n.cfg.JitterFrac
		n.rngMu.Unlock()
		d += time.Duration(float64(d) * j)
	}
	return time.Duration(float64(d) * n.cfg.TimeScale), nil
}

// sleep waits for d, honoring ctx cancellation.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Delay blocks for the one-way delay from a to b for a message of the given
// size. It is the building block for request/response calls.
func (n *Network) Delay(ctx context.Context, a, b string, size int) error {
	d, err := n.OneWay(a, b, size)
	if err != nil {
		return err
	}
	return sleep(ctx, d)
}

// Message is a payload with an explicit wire size for bandwidth accounting.
type Message struct {
	Payload any
	Size    int
}

// Handler processes a request at the server side of an Endpoint.
type Handler func(ctx context.Context, req Message) (Message, error)

// Endpoint is a named service attached to a region.
type Endpoint struct {
	net     *Network
	region  string
	name    string
	mu      sync.RWMutex
	handler Handler
	down    bool
}

// Register attaches a handler to the network under name in region.
func (n *Network) Register(name, region string, h Handler) *Endpoint {
	ep := &Endpoint{net: n, region: region, name: name, handler: h}
	n.mu.Lock()
	if n.eps == nil {
		n.eps = make(map[string]*Endpoint)
	}
	n.eps[name] = ep
	n.mu.Unlock()
	return ep
}

// SetDown marks the endpoint crashed; calls fail immediately after the
// request propagation delay, like a TCP RST from a dead host.
func (ep *Endpoint) SetDown(down bool) {
	ep.mu.Lock()
	ep.down = down
	ep.mu.Unlock()
}

// Down reports whether the endpoint is marked crashed.
func (ep *Endpoint) Down() bool {
	ep.mu.RLock()
	defer ep.mu.RUnlock()
	return ep.down
}

// Region returns the endpoint's region.
func (ep *Endpoint) Region() string { return ep.region }

// ErrEndpointDown is returned when calling a crashed endpoint.
var ErrEndpointDown = errors.New("netsim: endpoint down")

// ErrUnknownEndpoint is returned when dialing an unregistered name.
var ErrUnknownEndpoint = errors.New("netsim: unknown endpoint")

// Call performs a simulated RPC from fromRegion to the named endpoint:
// request propagation + handler execution + response propagation.
func (n *Network) Call(ctx context.Context, fromRegion, name string, req Message) (Message, error) {
	n.mu.RLock()
	ep := n.eps[name]
	n.mu.RUnlock()
	if ep == nil {
		return Message{}, fmt.Errorf("%w: %q", ErrUnknownEndpoint, name)
	}
	if err := n.Delay(ctx, fromRegion, ep.region, req.Size); err != nil {
		return Message{}, err
	}
	ep.mu.RLock()
	down, h := ep.down, ep.handler
	ep.mu.RUnlock()
	if down {
		return Message{}, fmt.Errorf("%w: %q", ErrEndpointDown, name)
	}
	resp, err := h(ctx, req)
	if err != nil {
		return Message{}, err
	}
	if err := n.Delay(ctx, ep.region, fromRegion, resp.Size); err != nil {
		return Message{}, err
	}
	return resp, nil
}

// Stream delivers messages from one region to another in FIFO order, each
// delayed by latency plus serialization time. Redo shipping uses it: batches
// must arrive in log order regardless of per-message delays.
type Stream struct {
	net      *Network
	from, to string

	mu     sync.Mutex
	queue  []streamMsg
	wake   chan struct{}
	closed bool

	deliver func(payload any)
}

type streamMsg struct {
	payload any
	size    int
}

// NewStream creates a stream; deliver runs on the stream's goroutine for
// every message, in order.
func (n *Network) NewStream(from, to string, deliver func(payload any)) *Stream {
	s := &Stream{net: n, from: from, to: to, wake: make(chan struct{}, 1), deliver: deliver}
	go s.run()
	return s
}

// Send enqueues a message. It never blocks; the queue is unbounded, which
// models the primary buffering redo while the WAN is slow (the paper's
// "Redo logs are buffered for longer before they can be transmitted").
func (s *Stream) Send(payload any, size int) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.queue = append(s.queue, streamMsg{payload, size})
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Close stops delivery. Messages not yet delivered are dropped, like a
// severed TCP connection.
func (s *Stream) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// QueueLen reports how many messages are waiting, a proxy for replication
// backlog.
func (s *Stream) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

func (s *Stream) run() {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			<-s.wake
			continue
		}
		msg := s.queue[0]
		s.queue = append(s.queue[:0], s.queue[1:]...)
		s.mu.Unlock()

		d, err := s.net.OneWay(s.from, s.to, msg.size)
		if err != nil {
			// Partitioned: drop and retry-wait; the shipper above detects
			// lag and resends from its cursor once healed. Here we simply
			// park until the next send or a short probe interval.
			time.Sleep(time.Duration(float64(5*time.Millisecond) * s.net.cfg.TimeScale))
			s.mu.Lock()
			s.queue = append([]streamMsg{msg}, s.queue...)
			s.mu.Unlock()
			continue
		}
		time.Sleep(d)
		s.deliver(msg.payload)
	}
}
