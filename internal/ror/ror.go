// Package ror implements Read-On-Replica node selection (Sec. IV-B).
//
// For every shard the same data is available from a primary and several
// replicas with different freshness, response time, and health. Each CN
// tracks per-node metrics and forms a skyline — the Pareto frontier over
// (staleness, cost) where cost folds measured latency and load together —
// and picks, for a query with a staleness bound, the cheapest node that is
// fresh enough (Fig. 5). Crashed nodes drop off the skyline automatically;
// overloaded nodes drift to higher cost and are swapped out.
package ror

import (
	"sort"
	"sync"
	"time"
)

// Candidate is one node's selection metrics for a shard.
type Candidate struct {
	// Node is the endpoint name.
	Node string
	// Region hosts the node.
	Region string
	// Primary marks the shard's primary (staleness zero by definition).
	Primary bool
	// Staleness is how far the node's data lags true time.
	Staleness time.Duration
	// Latency is the EWMA of observed round trips to the node.
	Latency time.Duration
	// Load is the node's last reported in-flight request count.
	Load int64
	// Healthy is false for crashed or unreachable nodes.
	Healthy bool
}

// Cost folds response-time factors into one ordering key: measured latency
// inflated by load (a busy node answers slower than its wire latency).
func (c Candidate) Cost() time.Duration {
	load := c.Load
	if load < 0 {
		load = 0
	}
	return c.Latency * time.Duration(4+load) / 4
}

// Skyline returns the Pareto-optimal candidates minimizing (staleness,
// cost): a candidate survives if no other is both fresher-or-equal and
// cheaper-or-equal (with at least one strict). Unhealthy nodes never
// appear. The result is sorted by staleness ascending.
func Skyline(cands []Candidate) []Candidate {
	alive := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if c.Healthy {
			alive = append(alive, c)
		}
	}
	sort.Slice(alive, func(i, j int) bool {
		if alive[i].Staleness != alive[j].Staleness {
			return alive[i].Staleness < alive[j].Staleness
		}
		return alive[i].Cost() < alive[j].Cost()
	})
	var out []Candidate
	bestCost := time.Duration(1<<63 - 1)
	for _, c := range alive {
		if cost := c.Cost(); cost < bestCost {
			out = append(out, c)
			bestCost = cost
		}
	}
	return out
}

// Select picks the cheapest candidate whose staleness is within bound.
// bound < 0 means "any freshness". It returns false when no healthy
// candidate qualifies.
func Select(cands []Candidate, bound time.Duration) (Candidate, bool) {
	var best Candidate
	found := false
	for _, c := range Skyline(cands) {
		if bound >= 0 && c.Staleness > bound {
			continue
		}
		if !found || c.Cost() < best.Cost() {
			best = c
			found = true
		}
	}
	return best, found
}

// nodeState is a tracked node's mutable metrics.
type nodeState struct {
	Candidate
	shard int
}

// Tracker maintains per-node metrics per CN and answers pick queries.
type Tracker struct {
	// Alpha is the EWMA weight of a new latency sample (0..1].
	Alpha float64

	mu     sync.RWMutex
	nodes  map[string]*nodeState
	shards map[int][]string
}

// NewTracker returns an empty tracker with EWMA alpha 0.3.
func NewTracker() *Tracker {
	return &Tracker{Alpha: 0.3, nodes: make(map[string]*nodeState), shards: make(map[int][]string)}
}

// AddNode registers a node serving a shard. Nodes start healthy with zero
// metrics; initialLatency seeds the EWMA (e.g. from topology RTT).
func (t *Tracker) AddNode(shard int, node, region string, primary bool, initialLatency time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[node] = &nodeState{
		Candidate: Candidate{Node: node, Region: region, Primary: primary, Latency: initialLatency, Healthy: true},
		shard:     shard,
	}
	t.shards[shard] = append(t.shards[shard], node)
}

// ObserveLatency folds a measured round trip into the node's EWMA.
func (t *Tracker) ObserveLatency(node string, rtt time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[node]
	if !ok {
		return
	}
	if n.Latency == 0 {
		n.Latency = rtt
		return
	}
	n.Latency = time.Duration(float64(n.Latency)*(1-t.Alpha) + float64(rtt)*t.Alpha)
}

// UpdateStatus refreshes a node's freshness, load, and health from the
// collector's periodic polls.
func (t *Tracker) UpdateStatus(node string, staleness time.Duration, load int64, healthy bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[node]
	if !ok {
		return
	}
	n.Staleness = staleness
	n.Load = load
	n.Healthy = healthy
}

// MarkFailed records a node crash observed in-band (a failed read); the
// node is excluded until a status poll reports it healthy again.
func (t *Tracker) MarkFailed(node string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n, ok := t.nodes[node]; ok {
		n.Healthy = false
	}
}

// CandidatesFor returns the tracked candidates serving a shard.
func (t *Tracker) CandidatesFor(shard int) []Candidate {
	t.mu.RLock()
	defer t.mu.RUnlock()
	names := t.shards[shard]
	out := make([]Candidate, 0, len(names))
	for _, name := range names {
		if n, ok := t.nodes[name]; ok {
			out = append(out, n.Candidate)
		}
	}
	return out
}

// Pick selects the best node for a shard read under a staleness bound,
// preferring replicas. preferReplica excludes the primary unless no replica
// qualifies; the primary (staleness 0) is the fallback of last resort.
func (t *Tracker) Pick(shard int, bound time.Duration, preferReplica bool) (Candidate, bool) {
	cands := t.CandidatesFor(shard)
	if preferReplica {
		replicas := make([]Candidate, 0, len(cands))
		for _, c := range cands {
			if !c.Primary {
				replicas = append(replicas, c)
			}
		}
		if best, ok := Select(replicas, bound); ok {
			return best, true
		}
	}
	return Select(cands, bound)
}

// Skyline exposes the current frontier for a shard (observability, tests).
func (t *Tracker) Skyline(shard int) []Candidate {
	return Skyline(t.CandidatesFor(shard))
}
