package ror

import (
	"testing"
	"testing/quick"
	"time"
)

func ms(d int) time.Duration { return time.Duration(d) * time.Millisecond }

// fig5Candidates builds the node set of Fig. 5.
func fig5Candidates() []Candidate {
	return []Candidate{
		{Node: "local-primary", Primary: true, Staleness: 0, Latency: ms(1), Healthy: false}, // crash recovery
		{Node: "local-replica", Staleness: ms(20), Latency: ms(1), Healthy: true},            // best replica
		{Node: "nearby-replica", Staleness: ms(10), Latency: ms(12), Healthy: true},          // fresher but slower
		{Node: "nearby-replica-busy", Staleness: ms(9), Latency: ms(12), Load: 40, Healthy: true},
		{Node: "remote-primary", Primary: true, Staleness: 0, Latency: ms(28), Healthy: true}, // freshest, slowest
		{Node: "remote-replica", Staleness: ms(50), Latency: ms(27), Healthy: true},
	}
}

func names(cands []Candidate) []string {
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.Node
	}
	return out
}

func contains(cands []Candidate, node string) bool {
	for _, c := range cands {
		if c.Node == node {
			return true
		}
	}
	return false
}

func TestSkylinePaperScenario(t *testing.T) {
	sky := Skyline(fig5Candidates())
	// Crashed local primary must be excluded.
	if contains(sky, "local-primary") {
		t.Fatalf("crashed node on skyline: %v", names(sky))
	}
	// The remote primary (staleness 0) anchors the fresh end.
	if !contains(sky, "remote-primary") {
		t.Fatalf("remote primary missing: %v", names(sky))
	}
	// The local replica (cheapest) anchors the fast end.
	if !contains(sky, "local-replica") {
		t.Fatalf("local replica missing: %v", names(sky))
	}
	// The remote replica is dominated by the local replica (fresher AND
	// cheaper) and must not appear.
	if contains(sky, "remote-replica") {
		t.Fatalf("dominated node on skyline: %v", names(sky))
	}
	// The busy nearby replica is dominated by the idle one on cost and by
	// the remote primary on staleness: Cost(busy) = 12ms*44/4 = 132ms.
	if contains(sky, "nearby-replica-busy") {
		t.Fatalf("overloaded node on skyline: %v", names(sky))
	}
}

func TestSelectRespectsStalenessBound(t *testing.T) {
	cands := fig5Candidates()
	// Loose bound: the cheap local replica wins.
	best, ok := Select(cands, ms(100))
	if !ok || best.Node != "local-replica" {
		t.Fatalf("loose bound picked %v", best.Node)
	}
	// Bound tighter than the local replica's lag: the nearby replica wins.
	best, ok = Select(cands, ms(15))
	if !ok || best.Node != "nearby-replica" {
		t.Fatalf("15ms bound picked %v", best.Node)
	}
	// Zero staleness: only primaries qualify; the healthy one is remote.
	best, ok = Select(cands, 0)
	if !ok || best.Node != "remote-primary" {
		t.Fatalf("zero bound picked %v", best.Node)
	}
	// Negative bound means any freshness.
	best, ok = Select(cands, -1)
	if !ok || best.Node != "local-replica" {
		t.Fatalf("unbounded picked %v", best.Node)
	}
}

func TestSelectAllUnhealthy(t *testing.T) {
	cands := []Candidate{
		{Node: "a", Healthy: false},
		{Node: "b", Healthy: false},
	}
	if _, ok := Select(cands, -1); ok {
		t.Fatal("selection from dead nodes must fail")
	}
	if len(Skyline(cands)) != 0 {
		t.Fatal("skyline of dead nodes must be empty")
	}
}

func TestSkylineDominanceProperty(t *testing.T) {
	// No skyline member may dominate another: for any two members, the
	// fresher one must be more expensive.
	f := func(stales, lats []uint16, loads []uint8) bool {
		n := len(stales)
		if len(lats) < n {
			n = len(lats)
		}
		if len(loads) < n {
			n = len(loads)
		}
		var cands []Candidate
		for i := 0; i < n; i++ {
			cands = append(cands, Candidate{
				Node:      string(rune('a' + i)),
				Staleness: time.Duration(stales[i]) * time.Microsecond,
				Latency:   time.Duration(lats[i]) * time.Microsecond,
				Load:      int64(loads[i]),
				Healthy:   true,
			})
		}
		sky := Skyline(cands)
		for i := range sky {
			for j := range sky {
				if i == j {
					continue
				}
				if sky[i].Staleness <= sky[j].Staleness && sky[i].Cost() < sky[j].Cost() {
					return false // j is dominated yet survived
				}
			}
		}
		// Every input candidate is either on the skyline or dominated by
		// some skyline member (weakly).
		for _, c := range cands {
			if contains(sky, c.Node) {
				continue
			}
			dominated := false
			for _, s := range sky {
				if s.Staleness <= c.Staleness && s.Cost() <= c.Cost() {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker()
	tr.AddNode(0, "p", "east", true, ms(1))
	tr.AddNode(0, "r-local", "east", false, ms(1))
	tr.AddNode(0, "r-remote", "west", false, ms(25))
	tr.UpdateStatus("r-local", ms(5), 0, true)
	tr.UpdateStatus("r-remote", ms(2), 0, true)

	// Replica-preferring pick takes the local replica.
	best, ok := tr.Pick(0, ms(100), true)
	if !ok || best.Node != "r-local" {
		t.Fatalf("picked %v", best.Node)
	}
	// Tight bound: local replica too stale, remote replica wins over the
	// primary because replicas are preferred.
	best, ok = tr.Pick(0, ms(3), true)
	if !ok || best.Node != "r-remote" {
		t.Fatalf("tight bound picked %v", best.Node)
	}
	// Bound of zero: no replica qualifies; fall back to the primary.
	best, ok = tr.Pick(0, 0, true)
	if !ok || best.Node != "p" {
		t.Fatalf("zero bound picked %v", best.Node)
	}
	// Local replica fails in-band: picks move elsewhere immediately.
	tr.MarkFailed("r-local")
	best, ok = tr.Pick(0, ms(100), true)
	if !ok || best.Node == "r-local" {
		t.Fatalf("failed node picked: %v", best.Node)
	}
	// A status poll heals it.
	tr.UpdateStatus("r-local", ms(5), 0, true)
	best, _ = tr.Pick(0, ms(100), true)
	if best.Node != "r-local" {
		t.Fatalf("healed node not picked: %v", best.Node)
	}
}

func TestTrackerLatencyEWMA(t *testing.T) {
	tr := NewTracker()
	tr.AddNode(0, "n", "r", false, 0)
	tr.ObserveLatency("n", ms(10))
	c := tr.CandidatesFor(0)[0]
	if c.Latency != ms(10) {
		t.Fatalf("first sample must seed: %v", c.Latency)
	}
	tr.ObserveLatency("n", ms(20))
	c = tr.CandidatesFor(0)[0]
	if c.Latency <= ms(10) || c.Latency >= ms(20) {
		t.Fatalf("EWMA out of range: %v", c.Latency)
	}
	// Unknown nodes are ignored, not panics.
	tr.ObserveLatency("ghost", ms(1))
	tr.UpdateStatus("ghost", 0, 0, true)
	tr.MarkFailed("ghost")
}

func TestTrackerLoadSwapsNodeOut(t *testing.T) {
	// The paper: "we may swap out a replica node for a different one if
	// its response time goes up."
	tr := NewTracker()
	tr.AddNode(0, "a", "east", false, ms(2))
	tr.AddNode(0, "b", "east", false, ms(3))
	tr.UpdateStatus("a", ms(1), 0, true)
	tr.UpdateStatus("b", ms(1), 0, true)
	if best, _ := tr.Pick(0, -1, true); best.Node != "a" {
		t.Fatalf("initially picked %v", best.Node)
	}
	// Node a becomes loaded: cost rises above b's.
	tr.UpdateStatus("a", ms(1), 20, true)
	if best, _ := tr.Pick(0, -1, true); best.Node != "b" {
		t.Fatalf("after load picked %v", best.Node)
	}
}

func TestCostGrowsWithLoad(t *testing.T) {
	base := Candidate{Latency: ms(10)}
	loaded := Candidate{Latency: ms(10), Load: 8}
	if loaded.Cost() <= base.Cost() {
		t.Fatal("load must raise cost")
	}
	neg := Candidate{Latency: ms(10), Load: -5}
	if neg.Cost() != base.Cost() {
		t.Fatal("negative load must clamp to zero")
	}
}
