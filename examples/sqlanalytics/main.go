// Command sqlanalytics demonstrates GlobalDB through Go's standard
// database/sql interface on a retail scenario spanning the paper's
// three-city topology: an order-entry workload writes through the Xi'an
// computing node with parameterized prepared statements (planned once,
// executed many times), while analytical read-only queries run in Dongguan
// against asynchronous local replicas at the Replica Consistency Point —
// the paper's read-on-replica (ROR) feature — with result rows streaming
// off the paged scan pipeline instead of materializing.
package main

import (
	"context"
	"database/sql"
	"fmt"
	"log"
	"time"

	"globaldb"
	"globaldb/driver"
)

func main() {
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.05 // compress WAN latencies so the demo runs quickly
	db, err := globaldb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	// An OLTP connection pool homed in Xi'an owns the schema and the writes.
	xian := driver.Open(db, driver.Config{Region: "xian"})
	defer xian.Close()

	fmt.Println("== Schema (DDL stamps a timestamp the ROR gate checks) ==")
	mustExec(ctx, xian, `CREATE TABLE products (
		p_id BIGINT, name TEXT, price DOUBLE,
		PRIMARY KEY (p_id))`)
	mustExec(ctx, xian, `CREATE TABLE sales (
		region_id BIGINT, sale_id BIGINT, p_id BIGINT, qty BIGINT, total DOUBLE,
		PRIMARY KEY (region_id, sale_id),
		INDEX sales_product (region_id, p_id)
	) SHARD BY region_id`)

	fmt.Println("== Loading through prepared, parameterized statements ==")
	insProduct, err := xian.PrepareContext(ctx, "INSERT INTO products VALUES (?, ?, ?)")
	if err != nil {
		log.Fatal(err)
	}
	prices := map[int64]float64{1: 999.5, 2: 599.0, 3: 399.25}
	for id, name := range map[int64]string{1: "laptop", 2: "phone", 3: "tablet"} {
		if _, err := insProduct.ExecContext(ctx, id, name, prices[id]); err != nil {
			log.Fatal(err)
		}
	}
	insProduct.Close()

	// One INSERT statement text, parsed and planned exactly once, executed
	// 60 times with fresh parameters — the prepared-statement hot path.
	insSale, err := xian.PrepareContext(ctx, "INSERT INTO sales VALUES ($1, $2, $3, $4, $5)")
	if err != nil {
		log.Fatal(err)
	}
	sale := int64(0)
	for region := int64(1); region <= 3; region++ {
		for i := 0; i < 20; i++ {
			sale++
			p := sale%3 + 1
			qty := sale%5 + 1
			if _, err := insSale.ExecContext(ctx, region, sale, p, qty, float64(qty)*prices[p]); err != nil {
				log.Fatal(err)
			}
		}
	}
	insSale.Close()

	fmt.Println("== Transfer inside an explicit transaction ==")
	tx, err := xian.BeginTx(ctx, nil)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tx.ExecContext(ctx, "UPDATE products SET price = price * ? WHERE p_id = ?", 0.9, int64(3)); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Fresh primary read from the writing region ==")
	printQuery(ctx, xian, `SELECT region_id, COUNT(*) AS n, SUM(total) AS revenue
		FROM sales GROUP BY region_id ORDER BY region_id`)

	// An analytics pool in Dongguan reads its local replicas (ROR). The
	// staleness bound travels in the connector config; SET STALENESS per
	// connection works too.
	dongguan := driver.Open(db, driver.Config{Region: "dongguan", ReplicaReads: true})
	defer dongguan.Close()

	fmt.Println("== Replica reads in Dongguan (read-on-replica at the RCP) ==")
	// Replication is asynchronous: poll until the RCP covers the load.
	top, err := dongguan.PrepareContext(ctx, `SELECT s.p_id, p.name, SUM(s.qty) AS units, SUM(s.total) AS revenue
		FROM sales s JOIN products p ON p.p_id = s.p_id
		WHERE s.region_id IN (?, ?, ?)
		GROUP BY s.p_id, p.name ORDER BY revenue DESC`)
	if err != nil {
		log.Fatal(err)
	}
	defer top.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var units int64
		rows, err := top.QueryContext(ctx, int64(1), int64(2), int64(3))
		if err != nil {
			log.Fatal(err)
		}
		n := 0
		for rows.Next() {
			var pid, u int64
			var name string
			var revenue float64
			if err := rows.Scan(&pid, &name, &u, &revenue); err != nil {
				log.Fatal(err)
			}
			units += u
			n++
		}
		if err := rows.Close(); err != nil {
			log.Fatal(err)
		}
		if n == 3 && units == 180 { // fully replicated: sum of qty over 60 sales
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("replicas did not catch up in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
	printStmt(ctx, top, int64(1), int64(2), int64(3))

	fmt.Println("== Streaming: LIMIT through the driver stops the scan early ==")
	printQuery(ctx, dongguan, "SELECT region_id, sale_id, total FROM sales ORDER BY region_id, sale_id LIMIT ?", int64(3))

	fmt.Println("== Plan inspection ==")
	printQuery(ctx, dongguan, "EXPLAIN SELECT * FROM sales WHERE region_id = 2 AND p_id = 1")

	fmt.Println("== Bounded staleness via DSN: at most 60 seconds behind ==")
	driver.Register("demo", db)
	bounded, err := sql.Open("globaldb", "demo?region=dongguan&staleness=60s")
	if err != nil {
		log.Fatal(err)
	}
	defer bounded.Close()
	printQuery(ctx, bounded, "SELECT COUNT(*) FROM sales")

	fmt.Println("done")
}

func mustExec(ctx context.Context, db *sql.DB, query string, args ...any) {
	if _, err := db.ExecContext(ctx, query, args...); err != nil {
		log.Fatalf("%s: %v", query, err)
	}
}

// printQuery runs a query and renders its rows, scanning generically.
func printQuery(ctx context.Context, db *sql.DB, query string, args ...any) {
	rows, err := db.QueryContext(ctx, query, args...)
	if err != nil {
		log.Fatalf("%s: %v", query, err)
	}
	defer rows.Close()
	printRows(rows)
}

func printStmt(ctx context.Context, st *sql.Stmt, args ...any) {
	rows, err := st.QueryContext(ctx, args...)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	printRows(rows)
}

func printRows(rows *sql.Rows) {
	cols, err := rows.Columns()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cols)
	vals := make([]any, len(cols))
	ptrs := make([]any, len(cols))
	for i := range vals {
		ptrs[i] = &vals[i]
	}
	n := 0
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			log.Fatal(err)
		}
		fmt.Println(vals...)
		n++
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(%d rows)\n", n)
}
