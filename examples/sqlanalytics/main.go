// Command sqlanalytics demonstrates GlobalDB's SQL front-end on a retail
// scenario spanning the paper's three-city topology: an order-entry
// workload writes through the Xi'an computing node while analytical
// read-only queries run in Dongguan against asynchronous local replicas at
// the Replica Consistency Point — the paper's read-on-replica (ROR)
// feature, driven entirely through SQL.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"globaldb"
	"globaldb/gsql"
)

func main() {
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.05 // compress WAN latencies so the demo runs quickly
	db, err := globaldb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	// An OLTP session in Xi'an owns the schema and the writes.
	xian, err := gsql.Connect(db, "xian")
	if err != nil {
		log.Fatal(err)
	}
	must := func(sql string) *gsql.Result {
		res, err := xian.ExecScript(ctx, sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	fmt.Println("== Schema (DDL stamps a timestamp the ROR gate checks) ==")
	must(`CREATE TABLE products (
		p_id BIGINT, name TEXT, price DOUBLE,
		PRIMARY KEY (p_id));`)
	must(`CREATE TABLE sales (
		region_id BIGINT, sale_id BIGINT, p_id BIGINT, qty BIGINT, total DOUBLE,
		PRIMARY KEY (region_id, sale_id),
		INDEX sales_product (region_id, p_id)
	) SHARD BY region_id;`)

	fmt.Println("== Loading products and sales through SQL ==")
	must(`INSERT INTO products VALUES
		(1, 'laptop', 999.5), (2, 'phone', 599.0), (3, 'tablet', 399.25);`)
	sale := int64(0)
	for region := int64(1); region <= 3; region++ {
		for i := 0; i < 20; i++ {
			sale++
			p := sale%3 + 1
			qty := sale%5 + 1
			price := map[int64]float64{1: 999.5, 2: 599.0, 3: 399.25}[p]
			must(fmt.Sprintf("INSERT INTO sales VALUES (%d, %d, %d, %d, %f);",
				region, sale, p, qty, float64(qty)*price))
		}
	}

	fmt.Println("== Fresh primary read from the writing region ==")
	res := must(`SELECT region_id, COUNT(*) AS n, SUM(total) AS revenue
		FROM sales GROUP BY region_id ORDER BY region_id;`)
	fmt.Print(gsql.FormatTable(res))

	// An analytics session in Dongguan reads its local replicas.
	dongguan, err := gsql.Connect(db, "dongguan")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dongguan.Exec(ctx, "SET STALENESS = ANY"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Replica reads in Dongguan (read-on-replica at the RCP) ==")
	// Replication is asynchronous: poll until the RCP covers the load.
	var report *gsql.Result
	deadline := time.Now().Add(30 * time.Second)
	for {
		report, err = dongguan.Exec(ctx, `SELECT s.p_id, p.name, SUM(s.qty) AS units, SUM(s.total) AS revenue
			FROM sales s JOIN products p ON p.p_id = s.p_id
			GROUP BY s.p_id, p.name ORDER BY revenue DESC;`)
		if err == nil && len(report.Rows) == 3 {
			var units int64
			for _, r := range report.Rows {
				units += r[2].(int64)
			}
			if units == 180 { // fully replicated: sum of qty over 60 sales
				break
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		if time.Now().After(deadline) {
			log.Fatal("replicas did not catch up in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Print(gsql.FormatTable(report))
	fmt.Println("served from replicas:", report.OnReplicas)

	fmt.Println("== Plan inspection ==")
	plan, err := dongguan.Exec(ctx, "EXPLAIN SELECT * FROM sales WHERE region_id = 2 AND p_id = 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(gsql.FormatTable(plan))

	fmt.Println("== Bounded staleness: at most 60 seconds behind ==")
	bounded, err := dongguan.Exec(ctx, "SELECT COUNT(*) FROM sales AS OF STALENESS '60s'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(gsql.FormatTable(bounded))

	fmt.Println("done")
}
