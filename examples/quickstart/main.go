// Quickstart: open a three-city GlobalDB cluster, create a table, run a
// read-write transaction, and read it back from an asynchronous replica
// with guaranteed consistency.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"globaldb"
)

func main() {
	// The paper's Three-City topology: Xi'an, Langzhong, Dongguan with
	// 25/35/55 ms RTT edges. TimeScale shrinks simulated delays 5x.
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.2
	db, err := globaldb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	// DDL: an accounts table, hash-distributed by its primary key.
	if err := db.CreateTable(ctx, &globaldb.Schema{
		Name: "accounts",
		Columns: []globaldb.Column{
			{Name: "id", Kind: globaldb.Int64},
			{Name: "owner", Kind: globaldb.String},
			{Name: "balance", Kind: globaldb.Float64},
		},
		PK: []int{0},
	}); err != nil {
		log.Fatal(err)
	}

	// A session at the Xi'an computing node.
	sess, err := db.Connect("xian")
	if err != nil {
		log.Fatal(err)
	}

	// Read-write transaction: GClock timestamps from the local synchronized
	// clock — no round trip to a central timestamp server.
	tx, err := sess.Begin(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Insert(ctx, "accounts", globaldb.Row{int64(1), "alice", 100.0}); err != nil {
		log.Fatal(err)
	}
	if err := tx.Insert(ctx, "accounts", globaldb.Row{int64(2), "bob", 250.0}); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed two accounts at %v (mode %v)\n", tx.Snapshot(), db.Mode())

	// Wait for the Replica Consistency Point to pass the commit, then read
	// from an asynchronous replica with strong consistency (Sec. IV).
	for db.Cluster().Collector.RCP() < tx.CommitTS() {
		time.Sleep(5 * time.Millisecond)
	}
	q, err := sess.ReadOnly(ctx, globaldb.AnyStaleness, "accounts")
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range []int64{1, 2} {
		row, found, err := q.Get(ctx, "accounts", []any{id})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replica read (onReplicas=%v): id=%d found=%v row=%v\n",
			q.OnReplicas(), id, found, row)
	}
}
