// Command geobalance demonstrates the paper's future-work "transparent
// load balancing based on geographical access patterns": a region starts
// hammering shards whose primaries live elsewhere, the placement advisor
// notices, and the cluster relocates those primaries — cutting the write
// round trip from a WAN hop to a local one.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"globaldb"
)

func main() {
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.1 // keep WAN costs visible but the demo short
	db, err := globaldb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	if err := db.CreateTable(ctx, &globaldb.Schema{
		Name: "events",
		Columns: []globaldb.Column{
			{Name: "id", Kind: globaldb.Int64},
			{Name: "payload", Kind: globaldb.String},
		},
		PK: []int{0},
	}); err != nil {
		log.Fatal(err)
	}

	// Dongguan generates all the traffic.
	sess, err := db.Connect("dongguan")
	if err != nil {
		log.Fatal(err)
	}
	writeBatch := func(n int, start int64) time.Duration {
		begin := time.Now()
		for i := 0; i < n; i++ {
			tx, err := sess.Begin(ctx)
			if err != nil {
				log.Fatal(err)
			}
			if err := tx.Insert(ctx, "events", globaldb.Row{start + int64(i), "x"}); err != nil {
				log.Fatal(err)
			}
			if err := tx.Commit(ctx); err != nil {
				log.Fatal(err)
			}
		}
		return time.Since(begin) / time.Duration(n)
	}

	cluster := db.Cluster()
	fmt.Println("== Initial placement ==")
	for s := 0; s < cluster.Shards(); s++ {
		fmt.Printf("shard %d primary in %s\n", s, cluster.Primaries()[s].Region())
	}

	fmt.Println("\n== Phase 1: Dongguan writes against remote primaries ==")
	before := writeBatch(60, 0)
	fmt.Printf("mean commit latency: %v\n", before.Round(time.Microsecond))

	moves := db.AdvisePlacement(globaldb.DefaultPlacementConfig())
	fmt.Printf("\n== Advisor recommends %d moves ==\n", len(moves))
	for _, m := range moves {
		fmt.Println(" ", m)
	}
	for _, m := range moves {
		if err := db.MovePrimary(ctx, m.Shard, m.To); err != nil {
			// A shard may lack a replica in the target region; that is a
			// topology constraint, not an error in the demo.
			fmt.Printf("  shard %d not moved: %v\n", m.Shard, err)
		}
	}

	fmt.Println("\n== Placement after rebalancing ==")
	for s := 0; s < cluster.Shards(); s++ {
		fmt.Printf("shard %d primary in %s\n", s, cluster.Primaries()[s].Region())
	}

	fmt.Println("\n== Phase 2: the same workload against relocated primaries ==")
	db.ResetPlacementWindow()
	after := writeBatch(60, 1000)
	fmt.Printf("mean commit latency: %v (was %v)\n", after.Round(time.Microsecond), before.Round(time.Microsecond))
	if after < before {
		fmt.Println("geographic rebalancing cut the commit round trip")
	}
}
