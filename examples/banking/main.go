// Banking: cross-shard transfers under two-phase commit with external
// consistency. Concurrent transfer transactions race from two regions while
// an auditor keeps verifying that money is conserved — both on primaries
// and on asynchronous replicas at the RCP snapshot.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"globaldb"
)

const (
	accounts       = 20
	initialBalance = 1000.0
)

func main() {
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.05
	db, err := globaldb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	if err := db.CreateTable(ctx, &globaldb.Schema{
		Name: "accounts",
		Columns: []globaldb.Column{
			{Name: "id", Kind: globaldb.Int64},
			{Name: "balance", Kind: globaldb.Float64},
		},
		PK: []int{0},
	}); err != nil {
		log.Fatal(err)
	}

	seed, err := db.Connect("xian")
	if err != nil {
		log.Fatal(err)
	}
	tx, _ := seed.Begin(ctx)
	for id := int64(1); id <= accounts; id++ {
		if err := tx.Insert(ctx, "accounts", globaldb.Row{id, initialBalance}); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeded %d accounts x %.0f\n", accounts, initialBalance)

	// Transfer workers in two regions; conflicts abort and retry, exactly
	// like a real OLTP client.
	var transfers, conflicts atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i, region := range []string{"xian", "dongguan"} {
		wg.Add(1)
		go func(i int, region string) {
			defer wg.Done()
			sess, err := db.Connect(region)
			if err != nil {
				log.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(i)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				from := int64(1 + rng.Intn(accounts))
				to := int64(1 + rng.Intn(accounts))
				if from == to {
					continue
				}
				amount := float64(1 + rng.Intn(50))
				if err := transfer(ctx, sess, from, to, amount); err != nil {
					conflicts.Add(1)
					continue
				}
				transfers.Add(1)
			}
		}(i, region)
	}

	// Auditor: primaries first, then replicas at the RCP.
	audit := func(replica bool) {
		sess, _ := db.Connect("langzhong")
		total := 0.0
		if replica {
			q, err := sess.ReadOnly(ctx, globaldb.AnyStaleness, "accounts")
			if err != nil {
				log.Fatal(err)
			}
			for id := int64(1); id <= accounts; id++ {
				row, found, err := q.Get(ctx, "accounts", []any{id})
				if err != nil {
					log.Fatal(err)
				}
				if found {
					total += row[1].(float64)
				}
			}
			if total != 0 && total != accounts*initialBalance {
				log.Fatalf("REPLICA AUDIT FAILED: total=%v", total)
			}
			fmt.Printf("replica audit ok (snapshot %v): total=%.0f\n", q.Snapshot(), total)
			return
		}
		txa, err := sess.Begin(ctx)
		if err != nil {
			log.Fatal(err)
		}
		for id := int64(1); id <= accounts; id++ {
			row, _, err := txa.Get(ctx, "accounts", []any{id})
			if err != nil {
				log.Fatal(err)
			}
			total += row[1].(float64)
		}
		txa.Commit(ctx)
		if total != accounts*initialBalance {
			log.Fatalf("PRIMARY AUDIT FAILED: total=%v", total)
		}
		fmt.Printf("primary audit ok: total=%.0f\n", total)
	}

	for round := 0; round < 5; round++ {
		time.Sleep(100 * time.Millisecond)
		audit(false)
		audit(true)
	}
	close(stop)
	wg.Wait()
	fmt.Printf("done: %d transfers committed, %d conflicts retried\n", transfers.Load(), conflicts.Load())
}

// transfer moves amount between two accounts; crossing shards triggers 2PC.
func transfer(ctx context.Context, sess *globaldb.Session, from, to int64, amount float64) error {
	tx, err := sess.Begin(ctx)
	if err != nil {
		return err
	}
	fromRow, found, err := tx.Get(ctx, "accounts", []any{from})
	if err != nil || !found {
		tx.Abort(ctx)
		return fmt.Errorf("account %d: %v", from, err)
	}
	toRow, found, err := tx.Get(ctx, "accounts", []any{to})
	if err != nil || !found {
		tx.Abort(ctx)
		return fmt.Errorf("account %d: %v", to, err)
	}
	fromRow[1] = fromRow[1].(float64) - amount
	toRow[1] = toRow[1].(float64) + amount
	if err := tx.Update(ctx, "accounts", fromRow); err != nil {
		tx.Abort(ctx)
		return err
	}
	if err := tx.Update(ctx, "accounts", toRow); err != nil {
		tx.Abort(ctx)
		return err
	}
	return tx.Commit(ctx)
}
