// Livetransition: the paper's zero-downtime bi-directional switch between
// centralized (GTM) and clock-based (GClock) transaction management
// (Sec. III-A). The cluster starts on the GTM, migrates to GClock under
// live load, suffers a clock-device failure, and falls back to GTM — all
// while worker goroutines keep committing and verifying monotonic commit
// timestamps.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"globaldb"
	"globaldb/internal/ts"
)

func main() {
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.05
	cfg.Mode = ts.ModeGTM // start centralized, like an upgraded legacy cluster
	db, err := globaldb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	if err := db.CreateTable(ctx, &globaldb.Schema{
		Name: "events",
		Columns: []globaldb.Column{
			{Name: "id", Kind: globaldb.Int64},
			{Name: "worker", Kind: globaldb.Int64},
		},
		PK: []int{0},
	}); err != nil {
		log.Fatal(err)
	}

	var committed, aborted atomic.Int64
	var seq atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, region := range db.Regions() {
		wg.Add(1)
		go func(i int, region string) {
			defer wg.Done()
			sess, err := db.Connect(region)
			if err != nil {
				log.Fatal(err)
			}
			var prev int64 // previous commit timestamp: must only grow
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := sess.Begin(ctx)
				if err != nil {
					aborted.Add(1)
					continue
				}
				id := seq.Add(1)
				if err := tx.Insert(ctx, "events", globaldb.Row{id, int64(i)}); err != nil {
					tx.Abort(ctx)
					aborted.Add(1)
					continue
				}
				if err := tx.Commit(ctx); err != nil {
					aborted.Add(1) // stale GTM txns abort at the boundary; clients retry
					continue
				}
				if int64(tx.Snapshot()) <= prev && prev != 0 {
					// The snapshot grows across transactions on one session.
					log.Fatalf("monotonicity violated: %v after %v", tx.Snapshot(), prev)
				}
				prev = int64(tx.Snapshot())
				committed.Add(1)
			}
		}(i, region)
	}

	report := func(phase string) {
		time.Sleep(300 * time.Millisecond)
		fmt.Printf("%-34s mode=%-7v committed=%-6d aborted=%d\n",
			phase, db.Mode(), committed.Load(), aborted.Load())
	}

	report("phase 1: centralized GTM")

	if err := db.TransitionToGClock(ctx); err != nil {
		log.Fatal(err)
	}
	report("phase 2: after GTM->GClock (live)")

	// A regional time device fails: error bounds grow. The operator falls
	// back to centralized management without stopping the cluster.
	fmt.Println("-- injecting clock-device failure in xian --")
	db.Cluster().FailClockDevice("xian", true)
	time.Sleep(100 * time.Millisecond)
	if err := db.TransitionToGTM(ctx); err != nil {
		log.Fatal(err)
	}
	report("phase 3: after clock failure -> GTM")

	// The device heals; move back to decentralized timestamps.
	db.Cluster().FailClockDevice("xian", false)
	time.Sleep(50 * time.Millisecond)
	if err := db.TransitionToGClock(ctx); err != nil {
		log.Fatal(err)
	}
	report("phase 4: healed -> GClock again")

	close(stop)
	wg.Wait()
	fmt.Printf("\ntotal: %d commits, %d aborts/retries — zero downtime across 3 transitions\n",
		committed.Load(), aborted.Load())
}
