// Georeads: read-on-replica with tunable freshness and dynamic node
// selection (Sec. IV). A writer in Xi'an continuously updates a feed; a
// reader in Dongguan compares three strategies:
//
//  1. Transactional reads from the (remote) primary — always fresh, always
//     paying WAN latency.
//  2. Replica reads with unbounded staleness — served by the local replica
//     at the RCP snapshot.
//  3. Replica reads with a tight staleness bound — fall back to primaries
//     when the RCP lags too far.
//
// It also crashes the local replica mid-run to show the skyline rerouting
// reads without failing queries.
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"globaldb"
)

func main() {
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.2
	db, err := globaldb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	if err := db.CreateTable(ctx, &globaldb.Schema{
		Name: "feed",
		Columns: []globaldb.Column{
			{Name: "id", Kind: globaldb.Int64},
			{Name: "version", Kind: globaldb.Int64},
		},
		PK: []int{0},
	}); err != nil {
		log.Fatal(err)
	}

	writer, _ := db.Connect("xian")
	reader, _ := db.Connect("dongguan")

	// Continuous writer.
	var version atomic.Int64
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := version.Add(1)
			tx, err := writer.Begin(ctx)
			if err != nil {
				continue
			}
			if err := tx.Insert(ctx, "feed", globaldb.Row{int64(1), v}); err != nil {
				tx.Abort(ctx)
				continue
			}
			tx.Commit(ctx)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer close(stop)
	time.Sleep(100 * time.Millisecond) // let data flow

	timeRead := func(name string, read func() (int64, bool)) {
		start := time.Now()
		v, onReplica := read()
		fmt.Printf("%-34s version=%-6d latency=%-12v servedByReplica=%v\n",
			name, v, time.Since(start).Round(time.Microsecond), onReplica)
	}

	// 1. Remote primary read.
	timeRead("primary read (remote)", func() (int64, bool) {
		tx, err := reader.Begin(ctx)
		if err != nil {
			log.Fatal(err)
		}
		defer tx.Commit(ctx)
		row, _, err := tx.Get(ctx, "feed", []any{int64(1)})
		if err != nil {
			log.Fatal(err)
		}
		return row[1].(int64), false
	})

	// 2. Replica read, any staleness.
	timeRead("replica read (any staleness)", func() (int64, bool) {
		q, err := reader.ReadOnly(ctx, globaldb.AnyStaleness, "feed")
		if err != nil {
			log.Fatal(err)
		}
		row, found, err := q.Get(ctx, "feed", []any{int64(1)})
		if err != nil {
			log.Fatal(err)
		}
		if !found {
			return 0, q.OnReplicas()
		}
		return row[1].(int64), q.OnReplicas()
	})

	// 3. Tight staleness bound: if the RCP lags beyond 1ms the query
	// transparently falls back to fresh primary reads.
	timeRead("replica read (1ms bound)", func() (int64, bool) {
		q, err := reader.ReadOnly(ctx, time.Millisecond, "feed")
		if err != nil {
			log.Fatal(err)
		}
		row, found, err := q.Get(ctx, "feed", []any{int64(1)})
		if err != nil || !found {
			return 0, q.OnReplicas()
		}
		return row[1].(int64), q.OnReplicas()
	})

	// Crash the reader-side replica of the feed's shard; queries reroute.
	shard := db.Cluster().ShardOf(int64(1))
	for _, rep := range db.Cluster().Replicas(shard) {
		if rep.Region() == "dongguan" {
			fmt.Printf("\n-- crashing replica %s in dongguan --\n", rep.ID())
			rep.SetDown(true)
		}
	}
	time.Sleep(50 * time.Millisecond) // a status poll notices

	timeRead("replica read (after local crash)", func() (int64, bool) {
		q, err := reader.ReadOnly(ctx, globaldb.AnyStaleness, "feed")
		if err != nil {
			log.Fatal(err)
		}
		row, found, err := q.Get(ctx, "feed", []any{int64(1)})
		if err != nil || !found {
			return 0, q.OnReplicas()
		}
		return row[1].(int64), q.OnReplicas()
	})

	cnStats := reader.CN().Stats()
	fmt.Printf("\nreader CN stats: %+v\n", cnStats)
}
