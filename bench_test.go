// Macro-benchmarks: one per table/figure in the paper's evaluation
// (Sec. V). Each runs the corresponding experiment at Quick parameters and
// reports throughput via b.ReportMetric, so `go test -bench=.` regenerates
// every figure's data. EXPERIMENTS.md records paper-vs-measured shapes;
// `cmd/globaldb-bench -full` runs the longer sweeps.
package globaldb_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"globaldb"
	"globaldb/gsql"
	"globaldb/internal/experiments"
	"globaldb/internal/harness"
	"globaldb/internal/rcp"
	"globaldb/internal/ror"
	"globaldb/internal/ts"
)

// benchParams shrinks Quick further so the full -bench=. pass stays fast.
func benchParams() experiments.Params {
	p := experiments.Quick()
	p.Clients = 16
	p.Duration = 300 * time.Millisecond
	p.Warmup = 100 * time.Millisecond
	p.RTTs = []time.Duration{0, 100 * time.Millisecond}
	p.TPCC.Warehouses = 4
	p.TPCC.Districts = 3
	p.TPCC.CustomersPerDistrict = 12
	p.TPCC.Items = 30
	p.TPCC.InitialOrdersPerDistrict = 6
	p.Sysbench.Tables = 3
	p.Sysbench.RowsPerTable = 90
	p.Shards = 4
	return p
}

func reportSeries(b *testing.B, s harness.Series) {
	b.Helper()
	b.Log(s.Table())
	if len(s.Results) > 0 {
		last := s.Results[len(s.Results)-1]
		b.ReportMetric(last.Throughput, "tx/s@maxRTT")
	}
}

// BenchmarkFig1aTPCCDegradation regenerates Fig. 1a: baseline TPC-C
// throughput versus cluster round-trip latency.
func BenchmarkFig1aTPCCDegradation(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig1a(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, s)
	}
}

// BenchmarkFig6aTPCCSync regenerates Fig. 6a: TPC-C under synchronous
// replication, One-Region vs Three-City, baseline vs GlobalDB.
func BenchmarkFig6aTPCCSync(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig6a(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		b.Log(s.Table())
		if len(s.Results) == 4 {
			b.ReportMetric(s.Results[3].Throughput, "globaldb-3city-tx/s")
			b.ReportMetric(s.Results[2].Throughput, "baseline-3city-tx/s")
		}
	}
}

// BenchmarkFig6bTPCCAsync regenerates Fig. 6b: TPC-C with asynchronous
// replication over the RTT sweep, baseline vs GlobalDB.
func BenchmarkFig6bTPCCAsync(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig6b(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			b.Log(s.Table())
		}
		if len(series) == 2 {
			base := series[0].Results[len(series[0].Results)-1].Throughput
			gdb := series[1].Results[len(series[1].Results)-1].Throughput
			b.ReportMetric(gdb/base, "speedup@maxRTT")
		}
	}
}

// BenchmarkFig6cTPCCReadOnly regenerates Fig. 6c: the modified read-only
// TPC-C (Order-Status + Stock-Level, 50% multi-shard).
func BenchmarkFig6cTPCCReadOnly(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig6c(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			b.Log(s.Table())
		}
		if len(series) == 2 {
			base := series[0].Results[len(series[0].Results)-1].Throughput
			gdb := series[1].Results[len(series[1].Results)-1].Throughput
			b.ReportMetric(gdb/base, "speedup@maxRTT")
		}
	}
}

// BenchmarkFig6dSysbenchPointSelect regenerates Fig. 6d: Sysbench point
// select with 2/3 remote tuples.
func BenchmarkFig6dSysbenchPointSelect(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig6d(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			b.Log(s.Table())
		}
		if len(series) == 2 {
			base := series[0].Results[len(series[0].Results)-1].Throughput
			gdb := series[1].Results[len(series[1].Results)-1].Throughput
			b.ReportMetric(gdb/base, "speedup@maxRTT")
		}
	}
}

// BenchmarkTransitionUnderLoad regenerates the Sec. III-A zero-downtime
// demonstration: TPC-C throughput sampled across a GTM→GClock→GTM cycle.
func BenchmarkTransitionUnderLoad(b *testing.B) {
	p := benchParams()
	p.Clients = 8
	for i := 0; i < b.N; i++ {
		counts, err := experiments.TransitionTimeline(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		min := counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
		}
		b.Logf("per-window commits: %v", counts)
		b.ReportMetric(float64(min), "min-window-commits")
	}
}

// ---- Streaming scan pipeline benchmarks ----
//
// These measure the paged-cursor pipeline's pushdown wins by recording
// rows-fetched-per-layer alongside wall time:
//
//	storage-rows/op — visible pairs the MVCC stores returned to scans
//	wan-rows/op     — rows that crossed the simulated network to the CN
//	result-rows/op  — rows in the final SQL result
//
// A pushed LIMIT/range shows up as storage-rows/op and wan-rows/op near
// result-rows/op (O(k·page)) instead of the table size (O(N)). Results are
// recorded in CHANGES.md as "bench: <name> storage=<r>/op wan=<r>/op".

// scanBenchRows is the loaded table size for the scan benchmarks.
const scanBenchRows = 2000

// storageRows sums the rows returned by storage-level scans on every
// primary and replica store.
func storageRows(db *globaldb.DB) int64 {
	var total int64
	c := db.Cluster()
	for _, p := range c.Primaries() {
		total += p.Store().RowsScanned()
	}
	for shard := 0; shard < c.Shards(); shard++ {
		for _, r := range c.Replicas(shard) {
			total += r.Applier().Store().RowsScanned()
		}
	}
	return total
}

// wanRows sums the rows received in scan responses across every CN.
func wanRows(db *globaldb.DB) int64 {
	var total int64
	for _, cn := range db.Cluster().CNs() {
		total += cn.ScanRowsFetched()
	}
	return total
}

// openScanBenchDB builds a cluster and loads `items` with scanBenchRows
// rows spread over 4 warehouses, returning a SQL session in region.
func openScanBenchDB(b *testing.B, cfg globaldb.Config, region string) (*globaldb.DB, *gsql.Session) {
	b.Helper()
	db, err := globaldb.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	s, err := gsql.Connect(db, region)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Exec(context.Background(), `CREATE TABLE items (
		w_id BIGINT, i_id BIGINT, qty BIGINT, tag TEXT,
		PRIMARY KEY (w_id, i_id)
	) SHARD BY w_id`); err != nil {
		b.Fatal(err)
	}
	const perWarehouse = scanBenchRows / 4
	for w := 1; w <= 4; w++ {
		var vals []string
		for i := 1; i <= perWarehouse; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d, %d, 't%d')", w, i, (i*7)%100, i%5))
			if len(vals) == 250 || i == perWarehouse {
				stmt := "INSERT INTO items VALUES " + strings.Join(vals, ", ")
				if _, err := s.Exec(context.Background(), stmt); err != nil {
					b.Fatal(err)
				}
				vals = nil
			}
		}
	}
	return db, s
}

// benchScanQuery runs one SQL query b.N times and reports the per-layer
// rows-fetched metrics.
func benchScanQuery(b *testing.B, db *globaldb.DB, s *gsql.Session, sql string, wantRows int) {
	b.Helper()
	ctx := context.Background()
	s0, w0 := storageRows(db), wanRows(db)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Exec(ctx, sql)
		if err != nil {
			b.Fatal(err)
		}
		if wantRows >= 0 && len(res.Rows) != wantRows {
			b.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
		}
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(storageRows(db)-s0)/n, "storage-rows/op")
	b.ReportMetric(float64(wanRows(db)-w0)/n, "wan-rows/op")
	if wantRows >= 0 {
		b.ReportMetric(float64(wantRows), "result-rows/op")
	}
}

// BenchmarkScanFilteredFullTable runs a full-table scan with a
// non-key-range filter evaluated on the CN (pushdown forced off). The
// filter cannot narrow the key range, so both storage-rows/op and
// wan-rows/op stay O(N) — the baseline BenchmarkScanFilterPushdown is
// compared against.
func BenchmarkScanFilteredFullTable(b *testing.B) {
	cfg := globaldb.OneRegion(0)
	cfg.TimeScale = 0.02
	cfg.Shards = 4
	db, s := openScanBenchDB(b, cfg, cfg.Regions[0])
	s.SetPushdown(false)
	benchScanQuery(b, db, s, "SELECT * FROM items WHERE qty >= 90", 200)
}

// BenchmarkScanFilterPushdown runs the identical non-PK filtered scan with
// the predicate pushed to the data nodes. Storage still reads O(N) rows —
// the filter cannot narrow the key range — but only the ~200 matching rows
// cross the WAN: wan-rows/op equals the match count, not the table size,
// which is the acceptance criterion of the DN-side execution engine.
func BenchmarkScanFilterPushdown(b *testing.B) {
	cfg := globaldb.OneRegion(0)
	cfg.TimeScale = 0.02
	cfg.Shards = 4
	db, s := openScanBenchDB(b, cfg, cfg.Regions[0])
	benchScanQuery(b, db, s, "SELECT * FROM items WHERE qty >= 90", 200)
}

// BenchmarkAggPushdown runs a grouped aggregate with DN-partial
// aggregation: each shard folds its rows into per-group states locally and
// ships one partial row per group, so wan-rows/op is O(shards * groups) —
// 20 for 4 shards and 5 groups — instead of the 2000-row table.
func BenchmarkAggPushdown(b *testing.B) {
	cfg := globaldb.OneRegion(0)
	cfg.TimeScale = 0.02
	cfg.Shards = 4
	db, s := openScanBenchDB(b, cfg, cfg.Regions[0])
	benchScanQuery(b, db, s, "SELECT tag, COUNT(*), SUM(qty) FROM items GROUP BY tag", 5)
}

// BenchmarkAggCNSide is the same grouped aggregate with pushdown forced
// off: every row crosses the WAN to be grouped at the CN.
func BenchmarkAggCNSide(b *testing.B) {
	cfg := globaldb.OneRegion(0)
	cfg.TimeScale = 0.02
	cfg.Shards = 4
	db, s := openScanBenchDB(b, cfg, cfg.Regions[0])
	s.SetPushdown(false)
	benchScanQuery(b, db, s, "SELECT tag, COUNT(*), SUM(qty) FROM items GROUP BY tag", 5)
}

// BenchmarkScanLimitPushdown runs `WHERE <PK range> LIMIT k` over the large
// table. The range narrows the scan inside storage and the LIMIT stops the
// paged cursor after roughly one page, so storage-rows/op is O(k·page),
// not O(N) — the acceptance criterion of the streaming-pipeline refactor.
func BenchmarkScanLimitPushdown(b *testing.B) {
	cfg := globaldb.OneRegion(0)
	cfg.TimeScale = 0.02
	cfg.Shards = 4
	db, s := openScanBenchDB(b, cfg, cfg.Regions[0])
	benchScanQuery(b, db, s,
		"SELECT * FROM items WHERE w_id = 1 AND i_id > 100 ORDER BY w_id, i_id LIMIT 10", 10)
}

// BenchmarkScanReadOnlyCrossRegion runs the LIMIT'd range scan as a
// read-only replica query from a remote region over the modeled WAN, where
// every row shipped is a WAN cost the pushdown avoids.
func BenchmarkScanReadOnlyCrossRegion(b *testing.B) {
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.02
	cfg.Shards = 4
	db, _ := openScanBenchDB(b, cfg, "xian")
	remote, err := gsql.Connect(db, "dongguan")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := remote.Exec(context.Background(), "SET STALENESS = ANY"); err != nil {
		b.Fatal(err)
	}
	// Wait for replication to catch up so replica reads see the load.
	deadline := time.Now().Add(30 * time.Second)
	for {
		res, err := remote.Exec(context.Background(), "SELECT COUNT(*) FROM items")
		if err == nil && res.OnReplicas && res.Rows[0][0] == int64(scanBenchRows) {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("replicas did not catch up: %v err=%v", res, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	benchScanQuery(b, db, remote,
		"SELECT * FROM items WHERE w_id = 2 AND i_id > 100 ORDER BY w_id, i_id LIMIT 10", 10)
}

// openJoinBenchDB extends the scan-bench dataset with a small warehouses
// table so join benchmarks exercise the nested-loop operator over the
// batch pipeline: an outer scan fanning out to per-row inner lookups.
func openJoinBenchDB(b *testing.B) (*globaldb.DB, *gsql.Session) {
	b.Helper()
	cfg := globaldb.OneRegion(0)
	cfg.TimeScale = 0.02
	cfg.Shards = 4
	db, s := openScanBenchDB(b, cfg, cfg.Regions[0])
	if _, err := s.Exec(context.Background(), `CREATE TABLE warehouses (
		w_id BIGINT, name TEXT, PRIMARY KEY (w_id)
	) SHARD BY w_id`); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Exec(context.Background(),
		"INSERT INTO warehouses VALUES (1, 'xian'), (2, 'dongguan'), (3, 'shenyang'), (4, 'spare')"); err != nil {
		b.Fatal(err)
	}
	return db, s
}

// joinBenchSetStrategy pins the session's join strategy for a benchmark.
func joinBenchSetStrategy(b *testing.B, s *gsql.Session, mode string) {
	b.Helper()
	if _, err := s.Exec(context.Background(), "SET JOIN = "+mode); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkJoinFilteredLookup joins the DN-filtered item scan to its
// warehouse row. The full warehouse PK is bound by the ON clause, so AUTO
// pushes the lookup into the outer fragment: data nodes filter items,
// read the matching warehouse row locally, and ship already-joined rows —
// wan-rows/op equals the 200 matches instead of paying one inner RPC per
// surviving outer row.
func BenchmarkJoinFilteredLookup(b *testing.B) {
	db, s := openJoinBenchDB(b)
	benchScanQuery(b, db, s,
		"SELECT i.i_id, w.name FROM items i JOIN warehouses w ON w.w_id = i.w_id WHERE i.qty >= 90", 200)
}

// BenchmarkJoinFilteredLookupHash is the same query forced through the CN
// hash join: the 4-row warehouse side is materialized once and probed per
// outer batch, eliminating the nested loop's per-outer-row inner lookups —
// the allocs/op reduction gated by TestAllocBudgetJoin.
func BenchmarkJoinFilteredLookupHash(b *testing.B) {
	db, s := openJoinBenchDB(b)
	joinBenchSetStrategy(b, s, "HASH")
	benchScanQuery(b, db, s,
		"SELECT i.i_id, w.name FROM items i JOIN warehouses w ON w.w_id = i.w_id WHERE i.qty >= 90", 200)
}

// BenchmarkJoinFilteredLookupNestLoop is the same query on the legacy
// nested loop — one inner PK lookup RPC per surviving outer row — kept as
// the before-side of the join-engine comparison.
func BenchmarkJoinFilteredLookupNestLoop(b *testing.B) {
	db, s := openJoinBenchDB(b)
	joinBenchSetStrategy(b, s, "NESTLOOP")
	benchScanQuery(b, db, s,
		"SELECT i.i_id, w.name FROM items i JOIN warehouses w ON w.w_id = i.w_id WHERE i.qty >= 90", 200)
}

// BenchmarkJoinFanout drives the join from the small side: 4 warehouse
// rows each fan out to a 500-row inner item scan. The lookup key binds
// only the items PK prefix and the outer is tiny, so AUTO keeps the
// batch-native nested loop — its 4 pushed range scans already ship
// O(matching) rows, and fusing the join would re-encode every joined row.
func BenchmarkJoinFanout(b *testing.B) {
	db, s := openJoinBenchDB(b)
	benchScanQuery(b, db, s,
		"SELECT w.name, i.i_id FROM warehouses w JOIN items i ON i.w_id = w.w_id", scanBenchRows)
}

// ---- Scan latency benchmarks (prefetch pipeline) ----
//
// These measure wall-clock latency — time-to-first-row and full-drain
// time — of cross-region scans under the paper's three-city RTT triangle
// (25/35/55 ms, time-scaled), comparing the synchronous paged cursor
// (ScanOpts.Prefetch < 0) against the pipelined prefetcher (default).
// The structural claims they quantify:
//
//   - merged K-shard TTFR: every shard's first page travels in parallel,
//     so the first batch arrives after ~1 (maximum) RTT instead of the
//     sum of per-shard RTTs the serial refill pays;
//   - multi-page drain: page N+1 is requested the moment page N's resume
//     key arrives, and the K shard pipelines run concurrently, so a drain
//     approaches pages-per-shard x max-RTT instead of total-pages x RTT.
//
// Row counters are identical in both modes — prefetching only reorders
// when the same pages are requested. Results are recorded in CHANGES.md
// as "bench: <name> ttfr=<ms> drain=<ms> (sync ttfr=<ms> drain=<ms>)".

// latencyBenchWarehouses spreads latencyBenchRows over this many
// single-shard warehouses across the three cities' 8 shards.
const (
	latencyBenchWarehouses    = 8
	latencyBenchRowsPerW      = 300
	latencyBenchFirstPageHint = 32 // small first page => several pages per shard
)

// openLatencyBenchDB builds the three-city cluster with 8 shards and a
// typed items table of 8 warehouses x 300 rows, returning a session homed
// in Xi'an (so roughly two thirds of the shards are across the WAN).
func openLatencyBenchDB(b *testing.B) (*globaldb.DB, *globaldb.Session) {
	b.Helper()
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.02
	cfg.Shards = 8
	db, err := globaldb.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	sch := &globaldb.Schema{
		Name: "items",
		Columns: []globaldb.Column{
			{Name: "w_id", Kind: globaldb.Int64},
			{Name: "i_id", Kind: globaldb.Int64},
			{Name: "qty", Kind: globaldb.Int64},
		},
		PK: []int{0, 1},
	}
	ctx := context.Background()
	if err := db.CreateTable(ctx, sch); err != nil {
		b.Fatal(err)
	}
	sess, err := db.Connect("xian")
	if err != nil {
		b.Fatal(err)
	}
	for w := 1; w <= latencyBenchWarehouses; w++ {
		for base := 1; base <= latencyBenchRowsPerW; base += 100 {
			tx, err := sess.Begin(ctx)
			if err != nil {
				b.Fatal(err)
			}
			for i := base; i < base+100 && i <= latencyBenchRowsPerW; i++ {
				if err := tx.Insert(ctx, "items", globaldb.Row{int64(w), int64(i), int64(i % 97)}); err != nil {
					b.Fatal(err)
				}
			}
			if err := tx.Commit(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	return db, sess
}

// remoteWarehouse picks a warehouse whose shard primary is in Dongguan —
// the city farthest from Xi'an (55 ms RTT) — so the single-shard scan
// crosses the widest link.
func remoteWarehouse(b *testing.B, db *globaldb.DB) int64 {
	b.Helper()
	primaries := db.Cluster().Primaries()
	for w := int64(1); w <= latencyBenchWarehouses; w++ {
		if primaries[db.Cluster().ShardOf(w)].Region() == "dongguan" {
			return w
		}
	}
	b.Fatal("no warehouse hashes to a dongguan shard")
	return 0
}

// benchScanLatency runs the scan b.N times on primaries via a read-write
// transaction (deterministic WAN routing), reporting mean time-to-first-
// row and full-drain wall time.
func benchScanLatency(b *testing.B, merged bool, prefetch int) {
	db, sess := openLatencyBenchDB(b)
	ctx := context.Background()
	w := remoteWarehouse(b, db)
	wantRows := latencyBenchRowsPerW
	if merged {
		wantRows = latencyBenchWarehouses * latencyBenchRowsPerW
	}
	opts := globaldb.ScanOpts{PageSize: latencyBenchFirstPageHint, Prefetch: prefetch}
	var ttfr, drain time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := sess.Begin(ctx)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		var rows *globaldb.Rows
		if merged {
			rows, err = tx.ScanTableRows(ctx, "items", opts)
		} else {
			rows, err = tx.ScanPKRows(ctx, "items", []any{w}, opts)
		}
		if err != nil {
			b.Fatal(err)
		}
		if !rows.Next() {
			b.Fatalf("no first row: %v", rows.Err())
		}
		ttfr += time.Since(start)
		n := 1
		for rows.Next() {
			n++
		}
		drain += time.Since(start)
		rows.Close()
		if rows.Err() != nil || n != wantRows {
			b.Fatalf("drained %d rows (want %d), err=%v", n, wantRows, rows.Err())
		}
		_ = tx.Abort(ctx)
	}
	b.StopTimer()
	b.ReportMetric(float64(ttfr.Microseconds())/float64(b.N)/1e3, "ttfr-ms")
	b.ReportMetric(float64(drain.Microseconds())/float64(b.N)/1e3, "drain-ms")
}

// BenchmarkScanLatencyThreeCity drains one remote shard (Xi'an -> Dongguan,
// the triangle's 55 ms edge) across several pages: sync pays RTT + decode
// per page serially, prefetch overlaps the next page's round trip with
// consumption of the current one.
func BenchmarkScanLatencyThreeCity(b *testing.B) {
	b.Run("sync", func(b *testing.B) { benchScanLatency(b, false, -1) })
	b.Run("prefetch", func(b *testing.B) { benchScanLatency(b, false, 0) })
}

// BenchmarkScanLatencyThreeCityMerged drains the key-order merge of all 8
// shards across three cities. Sync opens and refills the shard cursors one
// at a time — TTFR is the *sum* of the per-shard first-page RTTs and the
// drain is total-pages x RTT; prefetch runs all shard pipelines
// concurrently — TTFR is ~1 max-RTT and the drain approaches
// pages-per-shard x max-RTT.
func BenchmarkScanLatencyThreeCityMerged(b *testing.B) {
	b.Run("sync", func(b *testing.B) { benchScanLatency(b, true, -1) })
	b.Run("prefetch", func(b *testing.B) { benchScanLatency(b, true, 0) })
	// The leading PK column is the warehouse, so the key-order merge
	// consumes shard runs one after another; a deeper window lets idle
	// shards pipeline further ahead while an earlier shard drains.
	b.Run("prefetch-window3", func(b *testing.B) { benchScanLatency(b, true, 3) })
}

// BenchmarkRCPCompute measures the Fig. 4 RCP calculation over a large
// replica set — the operation the designated CN performs on every poll.
func BenchmarkRCPCompute(b *testing.B) {
	perShard := make(map[int][]ts.Timestamp, 64)
	for shard := 0; shard < 64; shard++ {
		for r := 0; r < 3; r++ {
			perShard[shard] = append(perShard[shard], ts.Timestamp(shard*1000+r))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := rcp.ComputeRCP(perShard); got == 0 {
			b.Fatal("rcp must be non-zero")
		}
	}
}

// BenchmarkSkylineSelect measures Fig. 5 node selection over a realistic
// candidate set — executed per shard access on the ROR path.
func BenchmarkSkylineSelect(b *testing.B) {
	var cands []ror.Candidate
	for i := 0; i < 12; i++ {
		cands = append(cands, ror.Candidate{
			Node:      fmt.Sprintf("n%d", i),
			Staleness: time.Duration(i) * time.Millisecond,
			Latency:   time.Duration(12-i) * time.Millisecond,
			Load:      int64(i % 4),
			Healthy:   i%7 != 6,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ror.Select(cands, 50*time.Millisecond); !ok {
			b.Fatal("selection failed")
		}
	}
}
