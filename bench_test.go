// Macro-benchmarks: one per table/figure in the paper's evaluation
// (Sec. V). Each runs the corresponding experiment at Quick parameters and
// reports throughput via b.ReportMetric, so `go test -bench=.` regenerates
// every figure's data. EXPERIMENTS.md records paper-vs-measured shapes;
// `cmd/globaldb-bench -full` runs the longer sweeps.
package globaldb_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"globaldb/internal/experiments"
	"globaldb/internal/harness"
	"globaldb/internal/rcp"
	"globaldb/internal/ror"
	"globaldb/internal/ts"
)

// benchParams shrinks Quick further so the full -bench=. pass stays fast.
func benchParams() experiments.Params {
	p := experiments.Quick()
	p.Clients = 16
	p.Duration = 300 * time.Millisecond
	p.Warmup = 100 * time.Millisecond
	p.RTTs = []time.Duration{0, 100 * time.Millisecond}
	p.TPCC.Warehouses = 4
	p.TPCC.Districts = 3
	p.TPCC.CustomersPerDistrict = 12
	p.TPCC.Items = 30
	p.TPCC.InitialOrdersPerDistrict = 6
	p.Sysbench.Tables = 3
	p.Sysbench.RowsPerTable = 90
	p.Shards = 4
	return p
}

func reportSeries(b *testing.B, s harness.Series) {
	b.Helper()
	b.Log(s.Table())
	if len(s.Results) > 0 {
		last := s.Results[len(s.Results)-1]
		b.ReportMetric(last.Throughput, "tx/s@maxRTT")
	}
}

// BenchmarkFig1aTPCCDegradation regenerates Fig. 1a: baseline TPC-C
// throughput versus cluster round-trip latency.
func BenchmarkFig1aTPCCDegradation(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig1a(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, s)
	}
}

// BenchmarkFig6aTPCCSync regenerates Fig. 6a: TPC-C under synchronous
// replication, One-Region vs Three-City, baseline vs GlobalDB.
func BenchmarkFig6aTPCCSync(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig6a(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		b.Log(s.Table())
		if len(s.Results) == 4 {
			b.ReportMetric(s.Results[3].Throughput, "globaldb-3city-tx/s")
			b.ReportMetric(s.Results[2].Throughput, "baseline-3city-tx/s")
		}
	}
}

// BenchmarkFig6bTPCCAsync regenerates Fig. 6b: TPC-C with asynchronous
// replication over the RTT sweep, baseline vs GlobalDB.
func BenchmarkFig6bTPCCAsync(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig6b(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			b.Log(s.Table())
		}
		if len(series) == 2 {
			base := series[0].Results[len(series[0].Results)-1].Throughput
			gdb := series[1].Results[len(series[1].Results)-1].Throughput
			b.ReportMetric(gdb/base, "speedup@maxRTT")
		}
	}
}

// BenchmarkFig6cTPCCReadOnly regenerates Fig. 6c: the modified read-only
// TPC-C (Order-Status + Stock-Level, 50% multi-shard).
func BenchmarkFig6cTPCCReadOnly(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig6c(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			b.Log(s.Table())
		}
		if len(series) == 2 {
			base := series[0].Results[len(series[0].Results)-1].Throughput
			gdb := series[1].Results[len(series[1].Results)-1].Throughput
			b.ReportMetric(gdb/base, "speedup@maxRTT")
		}
	}
}

// BenchmarkFig6dSysbenchPointSelect regenerates Fig. 6d: Sysbench point
// select with 2/3 remote tuples.
func BenchmarkFig6dSysbenchPointSelect(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig6d(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			b.Log(s.Table())
		}
		if len(series) == 2 {
			base := series[0].Results[len(series[0].Results)-1].Throughput
			gdb := series[1].Results[len(series[1].Results)-1].Throughput
			b.ReportMetric(gdb/base, "speedup@maxRTT")
		}
	}
}

// BenchmarkTransitionUnderLoad regenerates the Sec. III-A zero-downtime
// demonstration: TPC-C throughput sampled across a GTM→GClock→GTM cycle.
func BenchmarkTransitionUnderLoad(b *testing.B) {
	p := benchParams()
	p.Clients = 8
	for i := 0; i < b.N; i++ {
		counts, err := experiments.TransitionTimeline(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		min := counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
		}
		b.Logf("per-window commits: %v", counts)
		b.ReportMetric(float64(min), "min-window-commits")
	}
}

// BenchmarkRCPCompute measures the Fig. 4 RCP calculation over a large
// replica set — the operation the designated CN performs on every poll.
func BenchmarkRCPCompute(b *testing.B) {
	perShard := make(map[int][]ts.Timestamp, 64)
	for shard := 0; shard < 64; shard++ {
		for r := 0; r < 3; r++ {
			perShard[shard] = append(perShard[shard], ts.Timestamp(shard*1000+r))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := rcp.ComputeRCP(perShard); got == 0 {
			b.Fatal("rcp must be non-zero")
		}
	}
}

// BenchmarkSkylineSelect measures Fig. 5 node selection over a realistic
// candidate set — executed per shard access on the ROR path.
func BenchmarkSkylineSelect(b *testing.B) {
	var cands []ror.Candidate
	for i := 0; i < 12; i++ {
		cands = append(cands, ror.Candidate{
			Node:      fmt.Sprintf("n%d", i),
			Staleness: time.Duration(i) * time.Millisecond,
			Latency:   time.Duration(12-i) * time.Millisecond,
			Load:      int64(i % 4),
			Healthy:   i%7 != 6,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ror.Select(cands, 50*time.Millisecond); !ok {
			b.Fatal("selection failed")
		}
	}
}
