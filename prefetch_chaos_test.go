package globaldb

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestPrefetchChaosNoLeaksNoCorruption hammers the scan prefetcher with
// the three ways a scan can end before its pages do — early Rows.Close
// mid-prefetch, context cancellation during an in-flight page, and LIMIT
// early termination — from concurrent goroutines, then asserts two things:
//
//  1. No goroutine leaks: every per-shard prefetch goroutine must be
//     joined by Close (or by drain), so the process goroutine count
//     returns to its pre-chaos baseline.
//  2. No recycled-memory corruption: rows retained from early batches must
//     keep their decoded values after later pages were prefetched and
//     after the Rows is closed — a prefetched page landing mid-consumption
//     must never touch memory an earlier batch still references.
//
// Run under -race (the CI race job does) this also exercises the
// prefetcher's channel handoffs, the Txn.done flag racing Commit/Abort,
// and concurrent skyline picks from sibling shard prefetchers.
func TestPrefetchChaosNoLeaksNoCorruption(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, accountsSchema()); err != nil {
		t.Fatal(err)
	}
	sess, err := db.Connect("xian")
	if err != nil {
		t.Fatal(err)
	}
	const rows = 96
	for i := 0; i < rows; i += 16 {
		tx, err := sess.Begin(bg)
		if err != nil {
			t.Fatal(err)
		}
		for j := i; j < i+16; j++ {
			if err := tx.Insert(bg, "accounts", Row{int64(j), fmt.Sprintf("acct-%d", j), float64(j)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(bg); err != nil {
			t.Fatal(err)
		}
	}

	verify := func(r Row) error {
		if len(r) != 3 {
			return fmt.Errorf("row width %d", len(r))
		}
		id, ok := r[0].(int64)
		if !ok || id < 0 || id >= rows {
			return fmt.Errorf("bad id %v", r[0])
		}
		if r[1] != fmt.Sprintf("acct-%d", id) || r[2] != float64(id) {
			return fmt.Errorf("row %d corrupted: %v", id, r)
		}
		return nil
	}

	baseline := runtime.NumGoroutine()

	const workers = 6
	const itersPerWorker = 12
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Small pages + a deep window keep several prefetches in
			// flight at every termination point.
			opts := ScanOpts{PageSize: 8, Prefetch: 3}
			for it := 0; it < itersPerWorker; it++ {
				q, err := sess.ReadOnly(bg, AnyStaleness, "accounts")
				if err != nil {
					errCh <- err
					return
				}
				switch it % 4 {
				case 0: // early Close mid-prefetch, retaining decoded rows
					r, err := q.ScanTableRows(bg, "accounts", opts)
					if err != nil {
						errCh <- err
						return
					}
					var kept []Row
					for i := 0; i < 3 && r.Next(); i++ {
						kept = append(kept, r.Row())
					}
					r.Close()
					for _, row := range kept {
						if err := verify(row); err != nil {
							errCh <- fmt.Errorf("retained row after Close: %w", err)
							return
						}
					}
				case 1: // context canceled during an in-flight page
					ctx, cancel := context.WithCancel(bg)
					r, err := q.ScanTableRows(ctx, "accounts", opts)
					if err != nil {
						cancel()
						errCh <- err
						return
					}
					if r.Next() {
						if err := verify(r.Row()); err != nil {
							cancel()
							errCh <- err
							return
						}
					}
					cancel()
					for r.Next() { // must terminate, not hang
					}
					if err := r.Err(); err != nil && !errors.Is(err, context.Canceled) {
						// A page fetched before the cancel may drain
						// cleanly; anything else must be the cancellation.
						errCh <- fmt.Errorf("post-cancel err: %w", err)
						r.Close()
						return
					}
					r.Close()
				case 2: // LIMIT early termination stops the prefetchers
					lo := opts
					lo.Limit = 5
					r, err := q.ScanTableRows(bg, "accounts", lo)
					if err != nil {
						errCh <- err
						return
					}
					n := 0
					for r.Next() {
						if err := verify(r.Row()); err != nil {
							errCh <- err
							return
						}
						n++
					}
					r.Close()
					if r.Err() != nil || n != 5 {
						errCh <- fmt.Errorf("limit drain: n=%d err=%v", n, r.Err())
						return
					}
				case 3: // full drain inside a read-write txn, then abort
					tx, err := sess.Begin(bg)
					if err != nil {
						errCh <- err
						return
					}
					r, err := tx.ScanTableRows(bg, "accounts", opts)
					if err != nil {
						errCh <- err
						return
					}
					n := 0
					for r.Next() {
						if err := verify(r.Row()); err != nil {
							errCh <- err
							return
						}
						n++
					}
					r.Close()
					if r.Err() != nil || n != rows {
						errCh <- fmt.Errorf("full drain: n=%d err=%v", n, r.Err())
						return
					}
					_ = tx.Abort(bg)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Goroutine-count guard: every prefetcher must have been joined. The
	// cluster's own background goroutines (shippers, collector) are in the
	// baseline; allow a little slack for unrelated runtime churn.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
