// Command tpcc runs the TPC-C benchmark against an in-process GlobalDB
// cluster with configurable topology, system (baseline or globaldb), scale,
// and locality.
//
// Usage:
//
//	tpcc -system globaldb -topology threecity -warehouses 8 -clients 32 -duration 2s
//	tpcc -system baseline -topology oneregion -rtt 50ms -remote-pct 10
//	tpcc -readonly -multishard-pct 50       # the paper's Fig. 6c workload
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"globaldb"
	"globaldb/internal/coordinator"
	"globaldb/internal/harness"
	"globaldb/internal/repl"
	"globaldb/internal/ts"
	"globaldb/internal/workload/tpcc"
)

func main() {
	var (
		system     = flag.String("system", "globaldb", "baseline (GTM, primary reads) or globaldb (GClock, ROR)")
		topology   = flag.String("topology", "threecity", "threecity or oneregion")
		rtt        = flag.Duration("rtt", 50*time.Millisecond, "injected RTT for -topology oneregion")
		scale      = flag.Float64("timescale", 0.2, "simulated-delay scale factor")
		warehouses = flag.Int("warehouses", 6, "TPC-C warehouses")
		clients    = flag.Int("clients", 24, "concurrent terminals")
		duration   = flag.Duration("duration", 2*time.Second, "measured window")
		warmup     = flag.Duration("warmup", 500*time.Millisecond, "warmup before measuring")
		remotePct  = flag.Int("remote-pct", 0, "percent of New-Order/Payment touching a remote warehouse")
		syncRepl   = flag.Bool("sync", false, "synchronous (quorum) replication")
		readonly   = flag.Bool("readonly", false, "run the read-only variant (Order-Status + Stock-Level)")
		multiPct   = flag.Int("multishard-pct", 50, "percent of read-only queries on a non-home warehouse")
	)
	flag.Parse()

	var cfg globaldb.Config
	switch *topology {
	case "threecity":
		cfg = globaldb.ThreeCity()
	case "oneregion":
		cfg = globaldb.OneRegion(*rtt)
	default:
		fmt.Fprintf(os.Stderr, "tpcc: unknown topology %q\n", *topology)
		os.Exit(2)
	}
	cfg.TimeScale = *scale
	useROR := false
	switch *system {
	case "globaldb":
		cfg.Mode = ts.ModeGClock
		cfg.Shipper = repl.DefaultShipperConfig()
		useROR = true
	case "baseline":
		cfg.Mode = ts.ModeGTM
		cfg.Shipper = repl.BaselineShipperConfig()
	default:
		fmt.Fprintf(os.Stderr, "tpcc: unknown system %q\n", *system)
		os.Exit(2)
	}
	if *syncRepl {
		cfg.ReplMode = repl.SyncQuorum
		cfg.Quorum = cfg.ReplicasPerShard
	}

	db, err := globaldb.Open(cfg)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	tc := tpcc.DefaultConfig()
	tc.Warehouses = *warehouses
	tc.RemotePct = *remotePct
	d := tpcc.New(db, tc)

	ctx := context.Background()
	fmt.Printf("loading TPC-C: %d warehouses on %s (%s mode, repl %v)...\n",
		tc.Warehouses, *topology, cfg.Mode, cfg.ReplMode)
	if err := d.CreateTables(ctx); err != nil {
		fatal(err)
	}
	if err := d.Load(ctx); err != nil {
		fatal(err)
	}

	var work harness.Workload
	if *readonly {
		work = func(ctx context.Context, client int) error {
			return d.ReadOnlyTerminal(client, *multiPct, useROR, coordinator.AnyStaleness)(ctx)
		}
	} else {
		work = func(ctx context.Context, client int) error {
			return d.Terminal(client)(ctx)
		}
	}

	fmt.Printf("running %d terminals for %v (warmup %v)...\n", *clients, *duration, *warmup)
	res := harness.Run(ctx, harness.Options{
		Name: fmt.Sprintf("tpcc/%s/%s", *system, *topology), Clients: *clients,
		Duration: *duration, Warmup: *warmup,
	}, work)
	fmt.Println(res)

	if !*readonly {
		if err := d.ConsistencyCheck(ctx); err != nil {
			fatal(fmt.Errorf("consistency check failed: %w", err))
		}
		fmt.Println("consistency check: OK")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpcc:", err)
	os.Exit(1)
}
