// Command gsql is an interactive SQL shell against an in-process GlobalDB
// cluster. It demonstrates the full stack the paper describes: a computing
// node parsing and planning SQL, sharded primaries with asynchronous
// geo-replication, clock-based transaction management, and read-on-replica
// queries with tunable staleness.
//
// Usage:
//
//	gsql [-topology three-city|one-region] [-region xian] [-timescale 0.05] [-staleness any|50ms]
//
// Statement boundaries are detected with the gsql lexer (a ';' inside a
// string literal does not end a statement), and buffers are executed with
// gsql.Session.ExecScript, so the REPL and the library parse identically.
// Statements end with ';'. Try:
//
//	CREATE TABLE kv (k BIGINT, v TEXT, PRIMARY KEY (k));
//	INSERT INTO kv VALUES (1, 'hello'), (2, 'world');
//	SELECT * FROM kv WHERE k = 1;
//	SET STALENESS = ANY;          -- route reads to asynchronous replicas
//	EXPLAIN SELECT * FROM kv WHERE k = 1;
//	\explain SELECT * FROM kv WHERE k = 1   -- shortcut, no ';' needed
//	SHOW TABLES; SHOW MODE; SHOW REGIONS;
//
// EXPLAIN prints the planned DN-partial / CN-final split: which filters,
// projections and partial aggregates run on the data nodes versus the
// computing node. After each SELECT the shell reports the per-layer scan
// counters (rows read at storage, rows dropped at the data nodes, rows
// shipped over the WAN), so pushdown wins are visible interactively.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"globaldb"
	"globaldb/gsql"
)

func main() {
	topology := flag.String("topology", "three-city", "cluster topology: three-city or one-region")
	region := flag.String("region", "", "home region for the session (default: first region)")
	timescale := flag.Float64("timescale", 0.05, "network time scale (1.0 = real WAN latencies)")
	rtt := flag.Duration("rtt", 10*time.Millisecond, "injected RTT for the one-region topology")
	staleness := flag.String("staleness", "", "session staleness: none (primary reads), any, or a duration like 50ms")
	flag.Parse()

	var cfg globaldb.Config
	switch *topology {
	case "three-city":
		cfg = globaldb.ThreeCity()
	case "one-region":
		cfg = globaldb.OneRegion(*rtt)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topology)
		os.Exit(2)
	}
	cfg.TimeScale = *timescale

	db, err := globaldb.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer db.Close()

	home := *region
	if home == "" {
		home = db.Regions()[0]
	}
	sess, err := gsql.Connect(db, home)
	if err != nil {
		fmt.Fprintln(os.Stderr, "connect:", err)
		os.Exit(1)
	}
	ctx := context.Background()
	if *staleness != "" && *staleness != "none" {
		if _, err := sess.Exec(ctx, fmt.Sprintf("SET STALENESS = '%s'", *staleness)); err != nil {
			// ANY is a keyword value, not a duration string.
			if _, err2 := sess.Exec(ctx, "SET STALENESS = "+*staleness); err2 != nil {
				fmt.Fprintln(os.Stderr, "staleness:", err)
				os.Exit(2)
			}
		}
	}

	fmt.Printf("GlobalDB SQL shell — %s topology, session homed in %s (mode %v)\n",
		*topology, home, db.Mode())
	fmt.Println(`Statements end with ';'. Type \q to quit, \explain <select> to show the DN/CN plan split.`)

	runScript := func(script string) {
		start := time.Now()
		res, err := sess.ExecScript(ctx, script)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Print(gsql.FormatTable(res))
		if len(res.Columns) == 0 {
			return
		}
		where := "primaries"
		if res.OnReplicas {
			where = "replicas (RCP snapshot)"
		}
		fmt.Printf("read from %s — %v\n", where, time.Since(start).Round(time.Microsecond))
		if sc := res.Scan; sc.StorageRows > 0 {
			fmt.Printf("scan: storage=%d rows, filtered at DN=%d, shipped over WAN=%d\n",
				sc.StorageRows, sc.DNFilteredRows, sc.WANRows)
		}
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Printf("%s> ", home)
		} else {
			fmt.Printf("%s. ", strings.Repeat(" ", len(home)-1))
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == `\q` || trimmed == "quit" || trimmed == "exit") {
			break
		}
		// \explain <stmt> runs immediately as EXPLAIN, no terminator needed.
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\explain`) {
			q := strings.TrimSpace(strings.TrimPrefix(trimmed, `\explain`))
			if q == "" {
				fmt.Println(`usage: \explain SELECT ...`)
			} else {
				runScript("EXPLAIN " + strings.TrimSuffix(q, ";") + ";")
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if gsql.StatementsComplete(buf.String()) {
			script := buf.String()
			buf.Reset()
			runScript(script)
		}
		prompt()
	}
	fmt.Println()
}
