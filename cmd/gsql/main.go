// Command gsql is an interactive SQL shell against an in-process GlobalDB
// cluster. It demonstrates the full stack the paper describes: a computing
// node parsing and planning SQL, sharded primaries with asynchronous
// geo-replication, clock-based transaction management, and read-on-replica
// queries with tunable staleness.
//
// Usage:
//
//	gsql [-topology three-city|one-region] [-region xian] [-timescale 0.05] [-staleness any|50ms]
//
// Statement boundaries are detected with the gsql lexer (a ';' inside a
// string literal does not end a statement), and buffers are executed with
// gsql.Session.ExecScript, so the REPL and the library parse identically.
// Statements end with ';'. Try:
//
//	CREATE TABLE kv (k BIGINT, v TEXT, PRIMARY KEY (k));
//	INSERT INTO kv VALUES (1, 'hello'), (2, 'world');
//	SELECT * FROM kv WHERE k = 1;
//	SET STALENESS = ANY;          -- route reads to asynchronous replicas
//	EXPLAIN SELECT * FROM kv WHERE k = 1;
//	\explain SELECT * FROM kv WHERE k = 1   -- shortcut, no ';' needed
//	SHOW TABLES; SHOW MODE; SHOW REGIONS;
//
// Prepared statements are available through shell meta-commands:
//
//	\prepare p1 SELECT * FROM kv WHERE k = ?
//	\exec p1 1
//	\exec p1 2
//
// \exec binds the space-separated arguments (integers, floats, 'quoted
// strings', true/false, NULL) to the statement's placeholders and executes
// the cached plan — no reparse, no replan.
//
// EXPLAIN prints the planned DN-partial / CN-final split: which filters,
// projections and partial aggregates run on the data nodes versus the
// computing node. After each SELECT — ad-hoc or prepared — the shell
// reports the per-layer scan counters (rows read at storage, rows dropped
// at the data nodes, rows shipped over the WAN), so pushdown wins are
// visible interactively.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"globaldb"
	"globaldb/driver"
	"globaldb/gsql"
	"globaldb/internal/obs"
	"globaldb/internal/stats"
)

// shellStmt is a prepared statement as the REPL needs it. *gsql.Stmt
// (in-process) and *driver.ClientStmt (network) both satisfy it.
type shellStmt interface {
	NumParams() int
	Exec(ctx context.Context, args ...any) (*gsql.Result, error)
	Close() error
}

// shellBackend is the session surface the REPL runs against: script
// execution and prepared statements, both answering gsql.Result so the
// result tables and scan-counter lines print identically whether the
// cluster is in this process or across a socket.
type shellBackend interface {
	ExecScript(ctx context.Context, sql string) (*gsql.Result, error)
	Prepare(ctx context.Context, sql string) (shellStmt, error)
	// SetTrace toggles per-statement span tracing; it reports false when
	// the backend cannot trace (traces do not cross the wire protocol).
	SetTrace(on bool) bool
}

// localBackend adapts an in-process gsql session.
type localBackend struct{ sess *gsql.Session }

func (b localBackend) ExecScript(ctx context.Context, sql string) (*gsql.Result, error) {
	return b.sess.ExecScript(ctx, sql)
}
func (b localBackend) Prepare(ctx context.Context, sql string) (shellStmt, error) {
	return b.sess.Prepare(ctx, sql)
}
func (b localBackend) SetTrace(on bool) bool {
	b.sess.SetTrace(on)
	return true
}

// netBackend adapts a wire-protocol client session.
type netBackend struct{ sess *driver.ClientSession }

func (b netBackend) ExecScript(ctx context.Context, sql string) (*gsql.Result, error) {
	return b.sess.ExecScript(ctx, sql)
}
func (b netBackend) Prepare(ctx context.Context, sql string) (shellStmt, error) {
	return b.sess.Prepare(ctx, sql)
}
func (b netBackend) SetTrace(bool) bool { return false }

func main() {
	topology := flag.String("topology", "three-city", "cluster topology: three-city or one-region")
	region := flag.String("region", "", "home region for the session (default: first region)")
	timescale := flag.Float64("timescale", 0.05, "network time scale (1.0 = real WAN latencies)")
	rtt := flag.Duration("rtt", 10*time.Millisecond, "injected RTT for the one-region topology")
	staleness := flag.String("staleness", "", "session staleness: none (primary reads), any, or a duration like 50ms")
	connect := flag.String("connect", "", "connect to a globaldb-server at host:port instead of an in-process cluster")
	flag.Parse()

	ctx := context.Background()
	var backend shellBackend
	var home string

	if *connect != "" {
		cs, err := driver.Dial(ctx, *connect, driver.Config{Region: *region})
		if err != nil {
			fmt.Fprintln(os.Stderr, "connect:", err)
			os.Exit(1)
		}
		defer cs.Close()
		backend, home = netBackend{cs}, cs.Region()
		fmt.Printf("GlobalDB SQL shell — connected to %s, session homed in %s (mode %s)\n",
			*connect, home, cs.Mode())
	} else {
		var cfg globaldb.Config
		switch *topology {
		case "three-city":
			cfg = globaldb.ThreeCity()
		case "one-region":
			cfg = globaldb.OneRegion(*rtt)
		default:
			fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topology)
			os.Exit(2)
		}
		cfg.TimeScale = *timescale

		db, err := globaldb.Open(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "open:", err)
			os.Exit(1)
		}
		defer db.Close()

		home = *region
		if home == "" {
			home = db.Regions()[0]
		}
		sess, err := gsql.Connect(db, home)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connect:", err)
			os.Exit(1)
		}
		backend = localBackend{sess}
		fmt.Printf("GlobalDB SQL shell — %s topology, session homed in %s (mode %v)\n",
			*topology, home, db.Mode())
	}

	if *staleness != "" && *staleness != "none" {
		if _, err := backend.ExecScript(ctx, fmt.Sprintf("SET STALENESS = '%s';", *staleness)); err != nil {
			// ANY is a keyword value, not a duration string.
			if _, err2 := backend.ExecScript(ctx, "SET STALENESS = "+*staleness+";"); err2 != nil {
				fmt.Fprintln(os.Stderr, "staleness:", err)
				os.Exit(2)
			}
		}
	}

	fmt.Println(`Statements end with ';'. Type \q to quit, \explain <select> to show the DN/CN plan split,` + "\n" +
		`\prepare <name> <stmt with ? placeholders> then \exec <name> <args...> for prepared statements,` + "\n" +
		`\trace to toggle per-statement span tracing, EXPLAIN ANALYZE <select> for a one-shot trace.`)

	runREPL(ctx, backend, home, os.Stdin, os.Stdout)
	fmt.Println()
}

// reportResult prints a statement's result table plus, for reads, where it
// was served and the per-layer scan counters. It is shared by the ad-hoc
// and prepared execution paths, so `\exec` reports the same
// storage/DN-filtered/WAN numbers an ad-hoc SELECT does.
func reportResult(w io.Writer, res *gsql.Result, elapsed time.Duration, commits stats.CommitPathSnapshot) {
	fmt.Fprint(w, gsql.FormatTable(res))
	// Write statements report their slice of the commit path: how many
	// transactions the statement committed and what they cost at the WAL
	// (fsyncs after group coalescing) and in 2PC (background resolutions).
	// The numbers are an interval delta on the process-wide registry, so a
	// statement that committed nothing prints nothing.
	if commits.Commits > 0 {
		fmt.Fprintf(w, "commit: n=%d, wal fsyncs=%d (%.2f/commit, %d saved), async-2pc=%d\n",
			commits.Commits, commits.Fsyncs, commits.FsyncsPerCommit(),
			commits.FsyncsSaved, commits.AsyncResolves)
	}
	if len(res.Columns) == 0 {
		return
	}
	where := "primaries"
	if res.OnReplicas {
		where = "replicas (RCP snapshot)"
	}
	fmt.Fprintf(w, "read from %s — %v\n", where, elapsed.Round(time.Microsecond))
	// Joins name the physical strategy the engine picked (AUTO resolves
	// per statement) and, for pushed lookup joins, how many inner rows the
	// data nodes read locally instead of shipping.
	if res.JoinStrategy != "" {
		fmt.Fprintf(w, "join: strategy=%s", res.JoinStrategy)
		if res.Scan.LookupRows > 0 {
			fmt.Fprintf(w, ", dn-lookup rows=%d", res.Scan.LookupRows)
		}
		fmt.Fprintln(w)
	}
	// The two counter lines share one gate so they always appear as a
	// pair: the per-layer row counters, then WAN latency observability —
	// page RPCs issued, pages already prefetched when the executor asked
	// for them (round trips hidden behind consumption) with the hit rate,
	// and the total time actually spent blocked on the network as a share
	// of the statement's wall time. An empty scan (zero storage rows)
	// still pays at least one page RPC and reports it.
	if sc := res.Scan; sc.StorageRows > 0 || sc.PagesFetched > 0 {
		fmt.Fprintf(w, "scan: storage=%d rows, filtered at DN=%d, shipped over WAN=%d\n",
			sc.StorageRows, sc.DNFilteredRows, sc.WANRows)
		hitRate := 0.0
		if sc.PagesFetched > 0 {
			hitRate = 100 * float64(sc.PrefetchHits) / float64(sc.PagesFetched)
		}
		waitPct := 0.0
		if elapsed > 0 {
			waitPct = 100 * float64(sc.WANWait) / float64(elapsed)
			if waitPct > 100 {
				waitPct = 100
			}
		}
		fmt.Fprintf(w, "wan: pages=%d, prefetch-hits=%d (%.0f%% hit rate), wait=%v (%.0f%% of wall)\n",
			sc.PagesFetched, sc.PrefetchHits, hitRate, sc.WANWait.Round(time.Microsecond), waitPct)
	}
	if len(res.Trace) > 0 {
		fmt.Fprintln(w, "trace:")
		for _, line := range res.Trace {
			fmt.Fprintln(w, "  "+line)
		}
	}
}

// splitExecArgs tokenizes a `\exec` argument string on whitespace while
// keeping 'quoted strings' (with ” as an embedded quote) together, so a
// quoted value may contain spaces.
func splitExecArgs(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		start := i
		if s[i] == '\'' {
			i++
			for i < len(s) {
				if s[i] == '\'' {
					if i+1 < len(s) && s[i+1] == '\'' {
						i += 2 // escaped quote
						continue
					}
					i++
					break
				}
				i++
			}
		} else {
			for i < len(s) && s[i] != ' ' && s[i] != '\t' {
				i++
			}
		}
		out = append(out, s[start:i])
	}
	return out
}

// parseExecArgs converts `\exec` shell arguments to SQL parameter values:
// integers, floats, 'quoted strings', true/false, NULL, and bare words as
// strings.
func parseExecArgs(args []string) []any {
	out := make([]any, 0, len(args))
	for _, a := range args {
		switch {
		case strings.EqualFold(a, "null"):
			out = append(out, nil)
		case strings.EqualFold(a, "true"):
			out = append(out, true)
		case strings.EqualFold(a, "false"):
			out = append(out, false)
		case len(a) >= 2 && a[0] == '\'' && a[len(a)-1] == '\'':
			out = append(out, strings.ReplaceAll(a[1:len(a)-1], "''", "'"))
		default:
			if n, err := strconv.ParseInt(a, 10, 64); err == nil {
				out = append(out, n)
			} else if f, err := strconv.ParseFloat(a, 64); err == nil {
				out = append(out, f)
			} else {
				out = append(out, a)
			}
		}
	}
	return out
}

// runREPL drives the shell loop over the given streams — extracted from
// main so tests can script a session and assert on its output.
func runREPL(ctx context.Context, backend shellBackend, home string, in io.Reader, out io.Writer) {
	prepared := map[string]shellStmt{}
	tracing := false

	runScript := func(script string) {
		before := stats.ReadCommitPath(obs.Default)
		start := time.Now()
		res, err := backend.ExecScript(ctx, script)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		reportResult(out, res, time.Since(start), stats.ReadCommitPath(obs.Default).Sub(before))
	}

	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprintf(out, "%s> ", home)
		} else {
			fmt.Fprintf(out, "%s. ", strings.Repeat(" ", len(home)-1))
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == `\q` || trimmed == "quit" || trimmed == "exit") {
			break
		}
		// \trace toggles per-statement span tracing (local sessions only —
		// traces do not cross the wire protocol).
		if buf.Len() == 0 && trimmed == `\trace` {
			if !backend.SetTrace(!tracing) {
				fmt.Fprintln(out, "trace: not supported over a network connection")
			} else {
				tracing = !tracing
				if tracing {
					fmt.Fprintln(out, "trace: on")
				} else {
					fmt.Fprintln(out, "trace: off")
				}
			}
			prompt()
			continue
		}
		// \explain <stmt> runs immediately as EXPLAIN, no terminator needed.
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\explain`) {
			q := strings.TrimSpace(strings.TrimPrefix(trimmed, `\explain`))
			if q == "" {
				fmt.Fprintln(out, `usage: \explain SELECT ...`)
			} else {
				runScript("EXPLAIN " + strings.TrimSuffix(q, ";") + ";")
			}
			prompt()
			continue
		}
		// \prepare <name> <stmt> caches a parsed-and-planned statement.
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\prepare`) {
			rest := strings.TrimSpace(strings.TrimPrefix(trimmed, `\prepare`))
			name, sql, ok := strings.Cut(rest, " ")
			if !ok || name == "" || strings.TrimSpace(sql) == "" {
				fmt.Fprintln(out, `usage: \prepare <name> <statement with ? or $n placeholders>`)
			} else if st, err := backend.Prepare(ctx, strings.TrimSuffix(strings.TrimSpace(sql), ";")); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				prepared[name] = st
				fmt.Fprintf(out, "prepared %s (%d parameters)\n", name, st.NumParams())
			}
			prompt()
			continue
		}
		// \exec <name> <args...> runs a prepared statement with bound
		// parameters; results and scan counters print exactly as for
		// ad-hoc statements.
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\exec`) {
			fields := splitExecArgs(strings.TrimSpace(strings.TrimPrefix(trimmed, `\exec`)))
			if len(fields) == 0 {
				fmt.Fprintln(out, `usage: \exec <name> <args...>`)
				prompt()
				continue
			}
			st, ok := prepared[fields[0]]
			if !ok {
				fmt.Fprintf(out, "error: no prepared statement %q\n", fields[0])
				prompt()
				continue
			}
			before := stats.ReadCommitPath(obs.Default)
			start := time.Now()
			res, err := st.Exec(ctx, parseExecArgs(fields[1:])...)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				reportResult(out, res, time.Since(start), stats.ReadCommitPath(obs.Default).Sub(before))
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if gsql.StatementsComplete(buf.String()) {
			script := buf.String()
			buf.Reset()
			runScript(script)
		}
		prompt()
	}
}
