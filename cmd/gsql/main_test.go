package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"globaldb"
	"globaldb/driver"
	"globaldb/gsql"
	"globaldb/server"
)

// openShellCluster builds the fast one-region cluster the shell tests use.
func openShellCluster(t *testing.T) *globaldb.DB {
	t.Helper()
	cfg := globaldb.OneRegion(0)
	cfg.TimeScale = 0.02
	cfg.Shards = 2
	db, err := globaldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

// runShell scripts one REPL session against an in-process cluster and
// returns everything the shell printed.
func runShell(t *testing.T, script string) string {
	t.Helper()
	db := openShellCluster(t)
	sess, err := gsql.Connect(db, db.Regions()[0])
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	runREPL(context.Background(), localBackend{sess}, "test", strings.NewReader(script), &out)
	return out.String()
}

// TestShellPreparedScanCounters pins the shell's scan-counter reporting on
// the prepared-statement path: a filtered scan executed via \prepare/\exec
// must print the same storage/DN-filtered/WAN line an ad-hoc SELECT does.
func TestShellPreparedScanCounters(t *testing.T) {
	script := `CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY (k)) SHARD BY k;
INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30), (4, 40), (5, 50);
SELECT * FROM kv WHERE v >= 30;
\prepare getbig SELECT * FROM kv WHERE v >= ?
\exec getbig 30
\exec getbig 50
\exec getbig 'nope'
\q
`
	out := runShell(t, script)

	scanLines, wanLines := 0, 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "scan: storage=") {
			scanLines++
			if !strings.Contains(line, "filtered at DN=") || !strings.Contains(line, "shipped over WAN=") {
				t.Fatalf("malformed scan counter line: %q", line)
			}
		}
		if strings.HasPrefix(line, "wan: pages=") {
			wanLines++
			if !strings.Contains(line, "prefetch-hits=") || !strings.Contains(line, "wait=") {
				t.Fatalf("malformed wan observability line: %q", line)
			}
			// The line also attributes the WAN cost: prefetch hit rate and
			// blocked-on-network time as a share of statement wall time.
			if !strings.Contains(line, "% hit rate)") || !strings.Contains(line, "% of wall)") {
				t.Fatalf("wan line missing hit-rate / wall-share attribution: %q", line)
			}
		}
	}
	// One ad-hoc SELECT plus two successful \exec runs (each reads 5
	// storage rows); the type-error execution reports an error instead.
	if scanLines != 3 {
		t.Fatalf("scan counter lines = %d, want 3 (1 ad-hoc + 2 prepared)\noutput:\n%s", scanLines, out)
	}
	// Every scan line is accompanied by the WAN observability line (pages
	// fetched / prefetch hits / cumulative WAN wait).
	if wanLines != scanLines {
		t.Fatalf("wan observability lines = %d, want %d\noutput:\n%s", wanLines, scanLines, out)
	}
	if !strings.Contains(out, "prepared getbig (1 parameters)") {
		t.Fatalf("missing prepare confirmation:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Fatalf("expected a type error from the string-bound execution:\n%s", out)
	}
	// The two successful prepared runs saw 5 storage rows each and shipped
	// 3 and 1 rows respectively.
	if !strings.Contains(out, "scan: storage=5 rows, filtered at DN=2, shipped over WAN=3") {
		t.Fatalf("missing counters for \\exec getbig 30:\n%s", out)
	}
	if !strings.Contains(out, "scan: storage=5 rows, filtered at DN=4, shipped over WAN=1") {
		t.Fatalf("missing counters for \\exec getbig 50:\n%s", out)
	}
}

// TestShellJoinStrategyLine pins the join reporting: a two-table query
// prints the physical strategy the engine picked, pushed lookup joins add
// the DN-side inner read count, and single-table reads print no join line.
func TestShellJoinStrategyLine(t *testing.T) {
	script := `CREATE TABLE ord (w_id BIGINT, o_id BIGINT, amt BIGINT, PRIMARY KEY (w_id, o_id)) SHARD BY w_id;
CREATE TABLE wh (w_id BIGINT, name TEXT, PRIMARY KEY (w_id)) SHARD BY w_id;
INSERT INTO wh VALUES (1, 'a'), (2, 'b');
INSERT INTO ord VALUES (1, 1, 10), (1, 2, 20), (2, 1, 30);
SELECT o.o_id, w.name FROM ord o JOIN wh w ON w.w_id = o.w_id;
SET JOIN = NESTLOOP;
SELECT o.o_id, w.name FROM ord o JOIN wh w ON w.w_id = o.w_id;
SELECT * FROM ord WHERE w_id = 1;
\q
`
	out := runShell(t, script)
	if !strings.Contains(out, "join: strategy=lookup-pushdown, dn-lookup rows=") {
		t.Fatalf("missing pushed-lookup join line:\n%s", out)
	}
	if !strings.Contains(out, "join: strategy=nested-loop\n") {
		t.Fatalf("missing nested-loop join line:\n%s", out)
	}
	// Exactly the two join queries report a strategy; the single-table
	// SELECT must not.
	if n := strings.Count(out, "join: strategy="); n != 2 {
		t.Fatalf("join strategy lines = %d, want 2:\n%s", n, out)
	}
}

// TestShellCommitPathLine pins the write-path reporting: a committing
// statement prints a commit: line with the interval's WAL fsync cost, and a
// pure read does not.
func TestShellCommitPathLine(t *testing.T) {
	script := `CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY (k)) SHARD BY k;
INSERT INTO kv VALUES (1, 10), (2, 20);
SELECT * FROM kv WHERE v >= 10;
\q
`
	out := runShell(t, script)
	var commitLines, afterSelect int
	sawSelect := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "scan: storage=") {
			sawSelect = true
		}
		if strings.HasPrefix(line, "commit: n=") {
			commitLines++
			if sawSelect {
				afterSelect++
			}
			if !strings.Contains(line, "wal fsyncs=") || !strings.Contains(line, "/commit") {
				t.Fatalf("malformed commit line: %q", line)
			}
		}
	}
	if commitLines == 0 {
		t.Fatalf("no commit: line after the INSERT:\n%s", out)
	}
	if afterSelect != 0 {
		t.Fatalf("read-only SELECT printed a commit line:\n%s", out)
	}
}

// TestShellOverNetwork runs the REPL against a wire server on a real
// socket — the `gsql -connect host:port` path — and requires ad-hoc
// statements, prepared statements, and the scan-counter reporting to
// round-trip exactly as they do in process.
func TestShellOverNetwork(t *testing.T) {
	db := openShellCluster(t)
	srv := server.New(db, server.Options{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	ctx := context.Background()
	cs, err := driver.Dial(ctx, srv.Addr().String(), driver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	if cs.Region() != db.Regions()[0] {
		t.Fatalf("session homed in %q, want %q", cs.Region(), db.Regions()[0])
	}

	// Range predicates, not point gets: scans run the paged pipeline and
	// so carry the per-layer counters the shell reports.
	script := `CREATE TABLE kv (k BIGINT, v TEXT, PRIMARY KEY (k)) SHARD BY k;
INSERT INTO kv VALUES (1, 'hello'), (2, 'world');
SELECT v FROM kv WHERE k >= 2;
\prepare get SELECT v FROM kv WHERE k < ?
\exec get 2
\q
`
	var out strings.Builder
	runREPL(ctx, netBackend{cs}, cs.Region(), strings.NewReader(script), &out)
	got := out.String()

	for _, want := range []string{
		"world", // ad-hoc SELECT round-tripped the socket
		"prepared get (1 parameters)",
		"hello",          // prepared execution bound its arg remotely
		"scan: storage=", // Done-frame counters feed the report line
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("network shell output missing %q:\n%s", want, got)
		}
	}
}

// TestShellTrace toggles \trace on a local session and requires the next
// statement to print a span tree, then verifies toggling off stops it.
func TestShellTrace(t *testing.T) {
	script := `CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY (k)) SHARD BY k;
INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30);
\trace
SELECT * FROM kv WHERE v >= 20;
\trace
SELECT * FROM kv WHERE v >= 20;
\q
`
	out := runShell(t, script)
	if !strings.Contains(out, "trace: on") || !strings.Contains(out, "trace: off") {
		t.Fatalf("missing \\trace toggle confirmations:\n%s", out)
	}
	traced := strings.Count(out, "trace:\n")
	if traced != 1 {
		t.Fatalf("span trees printed = %d, want exactly 1 (second SELECT ran untraced)\noutput:\n%s", traced, out)
	}
	for _, span := range []string{"select", "plan", "execute", "scan-page"} {
		if !strings.Contains(out, span) {
			t.Fatalf("trace output missing span %q:\n%s", span, out)
		}
	}
}

// TestShellTraceOverNetwork pins that \trace against a wire-protocol
// backend reports itself unsupported instead of silently doing nothing.
func TestShellTraceOverNetwork(t *testing.T) {
	db := openShellCluster(t)
	srv := server.New(db, server.Options{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	ctx := context.Background()
	cs, err := driver.Dial(ctx, srv.Addr().String(), driver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	var out strings.Builder
	runREPL(ctx, netBackend{cs}, cs.Region(), strings.NewReader("\\trace\n\\q\n"), &out)
	if !strings.Contains(out.String(), "not supported over a network connection") {
		t.Fatalf("expected unsupported notice for \\trace over the wire:\n%s", out.String())
	}
}

// TestShellPreparedUsageErrors covers the meta-command error paths.
func TestShellPreparedUsageErrors(t *testing.T) {
	out := runShell(t, "\\prepare\n\\exec\n\\exec nosuch 1\n\\q\n")
	for _, want := range []string{
		`usage: \prepare <name>`,
		`usage: \exec <name>`,
		`no prepared statement "nosuch"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestParseExecArgs covers the shell's argument tokenizing and
// argument-to-value conversion, including quoted strings with spaces and
// embedded quotes.
func TestParseExecArgs(t *testing.T) {
	got := parseExecArgs(splitExecArgs("42 -7  2.5 'it''s' true NULL plain 'two words'"))
	want := []any{int64(42), int64(-7), 2.5, "it's", true, nil, "plain", "two words"}
	if len(got) != len(want) {
		t.Fatalf("got %#v, want %d values", got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arg %d = %#v, want %#v", i, got[i], want[i])
		}
	}
}

// TestShellPreparedQuotedArg drives a quoted, space-containing string
// parameter through \prepare/\exec end to end.
func TestShellPreparedQuotedArg(t *testing.T) {
	script := `CREATE TABLE notes (k BIGINT, txt TEXT, PRIMARY KEY (k)) SHARD BY k;
INSERT INTO notes VALUES (1, 'two words'), (2, 'other');
\prepare find SELECT k FROM notes WHERE txt = ?
\exec find 'two words'
\q
`
	out := runShell(t, script)
	if !strings.Contains(out, "(1 rows)") {
		t.Fatalf("quoted-arg execution did not match one row:\n%s", out)
	}
}
