// Command globalctl is an interactive shell over an in-process GlobalDB
// cluster: a quick way to poke at geo-distributed transactions, replica
// reads, and live mode transitions.
//
// Commands:
//
//	put <region> <id> <value>      write a row via the region's CN
//	get <region> <id>              transactional read (primary)
//	rget <region> <id>             read-on-replica at the RCP
//	scan <region> <prefix-id>      scan rows by id
//	mode                           show the transaction management mode
//	togclock | togtm               live transition
//	rcp                            show the replica consistency point
//	stats                          per-CN counters + commit-path (WAL/2PC/repl)
//	stats <host:port>              live snapshot from a globaldb-server
//	quit
package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"globaldb"
	"globaldb/driver"
	"globaldb/internal/obs"
	"globaldb/internal/stats"
)

const tableName = "kv"

func main() {
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.1
	db, err := globaldb.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "globalctl:", err)
		os.Exit(1)
	}
	defer db.Close()

	ctx := context.Background()
	schema := &globaldb.Schema{
		Name: tableName,
		Columns: []globaldb.Column{
			{Name: "id", Kind: globaldb.Int64},
			{Name: "value", Kind: globaldb.String},
		},
		PK: []int{0},
	}
	if err := db.CreateTable(ctx, schema); err != nil {
		fmt.Fprintln(os.Stderr, "globalctl:", err)
		os.Exit(1)
	}

	fmt.Printf("GlobalDB three-city cluster up (regions: %v). Type 'help'.\n", db.Regions())
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("globaldb> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if err := execute(ctx, db, fields); err != nil {
			if err == errQuit {
				return
			}
			fmt.Println("error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

func execute(ctx context.Context, db *globaldb.DB, fields []string) error {
	switch fields[0] {
	case "help":
		fmt.Println("put <region> <id> <value> | get <region> <id> | rget <region> <id> |",
			"scan <region> <id> | mode | togclock | togtm | rcp | stats [host:port] |",
			"placement | advise | move <shard> <region> | quit")
	case "quit", "exit":
		return errQuit
	case "mode":
		fmt.Println("mode:", db.Mode())
	case "togclock":
		if err := db.TransitionToGClock(ctx); err != nil {
			return err
		}
		fmt.Println("transitioned to GClock (zero downtime)")
	case "togtm":
		if err := db.TransitionToGTM(ctx); err != nil {
			return err
		}
		fmt.Println("transitioned to GTM (zero downtime)")
	case "rcp":
		fmt.Println("RCP:", db.Cluster().Collector.RCP())
	case "placement":
		for s := 0; s < db.Cluster().Shards(); s++ {
			fmt.Printf("shard %d primary in %s\n", s, db.Cluster().Primaries()[s].Region())
		}
	case "advise":
		moves := db.AdvisePlacement(globaldb.DefaultPlacementConfig())
		if len(moves) == 0 {
			fmt.Println("no moves advised (traffic is balanced or below threshold)")
		}
		for _, m := range moves {
			fmt.Println(" ", m)
		}
	case "move":
		if len(fields) < 3 {
			return fmt.Errorf("usage: move <shard> <region>")
		}
		shard, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("bad shard %q", fields[1])
		}
		if err := db.MovePrimary(ctx, shard, fields[2]); err != nil {
			return err
		}
		fmt.Printf("shard %d primary now in %s\n", shard, fields[2])
	case "stats":
		// With an address, ask a running globaldb-server for its live
		// counters and statement latency quantiles over the wire; bare
		// `stats` prints this process's per-CN counters.
		if len(fields) >= 2 {
			return remoteStats(ctx, fields[1])
		}
		for _, cn := range db.Cluster().CNs() {
			fmt.Printf("%-16s %+v\n", cn.Name(), cn.Stats())
		}
		fmt.Println("commit path:")
		for _, line := range stats.ReadCommitPath(obs.Default).Format() {
			fmt.Println(" ", line)
		}
	case "put":
		if len(fields) < 4 {
			return fmt.Errorf("usage: put <region> <id> <value>")
		}
		sess, id, err := sessAndID(db, fields)
		if err != nil {
			return err
		}
		tx, err := sess.Begin(ctx)
		if err != nil {
			return err
		}
		if err := tx.Insert(ctx, tableName, globaldb.Row{id, strings.Join(fields[3:], " ")}); err != nil {
			tx.Abort(ctx)
			return err
		}
		if err := tx.Commit(ctx); err != nil {
			return err
		}
		fmt.Printf("committed at %v\n", tx.Snapshot())
	case "get", "rget":
		if len(fields) != 3 {
			return fmt.Errorf("usage: %s <region> <id>", fields[0])
		}
		sess, id, err := sessAndID(db, fields)
		if err != nil {
			return err
		}
		if fields[0] == "rget" {
			q, err := sess.ReadOnly(ctx, globaldb.AnyStaleness, tableName)
			if err != nil {
				return err
			}
			row, found, err := q.Get(ctx, tableName, []any{id})
			if err != nil {
				return err
			}
			fmt.Printf("replica=%v snapshot=%v found=%v row=%v\n", q.OnReplicas(), q.Snapshot(), found, row)
			return nil
		}
		tx, err := sess.Begin(ctx)
		if err != nil {
			return err
		}
		row, found, err := tx.Get(ctx, tableName, []any{id})
		tx.Commit(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("found=%v row=%v\n", found, row)
	case "scan":
		if len(fields) != 3 {
			return fmt.Errorf("usage: scan <region> <id>")
		}
		sess, id, err := sessAndID(db, fields)
		if err != nil {
			return err
		}
		tx, err := sess.Begin(ctx)
		if err != nil {
			return err
		}
		rows, err := tx.ScanPK(ctx, tableName, []any{id}, 10)
		tx.Commit(ctx)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(" ", r)
		}
		fmt.Printf("%d row(s)\n", len(rows))
	default:
		return fmt.Errorf("unknown command %q (try 'help')", fields[0])
	}
	return nil
}

// remoteStats dials a globaldb-server and prints the Stats admin frame:
// lifetime counters, the in-flight gauge, and per-statement-type latency
// quantiles from the server's histograms.
func remoteStats(ctx context.Context, addr string) error {
	cs, err := driver.Dial(ctx, addr, driver.Config{})
	if err != nil {
		return err
	}
	defer cs.Close()
	st, err := cs.ServerStats()
	if err != nil {
		return err
	}
	fmt.Printf("server %s\n", addr)
	fmt.Printf("  connections: accepted=%d active=%d\n", st.Accepted, st.Active)
	fmt.Printf("  statements:  total=%d in-flight=%d canceled=%d panics=%d rows-streamed=%d\n",
		st.Statements, st.InFlight, st.Canceled, st.Panics, st.RowsStreamed)
	if len(st.Latencies) > 0 {
		fmt.Println("  latency by statement type:")
		for _, l := range st.Latencies {
			mean := time.Duration(0)
			if l.Count > 0 {
				mean = time.Duration(l.SumNanos / l.Count)
			}
			fmt.Printf("    %-8s n=%-7d mean=%-10v p50=%-10v p95=%-10v p99=%v\n",
				l.Type, l.Count, mean.Round(time.Microsecond),
				time.Duration(l.P50Nanos), time.Duration(l.P95Nanos), time.Duration(l.P99Nanos))
		}
	}
	return nil
}

func sessAndID(db *globaldb.DB, fields []string) (*globaldb.Session, int64, error) {
	sess, err := db.Connect(fields[1])
	if err != nil {
		return nil, 0, err
	}
	id, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("bad id %q", fields[2])
	}
	return sess, id, nil
}
