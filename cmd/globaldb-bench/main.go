// Command globaldb-bench regenerates the paper's evaluation figures
// (Sec. V, Figs. 1a and 6a–6d) plus the zero-downtime transition timeline.
//
// Usage:
//
//	globaldb-bench -fig all            # every figure at quick parameters
//	globaldb-bench -fig 6b -full       # one figure, full sweep
//	globaldb-bench -fig transition
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"globaldb/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1a, 6a, 6b, 6c, 6d, transition, all")
	full := flag.Bool("full", false, "run the full sweep (longer windows, all RTT points)")
	flag.Parse()

	p := experiments.Quick()
	if *full {
		p = experiments.Full()
	}
	ctx := context.Background()

	run := func(name string) error {
		switch name {
		case "1a":
			s, err := experiments.Fig1a(ctx, p)
			if err != nil {
				return err
			}
			fmt.Print(s.Table())
		case "6a":
			s, err := experiments.Fig6a(ctx, p)
			if err != nil {
				return err
			}
			fmt.Print(s.Table())
		case "6b":
			series, err := experiments.Fig6b(ctx, p)
			if err != nil {
				return err
			}
			for _, s := range series {
				fmt.Print(s.Table())
			}
		case "6c":
			series, err := experiments.Fig6c(ctx, p)
			if err != nil {
				return err
			}
			for _, s := range series {
				fmt.Print(s.Table())
			}
		case "6d":
			series, err := experiments.Fig6d(ctx, p)
			if err != nil {
				return err
			}
			for _, s := range series {
				fmt.Print(s.Table())
			}
		case "transition":
			counts, err := experiments.TransitionTimeline(ctx, p)
			if err != nil {
				return err
			}
			fmt.Println("== Zero-downtime transition: committed transactions per window ==")
			fmt.Println("   (GTM -> GClock after 1/4 of the run, back to GTM after 3/4)")
			for w, c := range counts {
				fmt.Printf("window %2d: %6d commits %s\n", w, c, strings.Repeat("#", scaleBar(c, counts)))
			}
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		return nil
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = []string{"1a", "6a", "6b", "6c", "6d", "transition"}
	}
	for _, f := range figs {
		fmt.Printf("\n### Figure %s ###\n", f)
		if err := run(f); err != nil {
			fmt.Fprintf(os.Stderr, "globaldb-bench: figure %s: %v\n", f, err)
			os.Exit(1)
		}
	}
}

// scaleBar sizes an ASCII bar relative to the max window.
func scaleBar(c int64, all []int64) int {
	var max int64 = 1
	for _, v := range all {
		if v > max {
			max = v
		}
	}
	return int(c * 40 / max)
}
