// Command globaldb-server runs an in-process GlobalDB cluster behind the
// wire-protocol network server, turning the single-process reproduction
// into something clients connect to like a real database: gsql -connect,
// or database/sql with a tcp:// DSN through the driver's connection pool.
//
// Usage:
//
//	globaldb-server [-addr :7687] [-topology three-city|one-region]
//	                [-region xian] [-timescale 0.05] [-batchrows 128]
//
// The process serves until SIGINT/SIGTERM, then drains gracefully:
// in-flight statements finish, new dials are refused, and only after
// -draintimeout are straggler connections force-closed.
//
// -metrics starts an operations listener on a second address serving
// Prometheus text metrics at /metrics (statement latency histograms,
// in-flight gauge, connection and scan counters) and the standard
// net/http/pprof profiling endpoints under /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"globaldb"
	"globaldb/internal/obs"
	"globaldb/server"
)

func main() {
	addr := flag.String("addr", ":7687", "listen address")
	topology := flag.String("topology", "three-city", "cluster topology: three-city or one-region")
	region := flag.String("region", "", "default home region for sessions that name none")
	timescale := flag.Float64("timescale", 0.05, "network time scale (1.0 = real WAN latencies)")
	rtt := flag.Duration("rtt", 10*time.Millisecond, "injected RTT for the one-region topology")
	batchRows := flag.Int("batchrows", 0, "rows per streamed row-batch frame (0 = default)")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "how long Shutdown waits for in-flight statements")
	metricsAddr := flag.String("metrics", "", "serve Prometheus /metrics and /debug/pprof/ on this address (e.g. :9090; empty = off)")
	slowQuery := flag.Duration("slowquery", 0, "log statements slower than this threshold (0 = off)")
	flag.Parse()

	var cfg globaldb.Config
	switch *topology {
	case "three-city":
		cfg = globaldb.ThreeCity()
	case "one-region":
		cfg = globaldb.OneRegion(*rtt)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topology)
		os.Exit(2)
	}
	cfg.TimeScale = *timescale

	db, err := globaldb.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer db.Close()

	srv := server.New(db, server.Options{
		Region:             *region,
		BatchRows:          *batchRows,
		SlowQueryThreshold: *slowQuery,
	})
	if err := srv.Start(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	fmt.Printf("globaldb-server — %s topology (mode %v), serving on %s\n",
		*topology, db.Mode(), srv.Addr())
	fmt.Printf("connect with: gsql -connect %s\n", srv.Addr())

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		// Both the server's own registry (statement latencies, connection
		// counters) and the process-wide default (scan totals, driver pool
		// gauges) appear on one scrape.
		mux.Handle("/metrics", obs.MetricsHandler(srv.Metrics(), obs.Default))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ops := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := ops.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "metrics listener:", err)
			}
		}()
		defer ops.Close()
		fmt.Printf("metrics on http://%s/metrics, profiles on http://%s/debug/pprof/\n",
			*metricsAddr, *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\ndraining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Printf("served %d connections, %d statements, %d rows streamed\n",
		st.Accepted, st.Statements, st.RowsStreamed)
}
