package globaldb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBankInvariantUnderTransitionsAndFailures runs concurrent two-account
// transfers (many of them multi-shard 2PC) while the cluster migrates
// GClock -> GTM -> GClock and a replica fails and recovers. The total
// balance must be conserved on the primaries, and replicas must converge
// to the same total.
func TestBankInvariantUnderTransitionsAndFailures(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, accountsSchema()); err != nil {
		t.Fatal(err)
	}
	const (
		accounts = 32
		initial  = 100.0
		workers  = 4
		duration = 600 * time.Millisecond
	)
	sess, _ := db.Connect("xian")
	for i := 0; i < accounts; i++ {
		tx, err := sess.Begin(bg)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Insert(bg, "accounts", Row{int64(i), fmt.Sprintf("acct-%d", i), initial}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(bg); err != nil {
			t.Fatal(err)
		}
	}

	var (
		stop      atomic.Bool
		transfers atomic.Int64
		conflicts atomic.Int64
		wg        sync.WaitGroup
	)
	regions := db.Regions()
	transfer := func(s *Session, from, to int64, amount float64) error {
		tx, err := s.Begin(bg)
		if err != nil {
			return err
		}
		abort := func(err error) error {
			_ = tx.Abort(bg)
			return err
		}
		fr, found, err := tx.Get(bg, "accounts", []any{from})
		if err != nil || !found {
			return abort(fmt.Errorf("from: %v found=%v", err, found))
		}
		tr, found, err := tx.Get(bg, "accounts", []any{to})
		if err != nil || !found {
			return abort(fmt.Errorf("to: %v found=%v", err, found))
		}
		fr[2] = fr[2].(float64) - amount
		tr[2] = tr[2].(float64) + amount
		if err := tx.Update(bg, "accounts", fr); err != nil {
			return abort(err)
		}
		if err := tx.Update(bg, "accounts", tr); err != nil {
			return abort(err)
		}
		return tx.Commit(bg)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := db.Connect(regions[w%len(regions)])
			if err != nil {
				t.Error(err)
				return
			}
			seed := int64(w*7919 + 13)
			for !stop.Load() {
				seed = seed*6364136223846793005 + 1442695040888963407
				from := (seed >> 8) % accounts
				if from < 0 {
					from = -from
				}
				to := (from + 1 + (seed>>16)%(accounts-1)) % accounts
				if to < 0 {
					to = -to
				}
				if from == to {
					continue
				}
				err := transfer(s, from, to, 1.0)
				switch {
				case err == nil:
					transfers.Add(1)
				default:
					// Write-write conflicts and transition-window aborts
					// are expected; invariant violations are not, and they
					// surface in the final balance check.
					conflicts.Add(1)
				}
			}
		}(w)
	}

	// Chaos: transitions and a replica failure while transfers run.
	deadline := time.Now().Add(duration)
	cluster := db.Cluster()
	reps := cluster.Replicas(0)
	for time.Now().Before(deadline) {
		if err := db.TransitionToGTM(bg); err != nil {
			t.Errorf("to GTM: %v", err)
		}
		reps[0].Endpoint().SetDown(true)
		time.Sleep(40 * time.Millisecond)
		if err := db.TransitionToGClock(bg); err != nil {
			t.Errorf("to GClock: %v", err)
		}
		reps[0].Endpoint().SetDown(false)
		time.Sleep(40 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if transfers.Load() == 0 {
		t.Fatal("no transfer ever committed")
	}
	t.Logf("transfers=%d conflicts/aborts=%d", transfers.Load(), conflicts.Load())

	// Primary-side invariant.
	sumOnPrimary := func() float64 {
		tx, err := sess.Begin(bg)
		if err != nil {
			t.Fatal(err)
		}
		defer tx.Abort(bg)
		total := 0.0
		for i := 0; i < accounts; i++ {
			row, found, err := tx.Get(bg, "accounts", []any{int64(i)})
			if err != nil || !found {
				t.Fatalf("account %d: %v found=%v", i, err, found)
			}
			total += row[2].(float64)
		}
		return total
	}
	if total := sumOnPrimary(); total != accounts*initial {
		t.Fatalf("primary total = %v, want %v", total, accounts*initial)
	}

	// Replica-side invariant: wait for the RCP to cover a fresh marker
	// commit, then sum via a consistent replica read.
	marker, _ := sess.Begin(bg)
	marker.Insert(bg, "accounts", Row{int64(accounts), "marker", 0.0})
	if err := marker.Commit(bg); err != nil {
		t.Fatal(err)
	}
	waitDeadline := time.Now().Add(15 * time.Second)
	for cluster.Collector.RCP() < marker.CommitTS() {
		if time.Now().After(waitDeadline) {
			t.Fatalf("RCP stuck at %v below %v", cluster.Collector.RCP(), marker.CommitTS())
		}
		time.Sleep(2 * time.Millisecond)
	}
	q, err := sess.ReadOnly(bg, AnyStaleness, "accounts")
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for i := 0; i < accounts; i++ {
		row, found, err := q.Get(bg, "accounts", []any{int64(i)})
		if err != nil || !found {
			t.Fatalf("replica account %d: %v found=%v", i, err, found)
		}
		total += row[2].(float64)
	}
	if total != accounts*initial {
		t.Fatalf("replica total = %v, want %v", total, accounts*initial)
	}
}

// TestPartitionStallsRCPAndHeals partitions the region hosting shard-0
// replicas away from the primary, checks that the RCP stalls below new
// commits (consistency beats freshness), then heals the partition and
// checks the RCP catches up.
func TestPartitionStallsRCPAndHeals(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, accountsSchema()); err != nil {
		t.Fatal(err)
	}
	sess, _ := db.Connect("xian")
	write := func(id int64) *Tx {
		tx, err := sess.Begin(bg)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Insert(bg, "accounts", Row{id, "x", 1.0}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(bg); err != nil {
			t.Fatal(err)
		}
		return tx
	}
	first := write(1)
	deadline := time.Now().Add(10 * time.Second)
	for db.Cluster().Collector.RCP() < first.CommitTS() {
		if time.Now().After(deadline) {
			t.Fatal("RCP never reached the first commit")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Partition Dongguan away from the rest: its replicas are stranded
	// while primaries homed in Xi'an and Langzhong keep accepting writes.
	net := db.Cluster().Net
	net.SetPartitioned("xian", "dongguan", true)
	net.SetPartitioned("langzhong", "dongguan", true)
	primaries := db.Cluster().Primaries()
	var last *Tx
	written := 0
	for i := int64(2); written < 8; i++ {
		shard := db.Cluster().ShardOf(i)
		if primaries[shard].Region() == "dongguan" {
			continue // unreachable primary: skip, the partition blocks it
		}
		last = write(i)
		written++
	}
	// The RCP must not reach the new commits while Dongguan's replicas
	// cannot receive logs (consistency holds freshness back).
	time.Sleep(100 * time.Millisecond)
	if rcp := db.Cluster().Collector.RCP(); rcp >= last.CommitTS() {
		t.Fatalf("RCP %v advanced past %v during partition", rcp, last.CommitTS())
	}

	net.SetPartitioned("xian", "dongguan", false)
	net.SetPartitioned("langzhong", "dongguan", false)
	deadline = time.Now().Add(15 * time.Second)
	for db.Cluster().Collector.RCP() < last.CommitTS() {
		if time.Now().After(deadline) {
			t.Fatalf("RCP stuck at %v after healing", db.Cluster().Collector.RCP())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestContextCancellationMidTransaction cancels a context mid-transaction
// and verifies the transaction can still be aborted cleanly and its locks
// released.
func TestContextCancellationMidTransaction(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, accountsSchema()); err != nil {
		t.Fatal(err)
	}
	sess, _ := db.Connect("xian")
	tx, err := sess.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(bg, "accounts", Row{int64(1), "a", 1.0}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if err := tx.Commit(ctx); err == nil {
		// Commit may succeed if the cancellation raced the final hop; both
		// outcomes are allowed, but the key must end up readable either way.
		t.Log("commit won the race with cancellation")
	} else if !errors.Is(err, context.Canceled) {
		t.Logf("commit failed with %v", err)
	}
	// Whatever happened, a fresh transaction must be able to write the key
	// (no stranded locks).
	tx2, err := sess.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Insert(bg, "accounts", Row{int64(1), "b", 2.0}); err != nil {
		t.Fatalf("key still locked: %v", err)
	}
	if err := tx2.Commit(bg); err != nil {
		t.Fatal(err)
	}
}
