package globaldb

import (
	"fmt"
	"testing"
	"time"
)

// loadOrderRows commits n orders per warehouse for warehouses 1..w.
func loadOrderRows(t *testing.T, db *DB, w, n int) {
	t.Helper()
	sess, _ := db.Connect("xian")
	tx, err := sess.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	for wid := 1; wid <= w; wid++ {
		for oid := 1; oid <= n; oid++ {
			if err := tx.Insert(bg, "orders", Row{int64(wid), int64(oid), fmt.Sprintf("item-%d-%d", wid, oid)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}
}

func TestRowsIteratorPagedPKScan(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, ordersSchema()); err != nil {
		t.Fatal(err)
	}
	loadOrderRows(t, db, 2, 20)
	sess, _ := db.Connect("xian")
	tx, _ := sess.Begin(bg)
	defer tx.Abort(bg)

	// A page size far below the row count forces multiple round trips; the
	// iterator must still yield every row exactly once, in key order.
	rows, err := tx.ScanPKRows(bg, "orders", []any{int64(1)}, ScanOpts{PageSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []Row
	for rows.Next() {
		got = append(got, rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("rows = %d, want 20", len(got))
	}
	for i, r := range got {
		if r[0] != int64(1) || r[1] != int64(i+1) {
			t.Fatalf("row %d = %v", i, r)
		}
	}

	// The drain wrapper agrees with the iterator.
	drained, err := tx.ScanPK(bg, "orders", []any{int64(1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(drained) != len(got) {
		t.Fatalf("ScanPK %d rows vs iterator %d", len(drained), len(got))
	}
}

func TestRowsIteratorRangePushdown(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, ordersSchema()); err != nil {
		t.Fatal(err)
	}
	loadOrderRows(t, db, 1, 30)
	sess, _ := db.Connect("xian")
	tx, _ := sess.Begin(bg)
	defer tx.Abort(bg)

	check := func(rng *ScanRange, want []int64) {
		t.Helper()
		rows, err := tx.ScanPKRows(bg, "orders", []any{int64(1)}, ScanOpts{Range: rng})
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		var got []int64
		for rows.Next() {
			got = append(got, rows.Row()[1].(int64))
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("range %+v: got %v want %v", rng, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("range %+v: got %v want %v", rng, got, want)
			}
		}
	}

	check(&ScanRange{Lo: int64(28)}, []int64{28, 29, 30})
	check(&ScanRange{Lo: int64(28), LoExcl: true}, []int64{29, 30})
	check(&ScanRange{Hi: int64(3)}, []int64{1, 2, 3})
	check(&ScanRange{Hi: int64(3), HiExcl: true}, []int64{1, 2})
	check(&ScanRange{Lo: int64(10), Hi: int64(12)}, []int64{10, 11, 12})
	check(&ScanRange{Lo: int64(10), LoExcl: true, Hi: int64(12), HiExcl: true}, []int64{11})

	// The range narrows what storage actually scans, not just the output.
	before := storageRowsScanned(db)
	check(&ScanRange{Lo: int64(5), Hi: int64(6)}, []int64{5, 6})
	if delta := storageRowsScanned(db) - before; delta > 4 {
		t.Fatalf("range scan touched %d storage rows, want <= 4", delta)
	}

	// A fully bound PK leaves no column for the range to apply to.
	if _, err := tx.ScanPKRows(bg, "orders", []any{int64(1), int64(2)}, ScanOpts{Range: &ScanRange{Lo: int64(1)}}); err == nil {
		t.Fatal("range over a fully bound PK must fail")
	}
}

func storageRowsScanned(db *DB) int64 {
	var total int64
	for _, p := range db.Cluster().Primaries() {
		total += p.Store().RowsScanned()
	}
	for shard := 0; shard < db.Cluster().Shards(); shard++ {
		for _, r := range db.Cluster().Replicas(shard) {
			total += r.Applier().Store().RowsScanned()
		}
	}
	return total
}

func TestRowsIteratorLimitStopsFetching(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, ordersSchema()); err != nil {
		t.Fatal(err)
	}
	loadOrderRows(t, db, 1, 200)
	sess, _ := db.Connect("xian")
	tx, _ := sess.Begin(bg)
	defer tx.Abort(bg)

	before := storageRowsScanned(db)
	rows, err := tx.ScanPKRows(bg, "orders", []any{int64(1)}, ScanOpts{Limit: 5, PageSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	rows.Close()
	if err := rows.Err(); err != nil || n != 5 {
		t.Fatalf("rows = %d err = %v", n, err)
	}
	if delta := storageRowsScanned(db) - before; delta > 8 {
		t.Fatalf("LIMIT 5 with page 8 touched %d storage rows, want <= 8", delta)
	}
}

func TestRowsIteratorTableKeyOrderMerge(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, ordersSchema()); err != nil {
		t.Fatal(err)
	}
	loadOrderRows(t, db, 5, 4) // warehouses hash across the 4 shards
	sess, _ := db.Connect("xian")
	tx, _ := sess.Begin(bg)
	defer tx.Abort(bg)

	rows, err := tx.ScanTableRows(bg, "orders", ScanOpts{PageSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got [][2]int64
	for rows.Next() {
		r := rows.Row()
		got = append(got, [2]int64{r[0].(int64), r[1].(int64)})
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("rows = %d, want 20", len(got))
	}
	// Global primary-key order regardless of shard placement.
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatalf("row %d out of PK order: %v after %v", i, b, a)
		}
	}
	// The legacy wrapper still returns the same multiset of rows.
	legacy, err := tx.ScanTable(bg, "orders", 0)
	if err != nil || len(legacy) != 20 {
		t.Fatalf("ScanTable: %d rows err=%v", len(legacy), err)
	}
}

func TestRowsIteratorReadOnlyQuery(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, accountsSchema()); err != nil {
		t.Fatal(err)
	}
	sess, _ := db.Connect("xian")
	tx, _ := sess.Begin(bg)
	for i := 1; i <= 12; i++ {
		owner := "alice"
		if i%2 == 0 {
			owner = "bob"
		}
		if err := tx.Insert(bg, "accounts", Row{int64(i), owner, float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		q, err := sess.ReadOnly(bg, AnyStaleness, "accounts")
		if err != nil {
			t.Fatal(err)
		}
		rows, err := q.ScanTableRows(bg, "accounts", ScanOpts{PageSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		rows.Close()
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		if n == 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("read-only streaming scan saw %d rows, want 12", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
