package gsql

import (
	"fmt"
	"strings"
	"testing"

	"globaldb/internal/table"
)

// fakeCatalog serves schemas for planner unit tests without a cluster.
type fakeCatalog map[string]*table.Schema

func (c fakeCatalog) Schema(name string) (*table.Schema, error) {
	s, ok := c[name]
	if !ok {
		return nil, fmt.Errorf("no table %q", name)
	}
	return s, nil
}

func testCatalog() fakeCatalog {
	orders := &table.Schema{
		ID:   1,
		Name: "orders",
		Columns: []table.Column{
			{Name: "w_id", Kind: table.Int64},
			{Name: "o_id", Kind: table.Int64},
			{Name: "c_id", Kind: table.Int64},
			{Name: "amount", Kind: table.Float64},
		},
		PK:      []int{0, 1},
		ShardBy: 0,
		Indexes: []table.Index{
			{ID: 11, Name: "orders_cust", Cols: []int{0, 2}},
		},
	}
	lines := &table.Schema{
		ID:   2,
		Name: "lines",
		Columns: []table.Column{
			{Name: "w_id", Kind: table.Int64},
			{Name: "o_id", Kind: table.Int64},
			{Name: "n", Kind: table.Int64},
			{Name: "item", Kind: table.String},
		},
		PK:      []int{0, 1, 2},
		ShardBy: 0,
	}
	return fakeCatalog{"orders": orders, "lines": lines}
}

func plan(t *testing.T, sql string) *selectPlan {
	t.Helper()
	stmt := mustParse(t, sql)
	p, err := planSelect(testCatalog(), stmt.(*Select))
	if err != nil {
		t.Fatalf("plan(%q): %v", sql, err)
	}
	return p
}

func planErr(t *testing.T, sql string) error {
	t.Helper()
	stmt := mustParse(t, sql)
	_, err := planSelect(testCatalog(), stmt.(*Select))
	if err == nil {
		t.Fatalf("plan(%q) succeeded, want error", sql)
	}
	return err
}

func TestPlanPointGet(t *testing.T) {
	p := plan(t, "SELECT * FROM orders WHERE w_id = 1 AND o_id = 2")
	if p.outer.kind != accessPoint {
		t.Fatalf("kind = %v", p.outer.kind)
	}
	if len(p.outer.keyExprs) != 2 {
		t.Fatalf("keyExprs = %v", p.outer.keyExprs)
	}
}

func TestPlanPointGetReversedPredicates(t *testing.T) {
	p := plan(t, "SELECT * FROM orders WHERE 2 = o_id AND 1 = w_id")
	if p.outer.kind != accessPoint {
		t.Fatalf("kind = %v", p.outer.kind)
	}
}

func TestPlanPKPrefix(t *testing.T) {
	p := plan(t, "SELECT * FROM orders WHERE w_id = 1 AND amount > 5")
	if p.outer.kind != accessPKPrefix {
		t.Fatalf("kind = %v", p.outer.kind)
	}
	if len(p.outer.keyExprs) != 1 {
		t.Fatalf("keyExprs = %v", p.outer.keyExprs)
	}
}

func TestPlanIndexScan(t *testing.T) {
	p := plan(t, "SELECT * FROM orders WHERE w_id = 1 AND c_id = 9")
	if p.outer.kind != accessIndex || p.outer.index != "orders_cust" {
		t.Fatalf("kind = %v index = %q", p.outer.kind, p.outer.index)
	}
	if len(p.outer.keyExprs) != 2 {
		t.Fatalf("keyExprs = %v", p.outer.keyExprs)
	}
}

func TestPlanFullScanFallbacks(t *testing.T) {
	// No predicate at all.
	if p := plan(t, "SELECT * FROM orders"); p.outer.kind != accessFull {
		t.Fatalf("kind = %v", p.outer.kind)
	}
	// Equality that misses the distribution column cannot be single-shard.
	if p := plan(t, "SELECT * FROM orders WHERE o_id = 2"); p.outer.kind != accessFull {
		t.Fatalf("kind = %v", p.outer.kind)
	}
	// Inequality binds nothing.
	if p := plan(t, "SELECT * FROM orders WHERE w_id > 1"); p.outer.kind != accessFull {
		t.Fatalf("kind = %v", p.outer.kind)
	}
	// OR disjuncts bind nothing (no conjunct extraction through OR).
	if p := plan(t, "SELECT * FROM orders WHERE w_id = 1 OR w_id = 2"); p.outer.kind != accessFull {
		t.Fatalf("kind = %v", p.outer.kind)
	}
}

func TestPlanSelfEqualityDoesNotBind(t *testing.T) {
	// w_id = o_id references the target on both sides; unusable for keys.
	p := plan(t, "SELECT * FROM orders WHERE w_id = o_id")
	if p.outer.kind != accessFull {
		t.Fatalf("kind = %v", p.outer.kind)
	}
}

func TestPlanJoinInnerLookup(t *testing.T) {
	p := plan(t, `SELECT o.o_id, l.item FROM orders o JOIN lines l
		ON l.w_id = o.w_id AND l.o_id = o.o_id WHERE o.w_id = 3`)
	if p.inner == nil {
		t.Fatal("no inner scan")
	}
	if p.outer.kind != accessPKPrefix {
		t.Fatalf("outer kind = %v", p.outer.kind)
	}
	// Inner binds (w_id, o_id) from the outer row: a PK prefix of lines.
	if p.inner.kind != accessPKPrefix {
		t.Fatalf("inner kind = %v", p.inner.kind)
	}
	if len(p.inner.keyExprs) != 2 {
		t.Fatalf("inner keyExprs = %v", p.inner.keyExprs)
	}
}

func TestPlanJoinDuplicateAliasRejected(t *testing.T) {
	planErr(t, "SELECT * FROM orders JOIN orders ON orders.w_id = orders.w_id")
}

func TestPlanStarExpansion(t *testing.T) {
	p := plan(t, "SELECT * FROM orders o JOIN lines l ON l.w_id = o.w_id")
	if len(p.outCols) != 8 {
		t.Fatalf("outCols = %v", p.outCols)
	}
	if p.outCols[0] != "w_id" || p.outCols[7] != "item" {
		t.Fatalf("outCols = %v", p.outCols)
	}
}

func TestPlanOutputNaming(t *testing.T) {
	p := plan(t, "SELECT o_id, amount * 2 AS dbl, COUNT(*) FROM orders GROUP BY o_id, amount * 2")
	if p.outCols[0] != "o_id" || p.outCols[1] != "dbl" {
		t.Fatalf("outCols = %v", p.outCols)
	}
	if !strings.HasPrefix(p.outCols[2], "COUNT") {
		t.Fatalf("outCols = %v", p.outCols)
	}
}

func TestPlanGroupingRules(t *testing.T) {
	// Aggregate without GROUP BY: bare column is an error.
	planErr(t, "SELECT o_id, COUNT(*) FROM orders")
	// Grouped column is fine.
	p := plan(t, "SELECT w_id, COUNT(*) FROM orders GROUP BY w_id")
	if !p.grouped || len(p.aggs) != 1 {
		t.Fatalf("grouped=%v aggs=%d", p.grouped, len(p.aggs))
	}
	// Output not in GROUP BY is an error.
	planErr(t, "SELECT o_id FROM orders GROUP BY w_id")
	// Duplicate aggregates share one slot.
	p2 := plan(t, "SELECT COUNT(*), COUNT(*) + 1 FROM orders")
	if len(p2.aggs) != 1 {
		t.Fatalf("aggs = %d, want 1 (deduplicated)", len(p2.aggs))
	}
}

func TestPlanHavingForcesGrouping(t *testing.T) {
	p := plan(t, "SELECT w_id FROM orders GROUP BY w_id HAVING COUNT(*) > 1")
	if !p.grouped || len(p.aggs) != 1 {
		t.Fatalf("grouped=%v aggs=%d", p.grouped, len(p.aggs))
	}
}

func TestPlanUnknownColumnRejected(t *testing.T) {
	planErr(t, "SELECT nope FROM orders")
	planErr(t, "SELECT * FROM orders WHERE nope = 1")
	planErr(t, "SELECT * FROM orders ORDER BY nope")
	planErr(t, "SELECT o.nope FROM orders o")
}

func TestPlanAmbiguousColumnRejected(t *testing.T) {
	err := planErr(t, "SELECT o_id FROM orders o JOIN lines l ON l.w_id = o.w_id")
	if !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v", err)
	}
}

func TestPlanOrderByAlias(t *testing.T) {
	p := plan(t, "SELECT amount * 2 AS dbl FROM orders ORDER BY dbl DESC")
	if len(p.orderBy) != 1 || !p.orderBy[0].Desc {
		t.Fatalf("orderBy = %v", p.orderBy)
	}
	if p.orderBy[0].Expr.String() != "(amount * 2)" {
		t.Fatalf("alias not rewritten: %s", p.orderBy[0].Expr)
	}
}

func TestPlanDescribe(t *testing.T) {
	p := plan(t, "SELECT w_id, COUNT(*) FROM orders WHERE w_id = 1 GROUP BY w_id ORDER BY w_id LIMIT 5")
	text := strings.Join(p.describe(), "\n")
	for _, want := range []string{"aggregate", "pk-prefix-scan", "filter", "order by", "limit: 5"} {
		if !strings.Contains(text, want) {
			t.Fatalf("describe lacks %q:\n%s", want, text)
		}
	}
}
