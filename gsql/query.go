package gsql

import (
	"context"
	"errors"
	"fmt"

	"globaldb"
	"globaldb/internal/table"
)

// ErrNotSelect is returned by the Query entry points when the statement is
// not a SELECT. Callers that accept any statement (like the database/sql
// driver) match it and fall back to Exec.
var ErrNotSelect = errors.New("gsql: Query requires a SELECT statement")

// Rows streams a SELECT's output rows. Rows wraps the volcano operator
// pipeline directly: each Next pulls combined rows from the scans (which
// fetch storage pages lazily) and projects them, so a consumer that stops
// early never ships the rest of the table. Pipeline breakers — GROUP BY,
// and ORDER BY the scan cannot satisfy — materialize their result up front
// and then iterate it; everything else streams end to end.
//
// A Rows must be Closed. Close also settles the autocommit read
// transaction that backs an out-of-transaction primary read, so dropping a
// Rows without closing leaks that transaction.
type Rows struct {
	ctx        context.Context
	cols       []string
	onReplicas bool

	// Streaming state: the batch-native pipeline below, with this Rows as
	// the thin row adapter at the consumer edge (each Next steps through
	// the current block; blocks are pulled on demand).
	bp      *boundPlan
	it      blockIter
	blk     *rowBlock
	bi      int
	env     rowEnv
	scr     [2]table.Row
	seen    map[string]bool // DISTINCT filter
	skipped int64
	yielded int64

	// Materialized fallback (grouped or sorted results).
	mat [][]any
	mi  int

	// Scan counters: totals accumulates as the pipeline's scans close
	// (streaming path); matScan carries the already-final counters of a
	// materialized result.
	totals  *scanTotals
	matScan globaldb.ScanStats

	row    []any
	err    error
	closed bool
	finish func(ok bool) error // settles the backing read context; nil after run
}

// Columns names the output columns, available before the first Next.
func (r *Rows) Columns() []string { return r.cols }

// OnReplicas reports whether the query was served from asynchronous
// replicas at the RCP rather than shard primaries.
func (r *Rows) OnReplicas() bool { return r.onReplicas }

// ScanStats reports the query's per-layer scan row counts — the same
// counters Result.Scan carries on the materializing path. On a streaming
// query the counters settle as the pipeline's scans close, so they are
// final only after the Rows is drained or Closed; before that they report
// the scans that have already finished.
func (r *Rows) ScanStats() globaldb.ScanStats {
	if r.totals != nil {
		return r.totals.s
	}
	return r.matScan
}

// Next advances to the following output row, returning false at the end of
// the result or on error (check Err afterwards).
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.it == nil { // materialized result
		if r.mi >= len(r.mat) {
			return false
		}
		r.row = r.mat[r.mi]
		r.mi++
		return true
	}
	for r.bp.limit < 0 || r.yielded < r.bp.limit {
		if r.blk == nil || r.bi >= r.blk.n() {
			blk, err := r.it.NextBlock(r.ctx)
			if err != nil {
				r.err = err
				return false
			}
			if blk == nil {
				break
			}
			r.blk, r.bi = blk, 0
		}
		r.env.rows = r.blk.row(r.bi, r.scr[:])
		r.bi++
		out, err := projectEnv(r.bp, &r.env)
		if err != nil {
			r.err = err
			return false
		}
		if r.seen != nil {
			key := distinctKey(out)
			if r.seen[key] {
				continue
			}
			r.seen[key] = true
		}
		if r.skipped < r.bp.offset {
			r.skipped++
			continue
		}
		r.yielded++
		r.row = out
		return true
	}
	return false
}

// Row returns the current output row. It is valid after a Next that
// returned true and until the following Next call.
func (r *Rows) Row() []any { return r.row }

// Err returns the first error encountered while streaming, or nil.
func (r *Rows) Err() error { return r.err }

// Close stops the pipeline, releasing scan cursors and settling the
// backing read transaction. Idempotent.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.it != nil {
		r.it.Close()
	}
	if r.finish != nil {
		f := r.finish
		r.finish = nil
		return f(r.err == nil)
	}
	return nil
}

// Query runs a SELECT and streams its output rows, binding args to the
// statement's placeholders. It shares Exec's plan cache. The returned Rows
// must be closed.
func (s *Session) Query(ctx context.Context, sql string, args ...any) (*Rows, error) {
	cs, err := s.cachedStatement(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := cs.stmt.(*Select)
	if !ok {
		return nil, fmt.Errorf("%w, have %T", ErrNotSelect, cs.stmt)
	}
	params, err := bindArgs(cs.numParams, args)
	if err != nil {
		return nil, err
	}
	return s.queryRows(ctx, sel, cs.plan, params)
}

// queryRows opens the read context for a SELECT (session transaction,
// autocommit primary read, or replica read) and hangs a streaming Rows off
// the operator pipeline.
func (s *Session) queryRows(ctx context.Context, sel *Select, plan *selectPlan, params []any) (*Rows, error) {
	if plan == nil {
		var err error
		if plan, err = planSelect(s, sel); err != nil {
			return nil, err
		}
	}
	bp, err := plan.bind(params)
	if err != nil {
		return nil, err
	}
	bp.noPushdown = s.pushdownOff

	r, onReplicas, finish, err := s.openReadContext(ctx, sel)
	if err != nil {
		return nil, err
	}
	if bp.grouped || (len(bp.orderBy) > 0 && !scanSatisfiesOrder(bp.selectPlan)) {
		// Pipeline breaker: run to completion (through the DN-partial
		// aggregate path when the plan pushes down), then iterate the
		// materialized result.
		res, err := execSelect(ctx, r, bp)
		ferr := finish(err == nil)
		if err != nil {
			return nil, err
		}
		if ferr != nil {
			return nil, ferr
		}
		return &Rows{cols: res.Columns, onReplicas: onReplicas, mat: res.Rows, matScan: res.Scan}, nil
	}
	it, _, totals, err := buildPipeline(ctx, r, bp)
	if err != nil {
		_ = finish(false)
		return nil, err
	}
	rows := &Rows{
		ctx: ctx, cols: bp.outCols, onReplicas: onReplicas,
		bp: bp, it: it, totals: totals, finish: finish,
		env: rowEnv{tables: bp.tables, params: bp.params},
	}
	if bp.distinct {
		rows.seen = make(map[string]bool)
	}
	return rows, nil
}
