// Package gsql is a SQL front-end for GlobalDB. It implements the query
// layer that GaussDB computing nodes provide in the real system: a lexer,
// a recursive-descent parser, a cost-aware planner that picks between
// point gets, primary-key prefix scans, secondary-index scans and full
// table scans, and an executor that runs read-write statements inside
// GlobalDB transactions and read-only statements on asynchronous replicas
// at the Replica Consistency Point.
//
// The dialect covers the shapes the paper's workloads need: CREATE/DROP
// TABLE (with PRIMARY KEY, secondary INDEXes, SHARD BY and SYNC
// REPLICATION), INSERT, single-table and two-table (inner join) SELECT
// with WHERE/GROUP BY/ORDER BY/LIMIT and the usual aggregates, UPDATE,
// DELETE, explicit transactions, and session staleness control for
// read-on-replica queries:
//
//	SET STALENESS = '50ms';
//	SELECT o_id, o_entry_d FROM orders WHERE o_w_id = 3 ORDER BY o_id DESC LIMIT 5;
//
// # Prepared statements and the plan cache
//
// Statements are parameterized with `?` (ordinal) or `$n` (positional)
// placeholders, valid anywhere a literal is — WHERE values, IN lists,
// INSERT VALUES, UPDATE SET, LIMIT/OFFSET. Planning is split from binding:
// Session.Prepare parses and plans once and the returned Stmt executes
// repeatedly with fresh parameter values, revalidating against the
// catalog's DDL version so a CREATE/DROP TABLE between executions replans
// transparently instead of running a stale plan. Session.Exec feeds the
// same machinery through a per-session LRU plan cache keyed by statement
// text, so hot statement shapes skip the parser either way:
//
//	st, _ := sess.Prepare(ctx, "SELECT v FROM kv WHERE k = ?")
//	res, _ := st.Exec(ctx, int64(42))        // no parse, no plan
//	rows, _ := sess.Query(ctx, "SELECT v FROM kv WHERE k > ? LIMIT ?", 10, 5)
//
// Session.Query and Stmt.Query stream: the returned Rows pulls rows from
// the volcano operator pipeline on demand, which pulls paged scans from
// storage, so closing early stops the scans mid-table. The database/sql
// driver in globaldb/driver builds on exactly this surface.
package gsql

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol      // punctuation and operators
	tokPlaceholder // statement parameter: text "" for `?`, digits for `$n`
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokKeyword:
		return "keyword"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokSymbol:
		return "symbol"
	case tokPlaceholder:
		return "placeholder"
	default:
		return fmt.Sprintf("tokenKind(%d)", uint8(k))
	}
}

// token is one lexical token. Keywords keep their uppercased text; string
// literals hold the unquoted, unescaped text.
type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the input, for error messages
}

// keywords recognized by the lexer. Identifiers matching these
// (case-insensitively) become tokKeyword with uppercased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true,
	"INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "DROP": true, "TABLE": true,
	"PRIMARY": true, "KEY": true, "INDEX": true, "SHARD": true,
	"BY": true, "SYNC": true, "REPLICATION": true, "WITH": true,
	"AND": true, "OR": true, "NOT": true, "NULL": true,
	"TRUE": true, "FALSE": true, "IS": true, "IN": true,
	"BETWEEN": true, "LIKE": true, "AS": true, "JOIN": true,
	"INNER": true, "ON": true, "GROUP": true, "ORDER": true,
	"HAVING": true, "LIMIT": true, "ASC": true, "DESC": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "ABORT": true,
	"SHOW": true, "TABLES": true, "STALENESS": true, "MODE": true,
	"BIGINT": true, "INT": true, "INTEGER": true, "DOUBLE": true,
	"FLOAT": true, "TEXT": true, "VARCHAR": true, "CHAR": true,
	"BYTES": true, "BLOB": true, "BOOL": true, "BOOLEAN": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"DISTINCT": true, "OF": true, "OFFSET": true, "REGIONS": true, "EXPLAIN": true,
	"DECIMAL": true, "NUMERIC": true, "TIMESTAMP": true, "ANALYZE": true,
}

// lexer splits a SQL string into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src, returning the full token stream (ending with tokEOF).
func lex(src string) ([]token, error) {
	lx := &lexer{src: src}
	if err := lx.run(); err != nil {
		return nil, err
	}
	return lx.toks, nil
}

// errAt builds a position-annotated parse error.
func errAt(pos int, src string, format string, args ...any) error {
	line, col := lineCol(pos, src)
	return fmt.Errorf("gsql: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

// lineCol converts a byte offset into a 1-based line:column position.
func lineCol(pos int, src string) (line, col int) {
	line, col = 1, 1
	for i := 0; i < pos && i < len(src); i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// errUnterminatedString marks lexically incomplete input — an open string
// literal. StatementsComplete matches it to keep a REPL reading instead of
// executing a half-typed statement.
var errUnterminatedString = errors.New("unterminated string literal")

func (lx *lexer) run() error {
	for {
		lx.skipSpaceAndComments()
		if lx.pos >= len(lx.src) {
			lx.toks = append(lx.toks, token{kind: tokEOF, pos: lx.pos})
			return nil
		}
		c := lx.src[lx.pos]
		switch {
		case isIdentStart(rune(c)):
			lx.lexWord()
		case c >= '0' && c <= '9':
			if err := lx.lexNumber(); err != nil {
				return err
			}
		case c == '.' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]):
			if err := lx.lexNumber(); err != nil {
				return err
			}
		case c == '\'':
			if err := lx.lexString(); err != nil {
				return err
			}
		case c == '?':
			lx.toks = append(lx.toks, token{kind: tokPlaceholder, pos: lx.pos})
			lx.pos++
		case c == '$':
			if err := lx.lexDollarPlaceholder(); err != nil {
				return err
			}
		default:
			if err := lx.lexSymbol(); err != nil {
				return err
			}
		}
	}
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			end := strings.Index(lx.src[lx.pos+2:], "*/")
			if end < 0 {
				lx.pos = len(lx.src)
			} else {
				lx.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (lx *lexer) lexWord() {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
		lx.pos++
	}
	word := lx.src[start:lx.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		lx.toks = append(lx.toks, token{kind: tokKeyword, text: upper, pos: start})
		return
	}
	lx.toks = append(lx.toks, token{kind: tokIdent, text: strings.ToLower(word), pos: start})
}

func (lx *lexer) lexNumber() error {
	start := lx.pos
	seenDot, seenExp := false, false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case isDigit(c):
			lx.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			lx.pos++
		case (c == 'e' || c == 'E') && !seenExp && lx.pos > start:
			seenExp = true
			lx.pos++
			if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
				lx.pos++
			}
		default:
			goto done
		}
	}
done:
	text := lx.src[start:lx.pos]
	if text == "." {
		return errAt(start, lx.src, "malformed number")
	}
	lx.toks = append(lx.toks, token{kind: tokNumber, text: text, pos: start})
	return nil
}

// lexString scans a single-quoted string; ” escapes a quote (standard SQL).
func (lx *lexer) lexString() error {
	start := lx.pos
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\'' {
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
				sb.WriteByte('\'')
				lx.pos += 2
				continue
			}
			lx.pos++
			lx.toks = append(lx.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		lx.pos++
	}
	line, col := lineCol(start, lx.src)
	return fmt.Errorf("gsql: %d:%d: %w", line, col, errUnterminatedString)
}

// lexDollarPlaceholder scans a `$n` parameter reference.
func (lx *lexer) lexDollarPlaceholder() error {
	start := lx.pos
	lx.pos++ // '$'
	digits := lx.pos
	for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
		lx.pos++
	}
	if lx.pos == digits {
		return errAt(start, lx.src, "expected a parameter number after '$'")
	}
	lx.toks = append(lx.toks, token{kind: tokPlaceholder, text: lx.src[digits:lx.pos], pos: start})
	return nil
}

// twoCharSymbols are the multi-byte operators, longest match first.
var twoCharSymbols = []string{"<=", ">=", "<>", "!=", "=="}

func (lx *lexer) lexSymbol() error {
	start := lx.pos
	rest := lx.src[lx.pos:]
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(rest, s) {
			lx.pos += len(s)
			text := s
			if s == "!=" || s == "==" {
				// Normalize to the canonical SQL spellings.
				if s == "!=" {
					text = "<>"
				} else {
					text = "="
				}
			}
			lx.toks = append(lx.toks, token{kind: tokSymbol, text: text, pos: start})
			return nil
		}
	}
	switch c := lx.src[lx.pos]; c {
	case '(', ')', ',', ';', '=', '<', '>', '+', '-', '*', '/', '%', '.':
		lx.pos++
		lx.toks = append(lx.toks, token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	default:
		return errAt(start, lx.src, "unexpected character %q", string(c))
	}
}
