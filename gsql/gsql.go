package gsql

import (
	"context"
	"fmt"
	"strings"
	"time"

	"globaldb"
	"globaldb/internal/obs"
	"globaldb/internal/table"
)

// Result is the outcome of one statement.
type Result struct {
	// Columns names the output columns (empty for statements without rows).
	Columns []string
	// Rows holds the output tuples.
	Rows [][]any
	// Affected counts rows written by INSERT/UPDATE/DELETE.
	Affected int
	// Msg is a human-readable summary for non-query statements.
	Msg string
	// OnReplicas reports whether a SELECT was served from asynchronous
	// replicas at the RCP (read-on-replica) rather than shard primaries.
	OnReplicas bool
	// Scan reports the SELECT's per-layer scan row counts: rows read from
	// storage by data nodes, rows dropped DN-side (pushed filters and
	// partial aggregation), and rows shipped over the WAN — the pushdown
	// win, observable per query.
	Scan globaldb.ScanStats
	// Trace is the rendered span tree of this statement's execution, set
	// when session tracing is on (SetTrace / the shell's \trace toggle).
	// Local to the session: it does not cross the wire protocol.
	Trace []string
	// JoinStrategy names the physical join strategy a two-table SELECT
	// executed with ("lookup-pushdown", "hash", "nested-loop"); empty for
	// single-table queries.
	JoinStrategy string
}

// stalenessMode selects where out-of-transaction SELECTs read.
type stalenessMode uint8

const (
	// readPrimary reads shard primaries (fresh; the default).
	readPrimary stalenessMode = iota
	// readReplicaAny reads replicas with no freshness bound.
	readReplicaAny
	// readReplicaBound reads replicas with a staleness bound.
	readReplicaBound
)

// Session is a SQL connection to one computing node. It is not safe for
// concurrent use (like a database connection).
type Session struct {
	db   *globaldb.DB
	sess *globaldb.Session
	tx   *globaldb.Tx // open explicit transaction, if any

	mode      stalenessMode
	staleness time.Duration

	// pushdownOff forces CN-side evaluation of filters and aggregates
	// (differential testing and apples-to-apples measurement); pushdown is
	// on by default.
	pushdownOff bool

	// joinMode is the session's SET JOIN strategy: AUTO (default) lets the
	// planner pick from availability and row estimates; HASH/LOOKUP/
	// NESTLOOP request one strategy, falling back to nested-loop when the
	// requested one does not apply to a query.
	joinMode joinStrategy

	// trace, when set, traces every statement and attaches the rendered
	// span tree to its Result. curTrace is the statement currently being
	// traced (also set by EXPLAIN ANALYZE independently of trace).
	trace    bool
	curTrace *obs.Trace

	plans *planCache // statement text -> parsed statement + SELECT plan
}

// SetTrace toggles per-statement span tracing for the session. While on,
// every statement's Result carries the rendered span tree in Trace —
// parse-free (statements arrive parsed), but covering plan, bind, execute,
// the per-shard scan-page RPCs with DN execute time, and commit fan-out.
func (s *Session) SetTrace(on bool) { s.trace = on }

// TraceEnabled reports whether SetTrace tracing is on.
func (s *Session) TraceEnabled() bool { return s.trace }

// Connect opens a SQL session homed at the named region's computing node.
// Out-of-transaction SELECTs read shard primaries until SET STALENESS (or a
// per-statement AS OF STALENESS) routes them to asynchronous replicas.
func Connect(db *globaldb.DB, region string) (*Session, error) {
	sess, err := db.Connect(region)
	if err != nil {
		return nil, err
	}
	return &Session{db: db, sess: sess, plans: newPlanCache(defaultPlanCacheCap)}, nil
}

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.tx != nil }

// Staleness describes the session's replica-read setting: "NONE" (primary
// reads), "ANY", or a duration string.
func (s *Session) Staleness() string {
	switch s.mode {
	case readReplicaAny:
		return "ANY"
	case readReplicaBound:
		return s.staleness.String()
	default:
		return "NONE"
	}
}

// Schema implements the planner's catalog over the cluster catalog.
func (s *Session) Schema(name string) (*table.Schema, error) { return s.db.Schema(name) }

// SetPushdown enables or disables DN-side execution (filter, projection
// and partial-aggregate pushdown) for this session's queries. On by
// default; disabling moves all evaluation back to the computing node
// without changing any result — the differential tests rely on exactly
// that equivalence.
func (s *Session) SetPushdown(on bool) { s.pushdownOff = !on }

// Exec runs one SQL statement with the given parameter values bound to its
// `?`/`$n` placeholders. Parsed statements and SELECT plans are cached per
// session, keyed by the SQL text and invalidated when the catalog's DDL
// version changes, so repeating a statement skips the parser and planner.
func (s *Session) Exec(ctx context.Context, sql string, args ...any) (*Result, error) {
	cs, err := s.cachedStatement(sql)
	if err != nil {
		return nil, err
	}
	params, err := bindArgs(cs.numParams, args)
	if err != nil {
		return nil, err
	}
	return s.dispatch(ctx, cs.stmt, cs.plan, params)
}

// ExecScript runs a semicolon-separated script, returning the last
// statement's result. It stops at the first error.
func (s *Session) ExecScript(ctx context.Context, sql string) (*Result, error) {
	stmts, err := ParseAll(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return &Result{Msg: "empty script"}, nil
	}
	var last *Result
	for _, stmt := range stmts {
		last, err = s.ExecStmt(ctx, stmt)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecStmt runs one parsed statement with the given parameter values. It
// plans SELECTs afresh on every call; Exec and Prepare are the cached
// entry points.
func (s *Session) ExecStmt(ctx context.Context, stmt Statement, args ...any) (*Result, error) {
	params, err := bindArgs(CountParams(stmt), args)
	if err != nil {
		return nil, err
	}
	return s.dispatch(ctx, stmt, nil, params)
}

// dispatch runs one statement. plan, when non-nil, is the cached plan of a
// SELECT statement; a nil plan makes SELECT plan on the spot. With session
// tracing on it brackets the statement in a fresh trace and attaches the
// rendered span tree to the result.
func (s *Session) dispatch(ctx context.Context, stmt Statement, plan *selectPlan, params []any) (*Result, error) {
	if !s.trace || s.curTrace != nil {
		return s.dispatchStmt(ctx, stmt, plan, params)
	}
	tr := obs.NewTrace(traceName(stmt))
	s.curTrace = tr
	// The root span rides the context so statements without their own span
	// plumbing (writes, DDL) still attach commit/2PC fan-out spans.
	res, err := s.dispatchStmt(obs.WithSpan(ctx, tr.Root()), stmt, plan, params)
	s.curTrace = nil
	tr.Root().End()
	if err == nil && res != nil {
		res.Trace = tr.Render()
	}
	return res, err
}

// traceName labels a trace root by its statement kind.
func traceName(stmt Statement) string {
	text := stmt.String()
	if i := strings.IndexByte(text, ' '); i > 0 {
		text = text[:i]
	}
	return strings.ToLower(text)
}

func (s *Session) dispatchStmt(ctx context.Context, stmt Statement, plan *selectPlan, params []any) (*Result, error) {
	switch st := stmt.(type) {
	case *Select:
		return s.execSelect(ctx, st, plan, params)
	case *Insert:
		return s.execInsert(ctx, st, params)
	case *Update:
		return s.execUpdate(ctx, st, params)
	case *Delete:
		return s.execDelete(ctx, st, params)
	case *CreateTable:
		return s.execCreateTable(ctx, st)
	case *DropTable:
		return s.execDropTable(ctx, st)
	case *Begin:
		if s.tx != nil {
			return nil, fmt.Errorf("gsql: transaction already open")
		}
		tx, err := s.sess.Begin(ctx)
		if err != nil {
			return nil, err
		}
		s.tx = tx
		return &Result{Msg: "BEGIN"}, nil
	case *Commit:
		if s.tx == nil {
			return nil, fmt.Errorf("gsql: no open transaction")
		}
		tx := s.tx
		s.tx = nil
		if err := tx.Commit(ctx); err != nil {
			return nil, err
		}
		return &Result{Msg: "COMMIT"}, nil
	case *Rollback:
		if s.tx == nil {
			return nil, fmt.Errorf("gsql: no open transaction")
		}
		tx := s.tx
		s.tx = nil
		if err := tx.Abort(ctx); err != nil {
			return nil, err
		}
		return &Result{Msg: "ROLLBACK"}, nil
	case *SetStaleness:
		switch {
		case st.None:
			s.mode = readPrimary
			s.staleness = 0
		case st.Any:
			s.mode = readReplicaAny
			s.staleness = 0
		default:
			s.mode = readReplicaBound
			s.staleness = st.Bound
		}
		return &Result{Msg: st.String()}, nil
	case *SetJoin:
		mode, ok := parseJoinStrategy(st.Mode)
		if !ok {
			return nil, fmt.Errorf("gsql: unknown join strategy %q", st.Mode)
		}
		s.joinMode = mode
		return &Result{Msg: st.String()}, nil
	case *Show:
		return s.execShow(st)
	case *Explain:
		return s.execExplain(ctx, st, params)
	default:
		return nil, fmt.Errorf("gsql: unhandled statement %T", stmt)
	}
}

func (s *Session) execExplain(ctx context.Context, e *Explain, params []any) (*Result, error) {
	sel := e.Stmt.(*Select)
	p, err := planSelect(s, sel)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"plan"}}
	for _, line := range p.describe() {
		res.Rows = append(res.Rows, []any{line})
	}
	if !e.Analyze {
		return res, nil
	}
	// ANALYZE: actually execute the query under a trace, then append the
	// span tree and the per-layer counters below the plan. The rows the
	// query produced are discarded — the plan column is the output.
	tr := obs.NewTrace("execute")
	prev := s.curTrace
	s.curTrace = tr
	run, err := s.execSelect(ctx, sel, p, params)
	s.curTrace = prev
	if err != nil {
		return nil, err
	}
	tr.Root().End()
	res.Rows = append(res.Rows, []any{""})
	for _, line := range tr.Render() {
		res.Rows = append(res.Rows, []any{line})
	}
	for _, line := range scanSummary(run.Scan, tr.Root().Duration()) {
		res.Rows = append(res.Rows, []any{line})
	}
	if run.JoinStrategy != "" {
		res.Rows = append(res.Rows, []any{"join strategy: " + run.JoinStrategy})
	}
	res.OnReplicas = run.OnReplicas
	res.Scan = run.Scan
	res.JoinStrategy = run.JoinStrategy
	return res, nil
}

// scanSummary renders a query's scan counters plus the prefetch-wait vs
// consume-time attribution against the measured wall time.
func scanSummary(sc globaldb.ScanStats, wall time.Duration) []string {
	if sc.StorageRows == 0 && sc.PagesFetched == 0 {
		return nil
	}
	lines := []string{fmt.Sprintf("scan: storage=%d rows, filtered at DN=%d, shipped over WAN=%d",
		sc.StorageRows, sc.DNFilteredRows, sc.WANRows)}
	if sc.LookupRows > 0 {
		lines = append(lines, fmt.Sprintf(
			"join: pushed lookups read %d inner rows on data nodes (outer storage=%d rows)",
			sc.LookupRows, sc.StorageRows-sc.LookupRows))
	}
	waitPct := 0.0
	if wall > 0 {
		waitPct = 100 * float64(sc.WANWait) / float64(wall)
		if waitPct > 100 {
			waitPct = 100
		}
	}
	lines = append(lines, fmt.Sprintf(
		"wan: pages=%d, prefetch-hits=%d, wait=%v (%.0f%% of wall; rest overlapped with consumption)",
		sc.PagesFetched, sc.PrefetchHits, sc.WANWait.Round(time.Microsecond), waitPct))
	return lines
}

func (s *Session) execShow(st *Show) (*Result, error) {
	switch st.What {
	case "TABLES":
		res := &Result{Columns: []string{"table"}}
		for _, name := range s.db.Tables() {
			res.Rows = append(res.Rows, []any{name})
		}
		return res, nil
	case "MODE":
		return &Result{Columns: []string{"mode"}, Rows: [][]any{{s.db.Mode().String()}}}, nil
	case "REGIONS":
		res := &Result{Columns: []string{"region"}}
		for _, r := range s.db.Regions() {
			res.Rows = append(res.Rows, []any{r})
		}
		return res, nil
	case "STALENESS":
		return &Result{Columns: []string{"staleness"}, Rows: [][]any{{s.Staleness()}}}, nil
	case "JOIN":
		return &Result{Columns: []string{"join"}, Rows: [][]any{{s.joinMode.Keyword()}}}, nil
	default:
		return nil, fmt.Errorf("gsql: unknown SHOW %q", st.What)
	}
}

// execSelect runs a SELECT, planning it first unless a cached plan is
// supplied. Inside an explicit transaction the query reads from shard
// primaries at the transaction snapshot (and sees its own writes). Outside
// a transaction it reads primaries at a fresh snapshot by default; SET
// STALENESS or a per-statement AS OF STALENESS routes it to asynchronous
// replicas at the RCP (read-on-replica).
func (s *Session) execSelect(ctx context.Context, sel *Select, plan *selectPlan, params []any) (*Result, error) {
	// root is nil when tracing is off; every span call below is then a
	// no-op pointer compare, keeping the hot path allocation-free.
	root := s.curTrace.Root()
	planSp := root.Child("plan")
	if plan == nil {
		var err error
		if plan, err = planSelect(s, sel); err != nil {
			return nil, err
		}
	} else {
		planSp.Tag("cached")
	}
	planSp.End()
	bindSp := root.Child("bind")
	bp, err := plan.bind(params)
	bindSp.End()
	if err != nil {
		return nil, err
	}
	bp.noPushdown = s.pushdownOff
	bp.joinMode = s.joinMode
	bp.rowEst = s.db.RowEstimate
	execSp := root.Child("execute")
	// The span rides the context into the scan cursors' prefetch
	// goroutines (per-shard scan-page spans) and the autocommit
	// transaction's commit fan-out.
	ctx = obs.WithSpan(ctx, execSp)
	r, onReplicas, finish, err := s.openReadContext(ctx, sel)
	if err != nil {
		execSp.End()
		return nil, err
	}
	res, err := execSelect(ctx, r, bp)
	if ferr := finish(err == nil); err == nil {
		err = ferr
	}
	if res != nil && res.JoinStrategy != "" {
		execSp.Tag("join=%s", res.JoinStrategy)
	}
	execSp.End()
	if err != nil {
		return nil, err
	}
	res.OnReplicas = onReplicas
	return res, nil
}

// openReadContext picks where a SELECT reads — the session's open
// transaction, an autocommit transaction on shard primaries (fresh read),
// or a replica query under the session/statement staleness setting — and
// returns a finish callback that settles the autocommit transaction once
// the result has been consumed. Both the materializing Exec path and the
// streaming Query path dispatch through here.
func (s *Session) openReadContext(ctx context.Context, sel *Select) (r reader, onReplicas bool, finish func(ok bool) error, err error) {
	noop := func(bool) error { return nil }
	switch {
	case s.tx != nil:
		// The explicit transaction's lifecycle belongs to COMMIT/ROLLBACK.
		return s.tx, false, noop, nil
	case sel.Staleness == 0 && s.mode == readPrimary:
		tx, err := s.sess.Begin(ctx)
		if err != nil {
			return nil, false, nil, err
		}
		return tx, false, func(ok bool) error {
			if !ok {
				return tx.Abort(ctx)
			}
			return tx.Commit(ctx)
		}, nil
	default:
		bound := globaldb.AnyStaleness
		switch {
		case sel.Staleness > 0:
			bound = sel.Staleness
		case s.mode == readReplicaBound:
			bound = s.staleness
		}
		tables := []string{sel.From.Table}
		if sel.Join != nil {
			tables = append(tables, sel.Join.Table)
		}
		q, err := s.sess.ReadOnly(ctx, bound, tables...)
		if err != nil {
			return nil, false, nil, err
		}
		return q, q.OnReplicas(), noop, nil
	}
}

// withWriteTxn runs fn inside the session transaction, or an autocommit
// transaction when none is open.
func (s *Session) withWriteTxn(ctx context.Context, fn func(tx *globaldb.Tx) (int, error)) (int, error) {
	if s.tx != nil {
		return fn(s.tx)
	}
	tx, err := s.sess.Begin(ctx)
	if err != nil {
		return 0, err
	}
	n, err := fn(tx)
	if err != nil {
		_ = tx.Abort(ctx)
		return 0, err
	}
	if err := tx.Commit(ctx); err != nil {
		return 0, err
	}
	return n, nil
}

func (s *Session) execInsert(ctx context.Context, ins *Insert, params []any) (*Result, error) {
	sch, err := s.db.Schema(ins.Table)
	if err != nil {
		return nil, err
	}
	// Map the column list (or schema order) to positions.
	positions := make([]int, 0, len(sch.Columns))
	if len(ins.Cols) == 0 {
		for i := range sch.Columns {
			positions = append(positions, i)
		}
	} else {
		for _, name := range ins.Cols {
			ci := sch.ColIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("gsql: table %s has no column %q", ins.Table, name)
			}
			positions = append(positions, ci)
		}
	}
	var rows []globaldb.Row
	for _, exprRow := range ins.Rows {
		if len(exprRow) != len(positions) {
			return nil, fmt.Errorf("gsql: INSERT has %d values for %d columns", len(exprRow), len(positions))
		}
		row := make(globaldb.Row, len(sch.Columns))
		for i, e := range exprRow {
			v, err := evalExpr(e, &rowEnv{params: params}) // constants and parameters only: no columns in scope
			if err != nil {
				return nil, err
			}
			cv, err := coerceValue(sch, positions[i], v)
			if err != nil {
				return nil, err
			}
			row[positions[i]] = cv
		}
		rows = append(rows, row)
	}
	n, err := s.withWriteTxn(ctx, func(tx *globaldb.Tx) (int, error) {
		for _, row := range rows {
			if err := tx.Insert(ctx, ins.Table, row); err != nil {
				return 0, err
			}
		}
		return len(rows), nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n, Msg: fmt.Sprintf("INSERT %d", n)}, nil
}

// matchingRows plans and evaluates a single-table WHERE for UPDATE/DELETE,
// returning full rows at the transaction's snapshot.
func matchingRows(ctx context.Context, s *Session, tx *globaldb.Tx, tableName string, where Expr, params []any) ([]table.Row, *boundPlan, error) {
	sel := &Select{
		Items: []SelectItem{{Expr: &Star{}}},
		From:  TableRef{Table: tableName, Alias: tableName},
		Where: where,
		Limit: -1,
	}
	p, err := planSelect(s, sel)
	if err != nil {
		return nil, nil, err
	}
	bp, err := p.bind(params)
	if err != nil {
		return nil, nil, err
	}
	combined, err := joinRows(ctx, tx, bp)
	if err != nil {
		return nil, nil, err
	}
	rows := make([]table.Row, len(combined))
	for i, c := range combined {
		rows[i] = c[0]
	}
	return rows, bp, nil
}

func (s *Session) execUpdate(ctx context.Context, u *Update, params []any) (*Result, error) {
	sch, err := s.db.Schema(u.Table)
	if err != nil {
		return nil, err
	}
	// Reject PK and indexed-column updates (index entries are rewritten in
	// place, not migrated — the same restriction GaussDB's distribution
	// keys have).
	frozen := map[int]bool{}
	for _, p := range sch.PK {
		frozen[p] = true
	}
	for _, ix := range sch.Indexes {
		for _, c := range ix.Cols {
			frozen[c] = true
		}
	}
	type binding struct {
		col  int
		expr Expr
	}
	var bindings []binding
	for _, a := range u.Set {
		ci := sch.ColIndex(a.Col)
		if ci < 0 {
			return nil, fmt.Errorf("gsql: table %s has no column %q", u.Table, a.Col)
		}
		if frozen[ci] {
			return nil, fmt.Errorf("gsql: cannot update primary-key or indexed column %q", a.Col)
		}
		bindings = append(bindings, binding{col: ci, expr: a.Expr})
	}
	n, err := s.withWriteTxn(ctx, func(tx *globaldb.Tx) (int, error) {
		rows, p, err := matchingRows(ctx, s, tx, u.Table, u.Where, params)
		if err != nil {
			return 0, err
		}
		for _, row := range rows {
			updated := make(globaldb.Row, len(row))
			copy(updated, row)
			env := &rowEnv{tables: p.tables, rows: []table.Row{row}, params: params}
			for _, b := range bindings {
				v, err := evalExpr(b.expr, env)
				if err != nil {
					return 0, err
				}
				cv, err := coerceValue(sch, b.col, v)
				if err != nil {
					return 0, err
				}
				updated[b.col] = cv
			}
			if err := tx.Update(ctx, u.Table, updated); err != nil {
				return 0, err
			}
		}
		return len(rows), nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n, Msg: fmt.Sprintf("UPDATE %d", n)}, nil
}

func (s *Session) execDelete(ctx context.Context, d *Delete, params []any) (*Result, error) {
	sch, err := s.db.Schema(d.Table)
	if err != nil {
		return nil, err
	}
	n, err := s.withWriteTxn(ctx, func(tx *globaldb.Tx) (int, error) {
		rows, _, err := matchingRows(ctx, s, tx, d.Table, d.Where, params)
		if err != nil {
			return 0, err
		}
		for _, row := range rows {
			pkVals := make([]any, len(sch.PK))
			for i, p := range sch.PK {
				pkVals[i] = row[p]
			}
			if err := tx.Delete(ctx, d.Table, pkVals); err != nil {
				return 0, err
			}
		}
		return len(rows), nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n, Msg: fmt.Sprintf("DELETE %d", n)}, nil
}

// sqlKinds maps normalized SQL type names to column kinds.
var sqlKinds = map[string]table.Kind{
	"BIGINT": table.Int64,
	"DOUBLE": table.Float64,
	"TEXT":   table.String,
	"BYTES":  table.Bytes,
	"BOOL":   table.Bool,
}

func (s *Session) execCreateTable(ctx context.Context, ct *CreateTable) (*Result, error) {
	if s.tx != nil {
		return nil, fmt.Errorf("gsql: DDL is not allowed inside a transaction")
	}
	sch := &table.Schema{Name: ct.Name}
	for _, col := range ct.Columns {
		kind, ok := sqlKinds[col.Type]
		if !ok {
			return nil, fmt.Errorf("gsql: unsupported type %q", col.Type)
		}
		sch.Columns = append(sch.Columns, table.Column{Name: col.Name, Kind: kind})
	}
	for _, pk := range ct.PK {
		ci := sch.ColIndex(pk)
		if ci < 0 {
			return nil, fmt.Errorf("gsql: PRIMARY KEY column %q does not exist", pk)
		}
		sch.PK = append(sch.PK, ci)
	}
	if ct.ShardBy != "" {
		ci := sch.ColIndex(ct.ShardBy)
		if ci < 0 {
			return nil, fmt.Errorf("gsql: SHARD BY column %q does not exist", ct.ShardBy)
		}
		inPK := false
		for _, p := range sch.PK {
			if p == ci {
				inPK = true
			}
		}
		if !inPK {
			return nil, fmt.Errorf("gsql: SHARD BY column %q must be part of the primary key", ct.ShardBy)
		}
		sch.ShardBy = ci
	} else {
		sch.ShardBy = sch.PK[0]
	}
	for _, ixd := range ct.Indexes {
		ix := table.Index{Name: ixd.Name}
		for _, col := range ixd.Cols {
			ci := sch.ColIndex(col)
			if ci < 0 {
				return nil, fmt.Errorf("gsql: INDEX %s column %q does not exist", ixd.Name, col)
			}
			ix.Cols = append(ix.Cols, ci)
		}
		sch.Indexes = append(sch.Indexes, ix)
	}
	sch.SyncReplicated = ct.Sync
	if err := s.db.CreateTable(ctx, sch); err != nil {
		return nil, err
	}
	return &Result{Msg: "CREATE TABLE " + ct.Name}, nil
}

func (s *Session) execDropTable(ctx context.Context, dt *DropTable) (*Result, error) {
	if s.tx != nil {
		return nil, fmt.Errorf("gsql: DDL is not allowed inside a transaction")
	}
	if err := s.db.DropTable(ctx, dt.Name); err != nil {
		return nil, err
	}
	return &Result{Msg: "DROP TABLE " + dt.Name}, nil
}

// FormatTable renders a result as an aligned text table for CLIs.
func FormatTable(res *Result) string {
	if len(res.Columns) == 0 {
		return res.Msg + "\n"
	}
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			txt := "NULL"
			if v != nil {
				txt = fmt.Sprintf("%v", v)
			}
			cells[ri][ci] = txt
			if ci < len(widths) && len(txt) > widths[ci] {
				widths[ci] = len(txt)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(vals []string) {
		sb.WriteString("|")
		for i, v := range vals {
			sb.WriteString(" " + v + strings.Repeat(" ", widths[i]-len(v)) + " |")
		}
		sb.WriteString("\n")
	}
	sep := "+"
	for _, w := range widths {
		sep += strings.Repeat("-", w+2) + "+"
	}
	sb.WriteString(sep + "\n")
	writeRow(res.Columns)
	sb.WriteString(sep + "\n")
	for _, row := range cells {
		writeRow(row)
	}
	sb.WriteString(sep + "\n")
	sb.WriteString(fmt.Sprintf("(%d rows)\n", len(res.Rows)))
	return sb.String()
}
