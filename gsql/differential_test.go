package gsql

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestDifferentialAccessPaths loads a table with a secondary index and runs
// randomly generated predicates twice: once as written (letting the planner
// pick point gets, prefix scans or index scans) and once with the equality
// obscured by an arithmetic identity, which forces a full scan. Both
// executions must return identical row sets — a differential test of the
// planner's access-path selection.
func TestDifferentialAccessPaths(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE inv (
		w_id BIGINT, i_id BIGINT, grp BIGINT, qty BIGINT, tag TEXT,
		PRIMARY KEY (w_id, i_id),
		INDEX inv_grp (w_id, grp)
	) SHARD BY w_id`)
	rng := rand.New(rand.NewSource(7))
	for w := int64(1); w <= 4; w++ {
		for i := int64(1); i <= 30; i++ {
			stmt := fmt.Sprintf("INSERT INTO inv VALUES (%d, %d, %d, %d, 't%d')",
				w, i, rng.Int63n(5), rng.Int63n(100), rng.Int63n(3))
			exec(t, s, stmt)
		}
	}

	rowsOf := func(sql string) []string {
		t.Helper()
		res := exec(t, s, sql)
		out := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			out[i] = fmt.Sprintf("%v", r)
		}
		sort.Strings(out)
		return out
	}

	for trial := 0; trial < 60; trial++ {
		w := 1 + rng.Int63n(4)
		var pred string
		switch trial % 4 {
		case 0: // full PK: point get
			pred = fmt.Sprintf("w_id = %d AND i_id = %d", w, 1+rng.Int63n(30))
		case 1: // PK prefix scan with residual
			pred = fmt.Sprintf("w_id = %d AND qty > %d", w, rng.Int63n(100))
		case 2: // index scan
			pred = fmt.Sprintf("w_id = %d AND grp = %d", w, rng.Int63n(5))
		case 3: // index scan plus residual filter
			pred = fmt.Sprintf("w_id = %d AND grp = %d AND tag <> 't1'", w, rng.Int63n(5))
		}
		fast := rowsOf("SELECT * FROM inv WHERE " + pred)
		// `w_id + 0 = w` defeats equality extraction: full scan, same rows.
		slowPred := pred
		slowPred = "w_id + 0 = " + fmt.Sprint(w) + slowPred[len(fmt.Sprintf("w_id = %d", w)):]
		slow := rowsOf("SELECT * FROM inv WHERE " + slowPred)
		if len(fast) != len(slow) {
			t.Fatalf("trial %d (%s): %d vs %d rows", trial, pred, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("trial %d (%s): row %d differs\n fast: %s\n slow: %s", trial, pred, i, fast[i], slow[i])
			}
		}
	}
}

// TestDifferentialJoinStrategies checks that a join whose inner side uses
// point lookups returns the same result as the same join forced onto a
// full-scan inner (by obscuring the ON equality).
func TestDifferentialJoinStrategies(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	fast := exec(t, s, `SELECT o.o_id, l.item FROM orders o JOIN lines l
		ON l.w_id = o.w_id AND l.o_id = o.o_id ORDER BY o.o_id, l.item`)
	slow := exec(t, s, `SELECT o.o_id, l.item FROM orders o JOIN lines l
		ON l.w_id + 0 = o.w_id AND l.o_id + 0 = o.o_id ORDER BY o.o_id, l.item`)
	if len(fast.Rows) != len(slow.Rows) {
		t.Fatalf("join rows: %d vs %d", len(fast.Rows), len(slow.Rows))
	}
	for i := range fast.Rows {
		if fmt.Sprint(fast.Rows[i]) != fmt.Sprint(slow.Rows[i]) {
			t.Fatalf("join row %d: %v vs %v", i, fast.Rows[i], slow.Rows[i])
		}
	}
}
