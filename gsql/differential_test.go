package gsql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestDifferentialAccessPaths loads a table with a secondary index and runs
// randomly generated predicates twice: once as written (letting the planner
// pick point gets, prefix scans or index scans) and once with the equality
// obscured by an arithmetic identity, which forces a full scan. Both
// executions must return identical row sets — a differential test of the
// planner's access-path selection.
func TestDifferentialAccessPaths(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE inv (
		w_id BIGINT, i_id BIGINT, grp BIGINT, qty BIGINT, tag TEXT,
		PRIMARY KEY (w_id, i_id),
		INDEX inv_grp (w_id, grp)
	) SHARD BY w_id`)
	rng := rand.New(rand.NewSource(7))
	for w := int64(1); w <= 4; w++ {
		for i := int64(1); i <= 30; i++ {
			stmt := fmt.Sprintf("INSERT INTO inv VALUES (%d, %d, %d, %d, 't%d')",
				w, i, rng.Int63n(5), rng.Int63n(100), rng.Int63n(3))
			exec(t, s, stmt)
		}
	}

	rowsOf := func(sql string) []string {
		t.Helper()
		res := exec(t, s, sql)
		out := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			out[i] = fmt.Sprintf("%v", r)
		}
		sort.Strings(out)
		return out
	}

	for trial := 0; trial < 60; trial++ {
		w := 1 + rng.Int63n(4)
		var pred string
		switch trial % 4 {
		case 0: // full PK: point get
			pred = fmt.Sprintf("w_id = %d AND i_id = %d", w, 1+rng.Int63n(30))
		case 1: // PK prefix scan with residual
			pred = fmt.Sprintf("w_id = %d AND qty > %d", w, rng.Int63n(100))
		case 2: // index scan
			pred = fmt.Sprintf("w_id = %d AND grp = %d", w, rng.Int63n(5))
		case 3: // index scan plus residual filter
			pred = fmt.Sprintf("w_id = %d AND grp = %d AND tag <> 't1'", w, rng.Int63n(5))
		}
		fast := rowsOf("SELECT * FROM inv WHERE " + pred)
		// `w_id + 0 = w` defeats equality extraction: full scan, same rows.
		slowPred := pred
		slowPred = "w_id + 0 = " + fmt.Sprint(w) + slowPred[len(fmt.Sprintf("w_id = %d", w)):]
		slow := rowsOf("SELECT * FROM inv WHERE " + slowPred)
		if len(fast) != len(slow) {
			t.Fatalf("trial %d (%s): %d vs %d rows", trial, pred, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("trial %d (%s): row %d differs\n fast: %s\n slow: %s", trial, pred, i, fast[i], slow[i])
			}
		}
	}
}

// TestDifferentialStreamingVsMaterializing runs randomized queries through
// the streaming operator pipeline (execSelect) and the legacy
// drain-everything path (execSelectMaterialized) and requires identical
// results. The query generator covers every access path the planner can
// pick, pushed range bounds, residual filters, joins, aggregates, DISTINCT,
// ORDER BY, LIMIT and OFFSET — the full surface the refactor touched.
func TestDifferentialStreamingVsMaterializing(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE stock (
		w_id BIGINT, i_id BIGINT, grp BIGINT, qty BIGINT, tag TEXT,
		PRIMARY KEY (w_id, i_id),
		INDEX stock_grp (w_id, grp)
	) SHARD BY w_id`)
	exec(t, s, `CREATE TABLE supplier (
		w_id BIGINT, s_id BIGINT, rating BIGINT,
		PRIMARY KEY (w_id, s_id)
	) SHARD BY w_id`)
	rng := rand.New(rand.NewSource(11))
	for w := int64(1); w <= 4; w++ {
		for i := int64(1); i <= 40; i++ {
			exec(t, s, fmt.Sprintf("INSERT INTO stock VALUES (%d, %d, %d, %d, 't%d')",
				w, i, rng.Int63n(6), rng.Int63n(200), rng.Int63n(4)))
		}
		for sid := int64(1); sid <= 6; sid++ {
			exec(t, s, fmt.Sprintf("INSERT INTO supplier VALUES (%d, %d, %d)", w, sid, rng.Int63n(10)))
		}
	}

	tx, err := s.sess.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort(bg)

	runBoth := func(sql string, ordered bool) {
		t.Helper()
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		p, err := planSelect(s, stmt.(*Select))
		if err != nil {
			t.Fatalf("plan %q: %v", sql, err)
		}
		bp, err := p.bind(nil)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := execSelect(bg, tx, bp)
		if err != nil {
			t.Fatalf("streaming %q: %v", sql, err)
		}
		// Re-plan: execution may have bound state into the plan's exprs.
		p2, err := planSelect(s, stmt.(*Select))
		if err != nil {
			t.Fatal(err)
		}
		bp2, err := p2.bind(nil)
		if err != nil {
			t.Fatal(err)
		}
		mat, err := execSelectMaterialized(bg, tx, bp2)
		if err != nil {
			t.Fatalf("materialized %q: %v", sql, err)
		}
		a := rowStrings(stream.Rows)
		b := rowStrings(mat.Rows)
		if !ordered {
			sort.Strings(a)
			sort.Strings(b)
		}
		if len(a) != len(b) {
			t.Fatalf("%q: streaming %d rows vs materialized %d\n stream: %v\n mat: %v", sql, len(a), len(b), a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%q: row %d differs\n stream: %s\n mat:    %s", sql, i, a[i], b[i])
			}
		}
	}

	for trial := 0; trial < 80; trial++ {
		w := 1 + rng.Int63n(4)
		lo := 1 + rng.Int63n(35)
		hi := lo + rng.Int63n(10)
		q := rng.Int63n(200)
		g := rng.Int63n(6)
		switch trial % 10 {
		case 0: // PK range pushdown, both bounds
			runBoth(fmt.Sprintf("SELECT * FROM stock WHERE w_id = %d AND i_id > %d AND i_id <= %d", w, lo, hi), false)
		case 1: // PK range + residual filter
			runBoth(fmt.Sprintf("SELECT * FROM stock WHERE w_id = %d AND i_id >= %d AND qty < %d", w, lo, q), false)
		case 2: // BETWEEN on the index's next column
			runBoth(fmt.Sprintf("SELECT * FROM stock WHERE w_id = %d AND grp BETWEEN %d AND %d", w, g, g+2), false)
		case 3: // full scan with residual filter
			runBoth(fmt.Sprintf("SELECT i_id, qty FROM stock WHERE qty >= %d AND tag <> 't0'", q), false)
		case 4: // LIMIT/OFFSET need a total order to be deterministic
			runBoth(fmt.Sprintf("SELECT * FROM stock WHERE w_id = %d ORDER BY w_id, i_id LIMIT %d OFFSET %d",
				w, 1+rng.Int63n(8), rng.Int63n(4)), true)
		case 5: // pushed LIMIT without filter (full pushdown path)
			runBoth(fmt.Sprintf("SELECT * FROM stock WHERE w_id = %d ORDER BY w_id, i_id LIMIT %d", w, 1+rng.Int63n(8)), true)
		case 6: // aggregate over a pushed range
			runBoth(fmt.Sprintf("SELECT COUNT(*), SUM(qty) FROM stock WHERE w_id = %d AND i_id BETWEEN %d AND %d", w, lo, hi), true)
		case 7: // grouped aggregate with HAVING
			runBoth(fmt.Sprintf("SELECT grp, COUNT(*) FROM stock WHERE qty < %d GROUP BY grp HAVING COUNT(*) > 1", q), false)
		case 8: // join: streamed nested loop vs materialized
			runBoth(fmt.Sprintf(`SELECT st.i_id, sp.rating FROM supplier sp JOIN stock st
				ON st.w_id = sp.w_id WHERE sp.w_id = %d AND st.i_id > %d AND sp.s_id = %d`, w, lo, 1+rng.Int63n(6)), false)
		case 9: // DISTINCT streaming dedup
			runBoth(fmt.Sprintf("SELECT DISTINCT grp FROM stock WHERE w_id = %d AND i_id > %d", w, lo), false)
		}
	}
}

// TestDifferentialPushdownVsCNSide runs randomly generated queries twice —
// once with DN-side execution (filter, projection and partial-aggregate
// pushdown) and once forced onto pure CN-side evaluation — and requires
// byte-for-byte identical results. This is the correctness contract of the
// distributed execution split: the fragment evaluator on the data nodes
// and the partial-state merge must be indistinguishable from evaluating
// everything at the computing node.
func TestDifferentialPushdownVsCNSide(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE push (
		w_id BIGINT, i_id BIGINT, grp BIGINT, qty BIGINT, ratio DOUBLE, tag TEXT,
		PRIMARY KEY (w_id, i_id)
	) SHARD BY w_id`)
	rng := rand.New(rand.NewSource(23))
	for w := int64(1); w <= 4; w++ {
		for i := int64(1); i <= 60; i++ {
			qty := fmt.Sprint(rng.Int63n(100))
			if rng.Int63n(12) == 0 {
				qty = "NULL" // exercise NULL semantics on both evaluators
			}
			tag := fmt.Sprintf("'t%d'", rng.Int63n(4))
			if rng.Int63n(15) == 0 {
				tag = "NULL"
			}
			exec(t, s, fmt.Sprintf("INSERT INTO push VALUES (%d, %d, %d, %s, %g, %s)",
				w, i, rng.Int63n(5), qty, float64(i)/7, tag))
		}
	}

	runBoth := func(sql string, ordered, wantPush bool) {
		t.Helper()
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		p, err := planSelect(s, stmt.(*Select))
		if err != nil {
			t.Fatalf("plan %q: %v", sql, err)
		}
		if wantPush && p.push == nil {
			t.Fatalf("%q: expected the planner to split off a DN fragment", sql)
		}
		run := func(noPush bool) *Result {
			t.Helper()
			bp, err := p.bind(nil)
			if err != nil {
				t.Fatal(err)
			}
			bp.noPushdown = noPush
			tx, err := s.sess.Begin(bg)
			if err != nil {
				t.Fatal(err)
			}
			defer tx.Abort(bg)
			res, err := execSelect(bg, tx, bp)
			if err != nil {
				t.Fatalf("%s (noPush=%v): %v", sql, noPush, err)
			}
			return res
		}
		pushed := run(false)
		cnSide := run(true)
		a := rowStrings(pushed.Rows)
		b := rowStrings(cnSide.Rows)
		if !ordered {
			sort.Strings(a)
			sort.Strings(b)
		}
		if len(a) != len(b) {
			t.Fatalf("%q: pushed %d rows vs CN-side %d\n pushed: %v\n cn:     %v", sql, len(a), len(b), a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%q: row %d differs\n pushed: %s\n cn:     %s", sql, i, a[i], b[i])
			}
		}
		// The pushed run must actually have saved WAN rows when a fragment
		// dropped or aggregated anything (a filter that matches everything
		// legitimately ships every row).
		if wantPush && p.push.agg && pushed.Scan.WANRows >= pushed.Scan.StorageRows && pushed.Scan.StorageRows > 8 {
			t.Fatalf("%q: pushed aggregation shipped %d of %d storage rows", sql, pushed.Scan.WANRows, pushed.Scan.StorageRows)
		}
	}

	for trial := 0; trial < 120; trial++ {
		w := 1 + rng.Int63n(4)
		q := rng.Int63n(100)
		g := rng.Int63n(5)
		lo := 1 + rng.Int63n(50)
		switch trial % 12 {
		case 0: // plain comparison filter over a full scan
			runBoth(fmt.Sprintf("SELECT * FROM push WHERE qty >= %d", q), false, true)
		case 1: // conjunction with LIKE and a PK-prefix scan
			runBoth(fmt.Sprintf("SELECT * FROM push WHERE w_id = %d AND tag LIKE 't%%' AND qty < %d", w, q), false, true)
		case 2: // IN list and arithmetic on both evaluators
			runBoth(fmt.Sprintf("SELECT i_id, qty FROM push WHERE grp IN (%d, %d) AND qty %% 3 = 1", g, (g+2)%5), false, true)
		case 3: // NULL semantics: IS NULL and three-valued OR
			runBoth(fmt.Sprintf("SELECT i_id FROM push WHERE qty IS NULL OR qty > %d", q), false, true)
		case 4: // BETWEEN plus projection pushdown
			runBoth(fmt.Sprintf("SELECT grp, qty FROM push WHERE i_id BETWEEN %d AND %d", lo, lo+10), false, true)
		case 5: // global aggregates with a pushed filter
			runBoth(fmt.Sprintf("SELECT COUNT(*), COUNT(qty), SUM(qty), MIN(qty), MAX(qty), AVG(qty) FROM push WHERE qty < %d", q), true, true)
		case 6: // grouped aggregates
			runBoth(fmt.Sprintf("SELECT grp, COUNT(*), SUM(qty) FROM push WHERE qty >= %d GROUP BY grp ORDER BY grp", q), true, true)
		case 7: // multi-column grouping with HAVING on an aggregate
			runBoth(fmt.Sprintf("SELECT w_id, grp, COUNT(*) FROM push WHERE i_id > %d GROUP BY w_id, grp HAVING COUNT(*) > 1 ORDER BY w_id, grp", lo), true, true)
		case 8: // aggregate over an expression, NULL-heavy column
			runBoth("SELECT tag, AVG(qty + 1), MIN(tag) FROM push GROUP BY tag ORDER BY tag", true, true)
		case 9: // grouped agg on a PK-prefix scan with LIMIT/OFFSET
			runBoth(fmt.Sprintf("SELECT grp, MAX(qty) FROM push WHERE w_id = %d GROUP BY grp ORDER BY grp LIMIT 3 OFFSET 1", w), true, true)
		case 10: // residual split: float predicate pushes, the rest stays pushable too
			runBoth(fmt.Sprintf("SELECT i_id FROM push WHERE ratio > %g AND qty <> %d", float64(lo)/9, q), false, true)
		case 11: // empty result: zero-row global aggregate must agree
			runBoth("SELECT COUNT(*), SUM(qty) FROM push WHERE qty > 1000", true, true)
		}
	}

	// DISTINCT aggregates and float GROUP BY must NOT push down (no
	// mergeable partial state / -0.0 vs +0.0 key ambiguity) — and still
	// return identical results via the CN fallback.
	for _, sql := range []string{
		"SELECT COUNT(DISTINCT grp) FROM push",
		"SELECT ratio, COUNT(*) FROM push GROUP BY ratio",
	} {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		p, err := planSelect(s, stmt.(*Select))
		if err != nil {
			t.Fatal(err)
		}
		if p.push != nil && p.push.agg {
			t.Fatalf("%q: must not push aggregation", sql)
		}
		runBoth(sql, false, false)
	}
}

// TestExplainShowsPushdownSplit checks EXPLAIN renders the DN-partial /
// CN-final split so the fragment plan is inspectable from the shell.
func TestExplainShowsPushdownSplit(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE exp (
		w_id BIGINT, i_id BIGINT, grp BIGINT, qty BIGINT,
		PRIMARY KEY (w_id, i_id)
	) SHARD BY w_id`)
	planText := func(sql string) string {
		res := exec(t, s, "EXPLAIN "+sql)
		var lines []string
		for _, r := range res.Rows {
			lines = append(lines, fmt.Sprint(r[0]))
		}
		return fmt.Sprint(lines)
	}
	agg := planText("SELECT grp, COUNT(*), SUM(qty) FROM exp WHERE qty > 5 GROUP BY grp")
	for _, want := range []string{"dn-pushdown", "partial-aggregate [COUNT(*), SUM(qty)]", "group by [grp]", "merge partial aggregate states"} {
		if !strings.Contains(agg, want) {
			t.Fatalf("EXPLAIN aggregate plan missing %q:\n%s", want, agg)
		}
	}
	filt := planText("SELECT i_id FROM exp WHERE qty > 5")
	for _, want := range []string{"dn-pushdown", "filter (qty > 5)", "project [", "cn-residual filter: none"} {
		if !strings.Contains(filt, want) {
			t.Fatalf("EXPLAIN filter plan missing %q:\n%s", want, filt)
		}
	}
}

func rowStrings(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%v", r)
	}
	return out
}

// TestDifferentialJoinStrategies checks that a join whose inner side uses
// point lookups returns the same result as the same join forced onto a
// full-scan inner (by obscuring the ON equality).
func TestDifferentialJoinStrategies(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	fast := exec(t, s, `SELECT o.o_id, l.item FROM orders o JOIN lines l
		ON l.w_id = o.w_id AND l.o_id = o.o_id ORDER BY o.o_id, l.item`)
	slow := exec(t, s, `SELECT o.o_id, l.item FROM orders o JOIN lines l
		ON l.w_id + 0 = o.w_id AND l.o_id + 0 = o.o_id ORDER BY o.o_id, l.item`)
	if len(fast.Rows) != len(slow.Rows) {
		t.Fatalf("join rows: %d vs %d", len(fast.Rows), len(slow.Rows))
	}
	for i := range fast.Rows {
		if fmt.Sprint(fast.Rows[i]) != fmt.Sprint(slow.Rows[i]) {
			t.Fatalf("join row %d: %v vs %v", i, fast.Rows[i], slow.Rows[i])
		}
	}
}
