package gsql

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestDifferentialAccessPaths loads a table with a secondary index and runs
// randomly generated predicates twice: once as written (letting the planner
// pick point gets, prefix scans or index scans) and once with the equality
// obscured by an arithmetic identity, which forces a full scan. Both
// executions must return identical row sets — a differential test of the
// planner's access-path selection.
func TestDifferentialAccessPaths(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE inv (
		w_id BIGINT, i_id BIGINT, grp BIGINT, qty BIGINT, tag TEXT,
		PRIMARY KEY (w_id, i_id),
		INDEX inv_grp (w_id, grp)
	) SHARD BY w_id`)
	rng := rand.New(rand.NewSource(7))
	for w := int64(1); w <= 4; w++ {
		for i := int64(1); i <= 30; i++ {
			stmt := fmt.Sprintf("INSERT INTO inv VALUES (%d, %d, %d, %d, 't%d')",
				w, i, rng.Int63n(5), rng.Int63n(100), rng.Int63n(3))
			exec(t, s, stmt)
		}
	}

	rowsOf := func(sql string) []string {
		t.Helper()
		res := exec(t, s, sql)
		out := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			out[i] = fmt.Sprintf("%v", r)
		}
		sort.Strings(out)
		return out
	}

	for trial := 0; trial < 60; trial++ {
		w := 1 + rng.Int63n(4)
		var pred string
		switch trial % 4 {
		case 0: // full PK: point get
			pred = fmt.Sprintf("w_id = %d AND i_id = %d", w, 1+rng.Int63n(30))
		case 1: // PK prefix scan with residual
			pred = fmt.Sprintf("w_id = %d AND qty > %d", w, rng.Int63n(100))
		case 2: // index scan
			pred = fmt.Sprintf("w_id = %d AND grp = %d", w, rng.Int63n(5))
		case 3: // index scan plus residual filter
			pred = fmt.Sprintf("w_id = %d AND grp = %d AND tag <> 't1'", w, rng.Int63n(5))
		}
		fast := rowsOf("SELECT * FROM inv WHERE " + pred)
		// `w_id + 0 = w` defeats equality extraction: full scan, same rows.
		slowPred := pred
		slowPred = "w_id + 0 = " + fmt.Sprint(w) + slowPred[len(fmt.Sprintf("w_id = %d", w)):]
		slow := rowsOf("SELECT * FROM inv WHERE " + slowPred)
		if len(fast) != len(slow) {
			t.Fatalf("trial %d (%s): %d vs %d rows", trial, pred, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("trial %d (%s): row %d differs\n fast: %s\n slow: %s", trial, pred, i, fast[i], slow[i])
			}
		}
	}
}

// TestDifferentialStreamingVsMaterializing runs randomized queries through
// the streaming operator pipeline (execSelect) and the legacy
// drain-everything path (execSelectMaterialized) and requires identical
// results. The query generator covers every access path the planner can
// pick, pushed range bounds, residual filters, joins, aggregates, DISTINCT,
// ORDER BY, LIMIT and OFFSET — the full surface the refactor touched.
func TestDifferentialStreamingVsMaterializing(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE stock (
		w_id BIGINT, i_id BIGINT, grp BIGINT, qty BIGINT, tag TEXT,
		PRIMARY KEY (w_id, i_id),
		INDEX stock_grp (w_id, grp)
	) SHARD BY w_id`)
	exec(t, s, `CREATE TABLE supplier (
		w_id BIGINT, s_id BIGINT, rating BIGINT,
		PRIMARY KEY (w_id, s_id)
	) SHARD BY w_id`)
	rng := rand.New(rand.NewSource(11))
	for w := int64(1); w <= 4; w++ {
		for i := int64(1); i <= 40; i++ {
			exec(t, s, fmt.Sprintf("INSERT INTO stock VALUES (%d, %d, %d, %d, 't%d')",
				w, i, rng.Int63n(6), rng.Int63n(200), rng.Int63n(4)))
		}
		for sid := int64(1); sid <= 6; sid++ {
			exec(t, s, fmt.Sprintf("INSERT INTO supplier VALUES (%d, %d, %d)", w, sid, rng.Int63n(10)))
		}
	}

	tx, err := s.sess.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort(bg)

	runBoth := func(sql string, ordered bool) {
		t.Helper()
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		p, err := planSelect(s, stmt.(*Select))
		if err != nil {
			t.Fatalf("plan %q: %v", sql, err)
		}
		bp, err := p.bind(nil)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := execSelect(bg, tx, bp)
		if err != nil {
			t.Fatalf("streaming %q: %v", sql, err)
		}
		// Re-plan: execution may have bound state into the plan's exprs.
		p2, err := planSelect(s, stmt.(*Select))
		if err != nil {
			t.Fatal(err)
		}
		bp2, err := p2.bind(nil)
		if err != nil {
			t.Fatal(err)
		}
		mat, err := execSelectMaterialized(bg, tx, bp2)
		if err != nil {
			t.Fatalf("materialized %q: %v", sql, err)
		}
		a := rowStrings(stream.Rows)
		b := rowStrings(mat.Rows)
		if !ordered {
			sort.Strings(a)
			sort.Strings(b)
		}
		if len(a) != len(b) {
			t.Fatalf("%q: streaming %d rows vs materialized %d\n stream: %v\n mat: %v", sql, len(a), len(b), a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%q: row %d differs\n stream: %s\n mat:    %s", sql, i, a[i], b[i])
			}
		}
	}

	for trial := 0; trial < 80; trial++ {
		w := 1 + rng.Int63n(4)
		lo := 1 + rng.Int63n(35)
		hi := lo + rng.Int63n(10)
		q := rng.Int63n(200)
		g := rng.Int63n(6)
		switch trial % 10 {
		case 0: // PK range pushdown, both bounds
			runBoth(fmt.Sprintf("SELECT * FROM stock WHERE w_id = %d AND i_id > %d AND i_id <= %d", w, lo, hi), false)
		case 1: // PK range + residual filter
			runBoth(fmt.Sprintf("SELECT * FROM stock WHERE w_id = %d AND i_id >= %d AND qty < %d", w, lo, q), false)
		case 2: // BETWEEN on the index's next column
			runBoth(fmt.Sprintf("SELECT * FROM stock WHERE w_id = %d AND grp BETWEEN %d AND %d", w, g, g+2), false)
		case 3: // full scan with residual filter
			runBoth(fmt.Sprintf("SELECT i_id, qty FROM stock WHERE qty >= %d AND tag <> 't0'", q), false)
		case 4: // LIMIT/OFFSET need a total order to be deterministic
			runBoth(fmt.Sprintf("SELECT * FROM stock WHERE w_id = %d ORDER BY w_id, i_id LIMIT %d OFFSET %d",
				w, 1+rng.Int63n(8), rng.Int63n(4)), true)
		case 5: // pushed LIMIT without filter (full pushdown path)
			runBoth(fmt.Sprintf("SELECT * FROM stock WHERE w_id = %d ORDER BY w_id, i_id LIMIT %d", w, 1+rng.Int63n(8)), true)
		case 6: // aggregate over a pushed range
			runBoth(fmt.Sprintf("SELECT COUNT(*), SUM(qty) FROM stock WHERE w_id = %d AND i_id BETWEEN %d AND %d", w, lo, hi), true)
		case 7: // grouped aggregate with HAVING
			runBoth(fmt.Sprintf("SELECT grp, COUNT(*) FROM stock WHERE qty < %d GROUP BY grp HAVING COUNT(*) > 1", q), false)
		case 8: // join: streamed nested loop vs materialized
			runBoth(fmt.Sprintf(`SELECT st.i_id, sp.rating FROM supplier sp JOIN stock st
				ON st.w_id = sp.w_id WHERE sp.w_id = %d AND st.i_id > %d AND sp.s_id = %d`, w, lo, 1+rng.Int63n(6)), false)
		case 9: // DISTINCT streaming dedup
			runBoth(fmt.Sprintf("SELECT DISTINCT grp FROM stock WHERE w_id = %d AND i_id > %d", w, lo), false)
		}
	}
}

func rowStrings(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%v", r)
	}
	return out
}

// TestDifferentialJoinStrategies checks that a join whose inner side uses
// point lookups returns the same result as the same join forced onto a
// full-scan inner (by obscuring the ON equality).
func TestDifferentialJoinStrategies(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	fast := exec(t, s, `SELECT o.o_id, l.item FROM orders o JOIN lines l
		ON l.w_id = o.w_id AND l.o_id = o.o_id ORDER BY o.o_id, l.item`)
	slow := exec(t, s, `SELECT o.o_id, l.item FROM orders o JOIN lines l
		ON l.w_id + 0 = o.w_id AND l.o_id + 0 = o.o_id ORDER BY o.o_id, l.item`)
	if len(fast.Rows) != len(slow.Rows) {
		t.Fatalf("join rows: %d vs %d", len(fast.Rows), len(slow.Rows))
	}
	for i := range fast.Rows {
		if fmt.Sprint(fast.Rows[i]) != fmt.Sprint(slow.Rows[i]) {
			t.Fatalf("join row %d: %v vs %v", i, fast.Rows[i], slow.Rows[i])
		}
	}
}
