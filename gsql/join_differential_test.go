package gsql

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestDifferentialJoinEngine runs randomly generated two-table queries
// through every physical join strategy — pushed lookup join, CN hash join,
// and the nested loop with pushdown disabled (the pure legacy oracle) —
// and requires byte-identical results. The dataset is NULL-heavy on the
// join columns (NULL never matches) and includes outer rows whose key
// matches no inner row, the two classic join-bug magnets. This is the
// correctness contract of the distributed join engine: fusing the inner
// lookup into the outer scan's fragment, or replacing the rescan loop
// with a hash table, must be invisible in results.
func TestDifferentialJoinEngine(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE jord (
		w_id BIGINT, o_id BIGINT, c_id BIGINT, grp BIGINT, amt DOUBLE, tag TEXT,
		PRIMARY KEY (w_id, o_id)
	) SHARD BY w_id`)
	exec(t, s, `CREATE TABLE jcust (
		w_id BIGINT, c_id BIGINT, rating BIGINT, fscore DOUBLE, name TEXT,
		PRIMARY KEY (w_id, c_id)
	) SHARD BY w_id`)
	rng := rand.New(rand.NewSource(41))
	for w := int64(1); w <= 4; w++ {
		for c := int64(1); c <= 8; c++ {
			name := fmt.Sprintf("'c%d'", c)
			if rng.Int63n(10) == 0 {
				name = "NULL"
			}
			exec(t, s, fmt.Sprintf("INSERT INTO jcust VALUES (%d, %d, %d, %d.0, %s)",
				w, c, rng.Int63n(6), rng.Int63n(4), name))
		}
		for o := int64(1); o <= 40; o++ {
			// c_id: NULL-heavy, and values above 8 match no customer.
			cid := fmt.Sprint(1 + rng.Int63n(12))
			if rng.Int63n(6) == 0 {
				cid = "NULL"
			}
			amt := fmt.Sprintf("%d.%02d", rng.Int63n(50), rng.Int63n(100))
			if rng.Int63n(10) == 0 {
				amt = "NULL"
			}
			tag := fmt.Sprintf("'t%d'", rng.Int63n(3))
			if rng.Int63n(8) == 0 {
				tag = "NULL"
			}
			exec(t, s, fmt.Sprintf("INSERT INTO jord VALUES (%d, %d, %s, %d, %s, %s)",
				w, o, cid, rng.Int63n(4), amt, tag))
		}
	}

	// runAs executes sql under one strategy mode. The oracle disables
	// pushdown entirely, which forces the nested loop — the legacy
	// row-at-a-time path the engine must be indistinguishable from.
	runAs := func(sql, mode string, oracle bool) *Result {
		t.Helper()
		exec(t, s, "SET JOIN = "+mode)
		s.SetPushdown(!oracle)
		res := exec(t, s, sql)
		s.SetPushdown(true)
		exec(t, s, "SET JOIN = AUTO")
		return res
	}

	lookupRuns, hashRuns := 0, 0
	check := func(sql string, ordered, wantLookup, wantHash bool) {
		t.Helper()
		oracle := rowStrings(runAs(sql, "NESTLOOP", true).Rows)
		if !ordered {
			sort.Strings(oracle)
		}
		for _, mode := range []string{"LOOKUP", "HASH", "AUTO"} {
			res := runAs(sql, mode, false)
			switch {
			case mode == "LOOKUP" && wantLookup:
				if res.JoinStrategy != "lookup-pushdown" {
					t.Fatalf("%q: SET JOIN = LOOKUP ran %q", sql, res.JoinStrategy)
				}
				lookupRuns++
			case mode == "HASH" && wantHash:
				if res.JoinStrategy != "hash" {
					t.Fatalf("%q: SET JOIN = HASH ran %q", sql, res.JoinStrategy)
				}
				hashRuns++
			}
			got := rowStrings(res.Rows)
			if !ordered {
				sort.Strings(got)
			}
			if len(got) != len(oracle) {
				t.Fatalf("%q (%s=%s): %d rows vs oracle %d\n got:    %v\n oracle: %v",
					sql, mode, res.JoinStrategy, len(got), len(oracle), got, oracle)
			}
			for i := range got {
				if got[i] != oracle[i] {
					t.Fatalf("%q (%s=%s): row %d differs\n got:    %s\n oracle: %s",
						sql, mode, res.JoinStrategy, i, got[i], oracle[i])
				}
			}
		}
	}

	const pkOn = "ON c.w_id = o.w_id AND c.c_id = o.c_id"
	queries := 0
	for trial := 0; trial < 48; trial++ {
		q := rng.Int63n(50)
		g := rng.Int63n(4)
		r := rng.Int63n(6)
		w := 1 + rng.Int63n(4)
		switch trial % 8 {
		case 0: // pure PK lookup join, full outer scan
			check("SELECT * FROM jord o JOIN jcust c "+pkOn, false, true, true)
		case 1: // pushable outer filter rides the fragment
			check(fmt.Sprintf("SELECT o.o_id, c.name FROM jord o JOIN jcust c %s WHERE o.grp = %d", pkOn, g),
				false, true, true)
		case 2: // inner-side residual stays on the CN over joined rows
			check(fmt.Sprintf("SELECT o.w_id, o.o_id, c.rating FROM jord o JOIN jcust c %s WHERE c.rating < %d", pkOn, r),
				false, true, true)
		case 3: // ordered projection over the join (NULL-able columns)
			check("SELECT o.w_id, o.o_id, c.name, o.tag FROM jord o JOIN jcust c "+pkOn+
				" ORDER BY o.w_id, o.o_id", false, true, true)
		case 4: // float filter, mixed-side projection, single-shard outer
			check(fmt.Sprintf("SELECT o.o_id, o.amt, c.fscore FROM jord o JOIN jcust c %s WHERE o.w_id = %d AND o.amt > %d.5", pkOn, w, q),
				false, true, true)
		case 5: // grouped aggregate over the joined stream
			check(fmt.Sprintf("SELECT c.rating, COUNT(*) FROM jord o JOIN jcust c %s WHERE o.amt > %d.0 GROUP BY c.rating", pkOn, q),
				false, true, true)
		case 6: // non-PK equi-join: hash-eligible, lookup-ineligible
			check(fmt.Sprintf("SELECT o.o_id, c.c_id FROM jord o JOIN jcust c ON o.grp = c.rating AND o.w_id = c.w_id WHERE o.o_id <= %d", 4+q/4),
				false, false, true)
		case 7: // BIGINT = DOUBLE join key: float-normalized hash path
			check(fmt.Sprintf("SELECT o.o_id, c.c_id FROM jord o JOIN jcust c ON o.grp = c.fscore AND o.w_id = c.w_id WHERE o.o_id <= %d", 4+q/4),
				false, false, true)
		}
		queries += 4 // oracle + three strategy modes
	}
	if queries < 120 {
		t.Fatalf("only %d queries exercised, want >= 120", queries)
	}
	if lookupRuns == 0 || hashRuns == 0 {
		t.Fatalf("strategies not exercised: lookup=%d hash=%d", lookupRuns, hashRuns)
	}
}

// TestJoinStrategySurface pins the SET JOIN / SHOW JOIN session surface and
// the strategy reported on results: AUTO picks the pushed lookup join for a
// co-located PK join, explicit modes force their strategy, and disabling
// pushdown falls back to the nested loop regardless of mode.
func TestJoinStrategySurface(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	join := `SELECT o.o_id, l.item FROM orders o JOIN lines l
		ON l.w_id = o.w_id AND l.o_id = o.o_id AND l.n = 1`

	if res := exec(t, s, "SHOW JOIN"); fmt.Sprint(res.Rows[0][0]) != "AUTO" {
		t.Fatalf("SHOW JOIN = %v, want AUTO", res.Rows[0][0])
	}
	if res := exec(t, s, join); res.JoinStrategy != "lookup-pushdown" {
		t.Fatalf("AUTO ran %q, want lookup-pushdown", res.JoinStrategy)
	}
	exec(t, s, "SET JOIN = HASH")
	if res := exec(t, s, "SHOW JOIN"); fmt.Sprint(res.Rows[0][0]) != "HASH" {
		t.Fatalf("SHOW JOIN = %v, want HASH", res.Rows[0][0])
	}
	if res := exec(t, s, join); res.JoinStrategy != "hash" {
		t.Fatalf("SET JOIN = HASH ran %q", res.JoinStrategy)
	}
	exec(t, s, "SET JOIN = NESTLOOP")
	if res := exec(t, s, join); res.JoinStrategy != "nested-loop" {
		t.Fatalf("SET JOIN = NESTLOOP ran %q", res.JoinStrategy)
	}
	exec(t, s, "SET JOIN = LOOKUP")
	if res := exec(t, s, join); res.JoinStrategy != "lookup-pushdown" {
		t.Fatalf("SET JOIN = LOOKUP ran %q", res.JoinStrategy)
	}
	s.SetPushdown(false)
	if res := exec(t, s, join); res.JoinStrategy != "nested-loop" {
		t.Fatalf("pushdown off ran %q, want nested-loop", res.JoinStrategy)
	}
	s.SetPushdown(true)
	exec(t, s, "SET JOIN = AUTO")

	// Single-table queries report no join strategy.
	if res := exec(t, s, "SELECT * FROM orders WHERE w_id = 1"); res.JoinStrategy != "" {
		t.Fatalf("single-table JoinStrategy = %q", res.JoinStrategy)
	}
	if err := execErr(t, s, "SET JOIN = SIDEWAYS"); err == nil {
		t.Fatal("bad SET JOIN accepted")
	}
}

// TestLookupJoinShipsMatchingRows pins the WAN economics of the pushed
// lookup join: the fan-out join that motivated it ships O(matching) rows
// while the nested loop pays per-outer-row lookup RPCs. LookupRows must
// surface the DN-side inner reads on the result's scan counters.
func TestLookupJoinShipsMatchingRows(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	join := `SELECT l.item, o.amount FROM lines l JOIN orders o
		ON o.w_id = l.w_id AND o.o_id = l.o_id`

	res := exec(t, s, join)
	if res.JoinStrategy != "lookup-pushdown" {
		t.Fatalf("ran %q, want lookup-pushdown", res.JoinStrategy)
	}
	if res.Scan.LookupRows == 0 {
		t.Fatalf("pushed lookup join reported no LookupRows: %+v", res.Scan)
	}
	// 5 line rows, each matching one order: 5 joined rows cross the WAN.
	if got, want := res.Scan.WANRows, int64(len(res.Rows)); got != want {
		t.Fatalf("WANRows = %d, want %d (matching rows only)", got, want)
	}

	exec(t, s, "SET JOIN = NESTLOOP")
	nl := exec(t, s, join)
	exec(t, s, "SET JOIN = AUTO")
	if nl.Scan.LookupRows != 0 {
		t.Fatalf("nested loop reported LookupRows = %d", nl.Scan.LookupRows)
	}
	if len(nl.Rows) != len(res.Rows) {
		t.Fatalf("row count differs: %d vs %d", len(nl.Rows), len(res.Rows))
	}
}
