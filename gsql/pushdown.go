package gsql

import (
	"strings"

	"globaldb/gsql/fragment"
	"globaldb/internal/table"
)

// This file is the planner half of GlobalDB's distributed execution split.
// planSelect calls analyzePushdown after choosing access paths; it rewrites
// one logical plan into a DN-partial phase (a serializable
// fragment.Fragment of filters, projections and partial aggregates that
// data nodes evaluate inside the paged scan RPC) and a CN-final phase (the
// residual filter, partial-state merge, HAVING, ORDER BY, DISTINCT,
// LIMIT/OFFSET). Anything it cannot prove pushable stays on the computing
// node, so the rewrite only ever narrows what crosses the WAN, never what
// the query means.

// pushPlan records a SELECT's DN-partial phase.
type pushPlan struct {
	// frag is the fragment template; placeholders remain as OpParam nodes
	// and are bound per execution, so cached plans push down too.
	frag *fragment.Fragment
	// cnFilter is the residual filter evaluated on the CN when the
	// fragment is attached (the pushed conjuncts removed); nil when the
	// whole filter pushed down.
	cnFilter Expr
	// agg marks a DN-partial aggregation (CN merges states per group).
	agg bool
	// groupCols are the outer-schema positions of the GROUP BY columns
	// (agg only), used to rebuild representative rows from group keys.
	groupCols []int

	// describe-only fields (EXPLAIN).
	pushedExprs []Expr
	projected   []string
}

// analyzePushdown decides what part of the plan can run on data nodes.
// Pushdown applies to the outer scan of PK-prefix and full-table access
// paths: point gets ship one row anyway, and index scans stream index
// entries (key + PK), which a data node cannot filter as rows.
func analyzePushdown(p *selectPlan) *pushPlan {
	s := p.outer
	if s.kind != accessFull && s.kind != accessPKPrefix {
		return nil
	}
	sch := s.tab.schema
	kinds := make([]table.Kind, len(sch.Columns))
	for i, c := range sch.Columns {
		kinds[i] = c.Kind
	}

	// Split the residual filter: conjuncts that compile against the outer
	// table alone run on the data nodes; the rest stay on the CN.
	var pushed []*fragment.Expr
	var pushedSrc []Expr
	var residual []Expr
	for _, c := range conjuncts(p.filter) {
		if fe, ok := compilePushExpr(c, p.tables); ok {
			pushed = append(pushed, fe)
			pushedSrc = append(pushedSrc, c)
		} else {
			residual = append(residual, c)
		}
	}

	pp := &pushPlan{
		frag:        &fragment.Fragment{Kinds: kinds, Filter: andAll(pushed)},
		cnFilter:    andAll2(residual),
		pushedExprs: pushedSrc,
	}

	if aggPush := analyzeAggPushdown(p, pp, residual); aggPush {
		return pp
	}

	// Row pushdown: a pushed filter and/or a projection must actually save
	// something, or the fragment is pure overhead.
	proj := projectionFor(p, pp.cnFilter, sch)
	if proj != nil {
		pp.frag.Project = proj
		for _, c := range proj {
			pp.projected = append(pp.projected, sch.Columns[c].Name)
		}
	}
	if pp.frag.Filter == nil && pp.frag.Project == nil {
		return nil
	}
	return pp
}

// analyzeAggPushdown upgrades the fragment to DN-partial aggregation when
// the whole plan qualifies: single table, fully pushed filter, plain
// column GROUP BY, and only mergeable aggregates. Float group columns are
// excluded: the CN groups by value (where -0 and +0 coincide) while group
// keys are ordered bytes (where they differ), and the two must agree.
func analyzeAggPushdown(p *selectPlan, pp *pushPlan, residual []Expr) bool {
	if !p.grouped || p.inner != nil || len(residual) > 0 {
		return false
	}
	sch := p.outer.tab.schema
	groupCols := make([]int, 0, len(p.groupBy))
	groupSet := map[int]bool{}
	for _, g := range p.groupBy {
		cr, ok := g.(*ColRef)
		if !ok {
			return false
		}
		ti, ci, err := resolveCol(cr, p.tables)
		if err != nil || ti != 0 {
			return false
		}
		if sch.Columns[ci].Kind == table.Float64 {
			return false
		}
		groupCols = append(groupCols, ci)
		groupSet[ci] = true
	}
	specs := make([]fragment.AggSpec, 0, len(p.aggs))
	for _, fn := range p.aggs {
		spec, ok := compileAggSpec(fn, p.tables)
		if !ok {
			return false
		}
		specs = append(specs, spec)
	}
	// Everything evaluated after the merge — outputs, HAVING, ORDER BY —
	// may only touch group columns (reconstructable from the group key)
	// and aggregate slots (carried as states).
	for _, e := range p.outExprs {
		if !refsWithinGroup(e, p.tables, groupSet) {
			return false
		}
	}
	if p.having != nil && !refsWithinGroup(p.having, p.tables, groupSet) {
		return false
	}
	for _, o := range p.orderBy {
		if !refsWithinGroup(o.Expr, p.tables, groupSet) {
			return false
		}
	}
	pp.frag.GroupBy = groupCols
	pp.frag.Aggs = specs
	pp.agg = true
	pp.groupCols = groupCols
	pp.cnFilter = nil
	return true
}

// compileAggSpec translates one gsql aggregate call into a partial
// aggregate slot. DISTINCT aggregates are not mergeable across shards and
// stay on the CN.
func compileAggSpec(fn *FuncExpr, tables []*boundTable) (fragment.AggSpec, bool) {
	if fn.Distinct {
		return fragment.AggSpec{}, false
	}
	var kind fragment.AggKind
	switch fn.Name {
	case "COUNT":
		kind = fragment.AggCount
	case "SUM":
		kind = fragment.AggSum
	case "AVG":
		kind = fragment.AggAvg
	case "MIN":
		kind = fragment.AggMin
	case "MAX":
		kind = fragment.AggMax
	default:
		return fragment.AggSpec{}, false
	}
	if len(fn.Args) == 1 {
		if _, isStar := fn.Args[0].(*Star); isStar {
			if fn.Name != "COUNT" {
				return fragment.AggSpec{}, false
			}
			return fragment.AggSpec{Kind: kind, Star: true}, true
		}
	}
	if len(fn.Args) != 1 {
		return fragment.AggSpec{}, false
	}
	arg, ok := compilePushExpr(fn.Args[0], tables)
	if !ok {
		return fragment.AggSpec{}, false
	}
	return fragment.AggSpec{Kind: kind, Arg: arg}, true
}

// refsWithinGroup reports whether every column reference in e (outside
// aggregate calls) names a group column of the outer table.
func refsWithinGroup(e Expr, tables []*boundTable, groupSet map[int]bool) bool {
	switch x := e.(type) {
	case nil, *Literal, *Placeholder:
		return true
	case *Star:
		return false
	case *ColRef:
		ti, ci, err := resolveCol(x, tables)
		return err == nil && ti == 0 && groupSet[ci]
	case *FuncExpr:
		if aggregateFuncs[x.Name] {
			return true // the aggregate's value comes from the merged state
		}
		for _, a := range x.Args {
			if !refsWithinGroup(a, tables, groupSet) {
				return false
			}
		}
		return true
	case *BinaryExpr:
		return refsWithinGroup(x.Left, tables, groupSet) && refsWithinGroup(x.Right, tables, groupSet)
	case *UnaryExpr:
		return refsWithinGroup(x.X, tables, groupSet)
	case *IsNullExpr:
		return refsWithinGroup(x.X, tables, groupSet)
	case *InExpr:
		if !refsWithinGroup(x.X, tables, groupSet) {
			return false
		}
		for _, it := range x.List {
			if !refsWithinGroup(it, tables, groupSet) {
				return false
			}
		}
		return true
	case *BetweenExpr:
		return refsWithinGroup(x.X, tables, groupSet) &&
			refsWithinGroup(x.Lo, tables, groupSet) && refsWithinGroup(x.Hi, tables, groupSet)
	default:
		return false
	}
}

// projectionFor computes the outer columns the CN still needs once the
// pushed conjuncts run DN-side. Returns nil when every column is needed
// (shipping full rows costs nothing extra).
func projectionFor(p *selectPlan, cnFilter Expr, sch *table.Schema) []int {
	needed := map[int]bool{}
	collect := func(e Expr) { collectOuterCols(e, p.tables, needed) }
	for _, e := range p.outExprs {
		collect(e)
	}
	collect(cnFilter)
	for _, o := range p.orderBy {
		collect(o.Expr)
	}
	collect(p.having)
	for _, g := range p.groupBy {
		collect(g)
	}
	if p.inner != nil {
		// Inner lookups bind outer columns in their key and range exprs.
		for _, e := range p.inner.keyExprs {
			collect(e)
		}
		collect(p.inner.rangeLo)
		collect(p.inner.rangeHi)
	}
	if len(needed) >= len(sch.Columns) {
		return nil
	}
	out := make([]int, 0, len(needed))
	for ci := range needed {
		out = append(out, ci)
	}
	// Schema order keeps the projected encoding deterministic.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	if len(out) == 0 {
		// Keep at least one column so shipped rows stay decodable (e.g.
		// SELECT COUNT(*) on the CN-side grouped path).
		out = append(out, 0)
	}
	return out
}

// collectOuterCols records outer-table column positions referenced by e.
func collectOuterCols(e Expr, tables []*boundTable, into map[int]bool) {
	switch x := e.(type) {
	case *ColRef:
		ti, ci, err := resolveCol(x, tables)
		if err == nil && ti == 0 {
			into[ci] = true
		}
	case *BinaryExpr:
		collectOuterCols(x.Left, tables, into)
		collectOuterCols(x.Right, tables, into)
	case *UnaryExpr:
		collectOuterCols(x.X, tables, into)
	case *IsNullExpr:
		collectOuterCols(x.X, tables, into)
	case *InExpr:
		collectOuterCols(x.X, tables, into)
		for _, it := range x.List {
			collectOuterCols(it, tables, into)
		}
	case *BetweenExpr:
		collectOuterCols(x.X, tables, into)
		collectOuterCols(x.Lo, tables, into)
		collectOuterCols(x.Hi, tables, into)
	case *FuncExpr:
		for _, a := range x.Args {
			collectOuterCols(a, tables, into)
		}
	}
}

// compilePushExpr translates a gsql expression into a serializable
// fragment expression over the outer table's storage positions. It fails
// (ok=false) on anything the DN evaluator does not mirror — references to
// other tables, aggregates, stars — keeping the translation conservative:
// a conjunct that does not compile simply stays on the CN.
func compilePushExpr(e Expr, tables []*boundTable) (*fragment.Expr, bool) {
	switch x := e.(type) {
	case *Literal:
		switch x.Val.(type) {
		case nil, int64, float64, string, []byte, bool:
			return &fragment.Expr{Op: fragment.OpConst, Val: x.Val}, true
		}
		return nil, false
	case *Placeholder:
		return &fragment.Expr{Op: fragment.OpParam, Col: x.Idx}, true
	case *ColRef:
		ti, ci, err := resolveCol(x, tables)
		if err != nil || ti != 0 {
			return nil, false
		}
		return &fragment.Expr{Op: fragment.OpCol, Col: ci}, true
	case *BinaryExpr:
		op, ok := binaryOps[x.Op]
		if !ok {
			return nil, false
		}
		l, ok := compilePushExpr(x.Left, tables)
		if !ok {
			return nil, false
		}
		r, ok := compilePushExpr(x.Right, tables)
		if !ok {
			return nil, false
		}
		return &fragment.Expr{Op: op, Args: []fragment.Expr{*l, *r}}, true
	case *UnaryExpr:
		arg, ok := compilePushExpr(x.X, tables)
		if !ok {
			return nil, false
		}
		switch x.Op {
		case "NOT":
			return &fragment.Expr{Op: fragment.OpNot, Args: []fragment.Expr{*arg}}, true
		case "-":
			return &fragment.Expr{Op: fragment.OpNeg, Args: []fragment.Expr{*arg}}, true
		}
		return nil, false
	case *IsNullExpr:
		arg, ok := compilePushExpr(x.X, tables)
		if !ok {
			return nil, false
		}
		op := fragment.OpIsNull
		if x.Neg {
			op = fragment.OpNotNull
		}
		return &fragment.Expr{Op: op, Args: []fragment.Expr{*arg}}, true
	case *InExpr:
		probe, ok := compilePushExpr(x.X, tables)
		if !ok {
			return nil, false
		}
		args := []fragment.Expr{*probe}
		for _, it := range x.List {
			fe, ok := compilePushExpr(it, tables)
			if !ok {
				return nil, false
			}
			args = append(args, *fe)
		}
		op := fragment.OpIn
		if x.Neg {
			op = fragment.OpNotIn
		}
		return &fragment.Expr{Op: op, Args: args}, true
	case *BetweenExpr:
		v, ok := compilePushExpr(x.X, tables)
		if !ok {
			return nil, false
		}
		lo, ok := compilePushExpr(x.Lo, tables)
		if !ok {
			return nil, false
		}
		hi, ok := compilePushExpr(x.Hi, tables)
		if !ok {
			return nil, false
		}
		op := fragment.OpBetween
		if x.Neg {
			op = fragment.OpNotBetween
		}
		return &fragment.Expr{Op: op, Args: []fragment.Expr{*v, *lo, *hi}}, true
	case *FuncExpr:
		if aggregateFuncs[x.Name] {
			return nil, false
		}
		op, ok := scalarOps[x.Name]
		if !ok {
			return nil, false
		}
		if x.Name == "COALESCE" {
			var args []fragment.Expr
			for _, a := range x.Args {
				fe, ok := compilePushExpr(a, tables)
				if !ok {
					return nil, false
				}
				args = append(args, *fe)
			}
			return &fragment.Expr{Op: op, Args: args}, true
		}
		if len(x.Args) != 1 {
			return nil, false
		}
		arg, ok := compilePushExpr(x.Args[0], tables)
		if !ok {
			return nil, false
		}
		return &fragment.Expr{Op: op, Args: []fragment.Expr{*arg}}, true
	default:
		return nil, false
	}
}

var binaryOps = map[string]fragment.Op{
	"=": fragment.OpEq, "<>": fragment.OpNe,
	"<": fragment.OpLt, "<=": fragment.OpLe,
	">": fragment.OpGt, ">=": fragment.OpGe,
	"AND": fragment.OpAnd, "OR": fragment.OpOr,
	"+": fragment.OpAdd, "-": fragment.OpSub, "*": fragment.OpMul,
	"/": fragment.OpDiv, "%": fragment.OpMod,
	"LIKE": fragment.OpLike,
}

var scalarOps = map[string]fragment.Op{
	"ABS": fragment.OpAbs, "LOWER": fragment.OpLower, "UPPER": fragment.OpUpper,
	"LENGTH": fragment.OpLength, "COALESCE": fragment.OpCoalesce,
}

// andAll folds compiled conjuncts into one fragment expression.
func andAll(conjs []*fragment.Expr) *fragment.Expr {
	if len(conjs) == 0 {
		return nil
	}
	acc := conjs[0]
	for _, c := range conjs[1:] {
		acc = &fragment.Expr{Op: fragment.OpAnd, Args: []fragment.Expr{*acc, *c}}
	}
	return acc
}

// andAll2 folds gsql conjuncts back into one residual expression.
func andAll2(conjs []Expr) Expr {
	if len(conjs) == 0 {
		return nil
	}
	acc := conjs[0]
	for _, c := range conjs[1:] {
		acc = &BinaryExpr{Op: "AND", Left: acc, Right: c}
	}
	return acc
}

// describe renders the DN-partial / CN-final split for EXPLAIN.
func (pp *pushPlan) describe(p *selectPlan) []string {
	var out []string
	var dn []string
	if len(pp.pushedExprs) > 0 {
		parts := make([]string, len(pp.pushedExprs))
		for i, e := range pp.pushedExprs {
			parts[i] = e.String()
		}
		dn = append(dn, "filter "+strings.Join(parts, " AND "))
	}
	if pp.agg {
		parts := make([]string, len(p.aggs))
		for i, fn := range p.aggs {
			parts[i] = fn.String()
		}
		dn = append(dn, "partial-aggregate ["+strings.Join(parts, ", ")+"]")
		if len(p.groupBy) > 0 {
			gparts := make([]string, len(p.groupBy))
			for i, g := range p.groupBy {
				gparts[i] = g.String()
			}
			dn = append(dn, "group by ["+strings.Join(gparts, ", ")+"]")
		}
	} else if len(pp.projected) > 0 {
		dn = append(dn, "project ["+strings.Join(pp.projected, ", ")+"]")
	}
	out = append(out, "  dn-pushdown: "+strings.Join(dn, ", "))
	switch {
	case pp.agg:
		out = append(out, "  cn-final: merge partial aggregate states across shards")
	case pp.cnFilter != nil:
		out = append(out, "  cn-residual filter: "+pp.cnFilter.String())
	default:
		out = append(out, "  cn-residual filter: none")
	}
	return out
}
