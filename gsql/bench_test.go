package gsql

import (
	"fmt"
	"testing"
)

func BenchmarkParseSelect(b *testing.B) {
	src := `SELECT w_id, COUNT(*) AS n, SUM(amount) AS total
		FROM orders o JOIN lines l ON o.w_id = l.w_id
		WHERE o.status = 'open' AND amount BETWEEN 10 AND 100
		GROUP BY w_id HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 10`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanPointGet(b *testing.B) {
	cat := testCatalog()
	stmt, err := Parse("SELECT * FROM orders WHERE w_id = 1 AND o_id = 2")
	if err != nil {
		b.Fatal(err)
	}
	sel := stmt.(*Select)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := planSelect(cat, sel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecPointGet(b *testing.B) {
	s := openSQLBench(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Exec(bg, "SELECT amount FROM orders WHERE w_id = 1 AND o_id = 1")
		if err != nil || len(res.Rows) != 1 {
			b.Fatalf("%v %v", res, err)
		}
	}
}

// BenchmarkExecPointGetPrepared is the prepared-statement hot path: the
// statement is parsed and planned once, then executed with bound
// parameters — zero parser or planner work (and zero parser allocations)
// per execution.
func BenchmarkExecPointGetPrepared(b *testing.B) {
	s := openSQLBench(b)
	st, err := s.Prepare(bg, "SELECT amount FROM orders WHERE w_id = ? AND o_id = ?")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Exec(bg, int64(1), int64(1))
		if err != nil || len(res.Rows) != 1 {
			b.Fatalf("%v %v", res, err)
		}
	}
}

// BenchmarkPlanCacheLookup isolates the prepared hot path's parse+plan
// replacement: one warm plan-cache lookup. It must run at zero
// allocations per op — repeated execution does no parser work at all.
func BenchmarkPlanCacheLookup(b *testing.B) {
	s := openSQLBench(b)
	const q = "SELECT amount FROM orders WHERE w_id = ? AND o_id = ?"
	if _, err := s.cachedStatement(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.cachedStatement(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecPointGetReparse is the baseline the prepared path is
// measured against: parse + plan on every execution (ExecStmt plans
// SELECTs afresh), the way the pre-placeholder API worked.
func BenchmarkExecPointGetReparse(b *testing.B) {
	s := openSQLBench(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stmt, err := Parse("SELECT amount FROM orders WHERE w_id = 1 AND o_id = 1")
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.ExecStmt(bg, stmt)
		if err != nil || len(res.Rows) != 1 {
			b.Fatalf("%v %v", res, err)
		}
	}
}

func BenchmarkExecAggregateFullScan(b *testing.B) {
	s := openSQLBench(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Exec(bg, "SELECT w_id, COUNT(*), SUM(amount) FROM orders GROUP BY w_id")
		if err != nil || len(res.Rows) == 0 {
			b.Fatalf("%v %v", res, err)
		}
	}
}

// openSQLBench mirrors openSQL for benchmarks with a modest data set.
func openSQLBench(b *testing.B) *Session {
	b.Helper()
	s, err := newBenchSession()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.db.Close)
	b.ResetTimer()
	return s
}

func newBenchSession() (*Session, error) {
	cfg := benchClusterConfig()
	db, err := openBenchDB(cfg)
	if err != nil {
		return nil, err
	}
	s, err := Connect(db, "xian")
	if err != nil {
		db.Close()
		return nil, err
	}
	if _, err := s.Exec(bg, `CREATE TABLE orders (
		w_id BIGINT, o_id BIGINT, c_id BIGINT, amount DOUBLE,
		PRIMARY KEY (w_id, o_id)) SHARD BY w_id`); err != nil {
		db.Close()
		return nil, err
	}
	for w := int64(1); w <= 4; w++ {
		for o := int64(1); o <= 25; o++ {
			stmt := fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d, %f)", w, o, o%7, float64(o)*1.5)
			if _, err := s.Exec(bg, stmt); err != nil {
				db.Close()
				return nil, err
			}
		}
	}
	return s, nil
}
