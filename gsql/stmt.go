package gsql

import (
	"context"
	"fmt"
)

// Stmt is a prepared statement: parsed once, planned once, executed many
// times with fresh parameter values. The plan is revalidated against the
// cluster catalog's DDL version on every execution, so a CREATE/DROP TABLE
// between executions transparently replans instead of running a stale plan.
//
// A Stmt is bound to its Session and shares the session's no-concurrency
// contract.
type Stmt struct {
	sess   *Session
	cs     *preparedStatement
	closed bool
}

// Prepare parses and plans one SQL statement for repeated execution.
// Placeholders (`?` or `$n`) mark the parameter positions that Exec and
// Query bind.
func (s *Session) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	cs, err := s.cachedStatement(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{sess: s, cs: cs}, nil
}

// Text returns the statement's SQL text.
func (st *Stmt) Text() string { return st.cs.text }

// NumParams reports how many parameter values Exec/Query expect.
func (st *Stmt) NumParams() int { return st.cs.numParams }

// Close releases the prepared statement. Further executions fail.
func (st *Stmt) Close() error {
	st.closed = true
	return nil
}

// revalidate returns the statement's plan, replanning if the catalog's DDL
// version moved since it was built.
func (st *Stmt) revalidate() (*preparedStatement, error) {
	if st.closed {
		return nil, fmt.Errorf("gsql: statement is closed")
	}
	version := st.sess.db.CatalogVersion()
	if st.cs.version == version {
		return st.cs, nil
	}
	cs, err := st.sess.prepareText(st.cs.text, version)
	if err != nil {
		return nil, err
	}
	st.cs = cs
	st.sess.plans.put(cs) // refresh the session cache too
	return cs, nil
}

// Exec runs the prepared statement with args bound to its placeholders.
// The hot path performs no parsing and, absent DDL, no planning.
func (st *Stmt) Exec(ctx context.Context, args ...any) (*Result, error) {
	cs, err := st.revalidate()
	if err != nil {
		return nil, err
	}
	params, err := bindArgs(cs.numParams, args)
	if err != nil {
		return nil, err
	}
	return st.sess.dispatch(ctx, cs.stmt, cs.plan, params)
}

// Query runs a prepared SELECT and streams its result rows.
func (st *Stmt) Query(ctx context.Context, args ...any) (*Rows, error) {
	cs, err := st.revalidate()
	if err != nil {
		return nil, err
	}
	params, err := bindArgs(cs.numParams, args)
	if err != nil {
		return nil, err
	}
	sel, ok := cs.stmt.(*Select)
	if !ok {
		return nil, fmt.Errorf("%w, have %T", ErrNotSelect, cs.stmt)
	}
	return st.sess.queryRows(ctx, sel, cs.plan, params)
}
