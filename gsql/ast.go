package gsql

import (
	"fmt"
	"strings"
	"time"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	// String renders the statement back as SQL (for logs and EXPLAIN).
	String() string
}

// Expr is a scalar expression node.
type Expr interface {
	expr()
	String() string
}

// ---- Expressions ----

// Literal is a constant value: int64, float64, string, bool, or nil.
type Literal struct {
	Val any
}

func (*Literal) expr() {}

func (l *Literal) String() string {
	switch v := l.Val.(type) {
	case nil:
		return "NULL"
	case string:
		return "'" + strings.ReplaceAll(v, "'", "''") + "'"
	case bool:
		if v {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Placeholder is a statement parameter: `?` (ordinal, numbered left to
// right) or `$n` (explicit 1-based position). Both styles normalize to a
// 1-based Idx; mixing them in one statement is a parse error. A placeholder
// is valid anywhere a literal is (WHERE values, IN lists, INSERT VALUES,
// UPDATE SET, LIMIT/OFFSET) and is bound at execution time, so a planned
// statement can run repeatedly with fresh parameter values.
type Placeholder struct {
	Idx int // 1-based parameter position
}

func (*Placeholder) expr() {}

func (p *Placeholder) String() string { return fmt.Sprintf("$%d", p.Idx) }

// ColRef names a column, optionally qualified by a table name or alias.
type ColRef struct {
	Table string // optional qualifier
	Name  string
}

func (*ColRef) expr() {}

func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Star is the * in SELECT * or COUNT(*).
type Star struct{}

func (*Star) expr()          {}
func (*Star) String() string { return "*" }

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	Op          string // =, <>, <, <=, >, >=, AND, OR, +, -, *, /, %, LIKE
	Left, Right Expr
}

func (*BinaryExpr) expr() {}

func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// UnaryExpr applies a prefix operator: NOT or unary minus.
type UnaryExpr struct {
	Op string // NOT, -
	X  Expr
}

func (*UnaryExpr) expr() {}

func (u *UnaryExpr) String() string {
	if u.Op == "NOT" {
		return "(NOT " + u.X.String() + ")"
	}
	return "(" + u.Op + u.X.String() + ")"
}

// IsNullExpr is `x IS [NOT] NULL`.
type IsNullExpr struct {
	X   Expr
	Neg bool
}

func (*IsNullExpr) expr() {}

func (e *IsNullExpr) String() string {
	if e.Neg {
		return "(" + e.X.String() + " IS NOT NULL)"
	}
	return "(" + e.X.String() + " IS NULL)"
}

// InExpr is `x [NOT] IN (v1, v2, ...)`.
type InExpr struct {
	X    Expr
	List []Expr
	Neg  bool
}

func (*InExpr) expr() {}

func (e *InExpr) String() string {
	items := make([]string, len(e.List))
	for i, it := range e.List {
		items[i] = it.String()
	}
	op := " IN "
	if e.Neg {
		op = " NOT IN "
	}
	return "(" + e.X.String() + op + "(" + strings.Join(items, ", ") + "))"
}

// BetweenExpr is `x BETWEEN lo AND hi` (inclusive both ends).
type BetweenExpr struct {
	X, Lo, Hi Expr
	Neg       bool
}

func (*BetweenExpr) expr() {}

func (e *BetweenExpr) String() string {
	op := " BETWEEN "
	if e.Neg {
		op = " NOT BETWEEN "
	}
	return "(" + e.X.String() + op + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

// FuncExpr is a function call: aggregates (COUNT, SUM, AVG, MIN, MAX) or
// scalar functions (ABS, LOWER, UPPER, LENGTH, COALESCE).
type FuncExpr struct {
	Name     string // uppercased
	Args     []Expr
	Distinct bool // COUNT(DISTINCT x)
}

func (*FuncExpr) expr() {}

func (f *FuncExpr) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + strings.Join(args, ", ") + ")"
}

// aggregateFuncs are the supported aggregate function names.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// isAggregate reports whether the expression tree contains an aggregate call.
func isAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncExpr:
		if aggregateFuncs[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if isAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return isAggregate(x.Left) || isAggregate(x.Right)
	case *UnaryExpr:
		return isAggregate(x.X)
	case *IsNullExpr:
		return isAggregate(x.X)
	case *InExpr:
		if isAggregate(x.X) {
			return true
		}
		for _, it := range x.List {
			if isAggregate(it) {
				return true
			}
		}
	case *BetweenExpr:
		return isAggregate(x.X) || isAggregate(x.Lo) || isAggregate(x.Hi)
	}
	return false
}

// ---- Statements ----

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type string // normalized: BIGINT, DOUBLE, TEXT, BYTES, BOOL
}

// IndexDef is one secondary index in CREATE TABLE.
type IndexDef struct {
	Name string
	Cols []string
}

// CreateTable is CREATE TABLE name (cols..., PRIMARY KEY(...), INDEX ...)
// [SHARD BY col] [WITH SYNC REPLICATION].
type CreateTable struct {
	Name    string
	Columns []ColumnDef
	PK      []string
	Indexes []IndexDef
	ShardBy string // empty: default (first PK column)
	Sync    bool
}

func (*CreateTable) stmt() {}

func (c *CreateTable) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE " + c.Name + " (")
	for i, col := range c.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(col.Name + " " + col.Type)
	}
	sb.WriteString(", PRIMARY KEY (" + strings.Join(c.PK, ", ") + ")")
	for _, ix := range c.Indexes {
		sb.WriteString(", INDEX " + ix.Name + " (" + strings.Join(ix.Cols, ", ") + ")")
	}
	sb.WriteString(")")
	if c.ShardBy != "" {
		sb.WriteString(" SHARD BY " + c.ShardBy)
	}
	if c.Sync {
		sb.WriteString(" WITH SYNC REPLICATION")
	}
	return sb.String()
}

// DropTable is DROP TABLE name.
type DropTable struct {
	Name string
}

func (*DropTable) stmt()            {}
func (d *DropTable) String() string { return "DROP TABLE " + d.Name }

// Insert is INSERT INTO name [(cols)] VALUES (...), (...).
type Insert struct {
	Table string
	Cols  []string // empty: schema order
	Rows  [][]Expr
}

func (*Insert) stmt() {}

func (ins *Insert) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO " + ins.Table)
	if len(ins.Cols) > 0 {
		sb.WriteString(" (" + strings.Join(ins.Cols, ", ") + ")")
	}
	sb.WriteString(" VALUES ")
	for i, row := range ins.Rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		vals := make([]string, len(row))
		for j, v := range row {
			vals[j] = v.String()
		}
		sb.WriteString("(" + strings.Join(vals, ", ") + ")")
	}
	return sb.String()
}

// TableRef is a table in FROM, with an optional alias.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

func (t TableRef) refName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// SelectItem is one output column: an expression with an optional alias,
// or a bare/qualified star.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a SELECT statement over one table or a two-table inner join.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Join     *TableRef // nil when single-table
	On       Expr      // join condition, required when Join != nil
	Where    Expr      // nil when absent
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1: no limit
	Offset   int64 // 0: no offset
	// LimitExpr / OffsetExpr carry a parameterized LIMIT/OFFSET (`LIMIT ?`).
	// When non-nil they override the numeric fields and are resolved at
	// bind time, so one cached plan serves every bound value.
	LimitExpr  Expr
	OffsetExpr Expr
	// Staleness overrides the session staleness bound for this query:
	// SELECT ... AS OF STALENESS '50ms'. Zero means "use session setting".
	Staleness time.Duration
}

func (*Select) stmt() {}

func (s *Select) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS " + it.Alias)
		}
	}
	sb.WriteString(" FROM " + s.From.Table)
	if s.From.Alias != "" && s.From.Alias != s.From.Table {
		sb.WriteString(" " + s.From.Alias)
	}
	if s.Join != nil {
		sb.WriteString(" JOIN " + s.Join.Table)
		if s.Join.Alias != "" && s.Join.Alias != s.Join.Table {
			sb.WriteString(" " + s.Join.Alias)
		}
		sb.WriteString(" ON " + s.On.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.String()
		}
		sb.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.Expr.String()
			if o.Desc {
				parts[i] += " DESC"
			}
		}
		sb.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	switch {
	case s.LimitExpr != nil:
		sb.WriteString(" LIMIT " + s.LimitExpr.String())
	case s.Limit >= 0:
		sb.WriteString(fmt.Sprintf(" LIMIT %d", s.Limit))
	}
	switch {
	case s.OffsetExpr != nil:
		sb.WriteString(" OFFSET " + s.OffsetExpr.String())
	case s.Offset > 0:
		sb.WriteString(fmt.Sprintf(" OFFSET %d", s.Offset))
	}
	if s.Staleness > 0 {
		sb.WriteString(" AS OF STALENESS '" + s.Staleness.String() + "'")
	}
	return sb.String()
}

// Assignment is one SET col = expr in UPDATE.
type Assignment struct {
	Col  string
	Expr Expr
}

// Update is UPDATE table SET assignments WHERE ...
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (*Update) stmt() {}

func (u *Update) String() string {
	parts := make([]string, len(u.Set))
	for i, a := range u.Set {
		parts[i] = a.Col + " = " + a.Expr.String()
	}
	s := "UPDATE " + u.Table + " SET " + strings.Join(parts, ", ")
	if u.Where != nil {
		s += " WHERE " + u.Where.String()
	}
	return s
}

// Delete is DELETE FROM table WHERE ...
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmt() {}

func (d *Delete) String() string {
	s := "DELETE FROM " + d.Table
	if d.Where != nil {
		s += " WHERE " + d.Where.String()
	}
	return s
}

// Begin starts an explicit transaction.
type Begin struct{}

func (*Begin) stmt()          {}
func (*Begin) String() string { return "BEGIN" }

// Commit commits the open transaction.
type Commit struct{}

func (*Commit) stmt()          {}
func (*Commit) String() string { return "COMMIT" }

// Rollback aborts the open transaction.
type Rollback struct{}

func (*Rollback) stmt()          {}
func (*Rollback) String() string { return "ROLLBACK" }

// SetStaleness controls where out-of-transaction SELECTs read:
//
//	SET STALENESS = NONE    -- shard primaries (fresh reads; the default)
//	SET STALENESS = ANY     -- asynchronous replicas, unbounded staleness
//	SET STALENESS = '100ms' -- asynchronous replicas, bounded staleness
type SetStaleness struct {
	Bound time.Duration
	Any   bool
	None  bool
}

func (*SetStaleness) stmt() {}

func (s *SetStaleness) String() string {
	switch {
	case s.None:
		return "SET STALENESS = NONE"
	case s.Any:
		return "SET STALENESS = ANY"
	default:
		return "SET STALENESS = '" + s.Bound.String() + "'"
	}
}

// SetJoin selects the session's physical join strategy:
//
//	SET JOIN = AUTO     -- planner picks (default): lookup pushdown when
//	                       co-located, else hash by row estimates, else
//	                       nested-loop
//	SET JOIN = LOOKUP   -- pushed lookup join where applicable
//	SET JOIN = HASH     -- CN hash join where applicable
//	SET JOIN = NESTLOOP -- always the nested loop
type SetJoin struct {
	Mode string // AUTO, HASH, LOOKUP, NESTLOOP
}

func (*SetJoin) stmt()            {}
func (s *SetJoin) String() string { return "SET JOIN = " + s.Mode }

// Show is SHOW TABLES | SHOW MODE | SHOW REGIONS.
type Show struct {
	What string // TABLES, MODE, REGIONS, STALENESS, JOIN
}

func (*Show) stmt()             {}
func (sh *Show) String() string { return "SHOW " + sh.What }

// Explain wraps a SELECT and returns its plan instead of running it. With
// Analyze set (EXPLAIN ANALYZE) the query also executes, and the output
// appends the measured span tree and scan counters below the plan.
type Explain struct {
	Stmt    Statement
	Analyze bool
}

func (*Explain) stmt() {}
func (e *Explain) String() string {
	if e.Analyze {
		return "EXPLAIN ANALYZE " + e.Stmt.String()
	}
	return "EXPLAIN " + e.Stmt.String()
}
