package gsql

import "fmt"

// CountParams reports how many parameters a statement expects: the highest
// placeholder position referenced anywhere in it (0 for a statement without
// placeholders). `?` placeholders are numbered left to right by the parser,
// so for them this equals the placeholder count; `$n` statements may skip
// positions, in which case the skipped parameters must still be supplied.
func CountParams(stmt Statement) int {
	max := 0
	note := func(e Expr) {
		walkExpr(e, func(x Expr) {
			if ph, ok := x.(*Placeholder); ok && ph.Idx > max {
				max = ph.Idx
			}
		})
	}
	switch st := stmt.(type) {
	case *Select:
		countSelectParams(st, note)
	case *Insert:
		for _, row := range st.Rows {
			for _, e := range row {
				note(e)
			}
		}
	case *Update:
		for _, a := range st.Set {
			note(a.Expr)
		}
		note(st.Where)
	case *Delete:
		note(st.Where)
	case *Explain:
		return CountParams(st.Stmt)
	}
	return max
}

func countSelectParams(sel *Select, note func(Expr)) {
	for _, it := range sel.Items {
		note(it.Expr)
	}
	note(sel.On)
	note(sel.Where)
	for _, g := range sel.GroupBy {
		note(g)
	}
	note(sel.Having)
	for _, o := range sel.OrderBy {
		note(o.Expr)
	}
	note(sel.LimitExpr)
	note(sel.OffsetExpr)
}

// walkExpr applies fn to every node of an expression tree (pre-order).
func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		walkExpr(x.Left, fn)
		walkExpr(x.Right, fn)
	case *UnaryExpr:
		walkExpr(x.X, fn)
	case *IsNullExpr:
		walkExpr(x.X, fn)
	case *InExpr:
		walkExpr(x.X, fn)
		for _, it := range x.List {
			walkExpr(it, fn)
		}
	case *BetweenExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *FuncExpr:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	}
}

// normalizeArgs widens Go integer and float variants to the engine's value
// types (int64, float64), matching what database/sql's default converter
// produces, so direct gsql callers can pass plain ints.
func normalizeArgs(args []any) ([]any, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]any, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case nil, int64, float64, string, []byte, bool:
			out[i] = a
		case int:
			out[i] = int64(v)
		case int8:
			out[i] = int64(v)
		case int16:
			out[i] = int64(v)
		case int32:
			out[i] = int64(v)
		case uint:
			out[i] = int64(v)
		case uint8:
			out[i] = int64(v)
		case uint16:
			out[i] = int64(v)
		case uint32:
			out[i] = int64(v)
		case uint64:
			if v > 1<<63-1 {
				return nil, fmt.Errorf("gsql: parameter %d overflows BIGINT", i+1)
			}
			out[i] = int64(v)
		case float32:
			out[i] = float64(v)
		default:
			return nil, fmt.Errorf("%w: unsupported parameter type %T (parameter %d)", ErrType, a, i+1)
		}
	}
	return out, nil
}
