package fragment

import (
	"fmt"

	"globaldb/internal/keys"
	"globaldb/internal/table"
)

// This file defines RowBatch, the batch-native unit of data flow through
// the execution pipeline: a column-major batch of decoded rows backed by a
// reusable arena. A data node decodes one storage page into a RowBatch
// exactly once, evaluates filters and aggregate arguments over it with the
// batch entry points in eval.go (producing selection vectors rather than
// copying survivors), and encodes the survivors for the wire. The arena
// owns every backing slab, so steady-state page evaluation performs no
// per-row allocations beyond the boxed values themselves.

// RowBatch is a column-major batch of decoded rows. Column c's values live
// in Col(c) (nil entries are SQL NULL), with a per-column validity bitmap
// maintained alongside so kernels can test or skip NULLs a word at a time.
// Batches are created by an Arena and are invalidated by the arena's next
// NewBatch call.
type RowBatch struct {
	kinds []table.Kind
	cols  [][]any
	valid [][]uint64 // valid[c] bit r set = row r of column c is non-NULL
	n     int
	a     *Arena
}

// Len returns the number of rows appended so far.
func (b *RowBatch) Len() int { return b.n }

// NumCols returns the batch's column count.
func (b *RowBatch) NumCols() int { return len(b.kinds) }

// Col returns column c's value vector (length Len). Callers must treat it
// as read-only.
func (b *RowBatch) Col(c int) []any { return b.cols[c] }

// IsNull reports whether row r of column c is NULL, via the validity
// bitmap.
func (b *RowBatch) IsNull(c, r int) bool {
	return b.valid[c][r>>6]&(1<<(uint(r)&63)) == 0
}

// AppendStored decodes one stored row value (the same encoding
// Schema.EncodeRow produces) into the batch's columns. The value is decoded
// exactly once; every later expression reference reads the decoded column
// vectors.
func (b *RowBatch) AppendStored(val []byte) error {
	var d keys.Decoder
	d.Reset(val)
	r := b.n
	for c, k := range b.kinds {
		v, err := decodeKeyValue(&d, k)
		if err != nil {
			return fmt.Errorf("fragment: column %d: %w", c, err)
		}
		b.cols[c] = append(b.cols[c], v)
		if v != nil {
			b.valid[c][r>>6] |= 1 << (uint(r) & 63)
		}
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: trailing row bytes", ErrCorrupt)
	}
	b.n++
	return nil
}

// AppendStoredNeeded is AppendStored restricted to a column mask: columns
// whose need entry is false are skipped byte-wise without materializing a
// value (no boxing, no string copy) and read back as NULL. Callers must
// guarantee that no evaluated expression or shipped projection references
// a skipped column — Fragment.NeededCols computes exactly that set. A nil
// mask decodes every column.
func (b *RowBatch) AppendStoredNeeded(val []byte, need []bool) error {
	if need == nil {
		return b.AppendStored(val)
	}
	var d keys.Decoder
	d.Reset(val)
	r := b.n
	for c := range b.kinds {
		if !need[c] {
			if err := d.Skip(); err != nil {
				return fmt.Errorf("fragment: column %d: %w", c, err)
			}
			b.cols[c] = append(b.cols[c], nil)
			continue
		}
		v, err := decodeKeyValue(&d, b.kinds[c])
		if err != nil {
			return fmt.Errorf("fragment: column %d: %w", c, err)
		}
		b.cols[c] = append(b.cols[c], v)
		if v != nil {
			b.valid[c][r>>6] |= 1 << (uint(r) & 63)
		}
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: trailing row bytes", ErrCorrupt)
	}
	b.n++
	return nil
}

// rowView copies row r into the arena's scratch row buffer and returns it —
// the bridge from the column-major batch to the row-at-a-time scalar
// evaluator. The returned slice is valid until the next rowView call on the
// same arena.
func (b *RowBatch) rowView(r int) []any {
	buf := b.a.rowbuf[:len(b.kinds)]
	for c := range b.kinds {
		buf[c] = b.cols[c][r]
	}
	return buf
}

// Arena owns the reusable backing slabs for one evaluator's batches: the
// value slab the column vectors are carved from, the validity bitmap words,
// the selection vector, and scratch buffers for row views and expression
// outputs. One arena serves one page-evaluation loop at a time; reusing it
// across pages is what makes the batch pipeline allocation-free in steady
// state. The zero value is ready to use.
type Arena struct {
	vals   []any
	bits   []uint64
	colHdr [][]any
	bitHdr [][]uint64
	rowbuf []any
	sel    []int
	out    []any
	batch  RowBatch
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// NewBatch returns an empty batch for rows of the given column kinds with
// capacity for capRows rows, reusing the arena's slabs. It invalidates the
// arena's previously returned batch, selection vector and output buffer.
func (a *Arena) NewBatch(kinds []table.Kind, capRows int) *RowBatch {
	ncols := len(kinds)
	if need := ncols * capRows; cap(a.vals) < need {
		a.vals = make([]any, need)
	}
	words := (capRows + 63) / 64
	if need := ncols * words; cap(a.bits) < need {
		a.bits = make([]uint64, need)
	} else {
		clear(a.bits[:ncols*words])
	}
	if cap(a.colHdr) < ncols {
		a.colHdr = make([][]any, ncols)
		a.bitHdr = make([][]uint64, ncols)
	}
	if cap(a.rowbuf) < ncols {
		a.rowbuf = make([]any, ncols)
	}
	cols := a.colHdr[:ncols]
	valid := a.bitHdr[:ncols]
	for c := 0; c < ncols; c++ {
		off := c * capRows
		cols[c] = a.vals[off : off : off+capRows]
		valid[c] = a.bits[c*words : (c+1)*words]
	}
	a.batch = RowBatch{kinds: kinds, cols: cols, valid: valid, a: a}
	return &a.batch
}

// Sel returns the arena's selection vector reset to length zero with
// capacity for at least n entries.
func (a *Arena) Sel(n int) []int {
	if cap(a.sel) < n {
		a.sel = make([]int, 0, n)
	}
	return a.sel[:0]
}

// Out returns the arena's expression-output vector with length n.
func (a *Arena) Out(n int) []any {
	if cap(a.out) < n {
		a.out = make([]any, n)
	}
	return a.out[:n]
}
