package fragment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"regexp"
	"strings"
	"sync"
)

// This file is the data-node-side evaluator. Its semantics match gsql's
// scalar evaluation (globaldb/gsql/expr.go) operator for operator —
// three-valued logic, NULL propagation, mixed int/float numeric
// comparison, LIKE translation — because a predicate pushed to a data node
// must accept exactly the rows the computing node's residual filter would
// have. The scalar kernel (Compare, Arith, LikeMatch, ErrType) is defined
// here and gsql's evaluator delegates to it, so the two evaluators cannot
// drift; gsql's differential tests additionally run every generated query
// through both and require byte-identical results.

// ErrType is returned when an expression combines incompatible values. It
// is the same sentinel gsql's evaluator wraps (gsql.ErrType aliases it),
// so errors.Is works across the CN/DN split.
var ErrType = errors.New("gsql: type error")

// Eval evaluates an expression against one decoded row.
func Eval(e *Expr, row []any) (any, error) {
	switch e.Op {
	case OpConst:
		return e.Val, nil
	case OpCol:
		if e.Col < 0 || e.Col >= len(row) {
			return nil, fmt.Errorf("fragment: column %d of %d", e.Col, len(row))
		}
		return row[e.Col], nil
	case OpParam:
		return nil, fmt.Errorf("fragment: unbound parameter $%d reached the data node", e.Col)
	case OpAnd:
		return evalAndOr(e, row, true)
	case OpOr:
		return evalAndOr(e, row, false)
	case OpNot:
		v, err := Eval(&e.Args[0], row)
		if err != nil || v == nil {
			return nil, err
		}
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("%w: NOT %T", ErrType, v)
		}
		return !b, nil
	case OpNeg:
		v, err := Eval(&e.Args[0], row)
		if err != nil || v == nil {
			return nil, err
		}
		switch n := v.(type) {
		case int64:
			return -n, nil
		case float64:
			return -n, nil
		}
		return nil, fmt.Errorf("%w: -%T", ErrType, v)
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		lv, err := Eval(&e.Args[0], row)
		if err != nil {
			return nil, err
		}
		rv, err := Eval(&e.Args[1], row)
		if err != nil {
			return nil, err
		}
		if lv == nil || rv == nil {
			return nil, nil
		}
		c, err := Compare(lv, rv)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case OpEq:
			return c == 0, nil
		case OpNe:
			return c != 0, nil
		case OpLt:
			return c < 0, nil
		case OpLe:
			return c <= 0, nil
		case OpGt:
			return c > 0, nil
		default:
			return c >= 0, nil
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		lv, err := Eval(&e.Args[0], row)
		if err != nil {
			return nil, err
		}
		rv, err := Eval(&e.Args[1], row)
		if err != nil {
			return nil, err
		}
		if lv == nil || rv == nil {
			return nil, nil
		}
		return Arith(e.Op.String(), lv, rv)
	case OpLike:
		lv, err := Eval(&e.Args[0], row)
		if err != nil {
			return nil, err
		}
		rv, err := Eval(&e.Args[1], row)
		if err != nil {
			return nil, err
		}
		if lv == nil || rv == nil {
			return nil, nil
		}
		s, sok := lv.(string)
		pat, pok := rv.(string)
		if !sok || !pok {
			return nil, fmt.Errorf("%w: %T LIKE %T", ErrType, lv, rv)
		}
		return LikeMatch(s, pat)
	case OpIsNull, OpNotNull:
		v, err := Eval(&e.Args[0], row)
		if err != nil {
			return nil, err
		}
		return (v == nil) == (e.Op == OpIsNull), nil
	case OpIn, OpNotIn:
		v, err := Eval(&e.Args[0], row)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		neg := e.Op == OpNotIn
		for i := 1; i < len(e.Args); i++ {
			iv, err := Eval(&e.Args[i], row)
			if err != nil {
				return nil, err
			}
			if iv == nil {
				continue
			}
			c, err := Compare(v, iv)
			if err != nil {
				return nil, err
			}
			if c == 0 {
				return !neg, nil
			}
		}
		return neg, nil
	case OpBetween, OpNotBetween:
		v, err := Eval(&e.Args[0], row)
		if err != nil {
			return nil, err
		}
		lo, err := Eval(&e.Args[1], row)
		if err != nil {
			return nil, err
		}
		hi, err := Eval(&e.Args[2], row)
		if err != nil {
			return nil, err
		}
		if v == nil || lo == nil || hi == nil {
			return nil, nil
		}
		cl, err := Compare(v, lo)
		if err != nil {
			return nil, err
		}
		ch, err := Compare(v, hi)
		if err != nil {
			return nil, err
		}
		return (cl >= 0 && ch <= 0) == (e.Op == OpBetween), nil
	case OpCoalesce:
		for i := range e.Args {
			v, err := Eval(&e.Args[i], row)
			if err != nil {
				return nil, err
			}
			if v != nil {
				return v, nil
			}
		}
		return nil, nil
	case OpAbs, OpLower, OpUpper, OpLength:
		v, err := Eval(&e.Args[0], row)
		if err != nil || v == nil {
			return nil, err
		}
		switch e.Op {
		case OpAbs:
			switch n := v.(type) {
			case int64:
				if n < 0 {
					return -n, nil
				}
				return n, nil
			case float64:
				return math.Abs(n), nil
			}
			return nil, fmt.Errorf("%w: ABS(%T)", ErrType, v)
		case OpLower:
			s, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("%w: LOWER(%T)", ErrType, v)
			}
			return strings.ToLower(s), nil
		case OpUpper:
			s, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("%w: UPPER(%T)", ErrType, v)
			}
			return strings.ToUpper(s), nil
		default:
			switch s := v.(type) {
			case string:
				return int64(len(s)), nil
			case []byte:
				return int64(len(s)), nil
			}
			return nil, fmt.Errorf("%w: LENGTH(%T)", ErrType, v)
		}
	default:
		return nil, fmt.Errorf("fragment: cannot evaluate %v", e.Op)
	}
}

func evalAndOr(e *Expr, row []any, isAnd bool) (any, error) {
	lv, err := Eval(&e.Args[0], row)
	if err != nil {
		return nil, err
	}
	if lb, ok := lv.(bool); ok && lb != isAnd {
		return lb, nil // short circuit: false AND _, true OR _
	}
	rv, err := Eval(&e.Args[1], row)
	if err != nil {
		return nil, err
	}
	if rb, ok := rv.(bool); ok && rb != isAnd {
		return rb, nil
	}
	if lv == nil || rv == nil {
		return nil, nil
	}
	lb, lok := lv.(bool)
	rb, rok := rv.(bool)
	if !lok || !rok {
		return nil, fmt.Errorf("%w: %T AND/OR %T", ErrType, lv, rv)
	}
	if isAnd {
		return lb && rb, nil
	}
	return lb || rb, nil
}

// FilterRow reports whether the fragment's filter accepts the row (a nil
// filter accepts everything; NULL results drop the row, as in SQL).
func (f *Fragment) FilterRow(row []any) (bool, error) {
	if f.Filter == nil {
		return true, nil
	}
	v, err := Eval(f.Filter, row)
	if err != nil {
		return false, err
	}
	switch x := v.(type) {
	case nil:
		return false, nil
	case bool:
		return x, nil
	default:
		return false, fmt.Errorf("%w: %T used as a condition", ErrType, v)
	}
}

// ---- Batch evaluation ----
//
// The batch entry points below are the kernel's vectorized face: they
// evaluate one expression over a RowBatch, producing a selection vector
// (FilterBatch) or an output value vector (EvalBatch) instead of being
// called once per row. Semantics are identical to the scalar evaluator by
// construction — the generic path calls Eval row by row over a reused row
// view, and the comparison fast path runs the same Compare kernel in the
// same argument order — so a batched data node accepts exactly the rows a
// row-at-a-time one would.

// FilterBatch evaluates the fragment's filter over rows [from, b.Len()) of
// the batch, appending the indexes of accepted rows to sel (the selection
// vector) until maxKeep rows are kept (maxKeep <= 0 keeps all). It returns
// the extended selection vector and how many rows were evaluated, which
// callers use for exact examined-row accounting when an output budget stops
// the walk mid-batch. A nil filter accepts every row; NULL results drop the
// row, as in SQL.
func (f *Fragment) FilterBatch(b *RowBatch, from, maxKeep int, sel []int) ([]int, int, error) {
	n := b.Len()
	evaluated, kept := 0, 0
	if f.Filter == nil {
		for r := from; r < n; r++ {
			evaluated++
			sel = append(sel, r)
			if kept++; maxKeep > 0 && kept >= maxKeep {
				break
			}
		}
		return sel, evaluated, nil
	}
	if col, cval, op, swapped, ok := constCmpFilter(f.Filter); ok {
		colv := b.cols[col]
		valid := b.valid[col]
		for r := from; r < n; {
			// The validity bitmap lets a NULL-heavy stretch drop a whole
			// word of rows at a time: NULL never passes a comparison.
			if r&63 == 0 && r+64 <= n && valid[r>>6] == 0 {
				evaluated += 64
				r += 64
				continue
			}
			v := colv[r]
			r++
			evaluated++
			if v == nil || cval == nil {
				continue
			}
			lv, rv := v, cval
			if swapped {
				lv, rv = cval, v
			}
			c, err := Compare(lv, rv)
			if err != nil {
				return sel, evaluated, err
			}
			if !cmpAccepts(op, c) {
				continue
			}
			sel = append(sel, r-1)
			if kept++; maxKeep > 0 && kept >= maxKeep {
				break
			}
		}
		return sel, evaluated, nil
	}
	for r := from; r < n; r++ {
		evaluated++
		keep, err := f.FilterRow(b.rowView(r))
		if err != nil {
			return sel, evaluated, err
		}
		if !keep {
			continue
		}
		sel = append(sel, r)
		if kept++; maxKeep > 0 && kept >= maxKeep {
			break
		}
	}
	return sel, evaluated, nil
}

// constCmpFilter recognizes the dominant pushed-filter shape — a single
// comparison between one column and one constant — so FilterBatch can run
// it as a tight loop over the column vector.
func constCmpFilter(e *Expr) (col int, cval any, op Op, swapped, ok bool) {
	switch e.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
	default:
		return 0, nil, 0, false, false
	}
	l, r := &e.Args[0], &e.Args[1]
	switch {
	case l.Op == OpCol && r.Op == OpConst:
		return l.Col, r.Val, e.Op, false, true
	case l.Op == OpConst && r.Op == OpCol:
		return r.Col, l.Val, e.Op, true, true
	}
	return 0, nil, 0, false, false
}

// cmpAccepts maps a comparison opcode over the three-way Compare result.
func cmpAccepts(op Op, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	default:
		return c >= 0
	}
}

// EvalBatch evaluates e once per selected row, writing the result for row
// sel[i] into out[i]. Column references and constants read the batch
// directly; everything else runs the scalar evaluator over a reused row
// view.
func EvalBatch(e *Expr, b *RowBatch, sel []int, out []any) error {
	switch e.Op {
	case OpConst:
		for i := range sel {
			out[i] = e.Val
		}
		return nil
	case OpCol:
		colv := b.cols[e.Col]
		for i, r := range sel {
			out[i] = colv[r]
		}
		return nil
	}
	for i, r := range sel {
		v, err := Eval(e, b.rowView(r))
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// Compare orders two non-nil SQL values: mixed int64/float64 compare
// numerically; otherwise both sides must share a type. This is the single
// comparison kernel for both the CN and DN evaluators.
func Compare(a, b any) (int, error) {
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			switch {
			case x < y:
				return -1, nil
			case x > y:
				return 1, nil
			}
			return 0, nil
		case float64:
			return cmpFloat(float64(x), y), nil
		}
	case float64:
		switch y := b.(type) {
		case int64:
			return cmpFloat(x, float64(y)), nil
		case float64:
			return cmpFloat(x, y), nil
		}
	case string:
		if y, ok := b.(string); ok {
			return strings.Compare(x, y), nil
		}
	case []byte:
		if y, ok := b.([]byte); ok {
			return strings.Compare(string(x), string(y)), nil
		}
	case bool:
		if y, ok := b.(bool); ok {
			switch {
			case !x && y:
				return -1, nil
			case x && !y:
				return 1, nil
			}
			return 0, nil
		}
	}
	return 0, fmt.Errorf("%w: cannot compare %T and %T", ErrType, a, b)
}

func cmpFloat(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}

// Arith applies +, -, *, /, % to two non-nil values — the shared
// arithmetic kernel for both evaluators. String concatenation via + is a
// convenience extension.
func Arith(op string, a, b any) (any, error) {
	ai, aIsInt := a.(int64)
	bi, bIsInt := b.(int64)
	if aIsInt && bIsInt {
		switch op {
		case "+":
			return ai + bi, nil
		case "-":
			return ai - bi, nil
		case "*":
			return ai * bi, nil
		case "/":
			if bi == 0 {
				return nil, fmt.Errorf("gsql: division by zero")
			}
			return ai / bi, nil
		case "%":
			if bi == 0 {
				return nil, fmt.Errorf("gsql: division by zero")
			}
			return ai % bi, nil
		}
	}
	af, aOK := toFloat(a)
	bf, bOK := toFloat(b)
	if !aOK || !bOK {
		if op == "+" {
			as, aStr := a.(string)
			bs, bStr := b.(string)
			if aStr && bStr {
				return as + bs, nil
			}
		}
		return nil, fmt.Errorf("%w: %T %s %T", ErrType, a, op, b)
	}
	switch op {
	case "+":
		return af + bf, nil
	case "-":
		return af - bf, nil
	case "*":
		return af * bf, nil
	case "/":
		if bf == 0 {
			return nil, fmt.Errorf("gsql: division by zero")
		}
		return af / bf, nil
	case "%":
		if bf == 0 {
			return nil, fmt.Errorf("gsql: division by zero")
		}
		return math.Mod(af, bf), nil
	}
	return nil, fmt.Errorf("gsql: unknown operator %q", op)
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// likeCache memoizes compiled LIKE patterns, shared by both evaluators.
var likeCache sync.Map // string -> *regexp.Regexp

// LikeMatch implements SQL LIKE with % and _ wildcards — the shared
// pattern kernel for both evaluators.
func LikeMatch(s, pattern string) (bool, error) {
	if cached, ok := likeCache.Load(pattern); ok {
		return cached.(*regexp.Regexp).MatchString(s), nil
	}
	var sb strings.Builder
	sb.WriteString("(?s)^")
	for _, r := range pattern {
		switch r {
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteString("$")
	re, err := regexp.Compile(sb.String())
	if err != nil {
		return false, fmt.Errorf("gsql: bad LIKE pattern %q: %v", pattern, err)
	}
	likeCache.Store(pattern, re)
	return re.MatchString(s), nil
}

// ---- Partial aggregate states ----

// AggState is one aggregate slot's partial state over one group on one
// shard. States from different shards merge commutatively and
// associatively, which is what lets the coordinator combine them in
// whatever order the cross-shard merge delivers groups. AVG is carried as
// SumF+Count (the classic sum+count decomposition).
type AggState struct {
	Count   int64
	SumI    int64
	SumF    float64
	IsFloat bool
	Min     any
	Max     any
}

// Accumulate folds one row into the state under the given spec. NULL
// argument values are skipped, as SQL aggregates require.
func (st *AggState) Accumulate(spec AggSpec, row []any) error {
	if spec.Star {
		st.Count++
		return nil
	}
	v, err := Eval(spec.Arg, row)
	if err != nil {
		return err
	}
	return st.Fold(spec.Kind, v)
}

// Fold folds one already-evaluated argument value into the state — the
// entry point batch evaluation uses after EvalBatch has produced the
// argument vector. NULL values are skipped, as SQL aggregates require.
func (st *AggState) Fold(kind AggKind, v any) error {
	if v == nil {
		return nil
	}
	st.Count++
	switch kind {
	case AggCount:
		return nil
	case AggSum, AggAvg:
		switch x := v.(type) {
		case int64:
			st.SumI += x
			st.SumF += float64(x)
		case float64:
			st.IsFloat = true
			st.SumF += x
		default:
			return fmt.Errorf("%w: %v(%T)", ErrType, kind, v)
		}
		return nil
	case AggMin:
		if st.Min == nil {
			st.Min = v
			return nil
		}
		c, err := Compare(v, st.Min)
		if err != nil {
			return err
		}
		if c < 0 {
			st.Min = v
		}
		return nil
	case AggMax:
		if st.Max == nil {
			st.Max = v
			return nil
		}
		c, err := Compare(v, st.Max)
		if err != nil {
			return err
		}
		if c > 0 {
			st.Max = v
		}
		return nil
	default:
		return fmt.Errorf("fragment: unknown aggregate %v", kind)
	}
}

// Merge folds another shard's partial state for the same group and slot.
func (st *AggState) Merge(o AggState) error {
	st.Count += o.Count
	st.SumI += o.SumI
	st.SumF += o.SumF
	st.IsFloat = st.IsFloat || o.IsFloat
	if o.Min != nil {
		if st.Min == nil {
			st.Min = o.Min
		} else if c, err := Compare(o.Min, st.Min); err != nil {
			return err
		} else if c < 0 {
			st.Min = o.Min
		}
	}
	if o.Max != nil {
		if st.Max == nil {
			st.Max = o.Max
		} else if c, err := Compare(o.Max, st.Max); err != nil {
			return err
		} else if c > 0 {
			st.Max = o.Max
		}
	}
	return nil
}

// Final computes the aggregate's SQL result from the merged state,
// matching gsql's CN-side aggregation exactly (SUM and AVG over zero rows
// are NULL; COUNT is 0).
func (st AggState) Final(kind AggKind) any {
	switch kind {
	case AggCount:
		return st.Count
	case AggSum:
		if st.Count == 0 {
			return nil
		}
		if st.IsFloat {
			return st.SumF
		}
		return st.SumI
	case AggAvg:
		if st.Count == 0 {
			return nil
		}
		return st.SumF / float64(st.Count)
	case AggMin:
		return st.Min
	case AggMax:
		return st.Max
	default:
		return nil
	}
}

// State wire format: per state, a flags byte, then count / sumI / sumF,
// then the optional min and max values.
const (
	stFloat byte = 1 << iota
	stHasMin
	stHasMax
)

// EncodeStates serializes one group's aggregate states (one per fragment
// agg slot) as the partial row's value.
func EncodeStates(states []AggState) ([]byte, error) {
	var b []byte
	for _, st := range states {
		flags := byte(0)
		if st.IsFloat {
			flags |= stFloat
		}
		if st.Min != nil {
			flags |= stHasMin
		}
		if st.Max != nil {
			flags |= stHasMax
		}
		b = append(b, flags)
		b = binary.BigEndian.AppendUint64(b, uint64(st.Count))
		b = binary.BigEndian.AppendUint64(b, uint64(st.SumI))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(st.SumF))
		var err error
		if st.Min != nil {
			if b, err = appendValue(b, st.Min); err != nil {
				return nil, err
			}
		}
		if st.Max != nil {
			if b, err = appendValue(b, st.Max); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// DecodeStates parses a partial row's value back into aggregate states.
func DecodeStates(b []byte) ([]AggState, error) {
	var out []AggState
	for len(b) > 0 {
		if len(b) < 25 {
			return nil, ErrCorrupt
		}
		flags := b[0]
		st := AggState{
			Count:   int64(binary.BigEndian.Uint64(b[1:9])),
			SumI:    int64(binary.BigEndian.Uint64(b[9:17])),
			SumF:    math.Float64frombits(binary.BigEndian.Uint64(b[17:25])),
			IsFloat: flags&stFloat != 0,
		}
		b = b[25:]
		var err error
		if flags&stHasMin != 0 {
			if st.Min, b, err = decodeValue(b); err != nil {
				return nil, err
			}
		}
		if flags&stHasMax != 0 {
			if st.Max, b, err = decodeValue(b); err != nil {
				return nil, err
			}
		}
		out = append(out, st)
	}
	return out, nil
}

// MergeEncodedStates merges two encoded partial-state rows for the same
// group key — the coordinator's cross-shard combine step. Both sides must
// carry the same number of slots (they come from the same fragment).
func MergeEncodedStates(a, b []byte) ([]byte, error) {
	sa, err := DecodeStates(a)
	if err != nil {
		return nil, err
	}
	sb, err := DecodeStates(b)
	if err != nil {
		return nil, err
	}
	if len(sa) != len(sb) {
		return nil, fmt.Errorf("fragment: merging %d states with %d", len(sa), len(sb))
	}
	for i := range sa {
		if err := sa[i].Merge(sb[i]); err != nil {
			return nil, err
		}
	}
	return EncodeStates(sa)
}
