package fragment

import (
	"fmt"
	"reflect"
	"testing"

	"globaldb/internal/table"
)

func col(i int) Expr      { return Expr{Op: OpCol, Col: i} }
func constant(v any) Expr { return Expr{Op: OpConst, Val: v} }
func bin(op Op, l, r Expr) *Expr {
	return &Expr{Op: op, Args: []Expr{l, r}}
}

// TestFragmentRoundTrip proves the fragment wire format is lossless for a
// representative mix of node types and values — the property the stateless
// RPC boundary depends on.
func TestFragmentRoundTrip(t *testing.T) {
	or := func(args ...Expr) Expr {
		acc := args[0]
		for _, a := range args[1:] {
			acc = Expr{Op: OpOr, Args: []Expr{acc, a}}
		}
		return acc
	}
	filter := &Expr{Op: OpAnd, Args: []Expr{
		*bin(OpGe, col(2), constant(int64(-7))),
		or(
			*bin(OpLike, col(3), constant("t%")),
			Expr{Op: OpIn, Args: []Expr{col(1), constant(int64(1)), constant(nil), constant(3.5)}},
			Expr{Op: OpBetween, Args: []Expr{col(2), {Op: OpParam, Col: 1}, constant(int64(90))}},
			Expr{Op: OpNot, Args: []Expr{{Op: OpIsNull, Args: []Expr{col(0)}}}},
			*bin(OpEq, Expr{Op: OpLength, Args: []Expr{col(3)}}, constant(int64(2))),
			*bin(OpEq, col(4), constant(true)),
			*bin(OpEq, col(5), constant([]byte{0x00, 0xFF})),
		),
	}}
	f := &Fragment{
		Kinds:   []table.Kind{table.Int64, table.Int64, table.Int64, table.String, table.Bool, table.Bytes, table.Float64},
		Filter:  filter,
		Project: []int{0, 2, 3},
		GroupBy: []int{3, 1},
		Aggs: []AggSpec{
			{Kind: AggCount, Star: true},
			{Kind: AggSum, Arg: &Expr{Op: OpCol, Col: 2}},
			{Kind: AggAvg, Arg: &Expr{Op: OpAdd, Args: []Expr{col(2), constant(int64(1))}}},
			{Kind: AggMin, Arg: &Expr{Op: OpCol, Col: 6}},
		},
	}
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\n in:  %+v\n out: %+v", f, got)
	}
	// Corrupt and truncated inputs must error, not panic.
	for cut := 1; cut < len(b); cut += 3 {
		if _, err := Decode(b[:cut]); err == nil {
			t.Fatalf("Decode accepted a %d-byte truncation", cut)
		}
	}
}

// TestDecodeRejectsBadArity: a tampered encoding whose operator nodes
// carry the wrong number of arguments (e.g. OpEq with zero args) must fail
// Decode validation — evaluating it would index past Args and panic the
// data node mid-RPC.
func TestDecodeRejectsBadArity(t *testing.T) {
	bad := []*Fragment{
		{Kinds: []table.Kind{table.Int64}, Filter: &Expr{Op: OpEq}},
		{Kinds: []table.Kind{table.Int64}, Filter: &Expr{Op: OpNot}},
		{Kinds: []table.Kind{table.Int64}, Filter: &Expr{Op: OpBetween, Args: []Expr{col(0), constant(int64(1))}}},
		{Kinds: []table.Kind{table.Int64}, Filter: &Expr{Op: OpIn}},
		{Kinds: []table.Kind{table.Int64}, Filter: &Expr{Op: Op(200), Args: []Expr{col(0)}}},
		{Kinds: []table.Kind{table.Int64}, Filter: bin(OpEq, col(3), constant(int64(1)))}, // column out of range
		{Kinds: []table.Kind{table.Int64}, Aggs: []AggSpec{{Kind: AggKind(99), Star: true}}},
		{Kinds: []table.Kind{table.Int64}, Aggs: []AggSpec{{Kind: AggSum}}}, // non-star agg without arg
	}
	for i, f := range bad {
		b, err := f.Encode()
		if err != nil {
			continue // unencodable is an acceptable rejection too
		}
		if _, err := Decode(b); err == nil {
			t.Fatalf("case %d: Decode accepted an invalid fragment %+v", i, f)
		}
	}
}

// TestBindSubstitutesParams checks that Bind replaces OpParam nodes with
// constants, rejects unbound positions, and leaves the template intact.
func TestBindSubstitutesParams(t *testing.T) {
	tpl := &Fragment{
		Kinds:  []table.Kind{table.Int64},
		Filter: bin(OpGt, col(0), Expr{Op: OpParam, Col: 1}),
	}
	bound, err := tpl.Bind([]any{int64(42)})
	if err != nil {
		t.Fatal(err)
	}
	if bound.Filter.Args[1].Op != OpConst || bound.Filter.Args[1].Val != int64(42) {
		t.Fatalf("bound arg = %+v", bound.Filter.Args[1])
	}
	if tpl.Filter.Args[1].Op != OpParam {
		t.Fatal("Bind mutated the template")
	}
	if _, err := tpl.Bind(nil); err == nil {
		t.Fatal("Bind accepted a missing parameter")
	}
	if _, err := tpl.Bind([]any{struct{}{}}); err == nil {
		t.Fatal("Bind accepted an unsupported parameter type")
	}
	// An unbound parameter reaching evaluation is an error, not a value.
	if _, err := Eval(tpl.Filter, []any{int64(1)}); err == nil {
		t.Fatal("Eval accepted an unbound parameter")
	}
}

// TestAggStateMergeCommutes checks that partial states merge to the same
// final values regardless of how rows are split across shards — the
// property the cross-shard CN-final merge depends on.
func TestAggStateMergeCommutes(t *testing.T) {
	specs := []AggSpec{
		{Kind: AggCount, Star: true},
		{Kind: AggSum, Arg: &Expr{Op: OpCol, Col: 0}},
		{Kind: AggAvg, Arg: &Expr{Op: OpCol, Col: 0}},
		{Kind: AggMin, Arg: &Expr{Op: OpCol, Col: 0}},
		{Kind: AggMax, Arg: &Expr{Op: OpCol, Col: 0}},
	}
	rows := [][]any{{int64(5)}, {nil}, {int64(-3)}, {int64(12)}, {int64(0)}}

	accumulate := func(rows [][]any) []AggState {
		states := make([]AggState, len(specs))
		for _, r := range rows {
			for i, spec := range specs {
				if err := states[i].Accumulate(spec, r); err != nil {
					t.Fatal(err)
				}
			}
		}
		return states
	}
	whole := accumulate(rows)
	for split := 0; split <= len(rows); split++ {
		a, err := EncodeStates(accumulate(rows[:split]))
		if err != nil {
			t.Fatal(err)
		}
		b, err := EncodeStates(accumulate(rows[split:]))
		if err != nil {
			t.Fatal(err)
		}
		merged, err := MergeEncodedStates(a, b)
		if err != nil {
			t.Fatal(err)
		}
		states, err := DecodeStates(merged)
		if err != nil {
			t.Fatal(err)
		}
		for i, spec := range specs {
			want := whole[i].Final(spec.Kind)
			got := states[i].Final(spec.Kind)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("split %d, %v: merged %v, whole %v", split, spec.Kind, got, want)
			}
		}
	}
	// SUM/AVG over zero rows are NULL; COUNT is 0.
	var empty AggState
	if empty.Final(AggSum) != nil || empty.Final(AggAvg) != nil || empty.Final(AggCount) != int64(0) {
		t.Fatalf("empty finals: sum=%v avg=%v count=%v",
			empty.Final(AggSum), empty.Final(AggAvg), empty.Final(AggCount))
	}
}

// TestGroupKeyRoundTrip checks group keys decode back to the grouped
// values, including NULLs.
func TestGroupKeyRoundTrip(t *testing.T) {
	f := &Fragment{
		Kinds:   []table.Kind{table.Int64, table.String, table.Bool},
		GroupBy: []int{1, 0},
		Aggs:    []AggSpec{{Kind: AggCount, Star: true}},
	}
	for _, row := range [][]any{
		{int64(7), "xa", true},
		{nil, "", false},
		{int64(-1), nil, true},
	} {
		key, err := f.EncodeGroupKey(row)
		if err != nil {
			t.Fatal(err)
		}
		vals, err := f.DecodeGroupKey(key)
		if err != nil {
			t.Fatal(err)
		}
		want := []any{row[1], row[0]}
		if !reflect.DeepEqual(vals, want) {
			t.Fatalf("group key of %v: got %v, want %v", row, vals, want)
		}
	}
}

// TestProjectionRoundTrip checks projected rows re-expand to full width
// with unshipped columns nil.
func TestProjectionRoundTrip(t *testing.T) {
	f := &Fragment{
		Kinds:   []table.Kind{table.Int64, table.String, table.Float64, table.Bool},
		Project: []int{0, 2},
	}
	row := []any{int64(9), "drop me", 2.5, true}
	val, err := f.EncodeProjected(row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.DecodeProjected(val)
	if err != nil {
		t.Fatal(err)
	}
	want := []any{int64(9), nil, 2.5, nil}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("projected round trip: got %v, want %v", got, want)
	}
}

// TestEvalThreeValuedLogic spot-checks the SQL semantics the DN evaluator
// must share with gsql: NULL propagation, short circuits, LIKE.
func TestEvalThreeValuedLogic(t *testing.T) {
	row := []any{int64(10), nil, "text"}
	cases := []struct {
		name string
		e    *Expr
		want any
	}{
		{"null cmp", bin(OpGt, col(1), constant(int64(1))), nil},
		{"and short circuit", bin(OpAnd, *bin(OpLt, col(0), constant(int64(1))), *bin(OpGt, col(1), constant(int64(1)))), false},
		{"or short circuit", bin(OpOr, *bin(OpGt, col(0), constant(int64(1))), *bin(OpGt, col(1), constant(int64(1)))), true},
		{"null and true", bin(OpAnd, *bin(OpGt, col(1), constant(int64(1))), *bin(OpGt, col(0), constant(int64(1)))), nil},
		{"like", bin(OpLike, col(2), constant("te%")), true},
		{"like underscore", bin(OpLike, col(2), constant("t_xt")), true},
		{"in skips null items", &Expr{Op: OpIn, Args: []Expr{col(0), constant(nil), constant(int64(10))}}, true},
		// gsql skips NULL list items and returns Neg on no match (not the
		// standard-SQL NULL); the DN evaluator must mirror gsql, not the
		// standard.
		{"not in skips null items", &Expr{Op: OpNotIn, Args: []Expr{col(0), constant(nil), constant(int64(3))}}, true},
		{"mixed int float", bin(OpLt, col(0), constant(10.5)), true},
		{"is null", &Expr{Op: OpIsNull, Args: []Expr{col(1)}}, true},
		{"coalesce", &Expr{Op: OpCoalesce, Args: []Expr{col(1), col(0)}}, int64(10)},
	}
	for _, tc := range cases {
		got, err := Eval(tc.e, row)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("%s: got %v (%T), want %v", tc.name, got, got, tc.want)
		}
	}
	// Type errors surface as errors, not panics.
	if _, err := Eval(bin(OpAdd, col(2), constant(int64(1))), row); err == nil {
		t.Fatal("string + int should error")
	}
	if _, err := Eval(bin(OpDiv, col(0), constant(int64(0))), row); err == nil {
		t.Fatal("division by zero should error")
	}
}
