package fragment

import (
	"bytes"
	"testing"

	"globaldb/internal/table"
)

// fuzzSeeds are representative fragments covering every wire-format
// branch: filters (incl. every operator arity), projections, group-bys and
// aggregate specs. Their encodings seed the fuzz corpus alongside the
// checked-in testdata/fuzz files.
func fuzzSeeds(tb testing.TB) [][]byte {
	kinds := []table.Kind{table.Int64, table.Float64, table.String, table.Bytes, table.Bool}
	col := func(c int) Expr { return Expr{Op: OpCol, Col: c} }
	konst := func(v any) Expr { return Expr{Op: OpConst, Val: v} }
	frags := []*Fragment{
		{Kinds: kinds},
		{Kinds: kinds, Filter: &Expr{Op: OpGe, Args: []Expr{col(0), konst(int64(42))}}},
		{Kinds: kinds, Filter: &Expr{Op: OpAnd, Args: []Expr{
			{Op: OpLike, Args: []Expr{col(2), konst("a%_z")}},
			{Op: OpNotBetween, Args: []Expr{col(1), konst(-1.5), konst(2.5)}},
		}}},
		{Kinds: kinds, Filter: &Expr{Op: OpIn, Args: []Expr{col(2), konst("x"), konst([]byte{0, 1}), konst(nil), konst(true)}},
			Project: []int{4, 0, 2}},
		{Kinds: kinds, Filter: &Expr{Op: OpNot, Args: []Expr{{Op: OpIsNull, Args: []Expr{col(3)}}}},
			GroupBy: []int{2, 0},
			Aggs: []AggSpec{
				{Kind: AggCount, Star: true},
				{Kind: AggSum, Arg: &Expr{Op: OpMul, Args: []Expr{col(0), konst(int64(3))}}},
				{Kind: AggAvg, Arg: &Expr{Op: OpCoalesce, Args: []Expr{col(1), konst(0.0)}}},
				{Kind: AggMin, Arg: &Expr{Op: OpLength, Args: []Expr{col(2)}}},
				{Kind: AggMax, Arg: &Expr{Op: OpParam, Col: 2}},
			}},
		// Lookup joins: a point lookup shipping all inner columns, a prefix
		// lookup with a filtered outer scan and projections on both sides,
		// and a semi-shaped shipment (empty inner projection) keyed by a
		// parameter.
		{Kinds: kinds, Lookup: &Lookup{
			Prefix:   []byte{0x03, 0, 0, 0, 0, 0, 0, 0, 9},
			KeyExprs: []Expr{col(0), col(2)},
			KeyKinds: []table.Kind{table.Int64, table.String},
			Kinds:    []table.Kind{table.Int64, table.String, table.Float64},
		}},
		{Kinds: kinds,
			Filter:  &Expr{Op: OpGe, Args: []Expr{col(1), konst(0.5)}},
			Project: []int{0, 2},
			Lookup: &Lookup{
				Prefix:   []byte{0x03, 0, 0, 0, 0, 0, 0, 0, 11},
				KeyExprs: []Expr{{Op: OpAdd, Args: []Expr{col(0), konst(int64(1))}}},
				KeyKinds: []table.Kind{table.Int64},
				Kinds:    []table.Kind{table.Int64, table.Bytes},
				Project:  []int{1},
			}},
		{Kinds: kinds, Lookup: &Lookup{
			Prefix:   []byte{0x03, 0xff},
			KeyExprs: []Expr{{Op: OpParam, Col: 1}},
			KeyKinds: []table.Kind{table.Bool},
			Kinds:    []table.Kind{table.Bool, table.String},
			Project:  []int{},
		}},
	}
	var out [][]byte
	for _, f := range frags {
		b, err := f.Encode()
		if err != nil {
			tb.Fatalf("encoding seed fragment: %v", err)
		}
		out = append(out, b)
	}
	return out
}

// FuzzFragmentDecode feeds arbitrary bytes through the hand-rolled wire
// codec: Decode must never panic, and anything it accepts must re-encode
// and re-decode to the same fragment (decode(encode(f)) round-trips).
func FuzzFragmentDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{wireVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		frag, err := Decode(data)
		if err != nil {
			return // malformed input must be rejected, never panic
		}
		enc, err := frag.Encode()
		if err != nil {
			t.Fatalf("decoded fragment does not re-encode: %v", err)
		}
		frag2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded fragment does not decode: %v", err)
		}
		// Compare encodings, not structs: encoding is canonical, and byte
		// equality sidesteps NaN != NaN on float constants.
		enc2, err := frag2.Encode()
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip not canonical:\n  first:  %x\n  second: %x", enc, enc2)
		}
	})
}

// FuzzStatesDecode covers the aggregate-state codec the coordinator's
// cross-shard merge runs on every partial row: DecodeStates must never
// panic, and accepted states must round-trip through EncodeStates.
func FuzzStatesDecode(f *testing.F) {
	enc, err := EncodeStates([]AggState{
		{Count: 3, SumI: 12, SumF: 12.5, IsFloat: true, Min: int64(-4), Max: "zz"},
		{Count: 0},
		{Count: 1, Min: []byte{0x00, 0xff}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		states, err := DecodeStates(data)
		if err != nil {
			return
		}
		enc, err := EncodeStates(states)
		if err != nil {
			t.Fatalf("decoded states do not re-encode: %v", err)
		}
		states2, err := DecodeStates(enc)
		if err != nil {
			t.Fatalf("re-encoded states do not decode: %v", err)
		}
		enc2, err := EncodeStates(states2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip not canonical:\n  first:  %x\n  second: %x", enc, enc2)
		}
	})
}

// TestFragmentEncodeDecodeRoundTrip pins the deterministic property the
// fuzzer explores: every seed fragment survives encode/decode unchanged.
func TestFragmentEncodeDecodeRoundTrip(t *testing.T) {
	for i, seed := range fuzzSeeds(t) {
		f, err := Decode(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		enc, err := f.Encode()
		if err != nil {
			t.Fatalf("seed %d re-encode: %v", i, err)
		}
		if !bytes.Equal(enc, seed) {
			t.Fatalf("seed %d: encoding not canonical", i)
		}
	}
}
