package fragment

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"globaldb/internal/keys"
	"globaldb/internal/table"
)

// This file defines the lookup-join rider a fragment can carry: the
// serializable description of a join whose inner side is a primary-key
// (point or prefix) lookup keyed by outer-row columns. A data node that
// receives a fragment with a Lookup runs the inner lookup next to the data
// for every outer row its filter keeps — the inner table's rows for a given
// distribution value live on the same shard as the outer table's (the
// planner only pushes co-located joins) — and ships already-joined rows, so
// the join's WAN cost is O(matching output) instead of O(inner table).

// Lookup describes the pushed inner side of a lookup join. KeyExprs are
// evaluated against the decoded OUTER row (column positions refer to the
// outer fragment's Kinds); their values, coerced to KeyKinds, extend Prefix
// into the inner table's primary-key prefix to scan. Kinds describes the
// inner table's stored rows, and Project the inner columns to ship (nil
// ships all inner columns; an empty non-nil Project ships none — a
// semi-join-shaped shipment that still emits one joined row per match).
type Lookup struct {
	Prefix   []byte
	KeyExprs []Expr
	KeyKinds []table.Kind
	Kinds    []table.Kind
	Project  []int
}

// ShipCols resolves Project into the concrete list of shipped inner
// columns (nil Project means every column).
func (l *Lookup) ShipCols() []int {
	if l.Project != nil {
		return l.Project
	}
	all := make([]int, len(l.Kinds))
	for i := range all {
		all[i] = i
	}
	return all
}

// ShipKinds returns the kinds of the shipped inner columns, in shipped
// order.
func (l *Lookup) ShipKinds() []table.Kind {
	ship := l.ShipCols()
	kinds := make([]table.Kind, len(ship))
	for i, c := range ship {
		kinds[i] = l.Kinds[c]
	}
	return kinds
}

// DecodeInnerRowAppend decodes one stored inner-table row value into
// dst[:0], reusing its backing array — the data node's per-match decode.
func (l *Lookup) DecodeInnerRowAppend(val []byte, dst []any) ([]any, error) {
	var d keys.Decoder
	d.Reset(val)
	dst = dst[:0]
	for i, k := range l.Kinds {
		v, err := decodeKeyValue(&d, k)
		if err != nil {
			return nil, fmt.Errorf("fragment: inner column %d: %w", i, err)
		}
		dst = append(dst, v)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing inner row bytes", ErrCorrupt)
	}
	return dst, nil
}

// AppendKeyValue encodes one coerced key value onto enc with the same
// memcomparable encoding the table layer uses for primary keys, so a
// data-node-built lookup key is byte-identical to the key the computing
// node's own access path would have encoded.
func AppendKeyValue(enc *keys.Encoder, v any) error {
	return encodeKeyValue(enc, v)
}

// AppendInner encodes the shipped inner columns of one matched inner row
// onto enc. ship must be ShipCols(), precomputed once per scan.
func (l *Lookup) AppendInner(enc *keys.Encoder, inner []any, ship []int) error {
	for _, c := range ship {
		if err := encodeKeyValue(enc, inner[c]); err != nil {
			return err
		}
	}
	return nil
}

// AppendOuter encodes the outer half of a joined row — the fragment's
// projected outer columns, or the full outer row when Project is nil —
// onto enc.
func (f *Fragment) AppendOuter(enc *keys.Encoder, b *RowBatch, r int) error {
	if f.Project != nil {
		return f.AppendProjected(enc, b, r)
	}
	for c := range f.Kinds {
		if err := encodeKeyValue(enc, b.cols[c][r]); err != nil {
			return err
		}
	}
	return nil
}

// CoerceKey coerces an outer-row value to an inner key column's kind. It
// mirrors the computing node's own key coercion (gsql's coerceValue) value
// class for value class, so a pushed lookup accepts, misses, and rejects
// exactly the keys the CN-side access path would: NULL stays NULL (the
// caller treats a NULL key as matching nothing, as SQL equality requires),
// a fractional float never silently truncates into an integer key, and an
// incompatible type is a query error, not a miss.
func CoerceKey(k table.Kind, v any) (any, error) {
	if v == nil {
		return nil, nil
	}
	switch k {
	case table.Int64:
		switch x := v.(type) {
		case int64:
			return x, nil
		case float64:
			if x == float64(int64(x)) {
				return int64(x), nil
			}
		}
	case table.Float64:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		}
	case table.String:
		if s, ok := v.(string); ok {
			return s, nil
		}
	case table.Bytes:
		switch x := v.(type) {
		case []byte:
			return x, nil
		case string:
			return []byte(x), nil
		}
	case table.Bool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	}
	return nil, fmt.Errorf("%w: cannot use %T as %v lookup key", ErrType, v, k)
}

// JoinedDecoder caches the per-scan layout needed to decode joined-row
// values shipped by a lookup-join fragment: each value holds the outer
// projected columns followed by the shipped inner columns, and decodes to
// one combined row of full outer width followed by full inner width
// (unshipped positions nil).
type JoinedDecoder struct {
	f          *Fragment
	outerKinds []table.Kind // kinds of the shipped outer values, in order
	ship       []int        // shipped inner columns
	shipKinds  []table.Kind
	outerW     int
	innerW     int

	// Joined rows arrive grouped by outer row, so consecutive values
	// usually share a byte-identical outer segment. prevOuter/prevVals
	// memoize the last decoded outer segment: on a byte match the cached
	// boxed values are copied instead of re-decoded, collapsing the
	// fan-out join's outer decode cost from O(matches) to O(outer rows).
	// Sound because the encoding is deterministic and self-delimiting:
	// equal leading bytes decode to equal outer values.
	prevOuter []byte
	prevVals  []any // full outer width, unshipped positions nil
}

// NewJoinedDecoder builds the decoder for a fragment with a Lookup.
func (f *Fragment) NewJoinedDecoder() *JoinedDecoder {
	jd := &JoinedDecoder{
		f:         f,
		ship:      f.Lookup.ShipCols(),
		shipKinds: f.Lookup.ShipKinds(),
		outerW:    len(f.Kinds),
		innerW:    len(f.Lookup.Kinds),
	}
	if f.Project != nil {
		jd.outerKinds = f.ProjectedKinds()
	} else {
		jd.outerKinds = f.Kinds
	}
	return jd
}

// Width returns the combined row width: outer columns then inner columns.
func (jd *JoinedDecoder) Width() int { return jd.outerW + jd.innerW }

// DecodeAppend decodes one joined row value, appending the combined
// full-width row to dst and returning the extended slice.
func (jd *JoinedDecoder) DecodeAppend(val []byte, dst []any) ([]any, error) {
	var d keys.Decoder
	base := len(dst)
	for i := 0; i < jd.outerW+jd.innerW; i++ {
		dst = append(dst, nil)
	}
	f := jd.f
	if n := len(jd.prevOuter); n > 0 && n <= len(val) && bytes.Equal(val[:n], jd.prevOuter) {
		copy(dst[base:base+jd.outerW], jd.prevVals)
		d.Reset(val[n:])
	} else {
		d.Reset(val)
		if f.Project != nil {
			for i, k := range jd.outerKinds {
				v, err := decodeKeyValue(&d, k)
				if err != nil {
					return nil, fmt.Errorf("fragment: joined outer column %d: %w", i, err)
				}
				dst[base+f.Project[i]] = v
			}
		} else {
			for c, k := range jd.outerKinds {
				v, err := decodeKeyValue(&d, k)
				if err != nil {
					return nil, fmt.Errorf("fragment: joined outer column %d: %w", c, err)
				}
				dst[base+c] = v
			}
		}
		outerLen := len(val) - d.Remaining()
		jd.prevOuter = append(jd.prevOuter[:0], val[:outerLen]...)
		if jd.prevVals == nil {
			jd.prevVals = make([]any, jd.outerW)
		}
		copy(jd.prevVals, dst[base:base+jd.outerW])
	}
	for i, c := range jd.ship {
		v, err := decodeKeyValue(&d, jd.shipKinds[i])
		if err != nil {
			return nil, fmt.Errorf("fragment: joined inner column %d: %w", i, err)
		}
		dst[base+jd.outerW+c] = v
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing joined row bytes", ErrCorrupt)
	}
	return dst, nil
}

// ---- Wire format ----
//
// The lookup section trails the aggregate section: a presence flag byte,
// then prefix, key expressions, key kinds, inner kinds, and the inner
// projection. Fragments encoded before the lookup section existed simply
// end after the aggregates; Decode treats the absent section as no lookup,
// so old encodings (including the checked-in fuzz corpus) stay valid.

func appendLookup(b []byte, l *Lookup) ([]byte, error) {
	if l == nil {
		return append(b, 0), nil
	}
	b = append(b, 1)
	b = appendUvarint(b, len(l.Prefix))
	b = append(b, l.Prefix...)
	b = appendUvarint(b, len(l.KeyExprs))
	var err error
	for i := range l.KeyExprs {
		if b, err = appendExpr(b, &l.KeyExprs[i]); err != nil {
			return nil, err
		}
	}
	for _, k := range l.KeyKinds {
		b = append(b, byte(k))
	}
	b = appendUvarint(b, len(l.Kinds))
	for _, k := range l.Kinds {
		b = append(b, byte(k))
	}
	if l.Project != nil {
		b = append(b, 1)
		b = appendUvarint(b, len(l.Project))
		for _, c := range l.Project {
			b = appendUvarint(b, c)
		}
	} else {
		b = append(b, 0)
	}
	return b, nil
}

func decodeLookup(b []byte) (*Lookup, []byte, error) {
	l := &Lookup{}
	np, b, err := decodeLen(b)
	if err != nil || np > len(b) {
		return nil, nil, ErrCorrupt
	}
	l.Prefix = append([]byte(nil), b[:np]...)
	b = b[np:]
	nk, b, err := decodeLen(b)
	if err != nil || nk > len(b) { // each expr takes >= 1 byte
		return nil, nil, ErrCorrupt
	}
	l.KeyExprs = make([]Expr, nk)
	for i := 0; i < nk; i++ {
		if l.KeyExprs[i], b, err = decodeExpr(b); err != nil {
			return nil, nil, err
		}
	}
	if nk > len(b) { // one kind byte per key expression
		return nil, nil, ErrCorrupt
	}
	l.KeyKinds = make([]table.Kind, nk)
	for i := 0; i < nk; i++ {
		l.KeyKinds[i] = table.Kind(b[i])
	}
	b = b[nk:]
	ni, b, err := decodeLen(b)
	if err != nil || ni > len(b) {
		return nil, nil, ErrCorrupt
	}
	l.Kinds = make([]table.Kind, ni)
	for i := 0; i < ni; i++ {
		l.Kinds[i] = table.Kind(b[i])
	}
	b = b[ni:]
	if len(b) == 0 {
		return nil, nil, ErrCorrupt
	}
	hasProj := b[0] == 1
	if b[0] > 1 {
		return nil, nil, fmt.Errorf("%w: lookup projection flag %#x", ErrCorrupt, b[0])
	}
	b = b[1:]
	if hasProj {
		var npr int
		if npr, b, err = decodeLen(b); err != nil {
			return nil, nil, err
		}
		if npr > len(b) {
			return nil, nil, ErrCorrupt
		}
		l.Project = make([]int, npr)
		for i := 0; i < npr; i++ {
			if l.Project[i], b, err = decodeLen(b); err != nil {
				return nil, nil, err
			}
		}
	}
	return l, b, nil
}

// validateLookup checks the lookup section's bounds: key expressions are
// evaluated against the OUTER row (outerCols wide), the projection against
// the inner kinds.
func validateLookup(l *Lookup, outerCols int) error {
	if len(l.Prefix) == 0 {
		return fmt.Errorf("%w: lookup without key prefix", ErrCorrupt)
	}
	if len(l.KeyExprs) == 0 {
		return fmt.Errorf("%w: lookup without key expressions", ErrCorrupt)
	}
	for i := range l.KeyExprs {
		if err := validateExpr(&l.KeyExprs[i], outerCols); err != nil {
			return err
		}
	}
	for _, c := range l.Project {
		if c < 0 || c >= len(l.Kinds) {
			return fmt.Errorf("%w: lookup projected column %d of %d", ErrCorrupt, c, len(l.Kinds))
		}
	}
	return nil
}

func appendUvarint(b []byte, v int) []byte {
	return binary.AppendUvarint(b, uint64(v))
}
