// Package fragment defines GlobalDB's serializable physical plan fragments:
// the filter / projection / partial-aggregate specification a computing node
// attaches to a paged scan RPC so that a data node can execute it next to
// the data. A fragment crosses the (simulated) WAN as opaque bytes — the
// Encode/Decode pair is the wire format — which keeps the data node
// stateless: every ScanPage request carries everything needed to evaluate
// it at the request's snapshot timestamp, on the read-write path and the
// read-on-replica path alike.
//
// The evaluator (eval.go) mirrors gsql's scalar expression semantics
// exactly — SQL three-valued logic, mixed int/float comparison, LIKE — so a
// predicate evaluated on a data node accepts precisely the rows the
// computing node's own filter would have accepted. The differential tests
// in gsql assert this byte-for-byte.
//
// Aggregation is split DN-partial / CN-final: data nodes fold matching rows
// into per-group AggStates (COUNT/SUM/MIN/MAX, with AVG carried as
// sum+count) keyed by a memcomparable group key, and the coordinator merges
// the per-shard partial states where the cross-shard merge cursor sees
// equal group keys side by side.
package fragment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"globaldb/internal/keys"
	"globaldb/internal/table"
)

// Op is an expression node opcode.
type Op uint8

// Expression opcodes. Binary comparison and arithmetic ops take two args;
// OpNot and OpNeg one; OpIn one probe plus any number of list items;
// OpBetween three (x, lo, hi); scalar functions their natural arity.
const (
	OpConst Op = iota + 1 // constant value (Val)
	OpCol                 // column reference by storage position (Col)
	OpParam               // statement parameter (Col is the 1-based index); resolved by Bind
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLike
	OpIsNull
	OpNotNull
	OpIn
	OpNotIn
	OpBetween
	OpNotBetween
	OpNeg
	OpAbs
	OpLower
	OpUpper
	OpLength
	OpCoalesce
)

var opNames = map[Op]string{
	OpConst: "const", OpCol: "col", OpParam: "param",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpNot: "NOT",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpLike: "LIKE", OpIsNull: "IS NULL", OpNotNull: "IS NOT NULL",
	OpIn: "IN", OpNotIn: "NOT IN", OpBetween: "BETWEEN", OpNotBetween: "NOT BETWEEN",
	OpNeg: "-", OpAbs: "ABS", OpLower: "LOWER", OpUpper: "UPPER",
	OpLength: "LENGTH", OpCoalesce: "COALESCE",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Expr is one node of a serializable expression tree. Column references use
// storage positions (not names), and constants are plain SQL values, so a
// tree is self-contained: a data node needs no catalog access to evaluate
// it against a decoded row.
type Expr struct {
	Op   Op
	Col  int    // OpCol: column position; OpParam: 1-based parameter index
	Val  any    // OpConst: int64, float64, string, []byte, bool, or nil
	Args []Expr // operands, in operator order
}

// AggKind is a partial aggregate function.
type AggKind uint8

// Partial aggregate kinds. Avg is carried as sum+count in one state and
// finalized at the coordinator.
const (
	AggCount AggKind = iota + 1
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = map[AggKind]string{
	AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX",
}

func (k AggKind) String() string {
	if s, ok := aggNames[k]; ok {
		return s
	}
	return fmt.Sprintf("AggKind(%d)", uint8(k))
}

// AggSpec is one partial aggregate slot: the function, and either Star
// (COUNT(*)) or an argument expression evaluated per matching row.
type AggSpec struct {
	Kind AggKind
	Star bool
	Arg  *Expr // nil when Star
}

// Fragment is the unit of DN-side execution attached to a paged scan. All
// parts are optional: a nil Filter passes every row, a nil Project ships
// full rows, and empty Aggs means a plain (filtered, projected) row scan.
// With Aggs set, the scan's pages carry per-group partial states instead of
// rows: Key is the memcomparable encoding of the GroupBy column values (so
// the coordinator's cross-shard merge sees equal groups adjacent), Value
// the encoded AggStates.
type Fragment struct {
	// Kinds are the scanned table's column kinds in storage order — what a
	// data node needs to decode stored row values without a catalog.
	Kinds []table.Kind
	// Filter drops rows for which it does not evaluate to TRUE (SQL
	// three-valued logic: NULL drops).
	Filter *Expr
	// Project lists the column positions to keep in shipped rows; nil ships
	// the full row. Ignored when Aggs is non-empty.
	Project []int
	// GroupBy lists the column positions forming the group key.
	GroupBy []int
	// Aggs are the partial aggregate slots, in coordinator slot order.
	Aggs []AggSpec
	// Lookup, when set, turns the scan into a pushed lookup join: for every
	// row the filter keeps, the data node looks up the co-located inner
	// table rows keyed by Lookup.KeyExprs over the outer row and ships
	// joined rows (outer projected columns followed by the shipped inner
	// columns). Mutually exclusive with Aggs.
	Lookup *Lookup
}

// HasAggs reports whether the fragment produces partial-aggregate rows
// rather than (filtered, projected) table rows.
func (f *Fragment) HasAggs() bool { return len(f.Aggs) > 0 }

// NeededCols reports which storage columns the fragment's evaluation
// actually reads: filter columns, plus — depending on the fragment shape —
// group-by and aggregate-argument columns, lookup key columns, and the
// shipped projection. A plain row scan with a nil Project ships the raw
// stored value, so only the filter's columns are needed; a lookup join
// with a nil Project re-encodes the full outer row, so every column is.
// Executors use the mask to skip decoding (and boxing) unreferenced
// columns entirely.
func (f *Fragment) NeededCols() []bool {
	need := make([]bool, len(f.Kinds))
	exprCols(f.Filter, need)
	if f.HasAggs() {
		for _, c := range f.GroupBy {
			need[c] = true
		}
		for _, a := range f.Aggs {
			exprCols(a.Arg, need)
		}
		return need
	}
	if f.Lookup != nil {
		for i := range f.Lookup.KeyExprs {
			exprCols(&f.Lookup.KeyExprs[i], need)
		}
		if f.Project == nil {
			for i := range need {
				need[i] = true
			}
			return need
		}
	}
	for _, c := range f.Project {
		need[c] = true
	}
	return need
}

// exprCols marks the storage columns referenced by e in need.
func exprCols(e *Expr, need []bool) {
	if e == nil {
		return
	}
	if e.Op == OpCol && e.Col >= 0 && e.Col < len(need) {
		need[e.Col] = true
	}
	for i := range e.Args {
		exprCols(&e.Args[i], need)
	}
}

// ErrCorrupt is returned when decoding malformed fragment or state bytes.
var ErrCorrupt = errors.New("fragment: corrupt encoding")

// ---- Wire format ----
//
// The codec is a compact hand-rolled binary format (version byte, uvarint
// lengths, type-tagged values). It exists to make the fragment genuinely
// serializable at the RPC boundary rather than a shared in-process pointer:
// the data node reconstructs the fragment from bytes on every request.

const wireVersion = 1

// Value type tags for constants and aggregate bounds.
const (
	valNil byte = iota
	valInt
	valFloat
	valString
	valBytes
	valBool
)

func appendValue(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, valNil), nil
	case int64:
		b = append(b, valInt)
		return binary.BigEndian.AppendUint64(b, uint64(x)), nil
	case float64:
		b = append(b, valFloat)
		return binary.BigEndian.AppendUint64(b, math.Float64bits(x)), nil
	case string:
		b = append(b, valString)
		b = binary.AppendUvarint(b, uint64(len(x)))
		return append(b, x...), nil
	case []byte:
		b = append(b, valBytes)
		b = binary.AppendUvarint(b, uint64(len(x)))
		return append(b, x...), nil
	case bool:
		if x {
			return append(b, valBool, 1), nil
		}
		return append(b, valBool, 0), nil
	default:
		return nil, fmt.Errorf("fragment: unsupported value type %T", v)
	}
}

func decodeValue(b []byte) (any, []byte, error) {
	if len(b) == 0 {
		return nil, nil, ErrCorrupt
	}
	tag, b := b[0], b[1:]
	switch tag {
	case valNil:
		return nil, b, nil
	case valInt:
		if len(b) < 8 {
			return nil, nil, ErrCorrupt
		}
		return int64(binary.BigEndian.Uint64(b[:8])), b[8:], nil
	case valFloat:
		if len(b) < 8 {
			return nil, nil, ErrCorrupt
		}
		return math.Float64frombits(binary.BigEndian.Uint64(b[:8])), b[8:], nil
	case valString:
		n, b, err := decodeLen(b)
		if err != nil || len(b) < n {
			return nil, nil, ErrCorrupt
		}
		return string(b[:n]), b[n:], nil
	case valBytes:
		n, b, err := decodeLen(b)
		if err != nil || len(b) < n {
			return nil, nil, ErrCorrupt
		}
		return append([]byte(nil), b[:n]...), b[n:], nil
	case valBool:
		if len(b) < 1 {
			return nil, nil, ErrCorrupt
		}
		return b[0] != 0, b[1:], nil
	default:
		return nil, nil, fmt.Errorf("%w: value tag %#x", ErrCorrupt, tag)
	}
}

func decodeLen(b []byte) (int, []byte, error) {
	v, n := binary.Uvarint(b)
	// Reject lengths that do not fit a non-negative int32: a hostile
	// uvarint must never reach make() as a huge or negative length.
	if n <= 0 || v > math.MaxInt32 {
		return 0, nil, ErrCorrupt
	}
	return int(v), b[n:], nil
}

func appendExpr(b []byte, e *Expr) ([]byte, error) {
	b = append(b, byte(e.Op))
	var err error
	switch e.Op {
	case OpConst:
		if b, err = appendValue(b, e.Val); err != nil {
			return nil, err
		}
	case OpCol, OpParam:
		b = binary.AppendUvarint(b, uint64(e.Col))
	}
	b = binary.AppendUvarint(b, uint64(len(e.Args)))
	for i := range e.Args {
		if b, err = appendExpr(b, &e.Args[i]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func decodeExpr(b []byte) (Expr, []byte, error) {
	if len(b) == 0 {
		return Expr{}, nil, ErrCorrupt
	}
	e := Expr{Op: Op(b[0])}
	b = b[1:]
	var err error
	switch e.Op {
	case OpConst:
		if e.Val, b, err = decodeValue(b); err != nil {
			return Expr{}, nil, err
		}
	case OpCol, OpParam:
		var n int
		if n, b, err = decodeLen(b); err != nil {
			return Expr{}, nil, err
		}
		e.Col = n
	}
	nargs, b, err := decodeLen(b)
	if err != nil || nargs > len(b) { // each arg takes >= 1 byte
		return Expr{}, nil, ErrCorrupt
	}
	if nargs > 0 {
		e.Args = make([]Expr, nargs)
		for i := 0; i < nargs; i++ {
			if e.Args[i], b, err = decodeExpr(b); err != nil {
				return Expr{}, nil, err
			}
		}
	}
	return e, b, nil
}

// Encode serializes the fragment for the RPC boundary.
func (f *Fragment) Encode() ([]byte, error) {
	b := []byte{wireVersion}
	b = binary.AppendUvarint(b, uint64(len(f.Kinds)))
	for _, k := range f.Kinds {
		b = append(b, byte(k))
	}
	var err error
	if f.Filter != nil {
		b = append(b, 1)
		if b, err = appendExpr(b, f.Filter); err != nil {
			return nil, err
		}
	} else {
		b = append(b, 0)
	}
	if f.Project != nil {
		b = append(b, 1)
		b = binary.AppendUvarint(b, uint64(len(f.Project)))
		for _, c := range f.Project {
			b = binary.AppendUvarint(b, uint64(c))
		}
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(f.GroupBy)))
	for _, c := range f.GroupBy {
		b = binary.AppendUvarint(b, uint64(c))
	}
	b = binary.AppendUvarint(b, uint64(len(f.Aggs)))
	for _, a := range f.Aggs {
		b = append(b, byte(a.Kind))
		if a.Star {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		if a.Arg != nil {
			b = append(b, 1)
			if b, err = appendExpr(b, a.Arg); err != nil {
				return nil, err
			}
		} else {
			b = append(b, 0)
		}
	}
	if b, err = appendLookup(b, f.Lookup); err != nil {
		return nil, err
	}
	return b, nil
}

// Decode reconstructs a fragment from its wire bytes.
func Decode(b []byte) (*Fragment, error) {
	if len(b) == 0 || b[0] != wireVersion {
		return nil, fmt.Errorf("%w: bad version", ErrCorrupt)
	}
	b = b[1:]
	f := &Fragment{}
	nk, b, err := decodeLen(b)
	if err != nil || nk > len(b) {
		return nil, ErrCorrupt
	}
	f.Kinds = make([]table.Kind, nk)
	for i := 0; i < nk; i++ {
		f.Kinds[i] = table.Kind(b[i])
	}
	b = b[nk:]
	// Filter.
	if len(b) == 0 {
		return nil, ErrCorrupt
	}
	hasFilter := b[0] == 1
	b = b[1:]
	if hasFilter {
		var e Expr
		if e, b, err = decodeExpr(b); err != nil {
			return nil, err
		}
		f.Filter = &e
	}
	// Projection.
	if len(b) == 0 {
		return nil, ErrCorrupt
	}
	hasProj := b[0] == 1
	b = b[1:]
	if hasProj {
		var np int
		if np, b, err = decodeLen(b); err != nil {
			return nil, err
		}
		if np > len(b) { // each position takes >= 1 byte; bound before allocating
			return nil, ErrCorrupt
		}
		f.Project = make([]int, np)
		for i := 0; i < np; i++ {
			if f.Project[i], b, err = decodeLen(b); err != nil {
				return nil, err
			}
		}
	}
	// Group by.
	ng, b, err := decodeLen(b)
	if err != nil {
		return nil, err
	}
	if ng > len(b) { // each position takes >= 1 byte; bound before allocating
		return nil, ErrCorrupt
	}
	f.GroupBy = make([]int, ng)
	for i := 0; i < ng; i++ {
		if f.GroupBy[i], b, err = decodeLen(b); err != nil {
			return nil, err
		}
	}
	// Aggregates.
	na, b, err := decodeLen(b)
	if err != nil {
		return nil, err
	}
	for i := 0; i < na; i++ {
		if len(b) < 3 {
			return nil, ErrCorrupt
		}
		spec := AggSpec{Kind: AggKind(b[0]), Star: b[1] == 1}
		hasArg := b[2] == 1
		b = b[3:]
		if hasArg {
			var e Expr
			if e, b, err = decodeExpr(b); err != nil {
				return nil, err
			}
			spec.Arg = &e
		}
		f.Aggs = append(f.Aggs, spec)
	}
	// Lookup join. The section is optional at the wire level: fragments
	// encoded before it existed end here, and decode as no lookup.
	if len(b) > 0 {
		switch b[0] {
		case 0:
			b = b[1:]
		case 1:
			if f.Lookup, b, err = decodeLookup(b[1:]); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: lookup flag %#x", ErrCorrupt, b[0])
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	// Validate column positions and expression-node arity against Kinds so
	// a corrupt fragment fails here rather than with an index panic
	// mid-scan on the data node.
	ncols := len(f.Kinds)
	for _, c := range f.Project {
		if c < 0 || c >= ncols {
			return nil, fmt.Errorf("%w: projected column %d of %d", ErrCorrupt, c, ncols)
		}
	}
	for _, c := range f.GroupBy {
		if c < 0 || c >= ncols {
			return nil, fmt.Errorf("%w: group column %d of %d", ErrCorrupt, c, ncols)
		}
	}
	if f.Filter != nil {
		if err := validateExpr(f.Filter, ncols); err != nil {
			return nil, err
		}
	}
	for _, a := range f.Aggs {
		if a.Kind < AggCount || a.Kind > AggMax {
			return nil, fmt.Errorf("%w: aggregate kind %d", ErrCorrupt, a.Kind)
		}
		if !a.Star && a.Arg == nil {
			return nil, fmt.Errorf("%w: aggregate without argument", ErrCorrupt)
		}
		if a.Arg != nil {
			if err := validateExpr(a.Arg, ncols); err != nil {
				return nil, err
			}
		}
	}
	if f.Lookup != nil {
		if len(f.Aggs) > 0 {
			return nil, fmt.Errorf("%w: lookup join with aggregates", ErrCorrupt)
		}
		if err := validateLookup(f.Lookup, ncols); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// validateExpr checks an expression tree's operator arities and column
// bounds, so the evaluator can index Args and rows without re-checking.
func validateExpr(e *Expr, ncols int) error {
	switch e.Op {
	case OpConst, OpCol, OpParam:
		if len(e.Args) != 0 {
			return fmt.Errorf("%w: leaf %v with %d args", ErrCorrupt, e.Op, len(e.Args))
		}
		if e.Op == OpCol && (e.Col < 0 || e.Col >= ncols) {
			return fmt.Errorf("%w: column %d of %d", ErrCorrupt, e.Col, ncols)
		}
		if e.Op == OpParam && e.Col < 1 {
			return fmt.Errorf("%w: parameter index %d", ErrCorrupt, e.Col)
		}
		return nil
	case OpNot, OpNeg, OpIsNull, OpNotNull, OpAbs, OpLower, OpUpper, OpLength:
		if len(e.Args) != 1 {
			return fmt.Errorf("%w: %v with %d args, want 1", ErrCorrupt, e.Op, len(e.Args))
		}
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr,
		OpAdd, OpSub, OpMul, OpDiv, OpMod, OpLike:
		if len(e.Args) != 2 {
			return fmt.Errorf("%w: %v with %d args, want 2", ErrCorrupt, e.Op, len(e.Args))
		}
	case OpBetween, OpNotBetween:
		if len(e.Args) != 3 {
			return fmt.Errorf("%w: %v with %d args, want 3", ErrCorrupt, e.Op, len(e.Args))
		}
	case OpIn, OpNotIn, OpCoalesce:
		if len(e.Args) < 1 {
			return fmt.Errorf("%w: %v with no args", ErrCorrupt, e.Op)
		}
	default:
		return fmt.Errorf("%w: unknown op %d", ErrCorrupt, uint8(e.Op))
	}
	for i := range e.Args {
		if err := validateExpr(&e.Args[i], ncols); err != nil {
			return err
		}
	}
	return nil
}

// Bind substitutes statement parameter values for OpParam nodes, returning
// a new fragment ready to send to data nodes (a data node rejects fragments
// with unresolved parameters). The receiver is not modified, so one planned
// fragment template serves every execution of a prepared statement.
func (f *Fragment) Bind(params []any) (*Fragment, error) {
	out := &Fragment{Kinds: f.Kinds, Project: f.Project, GroupBy: f.GroupBy}
	if f.Filter != nil {
		e, err := bindExpr(*f.Filter, params)
		if err != nil {
			return nil, err
		}
		out.Filter = &e
	}
	for _, a := range f.Aggs {
		spec := AggSpec{Kind: a.Kind, Star: a.Star}
		if a.Arg != nil {
			e, err := bindExpr(*a.Arg, params)
			if err != nil {
				return nil, err
			}
			spec.Arg = &e
		}
		out.Aggs = append(out.Aggs, spec)
	}
	if f.Lookup != nil {
		lk := &Lookup{Prefix: f.Lookup.Prefix, KeyKinds: f.Lookup.KeyKinds,
			Kinds: f.Lookup.Kinds, Project: f.Lookup.Project}
		lk.KeyExprs = make([]Expr, len(f.Lookup.KeyExprs))
		for i := range f.Lookup.KeyExprs {
			e, err := bindExpr(f.Lookup.KeyExprs[i], params)
			if err != nil {
				return nil, err
			}
			lk.KeyExprs[i] = e
		}
		out.Lookup = lk
	}
	return out, nil
}

func bindExpr(e Expr, params []any) (Expr, error) {
	if e.Op == OpParam {
		if e.Col < 1 || e.Col > len(params) {
			return Expr{}, fmt.Errorf("fragment: parameter $%d with %d bound", e.Col, len(params))
		}
		v := params[e.Col-1]
		switch v.(type) {
		case nil, int64, float64, string, []byte, bool:
			return Expr{Op: OpConst, Val: v}, nil
		default:
			return Expr{}, fmt.Errorf("fragment: parameter $%d has unsupported type %T", e.Col, v)
		}
	}
	if len(e.Args) == 0 {
		return e, nil
	}
	args := make([]Expr, len(e.Args))
	for i := range e.Args {
		a, err := bindExpr(e.Args[i], params)
		if err != nil {
			return Expr{}, err
		}
		args[i] = a
	}
	return Expr{Op: e.Op, Col: e.Col, Val: e.Val, Args: args}, nil
}

// ---- Row codec helpers ----

// DecodeStoredRow decodes a stored row value by the fragment's column
// kinds — the data-node-side equivalent of Schema.DecodeRow.
func (f *Fragment) DecodeStoredRow(val []byte) ([]any, error) {
	return decodeRowByKinds(f.Kinds, val)
}

func decodeRowByKinds(kinds []table.Kind, val []byte) ([]any, error) {
	d := keys.NewDecoder(val)
	out := make([]any, len(kinds))
	for i, k := range kinds {
		v, err := decodeKeyValue(d, k)
		if err != nil {
			return nil, fmt.Errorf("fragment: column %d: %w", i, err)
		}
		out[i] = v
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing row bytes", ErrCorrupt)
	}
	return out, nil
}

func decodeKeyValue(d *keys.Decoder, k table.Kind) (any, error) {
	if d.IsNull() {
		return nil, nil
	}
	switch k {
	case table.Int64:
		return d.Int64()
	case table.Float64:
		return d.Float64()
	case table.String:
		return d.String()
	case table.Bytes:
		return d.RawBytes()
	case table.Bool:
		return d.Bool()
	default:
		return nil, fmt.Errorf("fragment: unknown kind %v", k)
	}
}

func encodeKeyValue(e *keys.Encoder, v any) error {
	switch x := v.(type) {
	case nil:
		e.Null()
	case int64:
		e.Int64(x)
	case float64:
		e.Float64(x)
	case string:
		e.String(x)
	case []byte:
		e.RawBytes(x)
	case bool:
		e.Bool(x)
	default:
		return fmt.Errorf("fragment: unsupported row value %T", v)
	}
	return nil
}

// EncodeProjected re-encodes the projected columns of a decoded row as the
// shipped row value.
func (f *Fragment) EncodeProjected(row []any) ([]byte, error) {
	e := keys.NewEncoder(16 * len(f.Project))
	for _, c := range f.Project {
		if err := encodeKeyValue(e, row[c]); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// AppendProjected encodes the projected columns of batch row r onto enc —
// the batch form of EncodeProjected, producing identical bytes. Callers
// encode a whole page of survivors into one buffer and slice per-row
// values out of it instead of allocating an encoder per row.
func (f *Fragment) AppendProjected(enc *keys.Encoder, b *RowBatch, r int) error {
	for _, c := range f.Project {
		if err := encodeKeyValue(enc, b.cols[c][r]); err != nil {
			return err
		}
	}
	return nil
}

// AppendGroupKey encodes batch row r's memcomparable group key onto enc —
// the batch form of EncodeGroupKey, producing identical bytes.
func (f *Fragment) AppendGroupKey(enc *keys.Encoder, b *RowBatch, r int) error {
	for _, c := range f.GroupBy {
		if err := encodeKeyValue(enc, b.cols[c][r]); err != nil {
			return err
		}
	}
	return nil
}

// ProjectedKinds returns the column kinds of the projected (shipped)
// columns, in shipped order. Computing this once per scan lets the
// receiving side batch-decode projected rows without rebuilding it per row.
func (f *Fragment) ProjectedKinds() []table.Kind {
	kinds := make([]table.Kind, len(f.Project))
	for i, c := range f.Project {
		kinds[i] = f.Kinds[c]
	}
	return kinds
}

// DecodeProjectedAppend decodes a projected row value, appending the
// re-expanded full-width row (unshipped columns nil) to dst and returning
// the extended slice. narrowKinds must be ProjectedKinds(). Batch consumers
// decode a whole page into one backing slab this way.
func (f *Fragment) DecodeProjectedAppend(narrowKinds []table.Kind, val []byte, dst []any) ([]any, error) {
	var d keys.Decoder
	d.Reset(val)
	base := len(dst)
	for i := 0; i < len(f.Kinds); i++ {
		dst = append(dst, nil)
	}
	for i, k := range narrowKinds {
		v, err := decodeKeyValue(&d, k)
		if err != nil {
			return nil, fmt.Errorf("fragment: column %d: %w", i, err)
		}
		dst[base+f.Project[i]] = v
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing row bytes", ErrCorrupt)
	}
	return dst, nil
}

// DecodeProjected expands a projected row value back to full schema width,
// leaving unshipped columns nil. The planner guarantees no surviving
// expression references an unshipped column.
func (f *Fragment) DecodeProjected(val []byte) ([]any, error) {
	kinds := make([]table.Kind, len(f.Project))
	for i, c := range f.Project {
		kinds[i] = f.Kinds[c]
	}
	narrow, err := decodeRowByKinds(kinds, val)
	if err != nil {
		return nil, err
	}
	full := make([]any, len(f.Kinds))
	for i, c := range f.Project {
		full[c] = narrow[i]
	}
	return full, nil
}

// EncodeGroupKey builds the memcomparable group key for one row. Equal
// group values always encode to equal bytes, and the encoding orders
// exactly like the values, so per-shard group streams merge with the same
// cursor machinery as row scans.
func (f *Fragment) EncodeGroupKey(row []any) ([]byte, error) {
	e := keys.NewEncoder(16 * len(f.GroupBy))
	for _, c := range f.GroupBy {
		if err := encodeKeyValue(e, row[c]); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// DecodeGroupKey recovers the group column values from a group key.
func (f *Fragment) DecodeGroupKey(key []byte) ([]any, error) {
	d := keys.NewDecoder(key)
	out := make([]any, len(f.GroupBy))
	for i, c := range f.GroupBy {
		v, err := decodeKeyValue(d, f.Kinds[c])
		if err != nil {
			return nil, fmt.Errorf("fragment: group key column %d: %w", i, err)
		}
		out[i] = v
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing group key bytes", ErrCorrupt)
	}
	return out, nil
}
